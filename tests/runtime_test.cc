// Tests for the simulation and thread runtimes: delivery, FIFO
// channels, latency, timers, determinism, quiescence.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>

#include "net/protocol.h"
#include "net/sim_runtime.h"
#include "net/thread_runtime.h"

namespace mvc {
namespace {

/// Records every delivered tick tag with its delivery time.
class Recorder : public Process {
 public:
  explicit Recorder(std::string name) : Process(std::move(name)) {}

  void OnMessage(ProcessId from, MessagePtr msg) override {
    std::lock_guard<std::mutex> lock(mu_);
    ASSERT_EQ(msg->kind, Message::Kind::kTick);
    log_.emplace_back(from, static_cast<TickMsg*>(msg.get())->tag);
    times_.push_back(Now());
  }

  std::vector<std::pair<ProcessId, int64_t>> log() const {
    std::lock_guard<std::mutex> lock(mu_);
    return log_;
  }
  std::vector<TimeMicros> times() const {
    std::lock_guard<std::mutex> lock(mu_);
    return times_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<ProcessId, int64_t>> log_;
  std::vector<TimeMicros> times_;
};

/// Sends `count` ticks to a target at OnStart, each after `gap` of local
/// processing time.
class Sender : public Process {
 public:
  Sender(std::string name, ProcessId target, int count, TimeMicros gap)
      : Process(std::move(name)), target_(target), count_(count), gap_(gap) {}

  void OnStart() override {
    for (int i = 0; i < count_; ++i) {
      auto tick = std::make_unique<TickMsg>();
      tick->tag = i;
      SendAfter(target_, std::move(tick), gap_ * i);
    }
  }
  void OnMessage(ProcessId, MessagePtr) override {}

 private:
  ProcessId target_;
  int count_;
  TimeMicros gap_;
};

TEST(SimRuntimeTest, DeliversInTimeOrder) {
  SimRuntime runtime(1);
  Recorder recorder("recorder");
  ProcessId rid = runtime.Register(&recorder);
  Sender sender("sender", rid, 5, 100);
  runtime.Register(&sender);
  runtime.Run();
  auto log = recorder.log();
  ASSERT_EQ(log.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(log[static_cast<size_t>(i)].second, i);
  EXPECT_EQ(runtime.events_delivered(), 5);
}

TEST(SimRuntimeTest, VirtualClockAdvances) {
  SimRuntime runtime(1);
  Recorder recorder("recorder");
  ProcessId rid = runtime.Register(&recorder);
  Sender sender("sender", rid, 3, 1000);
  runtime.Register(&sender);
  runtime.Run();
  auto times = recorder.times();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], 1);      // FIFO bump past t=0
  EXPECT_GE(times[1], 1000);
  EXPECT_GE(times[2], 2000);
}

TEST(SimRuntimeTest, FifoPerChannelDespiteJitter) {
  // Huge jitter: without FIFO enforcement messages would reorder.
  SimRuntime runtime(7, LatencyModel::Uniform(10, 100000));
  Recorder recorder("recorder");
  ProcessId rid = runtime.Register(&recorder);
  Sender sender("sender", rid, 50, 0);
  runtime.Register(&sender);
  runtime.Run();
  auto log = recorder.log();
  ASSERT_EQ(log.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(log[static_cast<size_t>(i)].second, i) << "reordered at " << i;
  }
}

TEST(SimRuntimeTest, IndependentChannelsInterleaveByLatency) {
  SimRuntime runtime(1);
  Recorder recorder("recorder");
  ProcessId rid = runtime.Register(&recorder);
  runtime.SetChannelLatency(1, rid, LatencyModel::Fixed(10000));
  runtime.SetChannelLatency(2, rid, LatencyModel::Fixed(10));
  Sender slow("slow", rid, 1, 0);
  Sender fast("fast", rid, 1, 0);
  ProcessId slow_id = runtime.Register(&slow);
  ProcessId fast_id = runtime.Register(&fast);
  ASSERT_EQ(slow_id, 1);
  ASSERT_EQ(fast_id, 2);
  runtime.Run();
  auto log = recorder.log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].first, fast_id) << "fast channel must deliver first";
  EXPECT_EQ(log[1].first, slow_id);
}

TEST(SimRuntimeTest, DeterministicAcrossRunsWithSameSeed) {
  auto run = [](uint64_t seed) {
    SimRuntime runtime(seed, LatencyModel::Uniform(100, 5000));
    Recorder recorder("recorder");
    ProcessId rid = runtime.Register(&recorder);
    Sender a("a", rid, 10, 50);
    Sender b("b", rid, 10, 70);
    runtime.Register(&a);
    runtime.Register(&b);
    runtime.Run();
    return recorder.log();
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));  // different seeds draw different latencies
}

TEST(SimRuntimeTest, RunUntilStopsAtDeadline) {
  SimRuntime runtime(1);
  Recorder recorder("recorder");
  ProcessId rid = runtime.Register(&recorder);
  Sender sender("sender", rid, 3, 1000);
  runtime.Register(&sender);
  runtime.RunUntil(1500);
  EXPECT_EQ(recorder.log().size(), 2u);  // t=1 and t~1000
  runtime.Run();
  EXPECT_EQ(recorder.log().size(), 3u);
}

TEST(SimRuntimeTest, SelfMessagesActAsTimers) {
  class TimerProc : public Process {
   public:
    using Process::Process;
    void OnStart() override {
      ScheduleSelf(std::make_unique<TickMsg>(), 5000);
    }
    void OnMessage(ProcessId, MessagePtr) override { fired_at = Now(); }
    TimeMicros fired_at = -1;
  };
  SimRuntime runtime(1);
  TimerProc proc("timer");
  runtime.Register(&proc);
  runtime.Run();
  EXPECT_GE(proc.fired_at, 5000);
}

TEST(SimRuntimeTest, CountsMessagesByKind) {
  SimRuntime runtime(1);
  Recorder recorder("recorder");
  ProcessId rid = runtime.Register(&recorder);
  Sender sender("sender", rid, 4, 0);
  runtime.Register(&sender);
  runtime.Run();
  EXPECT_EQ(runtime.stats().total_messages, 4);
  EXPECT_EQ(runtime.stats().by_kind.at("Tick"), 4);
}

TEST(ThreadRuntimeTest, DeliversEverythingAndQuiesces) {
  ThreadRuntime runtime(1);
  Recorder recorder("recorder");
  ProcessId rid = runtime.Register(&recorder);
  Sender a("a", rid, 20, 0);
  Sender b("b", rid, 20, 0);
  runtime.Register(&a);
  runtime.Register(&b);
  runtime.Run();
  EXPECT_EQ(recorder.log().size(), 40u);
}

TEST(ThreadRuntimeTest, FifoPerChannel) {
  ThreadRuntime runtime(3, LatencyModel::Uniform(0, 2000));
  Recorder recorder("recorder");
  ProcessId rid = runtime.Register(&recorder);
  Sender sender("sender", rid, 30, 0);
  runtime.Register(&sender);
  runtime.Run();
  auto log = recorder.log();
  ASSERT_EQ(log.size(), 30u);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(log[static_cast<size_t>(i)].second, i);
  }
}

TEST(ThreadRuntimeTest, ChainedForwardingQuiesces) {
  // a -> b -> c chains: quiescence must wait for the whole cascade.
  class Forwarder : public Process {
   public:
    Forwarder(std::string name, ProcessId next)
        : Process(std::move(name)), next_(next) {}
    void OnMessage(ProcessId, MessagePtr msg) override {
      ++received;
      if (next_ != kInvalidProcess) Send(next_, std::move(msg));
    }
    ProcessId next_;
    std::atomic<int> received{0};
  };
  ThreadRuntime runtime(1);
  Forwarder c("c", kInvalidProcess);
  ProcessId cid = runtime.Register(&c);
  Forwarder b("b", cid);
  ProcessId bid = runtime.Register(&b);
  Forwarder a("a", bid);
  ProcessId aid = runtime.Register(&a);
  Sender sender("sender", aid, 10, 0);
  runtime.Register(&sender);
  runtime.Run();
  EXPECT_EQ(a.received.load(), 10);
  EXPECT_EQ(b.received.load(), 10);
  EXPECT_EQ(c.received.load(), 10);
}

}  // namespace
}  // namespace mvc

namespace mvc {
namespace {

TEST(SimRuntimeTest, TraceSinkSeesEveryDelivery) {
  SimRuntime runtime(1);
  std::vector<std::string> lines;
  runtime.SetTraceSink([&](const std::string& line) {
    lines.push_back(line);
  });
  Recorder recorder("recorder");
  ProcessId rid = runtime.Register(&recorder);
  Sender sender("the-sender", rid, 3, 100);
  runtime.Register(&sender);
  runtime.Run();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("the-sender -> recorder Tick"),
            std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("t="), std::string::npos);
  // Disabling stops the stream.
  runtime.SetTraceSink(nullptr);
}

}  // namespace
}  // namespace mvc
