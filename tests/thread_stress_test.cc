// ThreadRuntime stress tests aimed at the thread sanitizer.
//
// These run hot loops over the real-thread runtime — many short Run()
// cycles (each one exercises startup, quiescence detection, and the
// teardown wakeup path) plus full warehouse scenarios with contended
// channels — so TSan gets a wide set of interleavings to inspect.
// They are only registered when the tree is built with
// MVC_SANITIZE=thread (the `tsan` preset); see tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <vector>

#include "consistency/checker.h"
#include "net/protocol.h"
#include "net/thread_runtime.h"
#include "query/evaluator.h"
#include "system/warehouse_system.h"
#include "workload/generator.h"
#include "workload/paper_examples.h"

namespace mvc {
namespace {

/// Forwards each tick along a ring of processes until its tag hits zero,
/// so every delivery re-arms another contended channel.
class RingHop : public Process {
 public:
  RingHop(std::string name, int ring_size, std::atomic<int64_t>* hops)
      : Process(std::move(name)), ring_size_(ring_size), hops_(hops) {}

  void OnMessage(ProcessId, MessagePtr msg) override {
    auto* tick = static_cast<TickMsg*>(msg.get());
    hops_->fetch_add(1, std::memory_order_relaxed);
    if (tick->tag <= 0) return;
    auto next = std::make_unique<TickMsg>();
    next->tag = tick->tag - 1;
    Send((id() + 1) % ring_size_, std::move(next));
  }

 private:
  int ring_size_;
  std::atomic<int64_t>* hops_;
};

/// Seeds the ring with several concurrent tokens at start.
class RingSeeder : public RingHop {
 public:
  RingSeeder(std::string name, int ring_size, int tokens, int64_t hops_each,
             std::atomic<int64_t>* hops)
      : RingHop(std::move(name), ring_size, hops),
        tokens_(tokens),
        hops_each_(hops_each) {}

  void OnStart() override {
    for (int t = 0; t < tokens_; ++t) {
      auto tick = std::make_unique<TickMsg>();
      tick->tag = hops_each_;
      Send(id(), std::move(tick));
    }
  }

 private:
  int tokens_;
  int64_t hops_each_;
};

// Many tokens circulating a ring: every process is simultaneously a
// sender and a receiver, so mailbox locks, the dispatcher heap, and the
// in-flight counter all stay contended until quiescence.
TEST(ThreadStressTest, TokenRingUnderContention) {
  constexpr int kRing = 8;
  constexpr int kTokens = 6;
  constexpr int64_t kHops = 200;
  std::atomic<int64_t> hops{0};

  ThreadRuntime runtime(7, LatencyModel::Uniform(0, 50));
  std::vector<std::unique_ptr<Process>> procs;
  for (int i = 0; i < kRing; ++i) {
    if (i == 0) {
      procs.push_back(std::make_unique<RingSeeder>("seed", kRing, kTokens,
                                                   kHops, &hops));
    } else {
      procs.push_back(
          std::make_unique<RingHop>("hop" + std::to_string(i), kRing, &hops));
    }
    runtime.Register(procs.back().get());
  }
  runtime.Run();
  EXPECT_EQ(hops.load(), kTokens * (kHops + 1));
}

// Repeated short Run() cycles: each one walks the full start / quiesce /
// teardown sequence, which is where the stopping_ handshake with the
// worker condition variables lives.
TEST(ThreadStressTest, RepeatedRunCyclesExerciseTeardown) {
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> hops{0};
    ThreadRuntime runtime(static_cast<uint64_t>(round + 1));
    RingSeeder seeder("seed", 3, 2, 5, &hops);
    RingHop h1("hop1", 3, &hops);
    RingHop h2("hop2", 3, &hops);
    runtime.Register(&seeder);
    runtime.Register(&h1);
    runtime.Register(&h2);
    runtime.Run();
    EXPECT_EQ(hops.load(), 2 * 6);
  }
}

// Full warehouse pipeline on real threads: sources, integrator, view
// managers, and the merge process all run concurrently, and the MVC
// checker must still pass at the end.
TEST(ThreadStressTest, GeneratedWorkloadOnThreadsIsConsistent) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    WorkloadSpec spec;
    spec.seed = seed;
    spec.num_transactions = 25;
    spec.num_views = 3;
    spec.mean_interarrival = 300;
    auto config = GenerateScenario(spec);
    ASSERT_TRUE(config.ok());
    config->use_threads = true;
    config->latency = LatencyModel::Uniform(0, 200);
    auto system = WarehouseSystem::Build(std::move(*config));
    ASSERT_TRUE(system.ok());
    (*system)->Run();
    ConsistencyChecker checker = (*system)->MakeChecker();
    EXPECT_TRUE(checker.CheckComplete((*system)->recorder()).ok())
        << checker.CheckComplete((*system)->recorder());
  }
}

// MVCC read path under real-thread contention: a pool of Poisson
// readers hammers the warehouse while maintenance commits run, so TSan
// watches chunk shared_ptr refcounts cross threads (handles released on
// reader threads while the warehouse seals new versions).
TEST(ThreadStressTest, ReaderPoolSnapshotsAreNeverTornOnThreads) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    WorkloadSpec spec;
    spec.seed = seed;
    spec.num_transactions = 20;
    spec.num_views = 3;
    spec.mean_interarrival = 300;
    auto config = GenerateScenario(spec);
    ASSERT_TRUE(config.ok());
    config->use_threads = true;
    config->latency = LatencyModel::Uniform(0, 200);
    config->warehouse.max_retained_versions = 4;
    auto system = WarehouseSystem::Build(std::move(*config));
    ASSERT_TRUE(system.ok());
    ReaderPoolOptions pool;
    pool.num_readers = 4;
    pool.reads_per_reader = 12;
    pool.mean_interval_us = 500.0;
    pool.seed = seed;
    std::vector<WarehouseReader*> readers =
        (*system)->AttachReaderPool(pool);
    (*system)->Run();
    const size_t views = (*system)->bound_views().size();
    for (const WarehouseReader* reader : readers) {
      ASSERT_EQ(reader->observations().size(), pool.reads_per_reader);
      for (const auto& obs : reader->observations()) {
        ASSERT_TRUE(obs.ok()) << obs.error;
        EXPECT_EQ(obs.snapshots.size(), views);
      }
    }
  }
}

// Background compaction racing the read path on real threads: the
// compactor collapses and squash-rebuilds versions (rebuilds run on its
// own thread against sealed chunks) while a reader pool acquires and
// releases snapshot handles and commits keep sealing new versions. TSan
// watches the chunk refcounts cross all three thread groups; the
// observation checks prove no reader ever saw a torn or reclaimed
// snapshot.
TEST(ThreadStressTest, CompactorRacingReadersNeverTearsSnapshots) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    WorkloadSpec spec;
    spec.seed = seed;
    spec.num_transactions = 25;
    spec.num_views = 3;
    spec.mean_interarrival = 300;
    auto config = GenerateScenario(spec);
    ASSERT_TRUE(config.ok());
    config->use_threads = true;
    config->latency = LatencyModel::Uniform(0, 200);
    config->warehouse.max_retained_versions = 64;
    config->compaction.enabled = true;
    config->compaction.tiered.hot_window = 2;
    config->compaction.stats_every_commits = 1;
    auto system = WarehouseSystem::Build(std::move(*config));
    ASSERT_TRUE(system.ok());
    ReaderPoolOptions pool;
    pool.num_readers = 4;
    pool.reads_per_reader = 12;
    pool.mean_interval_us = 500.0;
    pool.seed = seed;
    std::vector<WarehouseReader*> readers =
        (*system)->AttachReaderPool(pool);
    (*system)->Run();
    const size_t views = (*system)->bound_views().size();
    for (const WarehouseReader* reader : readers) {
      ASSERT_EQ(reader->observations().size(), pool.reads_per_reader);
      for (const auto& obs : reader->observations()) {
        ASSERT_TRUE(obs.ok()) << obs.error;
        EXPECT_EQ(obs.snapshots.size(), views);
      }
    }
    ASSERT_NE((*system)->compactor(), nullptr);
    EXPECT_GT((*system)->compactor()->stats().plans, 0);
  }
}

TEST(ThreadStressTest, QueryReadersRacingCompactorGetConsistentAnswers) {
  // The serve tier under TSan: scan queries execute on pinned versions
  // while the compactor swaps squashed versions in underneath. Every
  // query must come back answered (no sheds without a budget, no
  // errors), and the response payload must be internally consistent.
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    WorkloadSpec spec;
    spec.seed = seed;
    spec.num_transactions = 25;
    spec.num_views = 3;
    spec.mean_interarrival = 300;
    auto config = GenerateScenario(spec);
    ASSERT_TRUE(config.ok());
    config->use_threads = true;
    config->latency = LatencyModel::Uniform(0, 200);
    config->warehouse.max_retained_versions = 64;
    config->compaction.enabled = true;
    config->compaction.tiered.hot_window = 2;
    config->compaction.stats_every_commits = 1;
    auto system = WarehouseSystem::Build(std::move(*config));
    ASSERT_TRUE(system.ok());
    ReaderPoolOptions pool;
    pool.num_readers = 4;
    pool.reads_per_reader = 12;
    pool.mean_interval_us = 500.0;
    pool.seed = seed;
    pool.query.enabled = true;
    pool.query.zipf_theta = 0.99;
    pool.query.burst = 2;
    pool.query.column = "j";
    pool.query.key_min = 0;
    pool.query.key_max = 9;
    pool.query.range_width = 3;
    std::vector<WarehouseReader*> readers =
        (*system)->AttachReaderPool(pool);
    (*system)->Run();
    for (const WarehouseReader* reader : readers) {
      ASSERT_EQ(reader->query_observations().size(),
                pool.reads_per_reader * pool.query.burst);
      EXPECT_EQ(reader->queries_shed(), 0);
      EXPECT_EQ(reader->in_flight_size(), 0u);
      for (const auto& obs : reader->query_observations()) {
        ASSERT_TRUE(obs.ok()) << obs.error;
        EXPECT_GE(obs.as_of_commit, 0);
        int64_t total = 0;
        for (const Row& row : obs.rows) total += row.count;
        EXPECT_EQ(total, obs.matched_count);
        EXPECT_GE(obs.rows_scanned, static_cast<int64_t>(obs.rows.size()));
      }
    }
    ASSERT_NE((*system)->compactor(), nullptr);
    EXPECT_GT((*system)->compactor()->stats().plans, 0);
  }
}

// Group commit under TSan: the warehouse batches transactions into one
// versioned-store publish while a reader pool acquires snapshots and
// the compactor collapses/squashes versions underneath. Batched
// publishes leave gaps in the store's commit-id sequence, so this is
// the interleaving where a torn read would show: a reader must only
// ever see a batch-boundary state, and that state must equal the
// oracle's catalog at exactly its as_of_commit.
TEST(ThreadStressTest, GroupCommitRacingReadersAndCompactorNeverTears) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    WorkloadSpec spec;
    spec.seed = seed;
    spec.num_transactions = 25;
    spec.num_views = 3;
    spec.mean_interarrival = 300;
    auto config = GenerateScenario(spec);
    ASSERT_TRUE(config.ok());
    config->use_threads = true;
    config->latency = LatencyModel::Uniform(0, 200);
    config->warehouse.max_retained_versions = 64;
    config->compaction.enabled = true;
    config->compaction.tiered.hot_window = 2;
    config->compaction.stats_every_commits = 1;
    config->ingest.group_commit.enabled = true;
    config->ingest.group_commit.max_batch = 4;
    config->ingest.group_commit.max_delay_us = 1000;
    auto system = WarehouseSystem::Build(std::move(*config));
    ASSERT_TRUE(system.ok()) << system.status().ToString();
    ReaderPoolOptions pool;
    pool.num_readers = 4;
    pool.reads_per_reader = 12;
    pool.mean_interval_us = 500.0;
    pool.seed = seed;
    std::vector<WarehouseReader*> readers =
        (*system)->AttachReaderPool(pool);
    (*system)->Run();

    const ConsistencyRecorder& recorder = (*system)->recorder();
    ConsistencyChecker checker = (*system)->MakeChecker();
    EXPECT_TRUE(checker.CheckComplete(recorder).ok())
        << checker.CheckComplete(recorder);

    // Oracle catalog at commit 0 (before any batch lands).
    std::map<std::string, Table> initial;
    TableProviderFn provider = CatalogProvider(&(*system)->initial_base());
    for (const BoundView& view : (*system)->bound_views()) {
      auto table = ViewEvaluator::Evaluate(view, provider);
      ASSERT_TRUE(table.ok()) << table.status().ToString();
      initial.emplace(view.name(), *std::move(table));
    }

    const size_t views = (*system)->bound_views().size();
    for (const WarehouseReader* reader : readers) {
      ASSERT_EQ(reader->observations().size(), pool.reads_per_reader);
      for (const auto& obs : reader->observations()) {
        ASSERT_TRUE(obs.ok()) << obs.error;
        ASSERT_EQ(obs.snapshots.size(), views);
        ASSERT_GE(obs.as_of_commit, 0);
        ASSERT_LE(obs.as_of_commit,
                  static_cast<int64_t>(recorder.commits().size()));
        for (const Table& got : obs.snapshots) {
          const Table* want = nullptr;
          if (obs.as_of_commit == 0) {
            auto it = initial.find(got.name());
            ASSERT_NE(it, initial.end());
            want = &it->second;
          } else {
            auto oracle =
                recorder.commits()[static_cast<size_t>(obs.as_of_commit) - 1]
                    .view_snapshot.GetTable(got.name());
            ASSERT_TRUE(oracle.ok());
            want = *oracle;
          }
          EXPECT_TRUE(got.ContentsEqual(*want))
              << "seed " << seed << ": view " << got.name()
              << " torn at commit " << obs.as_of_commit;
        }
      }
    }
    ASSERT_NE((*system)->compactor(), nullptr);
    EXPECT_GT((*system)->compactor()->stats().plans, 0);
  }
}

// Paper scenario end-to-end on threads with jittered latencies.
TEST(ThreadStressTest, Table1RaceScenarioOnThreads) {
  SystemConfig config = Table1RaceScenario();
  config.use_threads = true;
  config.latency = LatencyModel::Uniform(0, 500);
  auto system = WarehouseSystem::Build(std::move(config));
  ASSERT_TRUE(system.ok());
  (*system)->Run();
  ConsistencyChecker checker = (*system)->MakeChecker();
  EXPECT_TRUE(checker.CheckComplete((*system)->recorder()).ok())
      << checker.CheckComplete((*system)->recorder());
}

// Self-maintaining group managers under TSan (src/maint/): one actor
// maintains a whole merge group from its auxiliary store while a
// reader pool acquires snapshots and the compactor squashes versions
// underneath. The manager's auxiliary tables are actor-private, so the
// only sharing is through the stock message channels — any data race
// here is a protocol bug, exactly what the instrumented build exists
// to catch. The oracle still requires full MVC at the end.
TEST(ThreadStressTest, SelfMaintainingManagersRacingReadersAndCompactor) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    WorkloadSpec spec;
    spec.seed = seed;
    spec.num_transactions = 25;
    spec.num_views = 4;
    spec.max_view_width = 3;
    spec.mean_interarrival = 300;
    auto config = GenerateScenario(spec);
    ASSERT_TRUE(config.ok());
    config->use_threads = true;
    config->maint.self_maintain = true;
    config->latency = LatencyModel::Uniform(0, 200);
    config->warehouse.max_retained_versions = 64;
    config->compaction.enabled = true;
    config->compaction.tiered.hot_window = 2;
    config->compaction.stats_every_commits = 1;
    auto system = WarehouseSystem::Build(std::move(*config));
    ASSERT_TRUE(system.ok()) << system.status().ToString();
    ReaderPoolOptions pool;
    pool.num_readers = 4;
    pool.reads_per_reader = 12;
    pool.mean_interval_us = 500.0;
    pool.seed = seed;
    std::vector<WarehouseReader*> readers =
        (*system)->AttachReaderPool(pool);
    (*system)->Run();
    for (const WarehouseReader* reader : readers) {
      EXPECT_EQ(reader->observations().size(),
                static_cast<size_t>(pool.reads_per_reader));
    }
    ASSERT_FALSE((*system)->maint_vms().empty());
    for (const auto& vm : (*system)->maint_vms()) {
      EXPECT_GT(vm->query_rounds_avoided(), 0);
    }
    ConsistencyChecker checker = (*system)->MakeChecker();
    EXPECT_TRUE(checker.CheckComplete((*system)->recorder()).ok())
        << checker.CheckComplete((*system)->recorder());
  }
}

}  // namespace
}  // namespace mvc
