// Tests for distributed-merge view partitioning (Section 6.1).

#include <gtest/gtest.h>

#include <algorithm>

#include "merge/partition.h"
#include "workload/paper_examples.h"

namespace mvc {
namespace {

std::map<std::string, Schema> PaperSchemas() {
  return {{"R", Schema::AllInt64({"A", "B"})},
          {"S", Schema::AllInt64({"B", "C"})},
          {"T", Schema::AllInt64({"C", "D"})},
          {"Q", Schema::AllInt64({"D", "E"})}};
}

BoundView BindDef(const ViewDefinition& def) {
  auto bound = BoundView::Bind(def, PaperSchemas());
  MVC_CHECK(bound.ok()) << bound.status().ToString();
  return std::move(bound).value();
}

TEST(PartitionTest, Figure3Partition) {
  // Figure 3: V1 = R, V2 = S |><| T, V3 = Q -> groups {V1,V2}? No:
  // V1 uses R only, V2 uses S,T, V3 uses Q -> three disjoint groups...
  // The figure shows {V1, V2} under MP1 and {V3} under MP2 with V1 = R
  // and V2 = S |><| T; R,S,T disjoint from Q. Using the paper's views
  // from the examples instead: V1 = R|><|S and V2 = S|><|T share S, V3 =
  // Q is disjoint.
  BoundView v1 = BindDef(PaperV1());
  BoundView v2 = BindDef(PaperV2());
  BoundView v3 = BindDef(PaperV3());
  auto groups = PartitionViews({&v1, &v2, &v3});
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].views, (std::vector<std::string>{"V1", "V2"}));
  EXPECT_EQ(groups[0].relations, (std::vector<std::string>{"R", "S", "T"}));
  EXPECT_EQ(groups[1].views, (std::vector<std::string>{"V3"}));
  EXPECT_EQ(groups[1].relations, (std::vector<std::string>{"Q"}));
}

TEST(PartitionTest, ChainOfSharingCollapsesToOneGroup) {
  // V1={R,S}, V2={S,T}, Vq={T,Q}: transitively connected.
  BoundView v1 = BindDef(PaperV1());
  BoundView v2 = BindDef(PaperV2());
  ViewDefinition tq;
  tq.name = "Vq";
  tq.relations = {"T", "Q"};
  BoundView vq = BindDef(tq);
  auto groups = PartitionViews({&v1, &v2, &vq});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].views, (std::vector<std::string>{"V1", "V2", "Vq"}));
}

TEST(PartitionTest, FullyDisjointViewsEachGetAGroup) {
  ViewDefinition a;
  a.name = "A";
  a.relations = {"R"};
  ViewDefinition b;
  b.name = "B";
  b.relations = {"T"};
  ViewDefinition c;
  c.name = "C";
  c.relations = {"Q"};
  BoundView va = BindDef(a);
  BoundView vb = BindDef(b);
  BoundView vc = BindDef(c);
  auto groups = PartitionViews({&va, &vb, &vc});
  EXPECT_EQ(groups.size(), 3u);
}

TEST(PartitionTest, PartitionIntoRespectsBudget) {
  ViewDefinition a;
  a.name = "A";
  a.relations = {"R"};
  ViewDefinition b;
  b.name = "B";
  b.relations = {"T"};
  ViewDefinition c;
  c.name = "C";
  c.relations = {"Q"};
  BoundView va = BindDef(a);
  BoundView vb = BindDef(b);
  BoundView vc = BindDef(c);
  auto groups = PartitionViewsInto({&va, &vb, &vc}, 2);
  ASSERT_EQ(groups.size(), 2u);
  size_t total = 0;
  for (const auto& g : groups) total += g.views.size();
  EXPECT_EQ(total, 3u);

  // Budget of one puts everything together.
  auto one = PartitionViewsInto({&va, &vb, &vc}, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].views.size(), 3u);

  // A generous budget returns the exact partition.
  auto exact = PartitionViewsInto({&va, &vb, &vc}, 10);
  EXPECT_EQ(exact.size(), 3u);
}

TEST(PartitionTest, SingleViewSingleton) {
  BoundView v1 = BindDef(PaperV1());
  auto groups = PartitionViews({&v1});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].views, (std::vector<std::string>{"V1"}));
}

TEST(PartitionTest, EmptyViewSetYieldsNoGroups) {
  // A warehouse with no views is degenerate but must not crash the
  // wiring; both entry points return an empty partition.
  EXPECT_TRUE(PartitionViews({}).empty());
  EXPECT_TRUE(PartitionViewsInto({}, 1).empty());
  EXPECT_TRUE(PartitionViewsInto({}, 8).empty());
}

TEST(PartitionTest, SingletonGroupsSurviveBalancing) {
  // Every view on its own relation: the exact partition is all
  // singletons, and a budget of exactly that size must keep each
  // singleton intact rather than merging any pair.
  ViewDefinition a;
  a.name = "A";
  a.relations = {"R"};
  ViewDefinition b;
  b.name = "B";
  b.relations = {"T"};
  ViewDefinition c;
  c.name = "C";
  c.relations = {"Q"};
  BoundView va = BindDef(a);
  BoundView vb = BindDef(b);
  BoundView vc = BindDef(c);
  auto groups = PartitionViewsInto({&va, &vb, &vc}, 3);
  ASSERT_EQ(groups.size(), 3u);
  for (const auto& g : groups) {
    EXPECT_EQ(g.views.size(), 1u);
    EXPECT_EQ(g.relations.size(), 1u);
  }
  EXPECT_EQ(groups[0].views, (std::vector<std::string>{"A"}));
  EXPECT_EQ(groups[1].views, (std::vector<std::string>{"B"}));
  EXPECT_EQ(groups[2].views, (std::vector<std::string>{"C"}));
}

TEST(PartitionTest, ViewRoutingCoversEveryViewExactlyOnce) {
  // The routing map behind the merge fan-out: at every budget, every
  // view resolves to exactly one live group, and that group contains it.
  BoundView v1 = BindDef(PaperV1());
  BoundView v2 = BindDef(PaperV2());
  BoundView v3 = BindDef(PaperV3());
  ViewDefinition tq;
  tq.name = "Vq";
  tq.relations = {"T", "Q"};
  BoundView vq = BindDef(tq);
  const std::vector<const BoundView*> views{&v1, &v2, &v3, &vq};
  for (size_t budget = 1; budget <= 5; ++budget) {
    auto groups = PartitionViewsInto(views, budget);
    auto routing = ViewRouting(groups);
    ASSERT_EQ(routing.size(), views.size()) << "budget " << budget;
    for (const BoundView* view : views) {
      auto it = routing.find(view->name());
      ASSERT_NE(it, routing.end()) << view->name();
      ASSERT_LT(it->second, groups.size());
      const auto& members = groups[it->second].views;
      EXPECT_NE(std::find(members.begin(), members.end(), view->name()),
                members.end())
          << "routing sent " << view->name() << " to a group without it";
    }
  }
}

TEST(PartitionTest, ViewRoutingStableUnderGroupMerges) {
  // Remap stability: shrinking the budget merges groups but never
  // splits one — views co-routed at budget k stay co-routed at every
  // smaller budget.
  BoundView v1 = BindDef(PaperV1());
  BoundView v2 = BindDef(PaperV2());
  BoundView v3 = BindDef(PaperV3());
  ViewDefinition tq;
  tq.name = "Vq";
  tq.relations = {"T", "Q"};
  BoundView vq = BindDef(tq);
  const std::vector<const BoundView*> views{&v1, &v2, &v3, &vq};
  std::vector<std::map<std::string, size_t>> routings;
  for (size_t budget = 1; budget <= 4; ++budget) {
    routings.push_back(ViewRouting(PartitionViewsInto(views, budget)));
  }
  for (size_t wide = 1; wide < routings.size(); ++wide) {
    for (size_t narrow = 0; narrow < wide; ++narrow) {
      for (const BoundView* a : views) {
        for (const BoundView* b : views) {
          if (routings[wide].at(a->name()) != routings[wide].at(b->name())) {
            continue;
          }
          EXPECT_EQ(routings[narrow].at(a->name()),
                    routings[narrow].at(b->name()))
              << a->name() << " and " << b->name() << " split when the "
              << "budget shrank from " << wide + 1 << " to " << narrow + 1;
        }
      }
    }
  }
}

TEST(PartitionTest, ShardPlanCoLocatesEachGroupsSources) {
  // src0 hosts R,S; src1 hosts T; src2 hosts Q. Groups: {V1,V2} over
  // R,S,T and {V3} over Q. src0 and src1 both host group-0 relations so
  // they must share a shard; src2 is free to take its own.
  BoundView v1 = BindDef(PaperV1());
  BoundView v2 = BindDef(PaperV2());
  BoundView v3 = BindDef(PaperV3());
  auto groups = PartitionViews({&v1, &v2, &v3});
  const std::map<std::string, std::vector<std::string>> sources{
      {"src0", {"R", "S"}}, {"src1", {"T"}}, {"src2", {"Q"}}};
  ShardPlan plan = PlanIntegratorShards(sources, groups, {}, 4);
  EXPECT_EQ(plan.num_shards, 2u);
  EXPECT_EQ(plan.ShardOf("src0"), plan.ShardOf("src1"));
  EXPECT_NE(plan.ShardOf("src0"), plan.ShardOf("src2"));
}

TEST(PartitionTest, ShardPlanHonorsGlobalTxnCoLocation) {
  // Disjoint groups would allow src0 and src2 to split, but a global
  // transaction spanning them forces one shard.
  BoundView v1 = BindDef(PaperV1());
  BoundView v3 = BindDef(PaperV3());
  auto groups = PartitionViews({&v1, &v3});
  const std::map<std::string, std::vector<std::string>> sources{
      {"src0", {"R", "S"}}, {"src2", {"Q"}}};
  ShardPlan split = PlanIntegratorShards(sources, groups, {}, 2);
  EXPECT_EQ(split.num_shards, 2u);
  ShardPlan fused = PlanIntegratorShards(sources, groups,
                                         {{"src0", "src2"}}, 2);
  EXPECT_EQ(fused.num_shards, 1u);
  EXPECT_EQ(fused.ShardOf("src0"), fused.ShardOf("src2"));
}

TEST(PartitionTest, ShardPlanBoundedByRequestAndBalanced) {
  // Four independent single-source groups, budget two: every source is
  // assigned, shard indexes stay dense, and the balance puts two
  // clusters on each shard.
  ViewDefinition r;
  r.name = "VR";
  r.relations = {"R"};
  ViewDefinition s;
  s.name = "VS";
  s.relations = {"S"};
  ViewDefinition t;
  t.name = "VT";
  t.relations = {"T"};
  ViewDefinition q;
  q.name = "VQ";
  q.relations = {"Q"};
  BoundView vr = BindDef(r);
  BoundView vs = BindDef(s);
  BoundView vt = BindDef(t);
  BoundView vq = BindDef(q);
  auto groups = PartitionViews({&vr, &vs, &vt, &vq});
  const std::map<std::string, std::vector<std::string>> sources{
      {"a", {"R"}}, {"b", {"S"}}, {"c", {"T"}}, {"d", {"Q"}}};
  ShardPlan plan = PlanIntegratorShards(sources, groups, {}, 2);
  EXPECT_EQ(plan.num_shards, 2u);
  std::map<size_t, size_t> population;
  for (const auto& [source, shard] : plan.shard_of_source) {
    ASSERT_LT(shard, plan.num_shards);
    ++population[shard];
  }
  ASSERT_EQ(plan.shard_of_source.size(), sources.size());
  EXPECT_EQ(population[0], 2u);
  EXPECT_EQ(population[1], 2u);
}

TEST(PartitionTest, SingletonViewGroupAmongLargerGroups) {
  // Mixed shapes: {V1, V2} share S while the singleton {V3} rides along;
  // squeezing into two groups must keep the shared pair together and
  // leave the singleton group as-is (it is the smallest).
  BoundView v1 = BindDef(PaperV1());
  BoundView v2 = BindDef(PaperV2());
  BoundView v3 = BindDef(PaperV3());
  auto groups = PartitionViewsInto({&v1, &v2, &v3}, 2);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].views, (std::vector<std::string>{"V1", "V2"}));
  EXPECT_EQ(groups[1].views, (std::vector<std::string>{"V3"}));
}

}  // namespace
}  // namespace mvc
