// Tests for distributed-merge view partitioning (Section 6.1).

#include <gtest/gtest.h>

#include "merge/partition.h"
#include "workload/paper_examples.h"

namespace mvc {
namespace {

std::map<std::string, Schema> PaperSchemas() {
  return {{"R", Schema::AllInt64({"A", "B"})},
          {"S", Schema::AllInt64({"B", "C"})},
          {"T", Schema::AllInt64({"C", "D"})},
          {"Q", Schema::AllInt64({"D", "E"})}};
}

BoundView BindDef(const ViewDefinition& def) {
  auto bound = BoundView::Bind(def, PaperSchemas());
  MVC_CHECK(bound.ok()) << bound.status().ToString();
  return std::move(bound).value();
}

TEST(PartitionTest, Figure3Partition) {
  // Figure 3: V1 = R, V2 = S |><| T, V3 = Q -> groups {V1,V2}? No:
  // V1 uses R only, V2 uses S,T, V3 uses Q -> three disjoint groups...
  // The figure shows {V1, V2} under MP1 and {V3} under MP2 with V1 = R
  // and V2 = S |><| T; R,S,T disjoint from Q. Using the paper's views
  // from the examples instead: V1 = R|><|S and V2 = S|><|T share S, V3 =
  // Q is disjoint.
  BoundView v1 = BindDef(PaperV1());
  BoundView v2 = BindDef(PaperV2());
  BoundView v3 = BindDef(PaperV3());
  auto groups = PartitionViews({&v1, &v2, &v3});
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].views, (std::vector<std::string>{"V1", "V2"}));
  EXPECT_EQ(groups[0].relations, (std::vector<std::string>{"R", "S", "T"}));
  EXPECT_EQ(groups[1].views, (std::vector<std::string>{"V3"}));
  EXPECT_EQ(groups[1].relations, (std::vector<std::string>{"Q"}));
}

TEST(PartitionTest, ChainOfSharingCollapsesToOneGroup) {
  // V1={R,S}, V2={S,T}, Vq={T,Q}: transitively connected.
  BoundView v1 = BindDef(PaperV1());
  BoundView v2 = BindDef(PaperV2());
  ViewDefinition tq;
  tq.name = "Vq";
  tq.relations = {"T", "Q"};
  BoundView vq = BindDef(tq);
  auto groups = PartitionViews({&v1, &v2, &vq});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].views, (std::vector<std::string>{"V1", "V2", "Vq"}));
}

TEST(PartitionTest, FullyDisjointViewsEachGetAGroup) {
  ViewDefinition a;
  a.name = "A";
  a.relations = {"R"};
  ViewDefinition b;
  b.name = "B";
  b.relations = {"T"};
  ViewDefinition c;
  c.name = "C";
  c.relations = {"Q"};
  BoundView va = BindDef(a);
  BoundView vb = BindDef(b);
  BoundView vc = BindDef(c);
  auto groups = PartitionViews({&va, &vb, &vc});
  EXPECT_EQ(groups.size(), 3u);
}

TEST(PartitionTest, PartitionIntoRespectsBudget) {
  ViewDefinition a;
  a.name = "A";
  a.relations = {"R"};
  ViewDefinition b;
  b.name = "B";
  b.relations = {"T"};
  ViewDefinition c;
  c.name = "C";
  c.relations = {"Q"};
  BoundView va = BindDef(a);
  BoundView vb = BindDef(b);
  BoundView vc = BindDef(c);
  auto groups = PartitionViewsInto({&va, &vb, &vc}, 2);
  ASSERT_EQ(groups.size(), 2u);
  size_t total = 0;
  for (const auto& g : groups) total += g.views.size();
  EXPECT_EQ(total, 3u);

  // Budget of one puts everything together.
  auto one = PartitionViewsInto({&va, &vb, &vc}, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].views.size(), 3u);

  // A generous budget returns the exact partition.
  auto exact = PartitionViewsInto({&va, &vb, &vc}, 10);
  EXPECT_EQ(exact.size(), 3u);
}

TEST(PartitionTest, SingleViewSingleton) {
  BoundView v1 = BindDef(PaperV1());
  auto groups = PartitionViews({&v1});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].views, (std::vector<std::string>{"V1"}));
}

TEST(PartitionTest, EmptyViewSetYieldsNoGroups) {
  // A warehouse with no views is degenerate but must not crash the
  // wiring; both entry points return an empty partition.
  EXPECT_TRUE(PartitionViews({}).empty());
  EXPECT_TRUE(PartitionViewsInto({}, 1).empty());
  EXPECT_TRUE(PartitionViewsInto({}, 8).empty());
}

TEST(PartitionTest, SingletonGroupsSurviveBalancing) {
  // Every view on its own relation: the exact partition is all
  // singletons, and a budget of exactly that size must keep each
  // singleton intact rather than merging any pair.
  ViewDefinition a;
  a.name = "A";
  a.relations = {"R"};
  ViewDefinition b;
  b.name = "B";
  b.relations = {"T"};
  ViewDefinition c;
  c.name = "C";
  c.relations = {"Q"};
  BoundView va = BindDef(a);
  BoundView vb = BindDef(b);
  BoundView vc = BindDef(c);
  auto groups = PartitionViewsInto({&va, &vb, &vc}, 3);
  ASSERT_EQ(groups.size(), 3u);
  for (const auto& g : groups) {
    EXPECT_EQ(g.views.size(), 1u);
    EXPECT_EQ(g.relations.size(), 1u);
  }
  EXPECT_EQ(groups[0].views, (std::vector<std::string>{"A"}));
  EXPECT_EQ(groups[1].views, (std::vector<std::string>{"B"}));
  EXPECT_EQ(groups[2].views, (std::vector<std::string>{"C"}));
}

TEST(PartitionTest, SingletonViewGroupAmongLargerGroups) {
  // Mixed shapes: {V1, V2} share S while the singleton {V3} rides along;
  // squeezing into two groups must keep the shared pair together and
  // leave the singleton group as-is (it is the smallest).
  BoundView v1 = BindDef(PaperV1());
  BoundView v2 = BindDef(PaperV2());
  BoundView v3 = BindDef(PaperV3());
  auto groups = PartitionViewsInto({&v1, &v2, &v3}, 2);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].views, (std::vector<std::string>{"V1", "V2"}));
  EXPECT_EQ(groups[1].views, (std::vector<std::string>{"V3"}));
}

}  // namespace
}  // namespace mvc
