// Tests for the warehouse process: atomic application, replace-all
// actions, commit dependencies, and the Section 4.3 reordering anomaly.

#include <gtest/gtest.h>

#include "net/sim_runtime.h"
#include "storage/id_registry.h"
#include "warehouse/warehouse.h"

namespace mvc {
namespace {

constexpr ViewId kV1 = 0, kV2 = 1;

/// Shared name table: V1, V2, V in mint order.
const IdRegistry* TestRegistry() {
  static const IdRegistry* reg = [] {
    auto* r = new IdRegistry();
    r->InternViews({"V1", "V2", "V"});
    return r;
  }();
  return reg;
}

ActionList Al(ViewId view, Tuple t, int64_t count) {
  ActionList al;
  al.view = view;
  al.delta.target = TestRegistry()->ViewName(view);
  al.delta.Add(std::move(t), count);
  return al;
}

/// Submits prepared transactions with per-transaction delays.
class Submitter : public Process {
 public:
  Submitter(std::string name, ProcessId warehouse)
      : Process(std::move(name)), warehouse_(warehouse) {}

  void OnStart() override {
    TimeMicros at = 0;
    for (WarehouseTransaction& txn : to_send) {
      auto msg = std::make_unique<WarehouseTxnMsg>();
      msg->txn = std::move(txn);
      SendAfter(warehouse_, std::move(msg), at += 10);
    }
  }
  void OnMessage(ProcessId, MessagePtr msg) override {
    ASSERT_EQ(msg->kind, Message::Kind::kTxnCommitted);
    acks.push_back(static_cast<TxnCommittedMsg*>(msg.get())->txn_id);
  }

  ProcessId warehouse_;
  std::vector<WarehouseTransaction> to_send;
  std::vector<int64_t> acks;
};

class WarehouseTest : public ::testing::Test {
 protected:
  void Wire(WarehouseOptions options) {
    warehouse_ = std::make_unique<WarehouseProcess>("warehouse", options);
    warehouse_->SetRegistry(TestRegistry());
    ASSERT_TRUE(warehouse_->CreateView("V1", Schema::AllInt64({"A"})).ok());
    ASSERT_TRUE(warehouse_->CreateView("V2", Schema::AllInt64({"A"})).ok());
    ProcessId wpid = runtime_.Register(warehouse_.get());
    submitter_ = std::make_unique<Submitter>("merge", wpid);
    runtime_.Register(submitter_.get());
  }

  SimRuntime runtime_{1};
  std::unique_ptr<WarehouseProcess> warehouse_;
  std::unique_ptr<Submitter> submitter_;
};

TEST_F(WarehouseTest, AppliesAllActionListsAtomically) {
  Wire({});
  WarehouseTransaction txn;
  txn.txn_id = 1;
  txn.views = {kV1, kV2};
  txn.actions = {Al(kV1, Tuple{1}, 1), Al(kV2, Tuple{2}, 1)};
  submitter_->to_send = {txn};
  runtime_.Run();

  EXPECT_EQ((*warehouse_->views().GetTable("V1"))->CountOf(Tuple{1}), 1);
  EXPECT_EQ((*warehouse_->views().GetTable("V2"))->CountOf(Tuple{2}), 1);
  EXPECT_EQ(warehouse_->transactions_committed(), 1);
  EXPECT_EQ(warehouse_->actions_applied(), 2);
  EXPECT_EQ(submitter_->acks, (std::vector<int64_t>{1}));
}

TEST_F(WarehouseTest, ReplaceAllClearsThenInstalls) {
  Wire({});
  WarehouseTransaction seed;
  seed.txn_id = 1;
  seed.actions = {Al(kV1, Tuple{1}, 2)};
  WarehouseTransaction replace;
  replace.txn_id = 2;
  ActionList al = Al(kV1, Tuple{9}, 1);
  al.replace_all = true;
  replace.actions = {al};
  submitter_->to_send = {seed, replace};
  runtime_.Run();

  const Table* v1 = *warehouse_->views().GetTable("V1");
  EXPECT_EQ(v1->CountOf(Tuple{1}), 0);
  EXPECT_EQ(v1->CountOf(Tuple{9}), 1);
}

TEST_F(WarehouseTest, InitializeViewInstallsContents) {
  Wire({});
  Table initial("x", Schema::AllInt64({"A"}));
  ASSERT_TRUE(initial.Insert(Tuple{5}, 3).ok());
  ASSERT_TRUE(warehouse_->InitializeView("V1", initial).ok());
  EXPECT_EQ((*warehouse_->views().GetTable("V1"))->CountOf(Tuple{5}), 3);
}

TEST_F(WarehouseTest, CommitObserverSeesSnapshots) {
  Wire({});
  std::vector<int64_t> seen;
  warehouse_->SetCommitObserver([&](ProcessId, const WarehouseTransaction& t,
                                    const Catalog& views, TimeMicros) {
    seen.push_back(t.txn_id);
    EXPECT_TRUE(views.HasTable("V1"));
  });
  WarehouseTransaction txn;
  txn.txn_id = 7;
  txn.actions = {Al(kV1, Tuple{1}, 1)};
  submitter_->to_send = {txn};
  runtime_.Run();
  EXPECT_EQ(seen, (std::vector<int64_t>{7}));
}

TEST_F(WarehouseTest, JitterReordersIndependentTransactions) {
  // With jitter and no dependencies, commit order can differ from
  // submission order. Find a seed where it actually does.
  bool reordered = false;
  for (uint64_t seed = 1; seed < 30 && !reordered; ++seed) {
    SimRuntime runtime(seed);
    WarehouseOptions options;
    options.apply_delay = 10;
    options.apply_jitter = 10000;
    options.seed = seed;
    WarehouseProcess warehouse("warehouse", options);
    warehouse.SetRegistry(TestRegistry());
    ASSERT_TRUE(warehouse.CreateView("V1", Schema::AllInt64({"A"})).ok());
    ASSERT_TRUE(warehouse.CreateView("V2", Schema::AllInt64({"A"})).ok());
    ProcessId wpid = runtime.Register(&warehouse);
    Submitter submitter("merge", wpid);
    runtime.Register(&submitter);
    WarehouseTransaction t1;
    t1.txn_id = 1;
    t1.views = {kV1};
    t1.actions = {Al(kV1, Tuple{1}, 1)};
    WarehouseTransaction t2;
    t2.txn_id = 2;
    t2.views = {kV2};
    t2.actions = {Al(kV2, Tuple{2}, 1)};
    submitter.to_send = {t1, t2};
    runtime.Run();
    ASSERT_EQ(submitter.acks.size(), 2u);
    if (submitter.acks == std::vector<int64_t>{2, 1}) reordered = true;
  }
  EXPECT_TRUE(reordered) << "expected some seed to reorder commits";
}

TEST_F(WarehouseTest, DependenciesForceCommitOrderDespiteJitter) {
  // Same jittery warehouse, but t2 depends on t1: commit order must be
  // 1 then 2 for every seed.
  for (uint64_t seed = 1; seed < 20; ++seed) {
    SimRuntime runtime(seed);
    WarehouseOptions options;
    options.apply_delay = 10;
    options.apply_jitter = 10000;
    options.honor_dependencies = true;
    options.seed = seed;
    WarehouseProcess warehouse("warehouse", options);
    warehouse.SetRegistry(TestRegistry());
    ASSERT_TRUE(warehouse.CreateView("V1", Schema::AllInt64({"A"})).ok());
    ASSERT_TRUE(warehouse.CreateView("V2", Schema::AllInt64({"A"})).ok());
    ProcessId wpid = runtime.Register(&warehouse);
    Submitter submitter("merge", wpid);
    runtime.Register(&submitter);
    WarehouseTransaction t1;
    t1.txn_id = 1;
    t1.views = {kV1};
    t1.actions = {Al(kV1, Tuple{1}, 1)};
    WarehouseTransaction t2;
    t2.txn_id = 2;
    t2.views = {kV1};
    t2.depends_on = {1};
    t2.actions = {Al(kV1, Tuple{2}, 1)};
    submitter.to_send = {t1, t2};
    runtime.Run();
    EXPECT_EQ(submitter.acks, (std::vector<int64_t>{1, 2}))
        << "seed " << seed;
  }
}

TEST_F(WarehouseTest, DependentDeleteAfterInsertNeedsOrdering) {
  // t1 inserts a tuple, t2 deletes it. Without dependency enforcement
  // and with reordering, t2 would fire first and crash the warehouse;
  // with enforcement every seed is safe.
  SimRuntime runtime(5);
  WarehouseOptions options;
  options.apply_delay = 10;
  options.apply_jitter = 10000;
  options.honor_dependencies = true;
  options.seed = 5;
  WarehouseProcess warehouse("warehouse", options);
  warehouse.SetRegistry(TestRegistry());
  ASSERT_TRUE(warehouse.CreateView("V1", Schema::AllInt64({"A"})).ok());
  ProcessId wpid = runtime.Register(&warehouse);
  Submitter submitter("merge", wpid);
  runtime.Register(&submitter);
  WarehouseTransaction t1;
  t1.txn_id = 1;
  t1.views = {kV1};
  t1.actions = {Al(kV1, Tuple{1}, 1)};
  WarehouseTransaction t2;
  t2.txn_id = 2;
  t2.views = {kV1};
  t2.depends_on = {1};
  t2.actions = {Al(kV1, Tuple{1}, -1)};
  submitter.to_send = {t1, t2};
  runtime.Run();
  EXPECT_TRUE((*warehouse.views().GetTable("V1"))->empty());
}

}  // namespace
}  // namespace mvc

namespace mvc {
namespace {

TEST(WarehouseSetupTest, DuplicateViewRejected) {
  WarehouseProcess warehouse("warehouse");
  ASSERT_TRUE(warehouse.CreateView("V", Schema::AllInt64({"A"})).ok());
  EXPECT_TRUE(
      warehouse.CreateView("V", Schema::AllInt64({"A"})).IsAlreadyExists());
}

TEST(WarehouseSetupTest, InitializeUnknownViewFails) {
  WarehouseProcess warehouse("warehouse");
  Table t("x", Schema::AllInt64({"A"}));
  EXPECT_TRUE(warehouse.InitializeView("nope", t).IsNotFound());
}

TEST(WarehouseSetupTest, EffectiveRetentionTakesTheLargerKnob) {
  WarehouseOptions options;
  EXPECT_EQ(options.EffectiveRetention(), 0u);
  options.history_depth = 8;
  EXPECT_EQ(options.EffectiveRetention(), 8u);
  options.max_retained_versions = 3;
  EXPECT_EQ(options.EffectiveRetention(), 8u)
      << "clone-era configs keep their time-travel window";
  options.max_retained_versions = 12;
  EXPECT_EQ(options.EffectiveRetention(), 12u);
}

TEST(WarehouseSetupTest, HistoryDisabledByDefault) {
  // With history_depth = 0 nothing is retained; a normal current-state
  // read still works.
  SimRuntime runtime(1);
  WarehouseProcess warehouse("warehouse");
  warehouse.SetRegistry(TestRegistry());
  ASSERT_TRUE(warehouse.CreateView("V", Schema::AllInt64({"A"})).ok());
  ProcessId wpid = runtime.Register(&warehouse);

  class Probe : public Process {
   public:
    Probe(std::string name, ProcessId warehouse)
        : Process(std::move(name)), warehouse_(warehouse) {}
    void OnStart() override {
      auto read = std::make_unique<ReadViewsMsg>();
      Send(warehouse_, std::move(read));
    }
    void OnMessage(ProcessId, MessagePtr msg) override {
      got = msg->kind == Message::Kind::kViewsSnapshot;
    }
    ProcessId warehouse_;
    bool got = false;
  };
  Probe probe("probe", wpid);
  runtime.Register(&probe);
  runtime.Run();
  EXPECT_TRUE(probe.got);
}

}  // namespace
}  // namespace mvc

// --- Snapshot isolation under concurrent commits and pooled readers ---
//
// Randomized interleavings of jittered commits with a pool of Poisson
// readers, on both runtimes. The invariant is exact snapshot isolation:
// every observation must equal the catalog state at precisely its
// as_of_commit for *all* views at once — a torn multi-view read (one
// view from commit k, another from k+1) fails the comparison.

#include "net/thread_runtime.h"
#include "warehouse/reader.h"

namespace mvc {
namespace {

void RunSnapshotIsolationRound(Runtime* runtime, uint64_t seed) {
  Rng rng(seed * 977 + 1);
  WarehouseOptions options;
  options.apply_delay = 10;
  options.apply_jitter = 3000;  // commits finish out of submission order
  options.honor_dependencies = true;
  options.seed = seed;
  options.max_retained_versions = 64;
  WarehouseProcess warehouse("warehouse", options);
  warehouse.SetRegistry(TestRegistry());
  const Schema schema = Schema::AllInt64({"A"});
  ASSERT_TRUE(warehouse.CreateView("V1", schema).ok());
  ASSERT_TRUE(warehouse.CreateView("V2", schema).ok());

  // Ground truth per commit count, recorded on the warehouse actor by
  // the commit observer. Commit 0 is the initial (empty) state.
  std::map<int64_t, std::pair<std::string, std::string>> expected;
  expected[0] = {Table("V1", schema).ToString(),
                 Table("V2", schema).ToString()};
  warehouse.SetCommitObserver([&](ProcessId, const WarehouseTransaction&,
                                  const Catalog& views, TimeMicros) {
    expected[warehouse.transactions_committed()] = {
        (*views.GetTable("V1"))->ToString(),
        (*views.GetTable("V2"))->ToString()};
  });

  ProcessId wpid = runtime->Register(&warehouse);
  Submitter submitter("merge", wpid);
  runtime->Register(&submitter);

  // Random multi-view transactions: txn i inserts into both views in
  // one atomic unit; some also delete one copy a predecessor inserted
  // (dependency-ordered so the delete is always valid).
  constexpr int64_t kTxns = 24;
  std::set<int64_t> deleted;
  for (int64_t i = 1; i <= kTxns; ++i) {
    WarehouseTransaction txn;
    txn.txn_id = i;
    txn.views = {kV1, kV2};
    txn.actions = {Al(kV1, Tuple{i}, 2), Al(kV2, Tuple{100 + i}, 1)};
    if (i > 2 && rng.Bernoulli(0.4)) {
      const int64_t victim = rng.UniformInt(1, i - 1);
      // Each txn inserts 2 copies; one delete per victim stays valid.
      if (deleted.insert(victim).second) {
        txn.actions.push_back(Al(kV1, Tuple{victim}, -1));
        txn.depends_on = {victim};
      }
    }
    submitter.to_send.push_back(std::move(txn));
  }

  // Reader pool: independent Poisson schedules overlapping the commits.
  std::vector<std::unique_ptr<WarehouseReader>> readers;
  for (int r = 0; r < 3; ++r) {
    readers.push_back(std::make_unique<WarehouseReader>(
        "reader-" + std::to_string(r), std::vector<ViewId>{kV1, kV2},
        PoissonReadSchedule(rng.engine()(), 16, 60.0)));
    runtime->Register(readers.back().get());
    readers.back()->SetWarehouse(wpid);
  }

  runtime->Run();

  ASSERT_EQ(warehouse.transactions_committed(), kTxns);
  size_t checked = 0;
  for (const auto& reader : readers) {
    for (const auto& obs : reader->observations()) {
      ASSERT_TRUE(obs.ok()) << obs.error;
      ASSERT_EQ(obs.snapshots.size(), 2u);
      auto truth = expected.find(obs.as_of_commit);
      ASSERT_NE(truth, expected.end())
          << "observation cites unknown commit " << obs.as_of_commit;
      EXPECT_EQ(obs.snapshots[0].ToString(), truth->second.first)
          << "seed " << seed << ": V1 torn at commit " << obs.as_of_commit;
      EXPECT_EQ(obs.snapshots[1].ToString(), truth->second.second)
          << "seed " << seed << ": V2 torn at commit " << obs.as_of_commit;
      ++checked;
    }
  }
  EXPECT_EQ(checked, 3u * 16u);
  // A delete landing in a view while another reader holds an older
  // version means several versions were genuinely live at some point;
  // at quiescence only the retained window remains.
  EXPECT_GE(warehouse.store().versions_live(), 1u);
}

TEST(SnapshotIsolationTest, PooledReadsNeverTearOnSimRuntime) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SimRuntime runtime(seed);
    RunSnapshotIsolationRound(&runtime, seed);
  }
}

TEST(SnapshotIsolationTest, PooledReadsNeverTearOnThreadRuntime) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    ThreadRuntime runtime(seed, LatencyModel::Uniform(0, 200));
    RunSnapshotIsolationRound(&runtime, seed);
  }
}

}  // namespace
}  // namespace mvc
