// Stress and failure-injection tests: large workloads, extreme latency
// regimes, slow components, and real-thread sweeps.

#include <gtest/gtest.h>

#include "system/warehouse_system.h"
#include "workload/generator.h"
#include "workload/paper_examples.h"

namespace mvc {
namespace {

SystemConfig BigScenario(uint64_t seed) {
  WorkloadSpec spec;
  spec.seed = seed;
  spec.num_sources = 3;
  spec.relations_per_source = 3;
  spec.num_views = 10;
  spec.max_view_width = 3;
  spec.num_transactions = 400;
  spec.updates_per_transaction = 2;
  spec.delete_fraction = 0.3;
  spec.modify_fraction = 0.2;
  spec.mean_interarrival = 500;
  auto config = GenerateScenario(spec);
  MVC_CHECK(config.ok());
  return std::move(*config);
}

TEST(StressTest, LargeWorkloadCompleteUnderSpa) {
  SystemConfig config = BigScenario(101);
  config.latency = LatencyModel::Uniform(200, 1500);
  config.vm_options.delta_cost = 200;
  auto system = WarehouseSystem::Build(std::move(config));
  ASSERT_TRUE(system.ok());
  (*system)->Run();
  EXPECT_EQ((*system)->recorder().updates().size(), 400u);
  ConsistencyChecker checker = (*system)->MakeChecker();
  EXPECT_TRUE(checker.CheckComplete((*system)->recorder()).ok())
      << checker.CheckComplete((*system)->recorder());
}

TEST(StressTest, LargeWorkloadStrongUnderPaWithHeavyBatching) {
  SystemConfig config = BigScenario(103);
  for (const auto& def : config.views) {
    config.manager_kinds[def.name] = ManagerKind::kStrong;
  }
  config.latency = LatencyModel::Uniform(200, 1500);
  config.vm_options.delta_cost = 1500;  // forces deep batching
  auto system = WarehouseSystem::Build(std::move(config));
  ASSERT_TRUE(system.ok());
  (*system)->Run();
  ConsistencyChecker checker = (*system)->MakeChecker();
  EXPECT_TRUE(checker.CheckStrong((*system)->recorder()).ok())
      << checker.CheckStrong((*system)->recorder());
}

TEST(StressTest, ZeroLatencyStillConsistent) {
  SystemConfig config = Example3Scenario();
  config.latency = LatencyModel::Zero();
  auto system = WarehouseSystem::Build(std::move(config));
  ASSERT_TRUE(system.ok());
  (*system)->Run();
  ConsistencyChecker checker = (*system)->MakeChecker();
  EXPECT_TRUE(checker.CheckComplete((*system)->recorder()).ok());
}

TEST(StressTest, PathologicalJitterStillConsistent) {
  // Latencies drawn from [1us, 50ms]: massive reordering across
  // channels, FIFO within each.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SystemConfig config = BigScenario(seed + 200);
    config.workload.resize(120);
    config.latency = LatencyModel::Uniform(1, 50000);
    config.seed = seed;
    auto system = WarehouseSystem::Build(std::move(config));
    ASSERT_TRUE(system.ok());
    (*system)->Run();
    ConsistencyChecker checker = (*system)->MakeChecker();
    EXPECT_TRUE(checker.CheckComplete((*system)->recorder()).ok())
        << "seed " << seed << ": "
        << checker.CheckComplete((*system)->recorder());
  }
}

TEST(StressTest, SlowMergeWithBatchedSubmissionDrains) {
  SystemConfig config = BigScenario(301);
  config.workload.resize(150);
  config.merge.process_delay = 500;
  config.merge.policy = SubmissionPolicy::kBatched;
  config.merge.batch_size = 8;
  config.merge.batch_timeout = 5000;
  config.latency = LatencyModel::Uniform(100, 400);
  auto system = WarehouseSystem::Build(std::move(config));
  ASSERT_TRUE(system.ok());
  (*system)->Run();
  ConsistencyChecker checker = (*system)->MakeChecker();
  EXPECT_TRUE(checker.CheckStrong((*system)->recorder()).ok())
      << checker.CheckStrong((*system)->recorder());
  // Everything drained despite the bottleneck.
  EXPECT_GT((*system)->recorder().commits().size(), 0u);
  for (const auto& merge : (*system)->merges()) {
    EXPECT_EQ(merge->engine().held_action_lists(), 0u);
    EXPECT_EQ(merge->engine().open_rows(), 0u);
  }
}

TEST(StressTest, QueryRoundsWithSlowSources) {
  SystemConfig config = Example3Scenario();
  config.vm_options.issue_query_round = true;
  config.source_options.query_delay = 3000;
  config.latency = LatencyModel::Uniform(300, 700);
  auto system = WarehouseSystem::Build(std::move(config));
  ASSERT_TRUE(system.ok());
  (*system)->Run();
  ConsistencyChecker checker = (*system)->MakeChecker();
  EXPECT_TRUE(checker.CheckComplete((*system)->recorder()).ok());
  // Query traffic reached the sources.
  EXPECT_GT((*system)->runtime().stats().by_kind.at("QueryRequest"), 0);
}

TEST(StressTest, SlowWarehouseSequentialPolicy) {
  SystemConfig config = BigScenario(401);
  config.workload.resize(100);
  config.merge.policy = SubmissionPolicy::kSequential;
  config.warehouse.apply_delay = 2000;
  config.warehouse.apply_jitter = 3000;
  config.latency = LatencyModel::Uniform(100, 300);
  auto system = WarehouseSystem::Build(std::move(config));
  ASSERT_TRUE(system.ok());
  (*system)->Run();
  ConsistencyChecker checker = (*system)->MakeChecker();
  EXPECT_TRUE(checker.CheckComplete((*system)->recorder()).ok())
      << checker.CheckComplete((*system)->recorder());
}

// Real threads: wall-clock latencies, genuine parallelism, same
// guarantees.
class ThreadSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ThreadSweepTest, GeneratedWorkloadOnThreadsIsConsistent) {
  WorkloadSpec spec;
  spec.seed = static_cast<uint64_t>(GetParam());
  spec.num_sources = 2;
  spec.relations_per_source = 2;
  spec.num_views = 4;
  spec.num_transactions = 30;
  spec.mean_interarrival = 300;
  auto config = GenerateScenario(spec);
  ASSERT_TRUE(config.ok());
  config->use_threads = true;
  config->latency = LatencyModel::Uniform(0, 200);
  auto system = WarehouseSystem::Build(std::move(*config));
  ASSERT_TRUE(system.ok());
  (*system)->Run();
  ConsistencyChecker checker = (*system)->MakeChecker();
  EXPECT_TRUE(checker.CheckComplete((*system)->recorder()).ok())
      << checker.CheckComplete((*system)->recorder());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreadSweepTest, ::testing::Range(1, 5));

TEST(StressTest, ThreadsWithStrongManagers) {
  WorkloadSpec spec;
  spec.seed = 77;
  spec.num_transactions = 40;
  spec.mean_interarrival = 200;
  auto config = GenerateScenario(spec);
  ASSERT_TRUE(config.ok());
  config->use_threads = true;
  for (const auto& def : config->views) {
    config->manager_kinds[def.name] = ManagerKind::kStrong;
  }
  config->vm_options.delta_cost = 500;  // real microseconds of busy wait
  auto system = WarehouseSystem::Build(std::move(*config));
  ASSERT_TRUE(system.ok());
  (*system)->Run();
  ConsistencyChecker checker = (*system)->MakeChecker();
  EXPECT_TRUE(checker.CheckStrong((*system)->recorder()).ok())
      << checker.CheckStrong((*system)->recorder());
}

}  // namespace
}  // namespace mvc
