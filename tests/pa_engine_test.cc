// Tests for the Painting Algorithm, including the paper's Example 4
// (why SPA breaks on intertwined updates) and the full Example 5 trace.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "merge/merge_engine.h"
#include "storage/id_registry.h"

namespace mvc {
namespace {

constexpr ViewId kV1 = 0, kV2 = 1, kV3 = 2, kV4 = 3;

/// Shared name table for all engine tests: V1..V4 in mint order.
const IdRegistry* TestRegistry() {
  static const IdRegistry* reg = [] {
    auto* r = new IdRegistry();
    r->InternViews({"V1", "V2", "V3", "V4"});
    return r;
  }();
  return reg;
}

ActionList MakeBatchAl(ViewId view, UpdateId first, UpdateId last) {
  ActionList al;
  al.view = view;
  al.first_update = first;
  al.update = last;
  for (UpdateId i = first; i <= last; ++i) al.covered.push_back(i);
  al.delta.target = TestRegistry()->ViewName(view);
  al.delta.Add(Tuple{last}, 1);
  return al;
}

ActionList MakeAl(ViewId view, UpdateId update) {
  return MakeBatchAl(view, update, update);
}

class PaEngineTest : public ::testing::Test {
 protected:
  PaEngine engine_{{kV1, kV2, kV3}, TestRegistry()};
  std::vector<WarehouseTransaction> out_;
};

TEST_F(PaEngineTest, SingleUpdateBehavesLikeSpa) {
  engine_.ReceiveRelSet(1, {kV1, kV2}, &out_);
  engine_.ReceiveActionList(MakeAl(kV2, 1), &out_);
  EXPECT_TRUE(out_.empty());
  engine_.ReceiveActionList(MakeAl(kV1, 1), &out_);
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0].rows, (std::vector<UpdateId>{1}));
  EXPECT_EQ(out_[0].actions.size(), 2u);
  EXPECT_EQ(engine_.open_rows(), 0u);
}

TEST_F(PaEngineTest, BatchedAlColorsAllCoveredRows) {
  engine_.ReceiveRelSet(1, {kV1}, &out_);
  engine_.ReceiveRelSet(2, {kV1}, &out_);
  engine_.ReceiveRelSet(3, {kV1}, &out_);
  engine_.ReceiveActionList(MakeBatchAl(kV1, 1, 3), &out_);
  ASSERT_EQ(out_.size(), 1u);
  // All three rows applied together as one transaction.
  EXPECT_EQ(out_[0].rows, (std::vector<UpdateId>{1, 2, 3}));
  EXPECT_EQ(out_[0].actions.size(), 1u);
  EXPECT_EQ(engine_.open_rows(), 0u);
}

TEST_F(PaEngineTest, Example4IntertwinedUpdatesHoldCorrectly) {
  // Views: V1 = R|><|S, V2 = S|><|T|><|Q, V3 = Q.
  // Updates: U1 on S -> {V1,V2}; U2 on Q -> {V2,V3}; U3 on S -> {V1,V2}.
  engine_.ReceiveRelSet(1, {kV1, kV2}, &out_);
  engine_.ReceiveRelSet(2, {kV2, kV3}, &out_);
  engine_.ReceiveRelSet(3, {kV1, kV2}, &out_);

  // AL^1_3 covers U1 and U3 (no separate AL^1_1): rows 1 and 3 turn red
  // in column V1 with state 3.
  engine_.ReceiveActionList(MakeBatchAl(kV1, 1, 3), &out_);
  EXPECT_TRUE(out_.empty());
  EXPECT_EQ(engine_.vut().ToString(true),
            "     V1 V2 V3\n"
            "U1: (r,3) (w,0) (b,0)\n"
            "U2: (b,0) (w,0) (w,0)\n"
            "U3: (r,3) (w,0) (b,0)\n");

  // All other ALs for U1 and U2 arrive. SPA would now (incorrectly)
  // apply rows 1 and 2; PA must keep holding because row 1 is tied to
  // row 3 whose V2 list has not arrived.
  engine_.ReceiveActionList(MakeAl(kV2, 1), &out_);
  engine_.ReceiveActionList(MakeAl(kV2, 2), &out_);
  engine_.ReceiveActionList(MakeAl(kV3, 2), &out_);
  EXPECT_TRUE(out_.empty())
      << "PA must not apply rows 1/2 while AL(V2,3) is missing";
  EXPECT_EQ(engine_.vut().ToString(true),
            "     V1 V2 V3\n"
            "U1: (r,3) (r,1) (b,0)\n"
            "U2: (b,0) (r,2) (r,2)\n"
            "U3: (r,3) (w,0) (b,0)\n");

  // The missing list arrives; everything applies in one transaction.
  engine_.ReceiveActionList(MakeAl(kV2, 3), &out_);
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0].rows, (std::vector<UpdateId>{1, 2, 3}));
  EXPECT_EQ(out_[0].actions.size(), 5u);
  EXPECT_EQ(engine_.open_rows(), 0u);
}

TEST_F(PaEngineTest, Example5FullTrace) {
  // Views: V1 = R|><|S, V2 = S|><|T|><|Q, V3 = Q.
  // Updates: U1 on S -> {V1,V2}; U2 on Q -> {V2,V3}; U3 on Q -> {V2,V3}.
  // Arrival: REL1, REL2, REL3, AL(V2,1), AL(V2,3), AL(V3,2), AL(V1,1),
  //          AL(V3,3).
  engine_.ReceiveRelSet(1, {kV1, kV2}, &out_);
  engine_.ReceiveRelSet(2, {kV2, kV3}, &out_);
  engine_.ReceiveRelSet(3, {kV2, kV3}, &out_);
  EXPECT_EQ(engine_.vut().ToString(true),
            "     V1 V2 V3\n"
            "U1: (w,0) (w,0) (b,0)\n"
            "U2: (b,0) (w,0) (w,0)\n"
            "U3: (b,0) (w,0) (w,0)\n");

  // t1: AL^2_1; ProcessRow(1) fails on white V1.
  engine_.ReceiveActionList(MakeAl(kV2, 1), &out_);
  EXPECT_TRUE(out_.empty());
  EXPECT_EQ(engine_.vut().ToString(true),
            "     V1 V2 V3\n"
            "U1: (w,0) (r,1) (b,0)\n"
            "U2: (b,0) (w,0) (w,0)\n"
            "U3: (b,0) (w,0) (w,0)\n");

  // t2: AL^2_3 covers U2 and U3 in column V2.
  engine_.ReceiveActionList(MakeBatchAl(kV2, 2, 3), &out_);
  EXPECT_TRUE(out_.empty());
  EXPECT_EQ(engine_.vut().ToString(true),
            "     V1 V2 V3\n"
            "U1: (w,0) (r,1) (b,0)\n"
            "U2: (b,0) (r,3) (w,0)\n"
            "U3: (b,0) (r,3) (w,0)\n");

  // t3: AL^3_2; ProcessRow(2) -> ProcessRow(1) fails on white V1.
  engine_.ReceiveActionList(MakeAl(kV3, 2), &out_);
  EXPECT_TRUE(out_.empty());
  EXPECT_EQ(engine_.vut().ToString(true),
            "     V1 V2 V3\n"
            "U1: (w,0) (r,1) (b,0)\n"
            "U2: (b,0) (r,3) (r,2)\n"
            "U3: (b,0) (r,3) (w,0)\n");

  // t4/t5: AL^1_1 completes row 1; WT_1 applies alone (rows 2/3 still
  // blocked on AL(V3,3)).
  engine_.ReceiveActionList(MakeAl(kV1, 1), &out_);
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0].rows, (std::vector<UpdateId>{1}));
  EXPECT_EQ(out_[0].actions.size(), 2u);
  EXPECT_EQ(engine_.vut().ToString(true),
            "     V1 V2 V3\n"
            "U2: (b,0) (r,3) (r,2)\n"
            "U3: (b,0) (r,3) (w,0)\n");
  out_.clear();

  // t6/t7: AL^3_3 completes rows 2 and 3; WT_2 and WT_3 apply together.
  engine_.ReceiveActionList(MakeAl(kV3, 3), &out_);
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0].rows, (std::vector<UpdateId>{2, 3}));
  EXPECT_EQ(out_[0].actions.size(), 3u);
  EXPECT_EQ(engine_.open_rows(), 0u);
  EXPECT_EQ(engine_.held_action_lists(), 0u);
}

TEST_F(PaEngineTest, ActionListBeforeRelSetIsBuffered) {
  engine_.ReceiveActionList(MakeBatchAl(kV1, 1, 2), &out_);
  EXPECT_TRUE(out_.empty());
  engine_.ReceiveRelSet(1, {kV1}, &out_);
  EXPECT_TRUE(out_.empty());  // REL2 still missing; row 2 not allocated
  engine_.ReceiveRelSet(2, {kV1}, &out_);
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0].rows, (std::vector<UpdateId>{1, 2}));
}

TEST_F(PaEngineTest, EmptyRelSetPurgesImmediately) {
  engine_.ReceiveRelSet(1, {}, &out_);
  EXPECT_EQ(engine_.open_rows(), 0u);
}

TEST_F(PaEngineTest, LaterBatchUnblocksViaNextRed) {
  // Row 1: {V1}; row 2: {V1, V2}. AL(V1,1) applies row 1. AL(V1,2)
  // waits on V2; AL(V2,2) then applies row 2.
  engine_.ReceiveRelSet(1, {kV1}, &out_);
  engine_.ReceiveRelSet(2, {kV1, kV2}, &out_);
  engine_.ReceiveActionList(MakeAl(kV2, 2), &out_);
  EXPECT_TRUE(out_.empty());
  engine_.ReceiveActionList(MakeAl(kV1, 1), &out_);
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0].rows, (std::vector<UpdateId>{1}));
  out_.clear();
  engine_.ReceiveActionList(MakeAl(kV1, 2), &out_);
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0].rows, (std::vector<UpdateId>{2}));
}

TEST_F(PaEngineTest, ChainedStatePullsAreTransitive) {
  // Column V1 batches 1..2, column V2 batches 2..3, column V3 covers 3.
  // Applying anything requires all three rows at once.
  engine_.ReceiveRelSet(1, {kV1}, &out_);
  engine_.ReceiveRelSet(2, {kV1, kV2}, &out_);
  engine_.ReceiveRelSet(3, {kV2, kV3}, &out_);
  engine_.ReceiveActionList(MakeBatchAl(kV1, 1, 2), &out_);
  EXPECT_TRUE(out_.empty());
  engine_.ReceiveActionList(MakeBatchAl(kV2, 2, 3), &out_);
  EXPECT_TRUE(out_.empty());
  engine_.ReceiveActionList(MakeAl(kV3, 3), &out_);
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0].rows, (std::vector<UpdateId>{1, 2, 3}));
}

// Random sweeps: strongly consistent view managers batch updates
// randomly; the engine must apply every row exactly once, in dependent
// order, and end empty.
class PaRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(PaRandomTest, AllRowsApplyExactlyOnceInDependentOrder) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const std::vector<ViewId> views{kV1, kV2, kV3, kV4};
  const int kUpdates = 12;

  std::vector<std::vector<ViewId>> rels(kUpdates + 1);
  for (int i = 1; i <= kUpdates; ++i) {
    for (ViewId v : views) {
      if (rng.Bernoulli(0.4)) rels[static_cast<size_t>(i)].push_back(v);
    }
  }

  // Per view: split its relevant updates into random consecutive batches.
  std::vector<std::vector<ActionList>> al_streams(views.size());
  for (size_t x = 0; x < views.size(); ++x) {
    std::vector<UpdateId> mine;
    for (int i = 1; i <= kUpdates; ++i) {
      const auto& rel = rels[static_cast<size_t>(i)];
      if (std::find(rel.begin(), rel.end(), views[x]) != rel.end()) {
        mine.push_back(i);
      }
    }
    size_t pos = 0;
    while (pos < mine.size()) {
      size_t len = static_cast<size_t>(rng.UniformInt(1, 3));
      len = std::min(len, mine.size() - pos);
      ActionList al;
      al.view = views[x];
      al.first_update = mine[pos];
      al.update = mine[pos + len - 1];
      for (size_t k = 0; k < len; ++k) al.covered.push_back(mine[pos + k]);
      al.delta.target = TestRegistry()->ViewName(views[x]);
      al.delta.Add(Tuple{al.update}, 1);
      al_streams[x].push_back(al);
      pos += len;
    }
  }

  PaEngine engine(views, TestRegistry());
  std::vector<WarehouseTransaction> out;
  size_t rel_next = 1;
  std::vector<size_t> al_next(views.size(), 0);
  for (;;) {
    std::vector<int> choices;
    if (rel_next <= static_cast<size_t>(kUpdates)) choices.push_back(-1);
    for (size_t x = 0; x < views.size(); ++x) {
      if (al_next[x] < al_streams[x].size()) {
        choices.push_back(static_cast<int>(x));
      }
    }
    if (choices.empty()) break;
    int pick = choices[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(choices.size()) - 1))];
    if (pick == -1) {
      UpdateId i = static_cast<UpdateId>(rel_next++);
      engine.ReceiveRelSet(i, rels[static_cast<size_t>(i)], &out);
    } else {
      size_t x = static_cast<size_t>(pick);
      engine.ReceiveActionList(al_streams[x][al_next[x]++], &out);
    }
  }

  EXPECT_EQ(engine.open_rows(), 0u);
  EXPECT_EQ(engine.held_action_lists(), 0u);

  std::map<UpdateId, int> seen;
  for (const auto& txn : out) {
    for (UpdateId row : txn.rows) ++seen[row];
  }
  for (int i = 1; i <= kUpdates; ++i) {
    EXPECT_EQ(seen[i], rels[static_cast<size_t>(i)].empty() ? 0 : 1)
        << "update " << i;
  }
  // Dependent order, per shared view: if transactions a < b both carry
  // rows relevant to view v, every v-relevant row of a precedes every
  // v-relevant row of b. (Rows relevant to *different* views may
  // interleave across transactions — that freedom is what makes the
  // painting algorithms prompt.)
  auto relevant_rows = [&](const WarehouseTransaction& txn,
                           ViewId view) {
    std::vector<UpdateId> rows;
    for (UpdateId row : txn.rows) {
      const auto& rel = rels[static_cast<size_t>(row)];
      if (std::find(rel.begin(), rel.end(), view) != rel.end()) {
        rows.push_back(row);
      }
    }
    return rows;
  };
  for (size_t a = 0; a < out.size(); ++a) {
    for (size_t b = a + 1; b < out.size(); ++b) {
      for (ViewId v : views) {
        auto rows_a = relevant_rows(out[a], v);
        auto rows_b = relevant_rows(out[b], v);
        if (rows_a.empty() || rows_b.empty()) continue;
        EXPECT_LT(*std::max_element(rows_a.begin(), rows_a.end()),
                  *std::min_element(rows_b.begin(), rows_b.end()))
            << "view V#" << v << ": txn " << out[a].ToString() << " vs "
            << out[b].ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaRandomTest, ::testing::Range(1, 26));

}  // namespace
}  // namespace mvc
