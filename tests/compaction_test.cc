// Tests for the background compaction subsystem (src/compact/):
// the tiered keeper rule, plan shape, the chunk-squash rebuild, the
// VersionedStore apply primitives (collapse / swap), a randomized
// pinned-snapshot byte-identity property, the CompactorProcess
// scheduler on SimRuntime, and an end-to-end WarehouseSystem run with
// compaction enabled under the consistency oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "compact/chunk_squash.h"
#include "compact/compaction_policy.h"
#include "compact/compactor_process.h"
#include "net/sim_runtime.h"
#include "storage/id_registry.h"
#include "storage/versioned_store.h"
#include "system/warehouse_system.h"
#include "warehouse/warehouse.h"
#include "workload/generator.h"

namespace mvc {
namespace {

Schema TwoCol() { return Schema::AllInt64({"A", "B"}); }

/// --- Tiered keeper rule ---

TEST(TieredPolicyTest, HotWindowAlwaysKept) {
  TieredCompactionOptions opts;
  opts.hot_window = 8;
  TieredCompactionPolicy policy(opts);
  const int64_t latest = 100;
  for (int64_t c = latest - opts.hot_window + 1; c <= latest; ++c) {
    EXPECT_TRUE(policy.IsKeeper(c, latest)) << "hot commit " << c;
  }
}

TEST(TieredPolicyTest, CommitZeroAlwaysKept) {
  TieredCompactionPolicy policy;
  for (int64_t latest : {10, 100, 10000, 1000000}) {
    EXPECT_TRUE(policy.IsKeeper(0, latest)) << "latest=" << latest;
  }
}

TEST(TieredPolicyTest, ColdTiersThinExponentially) {
  TieredCompactionOptions opts;
  opts.hot_window = 4;
  opts.tier_base = 2;
  TieredCompactionPolicy policy(opts);
  const int64_t latest = 1000;
  // Ages in [4, 8): keep commits divisible by 2.
  EXPECT_TRUE(policy.IsKeeper(996, latest));
  EXPECT_FALSE(policy.IsKeeper(995, latest));
  // Ages in [8, 16): keep commits divisible by 4.
  EXPECT_TRUE(policy.IsKeeper(992, latest));
  EXPECT_FALSE(policy.IsKeeper(990, latest));
  // Ages in [16, 32): keep commits divisible by 8.
  EXPECT_TRUE(policy.IsKeeper(976, latest));
  EXPECT_FALSE(policy.IsKeeper(980, latest));
}

// The load-bearing property: once a commit stops being a keeper it
// never becomes one again as the latest commit advances. A version
// collapsed today would never have been needed tomorrow.
TEST(TieredPolicyTest, KeeperSetShrinksMonotonically) {
  TieredCompactionOptions opts;
  opts.hot_window = 4;
  opts.tier_base = 2;
  TieredCompactionPolicy policy(opts);
  for (int64_t c = 0; c <= 128; ++c) {
    bool was_dropped = false;
    for (int64_t latest = c; latest <= 512; ++latest) {
      const bool keep = policy.IsKeeper(c, latest);
      if (was_dropped) {
        EXPECT_FALSE(keep) << "commit " << c << " resurrected at latest "
                           << latest;
      }
      if (!keep) was_dropped = true;
    }
  }
}

/// --- Plan shape ---

StoreStats MakeStats(int64_t latest, int64_t oldest) {
  StoreStats stats;
  stats.latest_commit = latest;
  stats.watermark = oldest;
  stats.retained_versions = static_cast<size_t>(latest - oldest + 1);
  for (int64_t c = oldest; c <= latest; ++c) {
    VersionStats vs;
    vs.commit_id = c;
    TableVersionStats ts;
    ts.table = "V1";
    ts.num_chunks = 8;
    ts.distinct = 100;
    vs.tables.push_back(ts);
    stats.versions.push_back(vs);
  }
  return stats;
}

TEST(TieredPolicyTest, PlanNeverTargetsLatestOrPinned) {
  TieredCompactionOptions opts;
  opts.hot_window = 1;
  TieredCompactionPolicy policy(opts);
  StoreStats stats = MakeStats(/*latest=*/20, /*oldest=*/1);
  for (VersionStats& vs : stats.versions) {
    if (vs.commit_id == 7) vs.pinned = true;
  }
  for (const CompactionSpec& spec : policy.Plan(stats)) {
    if (spec.kind != CompactionKind::kCollapseVersions) continue;
    for (int64_t victim : spec.victims) {
      EXPECT_NE(victim, 20) << "planned the latest version";
      EXPECT_NE(victim, 7) << "planned a pinned version";
    }
  }
}

TEST(TieredPolicyTest, PlanRespectsBounds) {
  TieredCompactionOptions opts;
  opts.hot_window = 1;
  opts.max_specs = 2;
  opts.max_victims_per_spec = 3;
  TieredCompactionPolicy policy(opts);
  std::vector<CompactionSpec> specs = policy.Plan(MakeStats(100, 1));
  EXPECT_LE(specs.size(), 2u);
  for (const CompactionSpec& spec : specs) {
    EXPECT_LE(spec.victims.size(), 3u);
  }
}

TEST(TieredPolicyTest, PlanEmitsSquashForWastefulColdKeeper) {
  TieredCompactionOptions opts;
  opts.hot_window = 2;
  opts.rows_per_chunk = 64;
  opts.squash_waste_factor = 2.0;
  TieredCompactionPolicy policy(opts);
  StoreStats stats = MakeStats(/*latest=*/20, /*oldest=*/16);
  // Commit 16 is a cold keeper (divisible, outside hot window) whose 64
  // chunks dwarf the 8 a 100-distinct table wants.
  stats.versions.front().tables[0].num_chunks = 64;
  bool squash_planned = false;
  for (const CompactionSpec& spec : policy.Plan(stats)) {
    if (spec.kind == CompactionKind::kSquashChunks) {
      EXPECT_EQ(spec.commit_id, 16);
      EXPECT_EQ(spec.table, "V1");
      squash_planned = true;
    }
  }
  EXPECT_TRUE(squash_planned);
}

/// --- Chunk squash ---

TEST(ChunkSquashTest, IdealChunkCountIsPowerOfTwoFlooredAtMin) {
  EXPECT_EQ(IdealChunkCount(0, 64), VersionedTable::kMinChunks);
  EXPECT_EQ(IdealChunkCount(100, 64), VersionedTable::kMinChunks);
  EXPECT_EQ(IdealChunkCount(64 * 8, 64), 8u);
  EXPECT_EQ(IdealChunkCount(64 * 9, 64), 16u);
  EXPECT_EQ(IdealChunkCount(64 * 1000, 64), 1024u);
}

TEST(ChunkSquashTest, RebuildPreservesContentsAtIdealCount) {
  // Grow a table far past its final size, then shrink it: chunks never
  // shrink, so the sealed version is mostly slack.
  VersionedTable vt("V1", TwoCol());
  for (int64_t i = 0; i < 4000; ++i) {
    ASSERT_TRUE(vt.Insert(Tuple{i, i * 3}).ok());
  }
  for (int64_t i = 100; i < 4000; ++i) {
    ASSERT_TRUE(vt.Delete(Tuple{i, i * 3}).ok());
  }
  TableVersion bloated = vt.Seal();
  ASSERT_GT(bloated.chunks->size(),
            IdealChunkCount(bloated.distinct, 64));

  TableVersion squashed = BuildSquashedTableVersion(bloated, 64);
  EXPECT_EQ(squashed.chunks->size(), IdealChunkCount(bloated.distinct, 64));
  EXPECT_EQ(squashed.distinct, bloated.distinct);
  EXPECT_EQ(squashed.total_count, bloated.total_count);
  EXPECT_TRUE(squashed.Materialize().ContentsEqual(bloated.Materialize()));
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(squashed.CountOf(Tuple{i, i * 3}), 1);
  }
}

/// --- Store apply primitives ---

/// A retain-all store with `commits` single-row commits against V1.
VersionedStore MakeCommittedStore(int64_t commits) {
  VersionedStore store(static_cast<size_t>(commits));
  MVC_CHECK(store.CreateTable("V1", TwoCol()).ok());
  VersionedTable* table = *store.GetTable("V1");
  store.Commit(0);
  for (int64_t c = 1; c <= commits; ++c) {
    MVC_CHECK(table->Insert(Tuple{c, c * 7}).ok());
    store.Commit(c);
  }
  return store;
}

TEST(CollapseVersionsTest, DropsVictimsSkipsLatestAndPinned) {
  VersionedStore store = MakeCommittedStore(10);
  SnapshotHandle pin = *store.AcquireSnapshotAt(5);

  CompactionApplyResult r = store.CollapseVersions({3, 5, 10, 777});
  EXPECT_EQ(r.versions_collapsed, 1u);  // only 3
  EXPECT_EQ(r.versions_skipped, 3u);    // pinned 5, latest 10, absent 777
  EXPECT_FALSE(store.AcquireSnapshotAt(3).ok());
  EXPECT_TRUE(store.AcquireSnapshotAt(5).ok());
  EXPECT_TRUE(store.AcquireSnapshotAt(10).ok());

  // The collapsed commit reports the GC error class readers understand.
  auto gone = store.AcquireSnapshotAt(3);
  EXPECT_TRUE(gone.status().IsNotFound());
  EXPECT_NE(gone.status().ToString().find("garbage-collected"),
            std::string::npos);

  // Unpinning makes 5 collapsible on the next pass.
  pin.Release();
  r = store.CollapseVersions({5});
  EXPECT_EQ(r.versions_collapsed, 1u);
  EXPECT_FALSE(store.AcquireSnapshotAt(5).ok());
}

TEST(CollapseVersionsTest, ReclaimsResidentBytes) {
  VersionedStore store = MakeCommittedStore(200);
  const size_t before = store.ResidentChunkBytes();
  std::vector<int64_t> victims;
  for (int64_t c = 1; c < 200; ++c) {
    if (c % 16 != 0) victims.push_back(c);
  }
  CompactionApplyResult r = store.CollapseVersions(victims);
  EXPECT_EQ(r.versions_collapsed, victims.size());
  EXPECT_GT(r.bytes_reclaimed, 0u);
  EXPECT_LT(store.ResidentChunkBytes(), before);
}

TEST(SwapCompactedTableTest, SwapsInPlaceAndRejectsMismatch) {
  VersionedStore store = MakeCommittedStore(10);
  SnapshotHandle before = *store.AcquireSnapshotAt(6);
  Table flat_before = *before.MaterializeTable("V1");

  const TableVersion* source = before.version().Find("V1");
  ASSERT_NE(source, nullptr);
  TableVersion squashed = BuildSquashedTableVersion(*source, 64);
  auto r = store.SwapCompactedTable(6, squashed);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->swapped);

  // The handle acquired before the swap still reads the old version,
  // byte for byte; a fresh handle reads identical logical contents.
  EXPECT_TRUE(before.MaterializeTable("V1")->ContentsEqual(flat_before));
  SnapshotHandle after = *store.AcquireSnapshotAt(6);
  EXPECT_TRUE(after.MaterializeTable("V1")->ContentsEqual(flat_before));

  // A replacement with different contents is refused.
  TableVersion bogus = squashed;
  bogus.distinct += 1;
  EXPECT_TRUE(store.SwapCompactedTable(6, bogus).status().IsInvalidArgument());
  EXPECT_TRUE(
      store.SwapCompactedTable(777, squashed).status().IsNotFound());
}

/// --- Randomized pinned-snapshot byte-identity property ---
///
/// Drive a store with random deltas, pin random versions along the way
/// (recording their flattened contents at pin time), and run the tiered
/// policy's plan/apply loop the way the warehouse does. No matter what
/// the compactor collapsed or squashed, every pinned handle must
/// materialize exactly the bytes it pinned.
TEST(CompactionPropertyTest, PinnedSnapshotsSurviveCompactionByteIdentical) {
  Rng rng(20260808);
  VersionedStore store(400);
  ASSERT_TRUE(store.CreateTable("V1", TwoCol()).ok());
  VersionedTable* table = *store.GetTable("V1");
  store.Commit(0);

  TieredCompactionOptions opts;
  opts.hot_window = 8;
  opts.max_specs = 8;
  opts.max_victims_per_spec = 32;
  TieredCompactionPolicy policy(opts);

  std::vector<std::pair<SnapshotHandle, Table>> pinned;
  std::vector<int64_t> live_keys;
  int64_t next_key = 0;

  auto apply_spec = [&](const CompactionSpec& spec) {
    if (spec.kind == CompactionKind::kCollapseVersions) {
      store.CollapseVersions(spec.victims);
      return;
    }
    auto handle = store.AcquireSnapshotAt(spec.commit_id);
    if (!handle.ok()) return;  // raced a collapse; best-effort
    const TableVersion* source = handle->version().Find(spec.table);
    ASSERT_NE(source, nullptr);
    TableVersion rebuilt =
        BuildSquashedTableVersion(*source, opts.rows_per_chunk);
    auto swap = store.SwapCompactedTable(spec.commit_id, std::move(rebuilt));
    (void)swap;  // best-effort: a raced pin is fine
  };

  for (int64_t c = 1; c <= 400; ++c) {
    TableDelta delta;
    delta.target = "V1";
    const int inserts = 1 + static_cast<int>(rng.engine()() % 3);
    for (int i = 0; i < inserts; ++i) {
      delta.Add(Tuple{next_key, next_key * 7}, 1);
      live_keys.push_back(next_key);
      ++next_key;
    }
    while (live_keys.size() > 40) {
      const size_t at = rng.engine()() % live_keys.size();
      const int64_t key = live_keys[at];
      live_keys.erase(live_keys.begin() + static_cast<ptrdiff_t>(at));
      delta.Add(Tuple{key, key * 7}, -1);
    }
    ASSERT_TRUE(table->ApplyDelta(delta).ok());
    store.Commit(c);

    if (rng.engine()() % 10 == 0) {
      SnapshotHandle handle = store.AcquireSnapshot();
      Table flat = *handle.MaterializeTable("V1");
      pinned.emplace_back(std::move(handle), std::move(flat));
    }
    if (c % 8 == 0) {
      for (const CompactionSpec& spec :
           policy.Plan(store.ComputeStats(1024))) {
        apply_spec(spec);
      }
    }
  }

  ASSERT_GT(pinned.size(), 10u);
  for (const auto& [handle, expected] : pinned) {
    Table now = *handle.MaterializeTable("V1");
    EXPECT_TRUE(now.ContentsEqual(expected))
        << "pinned commit " << handle.commit_id()
        << " changed under compaction";
  }
  // Compaction actually ran: history was thinned below the full window.
  EXPECT_LT(store.versions_live(), 400u);
}

/// --- CompactorProcess scheduling on SimRuntime ---

/// Rolling-window commit driver against the warehouse actor.
class CompactBenchDriver : public Process {
 public:
  CompactBenchDriver(std::string name, ProcessId warehouse, int64_t commits)
      : Process(std::move(name)), warehouse_(warehouse), commits_(commits) {}

  void OnStart() override {
    for (int64_t i = 1; i <= commits_; ++i) {
      auto msg = std::make_unique<WarehouseTxnMsg>();
      msg->txn.txn_id = i;
      msg->txn.views = {0};
      ActionList al;
      al.view = 0;
      al.delta.target = "V1";
      al.delta.Add(Tuple{i, i * 7}, 1);
      if (i > 32) al.delta.Add(Tuple{i - 32, (i - 32) * 7}, -1);
      msg->txn.actions = {al};
      SendAfter(warehouse_, std::move(msg), i * 20);
    }
  }

  void OnMessage(ProcessId, MessagePtr msg) override {
    MVC_CHECK(msg->kind == Message::Kind::kTxnCommitted);
    ++committed_;
  }

  ProcessId warehouse_;
  int64_t commits_;
  int64_t committed_ = 0;
};

TEST(CompactorProcessTest, SchedulesBoundedInflightAndDrains) {
  static const IdRegistry* registry = [] {
    auto* r = new IdRegistry();
    r->InternViews({"V1"});
    return r;
  }();

  SimRuntime runtime(7);
  WarehouseOptions options;
  options.max_retained_versions = 600;
  WarehouseProcess warehouse("warehouse", options);
  warehouse.SetRegistry(registry);
  ASSERT_TRUE(warehouse.CreateView("V1", TwoCol()).ok());
  ProcessId wpid = runtime.Register(&warehouse);

  CompactionConfig config;
  config.enabled = true;
  config.tiered.hot_window = 8;
  config.stats_every_commits = 4;
  config.max_inflight = 2;
  CompactorProcess compactor("compactor", config);
  ProcessId cpid = runtime.Register(&compactor);
  compactor.SetWarehouse(wpid);
  warehouse.SetCompactor(cpid, config.stats_every_commits,
                         config.max_version_detail);

  CompactBenchDriver driver("driver", wpid, 500);
  runtime.Register(&driver);
  runtime.Run();

  EXPECT_EQ(driver.committed_, 500);
  const CompactorProcess::Stats& stats = compactor.stats();
  EXPECT_GT(stats.plans, 0);
  EXPECT_GT(stats.merges_applied, 0);
  EXPECT_GT(stats.versions_collapsed, 0);
  EXPECT_LE(stats.peak_inflight, config.max_inflight);
  EXPECT_EQ(compactor.inflight(), 0u) << "work left in flight at quiesce";
  EXPECT_EQ(compactor.pending(), 0u);
  // Retention was actually thinned: far fewer live versions than commits.
  EXPECT_LT(warehouse.store().versions_live(), 300u);
}

TEST(CompactorProcessTest, DeterministicAcrossIdenticalRuns) {
  auto run = [](uint64_t seed) {
    static const IdRegistry* registry = [] {
      auto* r = new IdRegistry();
      r->InternViews({"V1"});
      return r;
    }();
    SimRuntime runtime(seed);
    WarehouseOptions options;
    options.max_retained_versions = 300;
    WarehouseProcess warehouse("warehouse", options);
    warehouse.SetRegistry(registry);
    MVC_CHECK(warehouse.CreateView("V1", TwoCol()).ok());
    ProcessId wpid = runtime.Register(&warehouse);
    CompactionConfig config;
    config.enabled = true;
    config.tiered.hot_window = 4;
    config.stats_every_commits = 4;
    CompactorProcess compactor("compactor", config);
    ProcessId cpid = runtime.Register(&compactor);
    compactor.SetWarehouse(wpid);
    warehouse.SetCompactor(cpid, config.stats_every_commits,
                           config.max_version_detail);
    CompactBenchDriver driver("driver", wpid, 200);
    runtime.Register(&driver);
    runtime.Run();
    return std::make_pair(compactor.stats().versions_collapsed,
                          compactor.stats().merges_applied);
  };
  EXPECT_EQ(run(3), run(3)) << "same seed, same compaction history";
}

/// --- End to end: WarehouseSystem with compaction enabled ---

TEST(CompactionSystemTest, GeneratedWorkloadStaysConsistentUnderCompaction) {
  WorkloadSpec spec;
  spec.num_transactions = 60;
  spec.seed = 9;
  auto config = GenerateScenario(spec);
  ASSERT_TRUE(config.ok());
  config->compaction.enabled = true;
  config->compaction.tiered.hot_window = 4;
  config->compaction.stats_every_commits = 2;
  config->warehouse.max_retained_versions = 200;
  config->collect_metrics = true;

  auto system = WarehouseSystem::Build(std::move(*config));
  ASSERT_TRUE(system.ok()) << system.status();
  (*system)->Run();

  // Compaction ran and its counters surfaced in the metrics snapshot.
  ASSERT_NE((*system)->compactor(), nullptr);
  EXPECT_GT((*system)->compactor()->stats().merges_applied, 0);
  const obs::MetricsSnapshot snap = (*system)->MetricsSnapshot();
  const auto* merges = obs::FindCounter(snap, "compact.merges_total");
  ASSERT_NE(merges, nullptr);
  EXPECT_GT(merges->value, 0);

  // The maintenance pipeline is untouched by background compaction.
  ConsistencyChecker checker = (*system)->MakeChecker();
  EXPECT_TRUE(checker.CheckComplete((*system)->recorder()).ok())
      << checker.CheckComplete((*system)->recorder());
}

TEST(CompactionSystemTest, NoopPolicyRetainsFullWindow) {
  WorkloadSpec spec;
  spec.num_transactions = 40;
  spec.seed = 9;
  auto config = GenerateScenario(spec);
  ASSERT_TRUE(config.ok());
  config->compaction.enabled = true;
  config->compaction.policy = CompactionPolicyKind::kNoop;
  config->compaction.stats_every_commits = 2;
  config->warehouse.max_retained_versions = 200;

  auto system = WarehouseSystem::Build(std::move(*config));
  ASSERT_TRUE(system.ok()) << system.status();
  (*system)->Run();
  ASSERT_NE((*system)->compactor(), nullptr);
  EXPECT_GT((*system)->compactor()->stats().plans, 0);
  EXPECT_EQ((*system)->compactor()->stats().merges_applied, 0);
}

}  // namespace
}  // namespace mvc
