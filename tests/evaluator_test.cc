// Unit tests for full view evaluation and incremental delta propagation.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "query/evaluator.h"
#include "workload/paper_examples.h"

namespace mvc {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schemas_ = {{"R", Schema::AllInt64({"A", "B"})},
                {"S", Schema::AllInt64({"B", "C"})},
                {"T", Schema::AllInt64({"C", "D"})},
                {"Q", Schema::AllInt64({"D", "E"})}};
    for (const auto& [name, schema] : schemas_) {
      ASSERT_TRUE(catalog_.CreateTable(name, schema).ok());
    }
  }

  Status Insert(const std::string& rel, Tuple t, int64_t count = 1) {
    MVC_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(rel));
    return table->Insert(t, count);
  }

  BoundView Bind(const ViewDefinition& def) {
    auto bound = BoundView::Bind(def, schemas_);
    MVC_CHECK(bound.ok()) << bound.status().ToString();
    return std::move(bound).value();
  }

  std::map<std::string, Schema> schemas_;
  Catalog catalog_;
};

TEST_F(EvaluatorTest, Table1Join) {
  // Paper Table 1 at t1: R={[1,2]}, S={[2,3]}, T={[3,4]}.
  ASSERT_TRUE(Insert("R", {1, 2}).ok());
  ASSERT_TRUE(Insert("S", {2, 3}).ok());
  ASSERT_TRUE(Insert("T", {3, 4}).ok());

  auto v1 = ViewEvaluator::Evaluate(Bind(PaperV1()),
                                    CatalogProvider(&catalog_));
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->NumRows(), 1);
  EXPECT_EQ(v1->CountOf(Tuple{1, 2, 3}), 1);

  auto v2 = ViewEvaluator::Evaluate(Bind(PaperV2()),
                                    CatalogProvider(&catalog_));
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->CountOf(Tuple{2, 3, 4}), 1);
}

TEST_F(EvaluatorTest, EmptyBaseYieldsEmptyView) {
  ASSERT_TRUE(Insert("R", {1, 2}).ok());
  auto v1 = ViewEvaluator::Evaluate(Bind(PaperV1()),
                                    CatalogProvider(&catalog_));
  ASSERT_TRUE(v1.ok());
  EXPECT_TRUE(v1->empty());
}

TEST_F(EvaluatorTest, JoinMultiplicitiesMultiply) {
  ASSERT_TRUE(Insert("R", {1, 2}, 2).ok());
  ASSERT_TRUE(Insert("S", {2, 3}, 3).ok());
  auto v1 = ViewEvaluator::Evaluate(Bind(PaperV1()),
                                    CatalogProvider(&catalog_));
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->CountOf(Tuple{1, 2, 3}), 6);
}

TEST_F(EvaluatorTest, ProjectionCountsSum) {
  // Two distinct S tuples project to the same (B) value.
  ViewDefinition def;
  def.name = "P";
  def.relations = {"S"};
  def.projection = {ColumnRef{"S", "B"}};
  ASSERT_TRUE(Insert("S", {2, 3}).ok());
  ASSERT_TRUE(Insert("S", {2, 4}).ok());
  auto v = ViewEvaluator::Evaluate(Bind(def), CatalogProvider(&catalog_));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->CountOf(Tuple{2}), 2);
}

TEST_F(EvaluatorTest, SelectionFilters) {
  ViewDefinition def;
  def.name = "Sel";
  def.relations = {"S"};
  def.predicate = Predicate::ColCmpConst(CompareOp::kLt, ColumnRef{"S", "C"},
                                         Value(5));
  ASSERT_TRUE(Insert("S", {1, 3}).ok());
  ASSERT_TRUE(Insert("S", {1, 9}).ok());
  auto v = ViewEvaluator::Evaluate(Bind(def), CatalogProvider(&catalog_));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->NumRows(), 1);
  EXPECT_EQ(v->CountOf(Tuple{1, 3}), 1);
}

TEST_F(EvaluatorTest, ThreeWayChainJoin) {
  ASSERT_TRUE(Insert("S", {2, 3}).ok());
  ASSERT_TRUE(Insert("T", {3, 4}).ok());
  ASSERT_TRUE(Insert("Q", {4, 7}).ok());
  ASSERT_TRUE(Insert("Q", {4, 8}).ok());
  auto v = ViewEvaluator::Evaluate(Bind(PaperV2WithQ()),
                                   CatalogProvider(&catalog_));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->CountOf(Tuple{2, 3, 4, 7}), 1);
  EXPECT_EQ(v->CountOf(Tuple{2, 3, 4, 8}), 1);
  EXPECT_EQ(v->NumRows(), 2);
}

TEST_F(EvaluatorTest, CrossProductWithoutJoinPredicate) {
  ViewDefinition def;
  def.name = "X";
  def.relations = {"R", "T"};
  ASSERT_TRUE(Insert("R", {1, 2}).ok());
  ASSERT_TRUE(Insert("R", {5, 6}).ok());
  ASSERT_TRUE(Insert("T", {3, 4}).ok());
  auto v = ViewEvaluator::Evaluate(Bind(def), CatalogProvider(&catalog_));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->NumRows(), 2);
  EXPECT_EQ(v->CountOf(Tuple{1, 2, 3, 4}), 1);
  EXPECT_EQ(v->CountOf(Tuple{5, 6, 3, 4}), 1);
}

TEST_F(EvaluatorTest, NonEquiResidualPredicate) {
  ViewDefinition def;
  def.name = "NE";
  def.relations = {"R", "S"};
  def.predicate = Predicate::Compare(
      CompareOp::kLt, Predicate::Operand::Col(ColumnRef{"R", "B"}),
      Predicate::Operand::Col(ColumnRef{"S", "B"}));
  ASSERT_TRUE(Insert("R", {1, 2}).ok());
  ASSERT_TRUE(Insert("S", {3, 9}).ok());
  ASSERT_TRUE(Insert("S", {1, 9}).ok());
  auto v = ViewEvaluator::Evaluate(Bind(def), CatalogProvider(&catalog_));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->NumRows(), 1);
  EXPECT_EQ(v->CountOf(Tuple{1, 2, 3, 9}), 1);
}

TEST_F(EvaluatorTest, UpdateToBaseDelta) {
  TableDelta ins = ViewEvaluator::UpdateToBaseDelta(
      Update::Insert("s", "R", Tuple{1, 2}));
  ASSERT_EQ(ins.rows.size(), 1u);
  EXPECT_EQ(ins.rows[0].count, 1);

  TableDelta del = ViewEvaluator::UpdateToBaseDelta(
      Update::Delete("s", "R", Tuple{1, 2}));
  EXPECT_EQ(del.rows[0].count, -1);

  TableDelta mod = ViewEvaluator::UpdateToBaseDelta(
      Update::Modify("s", "R", Tuple{1, 2}, Tuple{1, 3}));
  ASSERT_EQ(mod.rows.size(), 2u);
  EXPECT_EQ(mod.rows[0].count, -1);
  EXPECT_EQ(mod.rows[1].count, 1);
}

TEST_F(EvaluatorTest, DeltaInsertMatchesFullRecomputation) {
  ASSERT_TRUE(Insert("R", {1, 2}).ok());
  ASSERT_TRUE(Insert("T", {3, 4}).ok());
  BoundView v1 = Bind(PaperV1());

  // Delta of inserting [2,3] into S while S is still empty at the
  // provider: exactly the V1 change of Table 1.
  TableDelta base;
  base.target = "S";
  base.Add(Tuple{2, 3}, 1);
  auto delta = ViewEvaluator::EvaluateDelta(v1, "S", base,
                                            CatalogProvider(&catalog_));
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(delta->rows.size(), 1u);
  EXPECT_EQ(delta->rows[0].tuple, (Tuple{1, 2, 3}));
  EXPECT_EQ(delta->rows[0].count, 1);
}

TEST_F(EvaluatorTest, DeltaDeleteProducesNegativeRows) {
  ASSERT_TRUE(Insert("R", {1, 2}).ok());
  BoundView v1 = Bind(PaperV1());
  TableDelta base;
  base.target = "S";
  base.Add(Tuple{2, 3}, -1);
  auto delta = ViewEvaluator::EvaluateDelta(v1, "S", base,
                                            CatalogProvider(&catalog_));
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(delta->rows.size(), 1u);
  EXPECT_EQ(delta->rows[0].count, -1);
}

TEST_F(EvaluatorTest, DeltaOnIrrelevantRelationIsEmpty) {
  BoundView v1 = Bind(PaperV1());
  TableDelta base;
  base.target = "Q";
  base.Add(Tuple{1, 1}, 1);
  auto delta = ViewEvaluator::EvaluateDelta(v1, "Q", base,
                                            CatalogProvider(&catalog_));
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->empty());
}

TEST_F(EvaluatorTest, DeltaModifyCancelsWhenImagesEqual) {
  // Modify that does not change the projected image nets to zero.
  ViewDefinition def;
  def.name = "P";
  def.relations = {"S"};
  def.projection = {ColumnRef{"S", "B"}};
  ASSERT_TRUE(Insert("S", {2, 3}).ok());
  TableDelta base;
  base.target = "S";
  base.Add(Tuple{2, 3}, -1);
  base.Add(Tuple{2, 4}, 1);  // same projected image [2]
  auto delta = ViewEvaluator::EvaluateDelta(Bind(def), "S", base,
                                            CatalogProvider(&catalog_));
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->empty());
}

TEST_F(EvaluatorTest, DeltaRespectsSelectionOnDeltaRelation) {
  ViewDefinition def;
  def.name = "Sel";
  def.relations = {"S"};
  def.predicate = Predicate::ColCmpConst(CompareOp::kLt, ColumnRef{"S", "C"},
                                         Value(5));
  TableDelta base;
  base.target = "S";
  base.Add(Tuple{1, 9}, 1);  // fails C < 5
  auto delta = ViewEvaluator::EvaluateDelta(Bind(def), "S", base,
                                            CatalogProvider(&catalog_));
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->empty());
}

// Property: for random inserts/deletes, incremental maintenance equals
// full re-evaluation. Parameterized over seeds.
class DeltaEquivalenceTest : public EvaluatorTest,
                             public ::testing::WithParamInterface<int> {};

TEST_P(DeltaEquivalenceTest, IncrementalEqualsRecomputation) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  BoundView view = Bind(PaperV2WithQ());

  // Materialize the (initially empty) view and maintain it through 60
  // random updates.
  auto initial = ViewEvaluator::Evaluate(view, CatalogProvider(&catalog_));
  ASSERT_TRUE(initial.ok());
  Table materialized = std::move(initial).value();

  std::map<std::string, std::vector<Tuple>> live;
  const std::vector<std::string> rels{"S", "T", "Q"};
  for (int step = 0; step < 60; ++step) {
    const std::string& rel = rels[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(rels.size()) - 1))];
    TableDelta base;
    base.target = rel;
    bool del = rng.Bernoulli(0.3) && !live[rel].empty();
    if (del) {
      size_t idx = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(live[rel].size()) - 1));
      base.Add(live[rel][idx], -1);
      live[rel].erase(live[rel].begin() + static_cast<ptrdiff_t>(idx));
    } else {
      Tuple t{rng.UniformInt(0, 4), rng.UniformInt(0, 4)};
      base.Add(t, 1);
      live[rel].push_back(t);
    }

    // Incremental: delta against the pre-update provider state.
    auto delta = ViewEvaluator::EvaluateDelta(view, rel, base,
                                              CatalogProvider(&catalog_));
    ASSERT_TRUE(delta.ok());
    ASSERT_TRUE(delta->ApplyTo(&materialized).ok());

    // Advance the base state.
    ASSERT_TRUE(base.ApplyTo(*catalog_.GetTable(rel)).ok());

    // Full recomputation must agree.
    auto full = ViewEvaluator::Evaluate(view, CatalogProvider(&catalog_));
    ASSERT_TRUE(full.ok());
    ASSERT_TRUE(materialized.ContentsEqual(*full))
        << "step " << step << "\nIncremental:\n"
        << materialized.ToString() << "Full:\n"
        << full->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaEquivalenceTest,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace mvc
