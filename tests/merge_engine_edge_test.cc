// Edge cases for the painting engines beyond the paper's worked
// examples: row-id gaps (distributed merge sees a subsequence), REL
// sets arriving out of order (piggyback scheme), far-future early ALs,
// state pointers to already-purged rows, and per-view FIFO enforcement.

#include <gtest/gtest.h>

#include "merge/merge_engine.h"
#include "storage/id_registry.h"

namespace mvc {
namespace {

constexpr ViewId kV1 = 0, kV2 = 1;

const IdRegistry* TestRegistry() {
  static const IdRegistry* reg = [] {
    auto* r = new IdRegistry();
    r->InternViews({"V1", "V2"});
    return r;
  }();
  return reg;
}

ActionList Al(ViewId view, UpdateId first, UpdateId last) {
  ActionList al;
  al.view = view;
  al.first_update = first;
  al.update = last;
  for (UpdateId i = first; i <= last; ++i) al.covered.push_back(i);
  al.delta.target = TestRegistry()->ViewName(view);
  al.delta.Add(Tuple{last}, 1);
  return al;
}

TEST(SpaEdgeTest, RowIdGapsFromDistributedMerge) {
  // A merge process owning a view group sees only the update ids
  // relevant to its group: 2, 5, 9.
  SpaEngine engine({kV1}, TestRegistry());
  std::vector<WarehouseTransaction> out;
  engine.ReceiveRelSet(2, {kV1}, &out);
  engine.ReceiveRelSet(5, {kV1}, &out);
  engine.ReceiveRelSet(9, {kV1}, &out);
  engine.ReceiveActionList(Al(kV1, 2, 2), &out);
  engine.ReceiveActionList(Al(kV1, 5, 5), &out);
  engine.ReceiveActionList(Al(kV1, 9, 9), &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].rows, (std::vector<UpdateId>{2}));
  EXPECT_EQ(out[1].rows, (std::vector<UpdateId>{5}));
  EXPECT_EQ(out[2].rows, (std::vector<UpdateId>{9}));
}

TEST(SpaEdgeTest, OutOfOrderRelSetsWithChainedEarlyAls) {
  // Piggyback scheme: REL2 arrives (carried by a fast manager) before
  // REL1. AL(V1,1) then AL(V1,2) arrive; AL(V1,2)'s row exists but it
  // must wait behind the buffered AL(V1,1) — applying it first would
  // reorder the V1 column.
  SpaEngine engine({kV1, kV2}, TestRegistry());
  std::vector<WarehouseTransaction> out;
  engine.ReceiveRelSet(2, {kV1}, &out);
  engine.ReceiveActionList(Al(kV1, 1, 1), &out);  // row 1 unknown: buffer
  engine.ReceiveActionList(Al(kV1, 2, 2), &out);  // chained behind U1
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(engine.held_action_lists(), 2u);

  engine.ReceiveRelSet(1, {kV1}, &out);  // late REL1 releases both
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].rows, (std::vector<UpdateId>{1}));
  EXPECT_EQ(out[1].rows, (std::vector<UpdateId>{2}));
  EXPECT_EQ(engine.open_rows(), 0u);
}

TEST(SpaEdgeTest, FarFutureEarlyActionListWaits) {
  SpaEngine engine({kV1}, TestRegistry());
  std::vector<WarehouseTransaction> out;
  engine.ReceiveActionList(Al(kV1, 42, 42), &out);
  EXPECT_TRUE(out.empty());
  for (UpdateId i = 40; i <= 41; ++i) {
    engine.ReceiveRelSet(i, {}, &out);  // unrelated empty rows
  }
  EXPECT_TRUE(out.empty());
  engine.ReceiveRelSet(42, {kV1}, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rows, (std::vector<UpdateId>{42}));
}

TEST(SpaEdgeTest, PerViewFifoViolationIsFatal) {
  SpaEngine engine({kV1}, TestRegistry());
  std::vector<WarehouseTransaction> out;
  engine.ReceiveRelSet(1, {kV1}, &out);
  engine.ReceiveRelSet(2, {kV1}, &out);
  engine.ReceiveActionList(Al(kV1, 2, 2), &out);
  // An AL with a smaller label after a larger one from the same view
  // manager can only mean the channel reordered: crash loudly.
  EXPECT_DEATH(engine.ReceiveActionList(Al(kV1, 1, 1), &out),
               "per-channel AL order");
}

TEST(PaEdgeTest, StatePointerToAppliedRowIsSatisfied) {
  // Row 1's V1 cell is covered by AL(V1, 1..2); row 2 applies and is
  // purged in a wave that includes row 1 too — but construct the case
  // where a *later* row's state points at an already-purged row: rows
  // {1,2} apply together; then row 3's cell carries state 3 only.
  PaEngine engine({kV1, kV2}, TestRegistry());
  std::vector<WarehouseTransaction> out;
  engine.ReceiveRelSet(1, {kV1}, &out);
  engine.ReceiveRelSet(2, {kV1, kV2}, &out);
  engine.ReceiveActionList(Al(kV1, 1, 2), &out);
  EXPECT_TRUE(out.empty());  // row 2 still white in V2
  engine.ReceiveActionList(Al(kV2, 2, 2), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rows, (std::vector<UpdateId>{1, 2}));
  EXPECT_EQ(engine.open_rows(), 0u);
}

TEST(PaEdgeTest, EmptyDeltaBatchStillAdvancesRows) {
  PaEngine engine({kV1, kV2}, TestRegistry());
  std::vector<WarehouseTransaction> out;
  engine.ReceiveRelSet(1, {kV1, kV2}, &out);
  engine.ReceiveRelSet(2, {kV1, kV2}, &out);
  ActionList empty = Al(kV1, 1, 2);
  empty.delta.rows.clear();
  engine.ReceiveActionList(empty, &out);
  engine.ReceiveActionList(Al(kV2, 1, 2), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rows, (std::vector<UpdateId>{1, 2}));
  EXPECT_EQ(out[0].actions.size(), 2u);  // the empty AL still ships
}

TEST(PaEdgeTest, OutOfOrderRelSetsWithBatches) {
  PaEngine engine({kV1, kV2}, TestRegistry());
  std::vector<WarehouseTransaction> out;
  // REL2 first (piggyback), then a batch AL covering 1..2 must wait for
  // REL1 (its label row exists, but row 1 does not — the batch cannot
  // color unknown rows).
  engine.ReceiveRelSet(2, {kV1, kV2}, &out);
  engine.ReceiveActionList(Al(kV1, 1, 2), &out);
  EXPECT_TRUE(out.empty());
  // Hmm — the AL's label is 2, whose row exists; but covered row 1 does
  // not. The engine buffers on the earlier-unknown condition via the
  // per-view chain: AL(V1,1..2) colors only existing rows when
  // processed. Deliver REL1 and the V2 lists.
  engine.ReceiveRelSet(1, {kV1, kV2}, &out);
  engine.ReceiveActionList(Al(kV2, 1, 1), &out);
  engine.ReceiveActionList(Al(kV2, 2, 2), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rows, (std::vector<UpdateId>{1, 2}));
  EXPECT_EQ(engine.open_rows(), 0u);
}

TEST(PaEdgeTest, InterleavedGroupsApplySeparately) {
  // Two independent view columns progress independently even when their
  // update ids interleave. A manager's `covered` list names exactly its
  // own relevant updates (2 and 4 for V2; 1 and 3 for V1).
  auto sparse_al = [](ViewId view, std::vector<UpdateId> ids) {
    ActionList al;
    al.view = view;
    al.first_update = ids.front();
    al.update = ids.back();
    al.covered = std::move(ids);
    al.delta.target = TestRegistry()->ViewName(view);
    al.delta.Add(Tuple{al.update}, 1);
    return al;
  };
  PaEngine engine({kV1, kV2}, TestRegistry());
  std::vector<WarehouseTransaction> out;
  engine.ReceiveRelSet(1, {kV1}, &out);
  engine.ReceiveRelSet(2, {kV2}, &out);
  engine.ReceiveRelSet(3, {kV1}, &out);
  engine.ReceiveRelSet(4, {kV2}, &out);
  engine.ReceiveActionList(sparse_al(kV2, {2, 4}), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rows, (std::vector<UpdateId>{2, 4}));
  out.clear();
  engine.ReceiveActionList(sparse_al(kV1, {1, 3}), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rows, (std::vector<UpdateId>{1, 3}));
}

TEST(PassThroughEdgeTest, ForwardsImmediatelyWithoutRel) {
  PassThroughEngine engine({kV1}, TestRegistry());
  std::vector<WarehouseTransaction> out;
  engine.ReceiveActionList(Al(kV1, 3, 5), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rows, (std::vector<UpdateId>{3, 4, 5}));
  EXPECT_EQ(out[0].views, (std::vector<ViewId>{kV1}));
  EXPECT_EQ(out[0].source_state, 5);
  EXPECT_EQ(engine.held_action_lists(), 0u);
}

}  // namespace
}  // namespace mvc
