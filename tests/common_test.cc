// Unit tests for the common substrate: Status, Result, Rng, strings.

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace mvc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing table");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing table");
  EXPECT_EQ(st.ToString(), "NotFound: missing table");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::ConsistencyViolation("x").IsConsistencyViolation());
}

TEST(StatusTest, CopyPreservesError) {
  Status st = Status::Internal("boom");
  Status copy = st;
  EXPECT_TRUE(copy.IsInternal());
  EXPECT_EQ(copy.message(), "boom");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Aborted("inner"); };
  auto outer = [&]() -> Status {
    MVC_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsAborted());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(std::move(r).ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto make = [](bool ok) -> Result<int> {
    if (ok) return 7;
    return Status::Internal("x");
  };
  auto f = [&](bool ok) -> Result<int> {
    MVC_ASSIGN_OR_RETURN(int v, make(ok));
    return v + 1;
  };
  EXPECT_EQ(*f(true), 8);
  EXPECT_TRUE(f(false).status().IsInternal());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(9);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, ZipfSkewsTowardsSmallIndexes) {
  Rng rng(11);
  int64_t low = 0;
  const int kDraws = 2000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Zipf(10, 1.2) < 2) ++low;
  }
  // With theta=1.2 the first two of ten indexes should dominate.
  EXPECT_GT(low, kDraws / 3);
}

TEST(RngTest, ZipfZeroThetaIsUniformish) {
  Rng rng(13);
  int64_t low = 0;
  const int kDraws = 5000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Zipf(10, 0.0) < 2) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / kDraws, 0.2, 0.05);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.WeightedIndex(weights), 1u);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng fork = a.Fork();
  // The fork must not replay the parent's stream.
  Rng b(21);
  b.Fork();
  EXPECT_EQ(a.UniformInt(0, 1 << 30), b.UniformInt(0, 1 << 30));
  (void)fork;
}

TEST(StringUtilTest, JoinToString) {
  std::vector<int> v{1, 2, 3};
  EXPECT_EQ(JoinToString(v, ","), "1,2,3");
  EXPECT_EQ(JoinToString(std::vector<int>{}, ","), "");
}

TEST(StringUtilTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "-", 2.5), "a1-2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringUtilTest, SplitString) {
  EXPECT_EQ(SplitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("warehouse", "ware"));
  EXPECT_FALSE(StartsWith("ware", "warehouse"));
  EXPECT_TRUE(StartsWith("x", ""));
}

}  // namespace
}  // namespace mvc
