// Tests for the schedule-exploration layer: the ExploringRuntime's
// choice-point semantics, the DFS explorer's coverage of the paper
// examples, mutation detection with replayable counterexamples, and the
// effectiveness of sleep-set pruning.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "consistency/checker.h"
#include "explore/schedule_explorer.h"
#include "net/exploring_runtime.h"
#include "net/protocol.h"
#include "system/warehouse_system.h"
#include "workload/paper_examples.h"

namespace mvc {
namespace {

// ---------------------------------------------------------------------------
// ExploringRuntime unit tests.

/// Records (from, tag) for every delivered tick.
class TagRecorder : public Process {
 public:
  explicit TagRecorder(std::string name) : Process(std::move(name)) {}

  void OnMessage(ProcessId from, MessagePtr msg) override {
    ASSERT_EQ(msg->kind, Message::Kind::kTick);
    log.emplace_back(from, static_cast<TickMsg*>(msg.get())->tag);
  }

  std::vector<std::pair<ProcessId, int64_t>> log;
};

/// Sends `count` tagged ticks to `target` at start.
class TagSender : public Process {
 public:
  TagSender(std::string name, ProcessId target, int64_t base, int count)
      : Process(std::move(name)), target_(target), base_(base), count_(count) {}

  void OnStart() override {
    for (int i = 0; i < count_; ++i) {
      auto tick = std::make_unique<TickMsg>();
      tick->tag = base_ + i;
      Send(target_, std::move(tick));
    }
  }
  void OnMessage(ProcessId, MessagePtr) override {}

 private:
  ProcessId target_;
  int64_t base_;
  int count_;
};

TEST(ExploringRuntimeTest, DefaultSchedulerDrainsToQuiescence) {
  ExploringRuntime rt;
  TagRecorder recorder("recorder");
  ProcessId rid = rt.Register(&recorder);
  TagSender sender("sender", rid, 0, 4);
  rt.Register(&sender);
  rt.Run();
  ASSERT_EQ(recorder.log.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(recorder.log[size_t(i)].second, i);
  EXPECT_EQ(rt.steps(), 4);
}

TEST(ExploringRuntimeTest, ChannelsStayFifoUnderAdversarialScheduler) {
  ExploringRuntime rt;
  TagRecorder recorder("recorder");
  ProcessId rid = rt.Register(&recorder);
  TagSender a("a", rid, 0, 3);
  TagSender b("b", rid, 100, 3);
  ProcessId aid = rt.Register(&a);
  ProcessId bid = rt.Register(&b);
  // Always pick the LAST enabled choice: reverses inter-channel order but
  // must not reorder within a channel.
  rt.SetScheduler([](const std::vector<ChoicePoint>& enabled) {
    return static_cast<int64_t>(enabled.size()) - 1;
  });
  rt.Run();
  ASSERT_EQ(recorder.log.size(), 6u);
  std::vector<int64_t> from_a, from_b;
  for (const auto& [from, tag] : recorder.log) {
    if (from == aid) from_a.push_back(tag);
    if (from == bid) from_b.push_back(tag);
  }
  EXPECT_EQ(from_a, (std::vector<int64_t>{0, 1, 2}));
  EXPECT_EQ(from_b, (std::vector<int64_t>{100, 101, 102}));
}

/// Schedules two self timers with inverted delays at start.
class TimerProcess : public Process {
 public:
  explicit TimerProcess(std::string name) : Process(std::move(name)) {}

  void OnStart() override {
    auto late = std::make_unique<TickMsg>();
    late->tag = 2;
    ScheduleSelf(std::move(late), 50);
    auto soon = std::make_unique<TickMsg>();
    soon->tag = 1;
    ScheduleSelf(std::move(soon), 10);
  }
  void OnMessage(ProcessId, MessagePtr msg) override {
    order.push_back(static_cast<TickMsg*>(msg.get())->tag);
  }

  std::vector<int64_t> order;
};

TEST(ExploringRuntimeTest, SelfTimersDeliverByDeadlineNotSendOrder) {
  ExploringRuntime rt;
  TimerProcess timer("timer");
  rt.Register(&timer);
  rt.Run();
  EXPECT_EQ(timer.order, (std::vector<int64_t>{1, 2}));
}

TEST(ExploringRuntimeTest, SchedulerCanStopRunEarly) {
  ExploringRuntime rt;
  TagRecorder recorder("recorder");
  ProcessId rid = rt.Register(&recorder);
  TagSender sender("sender", rid, 0, 5);
  rt.Register(&sender);
  int64_t seen = 0;
  rt.SetScheduler([&](const std::vector<ChoicePoint>&) {
    return ++seen > 2 ? ExploringRuntime::kStopRun : 0;
  });
  rt.Run();
  EXPECT_EQ(recorder.log.size(), 2u);
}

TEST(ExploringRuntimeTest, TraceSinkSeesEveryDelivery) {
  ExploringRuntime rt;
  TagRecorder recorder("recorder");
  ProcessId rid = rt.Register(&recorder);
  TagSender sender("sender", rid, 0, 3);
  rt.Register(&sender);
  std::vector<std::string> lines;
  rt.SetTraceSink([&](const std::string& line) { lines.push_back(line); });
  rt.Run();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("sender -> recorder"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Explorer coverage of the paper examples: the MVC guarantees must hold
// under EVERY delivery interleaving within the bound, not just the
// latency-sampled ones the simulator happens to produce.

ExploreReport MustExplore(SystemConfig config, ExploreOptions options) {
  ScheduleExplorer explorer(std::move(config), options);
  auto report = explorer.Explore();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return *report;
}

TEST(ScheduleExplorerTest, Table1HoldsUnderAllSchedulesWithinBound) {
  ExploreOptions opt;
  opt.delay_bound = 2;
  opt.check = CheckLevel::kComplete;
  ExploreReport report = MustExplore(Table1Scenario(), opt);
  EXPECT_FALSE(report.violation.has_value())
      << report.violation->message;
  EXPECT_TRUE(report.exhausted);
  EXPECT_GT(report.executions, 1);
}

TEST(ScheduleExplorerTest, Table1RaceHoldsUnmutated) {
  ExploreOptions opt;
  opt.delay_bound = 3;
  opt.check = CheckLevel::kComplete;
  ExploreReport report = MustExplore(Table1RaceScenario(), opt);
  EXPECT_FALSE(report.violation.has_value())
      << report.violation->message;
  EXPECT_GT(report.executions, 10);
}

TEST(ScheduleExplorerTest, Example3HoldsUnderAllSchedulesWithinBound) {
  ExploreOptions opt;
  opt.delay_bound = 2;
  opt.check = CheckLevel::kComplete;
  ExploreReport report = MustExplore(Example3Scenario(), opt);
  EXPECT_FALSE(report.violation.has_value())
      << report.violation->message;
  EXPECT_TRUE(report.exhausted);
}

TEST(ScheduleExplorerTest, Example5HoldsUnderAllSchedulesWithinBound) {
  SystemConfig config = Example5Scenario();
  for (const auto& def : config.views) {
    config.manager_kinds[def.name] = ManagerKind::kStrong;
  }
  ExploreOptions opt;
  opt.delay_bound = 1;
  opt.check = CheckLevel::kStrong;
  ExploreReport report = MustExplore(std::move(config), opt);
  EXPECT_FALSE(report.violation.has_value())
      << report.violation->message;
}

TEST(ScheduleExplorerTest, DeriveCheckLevelMatchesScenario) {
  EXPECT_EQ(DeriveCheckLevel(Table1Scenario()), CheckLevel::kComplete);
  SystemConfig strong = Example5Scenario();
  for (const auto& def : strong.views) {
    strong.manager_kinds[def.name] = ManagerKind::kStrong;
  }
  EXPECT_EQ(DeriveCheckLevel(strong), CheckLevel::kStrong);
}

// Background compaction interleaved with commits and snapshot reads:
// the MVC chain conditions must hold on every schedule of the
// compaction protocol (stats / request / response racing transactions
// and ReadViews), and compaction must actually run inside the explored
// executions — the explorer rebuilds the system from the config alone,
// so both the compactor and the reader pool ride SystemConfig.
TEST(ScheduleExplorerTest, CompactionInterleavingsPreserveMvc) {
  SystemConfig config = Table1RaceScenario();
  config.compaction.enabled = true;
  config.compaction.tiered.hot_window = 1;
  config.compaction.stats_every_commits = 1;
  config.compaction.max_inflight = 1;
  config.warehouse.max_retained_versions = 8;
  config.attach_readers = true;
  config.readers.num_readers = 1;
  config.readers.reads_per_reader = 2;
  config.readers.mean_interval_us = 2000.0;

  ExploreOptions opt;
  opt.delay_bound = 1;
  opt.max_executions = 400;
  opt.max_steps = 5000;
  opt.check = CheckLevel::kComplete;

  ScheduleExplorer explorer(std::move(config), opt);
  int64_t executions_with_compaction = 0;
  explorer.SetExecutionObserver([&](const WarehouseSystem& system) {
    ASSERT_NE(system.compactor(), nullptr);
    if (system.compactor()->stats().merges_applied > 0) {
      ++executions_with_compaction;
    }
    // The scheduler bound holds on every explored interleaving.
    EXPECT_LE(system.compactor()->stats().peak_inflight, 1u);
  });
  auto report = explorer.Explore();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->violation.has_value()) << report->violation->message;
  EXPECT_GT(report->executions, 1);
  EXPECT_GT(executions_with_compaction, 0)
      << "no explored schedule ever compacted";
}

// ---------------------------------------------------------------------------
// Sharded ingest under exploration: two integrator shards feeding two
// merge groups. The MVC chain conditions must hold across shard
// boundaries on EVERY interleaving of the two shards' independent
// streams, and a shard that stamps its shard-local epoch instead of
// drawing the cross-shard ticket must be caught with a small,
// replayable counterexample.

/// Two sources hosting disjoint single-relation views: the shard plan
/// splits them onto two integrator shards and the exact partition gives
/// each its own merge process.
SystemConfig TwoShardScenario() {
  SystemConfig config;
  config.sources["srcL"] = {"R"};
  config.sources["srcR"] = {"T"};
  config.schemas["R"] = Schema::AllInt64({"A", "B"});
  config.schemas["T"] = Schema::AllInt64({"C", "D"});
  config.initial_data["R"] = {Tuple{1, 2}};
  config.initial_data["T"] = {Tuple{3, 4}};
  ViewDefinition vl;
  vl.name = "VL";
  vl.relations = {"R"};
  ViewDefinition vr;
  vr.name = "VR";
  vr.relations = {"T"};
  config.views = {vl, vr};
  config.ingest.num_shards = 2;
  config.ingest.fanout_merge = true;

  Injection u1;
  u1.at = 1000;
  u1.source = "srcL";
  u1.updates = {Update::Insert("srcL", "R", Tuple{5, 6})};
  Injection u2;
  u2.at = 2000;
  u2.source = "srcR";
  u2.updates = {Update::Insert("srcR", "T", Tuple{7, 8})};
  config.workload = {u1, u2};
  return config;
}

TEST(ScheduleExplorerTest, CrossShardInterleavingsPreserveMvc) {
  ExploreOptions opt;
  opt.delay_bound = 2;
  opt.check = CheckLevel::kComplete;
  ScheduleExplorer explorer(TwoShardScenario(), opt);
  int64_t executions = 0;
  explorer.SetExecutionObserver([&](const WarehouseSystem& system) {
    // The explorer rebuilds the system from SystemConfig alone, so the
    // sharded topology must survive the round trip on every execution.
    ASSERT_EQ(system.integrator_shards().size(), 2u);
    ASSERT_EQ(system.merges().size(), 2u);
    EXPECT_EQ(system.tickets_issued(), 2);
    ++executions;
  });
  auto report = explorer.Explore();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->violation.has_value()) << report->violation->message;
  EXPECT_TRUE(report->exhausted);
  EXPECT_GT(report->executions, 1);
  EXPECT_GT(executions, 1);
}

TEST(ScheduleExplorerTest, DetectsDroppedCrossShardTicket) {
  SystemConfig config = TwoShardScenario();
  config.integrator.mutation_drop_ticket = true;
  ExploreOptions opt;
  opt.delay_bound = 2;
  opt.max_steps = 500;
  opt.check = CheckLevel::kComplete;
  ExploreReport report = MustExplore(config, opt);
  ASSERT_TRUE(report.violation.has_value())
      << "dropped cross-shard ticket survived " << report.executions
      << " executions";
  EXPECT_LE(report.violation->schedule.size(), 20u);
  EXPECT_NE(report.violation->message.find("two source transactions"),
            std::string::npos)
      << report.violation->message;

  // The recorded schedule must reproduce the violation on a fresh
  // system...
  auto replay = ScheduleExplorer::Replay(config, report.violation->schedule,
                                         CheckLevel::kComplete);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_FALSE(replay->verdict.ok());

  // ...and a correctly ticketed system must pass the very same schedule
  // (the mutation changes only the stamped numbers, not the message
  // flow, so the schedule stays valid).
  auto clean_replay = ScheduleExplorer::Replay(
      TwoShardScenario(), report.violation->schedule, CheckLevel::kComplete);
  if (clean_replay.ok()) {
    EXPECT_TRUE(clean_replay->verdict.ok())
        << clean_replay->verdict.ToString();
  }
}

// ---------------------------------------------------------------------------
// Mutation detection: deliberately broken paint rules must be caught,
// with a small, replayable counterexample.

TEST(ScheduleExplorerTest, DetectsSpaOrderGateMutation) {
  SystemConfig config = Table1RaceScenario();
  config.merge.mutation = PaintMutation::kSpaSkipOrderGate;
  ExploreOptions opt;
  opt.delay_bound = 6;
  opt.iterative_deepening = true;
  opt.max_steps = 500;
  opt.check = CheckLevel::kComplete;
  ExploreReport report = MustExplore(config, opt);
  ASSERT_TRUE(report.violation.has_value())
      << "mutated SPA survived " << report.executions << " executions";
  EXPECT_LE(report.violation->schedule.size(), 20u);

  // The recorded schedule must reproduce the violation on a fresh system.
  auto replay = ScheduleExplorer::Replay(config, report.violation->schedule,
                                         CheckLevel::kComplete);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_FALSE(replay->verdict.ok());
  EXPECT_EQ(replay->trace.size(), report.violation->schedule.size());

  // And the unmutated system must pass the very same schedule.
  SystemConfig clean = Table1RaceScenario();
  auto clean_replay = ScheduleExplorer::Replay(
      clean, report.violation->schedule, CheckLevel::kComplete);
  if (clean_replay.ok()) {
    EXPECT_TRUE(clean_replay->verdict.ok())
        << clean_replay->verdict.ToString();
  }
}

TEST(ScheduleExplorerTest, DetectsPaWhiteGateMutation) {
  SystemConfig config = Table1RaceScenario();
  for (const auto& def : config.views) {
    config.manager_kinds[def.name] = ManagerKind::kStrong;
  }
  config.merge.mutation = PaintMutation::kPaSkipWhiteGate;
  ExploreOptions opt;
  opt.delay_bound = 2;
  opt.max_steps = 500;
  opt.check = CheckLevel::kStrong;
  ExploreReport report = MustExplore(config, opt);
  ASSERT_TRUE(report.violation.has_value());
  EXPECT_LE(report.violation->schedule.size(), 20u);
}

TEST(ScheduleExplorerTest, CounterexampleFileRoundTrips) {
  SystemConfig config = Table1RaceScenario();
  config.merge.mutation = PaintMutation::kSpaSkipOrderGate;
  ExploreOptions opt;
  opt.delay_bound = 6;
  opt.max_steps = 500;
  opt.check = CheckLevel::kComplete;
  ExploreReport report = MustExplore(config, opt);
  ASSERT_TRUE(report.violation.has_value());

  std::string path = ::testing::TempDir() + "/explore_test_cx.sched";
  ASSERT_TRUE(WriteCounterexampleFile(path, "table1-race",
                                      CheckLevel::kComplete,
                                      *report.violation)
                  .ok());
  auto loaded = ReadCounterexampleFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), report.violation->schedule.size());
  for (size_t i = 0; i < loaded->size(); ++i) {
    EXPECT_EQ((*loaded)[i].from, report.violation->schedule[i].from);
    EXPECT_EQ((*loaded)[i].to, report.violation->schedule[i].to);
    EXPECT_EQ((*loaded)[i].kind, report.violation->schedule[i].kind);
  }
  std::remove(path.c_str());
}

TEST(ScheduleExplorerTest, ReplayIsDeterministic) {
  SystemConfig config = Table1RaceScenario();
  config.merge.mutation = PaintMutation::kSpaSkipOrderGate;
  ExploreOptions opt;
  opt.delay_bound = 6;
  opt.max_steps = 500;
  opt.check = CheckLevel::kComplete;
  ExploreReport report = MustExplore(config, opt);
  ASSERT_TRUE(report.violation.has_value());

  auto first = ScheduleExplorer::Replay(config, report.violation->schedule,
                                        CheckLevel::kComplete);
  auto second = ScheduleExplorer::Replay(config, report.violation->schedule,
                                         CheckLevel::kComplete);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->verdict.ToString(), second->verdict.ToString());
  EXPECT_EQ(first->trace, second->trace);
}

// Sleep sets must prune commuting interleavings without changing the
// verdict: fewer executions, same (clean) outcome, still exhaustive.
TEST(ScheduleExplorerTest, SleepSetsPruneWithoutChangingVerdict) {
  ExploreOptions with;
  with.delay_bound = 2;
  with.iterative_deepening = false;
  with.check = CheckLevel::kComplete;
  ExploreOptions without = with;
  without.sleep_sets = false;

  ExploreReport pruned = MustExplore(Table1Scenario(), with);
  ExploreReport full = MustExplore(Table1Scenario(), without);
  EXPECT_FALSE(pruned.violation.has_value());
  EXPECT_FALSE(full.violation.has_value());
  EXPECT_TRUE(pruned.exhausted);
  EXPECT_TRUE(full.exhausted);
  EXPECT_LT(pruned.executions, full.executions);
  EXPECT_GT(pruned.sleep_skips, 0);
}

// ---------------------------------------------------------------------------
// CheckPrefix: the prefix oracle drops only the final-coverage clause.

TEST(ScheduleExplorerTest, CheckPrefixAcceptsCompleteRun) {
  SystemConfig config = Table1Scenario();
  auto system = WarehouseSystem::Build(std::move(config));
  ASSERT_TRUE(system.ok());
  (*system)->Run();
  ConsistencyChecker checker = (*system)->MakeChecker();
  EXPECT_TRUE(checker.CheckComplete((*system)->recorder()).ok());
  EXPECT_TRUE(
      checker.CheckPrefix((*system)->recorder(), /*require_single_steps=*/true)
          .ok());
}

// ---------------------------------------------------------------------------
// Self-maintenance (src/maint/): MVC must survive every bounded
// delivery schedule when one manager serves a whole group from
// auxiliaries, and a silently stale auxiliary must be caught with a
// small, replayable counterexample.

TEST(ScheduleExplorerTest, SelfMaintenanceHoldsUnderAllSchedulesWithinBound) {
  SystemConfig config = Table1RaceScenario();
  config.maint.self_maintain = true;
  EXPECT_EQ(DeriveCheckLevel(config), CheckLevel::kComplete);
  ExploreOptions opt;
  opt.delay_bound = 3;
  opt.max_steps = 500;
  opt.check = CheckLevel::kComplete;
  ExploreReport report = MustExplore(std::move(config), opt);
  EXPECT_FALSE(report.violation.has_value()) << report.violation->message;
  EXPECT_GT(report.executions, 1);
}

TEST(ScheduleExplorerTest, DetectsStaleAuxiliaryMutation) {
  // Skip the first effective auxiliary apply (U1's insert into the
  // shared S auxiliary): U2's DeltaT join then reads stale S state and
  // V2's action list misses a row the oracle expects.
  SystemConfig config = Table1RaceScenario();
  config.maint.self_maintain = true;
  config.maint.mutation_skip_aux_apply = 1;
  ExploreOptions opt;
  opt.delay_bound = 2;
  opt.max_steps = 500;
  opt.check = CheckLevel::kComplete;
  ExploreReport report = MustExplore(config, opt);
  ASSERT_TRUE(report.violation.has_value())
      << "stale auxiliary survived " << report.executions << " executions";
  EXPECT_LE(report.violation->schedule.size(), 20u);

  // The recorded schedule must reproduce the violation on a fresh
  // system...
  auto replay = ScheduleExplorer::Replay(config, report.violation->schedule,
                                         CheckLevel::kComplete);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_FALSE(replay->verdict.ok());

  // ...and the unmutated self-maintaining system must pass the very
  // same schedule (the mutation changes table contents, not message
  // flow, so the schedule stays valid).
  SystemConfig clean = Table1RaceScenario();
  clean.maint.self_maintain = true;
  auto clean_replay = ScheduleExplorer::Replay(
      clean, report.violation->schedule, CheckLevel::kComplete);
  if (clean_replay.ok()) {
    EXPECT_TRUE(clean_replay->verdict.ok())
        << clean_replay->verdict.ToString();
  }
}

}  // namespace
}  // namespace mvc
