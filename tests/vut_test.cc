// Unit tests for the ViewUpdateTable, including the Example 2 golden
// rendering and the dense ring-window edge cases (purge + far-ahead
// allocate + re-announce below the window).

#include <gtest/gtest.h>

#include "merge/vut.h"
#include "storage/id_registry.h"

namespace mvc {
namespace {

class VutTest : public ::testing::Test {
 protected:
  VutTest() {
    v1_ = registry_.InternView("V1");
    v2_ = registry_.InternView("V2");
    v3_ = registry_.InternView("V3");
  }

  IdRegistry registry_;
  ViewId v1_, v2_, v3_;
  ViewUpdateTable vut_{{0, 1, 2}, &registry_};
};

TEST_F(VutTest, ViewIndexByColumnOrder) {
  EXPECT_EQ(vut_.ViewIndex(v1_), 0u);
  EXPECT_EQ(vut_.ViewIndex(v3_), 2u);
}

TEST_F(VutTest, FindViewIndexIsNonFatal) {
  EXPECT_EQ(vut_.FindViewIndex(v2_), std::optional<size_t>(1u));
  EXPECT_EQ(vut_.FindViewIndex(99), std::nullopt);
  EXPECT_EQ(vut_.FindViewIndex(kInvalidView), std::nullopt);
}

TEST_F(VutTest, AllocateRowColorsRelWhiteRestBlack) {
  vut_.AllocateRow(1, {v1_, v2_});
  EXPECT_EQ(vut_.color(1, 0), CellColor::kWhite);
  EXPECT_EQ(vut_.color(1, 1), CellColor::kWhite);
  EXPECT_EQ(vut_.color(1, 2), CellColor::kBlack);
  EXPECT_EQ(vut_.state(1, 0), 0);
  EXPECT_TRUE(vut_.HasRow(1));
  EXPECT_EQ(vut_.max_allocated(), 1);
}

TEST_F(VutTest, Example2Rendering) {
  // Example 2: U1 on S -> REL1 = {V1, V2}; U2 on Q -> REL2 = {V2, V3}.
  vut_.AllocateRow(1, {v1_, v2_});
  vut_.AllocateRow(2, {v2_, v3_});
  EXPECT_EQ(vut_.ToString(),
            "     V1 V2 V3\n"
            "U1: w w b\n"
            "U2: b w w\n");
  // AL^2_1 arrives: the V2 entry of row 1 turns red.
  vut_.SetColor(1, vut_.ViewIndex(v2_), CellColor::kRed);
  EXPECT_EQ(vut_.ToString(),
            "     V1 V2 V3\n"
            "U1: w r b\n"
            "U2: b w w\n");
}

TEST_F(VutTest, RenderingWithState) {
  vut_.AllocateRow(1, {v1_, v2_});
  vut_.SetColor(1, 1, CellColor::kRed);
  vut_.SetState(1, 1, 3);
  EXPECT_EQ(vut_.ToString(true),
            "     V1 V2 V3\n"
            "U1: (w,0) (r,3) (b,0)\n");
}

TEST_F(VutTest, RowQueries) {
  vut_.AllocateRow(1, {v1_, v2_});
  EXPECT_TRUE(vut_.RowHasWhite(1));
  EXPECT_FALSE(vut_.RowAllBlackOrGray(1));
  vut_.SetColor(1, 0, CellColor::kGray);
  vut_.SetColor(1, 1, CellColor::kGray);
  EXPECT_FALSE(vut_.RowHasWhite(1));
  EXPECT_TRUE(vut_.RowAllBlackOrGray(1));
}

TEST_F(VutTest, NextRedScansDownward) {
  vut_.AllocateRow(1, {v2_});
  vut_.AllocateRow(3, {v2_});
  vut_.AllocateRow(5, {v2_});
  size_t v2 = vut_.ViewIndex(v2_);
  EXPECT_EQ(vut_.NextRed(1, v2), 0);  // all white
  vut_.SetColor(5, v2, CellColor::kRed);
  EXPECT_EQ(vut_.NextRed(1, v2), 5);
  vut_.SetColor(3, v2, CellColor::kRed);
  EXPECT_EQ(vut_.NextRed(1, v2), 3);
  // NextRed is strictly below i.
  EXPECT_EQ(vut_.NextRed(3, v2), 5);
  EXPECT_EQ(vut_.NextRed(5, v2), 0);
}

TEST_F(VutTest, EarlierRedQueries) {
  vut_.AllocateRow(1, {v2_});
  vut_.AllocateRow(4, {v2_});
  size_t v2 = vut_.ViewIndex(v2_);
  EXPECT_FALSE(vut_.HasEarlierRed(4, v2));
  vut_.SetColor(1, v2, CellColor::kRed);
  EXPECT_TRUE(vut_.HasEarlierRed(4, v2));
  EXPECT_EQ(vut_.EarlierRedRows(4, v2), (std::vector<UpdateId>{1}));
  EXPECT_FALSE(vut_.HasEarlierRed(1, v2));
}

TEST_F(VutTest, WhiteRowsUpToIncludesOwnRow) {
  vut_.AllocateRow(1, {v2_});
  vut_.AllocateRow(2, {v2_});
  vut_.AllocateRow(3, {v2_});
  size_t v2 = vut_.ViewIndex(v2_);
  EXPECT_EQ(vut_.WhiteRowsUpTo(2, v2), (std::vector<UpdateId>{1, 2}));
  vut_.SetColor(1, v2, CellColor::kRed);
  EXPECT_EQ(vut_.WhiteRowsUpTo(3, v2), (std::vector<UpdateId>{2, 3}));
}

TEST_F(VutTest, RowViewsWithColor) {
  vut_.AllocateRow(1, {v1_, v3_});
  EXPECT_EQ(vut_.RowViewsWithColor(1, CellColor::kWhite),
            (std::vector<ViewId>{v1_, v3_}));
  EXPECT_EQ(vut_.RowViewsWithColor(1, CellColor::kBlack),
            (std::vector<ViewId>{v2_}));
}

TEST_F(VutTest, PurgeRemovesRow) {
  vut_.AllocateRow(1, {v1_});
  vut_.AllocateRow(2, {v2_});
  EXPECT_EQ(vut_.num_rows(), 2u);
  vut_.PurgeRow(1);
  EXPECT_FALSE(vut_.HasRow(1));
  EXPECT_EQ(vut_.RowIds(), (std::vector<UpdateId>{2}));
  // max_allocated is sticky (distinguishes purged from unseen).
  EXPECT_EQ(vut_.max_allocated(), 2);
}

TEST_F(VutTest, EmptyRelRowIsAllBlack) {
  vut_.AllocateRow(7, {});
  EXPECT_TRUE(vut_.RowAllBlackOrGray(7));
  EXPECT_FALSE(vut_.RowHasWhite(7));
}

// --- Ring-window edge cases ---

TEST_F(VutTest, PurgeLowestRowAdvancesWindow) {
  vut_.AllocateRow(1, {v1_});
  vut_.AllocateRow(2, {v2_});
  vut_.AllocateRow(3, {v3_});
  vut_.PurgeRow(1);
  // The window slides; surviving rows stay addressable by id.
  EXPECT_FALSE(vut_.HasRow(1));
  EXPECT_TRUE(vut_.HasRow(2));
  EXPECT_TRUE(vut_.HasRow(3));
  EXPECT_EQ(vut_.RowIds(), (std::vector<UpdateId>{2, 3}));
  EXPECT_EQ(vut_.color(2, vut_.ViewIndex(v2_)), CellColor::kWhite);
  // Interior purge leaves a dead slot; ids still map correctly.
  vut_.AllocateRow(4, {v1_});
  vut_.PurgeRow(3);
  EXPECT_EQ(vut_.RowIds(), (std::vector<UpdateId>{2, 4}));
  EXPECT_EQ(vut_.NextRed(2, vut_.ViewIndex(v1_)), 0);
}

TEST_F(VutTest, FarAheadAllocateSkipsIds) {
  vut_.AllocateRow(2, {v1_});
  vut_.AllocateRow(100, {v2_});
  EXPECT_TRUE(vut_.HasRow(2));
  EXPECT_TRUE(vut_.HasRow(100));
  EXPECT_FALSE(vut_.HasRow(50));
  EXPECT_EQ(vut_.num_rows(), 2u);
  EXPECT_EQ(vut_.RowIds(), (std::vector<UpdateId>{2, 100}));
  EXPECT_EQ(vut_.max_allocated(), 100);
  // Scans skip the dead gap.
  vut_.SetColor(100, vut_.ViewIndex(v2_), CellColor::kRed);
  EXPECT_EQ(vut_.NextRed(2, vut_.ViewIndex(v2_)), 100);
}

TEST_F(VutTest, ReAnnounceBelowWindowAfterPurge) {
  // Crash-replay pattern: row 5 is purged (window moves to 6), then the
  // recovering merge re-announces update 5.
  vut_.AllocateRow(5, {v1_});
  vut_.AllocateRow(6, {v2_});
  vut_.PurgeRow(5);
  EXPECT_EQ(vut_.max_allocated(), 6);
  vut_.AllocateRow(5, {v1_});
  EXPECT_TRUE(vut_.HasRow(5));
  EXPECT_EQ(vut_.color(5, vut_.ViewIndex(v1_)), CellColor::kWhite);
  EXPECT_EQ(vut_.RowIds(), (std::vector<UpdateId>{5, 6}));
  // Re-announcing below the high-water mark must not move it.
  EXPECT_EQ(vut_.max_allocated(), 6);
}

TEST_F(VutTest, PurgeAllThenRestartKeepsMaxAllocated) {
  vut_.AllocateRow(1, {v1_});
  vut_.AllocateRow(2, {v2_});
  vut_.PurgeRow(2);
  vut_.PurgeRow(1);
  EXPECT_EQ(vut_.num_rows(), 0u);
  EXPECT_EQ(vut_.max_allocated(), 2);
  vut_.AllocateRow(9, {v3_});
  EXPECT_EQ(vut_.RowIds(), (std::vector<UpdateId>{9}));
  EXPECT_EQ(vut_.max_allocated(), 9);
}

TEST(VutColorTest, ColorChars) {
  EXPECT_EQ(CellColorChar(CellColor::kWhite), 'w');
  EXPECT_EQ(CellColorChar(CellColor::kRed), 'r');
  EXPECT_EQ(CellColorChar(CellColor::kGray), 'g');
  EXPECT_EQ(CellColorChar(CellColor::kBlack), 'b');
}

}  // namespace
}  // namespace mvc
