// Unit tests for view definitions and binding.

#include <gtest/gtest.h>

#include "query/view_def.h"
#include "workload/paper_examples.h"

namespace mvc {
namespace {

std::map<std::string, Schema> PaperSchemas() {
  return {{"R", Schema::AllInt64({"A", "B"})},
          {"S", Schema::AllInt64({"B", "C"})},
          {"T", Schema::AllInt64({"C", "D"})},
          {"Q", Schema::AllInt64({"D", "E"})}};
}

TEST(BoundViewTest, BindsPaperV1) {
  auto bound = BoundView::Bind(PaperV1(), PaperSchemas());
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->name(), "V1");
  EXPECT_EQ(bound->num_relations(), 2u);
  EXPECT_EQ(bound->total_width(), 4u);
  EXPECT_EQ(bound->relation_offset(0), 0u);
  EXPECT_EQ(bound->relation_offset(1), 2u);
  EXPECT_EQ(bound->output_schema(), Schema::AllInt64({"A", "B", "C"}));
  EXPECT_EQ(bound->projection_offsets(),
            (std::vector<size_t>{0, 1, 3}));
  EXPECT_EQ(*bound->RelationIndex("S"), 1u);
  EXPECT_FALSE(bound->RelationIndex("T").has_value());
}

TEST(BoundViewTest, ConjunctClassification) {
  ViewDefinition def;
  def.name = "V";
  def.relations = {"R", "S", "T"};
  def.predicate = Predicate::And(
      {Predicate::ColEqCol(ColumnRef{"R", "B"}, ColumnRef{"S", "B"}),
       Predicate::ColEqCol(ColumnRef{"S", "C"}, ColumnRef{"T", "C"}),
       Predicate::ColCmpConst(CompareOp::kLt, ColumnRef{"R", "A"},
                              Value(10))});
  auto bound = BoundView::Bind(def, PaperSchemas());
  ASSERT_TRUE(bound.ok());
  ASSERT_EQ(bound->conjuncts().size(), 3u);
  // R.B = S.B touches relations {0,1}, applicable at step 1.
  EXPECT_EQ(bound->conjuncts()[0].relations, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(bound->conjuncts()[0].max_relation, 1u);
  // S.C = T.C touches {1,2}.
  EXPECT_EQ(bound->conjuncts()[1].max_relation, 2u);
  // R.A < 10 touches only {0}.
  EXPECT_EQ(bound->conjuncts()[2].relations, (std::vector<size_t>{0}));
  EXPECT_EQ(bound->conjuncts()[2].max_relation, 0u);
}

TEST(BoundViewTest, EmptyProjectionTakesAllColumns) {
  auto bound = BoundView::Bind(PaperV3(), PaperSchemas());
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->output_schema(), Schema::AllInt64({"D", "E"}));
}

TEST(BoundViewTest, DuplicateOutputNamesGetQualified) {
  ViewDefinition def;
  def.name = "V";
  def.relations = {"R", "S"};
  def.projection = {ColumnRef{"R", "B"}, ColumnRef{"S", "B"}};
  auto bound = BoundView::Bind(def, PaperSchemas());
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->output_schema().column(0).name, "B");
  EXPECT_EQ(bound->output_schema().column(1).name, "S.B");
}

TEST(BoundViewTest, UnqualifiedUniqueColumnResolves) {
  ViewDefinition def;
  def.name = "V";
  def.relations = {"R", "S"};
  def.predicate = Predicate::ColCmpConst(CompareOp::kGt, ColumnRef{"", "A"},
                                         Value(0));
  EXPECT_TRUE(BoundView::Bind(def, PaperSchemas()).ok());
}

TEST(BoundViewTest, AmbiguousUnqualifiedColumnFails) {
  ViewDefinition def;
  def.name = "V";
  def.relations = {"R", "S"};
  // "B" exists in both R and S.
  def.predicate = Predicate::ColCmpConst(CompareOp::kGt, ColumnRef{"", "B"},
                                         Value(0));
  EXPECT_TRUE(
      BoundView::Bind(def, PaperSchemas()).status().IsInvalidArgument());
}

TEST(BoundViewTest, UnknownRelationFails) {
  ViewDefinition def;
  def.name = "V";
  def.relations = {"Z"};
  EXPECT_TRUE(BoundView::Bind(def, PaperSchemas()).status().IsNotFound());
}

TEST(BoundViewTest, UnknownColumnFails) {
  ViewDefinition def;
  def.name = "V";
  def.relations = {"R"};
  def.projection = {ColumnRef{"R", "ZZ"}};
  EXPECT_TRUE(BoundView::Bind(def, PaperSchemas()).status().IsNotFound());
}

TEST(BoundViewTest, PredicateOnForeignRelationFails) {
  ViewDefinition def;
  def.name = "V";
  def.relations = {"R"};
  def.predicate = Predicate::ColCmpConst(CompareOp::kGt, ColumnRef{"T", "C"},
                                         Value(0));
  EXPECT_TRUE(BoundView::Bind(def, PaperSchemas()).status().IsNotFound());
}

TEST(BoundViewTest, SelfJoinRejected) {
  ViewDefinition def;
  def.name = "V";
  def.relations = {"R", "R"};
  EXPECT_TRUE(
      BoundView::Bind(def, PaperSchemas()).status().IsInvalidArgument());
}

TEST(BoundViewTest, NoRelationsRejected) {
  ViewDefinition def;
  def.name = "V";
  EXPECT_TRUE(
      BoundView::Bind(def, PaperSchemas()).status().IsInvalidArgument());
}

TEST(BoundViewTest, ProjectExtractsOffsets) {
  auto bound = BoundView::Bind(PaperV1(), PaperSchemas());
  ASSERT_TRUE(bound.ok());
  // Concatenated row: R.A, R.B, S.B, S.C.
  Tuple joined{1, 2, 2, 3};
  EXPECT_EQ(bound->Project(joined), (Tuple{1, 2, 3}));
}

TEST(ViewDefinitionTest, ToStringMentionsParts) {
  std::string s = PaperV1().ToString();
  EXPECT_NE(s.find("V1 = R JOIN S"), std::string::npos);
  EXPECT_NE(s.find("R.B = S.B"), std::string::npos);
  EXPECT_NE(s.find("PROJECT"), std::string::npos);
}

}  // namespace
}  // namespace mvc
