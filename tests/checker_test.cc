// Tests for the consistency oracle itself: it must accept legal runs
// and, crucially, detect each class of violation (a checker that never
// fires proves nothing).

#include <gtest/gtest.h>

#include "consistency/checker.h"
#include "query/evaluator.h"
#include "workload/paper_examples.h"

namespace mvc {
namespace {

// Harness around the Table 1 scenario: base R={[1,2]}, T={[3,4]}, S
// empty; views V1 = R|><|S and V2 = S|><|T. One update inserts [2,3]
// into S.
class CheckerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schemas_ = {{"R", Schema::AllInt64({"A", "B"})},
                {"S", Schema::AllInt64({"B", "C"})},
                {"T", Schema::AllInt64({"C", "D"})}};
    ASSERT_TRUE(base_.CreateTable("R", schemas_["R"]).ok());
    ASSERT_TRUE(base_.CreateTable("S", schemas_["S"]).ok());
    ASSERT_TRUE(base_.CreateTable("T", schemas_["T"]).ok());
    ASSERT_TRUE((*base_.GetTable("R"))->Insert(Tuple{1, 2}).ok());
    ASSERT_TRUE((*base_.GetTable("T"))->Insert(Tuple{3, 4}).ok());
    v1_ = std::move(BoundView::Bind(PaperV1(), schemas_)).value();
    v2_ = std::move(BoundView::Bind(PaperV2(), schemas_)).value();
  }

  ConsistencyChecker MakeChecker() {
    return ConsistencyChecker(std::vector<const BoundView*>{&*v1_, &*v2_},
                              base_);
  }

  /// Records update U_i inserting tuple `t` into S at time i*100.
  void RecordUpdate(ConsistencyRecorder* recorder, UpdateId id, Tuple t) {
    SourceTransaction txn;
    txn.local_seq = id;
    txn.updates = {Update::Insert("src0", "S", std::move(t))};
    recorder->OnUpdateNumbered(id, txn, id * 100);
  }

  /// Records a commit whose claimed rows are `rows` and whose snapshot
  /// is evaluated over `base_state`.
  void RecordCommit(ConsistencyRecorder* recorder, std::vector<UpdateId> rows,
                    const Catalog& base_state, TimeMicros at) {
    WarehouseTransaction txn;
    txn.txn_id = at;
    txn.rows = std::move(rows);
    txn.views = {0, 1};
    Catalog snapshot;
    for (const BoundView* view : {&*v1_, &*v2_}) {
      auto contents =
          ViewEvaluator::Evaluate(*view, CatalogProvider(&base_state));
      MVC_CHECK(contents.ok());
      MVC_CHECK(snapshot.CreateTable(view->name(), view->output_schema()).ok());
      Status st;
      contents->Scan([&](const Tuple& tuple, int64_t count) {
        if (st.ok()) st = (*snapshot.GetTable(view->name()))->Insert(tuple,
                                                                     count);
      });
      MVC_CHECK(st.ok());
    }
    recorder->OnCommit(0, txn, snapshot, at);
  }

  std::map<std::string, Schema> schemas_;
  Catalog base_;
  std::optional<BoundView> v1_, v2_;
};

TEST_F(CheckerTest, AcceptsLegalCompleteRun) {
  ConsistencyRecorder recorder;
  RecordUpdate(&recorder, 1, Tuple{2, 3});
  Catalog after = base_.Clone();
  ASSERT_TRUE((*after.GetTable("S"))->Insert(Tuple{2, 3}).ok());
  RecordCommit(&recorder, {1}, after, 500);

  ConsistencyChecker checker = MakeChecker();
  EXPECT_TRUE(checker.CheckComplete(recorder).ok());
  EXPECT_TRUE(checker.CheckStrong(recorder).ok());
  EXPECT_TRUE(checker.CheckConvergent(recorder).ok());
}

TEST_F(CheckerTest, DetectsMutuallyInconsistentViews) {
  // The Example 1 anomaly: V1 reflects the insert but V2 does not.
  ConsistencyRecorder recorder;
  RecordUpdate(&recorder, 1, Tuple{2, 3});

  Catalog after = base_.Clone();
  ASSERT_TRUE((*after.GetTable("S"))->Insert(Tuple{2, 3}).ok());
  WarehouseTransaction txn;
  txn.rows = {1};
  txn.views = {0, 1};
  Catalog snapshot;
  // V1 evaluated after the update, V2 before it: mixed state.
  auto v1_contents = ViewEvaluator::Evaluate(*v1_, CatalogProvider(&after));
  ASSERT_TRUE(v1_contents.ok());
  ASSERT_TRUE(snapshot.CreateTable("V1", v1_->output_schema()).ok());
  v1_contents->Scan([&](const Tuple& t, int64_t c) {
    MVC_CHECK((*snapshot.GetTable("V1"))->Insert(t, c).ok());
  });
  ASSERT_TRUE(snapshot.CreateTable("V2", v2_->output_schema()).ok());
  recorder.OnCommit(0, txn, snapshot, 500);

  ConsistencyChecker checker = MakeChecker();
  Status st = checker.CheckStrong(recorder);
  EXPECT_TRUE(st.IsConsistencyViolation()) << st;
  EXPECT_NE(st.message().find("V2"), std::string::npos);
}

TEST_F(CheckerTest, DetectsMissingUpdateAtEnd) {
  ConsistencyRecorder recorder;
  RecordUpdate(&recorder, 1, Tuple{2, 3});
  // No commit at all.
  ConsistencyChecker checker = MakeChecker();
  Status st = checker.CheckStrong(recorder);
  EXPECT_TRUE(st.IsConsistencyViolation());
  EXPECT_NE(st.message().find("never reflected"), std::string::npos);
  EXPECT_TRUE(checker.CheckConvergent(recorder).IsConsistencyViolation());
}

TEST_F(CheckerTest, DetectsDependentReordering) {
  // U1 and U2 both touch S (shared views); a commit claiming U2 without
  // U1 is illegal even if contents were made to match.
  ConsistencyRecorder recorder;
  RecordUpdate(&recorder, 1, Tuple{2, 3});
  RecordUpdate(&recorder, 2, Tuple{2, 9});

  Catalog after2 = base_.Clone();
  ASSERT_TRUE((*after2.GetTable("S"))->Insert(Tuple{2, 9}).ok());
  RecordCommit(&recorder, {2}, after2, 400);

  Catalog after_both = after2.Clone();
  ASSERT_TRUE((*after_both.GetTable("S"))->Insert(Tuple{2, 3}).ok());
  RecordCommit(&recorder, {1}, after_both, 500);

  ConsistencyChecker checker = MakeChecker();
  Status st = checker.CheckStrong(recorder);
  EXPECT_TRUE(st.IsConsistencyViolation());
  EXPECT_NE(st.message().find("before dependent"), std::string::npos);
}

TEST_F(CheckerTest, CompleteRequiresSingleSteps) {
  ConsistencyRecorder recorder;
  RecordUpdate(&recorder, 1, Tuple{2, 3});
  RecordUpdate(&recorder, 2, Tuple{2, 9});
  Catalog after = base_.Clone();
  ASSERT_TRUE((*after.GetTable("S"))->Insert(Tuple{2, 3}).ok());
  ASSERT_TRUE((*after.GetTable("S"))->Insert(Tuple{2, 9}).ok());
  RecordCommit(&recorder, {1, 2}, after, 500);

  ConsistencyChecker checker = MakeChecker();
  // Strong: fine (one batched step). Complete: violated.
  EXPECT_TRUE(checker.CheckStrong(recorder).ok());
  Status st = checker.CheckComplete(recorder);
  EXPECT_TRUE(st.IsConsistencyViolation());
  EXPECT_NE(st.message().find("advances by 2"), std::string::npos);
}

TEST_F(CheckerTest, ConvergentAcceptsWrongIntermediateStates) {
  ConsistencyRecorder recorder;
  RecordUpdate(&recorder, 1, Tuple{2, 3});

  // Intermediate commit with a garbage snapshot (V1 updated, V2 not).
  WarehouseTransaction bogus;
  bogus.rows = {};
  Catalog junk;
  ASSERT_TRUE(junk.CreateTable("V1", v1_->output_schema()).ok());
  ASSERT_TRUE(junk.CreateTable("V2", v2_->output_schema()).ok());
  ASSERT_TRUE((*junk.GetTable("V1"))->Insert(Tuple{9, 9, 9}).ok());
  recorder.OnCommit(0, bogus, junk, 300);

  Catalog after = base_.Clone();
  ASSERT_TRUE((*after.GetTable("S"))->Insert(Tuple{2, 3}).ok());
  RecordCommit(&recorder, {1}, after, 500);

  ConsistencyChecker checker = MakeChecker();
  EXPECT_TRUE(checker.CheckConvergent(recorder).ok());
  EXPECT_FALSE(checker.CheckStrong(recorder).ok());
}

TEST_F(CheckerTest, DetectsUnknownClaimedUpdate) {
  ConsistencyRecorder recorder;
  Catalog after = base_.Clone();
  RecordCommit(&recorder, {42}, after, 500);
  ConsistencyChecker checker = MakeChecker();
  Status st = checker.CheckStrong(recorder);
  EXPECT_TRUE(st.IsConsistencyViolation());
  EXPECT_NE(st.message().find("unknown update"), std::string::npos);
}

TEST_F(CheckerTest, SnapshotsRequired) {
  ConsistencyRecorder recorder(/*snapshot_views=*/false);
  ConsistencyChecker checker = MakeChecker();
  EXPECT_TRUE(checker.CheckStrong(recorder).IsFailedPrecondition());
  EXPECT_TRUE(checker.CheckConvergent(recorder).IsFailedPrecondition());
}

TEST_F(CheckerTest, FreshnessStatsComputeLags) {
  ConsistencyRecorder recorder;
  RecordUpdate(&recorder, 1, Tuple{2, 3});   // numbered at 100
  RecordUpdate(&recorder, 2, Tuple{2, 9});   // numbered at 200
  Catalog after = base_.Clone();
  ASSERT_TRUE((*after.GetTable("S"))->Insert(Tuple{2, 3}).ok());
  RecordCommit(&recorder, {1}, after, 400);  // lag 300
  ASSERT_TRUE((*after.GetTable("S"))->Insert(Tuple{2, 9}).ok());
  RecordCommit(&recorder, {2}, after, 900);  // lag 700

  FreshnessStats stats = recorder.ComputeFreshness();
  EXPECT_EQ(stats.updates_reflected, 2);
  EXPECT_DOUBLE_EQ(stats.mean_lag_micros, 500.0);
  EXPECT_EQ(stats.max_lag_micros, 700);
}

}  // namespace
}  // namespace mvc
