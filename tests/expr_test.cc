// Unit tests for predicates and their bound forms.

#include <gtest/gtest.h>

#include "query/expr.h"

namespace mvc {
namespace {

TEST(CompareValuesTest, AllOpsOnInts) {
  EXPECT_TRUE(CompareValues(CompareOp::kEq, Value(1), Value(1)));
  EXPECT_TRUE(CompareValues(CompareOp::kNe, Value(1), Value(2)));
  EXPECT_TRUE(CompareValues(CompareOp::kLt, Value(1), Value(2)));
  EXPECT_TRUE(CompareValues(CompareOp::kLe, Value(2), Value(2)));
  EXPECT_TRUE(CompareValues(CompareOp::kGt, Value(3), Value(2)));
  EXPECT_TRUE(CompareValues(CompareOp::kGe, Value(2), Value(2)));
  EXPECT_FALSE(CompareValues(CompareOp::kLt, Value(2), Value(2)));
}

TEST(CompareValuesTest, MixedNumericTypesCompareByValue) {
  EXPECT_TRUE(CompareValues(CompareOp::kEq, Value(2), Value(2.0)));
  EXPECT_TRUE(CompareValues(CompareOp::kLt, Value(2), Value(2.5)));
  EXPECT_TRUE(CompareValues(CompareOp::kGt, Value(3.5), Value(3)));
}

TEST(CompareValuesTest, Strings) {
  EXPECT_TRUE(CompareValues(CompareOp::kLt, Value("a"), Value("b")));
  EXPECT_TRUE(CompareValues(CompareOp::kEq, Value("x"), Value("x")));
}

// Binds against a two-column row: col "a" -> 0, "b" -> 1.
Result<BoundPredicate> BindAB(const Predicate& p) {
  return BoundPredicate::Bind(p, [](const ColumnRef& ref) -> Result<size_t> {
    if (ref.column == "a") return size_t{0};
    if (ref.column == "b") return size_t{1};
    return Status::NotFound("no column " + ref.column);
  });
}

TEST(PredicateTest, TrueIsTrivial) {
  Predicate p = Predicate::True();
  EXPECT_TRUE(p.IsTrivial());
  EXPECT_TRUE(p.Conjuncts().empty());
  auto bp = BindAB(p);
  ASSERT_TRUE(bp.ok());
  EXPECT_TRUE(bp->Evaluate(Tuple{}));
}

TEST(PredicateTest, ComparisonEvaluation) {
  Predicate p = Predicate::ColCmpConst(CompareOp::kLt, ColumnRef{"", "a"},
                                       Value(5));
  auto bp = BindAB(p);
  ASSERT_TRUE(bp.ok());
  EXPECT_TRUE(bp->Evaluate(Tuple{3, 0}));
  EXPECT_FALSE(bp->Evaluate(Tuple{7, 0}));
}

TEST(PredicateTest, ColEqColEvaluation) {
  Predicate p = Predicate::ColEqCol(ColumnRef{"", "a"}, ColumnRef{"", "b"});
  auto bp = BindAB(p);
  ASSERT_TRUE(bp.ok());
  EXPECT_TRUE(bp->Evaluate(Tuple{4, 4}));
  EXPECT_FALSE(bp->Evaluate(Tuple{4, 5}));
}

TEST(PredicateTest, AndOrNot) {
  Predicate lt = Predicate::ColCmpConst(CompareOp::kLt, ColumnRef{"", "a"},
                                        Value(5));
  Predicate gt = Predicate::ColCmpConst(CompareOp::kGt, ColumnRef{"", "b"},
                                        Value(1));
  auto band = BindAB(Predicate::And({lt, gt}));
  ASSERT_TRUE(band.ok());
  EXPECT_TRUE(band->Evaluate(Tuple{3, 2}));
  EXPECT_FALSE(band->Evaluate(Tuple{3, 0}));

  auto bor = BindAB(Predicate::Or({lt, gt}));
  ASSERT_TRUE(bor.ok());
  EXPECT_TRUE(bor->Evaluate(Tuple{9, 2}));
  EXPECT_FALSE(bor->Evaluate(Tuple{9, 0}));

  auto bnot = BindAB(Predicate::Not(lt));
  ASSERT_TRUE(bnot.ok());
  EXPECT_TRUE(bnot->Evaluate(Tuple{9, 0}));
  EXPECT_FALSE(bnot->Evaluate(Tuple{3, 0}));
}

TEST(PredicateTest, AndFlatteningInConjuncts) {
  Predicate a = Predicate::ColCmpConst(CompareOp::kLt, ColumnRef{"", "a"},
                                       Value(5));
  Predicate b = Predicate::ColCmpConst(CompareOp::kGt, ColumnRef{"", "b"},
                                       Value(1));
  Predicate c = Predicate::ColEqCol(ColumnRef{"", "a"}, ColumnRef{"", "b"});
  Predicate nested = Predicate::And({a, Predicate::And({b, c})});
  EXPECT_EQ(nested.Conjuncts().size(), 3u);
  // A single comparison is one conjunct.
  EXPECT_EQ(a.Conjuncts().size(), 1u);
  // An OR is a single (non-splittable) conjunct.
  EXPECT_EQ(Predicate::Or({a, b}).Conjuncts().size(), 1u);
}

TEST(PredicateTest, AndOfOneCollapses) {
  Predicate a = Predicate::ColCmpConst(CompareOp::kLt, ColumnRef{"", "a"},
                                       Value(5));
  EXPECT_EQ(Predicate::And({a}).kind(), Predicate::Kind::kComparison);
  EXPECT_TRUE(Predicate::And({}).IsTrivial());
}

TEST(PredicateTest, CollectColumns) {
  Predicate p = Predicate::And(
      {Predicate::ColEqCol(ColumnRef{"R", "a"}, ColumnRef{"S", "b"}),
       Predicate::ColCmpConst(CompareOp::kGt, ColumnRef{"R", "a"},
                              Value(1))});
  std::vector<ColumnRef> cols;
  p.CollectColumns(&cols);
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0], (ColumnRef{"R", "a"}));
  EXPECT_EQ(cols[1], (ColumnRef{"S", "b"}));
}

TEST(PredicateTest, ToString) {
  Predicate p = Predicate::And(
      {Predicate::ColEqCol(ColumnRef{"R", "a"}, ColumnRef{"S", "b"}),
       Predicate::ColCmpConst(CompareOp::kLt, ColumnRef{"R", "a"},
                              Value(9))});
  EXPECT_EQ(p.ToString(), "(R.a = S.b AND R.a < 9)");
}

TEST(BoundPredicateTest, BindFailsOnUnknownColumn) {
  Predicate p = Predicate::ColCmpConst(CompareOp::kLt, ColumnRef{"", "zz"},
                                       Value(5));
  EXPECT_TRUE(BindAB(p).status().IsNotFound());
}

TEST(BoundPredicateTest, AsEquiJoinDetectsColEqCol) {
  auto join = BindAB(
      Predicate::ColEqCol(ColumnRef{"", "a"}, ColumnRef{"", "b"}));
  ASSERT_TRUE(join.ok());
  size_t lo = 99;
  size_t hi = 99;
  EXPECT_TRUE(join->AsEquiJoin(&lo, &hi));
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 1u);

  auto not_join = BindAB(Predicate::ColCmpConst(
      CompareOp::kEq, ColumnRef{"", "a"}, Value(5)));
  ASSERT_TRUE(not_join.ok());
  EXPECT_FALSE(not_join->AsEquiJoin(&lo, &hi));

  auto ne = BindAB(Predicate::Compare(
      CompareOp::kNe, Predicate::Operand::Col(ColumnRef{"", "a"}),
      Predicate::Operand::Col(ColumnRef{"", "b"})));
  ASSERT_TRUE(ne.ok());
  EXPECT_FALSE(ne->AsEquiJoin(&lo, &hi));

  // a = a (same offset) is not a join.
  auto self = BindAB(
      Predicate::ColEqCol(ColumnRef{"", "a"}, ColumnRef{"", "a"}));
  ASSERT_TRUE(self.ok());
  EXPECT_FALSE(self->AsEquiJoin(&lo, &hi));
}

TEST(BoundPredicateTest, MaxOffsetAndConstness) {
  auto bp = BindAB(
      Predicate::ColEqCol(ColumnRef{"", "a"}, ColumnRef{"", "b"}));
  ASSERT_TRUE(bp.ok());
  EXPECT_EQ(bp->MaxOffset(), 1u);
  EXPECT_FALSE(bp->IsConstant());

  auto constant = BindAB(Predicate::Compare(
      CompareOp::kLt, Predicate::Operand::Const(Value(1)),
      Predicate::Operand::Const(Value(2))));
  ASSERT_TRUE(constant.ok());
  EXPECT_TRUE(constant->IsConstant());
  EXPECT_TRUE(constant->Evaluate(Tuple{}));
}

}  // namespace
}  // namespace mvc
