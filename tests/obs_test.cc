// Observability tests: instrument primitives, exporters, the
// trace-completeness oracle, and the end-to-end property that every
// sequenced update's span chain terminates in exactly one warehouse
// commit on randomized workloads, plus the promptness regression
// (merge.prompt_violations == 0) on the paper's scenarios.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "merge/merge_engine.h"
#include "merge/vut.h"
#include "obs/derived.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/id_registry.h"
#include "system/warehouse_system.h"
#include "workload/generator.h"
#include "workload/paper_examples.h"

namespace mvc {
namespace {

using obs::Histogram;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::Span;
using obs::SpanKind;

// --- Instrument primitives ---

TEST(HistogramTest, BucketIndexMatchesLogBounds) {
  // Bucket 0 holds 0; bucket b >= 1 holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  // Negative samples clamp to bucket 0.
  EXPECT_EQ(Histogram::BucketIndex(-5), 0u);

  EXPECT_EQ(Histogram::BucketUpperBound(0), 0);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7);
  EXPECT_EQ(Histogram::BucketUpperBound(4), 15);

  // Every representable value lands in the bucket whose bounds admit it.
  for (int64_t v : {0LL, 1LL, 5LL, 100LL, 65535LL, 1LL << 40}) {
    const size_t b = Histogram::BucketIndex(v);
    EXPECT_LE(v, Histogram::BucketUpperBound(b)) << v;
    if (b > 0) {
      EXPECT_GT(v, Histogram::BucketUpperBound(b - 1)) << v;
    }
  }
}

TEST(HistogramTest, RecordTracksCountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  for (int64_t v : {5, 100, 2, 2, 40}) h.Record(v);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), 149);
  EXPECT_EQ(h.min(), 2);
  EXPECT_EQ(h.max(), 100);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(2)), 2);
}

TEST(HistogramTest, SnapshotQuantilesWalkBuckets) {
  MetricsRegistry registry;
  Histogram* h = registry.RegisterHistogram("t.lat", "us");
  for (int i = 0; i < 90; ++i) h->Record(10);   // bucket [8,15]
  for (int i = 0; i < 10; ++i) h->Record(500);  // bucket [256,511]
  const MetricsSnapshot s = registry.Snapshot();
  const obs::HistogramSnapshot* snap = obs::FindHistogram(s, "t.lat");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->count, 100);
  EXPECT_EQ(snap->unit, "us");
  // p50 falls in the low bucket, p99 in the high one.
  EXPECT_LE(snap->Quantile(0.5), 15);
  EXPECT_GE(snap->Quantile(0.99), 256);
  EXPECT_NEAR(snap->Mean(), (90 * 10 + 10 * 500) / 100.0, 0.01);
  // Non-empty buckets only, ascending by upper bound.
  ASSERT_EQ(snap->buckets.size(), 2u);
  EXPECT_LT(snap->buckets[0].le, snap->buckets[1].le);
  EXPECT_EQ(snap->buckets[0].count + snap->buckets[1].count, 100);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotentByName) {
  MetricsRegistry registry;
  obs::Counter* a = registry.RegisterCounter("x.events");
  obs::Counter* b = registry.RegisterCounter("x.events");
  EXPECT_EQ(a, b);
  a->Add(3);
  b->Add(2);
  EXPECT_EQ(a->value(), 5);

  obs::Gauge* g1 = registry.RegisterGauge("x.level");
  obs::Gauge* g2 = registry.RegisterGauge("x.level");
  EXPECT_EQ(g1, g2);
  Histogram* h1 = registry.RegisterHistogram("x.h", "rows");
  Histogram* h2 = registry.RegisterHistogram("x.h");
  EXPECT_EQ(h1, h2);
}

TEST(MetricsRegistryTest, SumAggregatesAcrossLabels) {
  MetricsRegistry registry;
  registry.RegisterCounter("merge.als{process=\"merge-0\"}")->Add(4);
  registry.RegisterCounter("merge.als{process=\"merge-1\"}")->Add(6);
  registry.RegisterCounter("merge.other")->Add(100);
  const MetricsSnapshot s = registry.Snapshot();
  EXPECT_EQ(obs::SumCounters(s, "merge.als"), 10);
  EXPECT_EQ(obs::SumCounters(s, "merge.missing"), 0);
  EXPECT_EQ(obs::FindCounter(s, "merge.als{process=\"merge-0\"}")->value, 4);
  EXPECT_EQ(obs::FindCounter(s, "merge.als"), nullptr);
}

// --- Exporters ---

TEST(MetricsExportTest, JsonRoundTripsThroughParser) {
  MetricsRegistry registry;
  registry.RegisterCounter("a.count")->Add(7);
  registry.RegisterGauge("a.level")->Set(-2);
  Histogram* h = registry.RegisterHistogram("a.lat", "us");
  h->Record(3);
  h->Record(9);

  const std::string json = obs::MetricsToJson(registry.Snapshot());
  auto parsed = obs::JsonValue::Parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue& root = *parsed;
  ASSERT_TRUE(root.is_object());
  ASSERT_NE(root.Find("schema"), nullptr);
  EXPECT_EQ(root.Find("schema")->str, "mvc-metrics-v1");

  const obs::JsonValue* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->array.size(), 1u);
  EXPECT_EQ(counters->array[0].Find("name")->str, "a.count");
  EXPECT_EQ(counters->array[0].Find("value")->AsInt(), 7);

  const obs::JsonValue* gauges = root.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_EQ(gauges->array.size(), 1u);
  EXPECT_EQ(gauges->array[0].Find("value")->AsInt(), -2);

  const obs::JsonValue* hists = root.Find("histograms");
  ASSERT_NE(hists, nullptr);
  ASSERT_EQ(hists->array.size(), 1u);
  const obs::JsonValue& hist = hists->array[0];
  EXPECT_EQ(hist.Find("name")->str, "a.lat");
  EXPECT_EQ(hist.Find("unit")->str, "us");
  EXPECT_EQ(hist.Find("count")->AsInt(), 2);
  EXPECT_EQ(hist.Find("sum")->AsInt(), 12);
  int64_t bucket_total = 0;
  for (const obs::JsonValue& b : hist.Find("buckets")->array) {
    EXPECT_GT(b.Find("count")->AsInt(), 0);  // no empty buckets emitted
    bucket_total += b.Find("count")->AsInt();
  }
  EXPECT_EQ(bucket_total, 2);
}

TEST(MetricsExportTest, PrometheusTextUsesUnderscoresAndCumulativeBuckets) {
  MetricsRegistry registry;
  registry.RegisterCounter("merge.als{process=\"merge-0\"}")->Add(4);
  Histogram* h = registry.RegisterHistogram("update.lat", "us");
  h->Record(1);
  h->Record(100);
  const std::string text = obs::MetricsToPrometheus(registry.Snapshot());
  EXPECT_NE(text.find("merge_als{process=\"merge-0\"} 4"), std::string::npos)
      << text;
  EXPECT_NE(text.find("update_lat_count 2"), std::string::npos) << text;
  EXPECT_NE(text.find("update_lat_sum 101"), std::string::npos) << text;
  // Cumulative buckets always end with +Inf carrying the full count.
  EXPECT_NE(text.find("update_lat_bucket{le=\"+Inf\"} 2"), std::string::npos)
      << text;
}

// --- Promptness scan on a hand-built VUT ---

TEST(PromptScanTest, CountsRowsTheSpaWouldApply) {
  IdRegistry names;
  const ViewId v0 = names.InternView("V0");
  const ViewId v1 = names.InternView("V1");
  ViewUpdateTable vut({v0, v1}, &names);

  // Row 1 waits on one AL: white blocks application.
  vut.AllocateRow(1, {v0, v1});
  EXPECT_EQ(CountSpaApplicableRows(vut), 0u);

  // Both ALs arrive: the row is applicable.
  vut.SetColor(1, 0, CellColor::kRed);
  vut.SetColor(1, 1, CellColor::kRed);
  EXPECT_EQ(CountSpaApplicableRows(vut), 1u);

  // Row 2 is complete too, but its red column 0 has an earlier red in
  // row 1, so SPA order blocks it; only row 1 counts.
  vut.AllocateRow(2, {v0});
  vut.SetColor(2, 0, CellColor::kRed);
  EXPECT_EQ(CountSpaApplicableRows(vut), 1u);

  // Applying row 1 (gray) unblocks row 2.
  vut.SetColor(1, 0, CellColor::kGray);
  vut.SetColor(1, 1, CellColor::kGray);
  EXPECT_EQ(CountSpaApplicableRows(vut), 1u);
  vut.SetColor(2, 0, CellColor::kGray);
  EXPECT_EQ(CountSpaApplicableRows(vut), 0u);
}

// --- Trace-completeness oracle ---

Span Sequenced(UpdateId u, int64_t rel_size) {
  return Span{SpanKind::kSequenced, u, kInvalidView, -1, rel_size, 10,
              "integrator"};
}

Span Committed(UpdateId u, int64_t txn) {
  return Span{SpanKind::kCommitted, u, kInvalidView, txn, 0, 20, "warehouse"};
}

TEST(TraceCompleteTest, AcceptsExactlyOneCommitPerNonEmptyUpdate) {
  std::vector<Span> spans = {Sequenced(1, 2), Sequenced(2, 0), Committed(1, 0)};
  EXPECT_TRUE(obs::CheckTraceComplete(spans).ok());
}

TEST(TraceCompleteTest, RejectsMissingAndDuplicateCommits) {
  // Missing commit for a non-empty REL.
  EXPECT_FALSE(obs::CheckTraceComplete({Sequenced(1, 1)}).ok());
  // Duplicate commit.
  EXPECT_FALSE(obs::CheckTraceComplete(
                   {Sequenced(1, 1), Committed(1, 0), Committed(1, 1)})
                   .ok());
  // Commit for an empty-REL update that should never reach the merge.
  EXPECT_FALSE(
      obs::CheckTraceComplete({Sequenced(1, 0), Committed(1, 0)}).ok());
}

// --- End-to-end properties on randomized workloads ---

struct ObsCase {
  std::string name;
  uint64_t seed;
  ManagerKind manager;
  size_t merge_processes;
};

std::string ObsCaseName(const ::testing::TestParamInfo<ObsCase>& info) {
  return info.param.name;
}

class ObsPropertyTest : public ::testing::TestWithParam<ObsCase> {};

TEST_P(ObsPropertyTest, SpanChainsEndInExactlyOneCommit) {
  const ObsCase& c = GetParam();
  WorkloadSpec spec;
  spec.seed = c.seed;
  spec.num_views = 4;
  spec.num_transactions = 30;
  spec.mean_interarrival = 800;
  auto config = GenerateScenario(spec);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  for (const ViewDefinition& def : config->views) {
    config->manager_kinds[def.name] = c.manager;
  }
  config->num_merge_processes = c.merge_processes;
  config->latency = LatencyModel::Uniform(200, 3000);
  config->collect_metrics = true;
  config->collect_trace = true;

  auto system = WarehouseSystem::Build(std::move(*config));
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  (*system)->Run();

  // Property 1: every sequenced update with a non-empty REL has exactly
  // one warehouse commit span; empty-REL updates have none.
  const std::vector<Span> spans = (*system)->TraceSnapshot();
  ASSERT_FALSE(spans.empty());
  EXPECT_TRUE(obs::CheckTraceComplete(spans).ok())
      << obs::CheckTraceComplete(spans).ToString();

  // Property 2: the metrics reconcile exactly with the consistency
  // oracle — the commit counter equals the recorder's commit count, and
  // the latency histogram holds one sample per committed update.
  const MetricsSnapshot s = (*system)->MetricsSnapshot();
  const obs::CounterSnapshot* commits = obs::FindCounter(s, "warehouse.commits");
  ASSERT_NE(commits, nullptr);
  EXPECT_EQ(commits->value,
            static_cast<int64_t>((*system)->recorder().commits().size()));
  EXPECT_EQ(obs::SumCounters(s, "merge.txns_committed"), commits->value);

  std::set<UpdateId> committed_updates;
  for (const Span& span : spans) {
    if (span.kind == SpanKind::kCommitted) committed_updates.insert(span.update);
  }
  const obs::HistogramSnapshot* latency =
      obs::FindHistogram(s, "update.commit_latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, static_cast<int64_t>(committed_updates.size()));
  EXPECT_GT(latency->count, 0);

  // The derived staleness and hold-time histograms saw traffic too.
  EXPECT_GT(obs::SumHistogramCounts(s, "view.staleness_us"), 0);
  EXPECT_GT(obs::SumHistogramCounts(s, "merge.al_hold_time_us"), 0);

  // Quiescent run: no backlog left anywhere.
  EXPECT_EQ(obs::FindGauge(s, "update.uncommitted")->value, 0);
  EXPECT_EQ(obs::FindGauge(s, "view.unreflected_updates")->value, 0);
  EXPECT_EQ(obs::FindGauge(s, "merge.unsubmitted_als")->value, 0);

  // The run still satisfies its consistency level.
  ConsistencyChecker checker = (*system)->MakeChecker();
  EXPECT_TRUE(checker.CheckStrong((*system)->recorder()).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ObsPropertyTest,
    ::testing::Values(
        ObsCase{"complete_seed1", 1, ManagerKind::kComplete, 1},
        ObsCase{"complete_seed2", 2, ManagerKind::kComplete, 1},
        ObsCase{"complete_merge3", 3, ManagerKind::kComplete, 3},
        ObsCase{"strong_seed4", 4, ManagerKind::kStrong, 1},
        ObsCase{"strong_merge2", 5, ManagerKind::kStrong, 2}),
    ObsCaseName);

// --- Promptness regression on the paper's scenarios ---

class PromptnessTest : public ::testing::TestWithParam<int> {};

SystemConfig PromptScenario(int which) {
  switch (which) {
    case 0:
      return Table1Scenario();
    case 1:
      return Table1RaceScenario();
    case 2:
      return Example3Scenario();
    default:
      return Example5Scenario();
  }
}

std::string PromptName(const ::testing::TestParamInfo<int>& info) {
  static const char* kNames[] = {"Table1", "Table1Race", "Example3",
                                 "Example5"};
  return kNames[info.param];
}

TEST_P(PromptnessTest, SpaNeverHoldsAnApplicableRow) {
  // Theorem (promptness): the SPA applies every applicable row before
  // yielding, so the idle-scan counter must stay zero even under
  // adversarial message jitter.
  SystemConfig config = PromptScenario(GetParam());
  config.latency = LatencyModel::Uniform(200, 4000);
  config.collect_metrics = true;
  config.collect_trace = true;
  auto system = WarehouseSystem::Build(std::move(config));
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  (*system)->Run();

  const MetricsSnapshot s = (*system)->MetricsSnapshot();
  EXPECT_EQ(obs::SumCounters(s, "merge.prompt_violations"), 0);
  EXPECT_GT(obs::FindCounter(s, "warehouse.commits")->value, 0);
  EXPECT_TRUE(obs::CheckTraceComplete((*system)->TraceSnapshot()).ok());
}

INSTANTIATE_TEST_SUITE_P(PaperScenarios, PromptnessTest,
                         ::testing::Range(0, 4), PromptName);

}  // namespace
}  // namespace mvc
