// Tests for the merge process actor: submission policies, dependency
// control, batching, and the bottleneck cost model.

#include <gtest/gtest.h>

#include "merge/merge_process.h"
#include "net/sim_runtime.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/id_registry.h"
#include "warehouse/warehouse.h"

namespace mvc {
namespace {

constexpr ViewId kV1 = 0, kV2 = 1, kV3 = 2;

/// Shared name table: V1, V2, V3 (and V9, never a merge column).
const IdRegistry* TestRegistry() {
  static const IdRegistry* reg = [] {
    auto* r = new IdRegistry();
    r->InternViews({"V1", "V2", "V3", "V9"});
    return r;
  }();
  return reg;
}

/// Feeds a scripted sequence of REL/AL events into a merge process.
class Feeder : public Process {
 public:
  Feeder(std::string name, ProcessId merge)
      : Process(std::move(name)), merge_(merge) {}

  void Rel(UpdateId id, std::vector<ViewId> views) {
    auto msg = std::make_unique<RelSetMsg>();
    msg->update_id = id;
    msg->views = std::move(views);
    script_.push_back(std::move(msg));
  }
  void Al(ViewId view, UpdateId id, Tuple t, int64_t count) {
    auto msg = std::make_unique<ActionListMsg>();
    msg->al.view = view;
    msg->al.update = id;
    msg->al.first_update = id;
    msg->al.covered = {id};
    msg->al.delta.target = TestRegistry()->ViewName(view);
    msg->al.delta.Add(std::move(t), count);
    script_.push_back(std::move(msg));
  }

  void OnStart() override {
    TimeMicros at = 0;
    for (MessagePtr& msg : script_) {
      SendAfter(merge_, std::move(msg), at += 10);
    }
  }
  void OnMessage(ProcessId, MessagePtr) override {}

 private:
  ProcessId merge_;
  std::vector<MessagePtr> script_;
};

struct Rig {
  explicit Rig(MergeOptions merge_options, WarehouseOptions wh_options = {},
               uint64_t seed = 1)
      : runtime(seed),
        warehouse("warehouse", wh_options),
        merge("merge-0", {kV1, kV2, kV3}, TestRegistry(),
              merge_options) {
    MVC_CHECK(warehouse.CreateView("V1", Schema::AllInt64({"A"})).ok());
    MVC_CHECK(warehouse.CreateView("V2", Schema::AllInt64({"A"})).ok());
    MVC_CHECK(warehouse.CreateView("V3", Schema::AllInt64({"A"})).ok());
    warehouse.SetRegistry(TestRegistry());
    ProcessId wpid = runtime.Register(&warehouse);
    ProcessId mpid = runtime.Register(&merge);
    merge.SetWarehouse(wpid);
    merge.EnableObservability(&metrics, &tracer);
    feeder = std::make_unique<Feeder>("feeder", mpid);
    runtime.Register(feeder.get());
    warehouse.SetCommitObserver([this](ProcessId,
                                       const WarehouseTransaction& txn,
                                       const Catalog&, TimeMicros) {
      commit_order.push_back(txn.txn_id);
      committed_rows.push_back(txn.rows);
    });
  }

  /// The metrics registry's value for a merge counter, by base name.
  int64_t Metric(const std::string& base) const {
    const obs::MetricsSnapshot s = metrics.Snapshot();
    return obs::SumCounters(s, base);
  }

  SimRuntime runtime;
  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  WarehouseProcess warehouse;
  MergeProcess merge;
  std::unique_ptr<Feeder> feeder;
  std::vector<int64_t> commit_order;
  std::vector<std::vector<UpdateId>> committed_rows;
};

MergeOptions Opts(SubmissionPolicy policy,
                  MergeAlgorithm algorithm = MergeAlgorithm::kSPA) {
  MergeOptions options;
  options.algorithm = algorithm;
  options.policy = policy;
  return options;
}

WarehouseOptions Jittery(uint64_t seed) {
  WarehouseOptions options;
  options.apply_delay = 10;
  options.apply_jitter = 20000;
  options.seed = seed;
  return options;
}

void FeedThreeIndependent(Feeder* feeder) {
  feeder->Rel(1, {kV1});
  feeder->Al(kV1, 1, Tuple{1}, 1);
  feeder->Rel(2, {kV2});
  feeder->Al(kV2, 2, Tuple{2}, 1);
  feeder->Rel(3, {kV3});
  feeder->Al(kV3, 3, Tuple{3}, 1);
}

void FeedThreeSameView(Feeder* feeder) {
  feeder->Rel(1, {kV1});
  feeder->Al(kV1, 1, Tuple{1}, 1);
  feeder->Rel(2, {kV1});
  feeder->Al(kV1, 2, Tuple{2}, 1);
  feeder->Rel(3, {kV1});
  feeder->Al(kV1, 3, Tuple{3}, 1);
}

TEST(MergeProcessTest, SequentialPolicyCommitsInOrderUnderJitter) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rig rig(Opts(SubmissionPolicy::kSequential), Jittery(seed), seed);
    FeedThreeIndependent(rig.feeder.get());
    rig.runtime.Run();
    EXPECT_EQ(rig.commit_order, (std::vector<int64_t>{1, 2, 3}))
        << "seed " << seed;
    EXPECT_EQ(rig.merge.stats().transactions_committed, 3);
  }
}

TEST(MergeProcessTest, HoldDependentsLetsIndependentRaceButOrdersDependent) {
  bool independent_reordered = false;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Rig rig(Opts(SubmissionPolicy::kHoldDependents), Jittery(seed), seed);
    FeedThreeIndependent(rig.feeder.get());
    rig.runtime.Run();
    ASSERT_EQ(rig.commit_order.size(), 3u);
    if (rig.commit_order != std::vector<int64_t>{1, 2, 3}) {
      independent_reordered = true;
    }
  }
  EXPECT_TRUE(independent_reordered)
      << "independent transactions should be able to commit out of order";

  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rig rig(Opts(SubmissionPolicy::kHoldDependents), Jittery(seed), seed);
    FeedThreeSameView(rig.feeder.get());
    rig.runtime.Run();
    EXPECT_EQ(rig.commit_order, (std::vector<int64_t>{1, 2, 3}))
        << "seed " << seed;
  }
}

TEST(MergeProcessTest, AnnotatePolicyAttachesDependencies) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rig rig(Opts(SubmissionPolicy::kAnnotate), Jittery(seed), seed);
    FeedThreeSameView(rig.feeder.get());
    rig.runtime.Run();
    EXPECT_EQ(rig.commit_order, (std::vector<int64_t>{1, 2, 3}))
        << "seed " << seed;
  }
}

TEST(MergeProcessTest, Section43AnomalyWithoutDependencyEnforcement) {
  // Annotated dependencies but a warehouse that ignores them: with
  // jitter, dependent transactions can commit out of order — the
  // anomaly Section 4.3 warns about. (Deltas here keep the run legal;
  // the reordering itself is the violation.)
  bool anomaly = false;
  for (uint64_t seed = 1; seed <= 40 && !anomaly; ++seed) {
    WarehouseOptions wh = Jittery(seed);
    wh.honor_dependencies = false;
    Rig rig(Opts(SubmissionPolicy::kAnnotate), wh, seed);
    FeedThreeSameView(rig.feeder.get());
    rig.runtime.Run();
    ASSERT_EQ(rig.commit_order.size(), 3u);
    if (rig.commit_order != std::vector<int64_t>{1, 2, 3}) anomaly = true;
  }
  EXPECT_TRUE(anomaly);
}

TEST(MergeProcessTest, BatchedPolicyCombinesReadyTransactions) {
  MergeOptions options = Opts(SubmissionPolicy::kBatched);
  options.batch_size = 2;
  options.batch_timeout = 0;  // flush on size only
  Rig rig(options);
  FeedThreeIndependent(rig.feeder.get());
  rig.feeder->Rel(4, {kV1});
  rig.feeder->Al(kV1, 4, Tuple{4}, 1);
  rig.runtime.Run();

  // Four ready WTs -> two BWTs of two.
  ASSERT_EQ(rig.committed_rows.size(), 2u);
  EXPECT_EQ(rig.committed_rows[0], (std::vector<UpdateId>{1, 2}));
  EXPECT_EQ(rig.committed_rows[1], (std::vector<UpdateId>{3, 4}));
  EXPECT_EQ(rig.merge.stats().transactions_submitted, 2);
}

TEST(MergeProcessTest, BatchedPolicyFlushesPartialBatchOnTimeout) {
  MergeOptions options = Opts(SubmissionPolicy::kBatched);
  options.batch_size = 10;
  options.batch_timeout = 5000;
  Rig rig(options);
  FeedThreeIndependent(rig.feeder.get());
  rig.runtime.Run();
  ASSERT_EQ(rig.committed_rows.size(), 1u);
  EXPECT_EQ(rig.committed_rows[0], (std::vector<UpdateId>{1, 2, 3}));
}

TEST(MergeProcessTest, ProcessDelayCreatesBacklog) {
  MergeOptions options = Opts(SubmissionPolicy::kHoldDependents);
  options.process_delay = 1000;
  Rig rig(options);
  // Feeder delivers events 10us apart but each costs 1000us to process.
  FeedThreeSameView(rig.feeder.get());
  rig.runtime.Run();
  EXPECT_EQ(rig.commit_order.size(), 3u);
  EXPECT_GT(rig.merge.stats().peak_backlog, 0u);
}

TEST(MergeProcessTest, StatsTrackHeldListsAndRows) {
  Rig rig(Opts(SubmissionPolicy::kHoldDependents));
  rig.feeder->Rel(1, {kV1, kV2});
  rig.feeder->Al(kV1, 1, Tuple{1}, 1);  // held until V2's AL
  rig.feeder->Al(kV2, 1, Tuple{1}, 1);
  rig.runtime.Run();
  EXPECT_EQ(rig.merge.stats().rels_received, 1);
  EXPECT_EQ(rig.merge.stats().action_lists_received, 2);
  EXPECT_GE(rig.merge.stats().peak_held_action_lists, 1u);
  EXPECT_GE(rig.merge.stats().peak_open_rows, 1u);
  EXPECT_EQ(rig.merge.stats().actions_submitted, 2);
}

TEST(MergeProcessTest, PassThroughForwardsEachActionList) {
  Rig rig(Opts(SubmissionPolicy::kHoldDependents,
               MergeAlgorithm::kPassThrough));
  rig.feeder->Rel(1, {kV1, kV2});
  rig.feeder->Al(kV1, 1, Tuple{1}, 1);
  rig.feeder->Al(kV2, 1, Tuple{1}, 1);
  rig.runtime.Run();
  // No coordination: two separate warehouse transactions.
  EXPECT_EQ(rig.commit_order.size(), 2u);
}

TEST(MergeProcessTest, PiggybackedRelsAreProcessedBeforeTheirAl) {
  Rig rig(Opts(SubmissionPolicy::kHoldDependents));
  auto msg = std::make_unique<ActionListMsg>();
  msg->al.view = kV1;
  msg->al.update = 1;
  msg->al.first_update = 1;
  msg->al.covered = {1};
  msg->al.delta.target = "V1";
  msg->al.delta.Add(Tuple{1}, 1);
  RelSetMsg rel;
  rel.update_id = 1;
  rel.views = {kV1};
  msg->piggybacked_rels.push_back(std::move(rel));

  class OneShot : public Process {
   public:
    OneShot(std::string name, ProcessId to, MessagePtr msg)
        : Process(std::move(name)), to_(to), msg_(std::move(msg)) {}
    void OnStart() override { Send(to_, std::move(msg_)); }
    void OnMessage(ProcessId, MessagePtr) override {}
    ProcessId to_;
    MessagePtr msg_;
  };
  OneShot shot("shot", rig.merge.id(), std::move(msg));
  rig.runtime.Register(&shot);
  rig.runtime.Run();
  EXPECT_EQ(rig.commit_order.size(), 1u);
  EXPECT_EQ(rig.merge.stats().rels_received, 1);
}

TEST(MergeProcessTest, MisroutedActionListIsDroppedWithError) {
  Rig rig(Opts(SubmissionPolicy::kHoldDependents));
  rig.feeder->Rel(1, {kV1});
  // V9 exists in the registry but is not a column of this merge; the
  // process must log and drop rather than abort.
  rig.feeder->Al(TestRegistry()->FindView("V9").value(), 1, Tuple{1}, 1);
  rig.feeder->Al(kV1, 1, Tuple{1}, 1);
  rig.runtime.Run();
  EXPECT_EQ(rig.merge.stats().misrouted_als, 1);
  // The rejection is also visible to monitoring, not just the in-process
  // stats struct.
  EXPECT_EQ(rig.Metric("merge.misrouted_als"), 1);
  // The legitimate traffic still commits; only the accepted AL counts.
  EXPECT_EQ(rig.commit_order.size(), 1u);
  EXPECT_EQ(rig.merge.stats().action_lists_received, 1);
  EXPECT_EQ(rig.Metric("merge.action_lists_received"), 1);
}

TEST(MergeProcessTest, UnknownViewIdActionListIsDropped) {
  Rig rig(Opts(SubmissionPolicy::kHoldDependents));
  // An id the registry has never minted — the error path must not try
  // to resolve a name for it.
  auto msg = std::make_unique<ActionListMsg>();
  msg->al.view = 1234;
  msg->al.update = 1;
  msg->al.first_update = 1;
  msg->al.covered = {1};
  msg->al.delta.target = "X";
  msg->al.delta.Add(Tuple{1}, 1);
  class OneShot : public Process {
   public:
    OneShot(std::string name, ProcessId to, MessagePtr msg)
        : Process(std::move(name)), to_(to), msg_(std::move(msg)) {}
    void OnStart() override { Send(to_, std::move(msg_)); }
    void OnMessage(ProcessId, MessagePtr) override {}
    ProcessId to_;
    MessagePtr msg_;
  };
  OneShot shot("shot", rig.merge.id(), std::move(msg));
  rig.runtime.Register(&shot);
  rig.runtime.Run();
  EXPECT_EQ(rig.merge.stats().misrouted_als, 1);
  EXPECT_EQ(rig.Metric("merge.misrouted_als"), 1);
  EXPECT_TRUE(rig.commit_order.empty());
}

}  // namespace
}  // namespace mvc
