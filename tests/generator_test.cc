// Tests for the synthetic workload generator.

#include <gtest/gtest.h>

#include <set>

#include "workload/generator.h"

namespace mvc {
namespace {

WorkloadSpec SmallSpec(uint64_t seed) {
  WorkloadSpec spec;
  spec.seed = seed;
  spec.num_sources = 2;
  spec.relations_per_source = 2;
  spec.num_views = 4;
  spec.num_transactions = 40;
  return spec;
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  auto a = GenerateScenario(SmallSpec(7));
  auto b = GenerateScenario(SmallSpec(7));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->workload.size(), b->workload.size());
  for (size_t i = 0; i < a->workload.size(); ++i) {
    EXPECT_EQ(a->workload[i].at, b->workload[i].at);
    EXPECT_EQ(a->workload[i].source, b->workload[i].source);
    ASSERT_EQ(a->workload[i].updates.size(), b->workload[i].updates.size());
    for (size_t u = 0; u < a->workload[i].updates.size(); ++u) {
      EXPECT_EQ(a->workload[i].updates[u], b->workload[i].updates[u]);
    }
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  auto a = GenerateScenario(SmallSpec(7));
  auto b = GenerateScenario(SmallSpec(8));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool any_diff = a->workload.size() != b->workload.size();
  for (size_t i = 0; !any_diff && i < a->workload.size(); ++i) {
    any_diff = !(a->workload[i].updates[0] == b->workload[i].updates[0]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorTest, LayoutMatchesSpec) {
  auto config = GenerateScenario(SmallSpec(3));
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->sources.size(), 2u);
  size_t relations = 0;
  for (const auto& [_, rels] : config->sources) relations += rels.size();
  EXPECT_EQ(relations, 4u);
  EXPECT_EQ(config->schemas.size(), 4u);
  EXPECT_EQ(config->views.size(), 4u);
  EXPECT_EQ(config->workload.size(), 40u);
}

TEST(GeneratorTest, ViewsBindAgainstSchemas) {
  auto config = GenerateScenario(SmallSpec(5));
  ASSERT_TRUE(config.ok());
  for (const ViewDefinition& def : config->views) {
    EXPECT_TRUE(BoundView::Bind(def, config->schemas).ok())
        << def.ToString();
  }
}

TEST(GeneratorTest, ViewWidthRespected) {
  WorkloadSpec spec = SmallSpec(9);
  spec.max_view_width = 2;
  auto config = GenerateScenario(spec);
  ASSERT_TRUE(config.ok());
  for (const ViewDefinition& def : config->views) {
    EXPECT_LE(def.relations.size(), 2u);
    EXPECT_GE(def.relations.size(), 1u);
    // No duplicate relations.
    std::set<std::string> uniq(def.relations.begin(), def.relations.end());
    EXPECT_EQ(uniq.size(), def.relations.size());
  }
}

TEST(GeneratorTest, DeletesAndModifiesTargetLiveTuples) {
  // Replay the generated stream against the initial data; every delete
  // and modify must find its target (the generator tracks a model).
  WorkloadSpec spec = SmallSpec(11);
  spec.num_transactions = 200;
  spec.delete_fraction = 0.4;
  spec.modify_fraction = 0.3;
  auto config = GenerateScenario(spec);
  ASSERT_TRUE(config.ok());

  Catalog tables;
  for (const auto& [rel, schema] : config->schemas) {
    ASSERT_TRUE(tables.CreateTable(rel, schema).ok());
    auto data = config->initial_data.find(rel);
    if (data != config->initial_data.end()) {
      for (const Tuple& t : data->second) {
        ASSERT_TRUE((*tables.GetTable(rel))->Insert(t).ok());
      }
    }
  }
  // Injections are time-sorted per construction of the driver; sort to
  // be explicit.
  std::vector<Injection> workload = config->workload;
  std::stable_sort(workload.begin(), workload.end(),
                   [](const Injection& a, const Injection& b) {
                     return a.at < b.at;
                   });
  for (const Injection& inj : workload) {
    for (const Update& u : inj.updates) {
      Table* table = *tables.GetTable(u.relation);
      switch (u.op) {
        case UpdateOp::kInsert:
          ASSERT_TRUE(table->Insert(u.tuple).ok());
          break;
        case UpdateOp::kDelete:
          ASSERT_TRUE(table->Delete(u.tuple).ok()) << u.ToString();
          break;
        case UpdateOp::kModify:
          ASSERT_TRUE(table->Modify(u.tuple, u.new_tuple).ok())
              << u.ToString();
          break;
      }
    }
  }
}

TEST(GeneratorTest, GlobalTransactionsAreWellFormed) {
  WorkloadSpec spec = SmallSpec(13);
  spec.global_txn_fraction = 1.0;
  auto config = GenerateScenario(spec);
  ASSERT_TRUE(config.ok());
  // Every global id appears with exactly `participants` parts, all at
  // the same injection time.
  std::map<int64_t, std::vector<const Injection*>> groups;
  for (const Injection& inj : config->workload) {
    if (inj.global_txn_id != 0) {
      groups[inj.global_txn_id].push_back(&inj);
    }
  }
  EXPECT_FALSE(groups.empty());
  for (const auto& [id, parts] : groups) {
    ASSERT_FALSE(parts.empty());
    EXPECT_EQ(static_cast<int32_t>(parts.size()),
              parts[0]->global_participants);
    for (const Injection* part : parts) {
      EXPECT_EQ(part->at, parts[0]->at);
    }
  }
}

TEST(GeneratorTest, UpdatesPerTransactionRespected) {
  WorkloadSpec spec = SmallSpec(15);
  spec.updates_per_transaction = 3;
  auto config = GenerateScenario(spec);
  ASSERT_TRUE(config.ok());
  for (const Injection& inj : config->workload) {
    EXPECT_EQ(inj.updates.size(), 3u);
  }
}

TEST(GeneratorTest, SkewConcentratesUpdates) {
  WorkloadSpec spec = SmallSpec(17);
  spec.num_transactions = 300;
  spec.relation_skew = 1.5;
  auto config = GenerateScenario(spec);
  ASSERT_TRUE(config.ok());
  std::map<std::string, int> per_relation;
  for (const Injection& inj : config->workload) {
    ++per_relation[inj.updates[0].relation];
  }
  int max_count = 0;
  for (const auto& [_, count] : per_relation) {
    max_count = std::max(max_count, count);
  }
  // With theta=1.5 over 4 relations the hottest one should well exceed
  // the uniform share of 75.
  EXPECT_GT(max_count, 120);
}

TEST(GeneratorTest, RejectsBadSpecs) {
  WorkloadSpec bad = SmallSpec(1);
  bad.num_views = 0;
  EXPECT_FALSE(GenerateScenario(bad).ok());

  WorkloadSpec global_single = SmallSpec(1);
  global_single.num_sources = 1;
  global_single.global_txn_fraction = 0.5;
  EXPECT_FALSE(GenerateScenario(global_single).ok());
}

}  // namespace
}  // namespace mvc
