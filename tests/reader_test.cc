// Reader-visible consistency: what a concurrent application querying
// the warehouse actually observes. Under SPA every atomic multi-view
// read maps to some source state; with uncoordinated (pass-through)
// maintenance some reads expose the Example 1 inconsistency window.

#include <gtest/gtest.h>

#include "net/sim_runtime.h"
#include "query/evaluator.h"
#include "query/relevance.h"
#include "system/warehouse_system.h"
#include "workload/paper_examples.h"

namespace mvc {
namespace {

/// True if the observed view contents equal (V1(ss), V2(ss), ...) for
/// some consistent source state ss of a schedule equivalent to the
/// recorded one — i.e. some subset of the updates that is closed under
/// the dependent-update (shared-view) order. The scenarios here have a
/// handful of updates, so subsets are enumerated exhaustively.
bool ObservationMapsToSourceState(
    const WarehouseSystem& system,
    const WarehouseReader::Observation& obs) {
  const std::vector<BoundView>& views = system.bound_views();
  const auto& updates = system.recorder().updates();
  const size_t n = updates.size();
  MVC_CHECK(n <= 12) << "subset enumeration only suits small scenarios";

  // REL per update (pruning on, matching the default integrator config).
  std::vector<std::set<std::string>> rel(n);
  for (size_t i = 0; i < n; ++i) {
    for (const BoundView& view : views) {
      for (const Update& u : updates[i].txn.updates) {
        if (UpdateIsRelevant(view, u)) {
          rel[i].insert(view.name());
          break;
        }
      }
    }
  }
  auto overlaps = [&](size_t a, size_t b) {
    for (const std::string& v : rel[a]) {
      if (rel[b].count(v) > 0) return true;
    }
    return false;
  };

  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    // Legality: a member's earlier dependent updates are members too.
    bool legal = true;
    for (size_t b = 0; b < n && legal; ++b) {
      if (!(mask & (1u << b))) continue;
      for (size_t a = 0; a < b && legal; ++a) {
        if (!(mask & (1u << a)) && overlaps(a, b)) legal = false;
      }
    }
    if (!legal) continue;

    Catalog base = system.initial_base().Clone();
    bool applied_ok = true;
    for (size_t i = 0; i < n && applied_ok; ++i) {
      if (!(mask & (1u << i))) continue;
      for (const Update& upd : updates[i].txn.updates) {
        auto table = base.GetTable(upd.relation);
        MVC_CHECK(table.ok());
        if (!ViewEvaluator::UpdateToBaseDelta(upd).ApplyTo(*table).ok()) {
          applied_ok = false;  // subset not replayable in id order
          break;
        }
      }
    }
    if (!applied_ok) continue;

    TableProviderFn provider = CatalogProvider(&base);
    bool match = true;
    for (size_t v = 0; v < views.size() && match; ++v) {
      auto expected = ViewEvaluator::Evaluate(views[v], provider);
      MVC_CHECK(expected.ok());
      match = expected->ContentsEqual(obs.snapshots[v]);
    }
    if (match) return true;
  }
  return false;
}

std::vector<TimeMicros> DenseReadSchedule() {
  std::vector<TimeMicros> read_at;
  for (TimeMicros t = 500; t <= 20000; t += 250) read_at.push_back(t);
  return read_at;
}

TEST(ReaderTest, UnderSpaEveryReadMapsToASourceState) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SystemConfig config = Example3Scenario();
    config.latency = LatencyModel::Uniform(500, 3000);
    config.vm_options.delta_cost = 1000;
    config.seed = seed;
    auto system = WarehouseSystem::Build(std::move(config));
    ASSERT_TRUE(system.ok());
    WarehouseReader* reader =
        (*system)->AttachReader({"V1", "V2", "V3"}, DenseReadSchedule());
    (*system)->Run();

    ASSERT_FALSE(reader->observations().empty());
    for (const auto& obs : reader->observations()) {
      EXPECT_TRUE(ObservationMapsToSourceState(**system, obs))
          << "seed " << seed << ": read at t=" << obs.at
          << " saw a state matching no source state";
    }
  }
}

TEST(ReaderTest, WithoutCoordinationSomeReadObservesInconsistency) {
  bool observed_violation = false;
  for (uint64_t seed = 1; seed <= 30 && !observed_violation; ++seed) {
    SystemConfig config = Example3Scenario();
    config.auto_algorithm = false;
    config.merge.algorithm = MergeAlgorithm::kPassThrough;
    config.latency = LatencyModel::Uniform(500, 8000);
    config.vm_options.delta_cost = 2000;
    config.seed = seed;
    auto system = WarehouseSystem::Build(std::move(config));
    ASSERT_TRUE(system.ok());
    WarehouseReader* reader =
        (*system)->AttachReader({"V1", "V2", "V3"}, DenseReadSchedule());
    (*system)->Run();
    for (const auto& obs : reader->observations()) {
      if (!ObservationMapsToSourceState(**system, obs)) {
        observed_violation = true;
        break;
      }
    }
  }
  EXPECT_TRUE(observed_violation)
      << "a dense reader should catch the inconsistency window under "
         "uncoordinated maintenance for some seed";
}

TEST(ReaderTest, SnapshotReportsCommitCountAndRequestedViews) {
  SystemConfig config = Table1Scenario();
  auto system = WarehouseSystem::Build(std::move(config));
  ASSERT_TRUE(system.ok());
  WarehouseReader* reader =
      (*system)->AttachReader({"V1"}, {100, 50000});
  (*system)->Run();
  ASSERT_EQ(reader->observations().size(), 2u);
  EXPECT_EQ(reader->observations()[0].as_of_commit, 0);
  EXPECT_EQ(reader->observations()[0].snapshots.size(), 1u);
  EXPECT_TRUE(reader->observations()[0].snapshots[0].empty());
  EXPECT_EQ(reader->observations()[1].as_of_commit, 1);
  EXPECT_EQ(reader->observations()[1].snapshots[0].CountOf(Tuple{1, 2, 3}),
            1);
}

TEST(ReaderTest, EmptyViewListReadsAllViews) {
  SystemConfig config = Table1Scenario();
  auto system = WarehouseSystem::Build(std::move(config));
  ASSERT_TRUE(system.ok());
  WarehouseReader* reader = (*system)->AttachReader({}, {50000});
  (*system)->Run();
  ASSERT_EQ(reader->observations().size(), 1u);
  EXPECT_EQ(reader->observations()[0].snapshots.size(), 2u);  // V1, V2
}

}  // namespace
}  // namespace mvc

namespace mvc {
namespace {

/// One-shot time-travel reader.
class TimeTravelReader : public Process {
 public:
  TimeTravelReader(std::string name, ProcessId warehouse, TimeMicros at,
                   int64_t as_of)
      : Process(std::move(name)), warehouse_(warehouse), at_(at),
        as_of_(as_of) {}
  void OnStart() override {
    ScheduleSelf(std::make_unique<TickMsg>(), at_);
  }
  void OnMessage(ProcessId, MessagePtr msg) override {
    if (msg->kind == Message::Kind::kTick) {
      auto read = std::make_unique<ReadViewsMsg>();
      read->as_of_commit = as_of_;
      Send(warehouse_, std::move(read));
      return;
    }
    ASSERT_EQ(msg->kind, Message::Kind::kViewsSnapshot);
    answer = std::make_unique<ViewsSnapshotMsg>(
        std::move(*static_cast<ViewsSnapshotMsg*>(msg.get())));
  }
  ProcessId warehouse_;
  TimeMicros at_;
  int64_t as_of_;
  std::unique_ptr<ViewsSnapshotMsg> answer;
};

TEST(TimeTravelTest, HistoricalReadServesPastState) {
  // Example 3 commits three times; a late read as-of commit 1 must see
  // the state right after the first commit, not the final one.
  SystemConfig config = Example3Scenario();
  config.warehouse.history_depth = 8;
  auto system = WarehouseSystem::Build(std::move(config));
  ASSERT_TRUE(system.ok());

  // Find the warehouse pid by asking a probe reader... simpler: attach
  // a normal reader to learn nothing; reach the warehouse via the
  // system accessor instead.
  TimeTravelReader reader("tt-reader", (*system)->warehouse().id(),
                          /*at=*/200000, /*as_of=*/1);
  (*system)->runtime().Register(&reader);
  (*system)->Run();

  ASSERT_NE(reader.answer, nullptr);
  EXPECT_EQ(reader.answer->as_of_commit, 1);
  // The recorder's first commit snapshot is the ground truth.
  const auto& commits = (*system)->recorder().commits();
  ASSERT_GE(commits.size(), 2u);
  const Catalog& expected = commits[0].view_snapshot;
  std::vector<std::string> names = expected.TableNames();
  std::vector<Table> tables = reader.answer->TakeTables();
  ASSERT_EQ(tables.size(), names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_TRUE(tables[i].ContentsEqual(**expected.GetTable(names[i])))
        << names[i];
  }
}

TEST(TimeTravelTest, CommitZeroIsTheInitialState) {
  SystemConfig config = Table1Scenario();
  config.warehouse.history_depth = 4;
  auto system = WarehouseSystem::Build(std::move(config));
  ASSERT_TRUE(system.ok());
  TimeTravelReader reader("tt-reader", (*system)->warehouse().id(),
                          /*at=*/100000, /*as_of=*/0);
  (*system)->runtime().Register(&reader);
  (*system)->Run();
  ASSERT_NE(reader.answer, nullptr);
  // Initially both views are empty.
  std::vector<Table> tables = reader.answer->TakeTables();
  EXPECT_FALSE(tables.empty());
  for (const Table& t : tables) {
    EXPECT_TRUE(t.empty());
  }
}

TEST(TimeTravelTest, GcdVersionReadReturnsCleanError) {
  // Example 3 commits three times; with only the last version retained,
  // a late read as-of commit 0 finds its version garbage-collected. The
  // MVCC read path answers with a clean error message — not a crash,
  // and not a stale or empty snapshot.
  SystemConfig config = Example3Scenario();
  config.warehouse.max_retained_versions = 1;
  auto system = WarehouseSystem::Build(std::move(config));
  ASSERT_TRUE(system.ok());
  TimeTravelReader reader("tt-reader", (*system)->warehouse().id(),
                          /*at=*/200000, /*as_of=*/0);
  (*system)->runtime().Register(&reader);
  (*system)->Run();
  ASSERT_NE(reader.answer, nullptr);
  EXPECT_FALSE(reader.answer->ok());
  EXPECT_NE(reader.answer->error.find("garbage-collected"),
            std::string::npos)
      << reader.answer->error;
  EXPECT_EQ(reader.answer->as_of_commit, 0);
  // No snapshot payload of any kind rides along with the error.
  EXPECT_FALSE(reader.answer->handle.valid());
  EXPECT_TRUE(reader.answer->snapshots.empty());
  EXPECT_TRUE(reader.answer->TakeTables().empty());
}

TEST(TimeTravelTest, LegacyOutOfWindowReadDies) {
  // The deprecated clone-based history keeps the pre-MVCC contract: an
  // out-of-window time travel is a programming error and crashes.
  SystemConfig config = Example3Scenario();
  config.warehouse.history_depth = 1;  // retain only the last state
  config.warehouse.legacy_clone_history = true;
  auto system = WarehouseSystem::Build(std::move(config));
  ASSERT_TRUE(system.ok());
  TimeTravelReader reader("tt-reader", (*system)->warehouse().id(),
                          /*at=*/200000, /*as_of=*/0);
  (*system)->runtime().Register(&reader);
  EXPECT_DEATH((*system)->Run(), "outside the retained window");
}

TEST(TimeTravelTest, LiveHandlePinsAnEvictedVersion) {
  // A reader that acquired a snapshot before its version fell out of
  // the retained window can still materialize it: the handle, not the
  // window, owns the chunks. versions_live/watermark track the pin.
  SystemConfig config = Example3Scenario();
  config.warehouse.max_retained_versions = 1;
  auto system = WarehouseSystem::Build(std::move(config));
  ASSERT_TRUE(system.ok());
  // Read commit 0 *early*, before later commits evict it.
  TimeTravelReader reader("tt-reader", (*system)->warehouse().id(),
                          /*at=*/1, /*as_of=*/0);
  (*system)->runtime().Register(&reader);
  (*system)->Run();
  ASSERT_NE(reader.answer, nullptr);
  ASSERT_TRUE(reader.answer->ok());
  ASSERT_TRUE(reader.answer->handle.valid());

  const VersionedStore& store = (*system)->warehouse().store();
  ASSERT_GE(store.latest_commit(), 2);
  // The handle pins commit 0 past its eviction from the window: the
  // version still materializes in full (V1, V2, V3), no stale reads.
  EXPECT_EQ(store.watermark(), 0);
  std::vector<Table> tables = reader.answer->TakeTables();
  EXPECT_EQ(tables.size(), 3u);

  // Releasing the last reference lets the watermark advance.
  reader.answer->handle.Release();
  EXPECT_GT(store.watermark(), 0);
}

/// Swallows every message: a crashed warehouse as seen by its readers.
class BlackHoleProcess : public Process {
 public:
  using Process::Process;
  void OnMessage(ProcessId, MessagePtr) override {}
};

TEST(ReaderInFlightTest, TtlAgesOutRequestsWhoseResponsesWereLost) {
  // 20 reads against a warehouse that never answers. With a 3ms TTL and
  // 1ms arrivals, each arrival first evicts everything older than the
  // TTL, so the map stays bounded at the TTL window instead of growing
  // one entry per lost request forever.
  SimRuntime runtime(1);
  BlackHoleProcess hole("dead-warehouse");
  ProcessId hid = runtime.Register(&hole);
  std::vector<TimeMicros> read_at;
  for (TimeMicros t = 1000; t <= 20000; t += 1000) read_at.push_back(t);
  WarehouseReader reader("reader", {}, read_at);
  runtime.Register(&reader);
  reader.SetWarehouse(hid);
  reader.SetInFlightLimits(/*ttl_us=*/3000, /*max_size=*/1024);
  runtime.Run();
  // At the last arrival (t=20000) only the sends from t in (17000,
  // 20000] survive the TTL sweep: three old entries plus the new one.
  EXPECT_EQ(reader.in_flight_size(), 4u);
  EXPECT_EQ(reader.in_flight_expired(), 16);
}

TEST(ReaderInFlightTest, HardCapBoundsTheMapWhenTtlIsOff) {
  SimRuntime runtime(1);
  BlackHoleProcess hole("dead-warehouse");
  ProcessId hid = runtime.Register(&hole);
  std::vector<TimeMicros> read_at;
  for (TimeMicros t = 1000; t <= 20000; t += 1000) read_at.push_back(t);
  WarehouseReader reader("reader", {}, read_at);
  runtime.Register(&reader);
  reader.SetWarehouse(hid);
  reader.SetInFlightLimits(/*ttl_us=*/0, /*max_size=*/5);
  runtime.Run();
  // Oldest-first eviction keeps the newest five; the other fifteen
  // count as expired.
  EXPECT_EQ(reader.in_flight_size(), 5u);
  EXPECT_EQ(reader.in_flight_expired(), 15);
}

TEST(ReaderInFlightTest, AnsweredRequestsRetireAndRecordLatency) {
  // Against a live warehouse nothing leaks and nothing is aged out: the
  // single-lookup response path retires each entry as it is answered.
  SystemConfig config = Table1Scenario();
  config.collect_metrics = true;
  auto system = WarehouseSystem::Build(std::move(config));
  ASSERT_TRUE(system.ok());
  WarehouseReader* reader =
      (*system)->AttachReader({"V1"}, {100, 200, 50000});
  (*system)->Run();
  EXPECT_EQ(reader->observations().size(), 3u);
  EXPECT_EQ(reader->in_flight_size(), 0u);
  EXPECT_EQ(reader->in_flight_expired(), 0);
  obs::MetricsSnapshot metrics = (*system)->MetricsSnapshot();
  EXPECT_EQ(obs::SumHistogramCounts(metrics, "read.latency_us"), 3);
}

TEST(GoldenTest, MvccObservationsMatchCloneHistoryOnExample3) {
  // The deprecation contract for the clone path: on the same scenario,
  // same seed, and same dense read schedule, the MVCC read path serves
  // byte-identical observations (canonical ToString rendering) to the
  // pre-MVCC clone implementation.
  auto run = [](bool legacy) {
    SystemConfig config = Example3Scenario();
    config.warehouse.history_depth = 8;
    config.warehouse.legacy_clone_history = legacy;
    auto system = WarehouseSystem::Build(std::move(config));
    MVC_CHECK(system.ok());
    WarehouseReader* reader =
        (*system)->AttachReader({"V1", "V2", "V3"}, DenseReadSchedule());
    (*system)->Run();
    std::vector<std::pair<int64_t, std::vector<std::string>>> rendered;
    for (const auto& obs : reader->observations()) {
      std::vector<std::string> tables;
      for (const Table& t : obs.snapshots) tables.push_back(t.ToString());
      rendered.emplace_back(obs.as_of_commit, std::move(tables));
    }
    return rendered;
  };
  auto legacy = run(true);
  auto mvcc = run(false);
  ASSERT_FALSE(legacy.empty());
  ASSERT_EQ(legacy.size(), mvcc.size());
  for (size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].first, mvcc[i].first) << "observation " << i;
    ASSERT_EQ(legacy[i].second.size(), mvcc[i].second.size());
    for (size_t v = 0; v < legacy[i].second.size(); ++v) {
      EXPECT_EQ(legacy[i].second[v], mvcc[i].second[v])
          << "observation " << i << ", view " << v;
    }
  }
}

}  // namespace
}  // namespace mvc
