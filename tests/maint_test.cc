// Maintenance-equivalence battery for self-maintaining views with
// shared delta plans (src/maint/).
//
// The contract under test: a SelfMaintainingVm answers maintenance
// entirely from its auxiliary store yet emits action lists that are
// *byte-identical* to the per-view CompleteViewManager path, so the
// merge/VUT/warehouse/checker pipeline downstream cannot tell the two
// apart. The battery checks that at three levels:
//
//   1. unit:     the auxiliary planner dedups filters, the shared plan
//                factors common chain prefixes, and one plan pass
//                reproduces per-view EvaluateDelta bag-exactly;
//   2. system:   a randomized overlapping-SPJ sweep runs every scenario
//                twice — per-view managers with Strobe-style query
//                rounds vs one shared-plan self-maintaining manager per
//                group — and every AL stream and the final warehouse
//                state must match bit for bit, on the deterministic
//                simulator AND on real threads;
//   3. negative: the injected stale-auxiliary mutation must break the
//                equivalence (the oracle catches it; see explore_test
//                for the bounded-schedule counterexample).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "maint/aux_planner.h"
#include "maint/self_maintaining_vm.h"
#include "maint/shared_plan.h"
#include "query/evaluator.h"
#include "query/relevance.h"
#include "system/warehouse_system.h"
#include "workload/generator.h"
#include "workload/paper_examples.h"

namespace mvc {
namespace {

// ---------------------------------------------------------------------
// Unit: auxiliary planner.
// ---------------------------------------------------------------------

class MaintUnitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schemas_ = {{"R", Schema::AllInt64({"A", "B"})},
                {"S", Schema::AllInt64({"B", "C"})},
                {"T", Schema::AllInt64({"C", "D"})}};
  }

  const BoundView* Bind(ViewDefinition def) {
    auto bound = BoundView::Bind(def, schemas_);
    MVC_CHECK(bound.ok()) << bound.status().ToString();
    owned_.push_back(std::make_unique<BoundView>(std::move(bound).value()));
    return owned_.back().get();
  }

  // V = R |><| S on B, with an optional selection on S.C.
  ViewDefinition JoinRS(const std::string& name, int64_t s_c_less_than = 0) {
    ViewDefinition def;
    def.name = name;
    def.relations = {"R", "S"};
    std::vector<Predicate> preds;
    preds.push_back(
        Predicate::ColEqCol(ColumnRef{"R", "B"}, ColumnRef{"S", "B"}));
    if (s_c_less_than != 0) {
      preds.push_back(Predicate::ColCmpConst(CompareOp::kLt,
                                             ColumnRef{"S", "C"},
                                             s_c_less_than));
    }
    def.predicate = Predicate::And(std::move(preds));
    return def;
  }

  std::map<std::string, Schema> schemas_;
  std::vector<std::unique_ptr<BoundView>> owned_;
};

TEST_F(MaintUnitTest, PlannerDedupsIdenticalFilters) {
  // Two views with the same selection over S share one S auxiliary; the
  // unfiltered R auxiliary is shared too. A third view with a different
  // S filter gets its own.
  std::vector<const BoundView*> views = {Bind(JoinRS("V1", 50)),
                                         Bind(JoinRS("V2", 50)),
                                         Bind(JoinRS("V3", 7))};
  auto plan = PlanAuxiliaries(views);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  // R (shared, unfiltered), S<50 (shared), S<7: three auxiliaries for
  // six (view, relation) slots.
  EXPECT_EQ(plan->auxiliaries.size(), 3u);
  EXPECT_EQ(&plan->AuxFor("V1", 0), &plan->AuxFor("V2", 0));
  EXPECT_EQ(&plan->AuxFor("V1", 1), &plan->AuxFor("V2", 1));
  EXPECT_NE(&plan->AuxFor("V1", 1), &plan->AuxFor("V3", 1));

  const AuxiliaryView& shared_s = plan->AuxFor("V1", 1);
  EXPECT_EQ(shared_s.relation, "S");
  EXPECT_EQ(shared_s.dependent_views,
            (std::vector<std::string>{"V1", "V2"}));
  // Prefixed schema keeps downstream join schemas unambiguous.
  EXPECT_EQ(shared_s.schema.column(0).name, "S.B");
}

TEST_F(MaintUnitTest, PlannerNameOffsetKeepsGroupsDisjoint) {
  std::vector<const BoundView*> views = {Bind(JoinRS("V1"))};
  auto a = PlanAuxiliaries(views, 0);
  auto b = PlanAuxiliaries(views, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  std::vector<std::string> a_names, b_names;
  for (const auto& aux : a->auxiliaries) a_names.push_back(aux.name);
  for (const auto& aux : b->auxiliaries) b_names.push_back(aux.name);
  for (const std::string& name : a_names) {
    EXPECT_EQ(std::count(b_names.begin(), b_names.end(), name), 0)
        << name << " reused across offsets";
  }
}

// ---------------------------------------------------------------------
// Unit: shared delta plan.
// ---------------------------------------------------------------------

TEST_F(MaintUnitTest, PlanSharesChainsAcrossProjectionVariants) {
  // Identical join + selection, different projections: the entire chain
  // is shared and only the routes differ.
  ViewDefinition wide = JoinRS("Wide", 50);
  ViewDefinition narrow = JoinRS("Narrow", 50);
  narrow.projection = {ColumnRef{"R", "A"}, ColumnRef{"S", "C"}};
  std::vector<const BoundView*> views = {Bind(wide), Bind(narrow)};

  auto aux = PlanAuxiliaries(views);
  ASSERT_TRUE(aux.ok()) << aux.status().ToString();
  auto plan = SharedDeltaPlan::Build(views, &*aux);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  // Per view: one chain per base relation, each of length 2 (root +
  // one join step) = 4 steps per view, 8 unshared steps total. Sharing
  // collapses them to 4 distinct nodes.
  EXPECT_EQ(plan->num_unshared_steps(), 8u);
  EXPECT_EQ(plan->nodes().size(), 4u);
  EXPECT_EQ(plan->num_shared_nodes(), 4u);
  for (const auto& node : plan->nodes()) {
    EXPECT_EQ(node.dependent_views.size(), 2u) << node.signature;
  }
}

TEST_F(MaintUnitTest, PlanSharesRootsButSplitsDivergentTails) {
  // Same unfiltered R root; the S join step differs by selection, so
  // the tails split.
  std::vector<const BoundView*> views = {Bind(JoinRS("V1", 50)),
                                         Bind(JoinRS("V2", 7))};
  auto aux = PlanAuxiliaries(views);
  ASSERT_TRUE(aux.ok());
  auto plan = SharedDeltaPlan::Build(views, &*aux);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  // DeltaR roots: shared unfiltered R (1). DeltaS roots: one per
  // filter (2). Join steps: all four distinct (different aux or
  // different parent). 1 + 2 + 4 = 7 nodes from 8 unshared steps.
  EXPECT_EQ(plan->num_unshared_steps(), 8u);
  EXPECT_EQ(plan->nodes().size(), 7u);
  EXPECT_EQ(plan->num_shared_nodes(), 1u);
}

TEST_F(MaintUnitTest, PlanEvaluationMatchesPerViewEvaluateDelta) {
  // Bag-exactness on multiplicities, deletes, and selections: one plan
  // pass must reproduce ViewEvaluator::EvaluateDelta per view.
  std::vector<const BoundView*> views = {Bind(JoinRS("V1", 50)),
                                         Bind(JoinRS("V2", 7))};
  auto aux_plan = PlanAuxiliaries(views);
  ASSERT_TRUE(aux_plan.ok());
  auto plan = SharedDeltaPlan::Build(views, &*aux_plan);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  // Base state: R has dup rows, S straddles both selection cuts.
  Catalog base;
  ASSERT_TRUE(base.CreateTable("R", schemas_.at("R")).ok());
  ASSERT_TRUE(base.CreateTable("S", schemas_.at("S")).ok());
  Table* r = *base.GetTable("R");
  Table* s = *base.GetTable("S");
  ASSERT_TRUE(r->Insert({1, 2}, 2).ok());
  ASSERT_TRUE(r->Insert({9, 3}, 1).ok());
  ASSERT_TRUE(s->Insert({2, 5}, 3).ok());
  ASSERT_TRUE(s->Insert({2, 40}, 1).ok());
  ASSERT_TRUE(s->Insert({3, 6}, 1).ok());

  // Auxiliary store: filtered copies under the aux schemas.
  Catalog aux_store;
  for (const AuxiliaryView& aux : aux_plan->auxiliaries) {
    ASSERT_TRUE(aux_store.CreateTable(aux.name, aux.schema).ok());
    Table* t = *aux_store.GetTable(aux.name);
    (*base.GetTable(aux.relation))->ForEachRow([&](const Tuple& tu,
                                                   int64_t c) {
      if (TupleMayAffectView(*aux.filter_view, aux.relation, tu)) {
        ASSERT_TRUE(t->Insert(tu, c).ok());
      }
    });
  }

  // A mixed delta on S: insert one matching row, delete a multiple one.
  TableDelta delta_s;
  delta_s.target = "S";
  delta_s.Add({2, 10}, 1);
  delta_s.Add({2, 5}, -2);

  std::vector<TableDelta> got(2);
  got[0].target = "V1";
  got[1].target = "V2";
  int64_t evals = 0;
  ASSERT_TRUE(plan->EvaluateUpdate("S", delta_s,
                                   CatalogProvider(&aux_store), &got,
                                   &evals)
                  .ok());
  EXPECT_GT(evals, 0);

  for (size_t i = 0; i < views.size(); ++i) {
    auto want = ViewEvaluator::EvaluateDelta(*views[i], "S", delta_s,
                                             CatalogProvider(&base));
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    want->Normalize();
    got[i].Normalize();
    EXPECT_EQ(got[i].rows, want->rows) << views[i]->name();
  }

  // A delta on R flows through the other chain direction.
  TableDelta delta_r;
  delta_r.target = "R";
  delta_r.Add({7, 2}, 1);
  std::vector<TableDelta> got_r(2);
  ASSERT_TRUE(plan->EvaluateUpdate("R", delta_r,
                                   CatalogProvider(&aux_store), &got_r,
                                   nullptr)
                  .ok());
  for (size_t i = 0; i < views.size(); ++i) {
    auto want = ViewEvaluator::EvaluateDelta(*views[i], "R", delta_r,
                                             CatalogProvider(&base));
    ASSERT_TRUE(want.ok());
    want->Normalize();
    got_r[i].Normalize();
    EXPECT_EQ(got_r[i].rows, want->rows) << views[i]->name();
  }
}

TEST_F(MaintUnitTest, SharedNodeEvaluatedOncePerDelta) {
  // Two projection variants of one view: the whole chain is shared, so
  // a delta pass runs exactly chain-length evaluations, not 2x.
  ViewDefinition narrow = JoinRS("Narrow", 50);
  narrow.projection = {ColumnRef{"R", "A"}};
  std::vector<const BoundView*> views = {Bind(JoinRS("Wide", 50)),
                                         Bind(narrow)};
  auto aux = PlanAuxiliaries(views);
  ASSERT_TRUE(aux.ok());
  auto plan = SharedDeltaPlan::Build(views, &*aux);
  ASSERT_TRUE(plan.ok());

  Catalog aux_store;
  for (const AuxiliaryView& a : aux->auxiliaries) {
    ASSERT_TRUE(aux_store.CreateTable(a.name, a.schema).ok());
  }
  Table* s_aux = nullptr;
  for (const AuxiliaryView& a : aux->auxiliaries) {
    if (a.relation == "S") s_aux = *aux_store.GetTable(a.name);
  }
  ASSERT_NE(s_aux, nullptr);
  ASSERT_TRUE(s_aux->Insert({2, 5}, 1).ok());

  TableDelta delta_r;
  delta_r.target = "R";
  delta_r.Add({1, 2}, 1);
  std::vector<TableDelta> acc(2);
  int64_t evals = 0;
  ASSERT_TRUE(plan->EvaluateUpdate("R", delta_r,
                                   CatalogProvider(&aux_store), &acc,
                                   &evals)
                  .ok());
  // Root DeltaR + one join step, shared by both views: 2 evals, and
  // both views still received their rows.
  EXPECT_EQ(evals, 2);
  EXPECT_EQ(acc[0].rows.size(), 1u);
  EXPECT_EQ(acc[1].rows.size(), 1u);
}

// ---------------------------------------------------------------------
// System sweep: per-view query rounds vs shared-plan self-maintenance.
// ---------------------------------------------------------------------

struct EquivCase {
  std::string name;
  uint64_t seed;
  bool use_threads;
  size_t merge_processes;
  int updates_per_txn;
  bool pruning;
};

std::string EquivCaseName(const ::testing::TestParamInfo<EquivCase>& info) {
  return info.param.name;
}

SystemConfig BaseScenario(const EquivCase& c, bool insert_only = false) {
  WorkloadSpec spec;
  spec.seed = c.seed;
  if (insert_only) {
    // The stale-auxiliary mutation drops a base change; with deletes in
    // the stream the resulting garbage delta may delete a row the
    // warehouse never saw and abort the run before the oracle can rule.
    // Insert-only keeps the corruption silently applicable.
    spec.delete_fraction = 0;
    spec.modify_fraction = 0;
  }
  // Bit-identity across the two architectures requires both runs to
  // assign the same global update numbers, so arrival order at the
  // integrator must not depend on the (architecture-dependent) message
  // population: fixed network latency keeps the simulator's numbering
  // deterministic, and the thread runs use one source so the single
  // FIFO channel fixes the order under real-time racing too.
  spec.num_sources = c.use_threads ? 1 : 2;
  spec.relations_per_source = c.use_threads ? 4 : 2;
  // Few relations + many views = heavily overlapping chains, the
  // sharing-friendly shape the plan exists for.
  spec.num_views = 6;
  spec.max_view_width = 3;
  spec.selection_probability = 0.6;
  spec.num_transactions = 30;
  spec.updates_per_transaction = c.updates_per_txn;
  spec.mean_interarrival = 700;
  auto config = GenerateScenario(spec);
  MVC_CHECK(config.ok()) << config.status().ToString();
  config->num_merge_processes = c.merge_processes;
  config->integrator.relevance_pruning = c.pruning;
  config->latency = LatencyModel::Fixed(300);
  config->warehouse.apply_jitter = 500;
  config->warehouse.seed = c.seed * 13 + 1;
  config->seed = c.seed * 7 + 3;
  config->use_threads = c.use_threads;
  return std::move(*config);
}

/// Per-view AL streams, keyed by view name and ordered by update id.
/// Complete-level managers emit exactly one AL per relevant update per
/// view, so (view, update) identifies an AL in both architectures.
std::map<std::string, std::vector<ActionList>> CollectAls(
    const WarehouseSystem& system) {
  std::map<ViewId, std::string> name_of;
  for (const BoundView& view : system.bound_views()) {
    name_of[*system.registry().FindView(view.name())] = view.name();
  }
  std::map<std::string, std::vector<ActionList>> streams;
  for (const RecordedCommit& commit : system.recorder().commits()) {
    for (const ActionList& al : commit.txn.actions) {
      streams[name_of.at(al.view)].push_back(al);
    }
  }
  for (auto& [view, als] : streams) {
    std::sort(als.begin(), als.end(),
              [](const ActionList& a, const ActionList& b) {
                return a.update < b.update;
              });
  }
  return streams;
}

class MaintEquivalenceTest : public ::testing::TestWithParam<EquivCase> {};

TEST_P(MaintEquivalenceTest, AlStreamsAndFinalStateBitIdentical) {
  const EquivCase& c = GetParam();

  // Run A: per-view complete managers, Strobe-style source query
  // rounds on every update (the architecture self-maintenance exists
  // to replace).
  SystemConfig config_a = BaseScenario(c);
  config_a.vm_options.issue_query_round = true;
  auto run_a = WarehouseSystem::Build(std::move(config_a));
  ASSERT_TRUE(run_a.ok()) << run_a.status().ToString();
  (*run_a)->Run();

  // Run B: one self-maintaining group manager per merge group, shared
  // delta plans, zero source round trips.
  SystemConfig config_b = BaseScenario(c);
  config_b.maint.self_maintain = true;
  auto run_b = WarehouseSystem::Build(std::move(config_b));
  ASSERT_TRUE(run_b.ok()) << run_b.status().ToString();
  (*run_b)->Run();

  // Precondition for bit-identity: both runs numbered the same source
  // transactions the same way.
  const auto& updates_a = (*run_a)->recorder().updates();
  const auto& updates_b = (*run_b)->recorder().updates();
  ASSERT_EQ(updates_a.size(), updates_b.size());
  for (size_t i = 0; i < updates_a.size(); ++i) {
    ASSERT_EQ(updates_a[i].id, updates_b[i].id);
    const SourceTransaction& ta = updates_a[i].txn;
    const SourceTransaction& tb = updates_b[i].txn;
    ASSERT_EQ(ta.updates.size(), tb.updates.size()) << "update " << i;
    for (size_t u = 0; u < ta.updates.size(); ++u) {
      ASSERT_EQ(ta.updates[u].relation, tb.updates[u].relation)
          << "update " << i << " differs: the runs numbered the stream "
             "differently, so AL comparison would be apples to oranges";
      ASSERT_EQ(ta.updates[u].tuple, tb.updates[u].tuple);
    }
  }

  // The per-view run really used the source-query machinery; the
  // self-maintaining run never touched it.
  int64_t rounds_a = 0;
  for (const auto& vm : (*run_a)->view_managers()) {
    rounds_a += vm->query_rounds_issued();
  }
  EXPECT_GT(rounds_a, 0);
  ASSERT_FALSE((*run_b)->maint_vms().empty());
  int64_t avoided = 0;
  for (const auto& vm : (*run_b)->maint_vms()) {
    EXPECT_GT(vm->shared_node_evals(), 0);
    avoided += vm->query_rounds_avoided();
  }
  EXPECT_GT(avoided, 0);

  // Every AL stream bit-identical: same views touched, same update
  // labels, same covered sets, same delta rows in the same order.
  auto als_a = CollectAls(**run_a);
  auto als_b = CollectAls(**run_b);
  std::vector<std::string> views_a, views_b;
  for (const auto& [view, als] : als_a) views_a.push_back(view);
  for (const auto& [view, als] : als_b) views_b.push_back(view);
  ASSERT_EQ(views_a, views_b);
  for (const auto& [view, stream_a] : als_a) {
    const auto& stream_b = als_b.at(view);
    ASSERT_EQ(stream_a.size(), stream_b.size()) << view;
    for (size_t i = 0; i < stream_a.size(); ++i) {
      const ActionList& a = stream_a[i];
      const ActionList& b = stream_b[i];
      EXPECT_EQ(a.update, b.update) << view << " AL " << i;
      EXPECT_EQ(a.first_update, b.first_update) << view << " AL " << i;
      EXPECT_EQ(a.covered, b.covered) << view << " AL " << i;
      EXPECT_EQ(a.replace_all, b.replace_all) << view << " AL " << i;
      EXPECT_EQ(a.delta.rows, b.delta.rows)
          << view << " AL " << i << " (update " << a.update << ")";
    }
  }

  // Final warehouse state identical, and both runs MVC-complete.
  for (const BoundView& view : (*run_a)->bound_views()) {
    auto table_a = (*run_a)->warehouse().views().GetTable(view.name());
    auto table_b = (*run_b)->warehouse().views().GetTable(view.name());
    ASSERT_TRUE(table_a.ok() && table_b.ok());
    EXPECT_EQ((*table_a)->SortedRows(), (*table_b)->SortedRows())
        << view.name();
  }
  ConsistencyChecker checker_a = (*run_a)->MakeChecker();
  EXPECT_TRUE(checker_a.CheckComplete((*run_a)->recorder()).ok())
      << checker_a.CheckComplete((*run_a)->recorder());
  ConsistencyChecker checker_b = (*run_b)->MakeChecker();
  EXPECT_TRUE(checker_b.CheckComplete((*run_b)->recorder()).ok())
      << checker_b.CheckComplete((*run_b)->recorder());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MaintEquivalenceTest,
    ::testing::Values(
        EquivCase{"Sim_Seed1", 1, false, 1, 1, true},
        EquivCase{"Sim_Seed2_TwoMerges", 2, false, 2, 1, true},
        EquivCase{"Sim_Seed3_MultiUpdateTxns", 3, false, 1, 3, true},
        EquivCase{"Sim_Seed4_NoPruning", 4, false, 1, 2, false},
        EquivCase{"Sim_Seed5_TwoMergesMulti", 5, false, 2, 2, true},
        EquivCase{"Thread_Seed6", 6, true, 1, 1, true},
        EquivCase{"Thread_Seed7_TwoMerges", 7, true, 2, 2, true}),
    EquivCaseName);

// ---------------------------------------------------------------------
// Negative: the stale-auxiliary mutation must be caught.
// ---------------------------------------------------------------------

TEST(MaintMutationTest, StaleAuxiliaryBreaksCompleteness) {
  EquivCase c{"mutation", 11, false, 1, 1, true};
  // Not every skipped base change is observable — a dropped row that
  // never joins leaves every later delta intact. Sweep the first few
  // skip positions; the oracle must catch at least one of them.
  bool caught = false;
  for (int64_t skip = 1; skip <= 10 && !caught; ++skip) {
    SystemConfig config = BaseScenario(c, /*insert_only=*/true);
    config.maint.self_maintain = true;
    config.maint.mutation_skip_aux_apply = skip;
    auto system = WarehouseSystem::Build(std::move(config));
    ASSERT_TRUE(system.ok()) << system.status().ToString();
    (*system)->Run();
    ConsistencyChecker checker = (*system)->MakeChecker();
    caught = !checker.CheckComplete((*system)->recorder()).ok();
  }
  EXPECT_TRUE(caught)
      << "no stale-auxiliary mutation was noticed by the oracle";
}

TEST(MaintConfigTest, RejectsIncompatibleManagers) {
  EquivCase c{"reject", 12, false, 1, 1, true};
  SystemConfig config = BaseScenario(c);
  config.maint.self_maintain = true;
  config.manager_kinds[config.views[0].name] = ManagerKind::kStrong;
  auto system = WarehouseSystem::Build(std::move(config));
  EXPECT_FALSE(system.ok());
}

}  // namespace
}  // namespace mvc
