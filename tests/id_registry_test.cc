#include "storage/id_registry.h"

#include <gtest/gtest.h>

namespace mvc {
namespace {

TEST(IdRegistryTest, MintsDenseIdsInOrder) {
  IdRegistry reg;
  EXPECT_EQ(reg.InternView("V1"), 0);
  EXPECT_EQ(reg.InternView("V2"), 1);
  EXPECT_EQ(reg.InternView("V3"), 2);
  EXPECT_EQ(reg.num_views(), 3u);

  EXPECT_EQ(reg.InternRelation("R"), 0);
  EXPECT_EQ(reg.InternRelation("S"), 1);
  EXPECT_EQ(reg.num_relations(), 2u);
}

TEST(IdRegistryTest, ViewAndRelationNamespacesAreIndependent) {
  IdRegistry reg;
  EXPECT_EQ(reg.InternView("X"), 0);
  EXPECT_EQ(reg.InternRelation("X"), 0);
  EXPECT_EQ(reg.ViewName(0), "X");
  EXPECT_EQ(reg.RelationName(0), "X");
}

TEST(IdRegistryTest, InternIsIdempotent) {
  IdRegistry reg;
  ViewId first = reg.InternView("V1");
  reg.InternView("V2");
  EXPECT_EQ(reg.InternView("V1"), first);
  EXPECT_EQ(reg.num_views(), 2u);

  RelationId r = reg.InternRelation("R");
  EXPECT_EQ(reg.InternRelation("R"), r);
  EXPECT_EQ(reg.num_relations(), 1u);
}

TEST(IdRegistryTest, InternViewsBatchPreservesOrder) {
  IdRegistry reg;
  std::vector<ViewId> ids = reg.InternViews({"A", "B", "A", "C"});
  EXPECT_EQ(ids, (std::vector<ViewId>{0, 1, 0, 2}));
}

TEST(IdRegistryTest, NamesRoundTrip) {
  IdRegistry reg;
  for (const char* name : {"V1", "V2", "V3"}) reg.InternView(name);
  for (const char* name : {"R", "S", "T", "Q"}) reg.InternRelation(name);
  for (ViewId v = 0; v < static_cast<ViewId>(reg.num_views()); ++v) {
    EXPECT_EQ(reg.FindView(reg.ViewName(v)), v);
  }
  for (RelationId r = 0; r < static_cast<RelationId>(reg.num_relations());
       ++r) {
    EXPECT_EQ(reg.FindRelation(reg.RelationName(r)), r);
  }
}

TEST(IdRegistryTest, FindUnknownReturnsNullopt) {
  IdRegistry reg;
  reg.InternView("V1");
  EXPECT_EQ(reg.FindView("V9"), std::nullopt);
  EXPECT_EQ(reg.FindRelation("V1"), std::nullopt);
}

TEST(IdRegistryDeathTest, NameOfUnmintedIdChecks) {
  IdRegistry reg;
  reg.InternView("V1");
  EXPECT_DEATH(reg.ViewName(1), "unknown ViewId");
  EXPECT_DEATH(reg.ViewName(kInvalidView), "unknown ViewId");
  EXPECT_DEATH(reg.RelationName(0), "unknown RelationId");
}

}  // namespace
}  // namespace mvc
