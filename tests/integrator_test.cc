// Tests for the integrator: global numbering, REL computation with and
// without relevance pruning, the piggyback delivery scheme, and the
// Section 6.2 global-transaction extension.

#include <gtest/gtest.h>

#include "integrator/integrator.h"
#include "net/sim_runtime.h"
#include "storage/id_registry.h"
#include "workload/paper_examples.h"

namespace mvc {
namespace {

class Sink : public Process {
 public:
  using Process::Process;
  void OnMessage(ProcessId, MessagePtr msg) override {
    messages.push_back(std::move(msg));
  }
  std::vector<MessagePtr> messages;
};

class Feeder : public Process {
 public:
  Feeder(std::string name, ProcessId integrator)
      : Process(std::move(name)), integrator_(integrator) {}
  void OnStart() override {
    TimeMicros at = 0;
    for (SourceTransaction& txn : to_send) {
      auto msg = std::make_unique<SourceTxnMsg>();
      msg->txn = std::move(txn);
      SendAfter(integrator_, std::move(msg), at += 10);
    }
  }
  void OnMessage(ProcessId, MessagePtr) override {}
  ProcessId integrator_;
  std::vector<SourceTransaction> to_send;
};

class IntegratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schemas_ = {{"R", Schema::AllInt64({"A", "B"})},
                {"S", Schema::AllInt64({"B", "C"})},
                {"T", Schema::AllInt64({"C", "D"})},
                {"Q", Schema::AllInt64({"D", "E"})}};
    v1_id_ = registry_.InternView("V1");
    v2_id_ = registry_.InternView("V2");
    v3_id_ = registry_.InternView("V3");
  }

  // Builds integrator with views V1={R,S}, V2={S,T}, V3={Q}; returns
  // after wiring sinks. Call after setting options_.
  void Wire() {
    v1_ = Bind(PaperV1());
    v2_ = Bind(PaperV2());
    v3_ = Bind(PaperV3());
    integrator_ =
        std::make_unique<IntegratorProcess>("integrator", options_);
    ProcessId ipid = runtime_.Register(integrator_.get());
    vm1_pid_ = runtime_.Register(&vm1_);
    vm2_pid_ = runtime_.Register(&vm2_);
    vm3_pid_ = runtime_.Register(&vm3_);
    merge_pid_ = runtime_.Register(&merge_);
    ASSERT_TRUE(
        integrator_->RegisterView(&*v1_, v1_id_, vm1_pid_, merge_pid_).ok());
    ASSERT_TRUE(
        integrator_->RegisterView(&*v2_, v2_id_, vm2_pid_, merge_pid_).ok());
    ASSERT_TRUE(
        integrator_->RegisterView(&*v3_, v3_id_, vm3_pid_, merge_pid_).ok());
    feeder_ = std::make_unique<Feeder>("feeder", ipid);
    runtime_.Register(feeder_.get());
  }

  std::optional<BoundView> Bind(const ViewDefinition& def) {
    auto bound = BoundView::Bind(def, schemas_);
    MVC_CHECK(bound.ok()) << bound.status().ToString();
    return std::move(bound).value();
  }

  SourceTransaction Txn(Update u, int64_t seq = 1) {
    SourceTransaction txn;
    txn.local_seq = seq;
    txn.updates = {std::move(u)};
    return txn;
  }

  std::map<std::string, Schema> schemas_;
  IdRegistry registry_;
  ViewId v1_id_, v2_id_, v3_id_;
  IntegratorOptions options_;
  SimRuntime runtime_{1};
  std::optional<BoundView> v1_, v2_, v3_;
  std::unique_ptr<IntegratorProcess> integrator_;
  std::unique_ptr<Feeder> feeder_;
  Sink vm1_{"vm1"}, vm2_{"vm2"}, vm3_{"vm3"}, merge_{"merge"};
  ProcessId vm1_pid_, vm2_pid_, vm3_pid_, merge_pid_;
};

TEST_F(IntegratorTest, RoutesUpdateToRelevantManagersAndMerge) {
  Wire();
  feeder_->to_send = {Txn(Update::Insert("src0", "S", Tuple{2, 3}))};
  runtime_.Run();

  // S is used by V1 and V2 but not V3.
  ASSERT_EQ(vm1_.messages.size(), 1u);
  ASSERT_EQ(vm2_.messages.size(), 1u);
  EXPECT_TRUE(vm3_.messages.empty());
  auto* update = static_cast<UpdateMsg*>(vm1_.messages[0].get());
  EXPECT_EQ(update->update_id, 1);

  ASSERT_EQ(merge_.messages.size(), 1u);
  auto* rel = static_cast<RelSetMsg*>(merge_.messages[0].get());
  EXPECT_EQ(rel->update_id, 1);
  EXPECT_EQ(rel->views, (std::vector<ViewId>{v1_id_, v2_id_}));
}

TEST_F(IntegratorTest, NumbersUpdatesByArrivalOrder) {
  Wire();
  feeder_->to_send = {Txn(Update::Insert("src0", "S", Tuple{2, 3}), 1),
                      Txn(Update::Insert("src1", "Q", Tuple{1, 1}), 1),
                      Txn(Update::Insert("src0", "S", Tuple{5, 5}), 2)};
  runtime_.Run();
  EXPECT_EQ(integrator_->num_updates(), 3);
  ASSERT_EQ(merge_.messages.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(static_cast<RelSetMsg*>(
                  merge_.messages[static_cast<size_t>(i)].get())
                  ->update_id,
              i + 1);
  }
}

TEST_F(IntegratorTest, ObserverSeesEveryTransaction) {
  Wire();
  std::vector<UpdateId> observed;
  integrator_->SetUpdateObserver(
      [&](UpdateId id, const SourceTransaction&) { observed.push_back(id); });
  feeder_->to_send = {Txn(Update::Insert("src0", "S", Tuple{2, 3})),
                      Txn(Update::Insert("src1", "Q", Tuple{1, 1}))};
  runtime_.Run();
  EXPECT_EQ(observed, (std::vector<UpdateId>{1, 2}));
}

TEST_F(IntegratorTest, EmptyRelStillReportedWhenConfigured) {
  Wire();
  // A relation no view uses.
  feeder_->to_send = {Txn(Update::Insert("src0", "R", Tuple{1, 2}))};
  // R is used by V1, so use T... T is used by V2. Use an update that
  // fails every selection: none here, so fabricate a relation-less case
  // via pruning below. With the paper views every relation is used, so
  // check the pruning path in the next test instead.
  runtime_.Run();
  ASSERT_EQ(merge_.messages.size(), 1u);
}

TEST_F(IntegratorTest, PruningDropsNonQualifyingUpdates) {
  // V1 with a selection S.C < 10: an insert with C = 50 is irrelevant.
  options_.relevance_pruning = true;
  ViewDefinition sel = PaperV1();
  sel.predicate = Predicate::And(
      {Predicate::ColEqCol(ColumnRef{"R", "B"}, ColumnRef{"S", "B"}),
       Predicate::ColCmpConst(CompareOp::kLt, ColumnRef{"S", "C"},
                              Value(10))});
  v1_ = Bind(sel);
  v2_ = Bind(PaperV3());  // {Q}
  integrator_ = std::make_unique<IntegratorProcess>("integrator", options_);
  ProcessId ipid = runtime_.Register(integrator_.get());
  vm1_pid_ = runtime_.Register(&vm1_);
  merge_pid_ = runtime_.Register(&merge_);
  ASSERT_TRUE(
      integrator_->RegisterView(&*v1_, v1_id_, vm1_pid_, merge_pid_).ok());
  feeder_ = std::make_unique<Feeder>("feeder", ipid);
  feeder_->to_send = {Txn(Update::Insert("src0", "S", Tuple{2, 50})),
                      Txn(Update::Insert("src0", "S", Tuple{2, 5}))};
  runtime_.Register(feeder_.get());
  runtime_.Run();

  // First update pruned: empty REL reported, no VM message. Second
  // relevant.
  ASSERT_EQ(vm1_.messages.size(), 1u);
  EXPECT_EQ(static_cast<UpdateMsg*>(vm1_.messages[0].get())->update_id, 2);
  ASSERT_EQ(merge_.messages.size(), 2u);
  EXPECT_TRUE(static_cast<RelSetMsg*>(merge_.messages[0].get())
                  ->views.empty());
  EXPECT_EQ(
      static_cast<RelSetMsg*>(merge_.messages[1].get())->views,
      (std::vector<ViewId>{v1_id_}));
}

TEST_F(IntegratorTest, WithoutPruningAllMemberViewsAreRelevant) {
  options_.relevance_pruning = false;
  Wire();
  feeder_->to_send = {Txn(Update::Insert("src0", "S", Tuple{2, 3}))};
  runtime_.Run();
  auto* rel = static_cast<RelSetMsg*>(merge_.messages[0].get());
  EXPECT_EQ(rel->views, (std::vector<ViewId>{v1_id_, v2_id_}));
}

TEST_F(IntegratorTest, PiggybackSchemeSkipsDirectRelMessages) {
  options_.piggyback_rel = true;
  Wire();
  feeder_->to_send = {Txn(Update::Insert("src0", "S", Tuple{2, 3}))};
  runtime_.Run();

  EXPECT_TRUE(merge_.messages.empty());
  // The first VM in REL (V1's) carries the REL set.
  ASSERT_EQ(vm1_.messages.size(), 1u);
  auto* carrier = static_cast<UpdateMsg*>(vm1_.messages[0].get());
  EXPECT_TRUE(carrier->carries_rel);
  EXPECT_EQ(carrier->rel_views, (std::vector<ViewId>{v1_id_, v2_id_}));
  auto* other = static_cast<UpdateMsg*>(vm2_.messages[0].get());
  EXPECT_FALSE(other->carries_rel);
}

TEST_F(IntegratorTest, GlobalTransactionMergesParts) {
  Wire();
  SourceTransaction part1 = Txn(Update::Insert("src0", "S", Tuple{2, 3}));
  part1.global_txn_id = 77;
  part1.global_participants = 2;
  SourceTransaction part2 = Txn(Update::Insert("src1", "Q", Tuple{1, 1}));
  part2.global_txn_id = 77;
  part2.global_participants = 2;
  feeder_->to_send = {part1, part2};
  runtime_.Run();

  // One atomic unit: a single REL covering V1, V2 (from S) and V3
  // (from Q).
  EXPECT_EQ(integrator_->num_updates(), 1);
  ASSERT_EQ(merge_.messages.size(), 1u);
  auto* rel = static_cast<RelSetMsg*>(merge_.messages[0].get());
  EXPECT_EQ(rel->views, (std::vector<ViewId>{v1_id_, v2_id_, v3_id_}));
  // Every relevant VM got the merged transaction with both updates.
  ASSERT_EQ(vm3_.messages.size(), 1u);
  EXPECT_EQ(static_cast<UpdateMsg*>(vm3_.messages[0].get())
                ->txn.updates.size(),
            2u);
}

TEST_F(IntegratorTest, DuplicateViewRegistrationFails) {
  Wire();
  EXPECT_TRUE(integrator_->RegisterView(&*v1_, v1_id_, vm1_pid_, merge_pid_)
                  .IsAlreadyExists());
}

}  // namespace
}  // namespace mvc

namespace mvc {
namespace {

TEST_F(IntegratorTest, EmptyRelReportingCanBeDisabled) {
  options_.relevance_pruning = true;
  options_.report_empty_rel = false;
  ViewDefinition sel = PaperV1();
  sel.predicate = Predicate::And(
      {Predicate::ColEqCol(ColumnRef{"R", "B"}, ColumnRef{"S", "B"}),
       Predicate::ColCmpConst(CompareOp::kLt, ColumnRef{"S", "C"},
                              Value(10))});
  v1_ = Bind(sel);
  integrator_ = std::make_unique<IntegratorProcess>("integrator", options_);
  ProcessId ipid = runtime_.Register(integrator_.get());
  vm1_pid_ = runtime_.Register(&vm1_);
  merge_pid_ = runtime_.Register(&merge_);
  ASSERT_TRUE(
      integrator_->RegisterView(&*v1_, v1_id_, vm1_pid_, merge_pid_).ok());
  feeder_ = std::make_unique<Feeder>("feeder", ipid);
  // Fails the selection: pruned everywhere, and with reporting off the
  // merge process hears nothing at all.
  feeder_->to_send = {Txn(Update::Insert("src0", "S", Tuple{2, 50}))};
  runtime_.Register(feeder_.get());
  runtime_.Run();
  EXPECT_TRUE(merge_.messages.empty());
  EXPECT_TRUE(vm1_.messages.empty());
  EXPECT_EQ(integrator_->num_updates(), 1);
}

TEST_F(IntegratorTest, ProcessDelayDefersFanOut) {
  options_.process_delay = 5000;
  Wire();
  feeder_->to_send = {Txn(Update::Insert("src0", "S", Tuple{2, 3}))};
  runtime_.Run();
  // Fan-out happened, but not before the integrator's processing time.
  ASSERT_EQ(vm1_.messages.size(), 1u);
  EXPECT_GE(runtime_.Now(), 5000);
}

}  // namespace
}  // namespace mvc
