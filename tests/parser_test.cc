// Tests for the scenario-definition language: lexer, parser, semantic
// validation, and end-to-end execution of a parsed scenario.

#include <gtest/gtest.h>

#include "parser/lexer.h"
#include "parser/scenario_parser.h"
#include "system/warehouse_system.h"

namespace mvc {
namespace {

TEST(LexerTest, TokenizesAllKinds) {
  auto tokens = Tokenize("foo-bar 42 -7 ( ) { } , ; . * @ = -> < <= > >= !=");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kIdentifier, TokenKind::kInteger,
                TokenKind::kInteger, TokenKind::kLParen, TokenKind::kRParen,
                TokenKind::kLBrace, TokenKind::kRBrace, TokenKind::kComma,
                TokenKind::kSemicolon, TokenKind::kDot, TokenKind::kStar,
                TokenKind::kAt, TokenKind::kEquals, TokenKind::kArrow,
                TokenKind::kCompare, TokenKind::kCompare,
                TokenKind::kCompare, TokenKind::kCompare,
                TokenKind::kCompare, TokenKind::kEnd}));
  EXPECT_EQ((*tokens)[0].text, "foo-bar");
  EXPECT_EQ((*tokens)[1].integer, 42);
  EXPECT_EQ((*tokens)[2].integer, -7);
}

TEST(LexerTest, CommentsAndLines) {
  auto tokens = Tokenize("a # comment\nb");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
}

TEST(LexerTest, RejectsStrayCharacters) {
  EXPECT_FALSE(Tokenize("a $ b").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
  EXPECT_FALSE(Tokenize("a - b").ok());
}

constexpr char kScenario[] = R"(
# The paper's Table 1 as a scenario file.
source src0 {
  relation R(A, B);
  relation S(B, C);
}
source src1 {
  relation T(C, D);
}
init R (1, 2);
init T (3, 4);

view V1 = select R.A, R.B, S.C from R, S where R.B = S.B;
view V2 = select S.B, S.C, T.D from S, T where S.C = T.C;

txn @1000 src0 { insert S (2, 3); }
)";

TEST(ParserTest, ParsesTable1Scenario) {
  auto config = ParseScenario(kScenario);
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_EQ(config->sources.size(), 2u);
  EXPECT_EQ(config->sources.at("src0"),
            (std::vector<std::string>{"R", "S"}));
  EXPECT_EQ(config->schemas.at("R"), Schema::AllInt64({"A", "B"}));
  EXPECT_EQ(config->initial_data.at("R").size(), 1u);
  ASSERT_EQ(config->views.size(), 2u);
  EXPECT_EQ(config->views[0].name, "V1");
  EXPECT_EQ(config->views[0].relations,
            (std::vector<std::string>{"R", "S"}));
  EXPECT_EQ(config->views[0].projection.size(), 3u);
  EXPECT_EQ(config->views[0].predicate.ToString(), "R.B = S.B");
  ASSERT_EQ(config->workload.size(), 1u);
  EXPECT_EQ(config->workload[0].at, 1000);
  EXPECT_EQ(config->workload[0].updates[0].op, UpdateOp::kInsert);
}

TEST(ParserTest, ParsedScenarioRunsAndIsComplete) {
  auto config = ParseScenario(kScenario);
  ASSERT_TRUE(config.ok());
  auto system = WarehouseSystem::Build(std::move(*config));
  ASSERT_TRUE(system.ok()) << system.status();
  (*system)->Run();
  EXPECT_EQ((*(*system)->warehouse().views().GetTable("V1"))
                ->CountOf(Tuple{1, 2, 3}),
            1);
  ConsistencyChecker checker = (*system)->MakeChecker();
  EXPECT_TRUE(checker.CheckComplete((*system)->recorder()).ok());
}

TEST(ParserTest, SelectStarAndWhereConstants) {
  auto config = ParseScenario(R"(
source s { relation R(j, v); }
view Hot = select * from R where v >= 10 and v != 50;
)");
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_TRUE(config->views[0].projection.empty());
  EXPECT_EQ(config->views[0].predicate.ToString(), "(v >= 10 AND v != 50)");
}

TEST(ParserTest, AggregateStatement) {
  auto config = ParseScenario(R"(
source s { relation orders(region, amount); }
view rev = select region, amount from orders;
aggregate rev group by region count as n, sum amount as total,
  min amount as lo, max amount as hi;
)");
  ASSERT_TRUE(config.ok()) << config.status();
  ASSERT_EQ(config->aggregates.size(), 1u);
  const AggregateSpec& spec = config->aggregates.at("rev");
  EXPECT_EQ(spec.group_by, (std::vector<std::string>{"region"}));
  ASSERT_EQ(spec.aggregates.size(), 4u);
  EXPECT_EQ(spec.aggregates[0].fn, AggregateFn::kCount);
  EXPECT_EQ(spec.aggregates[1].fn, AggregateFn::kSum);
  EXPECT_EQ(spec.aggregates[1].input_column, "amount");
  EXPECT_EQ(spec.aggregates[2].fn, AggregateFn::kMin);
  EXPECT_EQ(spec.aggregates[3].fn, AggregateFn::kMax);
  EXPECT_EQ(spec.aggregates[3].output_name, "hi");
}

TEST(ParserTest, ManagerStatement) {
  auto config = ParseScenario(R"(
source s { relation R(a); }
view V = select * from R;
manager V strong;
)");
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_EQ(config->manager_kinds.at("V"), ManagerKind::kStrong);
}

TEST(ParserTest, ModifyAndMultiUpdateTxn) {
  auto config = ParseScenario(R"(
source s { relation R(a, b); }
init R (1, 2);
view V = select * from R;
txn @500 s { modify R (1, 2) -> (1, 9); insert R (3, 4); }
)");
  ASSERT_TRUE(config.ok()) << config.status();
  ASSERT_EQ(config->workload[0].updates.size(), 2u);
  EXPECT_EQ(config->workload[0].updates[0].op, UpdateOp::kModify);
  EXPECT_EQ(config->workload[0].updates[0].new_tuple, (Tuple{1, 9}));
}

TEST(ParserTest, SemanticErrors) {
  // Undeclared relation in a view.
  EXPECT_FALSE(ParseScenario("view V = select * from Nope;").ok());
  // Duplicate relation.
  EXPECT_FALSE(
      ParseScenario("source a { relation R(x); } source b { relation R(y); }")
          .ok());
  // Duplicate view.
  EXPECT_FALSE(ParseScenario(R"(
source s { relation R(a); }
view V = select * from R;
view V = select * from R;
)").ok());
  // Txn at unknown source.
  EXPECT_FALSE(ParseScenario(R"(
source s { relation R(a); }
txn @1 other { insert R (1); }
)").ok());
  // Aggregate over unknown view.
  EXPECT_FALSE(ParseScenario(R"(
source s { relation R(a); }
aggregate Nope group by a count as n;
)").ok());
  // Empty transaction.
  EXPECT_FALSE(ParseScenario(R"(
source s { relation R(a); }
txn @1 s { }
)").ok());
  // Unknown statement.
  EXPECT_FALSE(ParseScenario("frobnicate;").ok());
}

TEST(ParserTest, SyntaxErrorsCarryLineNumbers) {
  Status st = ParseScenario("source s {\n relation R(a)\n}").status();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 3"), std::string::npos) << st;
}

TEST(ParserTest, FileNotFound) {
  EXPECT_TRUE(ParseScenarioFile("/nonexistent/x.mvc").status().IsNotFound());
}

}  // namespace
}  // namespace mvc
