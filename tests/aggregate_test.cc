// Tests for aggregate views: spec validation, evaluation, incremental
// folding, the aggregate view manager, and system-level MVC with an
// aggregate view in the mix.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "query/aggregate.h"
#include "system/warehouse_system.h"
#include "workload/paper_examples.h"

namespace mvc {
namespace {

std::map<std::string, Schema> PaperSchemas() {
  return {{"R", Schema::AllInt64({"A", "B"})},
          {"S", Schema::AllInt64({"B", "C"})},
          {"T", Schema::AllInt64({"C", "D"})},
          {"Q", Schema::AllInt64({"D", "E"})}};
}

AggregateSpec CountAndSumByB() {
  AggregateSpec spec;
  spec.group_by = {"B"};
  spec.aggregates = {
      AggregateColumn{AggregateFn::kCount, "", "n"},
      AggregateColumn{AggregateFn::kSum, "C", "total_c"}};
  return spec;
}

class AggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const auto& [name, schema] : PaperSchemas()) {
      ASSERT_TRUE(catalog_.CreateTable(name, schema).ok());
    }
    // S as the SPJ core (single relation keeps the math obvious).
    ViewDefinition def;
    def.name = "BySum";
    def.relations = {"S"};
    core_ = std::move(BoundView::Bind(def, PaperSchemas())).value();
  }

  Status InsertS(int64_t b, int64_t c, int64_t count = 1) {
    return (*catalog_.GetTable("S"))->Insert(Tuple{b, c}, count);
  }

  Catalog catalog_;
  std::optional<BoundView> core_;
};

TEST_F(AggregateTest, OutputSchemaComposition) {
  auto schema = CountAndSumByB().OutputSchema(core_->output_schema());
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(*schema, Schema::AllInt64({"B", "n", "total_c"}));
}

TEST_F(AggregateTest, OutputSchemaRejectsUnknownColumns) {
  AggregateSpec spec;
  spec.group_by = {"ZZ"};
  EXPECT_FALSE(spec.OutputSchema(core_->output_schema()).ok());
  AggregateSpec spec2;
  spec2.group_by = {"B"};
  spec2.aggregates = {AggregateColumn{AggregateFn::kSum, "ZZ", "s"}};
  EXPECT_FALSE(spec2.OutputSchema(core_->output_schema()).ok());
}

TEST_F(AggregateTest, EvaluateGroupsAndSums) {
  ASSERT_TRUE(InsertS(1, 10).ok());
  ASSERT_TRUE(InsertS(1, 5, 2).ok());  // multiplicity 2
  ASSERT_TRUE(InsertS(2, 7).ok());
  auto result = EvaluateAggregate(*core_, CountAndSumByB(),
                                  CatalogProvider(&catalog_), "BySum");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NumRows(), 2);
  EXPECT_EQ(result->CountOf(Tuple{1, 3, 20}), 1);  // 10 + 5 + 5
  EXPECT_EQ(result->CountOf(Tuple{2, 1, 7}), 1);
}

TEST_F(AggregateTest, EmptyCoreYieldsEmptyAggregate) {
  auto result = EvaluateAggregate(*core_, CountAndSumByB(),
                                  CatalogProvider(&catalog_), "BySum");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST_F(AggregateTest, FoldInsertCreatesAndUpdatesGroups) {
  auto state = AggregateState::Build(*core_, CountAndSumByB(),
                                     CatalogProvider(&catalog_));
  ASSERT_TRUE(state.ok());

  TableDelta d1;
  d1.target = "S";
  d1.Add(Tuple{1, 10}, 1);
  auto out1 = state->Fold(d1, "BySum");
  ASSERT_TRUE(out1.ok());
  // New group: only the +new row.
  ASSERT_EQ(out1->rows.size(), 1u);
  EXPECT_EQ(out1->rows[0].tuple, (Tuple{1, 1, 10}));
  EXPECT_EQ(out1->rows[0].count, 1);

  TableDelta d2;
  d2.target = "S";
  d2.Add(Tuple{1, 5}, 1);
  auto out2 = state->Fold(d2, "BySum");
  ASSERT_TRUE(out2.ok());
  // Existing group: -old +new.
  ASSERT_EQ(out2->rows.size(), 2u);
  EXPECT_EQ(out2->rows[0].tuple, (Tuple{1, 1, 10}));
  EXPECT_EQ(out2->rows[0].count, -1);
  EXPECT_EQ(out2->rows[1].tuple, (Tuple{1, 2, 15}));
  EXPECT_EQ(out2->rows[1].count, 1);
}

TEST_F(AggregateTest, FoldDeleteRemovesEmptiedGroup) {
  ASSERT_TRUE(InsertS(1, 10).ok());
  auto state = AggregateState::Build(*core_, CountAndSumByB(),
                                     CatalogProvider(&catalog_));
  ASSERT_TRUE(state.ok());
  TableDelta d;
  d.target = "S";
  d.Add(Tuple{1, 10}, -1);
  auto out = state->Fold(d, "BySum");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->rows.size(), 1u);
  EXPECT_EQ(out->rows[0].count, -1);
  EXPECT_TRUE(state->Materialize("x").empty());
}

TEST_F(AggregateTest, FoldMultipleRowsSameGroupProducesOnePair) {
  ASSERT_TRUE(InsertS(1, 10).ok());
  auto state = AggregateState::Build(*core_, CountAndSumByB(),
                                     CatalogProvider(&catalog_));
  ASSERT_TRUE(state.ok());
  TableDelta d;
  d.target = "S";
  d.Add(Tuple{1, 5}, 1);
  d.Add(Tuple{1, 3}, 1);
  d.Add(Tuple{1, 10}, -1);
  auto out = state->Fold(d, "BySum");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->rows.size(), 2u);
  EXPECT_EQ(out->rows[0].tuple, (Tuple{1, 1, 10}));
  EXPECT_EQ(out->rows[0].count, -1);
  EXPECT_EQ(out->rows[1].tuple, (Tuple{1, 2, 8}));
  EXPECT_EQ(out->rows[1].count, 1);
}

TEST_F(AggregateTest, SumOverNegativeValues) {
  ASSERT_TRUE(InsertS(1, -4).ok());
  ASSERT_TRUE(InsertS(1, 3).ok());
  auto result = EvaluateAggregate(*core_, CountAndSumByB(),
                                  CatalogProvider(&catalog_), "BySum");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->CountOf(Tuple{1, 2, -1}), 1);
}

// Property: incremental folding equals recomputation under random
// update streams.
class AggregateFoldProperty : public AggregateTest,
                              public ::testing::WithParamInterface<int> {};

TEST_P(AggregateFoldProperty, IncrementalEqualsRecomputation) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  auto state = AggregateState::Build(*core_, CountAndSumByB(),
                                     CatalogProvider(&catalog_));
  ASSERT_TRUE(state.ok());
  Table materialized = state->Materialize("BySum");
  std::vector<Tuple> live;

  for (int step = 0; step < 80; ++step) {
    TableDelta base;
    base.target = "S";
    if (rng.Bernoulli(0.35) && !live.empty()) {
      size_t idx = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      base.Add(live[idx], -1);
      live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
    } else {
      Tuple t{rng.UniformInt(0, 3), rng.UniformInt(-5, 20)};
      base.Add(t, 1);
      live.push_back(t);
    }
    // The core view is the identity over S, so the base delta IS the
    // core-output delta.
    auto agg_delta = state->Fold(base, "BySum");
    ASSERT_TRUE(agg_delta.ok());
    ASSERT_TRUE(agg_delta->ApplyTo(&materialized).ok());
    ASSERT_TRUE(base.ApplyTo(*catalog_.GetTable("S")).ok());

    auto full = EvaluateAggregate(*core_, CountAndSumByB(),
                                  CatalogProvider(&catalog_), "BySum");
    ASSERT_TRUE(full.ok());
    ASSERT_TRUE(materialized.ContentsEqual(*full))
        << "step " << step << "\nIncremental:\n"
        << materialized.ToString() << "Full:\n"
        << full->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateFoldProperty,
                         ::testing::Range(1, 9));

// System-level: an aggregate over a join, coordinated with a plain view.
TEST(AggregateSystemTest, AggregateViewKeepsMvcWithJoinCore) {
  SystemConfig config = PaperBaseConfig();
  config.initial_data["R"] = {Tuple{1, 2}, Tuple{5, 2}};
  config.initial_data["T"] = {Tuple{3, 4}};

  // V1 = R|><|S (plain); VAgg = COUNT/SUM over the same join, grouped
  // by B. Both are affected by every S update and must move together.
  ViewDefinition agg_core = PaperV1();
  agg_core.name = "VAgg";
  config.views = {PaperV1(), agg_core};
  AggregateSpec spec;
  spec.group_by = {"B"};
  spec.aggregates = {AggregateColumn{AggregateFn::kCount, "", "n"},
                     AggregateColumn{AggregateFn::kSum, "C", "sum_c"}};
  config.aggregates["VAgg"] = spec;
  config.latency = LatencyModel::Uniform(300, 2000);
  config.vm_options.delta_cost = 700;
  config.seed = 5;

  TimeMicros at = 1000;
  for (const Update& u : {Update::Insert("src0", "S", Tuple{2, 3}),
                          Update::Insert("src0", "S", Tuple{2, 9}),
                          Update::Delete("src0", "S", Tuple{2, 3}),
                          Update::Insert("src0", "S", Tuple{9, 9})}) {
    Injection inj;
    inj.at = at;
    inj.source = "src0";
    inj.updates = {u};
    config.workload.push_back(inj);
    at += 1200;
  }

  auto system = WarehouseSystem::Build(std::move(config));
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  (*system)->Run();

  // Final aggregate contents: S = {[2,9]}; join with R gives rows for
  // A=1 and A=5, both B=2 -> group 2 has n=2, sum_c=18.
  const Table* vagg = *(*system)->warehouse().views().GetTable("VAgg");
  EXPECT_EQ(vagg->NumRows(), 1);
  EXPECT_EQ(vagg->CountOf(Tuple{2, 2, 18}), 1);

  ConsistencyChecker checker = (*system)->MakeChecker();
  EXPECT_TRUE(checker.CheckStrong((*system)->recorder()).ok())
      << checker.CheckStrong((*system)->recorder());
}

TEST(AggregateSystemTest, MergeTreatsAggregateManagerAsStrong) {
  SystemConfig config = PaperBaseConfig();
  config.initial_data["R"] = {Tuple{1, 2}};
  ViewDefinition agg_core = PaperV1();
  agg_core.name = "VAgg";
  config.views = {agg_core};
  AggregateSpec spec;
  spec.group_by = {"B"};
  spec.aggregates = {AggregateColumn{AggregateFn::kCount, "", "n"}};
  config.aggregates["VAgg"] = spec;
  Injection inj;
  inj.at = 500;
  inj.source = "src0";
  inj.updates = {Update::Insert("src0", "S", Tuple{2, 3})};
  config.workload = {inj};

  auto system = WarehouseSystem::Build(std::move(config));
  ASSERT_TRUE(system.ok());
  EXPECT_EQ((*system)->merges()[0]->engine().algorithm(),
            MergeAlgorithm::kPA);
  EXPECT_EQ((*system)->view_managers()[0]->level(),
            ConsistencyLevel::kStrong);
  (*system)->Run();
  ConsistencyChecker checker = (*system)->MakeChecker();
  EXPECT_TRUE(checker.CheckStrong((*system)->recorder()).ok());
}

}  // namespace
}  // namespace mvc

namespace mvc {
namespace {

AggregateSpec MinMaxByB() {
  AggregateSpec spec;
  spec.group_by = {"B"};
  spec.aggregates = {AggregateColumn{AggregateFn::kMin, "C", "min_c"},
                     AggregateColumn{AggregateFn::kMax, "C", "max_c"}};
  return spec;
}

TEST_F(AggregateTest, MinMaxEvaluate) {
  ASSERT_TRUE(InsertS(1, 10).ok());
  ASSERT_TRUE(InsertS(1, 3).ok());
  ASSERT_TRUE(InsertS(1, 7).ok());
  ASSERT_TRUE(InsertS(2, -4).ok());
  auto result = EvaluateAggregate(*core_, MinMaxByB(),
                                  CatalogProvider(&catalog_), "MM");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->CountOf(Tuple{1, 3, 10}), 1);
  EXPECT_EQ(result->CountOf(Tuple{2, -4, -4}), 1);
}

TEST_F(AggregateTest, MinMaxSurvivesDeletingTheExtremum) {
  // The reason MIN/MAX need the value multiset: deleting the current
  // minimum must resurface the runner-up exactly.
  ASSERT_TRUE(InsertS(1, 3).ok());
  ASSERT_TRUE(InsertS(1, 7).ok());
  ASSERT_TRUE(InsertS(1, 10).ok());
  auto state = AggregateState::Build(*core_, MinMaxByB(),
                                     CatalogProvider(&catalog_));
  ASSERT_TRUE(state.ok());

  TableDelta d;
  d.target = "S";
  d.Add(Tuple{1, 3}, -1);  // delete the min
  auto out = state->Fold(d, "MM");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->rows.size(), 2u);
  EXPECT_EQ(out->rows[0].tuple, (Tuple{1, 3, 10}));
  EXPECT_EQ(out->rows[0].count, -1);
  EXPECT_EQ(out->rows[1].tuple, (Tuple{1, 7, 10}));
  EXPECT_EQ(out->rows[1].count, 1);

  TableDelta d2;
  d2.target = "S";
  d2.Add(Tuple{1, 10}, -1);  // delete the max
  auto out2 = state->Fold(d2, "MM");
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(state->Materialize("MM").CountOf(Tuple{1, 7, 7}), 1);
}

TEST_F(AggregateTest, MinMaxDuplicateExtremumNeedsBothDeletes) {
  ASSERT_TRUE(InsertS(1, 3, 2).ok());  // two copies of the minimum
  ASSERT_TRUE(InsertS(1, 9).ok());
  auto state = AggregateState::Build(*core_, MinMaxByB(),
                                     CatalogProvider(&catalog_));
  ASSERT_TRUE(state.ok());
  TableDelta d;
  d.target = "S";
  d.Add(Tuple{1, 3}, -1);
  ASSERT_TRUE(state->Fold(d, "MM").ok());
  // One copy left: min unchanged.
  EXPECT_EQ(state->Materialize("MM").CountOf(Tuple{1, 3, 9}), 1);
  ASSERT_TRUE(state->Fold(d, "MM").ok());
  EXPECT_EQ(state->Materialize("MM").CountOf(Tuple{1, 9, 9}), 1);
}

class MinMaxFoldProperty : public AggregateTest,
                           public ::testing::WithParamInterface<int> {};

TEST_P(MinMaxFoldProperty, IncrementalEqualsRecomputation) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 500);
  auto state = AggregateState::Build(*core_, MinMaxByB(),
                                     CatalogProvider(&catalog_));
  ASSERT_TRUE(state.ok());
  Table materialized = state->Materialize("MM");
  std::vector<Tuple> live;
  for (int step = 0; step < 60; ++step) {
    TableDelta base;
    base.target = "S";
    if (rng.Bernoulli(0.4) && !live.empty()) {
      size_t idx = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      base.Add(live[idx], -1);
      live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
    } else {
      Tuple t{rng.UniformInt(0, 2), rng.UniformInt(-10, 10)};
      base.Add(t, 1);
      live.push_back(t);
    }
    auto delta = state->Fold(base, "MM");
    ASSERT_TRUE(delta.ok());
    ASSERT_TRUE(delta->ApplyTo(&materialized).ok());
    ASSERT_TRUE(base.ApplyTo(*catalog_.GetTable("S")).ok());
    auto full = EvaluateAggregate(*core_, MinMaxByB(),
                                  CatalogProvider(&catalog_), "MM");
    ASSERT_TRUE(full.ok());
    ASSERT_TRUE(materialized.ContentsEqual(*full)) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinMaxFoldProperty, ::testing::Range(1, 7));

TEST_F(AggregateTest, MinRejectsNonInt64Input) {
  AggregateSpec spec;
  spec.group_by = {"B"};
  spec.aggregates = {AggregateColumn{AggregateFn::kMin, "ZZ", "m"}};
  EXPECT_FALSE(spec.OutputSchema(core_->output_schema()).ok());
}

TEST(AggregateFnTest, Names) {
  EXPECT_STREQ(AggregateFnToString(AggregateFn::kCount), "COUNT");
  EXPECT_STREQ(AggregateFnToString(AggregateFn::kSum), "SUM");
  EXPECT_STREQ(AggregateFnToString(AggregateFn::kMin), "MIN");
  EXPECT_STREQ(AggregateFnToString(AggregateFn::kMax), "MAX");
}

}  // namespace
}  // namespace mvc

namespace mvc {
namespace {

TEST(AggregateOracleTest, DetectsCorruptedAggregateView) {
  // Build a legal run, then corrupt the aggregate view's final snapshot
  // and confirm the checker fires: the oracle evaluates aggregates, not
  // just SPJ views.
  SystemConfig config = PaperBaseConfig();
  config.initial_data["R"] = {Tuple{1, 2}};
  ViewDefinition agg_core = PaperV1();
  agg_core.name = "VAgg";
  config.views = {agg_core};
  AggregateSpec spec;
  spec.group_by = {"B"};
  spec.aggregates = {AggregateColumn{AggregateFn::kSum, "C", "total"}};
  config.aggregates["VAgg"] = spec;
  Injection inj;
  inj.at = 500;
  inj.source = "src0";
  inj.updates = {Update::Insert("src0", "S", Tuple{2, 3})};
  config.workload = {inj};

  auto system = WarehouseSystem::Build(std::move(config));
  ASSERT_TRUE(system.ok());
  (*system)->Run();
  ConsistencyChecker checker = (*system)->MakeChecker();
  ASSERT_TRUE(checker.CheckStrong((*system)->recorder()).ok());

  // Forge a recorder whose only commit carries a wrong SUM.
  ConsistencyRecorder forged;
  for (const auto& u : (*system)->recorder().updates()) {
    forged.OnUpdateNumbered(u.id, u.txn, u.numbered_at);
  }
  for (const auto& c : (*system)->recorder().commits()) {
    Catalog corrupted = c.view_snapshot.Clone();
    Table* vagg = *corrupted.GetTable("VAgg");
    ASSERT_TRUE(vagg->Delete(Tuple{2, 3}).ok());
    ASSERT_TRUE(vagg->Insert(Tuple{2, 999}).ok());  // wrong total
    forged.OnCommit(c.submitter, c.txn, corrupted, c.committed_at);
  }
  Status verdict = checker.CheckStrong(forged);
  EXPECT_TRUE(verdict.IsConsistencyViolation());
  EXPECT_NE(verdict.message().find("VAgg"), std::string::npos);
}

}  // namespace
}  // namespace mvc
