// Property sweeps: for randomized workloads across seeds, latencies,
// manager kinds, merge topologies, and submission policies, the system
// must satisfy the consistency level the theory promises.

#include <gtest/gtest.h>

#include "system/warehouse_system.h"
#include "workload/generator.h"

namespace mvc {
namespace {

struct SweepCase {
  std::string name;
  uint64_t seed;
  ManagerKind manager;
  SubmissionPolicy policy;
  size_t merge_processes;
  bool pruning;
  bool piggyback;
  TimeMicros latency_jitter;
  TimeMicros delta_cost;
  int updates_per_txn;
  double global_fraction;
  bool aggregate_first = false;  // turn V0 into an aggregate view
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  return info.param.name;
}

SystemConfig MakeConfig(const SweepCase& c) {
  WorkloadSpec spec;
  spec.seed = c.seed;
  spec.num_sources = 2;
  spec.relations_per_source = 2;
  spec.num_views = 5;
  spec.max_view_width = 3;
  spec.num_transactions = 40;
  spec.updates_per_transaction = c.updates_per_txn;
  spec.mean_interarrival = 800;
  spec.global_txn_fraction = c.global_fraction;
  auto config = GenerateScenario(spec);
  MVC_CHECK(config.ok()) << config.status().ToString();

  for (const ViewDefinition& def : config->views) {
    config->manager_kinds[def.name] = c.manager;
  }
  config->merge.policy = c.policy;
  config->num_merge_processes = c.merge_processes;
  config->integrator.relevance_pruning = c.pruning;
  config->integrator.piggyback_rel = c.piggyback;
  config->latency = LatencyModel::Uniform(200, c.latency_jitter);
  config->vm_options.delta_cost = c.delta_cost;
  config->strong_options.max_batch = 6;
  config->warehouse.apply_delay = 50;
  config->warehouse.apply_jitter = 2000;
  config->warehouse.seed = c.seed * 13 + 1;
  config->seed = c.seed * 7 + 3;

  if (c.aggregate_first) {
    // Make the first generated view an aggregate over its SPJ core:
    // group by the first output column, COUNT(*) and SUM over the last.
    auto bound = BoundView::Bind(config->views[0], config->schemas);
    MVC_CHECK(bound.ok()) << bound.status().ToString();
    const Schema& out = bound->output_schema();
    AggregateSpec spec;
    spec.group_by = {out.column(0).name};
    spec.aggregates = {
        AggregateColumn{AggregateFn::kCount, "", "n"},
        AggregateColumn{AggregateFn::kSum,
                        out.column(out.num_columns() - 1).name, "total"}};
    config->aggregates[config->views[0].name] = spec;
  }
  return std::move(*config);
}

class MvcPropertyTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(MvcPropertyTest, SatisfiesPromisedConsistencyLevel) {
  const SweepCase& c = GetParam();
  auto system = WarehouseSystem::Build(MakeConfig(c));
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  (*system)->Run();

  ConsistencyChecker checker = (*system)->MakeChecker();
  const ConsistencyRecorder& recorder = (*system)->recorder();

  if (c.aggregate_first) {
    // An aggregate manager in the mix caps the guarantee at strong.
    EXPECT_TRUE(checker.CheckStrong(recorder).ok())
        << checker.CheckStrong(recorder);
    EXPECT_GT(recorder.commits().size(), 0u);
    return;
  }
  switch (c.manager) {
    case ManagerKind::kComplete: {
      // Complete managers + SPA + non-batched submission: complete MVC.
      if (c.policy == SubmissionPolicy::kBatched) {
        EXPECT_TRUE(checker.CheckStrong(recorder).ok())
            << checker.CheckStrong(recorder);
      } else {
        EXPECT_TRUE(checker.CheckComplete(recorder).ok())
            << checker.CheckComplete(recorder);
      }
      break;
    }
    case ManagerKind::kStrong:
    case ManagerKind::kPeriodic:
    case ManagerKind::kCompleteN:
      EXPECT_TRUE(checker.CheckStrong(recorder).ok())
          << checker.CheckStrong(recorder);
      break;
    case ManagerKind::kConvergent:
      EXPECT_TRUE(checker.CheckConvergent(recorder).ok())
          << checker.CheckConvergent(recorder);
      break;
  }

  // Sanity: the run actually exercised the pipeline.
  EXPECT_GT(recorder.commits().size(), 0u);
  // Global-transaction parts merge into one numbered unit, so the count
  // always equals the number of generated transactions.
  EXPECT_EQ(recorder.updates().size(), 40u);
}

std::vector<SweepCase> BuildSweep() {
  std::vector<SweepCase> cases;
  int id = 0;
  auto add = [&](ManagerKind manager, SubmissionPolicy policy,
                 size_t merges, bool pruning, bool piggyback,
                 TimeMicros jitter, TimeMicros cost, int upt,
                 double global, uint64_t seed) {
    SweepCase c;
    c.name = "case" + std::to_string(id++);
    c.seed = seed;
    c.manager = manager;
    c.policy = policy;
    c.merge_processes = merges;
    c.pruning = pruning;
    c.piggyback = piggyback;
    c.latency_jitter = jitter;
    c.delta_cost = cost;
    c.updates_per_txn = upt;
    c.global_fraction = global;
    cases.push_back(c);
  };

  // Complete managers under every submission policy and seed spread.
  for (uint64_t seed : {1, 2, 3, 4, 5}) {
    add(ManagerKind::kComplete, SubmissionPolicy::kSequential, 1, true,
        false, 3000, 500, 1, 0.0, seed);
    add(ManagerKind::kComplete, SubmissionPolicy::kHoldDependents, 1, true,
        false, 3000, 500, 1, 0.0, seed + 10);
    add(ManagerKind::kComplete, SubmissionPolicy::kAnnotate, 1, true, false,
        3000, 500, 1, 0.0, seed + 20);
    add(ManagerKind::kComplete, SubmissionPolicy::kBatched, 1, true, false,
        3000, 500, 1, 0.0, seed + 30);
  }
  // Strong managers: heavy delta cost induces real batching.
  for (uint64_t seed : {1, 2, 3, 4, 5, 6, 7, 8}) {
    add(ManagerKind::kStrong, SubmissionPolicy::kHoldDependents, 1, true,
        false, 5000, 4000, 1, 0.0, seed + 40);
  }
  // Distributed merge.
  for (uint64_t seed : {1, 2, 3}) {
    add(ManagerKind::kComplete, SubmissionPolicy::kHoldDependents, 3, true,
        false, 3000, 500, 1, 0.0, seed + 50);
    add(ManagerKind::kStrong, SubmissionPolicy::kHoldDependents, 2, true,
        false, 3000, 2000, 1, 0.0, seed + 60);
  }
  // Pruning off, piggyback on.
  for (uint64_t seed : {1, 2, 3}) {
    add(ManagerKind::kComplete, SubmissionPolicy::kHoldDependents, 1, false,
        false, 3000, 500, 1, 0.0, seed + 70);
    add(ManagerKind::kComplete, SubmissionPolicy::kHoldDependents, 1, true,
        true, 3000, 500, 1, 0.0, seed + 80);
  }
  // Multi-update transactions (Section 6.2) and global transactions.
  for (uint64_t seed : {1, 2, 3}) {
    add(ManagerKind::kComplete, SubmissionPolicy::kHoldDependents, 1, true,
        false, 3000, 500, 3, 0.0, seed + 90);
    add(ManagerKind::kStrong, SubmissionPolicy::kHoldDependents, 1, true,
        false, 3000, 1500, 2, 0.3, seed + 100);
  }
  // Piggyback REL delivery combined with distributed merge.
  for (uint64_t seed : {1, 2, 3}) {
    add(ManagerKind::kComplete, SubmissionPolicy::kHoldDependents, 3, true,
        true, 4000, 500, 1, 0.0, seed + 140);
    add(ManagerKind::kStrong, SubmissionPolicy::kHoldDependents, 2, true,
        true, 4000, 2000, 1, 0.0, seed + 150);
  }
  // Aggregate view in the mix (complete and strong peers).
  for (uint64_t seed : {1, 2, 3}) {
    SweepCase c;
    c.name = "case" + std::to_string(id++);
    c.seed = seed + 160;
    c.manager = ManagerKind::kComplete;
    c.policy = SubmissionPolicy::kHoldDependents;
    c.merge_processes = 1;
    c.pruning = true;
    c.piggyback = false;
    c.latency_jitter = 3000;
    c.delta_cost = 500;
    c.updates_per_txn = 1;
    c.global_fraction = 0.0;
    c.aggregate_first = true;
    cases.push_back(c);
    SweepCase s2 = c;
    s2.name = "case" + std::to_string(id++);
    s2.seed = seed + 170;
    s2.manager = ManagerKind::kStrong;
    s2.delta_cost = 2000;
    cases.push_back(s2);
  }
  // Periodic / complete-N / convergent managers.
  for (uint64_t seed : {1, 2}) {
    add(ManagerKind::kPeriodic, SubmissionPolicy::kHoldDependents, 1, true,
        false, 2000, 300, 1, 0.0, seed + 110);
    add(ManagerKind::kCompleteN, SubmissionPolicy::kHoldDependents, 1, true,
        false, 2000, 300, 1, 0.0, seed + 120);
    add(ManagerKind::kConvergent, SubmissionPolicy::kHoldDependents, 1,
        true, false, 2000, 300, 1, 0.0, seed + 130);
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MvcPropertyTest,
                         ::testing::ValuesIn(BuildSweep()), CaseName);

}  // namespace
}  // namespace mvc
