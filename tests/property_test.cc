// Property sweeps: for randomized workloads across seeds, latencies,
// manager kinds, merge topologies, and submission policies, the system
// must satisfy the consistency level the theory promises.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "common/string_util.h"
#include "query/evaluator.h"
#include "system/warehouse_system.h"
#include "workload/generator.h"

namespace mvc {
namespace {

struct SweepCase {
  std::string name;
  uint64_t seed;
  ManagerKind manager;
  SubmissionPolicy policy;
  size_t merge_processes;
  bool pruning;
  bool piggyback;
  TimeMicros latency_jitter;
  TimeMicros delta_cost;
  int updates_per_txn;
  double global_fraction;
  bool aggregate_first = false;  // turn V0 into an aggregate view
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  return info.param.name;
}

SystemConfig MakeConfig(const SweepCase& c) {
  WorkloadSpec spec;
  spec.seed = c.seed;
  spec.num_sources = 2;
  spec.relations_per_source = 2;
  spec.num_views = 5;
  spec.max_view_width = 3;
  spec.num_transactions = 40;
  spec.updates_per_transaction = c.updates_per_txn;
  spec.mean_interarrival = 800;
  spec.global_txn_fraction = c.global_fraction;
  auto config = GenerateScenario(spec);
  MVC_CHECK(config.ok()) << config.status().ToString();

  for (const ViewDefinition& def : config->views) {
    config->manager_kinds[def.name] = c.manager;
  }
  config->merge.policy = c.policy;
  config->num_merge_processes = c.merge_processes;
  config->integrator.relevance_pruning = c.pruning;
  config->integrator.piggyback_rel = c.piggyback;
  config->latency = LatencyModel::Uniform(200, c.latency_jitter);
  config->vm_options.delta_cost = c.delta_cost;
  config->strong_options.max_batch = 6;
  config->warehouse.apply_delay = 50;
  config->warehouse.apply_jitter = 2000;
  config->warehouse.seed = c.seed * 13 + 1;
  config->seed = c.seed * 7 + 3;

  if (c.aggregate_first) {
    // Make the first generated view an aggregate over its SPJ core:
    // group by the first output column, COUNT(*) and SUM over the last.
    auto bound = BoundView::Bind(config->views[0], config->schemas);
    MVC_CHECK(bound.ok()) << bound.status().ToString();
    const Schema& out = bound->output_schema();
    AggregateSpec spec;
    spec.group_by = {out.column(0).name};
    spec.aggregates = {
        AggregateColumn{AggregateFn::kCount, "", "n"},
        AggregateColumn{AggregateFn::kSum,
                        out.column(out.num_columns() - 1).name, "total"}};
    config->aggregates[config->views[0].name] = spec;
  }
  return std::move(*config);
}

class MvcPropertyTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(MvcPropertyTest, SatisfiesPromisedConsistencyLevel) {
  const SweepCase& c = GetParam();
  auto system = WarehouseSystem::Build(MakeConfig(c));
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  (*system)->Run();

  ConsistencyChecker checker = (*system)->MakeChecker();
  const ConsistencyRecorder& recorder = (*system)->recorder();

  if (c.aggregate_first) {
    // An aggregate manager in the mix caps the guarantee at strong.
    EXPECT_TRUE(checker.CheckStrong(recorder).ok())
        << checker.CheckStrong(recorder);
    EXPECT_GT(recorder.commits().size(), 0u);
    return;
  }
  switch (c.manager) {
    case ManagerKind::kComplete: {
      // Complete managers + SPA + non-batched submission: complete MVC.
      if (c.policy == SubmissionPolicy::kBatched) {
        EXPECT_TRUE(checker.CheckStrong(recorder).ok())
            << checker.CheckStrong(recorder);
      } else {
        EXPECT_TRUE(checker.CheckComplete(recorder).ok())
            << checker.CheckComplete(recorder);
      }
      break;
    }
    case ManagerKind::kStrong:
    case ManagerKind::kPeriodic:
    case ManagerKind::kCompleteN:
      EXPECT_TRUE(checker.CheckStrong(recorder).ok())
          << checker.CheckStrong(recorder);
      break;
    case ManagerKind::kConvergent:
      EXPECT_TRUE(checker.CheckConvergent(recorder).ok())
          << checker.CheckConvergent(recorder);
      break;
  }

  // Sanity: the run actually exercised the pipeline.
  EXPECT_GT(recorder.commits().size(), 0u);
  // Global-transaction parts merge into one numbered unit, so the count
  // always equals the number of generated transactions.
  EXPECT_EQ(recorder.updates().size(), 40u);
}

std::vector<SweepCase> BuildSweep() {
  std::vector<SweepCase> cases;
  int id = 0;
  auto add = [&](ManagerKind manager, SubmissionPolicy policy,
                 size_t merges, bool pruning, bool piggyback,
                 TimeMicros jitter, TimeMicros cost, int upt,
                 double global, uint64_t seed) {
    SweepCase c;
    c.name = "case" + std::to_string(id++);
    c.seed = seed;
    c.manager = manager;
    c.policy = policy;
    c.merge_processes = merges;
    c.pruning = pruning;
    c.piggyback = piggyback;
    c.latency_jitter = jitter;
    c.delta_cost = cost;
    c.updates_per_txn = upt;
    c.global_fraction = global;
    cases.push_back(c);
  };

  // Complete managers under every submission policy and seed spread.
  for (uint64_t seed : {1, 2, 3, 4, 5}) {
    add(ManagerKind::kComplete, SubmissionPolicy::kSequential, 1, true,
        false, 3000, 500, 1, 0.0, seed);
    add(ManagerKind::kComplete, SubmissionPolicy::kHoldDependents, 1, true,
        false, 3000, 500, 1, 0.0, seed + 10);
    add(ManagerKind::kComplete, SubmissionPolicy::kAnnotate, 1, true, false,
        3000, 500, 1, 0.0, seed + 20);
    add(ManagerKind::kComplete, SubmissionPolicy::kBatched, 1, true, false,
        3000, 500, 1, 0.0, seed + 30);
  }
  // Strong managers: heavy delta cost induces real batching.
  for (uint64_t seed : {1, 2, 3, 4, 5, 6, 7, 8}) {
    add(ManagerKind::kStrong, SubmissionPolicy::kHoldDependents, 1, true,
        false, 5000, 4000, 1, 0.0, seed + 40);
  }
  // Distributed merge.
  for (uint64_t seed : {1, 2, 3}) {
    add(ManagerKind::kComplete, SubmissionPolicy::kHoldDependents, 3, true,
        false, 3000, 500, 1, 0.0, seed + 50);
    add(ManagerKind::kStrong, SubmissionPolicy::kHoldDependents, 2, true,
        false, 3000, 2000, 1, 0.0, seed + 60);
  }
  // Pruning off, piggyback on.
  for (uint64_t seed : {1, 2, 3}) {
    add(ManagerKind::kComplete, SubmissionPolicy::kHoldDependents, 1, false,
        false, 3000, 500, 1, 0.0, seed + 70);
    add(ManagerKind::kComplete, SubmissionPolicy::kHoldDependents, 1, true,
        true, 3000, 500, 1, 0.0, seed + 80);
  }
  // Multi-update transactions (Section 6.2) and global transactions.
  for (uint64_t seed : {1, 2, 3}) {
    add(ManagerKind::kComplete, SubmissionPolicy::kHoldDependents, 1, true,
        false, 3000, 500, 3, 0.0, seed + 90);
    add(ManagerKind::kStrong, SubmissionPolicy::kHoldDependents, 1, true,
        false, 3000, 1500, 2, 0.3, seed + 100);
  }
  // Piggyback REL delivery combined with distributed merge.
  for (uint64_t seed : {1, 2, 3}) {
    add(ManagerKind::kComplete, SubmissionPolicy::kHoldDependents, 3, true,
        true, 4000, 500, 1, 0.0, seed + 140);
    add(ManagerKind::kStrong, SubmissionPolicy::kHoldDependents, 2, true,
        true, 4000, 2000, 1, 0.0, seed + 150);
  }
  // Aggregate view in the mix (complete and strong peers).
  for (uint64_t seed : {1, 2, 3}) {
    SweepCase c;
    c.name = "case" + std::to_string(id++);
    c.seed = seed + 160;
    c.manager = ManagerKind::kComplete;
    c.policy = SubmissionPolicy::kHoldDependents;
    c.merge_processes = 1;
    c.pruning = true;
    c.piggyback = false;
    c.latency_jitter = 3000;
    c.delta_cost = 500;
    c.updates_per_txn = 1;
    c.global_fraction = 0.0;
    c.aggregate_first = true;
    cases.push_back(c);
    SweepCase s2 = c;
    s2.name = "case" + std::to_string(id++);
    s2.seed = seed + 170;
    s2.manager = ManagerKind::kStrong;
    s2.delta_cost = 2000;
    cases.push_back(s2);
  }
  // Periodic / complete-N / convergent managers.
  for (uint64_t seed : {1, 2}) {
    add(ManagerKind::kPeriodic, SubmissionPolicy::kHoldDependents, 1, true,
        false, 2000, 300, 1, 0.0, seed + 110);
    add(ManagerKind::kCompleteN, SubmissionPolicy::kHoldDependents, 1, true,
        false, 2000, 300, 1, 0.0, seed + 120);
    add(ManagerKind::kConvergent, SubmissionPolicy::kHoldDependents, 1,
        true, false, 2000, 300, 1, 0.0, seed + 130);
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MvcPropertyTest,
                         ::testing::ValuesIn(BuildSweep()), CaseName);

// ---------------------------------------------------------------------------
// Cross-shard ingest sweep.
//
// Two independent source clusters; inside each cluster the views join
// relations hosted by BOTH of its sources (intertwined view groups), so
// the shard planner must co-locate each cluster onto one integrator
// shard and the exact partition yields one merge process per cluster.
// Randomized single-source and cluster-local global transactions flow
// through both shards concurrently while a reader pool observes the
// warehouse. Every reader observation must equal the oracle catalog at
// exactly its as_of_commit — on the simulator and on real threads, with
// group commit on and off.

struct CrossShardCase {
  std::string name;
  uint64_t seed;
  bool use_threads;
  bool group_commit;
};

std::string CrossShardCaseName(
    const ::testing::TestParamInfo<CrossShardCase>& info) {
  return info.param.name;
}

/// Two-relation join view with an explicit two-column projection.
ViewDefinition JoinView(const char* name, const char* lr, const char* lc,
                        const char* rr, const char* rc) {
  ViewDefinition def;
  def.name = name;
  def.relations = {lr, rr};
  def.predicate = Predicate::ColEqCol(ColumnRef{lr, lc}, ColumnRef{rr, rc});
  def.projection = {ColumnRef{lr, lc}, ColumnRef{rr, rc}};
  return def;
}

/// Builds the two-cluster scenario; `*numbered_units` receives the
/// number of units the integrators will sequence (global transactions
/// merge into one unit each).
SystemConfig MakeCrossShardConfig(const CrossShardCase& c,
                                  size_t* numbered_units) {
  SystemConfig config;
  config.sources["srcA0"] = {"R", "S"};
  config.sources["srcA1"] = {"T"};
  config.sources["srcB0"] = {"U", "W"};
  config.sources["srcB1"] = {"X"};
  config.schemas["R"] = Schema::AllInt64({"A", "B"});
  config.schemas["S"] = Schema::AllInt64({"B", "C"});
  config.schemas["T"] = Schema::AllInt64({"C", "D"});
  config.schemas["U"] = Schema::AllInt64({"E", "F"});
  config.schemas["W"] = Schema::AllInt64({"F", "G"});
  config.schemas["X"] = Schema::AllInt64({"G", "H"});
  config.initial_data["R"] = {Tuple{1, 2}};
  config.initial_data["T"] = {Tuple{3, 4}};
  config.initial_data["U"] = {Tuple{1, 2}};
  config.initial_data["X"] = {Tuple{3, 4}};
  // Cluster A: VA1 spans srcA0's relations, VA2 spans srcA0 and srcA1
  // (S is shared, so both views land in one merge group). Cluster B is
  // the mirror image over U/W/X.
  config.views = {JoinView("VA1", "R", "B", "S", "B"),
                  JoinView("VA2", "S", "C", "T", "C"),
                  JoinView("VB1", "U", "F", "W", "F"),
                  JoinView("VB2", "W", "G", "X", "G")};

  config.ingest.num_shards = 2;
  config.ingest.fanout_merge = true;
  config.ingest.group_commit.enabled = c.group_commit;
  config.ingest.group_commit.max_batch = 4;
  config.ingest.group_commit.max_delay_us = 3000;
  config.merge.policy = SubmissionPolicy::kHoldDependents;
  config.latency = LatencyModel::Uniform(200, 3000);
  config.warehouse.apply_delay = 50;
  config.warehouse.apply_jitter = 2000;
  config.warehouse.seed = c.seed * 13 + 1;
  config.seed = c.seed * 7 + 3;
  config.use_threads = c.use_threads;

  // Randomized workload: mostly single-source transactions on a random
  // relation; a fraction are global transactions joining both sources
  // of one cluster (the shard plan keeps the participants co-located).
  const std::map<std::string, std::vector<std::string>> hosted = {
      {"srcA0", {"R", "S"}},
      {"srcA1", {"T"}},
      {"srcB0", {"U", "W"}},
      {"srcB1", {"X"}}};
  const std::vector<std::string> source_names = {"srcA0", "srcA1", "srcB0",
                                                 "srcB1"};
  Rng rng(c.seed * 31 + 7);
  TimeMicros at = 0;
  int64_t next_global = 0;
  *numbered_units = 0;
  auto random_insert = [&](const std::string& source) {
    const std::vector<std::string>& relations = hosted.at(source);
    const std::string& relation = relations[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(relations.size()) - 1))];
    return Update::Insert(source, relation,
                          Tuple{rng.UniformInt(0, 4), rng.UniformInt(0, 4)});
  };
  for (int t = 0; t < 32; ++t) {
    at += static_cast<TimeMicros>(rng.Exponential(800.0));
    ++*numbered_units;
    if (rng.Bernoulli(0.25)) {
      // Cluster-local global transaction: one part per source.
      const bool cluster_a = rng.Bernoulli(0.5);
      ++next_global;
      for (const char* source :
           {cluster_a ? "srcA0" : "srcB0", cluster_a ? "srcA1" : "srcB1"}) {
        Injection part;
        part.at = at;
        part.source = source;
        part.updates = {random_insert(source)};
        part.global_txn_id = next_global;
        part.global_participants = 2;
        config.workload.push_back(std::move(part));
      }
      continue;
    }
    Injection inj;
    inj.at = at;
    inj.source = source_names[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(source_names.size()) - 1))];
    inj.updates = {random_insert(inj.source)};
    config.workload.push_back(std::move(inj));
  }
  return config;
}

class CrossShardPropertyTest
    : public ::testing::TestWithParam<CrossShardCase> {};

TEST_P(CrossShardPropertyTest, ReadersObserveOracleStatesAcrossShards) {
  const CrossShardCase& c = GetParam();
  size_t numbered_units = 0;
  auto system =
      WarehouseSystem::Build(MakeCrossShardConfig(c, &numbered_units));
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  ASSERT_EQ((*system)->integrator_shards().size(), 2u);
  ASSERT_EQ((*system)->merges().size(), 2u);

  ReaderPoolOptions pool;
  pool.num_readers = 3;
  pool.reads_per_reader = 10;
  pool.mean_interval_us = 2500.0;
  pool.seed = c.seed;
  std::vector<WarehouseReader*> readers = (*system)->AttachReaderPool(pool);
  (*system)->Run();

  const ConsistencyRecorder& recorder = (*system)->recorder();
  ConsistencyChecker checker = (*system)->MakeChecker();
  EXPECT_TRUE(checker.CheckComplete(recorder).ok())
      << checker.CheckComplete(recorder);
  EXPECT_EQ(recorder.updates().size(), numbered_units);
  EXPECT_EQ((*system)->tickets_issued(),
            static_cast<int64_t>(numbered_units));

  // Oracle catalog at commit 0: every view evaluated over the initial
  // base state. Commits >= 1 come from the recorder's snapshots.
  std::map<std::string, Table> initial;
  TableProviderFn provider = CatalogProvider(&(*system)->initial_base());
  for (const BoundView& view : (*system)->bound_views()) {
    auto table = ViewEvaluator::Evaluate(view, provider);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    initial.emplace(view.name(), *std::move(table));
  }

  size_t checked = 0;
  for (const WarehouseReader* reader : readers) {
    ASSERT_EQ(reader->observations().size(), pool.reads_per_reader);
    for (const auto& obs : reader->observations()) {
      ASSERT_TRUE(obs.ok()) << obs.error;
      ASSERT_EQ(obs.snapshots.size(), 4u);
      ASSERT_GE(obs.as_of_commit, 0);
      ASSERT_LE(obs.as_of_commit,
                static_cast<int64_t>(recorder.commits().size()));
      for (const Table& got : obs.snapshots) {
        if (obs.as_of_commit == 0) {
          auto it = initial.find(got.name());
          ASSERT_NE(it, initial.end()) << "unknown view " << got.name();
          EXPECT_TRUE(got.ContentsEqual(it->second))
              << c.name << ": view " << got.name()
              << " torn at commit 0.\nExpected:\n"
              << it->second.ToString() << "Actual:\n"
              << got.ToString();
        } else {
          const Catalog& oracle =
              recorder.commits()[static_cast<size_t>(obs.as_of_commit) - 1]
                  .view_snapshot;
          auto want = oracle.GetTable(got.name());
          ASSERT_TRUE(want.ok()) << "unknown view " << got.name();
          EXPECT_TRUE(got.ContentsEqual(**want))
              << c.name << ": view " << got.name() << " torn at commit "
              << obs.as_of_commit << ".\nExpected:\n"
              << (*want)->ToString() << "Actual:\n"
              << got.ToString();
        }
        ++checked;
      }
    }
  }
  EXPECT_EQ(checked, pool.num_readers * pool.reads_per_reader * 4u);
}

std::vector<CrossShardCase> BuildCrossShardSweep() {
  std::vector<CrossShardCase> cases;
  for (uint64_t seed : {1, 2, 3}) {
    for (bool threads : {false, true}) {
      for (bool group_commit : {false, true}) {
        CrossShardCase c;
        c.name = StrCat("s", seed, threads ? "_thread" : "_sim",
                        group_commit ? "_gc" : "_solo");
        c.seed = seed;
        c.use_threads = threads;
        c.group_commit = group_commit;
        cases.push_back(std::move(c));
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(CrossShard, CrossShardPropertyTest,
                         ::testing::ValuesIn(BuildCrossShardSweep()),
                         CrossShardCaseName);

}  // namespace
}  // namespace mvc
