// Tests for the view-manager implementations: per-update action lists
// (complete), Strobe-style batching (strong), complete-N bounds,
// periodic refresh, and convergent splitting.

#include <gtest/gtest.h>

#include "net/sim_runtime.h"
#include "storage/id_registry.h"
#include "viewmgr/complete_vm.h"
#include "viewmgr/convergent_vm.h"
#include "viewmgr/periodic_vm.h"
#include "viewmgr/strong_vm.h"
#include "workload/paper_examples.h"

namespace mvc {
namespace {

std::map<std::string, Schema> PaperSchemas() {
  return {{"R", Schema::AllInt64({"A", "B"})},
          {"S", Schema::AllInt64({"B", "C"})},
          {"T", Schema::AllInt64({"C", "D"})},
          {"Q", Schema::AllInt64({"D", "E"})}};
}

/// Shared name table: view V1 (id 0) and the paper's base relations.
const IdRegistry* TestRegistry() {
  static const IdRegistry* reg = [] {
    auto* r = new IdRegistry();
    r->InternView("V1");
    for (const char* rel : {"R", "S", "T", "Q"}) r->InternRelation(rel);
    return r;
  }();
  return reg;
}

/// Captures action lists sent to the merge process.
class MergeSink : public Process {
 public:
  using Process::Process;
  void OnMessage(ProcessId, MessagePtr msg) override {
    ASSERT_EQ(msg->kind, Message::Kind::kActionList);
    als.push_back(static_cast<ActionListMsg*>(msg.get())->al);
  }
  std::vector<ActionList> als;
};

/// Sends scripted UpdateMsgs (as the integrator would) at given times.
class UpdateFeeder : public Process {
 public:
  UpdateFeeder(std::string name, ProcessId vm)
      : Process(std::move(name)), vm_(vm) {}

  void Add(UpdateId id, Update update, TimeMicros at) {
    auto msg = std::make_unique<UpdateMsg>();
    msg->update_id = id;
    msg->txn.local_seq = id;
    msg->txn.updates = {std::move(update)};
    script_.emplace_back(at, std::move(msg));
  }

  void OnStart() override {
    for (auto& [at, msg] : script_) SendAfter(vm_, std::move(msg), at);
  }
  void OnMessage(ProcessId, MessagePtr) override {}

 private:
  ProcessId vm_;
  std::vector<std::pair<TimeMicros, std::unique_ptr<UpdateMsg>>> script_;
};

class ViewMgrTest : public ::testing::Test {
 protected:
  BoundView BindV1() {
    auto bound = BoundView::Bind(PaperV1(), PaperSchemas());
    MVC_CHECK(bound.ok());
    return std::move(bound).value();
  }

  /// Wires vm -> sink, registers R and S replicas (R seeded with [1,2]).
  void Wire(ViewManagerBase* vm) {
    Table r("R", Schema::AllInt64({"A", "B"}));
    ASSERT_TRUE(r.Insert(Tuple{1, 2}).ok());
    ASSERT_TRUE(
        vm->RegisterBaseRelation("R", Schema::AllInt64({"A", "B"}), &r).ok());
    ASSERT_TRUE(
        vm->RegisterBaseRelation("S", Schema::AllInt64({"B", "C"})).ok());
    vm->SetViewId(TestRegistry()->FindView("V1").value());
    ProcessId vm_pid = runtime_.Register(vm);
    ProcessId sink_pid = runtime_.Register(&sink_);
    vm->SetMerge(sink_pid);
    feeder_ = std::make_unique<UpdateFeeder>("feeder", vm_pid);
    runtime_.Register(feeder_.get());
  }

  SimRuntime runtime_{1};
  MergeSink sink_{"merge"};
  std::unique_ptr<UpdateFeeder> feeder_;
};

TEST_F(ViewMgrTest, CompleteVmEmitsOneAlPerUpdateInOrder) {
  BoundView view = BindV1();
  CompleteViewManager vm("vm-V1", &view);
  Wire(&vm);
  feeder_->Add(1, Update::Insert("src0", "S", Tuple{2, 3}), 0);
  feeder_->Add(2, Update::Insert("src0", "S", Tuple{2, 4}), 10);
  feeder_->Add(3, Update::Delete("src0", "S", Tuple{2, 3}), 20);
  runtime_.Run();

  ASSERT_EQ(sink_.als.size(), 3u);
  EXPECT_EQ(sink_.als[0].update, 1);
  EXPECT_EQ(sink_.als[0].first_update, 1);
  ASSERT_EQ(sink_.als[0].delta.rows.size(), 1u);
  EXPECT_EQ(sink_.als[0].delta.rows[0].tuple, (Tuple{1, 2, 3}));
  EXPECT_EQ(sink_.als[0].delta.rows[0].count, 1);
  EXPECT_EQ(sink_.als[1].update, 2);
  EXPECT_EQ(sink_.als[2].update, 3);
  EXPECT_EQ(sink_.als[2].delta.rows[0].count, -1);
  EXPECT_EQ(vm.level(), ConsistencyLevel::kComplete);
  EXPECT_EQ(vm.updates_received(), 3);
  EXPECT_EQ(vm.action_lists_sent(), 3);
}

TEST_F(ViewMgrTest, CompleteVmSendsEmptyActionLists) {
  BoundView view = BindV1();
  CompleteViewManager vm("vm-V1", &view);
  Wire(&vm);
  // No R tuple with B=9: the delta is empty, but the AL must still go
  // out (Section 3.3).
  feeder_->Add(1, Update::Insert("src0", "S", Tuple{9, 9}), 0);
  runtime_.Run();
  ASSERT_EQ(sink_.als.size(), 1u);
  EXPECT_TRUE(sink_.als[0].delta.empty());
}

TEST_F(ViewMgrTest, CompleteVmModifyProducesPairedDelta) {
  BoundView view = BindV1();
  CompleteViewManager vm("vm-V1", &view);
  Wire(&vm);
  feeder_->Add(1, Update::Insert("src0", "S", Tuple{2, 3}), 0);
  feeder_->Add(2, Update::Modify("src0", "S", Tuple{2, 3}, Tuple{2, 7}), 10);
  runtime_.Run();
  ASSERT_EQ(sink_.als.size(), 2u);
  ASSERT_EQ(sink_.als[1].delta.rows.size(), 2u);
  EXPECT_EQ(sink_.als[1].delta.rows[0].count, -1);
  EXPECT_EQ(sink_.als[1].delta.rows[0].tuple, (Tuple{1, 2, 3}));
  EXPECT_EQ(sink_.als[1].delta.rows[1].count, 1);
  EXPECT_EQ(sink_.als[1].delta.rows[1].tuple, (Tuple{1, 2, 7}));
}

TEST_F(ViewMgrTest, StrongVmBatchesWhileBusy) {
  BoundView view = BindV1();
  StrongViewManagerOptions options;
  options.base.delta_cost = 100000;  // 100ms per update
  StrongViewManager vm("vm-V1", &view, options);
  Wire(&vm);
  // U1 starts immediately; U2 and U3 arrive while the manager is busy
  // and are batched into one AL labelled U3.
  feeder_->Add(1, Update::Insert("src0", "S", Tuple{2, 3}), 0);
  feeder_->Add(2, Update::Insert("src0", "S", Tuple{2, 4}), 10);
  feeder_->Add(3, Update::Insert("src0", "S", Tuple{2, 5}), 20);
  runtime_.Run();

  ASSERT_EQ(sink_.als.size(), 2u);
  EXPECT_EQ(sink_.als[0].update, 1);
  EXPECT_EQ(sink_.als[0].covered, (std::vector<UpdateId>{1}));
  EXPECT_EQ(sink_.als[1].update, 3);
  EXPECT_EQ(sink_.als[1].first_update, 2);
  EXPECT_EQ(sink_.als[1].covered, (std::vector<UpdateId>{2, 3}));
  EXPECT_EQ(sink_.als[1].delta.rows.size(), 2u);
  EXPECT_EQ(vm.max_batch_seen(), 2u);
  EXPECT_EQ(vm.level(), ConsistencyLevel::kStrong);
}

TEST_F(ViewMgrTest, StrongVmBatchDeltaTelescopesCorrectly) {
  BoundView view = BindV1();
  StrongViewManagerOptions options;
  options.base.delta_cost = 100000;
  StrongViewManager vm("vm-V1", &view, options);
  Wire(&vm);
  // Insert then delete of the same tuple inside one batch nets to zero.
  feeder_->Add(1, Update::Insert("src0", "S", Tuple{9, 1}), 0);  // no join
  feeder_->Add(2, Update::Insert("src0", "S", Tuple{2, 4}), 10);
  feeder_->Add(3, Update::Delete("src0", "S", Tuple{2, 4}), 20);
  runtime_.Run();
  ASSERT_EQ(sink_.als.size(), 2u);
  EXPECT_TRUE(sink_.als[1].delta.empty());
  EXPECT_EQ(sink_.als[1].covered, (std::vector<UpdateId>{2, 3}));
}

TEST_F(ViewMgrTest, CompleteNVmWaitsForFullBatches) {
  BoundView view = BindV1();
  StrongViewManagerOptions options;
  options.min_batch = 2;
  options.max_batch = 2;
  options.flush_timeout = 500000;
  StrongViewManager vm("vm-V1", &view, options);
  Wire(&vm);
  for (UpdateId i = 1; i <= 5; ++i) {
    feeder_->Add(i, Update::Insert("src0", "S", Tuple{2, i}),
                 (i - 1) * 10);
  }
  runtime_.Run();
  // 5 updates -> batches {1,2}, {3,4}, and the flushed partial {5}.
  ASSERT_EQ(sink_.als.size(), 3u);
  EXPECT_EQ(sink_.als[0].covered, (std::vector<UpdateId>{1, 2}));
  EXPECT_EQ(sink_.als[1].covered, (std::vector<UpdateId>{3, 4}));
  EXPECT_EQ(sink_.als[2].covered, (std::vector<UpdateId>{5}));
}

TEST_F(ViewMgrTest, PeriodicVmEmitsReplaceAllCoveringTheInterval) {
  BoundView view = BindV1();
  PeriodicViewManagerOptions options;
  options.period = 50000;
  PeriodicViewManager vm("vm-V1", &view, options);
  Wire(&vm);
  feeder_->Add(1, Update::Insert("src0", "S", Tuple{2, 3}), 0);
  feeder_->Add(2, Update::Insert("src0", "S", Tuple{2, 4}), 10);
  runtime_.Run();

  ASSERT_EQ(sink_.als.size(), 1u);
  const ActionList& al = sink_.als[0];
  EXPECT_TRUE(al.replace_all);
  EXPECT_EQ(al.covered, (std::vector<UpdateId>{1, 2}));
  EXPECT_EQ(al.update, 2);
  // Full image: both S tuples join R's [1,2].
  EXPECT_EQ(al.delta.rows.size(), 2u);
  EXPECT_EQ(vm.refreshes(), 1);
  EXPECT_EQ(vm.level(), ConsistencyLevel::kStrong);
}

TEST_F(ViewMgrTest, PeriodicVmTimerParksWhenIdleAndRestarts) {
  BoundView view = BindV1();
  PeriodicViewManagerOptions options;
  options.period = 50000;
  options.max_idle_periods = 2;
  PeriodicViewManager vm("vm-V1", &view, options);
  Wire(&vm);
  // A late update after the timer parked must still be refreshed.
  feeder_->Add(1, Update::Insert("src0", "S", Tuple{2, 3}), 500000);
  runtime_.Run();
  ASSERT_EQ(sink_.als.size(), 1u);
  EXPECT_EQ(sink_.als[0].covered, (std::vector<UpdateId>{1}));
}

TEST_F(ViewMgrTest, ConvergentVmSplitsButPreservesNetDelta) {
  BoundView view = BindV1();
  ConvergentViewManagerOptions options;
  options.max_split = 3;
  ConvergentViewManager vm("vm-V1", &view, options);
  Wire(&vm);
  for (UpdateId i = 1; i <= 4; ++i) {
    feeder_->Add(i, Update::Insert("src0", "S", Tuple{2, i}), 0);
  }
  runtime_.Run();

  ASSERT_GE(sink_.als.size(), 1u);
  TableDelta net;
  net.target = "V1";
  for (const ActionList& al : sink_.als) {
    EXPECT_EQ(vm.level(), ConsistencyLevel::kConvergent);
    for (const DeltaRow& row : al.delta.rows) {
      net.rows.push_back(row);
    }
  }
  net.Normalize();
  EXPECT_EQ(net.rows.size(), 4u);
  for (const DeltaRow& row : net.rows) EXPECT_EQ(row.count, 1);
}

TEST_F(ViewMgrTest, RegisterForeignRelationFails) {
  BoundView view = BindV1();
  CompleteViewManager vm("vm-V1", &view);
  EXPECT_TRUE(vm.RegisterBaseRelation("Q", Schema::AllInt64({"D", "E"}))
                  .IsInvalidArgument());
}

TEST_F(ViewMgrTest, FilteredReplicaSkipsNonQualifyingTuples) {
  // A view with selection S.C < 10: the replica only keeps qualifying
  // tuples, and a modify across the boundary is handled.
  ViewDefinition def = PaperV1();
  def.name = "V1";
  def.predicate = Predicate::And(
      {Predicate::ColEqCol(ColumnRef{"R", "B"}, ColumnRef{"S", "B"}),
       Predicate::ColCmpConst(CompareOp::kLt, ColumnRef{"S", "C"},
                              Value(10))});
  auto bound = BoundView::Bind(def, PaperSchemas());
  ASSERT_TRUE(bound.ok());
  CompleteViewManager vm("vm-V1", &*bound);
  Wire(&vm);
  feeder_->Add(1, Update::Insert("src0", "S", Tuple{2, 50}), 0);   // out
  feeder_->Add(2, Update::Modify("src0", "S", Tuple{2, 50}, Tuple{2, 5}),
               10);                                                // in
  feeder_->Add(3, Update::Delete("src0", "S", Tuple{2, 5}), 20);   // out
  runtime_.Run();

  ASSERT_EQ(sink_.als.size(), 3u);
  EXPECT_TRUE(sink_.als[0].delta.empty());
  ASSERT_EQ(sink_.als[1].delta.rows.size(), 1u);
  EXPECT_EQ(sink_.als[1].delta.rows[0].count, 1);
  ASSERT_EQ(sink_.als[2].delta.rows.size(), 1u);
  EXPECT_EQ(sink_.als[2].delta.rows[0].count, -1);
}

TEST_F(ViewMgrTest, QueryRoundDelaysButDoesNotChangeActions) {
  // With query rounds enabled the VM round-trips to its sources before
  // emitting; contents are unchanged, latency grows.
  BoundView view = BindV1();

  SourceProcess src0("src0", SourceOptions{.query_delay = 5000});
  src0.SetRegistry(TestRegistry());
  ASSERT_TRUE(src0.CreateTable("R", Schema::AllInt64({"A", "B"})).ok());
  ASSERT_TRUE(src0.CreateTable("S", Schema::AllInt64({"B", "C"})).ok());
  ProcessId src_pid = runtime_.Register(&src0);

  ViewManagerOptions options;
  options.issue_query_round = true;
  CompleteViewManager vm("vm-V1", &view, options);
  Wire(&vm);
  vm.SetSourceForRelation("R", TestRegistry()->FindRelation("R").value(),
                          src_pid);
  vm.SetSourceForRelation("S", TestRegistry()->FindRelation("S").value(),
                          src_pid);
  feeder_->Add(1, Update::Insert("src0", "S", Tuple{2, 3}), 0);
  runtime_.Run();

  ASSERT_EQ(sink_.als.size(), 1u);
  ASSERT_EQ(sink_.als[0].delta.rows.size(), 1u);
  EXPECT_EQ(sink_.als[0].delta.rows[0].tuple, (Tuple{1, 2, 3}));
  // Two query answers, each delayed 5ms, were required first.
  EXPECT_GE(runtime_.Now(), 5000);
}

}  // namespace
}  // namespace mvc
