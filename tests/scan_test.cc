// The production read tier end to end: the columnar scan executor
// against its flat-Table oracle (randomized property sweep over every
// query shape), pinned-snapshot stability, the QueryViewMsg serve path
// with admission control, and the Zipf draw that skews the simulated
// reader pool.
//
// The load-bearing property: ExecuteScan over a sealed version's
// columnar chunks and ExecuteScanOnTable over the same version
// materialized flat must agree row for row — same rows in the same
// deterministic order, same matched_count, same rows_scanned — for any
// query, on any retained version, on both runtimes.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "compact/chunk_squash.h"
#include "query/scan.h"
#include "storage/versioned_store.h"
#include "system/warehouse_system.h"
#include "workload/generator.h"

namespace mvc {
namespace {

Schema TwoCol() { return Schema::AllInt64({"A", "B"}); }

/// Random predicate over columns A/B: comparison leaves (sometimes with
/// the constant on the left, exercising the executor's operand mirror)
/// combined with AND/OR/NOT up to the given depth.
Predicate RandomPredicate(Rng* rng, int depth) {
  if (depth <= 0 || rng->Bernoulli(0.4)) {
    const CompareOp op = static_cast<CompareOp>(rng->UniformInt(0, 5));
    const ColumnRef col{"", rng->Bernoulli(0.5) ? "A" : "B"};
    const Value constant{rng->UniformInt(0, 60)};
    if (rng->Bernoulli(0.25)) {
      return Predicate::Compare(op, Predicate::Operand::Const(constant),
                                Predicate::Operand::Col(col));
    }
    return Predicate::ColCmpConst(op, col, constant);
  }
  switch (rng->UniformInt(0, 2)) {
    case 0:
      return Predicate::And(
          {RandomPredicate(rng, depth - 1), RandomPredicate(rng, depth - 1)});
    case 1:
      return Predicate::Or(
          {RandomPredicate(rng, depth - 1), RandomPredicate(rng, depth - 1)});
    default:
      return Predicate::Not(RandomPredicate(rng, depth - 1));
  }
}

/// A random query of any kind, valid against TwoCol().
ScanQuery RandomQuery(Rng* rng, const std::vector<Row>& sample) {
  switch (rng->UniformInt(0, 4)) {
    case 0: {  // point: half existing tuples, half arbitrary
      if (!sample.empty() && rng->Bernoulli(0.5)) {
        const size_t i = static_cast<size_t>(rng->UniformInt(
            0, static_cast<int64_t>(sample.size()) - 1));
        return ScanQuery::Point(sample[i].tuple);
      }
      return ScanQuery::Point(
          Tuple{rng->UniformInt(0, 60), rng->UniformInt(0, 120)});
    }
    case 1: {  // range, optionally half-open, optionally with residual
      std::optional<Value> lo;
      std::optional<Value> hi;
      if (rng->Bernoulli(0.8)) lo = Value(rng->UniformInt(0, 50));
      if (rng->Bernoulli(0.8)) hi = Value(rng->UniformInt(0, 50));
      ScanQuery query =
          ScanQuery::Range(rng->Bernoulli(0.5) ? "A" : "B", lo, hi,
                           static_cast<size_t>(rng->UniformInt(0, 8)));
      if (rng->Bernoulli(0.3)) query.predicate = RandomPredicate(rng, 1);
      return query;
    }
    case 2:
      return ScanQuery::Filter(RandomPredicate(rng, 2),
                               static_cast<size_t>(rng->UniformInt(0, 8)));
    case 3:
      return ScanQuery::CountRows(RandomPredicate(rng, 2));
    default: {
      ScanQuery query =
          ScanQuery::TopK(rng->Bernoulli(0.5) ? "A" : "B",
                          static_cast<size_t>(rng->UniformInt(1, 10)),
                          /*descending=*/rng->Bernoulli(0.5));
      if (rng->Bernoulli(0.3)) query.predicate = RandomPredicate(rng, 1);
      return query;
    }
  }
}

void ExpectSameResult(const ScanResult& columnar, const ScanResult& oracle,
                      const ScanQuery& query) {
  ASSERT_EQ(columnar.rows.size(), oracle.rows.size()) << query.Summary();
  for (size_t i = 0; i < columnar.rows.size(); ++i) {
    EXPECT_EQ(columnar.rows[i].tuple, oracle.rows[i].tuple)
        << query.Summary() << " row " << i;
    EXPECT_EQ(columnar.rows[i].count, oracle.rows[i].count)
        << query.Summary() << " row " << i;
  }
  EXPECT_EQ(columnar.matched_count, oracle.matched_count) << query.Summary();
  EXPECT_EQ(columnar.rows_scanned, oracle.rows_scanned) << query.Summary();
}

TEST(ScanPropertyTest, ExecutorMatchesOracleOnRandomQueries) {
  // Random store history; on every retained version, every random query
  // agrees between the columnar executor and the flat-Table oracle.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    VersionedStore store(8);
    ASSERT_TRUE(store.CreateTable("V", TwoCol()).ok());
    VersionedTable* table = *store.GetTable("V");
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(table
                      ->Insert(Tuple{rng.UniformInt(0, 50),
                                     rng.UniformInt(0, 100)},
                               rng.UniformInt(1, 3))
                      .ok());
    }
    store.Commit(0);
    for (int64_t commit = 1; commit <= 4; ++commit) {
      for (int m = 0; m < 30; ++m) {
        const Tuple t{rng.UniformInt(0, 50), rng.UniformInt(0, 100)};
        if (rng.Bernoulli(0.3) && table->CountOf(t) > 0) {
          ASSERT_TRUE(table->Delete(t).ok());
        } else {
          ASSERT_TRUE(table->Insert(t).ok());
        }
      }
      store.Commit(commit);
    }

    for (int64_t commit = 0; commit <= 4; ++commit) {
      auto snapshot = store.AcquireSnapshotAt(commit);
      ASSERT_TRUE(snapshot.ok());
      const TableVersion* version = snapshot->version().Find("V");
      ASSERT_NE(version, nullptr);
      const Table flat = version->Materialize();
      const std::vector<Row> sample = flat.SortedRows();
      for (int q = 0; q < 40; ++q) {
        const ScanQuery query = RandomQuery(&rng, sample);
        auto columnar = ExecuteScan(*version, query);
        auto oracle = ExecuteScanOnTable(flat, query);
        ASSERT_TRUE(columnar.ok()) << columnar.status().ToString();
        ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
        ExpectSameResult(*columnar, *oracle, query);
      }
    }
  }
}

TEST(ScanTest, MalformedQueriesFailCleanly) {
  VersionedStore store(2);
  ASSERT_TRUE(store.CreateTable("V", TwoCol()).ok());
  ASSERT_TRUE((*store.GetTable("V"))->Insert(Tuple{1, 2}).ok());
  store.Commit(0);
  SnapshotHandle snapshot = store.AcquireSnapshot();
  const TableVersion* version = snapshot.version().Find("V");
  ASSERT_NE(version, nullptr);

  // Unknown bound column.
  EXPECT_TRUE(ExecuteScan(*version, ScanQuery::Range("Z", Value(0), Value(9)))
                  .status()
                  .IsInvalidArgument());
  // Top-k with k = 0.
  EXPECT_TRUE(ExecuteScan(*version, ScanQuery::TopK("A", 0))
                  .status()
                  .IsInvalidArgument());
  // Point probe with the wrong arity.
  EXPECT_FALSE(ExecuteScan(*version, ScanQuery::Point(Tuple{1})).ok());
  // Unknown view through the snapshot overload.
  EXPECT_TRUE(ExecuteScan(snapshot, "nope", ScanQuery::CountRows())
                  .status()
                  .IsNotFound());
  // The oracle rejects the same shapes.
  const Table flat = version->Materialize();
  EXPECT_TRUE(ExecuteScanOnTable(flat, ScanQuery::TopK("A", 0))
                  .status()
                  .IsInvalidArgument());
}

TEST(ScanTest, SquashedVersionsStayScannable) {
  // Compaction publishes versions through its own path
  // (BuildSquashedTableVersion, not Seal); those chunks must carry the
  // columnar layout too, or a post-swap query would die.
  VersionedTable table("V", TwoCol());
  for (int64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(table.Insert(Tuple{i % 40, i}, 1 + i % 2).ok());
  }
  const TableVersion sealed = table.Seal();
  const TableVersion squashed = BuildSquashedTableVersion(sealed, 16);
  for (const ChunkPtr& chunk : *squashed.chunks) {
    EXPECT_NE(chunk->columnar, nullptr);
  }
  const ScanQuery query = ScanQuery::Range("A", Value(5), Value(15));
  auto before = ExecuteScan(sealed, query);
  auto after = ExecuteScan(squashed, query);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  ExpectSameResult(*after, *before, query);
}

TEST(ScanTest, PinnedSnapshotIsByteIdenticalAcrossLaterCommits) {
  // A pinned handle must serve the same bytes forever, no matter how
  // many commits land after it or how far the retained window moves on.
  VersionedStore store(1);
  ASSERT_TRUE(store.CreateTable("V", TwoCol()).ok());
  VersionedTable* table = *store.GetTable("V");
  for (int64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(table->Insert(Tuple{i, i * 3}).ok());
  }
  store.Commit(0);
  SnapshotHandle pinned = store.AcquireSnapshot();
  const std::string before =
      pinned.version().Find("V")->Materialize().ToString();
  const ScanQuery query = ScanQuery::Range("A", Value(10), Value(30));
  auto scan_before = ExecuteScan(pinned, "V", query);
  ASSERT_TRUE(scan_before.ok());

  for (int64_t commit = 1; commit <= 8; ++commit) {
    ASSERT_TRUE(table->Insert(Tuple{1000 + commit, 0}).ok());
    ASSERT_TRUE(table->Delete(Tuple{commit - 1, (commit - 1) * 3}).ok());
    store.Commit(commit);
  }

  EXPECT_EQ(pinned.version().Find("V")->Materialize().ToString(), before);
  auto scan_after = ExecuteScan(pinned, "V", query);
  ASSERT_TRUE(scan_after.ok());
  ExpectSameResult(*scan_after, *scan_before, query);
  // The current version has genuinely moved on.
  EXPECT_NE(store.AcquireSnapshot().version().Find("V")->Materialize()
                .ToString(),
            before);
}

/// Runs a generated scenario with a query-workload reader pool and
/// replays every answered query against the oracle: the same query on
/// the same retained commit, executed both through the snapshot overload
/// and on the materialized flat table, must reproduce the response.
void RunQueryPoolScenario(bool use_threads, uint64_t seed) {
  WorkloadSpec spec;
  spec.seed = seed;
  spec.num_transactions = 20;
  spec.num_views = 3;
  spec.mean_interarrival = 300;
  auto config = GenerateScenario(spec);
  ASSERT_TRUE(config.ok());
  config->use_threads = use_threads;
  config->warehouse.max_retained_versions = 64;  // keep replays alive
  auto system = WarehouseSystem::Build(std::move(*config));
  ASSERT_TRUE(system.ok());

  ReaderPoolOptions pool;
  pool.num_readers = 3;
  pool.reads_per_reader = 8;
  pool.mean_interval_us = 400.0;
  pool.seed = seed;
  pool.query.enabled = true;
  pool.query.zipf_theta = 0.99;
  pool.query.burst = 2;
  pool.query.column = "j";  // first join column of every generated view
  pool.query.key_min = 0;
  pool.query.key_max = 9;  // WorkloadSpec join_domain default
  pool.query.range_width = 3;
  std::vector<WarehouseReader*> readers = (*system)->AttachReaderPool(pool);
  (*system)->Run();

  const VersionedStore& store = (*system)->warehouse().store();
  size_t replayed = 0;
  for (const WarehouseReader* reader : readers) {
    ASSERT_EQ(reader->query_observations().size(),
              pool.reads_per_reader * pool.query.burst);
    EXPECT_EQ(reader->queries_shed(), 0);
    EXPECT_EQ(reader->in_flight_size(), 0u);
    for (const auto& obs : reader->query_observations()) {
      ASSERT_TRUE(obs.ok()) << obs.error;
      auto snapshot = store.AcquireSnapshotAt(obs.as_of_commit);
      ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
      const std::string& view = (*system)->registry().ViewName(obs.view);
      auto in_place = ExecuteScan(*snapshot, view, obs.query);
      ASSERT_TRUE(in_place.ok()) << in_place.status().ToString();
      auto flat = snapshot->MaterializeTable(view);
      ASSERT_TRUE(flat.ok());
      auto oracle = ExecuteScanOnTable(*flat, obs.query);
      ASSERT_TRUE(oracle.ok());
      // The recorded response == oracle == a fresh in-place execution.
      ASSERT_EQ(obs.rows.size(), oracle->rows.size());
      for (size_t i = 0; i < obs.rows.size(); ++i) {
        EXPECT_EQ(obs.rows[i].tuple, oracle->rows[i].tuple);
        EXPECT_EQ(obs.rows[i].count, oracle->rows[i].count);
      }
      EXPECT_EQ(obs.matched_count, oracle->matched_count);
      EXPECT_EQ(obs.rows_scanned, oracle->rows_scanned);
      ExpectSameResult(*in_place, *oracle, obs.query);
      ++replayed;
    }
  }
  EXPECT_EQ(replayed,
            pool.num_readers * pool.reads_per_reader * pool.query.burst);
}

TEST(ScanSystemTest, QueryPoolMatchesOracleOnSimRuntime) {
  RunQueryPoolScenario(/*use_threads=*/false, /*seed=*/3);
}

TEST(ScanSystemTest, QueryPoolMatchesOracleOnThreadRuntime) {
  RunQueryPoolScenario(/*use_threads=*/true, /*seed=*/4);
}

TEST(ScanSystemTest, SaturatedWarehouseShedsInsteadOfTimingOut) {
  // A one-query budget with a long service time, hammered by bursts:
  // admission control must shed the overflow with explicit responses —
  // every issued query is answered (result or shed), none dangle in
  // flight, and the shed counter metric agrees with the readers' count.
  WorkloadSpec spec;
  spec.seed = 11;
  spec.num_transactions = 10;
  spec.num_views = 2;
  auto config = GenerateScenario(spec);
  ASSERT_TRUE(config.ok());
  config->warehouse.max_retained_versions = 64;
  config->warehouse.max_inflight_queries = 1;
  config->warehouse.query_service_us = 5000;
  config->collect_metrics = true;
  auto system = WarehouseSystem::Build(std::move(*config));
  ASSERT_TRUE(system.ok());

  ReaderPoolOptions pool;
  pool.num_readers = 3;
  pool.reads_per_reader = 6;
  pool.mean_interval_us = 200.0;
  pool.seed = 11;
  pool.query.enabled = true;
  pool.query.burst = 4;
  pool.query.column = "j";
  pool.query.key_min = 0;
  pool.query.key_max = 9;
  pool.query.range_width = 3;
  std::vector<WarehouseReader*> readers = (*system)->AttachReaderPool(pool);
  (*system)->Run();

  const int64_t issued = static_cast<int64_t>(
      pool.num_readers * pool.reads_per_reader * pool.query.burst);
  int64_t answered = 0;
  int64_t shed = 0;
  int64_t dangling = 0;
  for (const WarehouseReader* reader : readers) {
    answered += static_cast<int64_t>(reader->query_observations().size());
    shed += reader->queries_shed();
    dangling += static_cast<int64_t>(reader->in_flight_size());
    for (const auto& obs : reader->query_observations()) {
      EXPECT_TRUE(obs.error.empty()) << obs.error;
      if (obs.shed) {
        // Nothing executed: no payload, no commit stamp.
        EXPECT_TRUE(obs.rows.empty());
        EXPECT_EQ(obs.as_of_commit, -1);
        EXPECT_EQ(obs.rows_scanned, 0);
      }
    }
  }
  EXPECT_EQ(answered, issued);
  EXPECT_GT(shed, 0);
  EXPECT_EQ(dangling, 0);

  obs::MetricsSnapshot metrics = (*system)->MetricsSnapshot();
  const obs::CounterSnapshot* shed_total =
      obs::FindCounter(metrics, "read.shed_total");
  ASSERT_NE(shed_total, nullptr);
  EXPECT_EQ(shed_total->value, shed);
  // Latency histograms exist per reader and saw every response.
  EXPECT_EQ(obs::SumHistogramCounts(metrics, "read.query_latency_us"),
            answered);
  EXPECT_GT(obs::SumHistogramCounts(metrics, "read.rows_scanned"), 0);
}

TEST(ZipfTest, SingleElementAlphabetAlwaysDrawsZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Zipf(1, 0.99), 0);
    EXPECT_EQ(rng.Zipf(1, 0.0), 0);
  }
}

TEST(ZipfTest, ThetaZeroDegeneratesToUniform) {
  Rng rng(7);
  const int64_t n = 4;
  std::vector<int> counts(static_cast<size_t>(n), 0);
  const int draws = 4000;
  for (int i = 0; i < draws; ++i) {
    const int64_t v = rng.Zipf(n, 0.0);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, n);
    ++counts[static_cast<size_t>(v)];
  }
  for (int count : counts) {
    EXPECT_GT(count, draws / static_cast<int>(n) / 2);
    EXPECT_LT(count, draws * 2 / static_cast<int>(n));
  }
}

TEST(ZipfTest, HighThetaConcentratesOnTheHotIndex) {
  Rng rng(7);
  int hot = 0;
  const int draws = 2000;
  for (int i = 0; i < draws; ++i) {
    if (rng.Zipf(8, 3.0) == 0) ++hot;
  }
  EXPECT_GT(hot, draws * 7 / 10);
}

}  // namespace
}  // namespace mvc
