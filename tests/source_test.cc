// Tests for the autonomous source process: serial transactions,
// atomicity, the versioned log, and query answering.

#include <gtest/gtest.h>

#include "net/sim_runtime.h"
#include "source/source_process.h"
#include "storage/id_registry.h"

namespace mvc {
namespace {

class SourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(source_.CreateTable("R", Schema::AllInt64({"A", "B"})).ok());
    ASSERT_TRUE(source_.LoadInitial("R", Tuple{1, 2}).ok());
  }

  SourceProcess source_{"src0"};
};

TEST_F(SourceTest, LoadInitialDoesNotAdvanceState) {
  EXPECT_EQ(source_.state(), 0);
  EXPECT_EQ((*source_.catalog().GetTable("R"))->CountOf(Tuple{1, 2}), 1);
}

TEST_F(SourceTest, LoadInitialAfterTransactionsFails) {
  ASSERT_TRUE(
      source_.ExecuteTransaction({Update::Insert("src0", "R", Tuple{3, 4})})
          .ok());
  EXPECT_TRUE(source_.LoadInitial("R", Tuple{9, 9}).IsFailedPrecondition());
}

TEST_F(SourceTest, TransactionsAdvanceStateAndLog) {
  ASSERT_TRUE(
      source_.ExecuteTransaction({Update::Insert("src0", "R", Tuple{3, 4})})
          .ok());
  ASSERT_TRUE(
      source_.ExecuteTransaction({Update::Delete("src0", "R", Tuple{1, 2})})
          .ok());
  EXPECT_EQ(source_.state(), 2);
  ASSERT_EQ(source_.log().size(), 2u);
  EXPECT_EQ(source_.log()[0].local_seq, 1);
  EXPECT_EQ(source_.log()[1].local_seq, 2);
}

TEST_F(SourceTest, ModifyUpdate) {
  ASSERT_TRUE(source_
                  .ExecuteTransaction(
                      {Update::Modify("src0", "R", Tuple{1, 2}, Tuple{1, 5})})
                  .ok());
  const Table* table = *source_.catalog().GetTable("R");
  EXPECT_EQ(table->CountOf(Tuple{1, 2}), 0);
  EXPECT_EQ(table->CountOf(Tuple{1, 5}), 1);
}

TEST_F(SourceTest, FailedTransactionRollsBackAtomically) {
  Status st = source_.ExecuteTransaction(
      {Update::Insert("src0", "R", Tuple{3, 4}),
       Update::Delete("src0", "R", Tuple{9, 9})});  // fails
  EXPECT_FALSE(st.ok());
  // The earlier insert must have been undone.
  EXPECT_EQ((*source_.catalog().GetTable("R"))->CountOf(Tuple{3, 4}), 0);
  EXPECT_EQ(source_.state(), 0);
}

TEST_F(SourceTest, RejectsForeignSourceUpdate) {
  EXPECT_FALSE(
      source_.ExecuteTransaction({Update::Insert("other", "R", Tuple{3, 4})})
          .ok());
}

TEST_F(SourceTest, RejectsEmptyTransaction) {
  EXPECT_TRUE(source_.ExecuteTransaction({}).IsInvalidArgument());
}

TEST_F(SourceTest, TableAtStateReconstructsHistory) {
  ASSERT_TRUE(
      source_.ExecuteTransaction({Update::Insert("src0", "R", Tuple{3, 4})})
          .ok());
  ASSERT_TRUE(source_
                  .ExecuteTransaction(
                      {Update::Modify("src0", "R", Tuple{3, 4}, Tuple{3, 9})})
                  .ok());
  ASSERT_TRUE(
      source_.ExecuteTransaction({Update::Delete("src0", "R", Tuple{1, 2})})
          .ok());

  auto s0 = source_.TableAtState("R", 0);
  ASSERT_TRUE(s0.ok());
  EXPECT_EQ(s0->NumRows(), 1);
  EXPECT_EQ(s0->CountOf(Tuple{1, 2}), 1);

  auto s1 = source_.TableAtState("R", 1);
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(s1->CountOf(Tuple{3, 4}), 1);

  auto s2 = source_.TableAtState("R", 2);
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2->CountOf(Tuple{3, 9}), 1);
  EXPECT_EQ(s2->CountOf(Tuple{1, 2}), 1);

  auto s3 = source_.TableAtState("R", 3);
  ASSERT_TRUE(s3.ok());
  EXPECT_EQ(s3->CountOf(Tuple{1, 2}), 0);
  EXPECT_EQ(s3->NumRows(), 1);
}

TEST_F(SourceTest, TableAtStateOutOfRange) {
  EXPECT_TRUE(source_.TableAtState("R", 5).status().IsOutOfRange());
  EXPECT_TRUE(source_.TableAtState("R", -1).status().IsOutOfRange());
}

// Message-level behaviour: reports to the integrator, query answering.
class SourceActorTest : public ::testing::Test {
 protected:
  class Sink : public Process {
   public:
    using Process::Process;
    void OnMessage(ProcessId, MessagePtr msg) override {
      messages.push_back(std::move(msg));
    }
    std::vector<MessagePtr> messages;
  };

  void SetUp() override {
    ASSERT_TRUE(source_.CreateTable("R", Schema::AllInt64({"A"})).ok());
    r_id_ = registry_.InternRelation("R");
    source_.SetRegistry(&registry_);
    source_pid_ = runtime_.Register(&source_);
    sink_pid_ = runtime_.Register(&sink_);
    source_.SetIntegrator(sink_pid_);
  }

  SimRuntime runtime_{1};
  IdRegistry registry_;
  RelationId r_id_ = kInvalidRelation;
  SourceProcess source_{"src0"};
  Sink sink_{"sink"};
  ProcessId source_pid_ = kInvalidProcess;
  ProcessId sink_pid_ = kInvalidProcess;
};

TEST_F(SourceActorTest, InjectedTransactionIsReportedInOrder) {
  class Driver : public Process {
   public:
    Driver(std::string name, ProcessId source) : Process(std::move(name)),
                                                 source_(source) {}
    void OnStart() override {
      for (int i = 0; i < 3; ++i) {
        auto msg = std::make_unique<InjectTxnMsg>();
        msg->updates = {Update::Insert("src0", "R", Tuple{i})};
        Send(source_, std::move(msg));
      }
    }
    void OnMessage(ProcessId, MessagePtr) override {}
    ProcessId source_;
  };
  Driver driver("driver", source_pid_);
  runtime_.Register(&driver);
  runtime_.Run();

  ASSERT_EQ(sink_.messages.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    auto* report = static_cast<SourceTxnMsg*>(
        sink_.messages[static_cast<size_t>(i)].get());
    ASSERT_EQ(report->kind, Message::Kind::kSourceTxn);
    EXPECT_EQ(report->txn.local_seq, i + 1);
    EXPECT_EQ(report->txn.updates[0].tuple, (Tuple{i}));
  }
}

TEST_F(SourceActorTest, AnswersCurrentStateQueries) {
  ASSERT_TRUE(
      source_.ExecuteTransaction({Update::Insert("src0", "R", Tuple{7})})
          .ok());
  class Asker : public Process {
   public:
    Asker(std::string name, ProcessId source, RelationId rel)
        : Process(std::move(name)), source_(source), rel_(rel) {}
    void OnStart() override {
      auto req = std::make_unique<QueryRequestMsg>();
      req->request_id = 42;
      req->relation = rel_;
      Send(source_, std::move(req));
    }
    void OnMessage(ProcessId, MessagePtr msg) override {
      answer = std::move(msg);
    }
    ProcessId source_;
    RelationId rel_;
    MessagePtr answer;
  };
  Asker asker("asker", source_pid_, r_id_);
  runtime_.Register(&asker);
  runtime_.Run();

  ASSERT_NE(asker.answer, nullptr);
  auto* resp = static_cast<QueryResponseMsg*>(asker.answer.get());
  EXPECT_EQ(resp->request_id, 42);
  EXPECT_EQ(resp->state, 1);
  EXPECT_EQ(resp->snapshot.CountOf(Tuple{7}), 1);
}

TEST_F(SourceActorTest, AnswersHistoricalQueries) {
  ASSERT_TRUE(
      source_.ExecuteTransaction({Update::Insert("src0", "R", Tuple{7})})
          .ok());
  ASSERT_TRUE(
      source_.ExecuteTransaction({Update::Delete("src0", "R", Tuple{7})})
          .ok());
  class Asker : public Process {
   public:
    Asker(std::string name, ProcessId source, RelationId rel)
        : Process(std::move(name)), source_(source), rel_(rel) {}
    void OnStart() override {
      auto req = std::make_unique<QueryRequestMsg>();
      req->relation = rel_;
      req->as_of_state = 1;
      Send(source_, std::move(req));
    }
    void OnMessage(ProcessId, MessagePtr msg) override {
      answer = std::move(msg);
    }
    ProcessId source_;
    RelationId rel_;
    MessagePtr answer;
  };
  Asker asker("asker", source_pid_, r_id_);
  runtime_.Register(&asker);
  runtime_.Run();

  auto* resp = static_cast<QueryResponseMsg*>(asker.answer.get());
  EXPECT_EQ(resp->state, 1);
  EXPECT_EQ(resp->snapshot.CountOf(Tuple{7}), 1);
}

}  // namespace
}  // namespace mvc
