// Tests for the wire-protocol types: summaries, naming, payload
// invariants, and merge-algorithm selection helpers.

#include <gtest/gtest.h>

#include "merge/merge_engine.h"
#include "merge/merge_process.h"
#include "net/protocol.h"
#include "net/runtime.h"
#include "storage/id_registry.h"
#include "viewmgr/view_manager.h"

namespace mvc {
namespace {

TEST(ProtocolTest, MessageKindNamesAreStable) {
  EXPECT_STREQ(MessageKindToString(Message::Kind::kSourceTxn), "SourceTxn");
  EXPECT_STREQ(MessageKindToString(Message::Kind::kUpdate), "Update");
  EXPECT_STREQ(MessageKindToString(Message::Kind::kRelSet), "RelSet");
  EXPECT_STREQ(MessageKindToString(Message::Kind::kActionList),
               "ActionList");
  EXPECT_STREQ(MessageKindToString(Message::Kind::kWarehouseTxn),
               "WarehouseTxn");
  EXPECT_STREQ(MessageKindToString(Message::Kind::kTxnCommitted),
               "TxnCommitted");
  EXPECT_STREQ(MessageKindToString(Message::Kind::kQueryRequest),
               "QueryRequest");
  EXPECT_STREQ(MessageKindToString(Message::Kind::kQueryResponse),
               "QueryResponse");
  EXPECT_STREQ(MessageKindToString(Message::Kind::kTick), "Tick");
  EXPECT_STREQ(MessageKindToString(Message::Kind::kInjectTxn), "InjectTxn");
  EXPECT_STREQ(MessageKindToString(Message::Kind::kReadViews), "ReadViews");
  EXPECT_STREQ(MessageKindToString(Message::Kind::kViewsSnapshot),
               "ViewsSnapshot");
}

TEST(ProtocolTest, ActionListToStringShowsBatches) {
  IdRegistry registry;
  registry.InternViews({"V1", "V2"});
  ActionList al;
  al.view = *registry.FindView("V2");
  al.update = 5;
  al.first_update = 5;
  // Without a name table, ids render raw; with one, names come back.
  EXPECT_EQ(al.ToString(), "AL(V#1, U5, 0 actions)");
  EXPECT_EQ(al.ToString(&registry), "AL(V2, U5, 0 actions)");
  al.first_update = 3;
  al.delta.Add(Tuple{1}, 1);
  EXPECT_EQ(al.ToString(&registry), "AL(V2, U5 covering U3.., 1 actions)");
}

TEST(ProtocolTest, WarehouseTransactionToString) {
  WarehouseTransaction txn;
  txn.txn_id = 4;
  txn.rows = {2, 3};
  txn.views = {0, 1};
  txn.depends_on = {2};
  EXPECT_EQ(txn.ToString(),
            "WT4(rows=[2,3], views=[0,1], 0 ALs, deps=[2])");
}

TEST(ProtocolTest, SummariesMentionKeyFields) {
  UpdateMsg update;
  update.update_id = 7;
  update.txn.local_seq = 2;
  EXPECT_NE(update.Summary().find("U7"), std::string::npos);

  RelSetMsg rel;
  rel.update_id = 3;
  rel.views = {0, 1};
  EXPECT_EQ(rel.Summary(), "REL3={0,1}");

  QueryRequestMsg req;
  req.relation = 0;
  req.as_of_state = 4;
  EXPECT_NE(req.Summary().find("@state 4"), std::string::npos);

  ReadViewsMsg read;
  read.views = {0};
  EXPECT_EQ(read.Summary(), "read views [0]");

  ViewsSnapshotMsg snap;
  snap.as_of_commit = 9;
  EXPECT_NE(snap.Summary().find("@commit 9"), std::string::npos);

  TxnCommittedMsg committed;
  committed.txn_id = 12;
  EXPECT_EQ(committed.Summary(), "committed WT12");
}

TEST(ProtocolTest, MessageStatsToString) {
  MessageStats stats;
  stats.total_messages = 3;
  stats.by_kind["Tick"] = 3;
  EXPECT_EQ(stats.ToString(), "messages=3 Tick=3");
}

TEST(AlgorithmSelectionTest, WeakestLevelWins) {
  using L = ConsistencyLevel;
  auto level = [](L l) { return static_cast<uint8_t>(l); };
  EXPECT_EQ(AlgorithmForLevels({level(L::kComplete), level(L::kComplete)}),
            MergeAlgorithm::kSPA);
  EXPECT_EQ(AlgorithmForLevels({level(L::kComplete), level(L::kStrong)}),
            MergeAlgorithm::kPA);
  EXPECT_EQ(AlgorithmForLevels({level(L::kStrong), level(L::kConvergent)}),
            MergeAlgorithm::kPassThrough);
  // Empty group defaults to the strongest (SPA).
  EXPECT_EQ(AlgorithmForLevels({}), MergeAlgorithm::kSPA);
}

TEST(AlgorithmSelectionTest, Names) {
  EXPECT_STREQ(MergeAlgorithmToString(MergeAlgorithm::kSPA), "SPA");
  EXPECT_STREQ(MergeAlgorithmToString(MergeAlgorithm::kPA), "PA");
  EXPECT_STREQ(MergeAlgorithmToString(MergeAlgorithm::kPassThrough),
               "PassThrough");
  EXPECT_STREQ(SubmissionPolicyToString(SubmissionPolicy::kSequential),
               "sequential");
  EXPECT_STREQ(SubmissionPolicyToString(SubmissionPolicy::kHoldDependents),
               "hold-dependents");
  EXPECT_STREQ(SubmissionPolicyToString(SubmissionPolicy::kAnnotate),
               "annotate");
  EXPECT_STREQ(SubmissionPolicyToString(SubmissionPolicy::kBatched),
               "batched");
  EXPECT_STREQ(ConsistencyLevelToString(ConsistencyLevel::kComplete),
               "complete");
  EXPECT_STREQ(ConsistencyLevelToString(ConsistencyLevel::kStrong),
               "strong");
  EXPECT_STREQ(ConsistencyLevelToString(ConsistencyLevel::kConvergent),
               "convergent");
}

}  // namespace
}  // namespace mvc
