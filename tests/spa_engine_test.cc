// Tests for the Simple Painting Algorithm, including the paper's
// Example 3 trace, message-reordering cases, and a promptness property.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "merge/merge_engine.h"
#include "storage/id_registry.h"

namespace mvc {
namespace {

constexpr ViewId kV1 = 0, kV2 = 1, kV3 = 2;

/// Shared name table for all engine tests: V1, V2, V3 in mint order.
const IdRegistry* TestRegistry() {
  static const IdRegistry* reg = [] {
    auto* r = new IdRegistry();
    r->InternViews({"V1", "V2", "V3"});
    return r;
  }();
  return reg;
}

ActionList MakeAl(ViewId view, UpdateId update) {
  ActionList al;
  al.view = view;
  al.update = update;
  al.first_update = update;
  al.covered = {update};
  al.delta.target = TestRegistry()->ViewName(view);
  // A marker row so transactions are non-trivially distinguishable.
  al.delta.Add(Tuple{update}, 1);
  return al;
}

/// Collects rows of emitted transactions as a flat readable trace.
std::vector<std::vector<UpdateId>> RowsOf(
    const std::vector<WarehouseTransaction>& txns) {
  std::vector<std::vector<UpdateId>> out;
  for (const auto& txn : txns) out.push_back(txn.rows);
  return out;
}

class SpaEngineTest : public ::testing::Test {
 protected:
  SpaEngine engine_{{kV1, kV2, kV3}, TestRegistry()};
  std::vector<WarehouseTransaction> out_;
};

TEST_F(SpaEngineTest, SingleRowSingleView) {
  engine_.ReceiveRelSet(1, {kV2}, &out_);
  EXPECT_TRUE(out_.empty());
  engine_.ReceiveActionList(MakeAl(kV2, 1), &out_);
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0].rows, (std::vector<UpdateId>{1}));
  EXPECT_EQ(out_[0].views, (std::vector<ViewId>{kV2}));
  EXPECT_EQ(engine_.open_rows(), 0u);  // purged after apply
}

TEST_F(SpaEngineTest, WaitsForAllViewsOfRow) {
  engine_.ReceiveRelSet(1, {kV1, kV2}, &out_);
  engine_.ReceiveActionList(MakeAl(kV2, 1), &out_);
  EXPECT_TRUE(out_.empty()) << "must hold until V1's AL arrives";
  EXPECT_EQ(engine_.held_action_lists(), 1u);
  engine_.ReceiveActionList(MakeAl(kV1, 1), &out_);
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0].views, (std::vector<ViewId>{kV1, kV2}));
  EXPECT_EQ(out_[0].actions.size(), 2u);
  EXPECT_EQ(engine_.held_action_lists(), 0u);
}

TEST_F(SpaEngineTest, ActionListBeforeRelSetIsBuffered) {
  engine_.ReceiveActionList(MakeAl(kV2, 1), &out_);
  EXPECT_TRUE(out_.empty());
  engine_.ReceiveRelSet(1, {kV2}, &out_);
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0].rows, (std::vector<UpdateId>{1}));
}

TEST_F(SpaEngineTest, EmptyRelSetPurgesImmediately) {
  engine_.ReceiveRelSet(1, {}, &out_);
  EXPECT_TRUE(out_.empty());
  EXPECT_EQ(engine_.open_rows(), 0u);
  EXPECT_EQ(engine_.vut().max_allocated(), 1);
}

TEST_F(SpaEngineTest, SameColumnAppliesInOrder) {
  engine_.ReceiveRelSet(1, {kV2}, &out_);
  engine_.ReceiveRelSet(2, {kV2}, &out_);
  // AL for row 2 arrives first; row 1's AL has not, so row 2 must wait
  // even though all of row 2's entries are present... it has no earlier
  // *red*, but row 1 is still white in a different row — row 2 CAN apply
  // only if no earlier red exists in its column. White rows in the same
  // column do not block under SPA's Line 2, but a complete view manager
  // sends ALs in order, so AL(V2,2) arriving implies AL(V2,1) was sent
  // first and, on a FIFO channel, received first. Simulate the legal
  // order:
  engine_.ReceiveActionList(MakeAl(kV2, 1), &out_);
  engine_.ReceiveActionList(MakeAl(kV2, 2), &out_);
  ASSERT_EQ(out_.size(), 2u);
  EXPECT_EQ(RowsOf(out_), (std::vector<std::vector<UpdateId>>{{1}, {2}}));
}

TEST_F(SpaEngineTest, HeldRowBlocksLaterRowInSameColumn) {
  engine_.ReceiveRelSet(1, {kV1, kV2}, &out_);
  engine_.ReceiveRelSet(2, {kV2}, &out_);
  engine_.ReceiveActionList(MakeAl(kV2, 1), &out_);  // row 1 held (V1 white)
  engine_.ReceiveActionList(MakeAl(kV2, 2), &out_);
  EXPECT_TRUE(out_.empty()) << "row 2 must wait behind held row 1 (Line 2)";
  engine_.ReceiveActionList(MakeAl(kV1, 1), &out_);
  ASSERT_EQ(out_.size(), 2u);
  EXPECT_EQ(RowsOf(out_), (std::vector<std::vector<UpdateId>>{{1}, {2}}));
}

TEST_F(SpaEngineTest, DisjointLaterRowAppliesFirst) {
  // The heart of Example 3: U2 only touches V3, so its actions may be
  // applied before U1's.
  engine_.ReceiveRelSet(1, {kV1, kV2}, &out_);
  engine_.ReceiveRelSet(2, {kV3}, &out_);
  engine_.ReceiveActionList(MakeAl(kV2, 1), &out_);
  engine_.ReceiveActionList(MakeAl(kV3, 2), &out_);
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0].rows, (std::vector<UpdateId>{2}));
}

TEST_F(SpaEngineTest, Example3FullTrace) {
  // Views: V1 = R|><|S, V2 = S|><|T, V3 = Q.
  // Updates: U1 on S -> {V1,V2}; U2 on Q -> {V3}; U3 on T -> {V2}.
  // Arrival: REL1, AL(V2,1), REL2, REL3, AL(V3,2), AL(V2,3), AL(V1,1).
  engine_.ReceiveRelSet(1, {kV1, kV2}, &out_);
  EXPECT_TRUE(out_.empty());
  engine_.ReceiveActionList(MakeAl(kV2, 1), &out_);
  EXPECT_TRUE(out_.empty());
  EXPECT_EQ(engine_.vut().ToString(),
            "     V1 V2 V3\n"
            "U1: w r b\n");

  engine_.ReceiveRelSet(2, {kV3}, &out_);
  engine_.ReceiveRelSet(3, {kV2}, &out_);
  EXPECT_TRUE(out_.empty());

  // t4/t5: AL(V3,2) arrives; row 2 applies immediately and is purged
  // (paper times t5-t6).
  engine_.ReceiveActionList(MakeAl(kV3, 2), &out_);
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0].rows, (std::vector<UpdateId>{2}));
  EXPECT_EQ(engine_.vut().ToString(),
            "     V1 V2 V3\n"
            "U1: w r b\n"
            "U3: b w b\n");
  out_.clear();

  // t7: AL(V2,3) arrives; row 3 blocked behind row 1's red V2 entry.
  engine_.ReceiveActionList(MakeAl(kV2, 3), &out_);
  EXPECT_TRUE(out_.empty());
  EXPECT_EQ(engine_.vut().ToString(),
            "     V1 V2 V3\n"
            "U1: w r b\n"
            "U3: b r b\n");

  // t8-t11: AL(V1,1) arrives; row 1 applies, unblocking row 3.
  engine_.ReceiveActionList(MakeAl(kV1, 1), &out_);
  ASSERT_EQ(out_.size(), 2u);
  EXPECT_EQ(out_[0].rows, (std::vector<UpdateId>{1}));
  EXPECT_EQ(out_[0].actions.size(), 2u);
  EXPECT_EQ(out_[1].rows, (std::vector<UpdateId>{3}));
  EXPECT_EQ(engine_.open_rows(), 0u);
  EXPECT_EQ(engine_.vut().ToString(), "     V1 V2 V3\n");
}

TEST_F(SpaEngineTest, EmptyDeltaActionListStillCounts) {
  engine_.ReceiveRelSet(1, {kV1, kV2}, &out_);
  ActionList empty = MakeAl(kV1, 1);
  empty.delta.rows.clear();
  engine_.ReceiveActionList(empty, &out_);
  EXPECT_TRUE(out_.empty());
  engine_.ReceiveActionList(MakeAl(kV2, 1), &out_);
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0].actions.size(), 2u);
}

TEST_F(SpaEngineTest, SourceStateIsMaxRow) {
  engine_.ReceiveRelSet(1, {kV1}, &out_);
  engine_.ReceiveActionList(MakeAl(kV1, 1), &out_);
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(out_[0].source_state, 1);
}

TEST_F(SpaEngineTest, RejectsBatchedActionLists) {
  engine_.ReceiveRelSet(1, {kV1}, &out_);
  engine_.ReceiveRelSet(2, {kV1}, &out_);
  ActionList batched = MakeAl(kV1, 2);
  batched.first_update = 1;
  batched.covered = {1, 2};
  EXPECT_DEATH(engine_.ReceiveActionList(batched, &out_),
               "complete view managers");
}

// Promptness: after every event, no fully-received unblocked row may
// remain held. Sweeps random arrival interleavings (REL order and
// per-view AL order kept FIFO, as the channels guarantee).
class SpaPromptnessTest : public ::testing::TestWithParam<int> {};

TEST_P(SpaPromptnessTest, NoApplicableRowRemainsHeld) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const std::vector<ViewId> views{kV1, kV2, kV3};
  const int kUpdates = 8;

  // Random REL sets.
  std::vector<std::vector<ViewId>> rels(kUpdates + 1);
  for (int i = 1; i <= kUpdates; ++i) {
    for (ViewId v : views) {
      if (rng.Bernoulli(0.5)) rels[static_cast<size_t>(i)].push_back(v);
    }
  }

  // Event streams: one REL stream (FIFO) and one AL stream per view.
  std::vector<std::vector<UpdateId>> al_streams(views.size());
  for (int i = 1; i <= kUpdates; ++i) {
    for (size_t x = 0; x < views.size(); ++x) {
      const auto& rel = rels[static_cast<size_t>(i)];
      if (std::find(rel.begin(), rel.end(), views[x]) != rel.end()) {
        al_streams[x].push_back(i);
      }
    }
  }

  SpaEngine engine(views, TestRegistry());
  std::vector<WarehouseTransaction> out;
  size_t rel_next = 1;
  std::vector<size_t> al_next(views.size(), 0);

  auto events_left = [&] {
    if (rel_next <= static_cast<size_t>(kUpdates)) return true;
    for (size_t x = 0; x < views.size(); ++x) {
      if (al_next[x] < al_streams[x].size()) return true;
    }
    return false;
  };

  while (events_left()) {
    // Pick a random nonempty stream.
    std::vector<int> choices;
    if (rel_next <= static_cast<size_t>(kUpdates)) choices.push_back(-1);
    for (size_t x = 0; x < views.size(); ++x) {
      // An AL can only be sent after the integrator numbered the update;
      // model that by requiring REL to have been *sent* (not received) —
      // here, simply allow ALs up to the REL stream position plus lag.
      if (al_next[x] < al_streams[x].size()) {
        choices.push_back(static_cast<int>(x));
      }
    }
    int pick = choices[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(choices.size()) - 1))];
    if (pick == -1) {
      UpdateId i = static_cast<UpdateId>(rel_next++);
      engine.ReceiveRelSet(i, rels[static_cast<size_t>(i)], &out);
    } else {
      size_t x = static_cast<size_t>(pick);
      engine.ReceiveActionList(MakeAl(views[x], al_streams[x][al_next[x]++]),
                               &out);
    }

    // Promptness invariant: no live row is fully red/black with no
    // earlier red in its red columns.
    const ViewUpdateTable& vut = engine.vut();
    for (UpdateId row : vut.RowIds()) {
      if (vut.RowHasWhite(row)) continue;
      bool has_red = false;
      bool blocked = false;
      for (size_t x = 0; x < views.size(); ++x) {
        if (vut.color(row, x) == CellColor::kRed) {
          has_red = true;
          if (vut.HasEarlierRed(row, x)) blocked = true;
        }
      }
      EXPECT_TRUE(!has_red || blocked)
          << "row " << row << " is applicable but was not applied\n"
          << vut.ToString();
    }
  }

  // Everything eventually applies.
  EXPECT_EQ(engine.open_rows(), 0u);
  EXPECT_EQ(engine.held_action_lists(), 0u);

  // Each update with a non-empty REL appears exactly once, and
  // transactions touching a common view appear in row order.
  std::map<UpdateId, int> seen;
  for (const auto& txn : out) {
    for (UpdateId row : txn.rows) ++seen[row];
  }
  for (int i = 1; i <= kUpdates; ++i) {
    EXPECT_EQ(seen[i], rels[static_cast<size_t>(i)].empty() ? 0 : 1)
        << "update " << i;
  }
  for (size_t a = 0; a < out.size(); ++a) {
    for (size_t b = a + 1; b < out.size(); ++b) {
      bool overlap = false;
      for (ViewId v : out[a].views) {
        if (std::find(out[b].views.begin(), out[b].views.end(), v) !=
            out[b].views.end()) {
          overlap = true;
        }
      }
      if (overlap) {
        EXPECT_LT(out[a].rows.back(), out[b].rows.front())
            << "dependent transactions out of order";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpaPromptnessTest, ::testing::Range(1, 21));

}  // namespace
}  // namespace mvc
