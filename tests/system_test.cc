// End-to-end system tests: the full Figure 1 pipeline on the paper's
// scenarios, the sequential baseline, distributed merge, mixed manager
// kinds, global transactions, and the no-coordination counterexample.

#include <gtest/gtest.h>

#include "system/warehouse_system.h"
#include "workload/generator.h"
#include "workload/paper_examples.h"

namespace mvc {
namespace {

std::unique_ptr<WarehouseSystem> BuildAndRun(SystemConfig config) {
  auto system = WarehouseSystem::Build(std::move(config));
  MVC_CHECK(system.ok()) << system.status().ToString();
  (*system)->Run();
  return std::move(system).value();
}

TEST(SystemTest, Table1ScenarioIsCompleteUnderSpa) {
  auto system = BuildAndRun(Table1Scenario());
  ConsistencyChecker checker = system->MakeChecker();
  EXPECT_TRUE(checker.CheckComplete(system->recorder()).ok());

  // Both views updated in ONE warehouse transaction: the Example 1
  // inconsistency window cannot exist.
  ASSERT_EQ(system->recorder().commits().size(), 1u);
  EXPECT_EQ(system->recorder().commits()[0].txn.views,
            (std::vector<ViewId>{*system->registry().FindView("V1"),
                                 *system->registry().FindView("V2")}));
  EXPECT_EQ((*system->warehouse().views().GetTable("V1"))
                ->CountOf(Tuple{1, 2, 3}),
            1);
  EXPECT_EQ((*system->warehouse().views().GetTable("V2"))
                ->CountOf(Tuple{2, 3, 4}),
            1);
}

TEST(SystemTest, Example3ScenarioCompleteWithLatency) {
  SystemConfig config = Example3Scenario();
  config.latency = LatencyModel::Uniform(500, 3000);
  config.seed = 7;
  auto system = BuildAndRun(std::move(config));
  ConsistencyChecker checker = system->MakeChecker();
  EXPECT_TRUE(checker.CheckComplete(system->recorder()).ok())
      << checker.CheckComplete(system->recorder());
}

TEST(SystemTest, Example5ScenarioStrongWithStrongManagers) {
  SystemConfig config = Example5Scenario();
  config.manager_kinds = {{"V1", ManagerKind::kStrong},
                          {"V2", ManagerKind::kStrong},
                          {"V3", ManagerKind::kStrong}};
  config.vm_options.delta_cost = 3000;  // force batching under load
  config.latency = LatencyModel::Uniform(500, 1000);
  auto system = BuildAndRun(std::move(config));
  // Auto algorithm selection must have chosen PA.
  ASSERT_EQ(system->merges().size(), 1u);
  EXPECT_EQ(system->merges()[0]->engine().algorithm(), MergeAlgorithm::kPA);
  ConsistencyChecker checker = system->MakeChecker();
  EXPECT_TRUE(checker.CheckStrong(system->recorder()).ok())
      << checker.CheckStrong(system->recorder());
}

TEST(SystemTest, SequentialBaselineIsComplete) {
  SystemConfig config = Example3Scenario();
  config.sequential_baseline = true;
  config.sequential.delta_cost = 1000;
  auto system = BuildAndRun(std::move(config));
  ConsistencyChecker checker = system->MakeChecker();
  EXPECT_TRUE(checker.CheckComplete(system->recorder()).ok())
      << checker.CheckComplete(system->recorder());
  EXPECT_EQ(system->sequential_integrator()->num_updates(), 3);
}

TEST(SystemTest, DistributedMergeUsesDisjointGroups) {
  // V1/V2 share S; V3 (over Q) is disjoint: two merge processes.
  SystemConfig config = Example3Scenario();
  config.num_merge_processes = 2;
  auto system = BuildAndRun(std::move(config));
  ASSERT_EQ(system->merges().size(), 2u);
  EXPECT_EQ(system->view_groups()[0].views,
            (std::vector<std::string>{"V1", "V2"}));
  EXPECT_EQ(system->view_groups()[1].views,
            (std::vector<std::string>{"V3"}));
  ConsistencyChecker checker = system->MakeChecker();
  EXPECT_TRUE(checker.CheckComplete(system->recorder()).ok())
      << checker.CheckComplete(system->recorder());
}

TEST(SystemTest, MixedManagerKindsFallBackToWeakestAlgorithm) {
  SystemConfig config = Example3Scenario();
  // V1 complete, V2 strong -> same group -> PA; V3 complete alone -> SPA.
  config.manager_kinds = {{"V2", ManagerKind::kStrong}};
  config.num_merge_processes = 2;
  auto system = BuildAndRun(std::move(config));
  ASSERT_EQ(system->merges().size(), 2u);
  EXPECT_EQ(system->merges()[0]->engine().algorithm(), MergeAlgorithm::kPA);
  EXPECT_EQ(system->merges()[1]->engine().algorithm(), MergeAlgorithm::kSPA);
  ConsistencyChecker checker = system->MakeChecker();
  EXPECT_TRUE(checker.CheckStrong(system->recorder()).ok())
      << checker.CheckStrong(system->recorder());
}

TEST(SystemTest, ConvergentManagersConvergeWithoutIntermediateGuarantees) {
  SystemConfig config = Example3Scenario();
  config.manager_kinds = {{"V1", ManagerKind::kConvergent},
                          {"V2", ManagerKind::kConvergent},
                          {"V3", ManagerKind::kConvergent}};
  auto system = BuildAndRun(std::move(config));
  ConsistencyChecker checker = system->MakeChecker();
  EXPECT_TRUE(checker.CheckConvergent(system->recorder()).ok())
      << checker.CheckConvergent(system->recorder());
}

TEST(SystemTest, PeriodicManagerIsStrong) {
  SystemConfig config = Example3Scenario();
  config.manager_kinds = {{"V1", ManagerKind::kPeriodic},
                          {"V2", ManagerKind::kPeriodic},
                          {"V3", ManagerKind::kPeriodic}};
  config.periodic_options.period = 10000;
  auto system = BuildAndRun(std::move(config));
  ConsistencyChecker checker = system->MakeChecker();
  EXPECT_TRUE(checker.CheckStrong(system->recorder()).ok())
      << checker.CheckStrong(system->recorder());
}

TEST(SystemTest, CompleteNManagerIsStrong) {
  SystemConfig config = Example3Scenario();
  config.manager_kinds = {{"V2", ManagerKind::kCompleteN}};
  config.complete_n = 2;
  auto system = BuildAndRun(std::move(config));
  ConsistencyChecker checker = system->MakeChecker();
  EXPECT_TRUE(checker.CheckStrong(system->recorder()).ok())
      << checker.CheckStrong(system->recorder());
}

TEST(SystemTest, GlobalTransactionUpdatesAllViewsAtomically) {
  // Section 6.2: one global transaction inserts into S (src0) and Q
  // (src1); V1/V2 and V3 must move together.
  SystemConfig config = PaperBaseConfig();
  config.initial_data["R"] = {Tuple{1, 2}};
  config.initial_data["T"] = {Tuple{3, 4}};
  config.views = {PaperV1(), PaperV2(), PaperV3()};
  Injection part1;
  part1.at = 1000;
  part1.source = "src0";
  part1.updates = {Update::Insert("src0", "S", Tuple{2, 3})};
  part1.global_txn_id = 5;
  part1.global_participants = 2;
  Injection part2 = part1;
  part2.source = "src1";
  part2.updates = {Update::Insert("src1", "Q", Tuple{7, 8})};
  config.workload = {part1, part2};

  auto system = BuildAndRun(std::move(config));
  ASSERT_EQ(system->recorder().commits().size(), 1u);
  EXPECT_EQ(system->recorder().commits()[0].txn.views,
            (std::vector<ViewId>{*system->registry().FindView("V1"),
                                 *system->registry().FindView("V2"),
                                 *system->registry().FindView("V3")}));
  ConsistencyChecker checker = system->MakeChecker();
  EXPECT_TRUE(checker.CheckComplete(system->recorder()).ok())
      << checker.CheckComplete(system->recorder());
}

TEST(SystemTest, PiggybackRelSchemePreservesCompleteness) {
  SystemConfig config = Example3Scenario();
  config.integrator.piggyback_rel = true;
  config.latency = LatencyModel::Uniform(500, 2000);
  auto system = BuildAndRun(std::move(config));
  ConsistencyChecker checker = system->MakeChecker();
  EXPECT_TRUE(checker.CheckComplete(system->recorder()).ok())
      << checker.CheckComplete(system->recorder());
}

TEST(SystemTest, WithoutMergeCoordinationMvcIsViolated) {
  // Negative control: bypass the painting algorithms (pass-through) for
  // complete managers and add asymmetric latencies; with several views
  // over the shared relation some seed exhibits an Example 1 window.
  bool violated = false;
  for (uint64_t seed = 1; seed <= 25 && !violated; ++seed) {
    SystemConfig config = Example3Scenario();
    config.auto_algorithm = false;
    config.merge.algorithm = MergeAlgorithm::kPassThrough;
    config.latency = LatencyModel::Uniform(500, 8000);
    config.vm_options.delta_cost = 2000;
    config.seed = seed;
    auto system = BuildAndRun(std::move(config));
    ConsistencyChecker checker = system->MakeChecker();
    if (!checker.CheckStrong(system->recorder()).ok()) violated = true;
    // Convergence still holds: every AL is eventually applied.
    EXPECT_TRUE(checker.CheckConvergent(system->recorder()).ok());
  }
  EXPECT_TRUE(violated)
      << "pass-through should violate MVC for some interleaving";
}

TEST(SystemTest, ThreadRuntimeEndToEnd) {
  SystemConfig config = Example3Scenario();
  config.use_threads = true;
  auto system = BuildAndRun(std::move(config));
  ConsistencyChecker checker = system->MakeChecker();
  EXPECT_TRUE(checker.CheckComplete(system->recorder()).ok())
      << checker.CheckComplete(system->recorder());
}

TEST(SystemTest, GeneratorProducesRunnableScenario) {
  WorkloadSpec spec;
  spec.num_transactions = 30;
  spec.seed = 5;
  auto config = GenerateScenario(spec);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->workload.size(), 30u);
  auto system = BuildAndRun(std::move(*config));
  ConsistencyChecker checker = system->MakeChecker();
  EXPECT_TRUE(checker.CheckComplete(system->recorder()).ok())
      << checker.CheckComplete(system->recorder());
}

TEST(SystemTest, BuildRejectsUnhostedRelation) {
  SystemConfig config = Table1Scenario();
  config.schemas["Z"] = Schema::AllInt64({"A"});
  EXPECT_FALSE(WarehouseSystem::Build(std::move(config)).ok());
}

TEST(SystemTest, BuildRejectsDoublyHostedRelation) {
  SystemConfig config = Table1Scenario();
  config.sources["src1"].push_back("R");
  EXPECT_FALSE(WarehouseSystem::Build(std::move(config)).ok());
}

}  // namespace
}  // namespace mvc

namespace mvc {
namespace {

TEST(SystemTest, RejectsTransactionsSpanningDisjointMergeGroups) {
  // V1 over {R,S} and V3 over {Q} are disjoint groups under 2 merge
  // processes; a single transaction updating S and Q would need
  // cross-group atomicity, which distributed merge cannot provide.
  SystemConfig config = PaperBaseConfig();
  config.views = {PaperV1(), PaperV3()};
  config.num_merge_processes = 2;
  Injection inj;
  inj.at = 1000;
  inj.source = "src0";
  inj.updates = {Update::Insert("src0", "S", Tuple{2, 3})};
  Injection spanning;
  spanning.at = 2000;
  spanning.source = "src1";
  spanning.updates = {Update::Insert("src1", "Q", Tuple{1, 1}),
                      Update::Insert("src1", "T", Tuple{9, 9})};
  config.workload = {inj, spanning};
  // T is not in any view: the second txn touches only group {V3}: OK.
  ASSERT_TRUE(WarehouseSystem::Build(config).ok());

  // Now make it genuinely span: S (group of V1) and Q (group of V3) at
  // their respective sources via a global transaction.
  SystemConfig bad = PaperBaseConfig();
  bad.views = {PaperV1(), PaperV3()};
  bad.num_merge_processes = 2;
  Injection part1;
  part1.at = 1000;
  part1.source = "src0";
  part1.updates = {Update::Insert("src0", "S", Tuple{2, 3})};
  part1.global_txn_id = 9;
  part1.global_participants = 2;
  Injection part2 = part1;
  part2.source = "src1";
  part2.updates = {Update::Insert("src1", "Q", Tuple{1, 1})};
  bad.workload = {part1, part2};
  auto result = WarehouseSystem::Build(bad);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("disjoint merge groups"),
            std::string::npos);

  // The same workload under a single merge process is fine.
  bad = PaperBaseConfig();
  bad.views = {PaperV1(), PaperV3()};
  bad.num_merge_processes = 1;
  bad.workload = {part1, part2};
  auto ok = WarehouseSystem::Build(std::move(bad));
  ASSERT_TRUE(ok.ok());
  (*ok)->Run();
  ConsistencyChecker checker = (*ok)->MakeChecker();
  EXPECT_TRUE(checker.CheckComplete((*ok)->recorder()).ok());
}

}  // namespace
}  // namespace mvc
