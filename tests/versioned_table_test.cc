// Unit tests for the MVCC storage substrate: VersionedTable chunk
// sharing / copy-on-write, VersionedStore retention and refcount GC,
// and the materialize-equals-flat-Table equivalence oracle that
// cross-checks the versioned implementation against Table row for row.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/delta.h"
#include "storage/table.h"
#include "storage/versioned_store.h"
#include "storage/versioned_table.h"

namespace mvc {
namespace {

Schema OneCol() { return Schema::AllInt64({"A"}); }

TEST(VersionedTableTest, MirrorsTableSemantics) {
  VersionedTable vt("V", OneCol());
  ASSERT_TRUE(vt.Insert(Tuple{1}, 2).ok());
  ASSERT_TRUE(vt.Insert(Tuple{2}).ok());
  EXPECT_EQ(vt.CountOf(Tuple{1}), 2);
  EXPECT_EQ(vt.CountOf(Tuple{2}), 1);
  EXPECT_EQ(vt.NumDistinct(), 2u);
  EXPECT_EQ(vt.NumRows(), 3);
  ASSERT_TRUE(vt.Delete(Tuple{1}).ok());
  EXPECT_EQ(vt.CountOf(Tuple{1}), 1);
  // Over-deletion fails with the same error class as Table.
  EXPECT_TRUE(vt.Delete(Tuple{1}, 5).IsFailedPrecondition());
  EXPECT_EQ(vt.CountOf(Tuple{1}), 1) << "failed delete must not mutate";
  vt.Clear();
  EXPECT_TRUE(vt.empty());
}

TEST(VersionedTableTest, ApplyDeltaValidatesBeforeMutating) {
  VersionedTable vt("V", OneCol());
  ASSERT_TRUE(vt.Insert(Tuple{1}, 1).ok());
  TableDelta bad;
  bad.target = "V";
  bad.Add(Tuple{7}, 3);    // would succeed
  bad.Add(Tuple{1}, -2);   // over-deletes
  EXPECT_TRUE(vt.ApplyDelta(bad).IsFailedPrecondition());
  // Atomically-in-effect: nothing from the failed delta landed.
  EXPECT_EQ(vt.CountOf(Tuple{7}), 0);
  EXPECT_EQ(vt.CountOf(Tuple{1}), 1);
}

TEST(VersionedTableTest, SingleTupleCommitSharesAllUntouchedChunks) {
  // Seed enough rows that every chunk is populated, seal, touch one
  // tuple, seal again: the two versions must share every chunk pointer
  // except the one the write landed in.
  VersionedTable vt("V", OneCol());
  for (int64_t i = 0; i < 256; ++i) {
    ASSERT_TRUE(vt.Insert(Tuple{i}).ok());
  }
  TableVersion v1 = vt.Seal();
  ASSERT_TRUE(vt.Insert(Tuple{999}).ok());
  TableVersion v2 = vt.Seal();

  ASSERT_EQ(v1.chunks->size(), v2.chunks->size());
  size_t shared = 0, copied = 0;
  for (size_t i = 0; i < v1.chunks->size(); ++i) {
    if ((*v1.chunks)[i] == (*v2.chunks)[i]) {
      ++shared;
    } else {
      ++copied;
    }
  }
  EXPECT_EQ(copied, 1u) << "a single-tuple commit must copy exactly the "
                           "one chunk it touches";
  EXPECT_EQ(shared, v1.chunks->size() - 1);
  // Both versions stay independently readable.
  EXPECT_EQ(v1.CountOf(Tuple{999}), 0);
  EXPECT_EQ(v2.CountOf(Tuple{999}), 1);
  EXPECT_EQ(v1.total_count, 256);
  EXPECT_EQ(v2.total_count, 257);
}

TEST(VersionedTableTest, SealedVersionIsImmuneToLaterWrites) {
  VersionedTable vt("V", OneCol());
  ASSERT_TRUE(vt.Insert(Tuple{1}, 4).ok());
  TableVersion v1 = vt.Seal();
  ASSERT_TRUE(vt.Delete(Tuple{1}, 4).ok());
  ASSERT_TRUE(vt.Insert(Tuple{2}, 9).ok());
  EXPECT_EQ(v1.CountOf(Tuple{1}), 4);
  EXPECT_EQ(v1.CountOf(Tuple{2}), 0);
  Table flat = v1.Materialize();
  EXPECT_EQ(flat.CountOf(Tuple{1}), 4);
  EXPECT_EQ(flat.NumRows(), 4);
}

TEST(VersionedTableTest, MaterializeEqualsFlatTableUnderRandomDeltas) {
  // Equivalence oracle: drive a plain Table and a VersionedTable with
  // the same random delta stream (sealing at random points) and demand
  // identical contents — including the canonical ToString rendering —
  // after every step.
  Rng rng(42);
  Table flat("V", OneCol());
  VersionedTable vt("V", OneCol());
  for (int step = 0; step < 300; ++step) {
    TableDelta delta;
    delta.target = "V";
    const int rows = static_cast<int>(rng.UniformInt(1, 4));
    for (int r = 0; r < rows; ++r) {
      Tuple t{rng.UniformInt(0, 40)};
      int64_t count = rng.UniformInt(1, 3);
      if (rng.Bernoulli(0.4)) {
        // Delete up to the current multiplicity so the delta is valid.
        int64_t present = flat.CountOf(t);
        if (present == 0) continue;
        count = -rng.UniformInt(1, present);
      }
      delta.Add(std::move(t), count);
    }
    delta.Normalize();
    if (delta.empty()) continue;
    Status flat_st = delta.ApplyTo(&flat);
    Status vt_st = vt.ApplyDelta(delta);
    ASSERT_EQ(flat_st.ok(), vt_st.ok()) << "step " << step;
    if (rng.Bernoulli(0.3)) {
      TableVersion version = vt.Seal();
      ASSERT_EQ(version.Materialize().ToString(), flat.ToString())
          << "sealed version diverged at step " << step;
    }
    ASSERT_EQ(vt.NumRows(), flat.NumRows()) << "step " << step;
    ASSERT_EQ(vt.Materialize().ToString(), flat.ToString())
        << "working state diverged at step " << step;
  }
  EXPECT_GT(vt.chunks_copied(), 0) << "the oracle should exercise COW";
}

TEST(VersionedTableTest, GrowthKeepsContentsAndBoundsChunkSize) {
  VersionedTable vt("V", OneCol(), /*target_chunk_rows=*/8);
  const size_t initial_chunks = vt.num_chunks();
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(vt.Insert(Tuple{i}).ok());
  }
  EXPECT_GT(vt.num_chunks(), initial_chunks);
  // Power-of-two partition count is a structural invariant (masked hash).
  EXPECT_EQ(vt.num_chunks() & (vt.num_chunks() - 1), 0u);
  EXPECT_EQ(vt.NumRows(), 1000);
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(vt.CountOf(Tuple{i}), 1) << i;
  }
}

/// Store helper: one table "V", `commits` sequential commits each
/// inserting one fresh tuple.
VersionedStore MakeStore(size_t max_retained, int64_t commits) {
  VersionedStore store(max_retained);
  MVC_CHECK(store.CreateTable("V", OneCol()).ok());
  store.Commit(0);
  for (int64_t c = 1; c <= commits; ++c) {
    MVC_CHECK((*store.GetTable("V"))->Insert(Tuple{c}).ok());
    store.Commit(c);
  }
  return store;
}

TEST(VersionedStoreTest, RetentionBoundsTheWindow) {
  VersionedStore store = MakeStore(/*max_retained=*/2, /*commits=*/5);
  EXPECT_EQ(store.latest_commit(), 5);
  // Window = current + 2 past versions; older versions are unreachable.
  EXPECT_EQ(store.versions_live(), 3u);
  EXPECT_EQ(store.watermark(), 3);
  EXPECT_TRUE(store.AcquireSnapshotAt(3).ok());
  EXPECT_TRUE(store.AcquireSnapshotAt(5).ok());
  Result<SnapshotHandle> gone = store.AcquireSnapshotAt(2);
  ASSERT_FALSE(gone.ok());
  EXPECT_TRUE(gone.status().IsNotFound());
  EXPECT_NE(gone.status().message().find("garbage-collected"),
            std::string::npos);
  // Never-published commits report that, not a GC message.
  EXPECT_TRUE(store.AcquireSnapshotAt(99).status().IsNotFound());
}

TEST(VersionedStoreTest, HandlePinsEvictedVersionAndWatermarkTracksIt) {
  VersionedStore store(0);  // keep only the current version
  ASSERT_TRUE(store.CreateTable("V", OneCol()).ok());
  store.Commit(0);
  SnapshotHandle pin = store.AcquireSnapshot();
  ASSERT_EQ(pin.commit_id(), 0);

  ASSERT_TRUE((*store.GetTable("V"))->Insert(Tuple{1}).ok());
  store.Commit(1);
  ASSERT_TRUE((*store.GetTable("V"))->Insert(Tuple{2}).ok());
  store.Commit(2);

  // Version 0 left the window but the handle keeps it alive.
  EXPECT_EQ(store.versions_live(), 2u);
  EXPECT_EQ(store.watermark(), 0);
  EXPECT_EQ(pin.version().Find("V")->total_count, 0);

  // Releasing the handle is the GC trigger: the watermark advances and
  // the version count drops without any explicit free.
  pin.Release();
  store.CollectGarbage();
  EXPECT_EQ(store.versions_live(), 1u);
  EXPECT_EQ(store.watermark(), 2);
}

TEST(VersionedStoreTest, SnapshotIsOhOneAndConsistentAcrossTables) {
  VersionedStore store(4);
  ASSERT_TRUE(store.CreateTable("V1", OneCol()).ok());
  ASSERT_TRUE(store.CreateTable("V2", OneCol()).ok());
  store.Commit(0);
  ASSERT_TRUE((*store.GetTable("V1"))->Insert(Tuple{1}).ok());
  ASSERT_TRUE((*store.GetTable("V2"))->Insert(Tuple{10}).ok());
  store.Commit(1);
  SnapshotHandle at1 = store.AcquireSnapshot();

  ASSERT_TRUE((*store.GetTable("V1"))->Insert(Tuple{2}).ok());
  store.Commit(2);

  // The handle still shows both tables exactly as of commit 1.
  Result<Table> v1 = at1.MaterializeTable("V1");
  Result<Table> v2 = at1.MaterializeTable("V2");
  ASSERT_TRUE(v1.ok() && v2.ok());
  EXPECT_EQ(v1->NumRows(), 1);
  EXPECT_EQ(v1->CountOf(Tuple{2}), 0);
  EXPECT_EQ(v2->CountOf(Tuple{10}), 1);
  EXPECT_TRUE(at1.MaterializeTable("nope").status().IsNotFound());
}

TEST(VersionedStoreTest, CommitCopiesOnlyTouchedChunks) {
  // The structural-sharing claim at store level: across many commits
  // each touching one tuple, the cumulative chunks copied stays linear
  // in the number of commits, not commits x chunks.
  VersionedStore store(64);
  ASSERT_TRUE(store.CreateTable("V", OneCol()).ok());
  VersionedTable* table = *store.GetTable("V");
  for (int64_t i = 0; i < 512; ++i) {
    ASSERT_TRUE(table->Insert(Tuple{i}).ok());
  }
  store.Commit(0);
  const int64_t baseline = table->chunks_copied();
  const size_t chunks = table->num_chunks();
  ASSERT_GT(chunks, 4u);
  for (int64_t c = 1; c <= 32; ++c) {
    ASSERT_TRUE(table->Insert(Tuple{10000 + c}).ok());
    store.Commit(c);
  }
  // One touched chunk per commit (growth is impossible here: 32 inserts
  // over 512 rows never exceeds the per-chunk target).
  EXPECT_EQ(table->chunks_copied() - baseline, 32);
}

TEST(VersionedTableTest, SealBuildsColumnarForEveryChunk) {
  // The read-tier invariant: every chunk reachable from a sealed version
  // carries its columnar projection, and the projection is a faithful
  // transcription of the chunk's (tuple -> multiplicity) map.
  VersionedTable table("V", Schema::AllInt64({"A", "B"}));
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(table.Insert(Tuple{i, i * 2}, 1 + i % 3).ok());
  }
  TableVersion version = table.Seal();
  size_t distinct = 0;
  int64_t total = 0;
  for (const ChunkPtr& chunk : *version.chunks) {
    ASSERT_NE(chunk->columnar, nullptr);
    ASSERT_EQ(chunk->columnar->columns.size(), 2u);
    ASSERT_EQ(chunk->columnar->rows(), chunk->rows.size());
    for (size_t r = 0; r < chunk->columnar->rows(); ++r) {
      const Tuple row = chunk->columnar->RowTuple(r);
      EXPECT_EQ(chunk->rows.at(row), chunk->columnar->counts[r]);
      ++distinct;
      total += chunk->columnar->counts[r];
    }
  }
  EXPECT_EQ(distinct, version.distinct);
  EXPECT_EQ(total, version.total_count);
}

TEST(VersionedTableTest, UntouchedChunksShareColumnarAcrossSeals) {
  // Copy-on-write must never serve a stale projection: the one chunk a
  // write touches gets a freshly built ColumnBlock at the next seal,
  // while every untouched chunk shares its block with the prior version
  // by pointer (no rebuild, no copy).
  VersionedTable table("V", Schema::AllInt64({"A", "B"}));
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(table.Insert(Tuple{i, i * 2}).ok());
  }
  TableVersion v1 = table.Seal();
  ASSERT_TRUE(table.Insert(Tuple{999, 0}).ok());
  TableVersion v2 = table.Seal();
  ASSERT_EQ(v1.chunks->size(), v2.chunks->size());
  size_t shared = 0;
  size_t rebuilt = 0;
  for (size_t i = 0; i < v1.chunks->size(); ++i) {
    if ((*v1.chunks)[i]->columnar == (*v2.chunks)[i]->columnar) {
      ++shared;
    } else {
      ++rebuilt;
    }
  }
  EXPECT_EQ(rebuilt, 1u);
  EXPECT_EQ(shared, v1.chunks->size() - 1);
  // The prior version's projection still reflects the prior contents.
  int64_t v1_total = 0;
  for (const ChunkPtr& chunk : *v1.chunks) {
    ASSERT_NE(chunk->columnar, nullptr);
    for (int64_t count : chunk->columnar->counts) v1_total += count;
  }
  EXPECT_EQ(v1_total, v1.total_count);
  EXPECT_EQ(v2.total_count, v1.total_count + 1);
}

}  // namespace
}  // namespace mvc
