// Unit tests for the storage substrate: values, schemas, bag tables,
// catalogs, deltas, update records.

#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/delta.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/update.h"
#include "storage/value.h"

namespace mvc {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(7).type(), ValueType::kInt64);
  EXPECT_EQ(Value(7).AsInt64(), 7);
  EXPECT_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
}

TEST(ValueTest, TotalOrderWithinAndAcrossTypes) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value(1.0), Value(2.0));
  EXPECT_LT(Value("a"), Value("b"));
  // Cross-type order: NULL < INT64 < DOUBLE < STRING (variant index).
  EXPECT_LT(Value(), Value(0));
  EXPECT_LT(Value(99), Value(0.5));
  EXPECT_LT(Value(0.5), Value(""));
}

TEST(ValueTest, EqualityAndHash) {
  EXPECT_EQ(Value(3), Value(3));
  EXPECT_NE(Value(3), Value(4));
  EXPECT_NE(Value(3), Value(3.0));  // different types are not equal
  EXPECT_EQ(Value(3).Hash(), Value(3).Hash());
  EXPECT_NE(Value(3).Hash(), Value(4).Hash());
}

TEST(ValueTest, NumericView) {
  EXPECT_TRUE(Value(3).IsNumeric());
  EXPECT_TRUE(Value(3.5).IsNumeric());
  EXPECT_FALSE(Value("x").IsNumeric());
  EXPECT_DOUBLE_EQ(Value(3).AsNumeric(), 3.0);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value("ab").ToString(), "'ab'");
}

TEST(SchemaTest, LookupAndValidation) {
  Schema schema = Schema::AllInt64({"A", "B"});
  EXPECT_EQ(schema.num_columns(), 2u);
  EXPECT_EQ(*schema.FindColumn("B"), 1u);
  EXPECT_FALSE(schema.FindColumn("Z").has_value());
  EXPECT_TRUE(schema.ColumnIndex("Z").status().IsNotFound());
  EXPECT_TRUE(schema.ValidateTuple(Tuple{1, 2}).ok());
  EXPECT_TRUE(schema.ValidateTuple(Tuple{1}).IsInvalidArgument());
  EXPECT_TRUE(schema.ValidateTuple(Tuple{1, "x"}).IsInvalidArgument());
  // NULLs are allowed in any column.
  EXPECT_TRUE(schema.ValidateTuple(Tuple{Value(), 2}).ok());
}

TEST(SchemaTest, EqualityAndToString) {
  EXPECT_EQ(Schema::AllInt64({"A"}), Schema::AllInt64({"A"}));
  EXPECT_NE(Schema::AllInt64({"A"}), Schema::AllInt64({"B"}));
  EXPECT_EQ(Schema::AllInt64({"A", "B"}).ToString(), "(A INT64, B INT64)");
}

TEST(TupleTest, HashAndToString) {
  EXPECT_EQ(TupleHash{}(Tuple{1, 2}), TupleHash{}(Tuple{1, 2}));
  EXPECT_NE(TupleHash{}(Tuple{1, 2}), TupleHash{}(Tuple{2, 1}));
  EXPECT_EQ(TupleToString(Tuple{1, "x"}), "[1, 'x']");
}

class TableTest : public ::testing::Test {
 protected:
  Table table_{"R", Schema::AllInt64({"A", "B"})};
};

TEST_F(TableTest, InsertAndCount) {
  ASSERT_TRUE(table_.Insert(Tuple{1, 2}).ok());
  ASSERT_TRUE(table_.Insert(Tuple{1, 2}).ok());
  ASSERT_TRUE(table_.Insert(Tuple{3, 4}, 5).ok());
  EXPECT_EQ(table_.CountOf(Tuple{1, 2}), 2);
  EXPECT_EQ(table_.CountOf(Tuple{3, 4}), 5);
  EXPECT_EQ(table_.NumDistinct(), 2u);
  EXPECT_EQ(table_.NumRows(), 7);
}

TEST_F(TableTest, InsertValidatesSchema) {
  EXPECT_TRUE(table_.Insert(Tuple{1}).IsInvalidArgument());
  EXPECT_TRUE(table_.Insert(Tuple{1, "x"}).IsInvalidArgument());
  EXPECT_TRUE(table_.Insert(Tuple{1, 2}, 0).IsInvalidArgument());
  EXPECT_TRUE(table_.Insert(Tuple{1, 2}, -3).IsInvalidArgument());
}

TEST_F(TableTest, DeleteDecrementsAndRemoves) {
  ASSERT_TRUE(table_.Insert(Tuple{1, 2}, 3).ok());
  ASSERT_TRUE(table_.Delete(Tuple{1, 2}).ok());
  EXPECT_EQ(table_.CountOf(Tuple{1, 2}), 2);
  ASSERT_TRUE(table_.Delete(Tuple{1, 2}, 2).ok());
  EXPECT_FALSE(table_.Contains(Tuple{1, 2}));
  EXPECT_TRUE(table_.empty());
}

TEST_F(TableTest, DeleteBeyondCountFails) {
  ASSERT_TRUE(table_.Insert(Tuple{1, 2}).ok());
  EXPECT_TRUE(table_.Delete(Tuple{1, 2}, 2).IsFailedPrecondition());
  EXPECT_TRUE(table_.Delete(Tuple{9, 9}).IsFailedPrecondition());
  // Failure must not change the table.
  EXPECT_EQ(table_.CountOf(Tuple{1, 2}), 1);
}

TEST_F(TableTest, ModifyMovesExactlyOneCopy) {
  ASSERT_TRUE(table_.Insert(Tuple{1, 2}, 2).ok());
  ASSERT_TRUE(table_.Modify(Tuple{1, 2}, Tuple{1, 3}).ok());
  EXPECT_EQ(table_.CountOf(Tuple{1, 2}), 1);
  EXPECT_EQ(table_.CountOf(Tuple{1, 3}), 1);
  EXPECT_TRUE(table_.Modify(Tuple{9, 9}, Tuple{1, 1}).IsNotFound());
  // Modifying the last copy removes the old image entirely.
  ASSERT_TRUE(table_.Modify(Tuple{1, 2}, Tuple{1, 4}).ok());
  EXPECT_EQ(table_.CountOf(Tuple{1, 2}), 0);
}

TEST_F(TableTest, SortedRowsDeterministic) {
  ASSERT_TRUE(table_.Insert(Tuple{3, 4}).ok());
  ASSERT_TRUE(table_.Insert(Tuple{1, 2}, 2).ok());
  auto rows = table_.SortedRows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].tuple, (Tuple{1, 2}));
  EXPECT_EQ(rows[0].count, 2);
  EXPECT_EQ(rows[1].tuple, (Tuple{3, 4}));
}

TEST_F(TableTest, ContentsEqualIsBagEquality) {
  Table other("X", Schema::AllInt64({"A", "B"}));
  ASSERT_TRUE(table_.Insert(Tuple{1, 2}, 2).ok());
  ASSERT_TRUE(other.Insert(Tuple{1, 2}).ok());
  EXPECT_FALSE(table_.ContentsEqual(other));
  ASSERT_TRUE(other.Insert(Tuple{1, 2}).ok());
  EXPECT_TRUE(table_.ContentsEqual(other));  // name differences ignored
}

TEST_F(TableTest, CloneIsDeep) {
  ASSERT_TRUE(table_.Insert(Tuple{1, 2}).ok());
  Table copy = table_.Clone();
  ASSERT_TRUE(copy.Delete(Tuple{1, 2}).ok());
  EXPECT_EQ(table_.CountOf(Tuple{1, 2}), 1);
  EXPECT_EQ(copy.CountOf(Tuple{1, 2}), 0);
}

TEST_F(TableTest, ClearEmptiesTable) {
  ASSERT_TRUE(table_.Insert(Tuple{1, 2}, 4).ok());
  table_.Clear();
  EXPECT_TRUE(table_.empty());
  EXPECT_EQ(table_.NumRows(), 0);
}

TEST(CatalogTest, CreateGetDrop) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("R", Schema::AllInt64({"A"})).ok());
  EXPECT_TRUE(catalog.CreateTable("R", Schema::AllInt64({"A"}))
                  .IsAlreadyExists());
  ASSERT_TRUE(catalog.GetTable("R").ok());
  EXPECT_TRUE(catalog.GetTable("S").status().IsNotFound());
  EXPECT_TRUE(catalog.HasTable("R"));
  EXPECT_EQ(catalog.TableNames(), (std::vector<std::string>{"R"}));
  ASSERT_TRUE(catalog.DropTable("R").ok());
  EXPECT_TRUE(catalog.DropTable("R").IsNotFound());
}

TEST(CatalogTest, CloneIsDeep) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("R", Schema::AllInt64({"A"})).ok());
  ASSERT_TRUE((*catalog.GetTable("R"))->Insert(Tuple{1}).ok());
  Catalog copy = catalog.Clone();
  ASSERT_TRUE((*copy.GetTable("R"))->Insert(Tuple{2}).ok());
  EXPECT_EQ((*catalog.GetTable("R"))->NumRows(), 1);
  EXPECT_EQ((*copy.GetTable("R"))->NumRows(), 2);
}

TEST(DeltaTest, NormalizeMergesAndDropsZeros) {
  TableDelta delta;
  delta.target = "V";
  delta.Add(Tuple{1}, 2);
  delta.Add(Tuple{1}, -1);
  delta.Add(Tuple{2}, 1);
  delta.Add(Tuple{2}, -1);
  delta.Normalize();
  ASSERT_EQ(delta.rows.size(), 1u);
  EXPECT_EQ(delta.rows[0].tuple, (Tuple{1}));
  EXPECT_EQ(delta.rows[0].count, 1);
}

TEST(DeltaTest, AddIgnoresZero) {
  TableDelta delta;
  delta.Add(Tuple{1}, 0);
  EXPECT_TRUE(delta.empty());
}

TEST(DeltaTest, ApplyToInsertsAndDeletes) {
  Table table("V", Schema::AllInt64({"A"}));
  ASSERT_TRUE(table.Insert(Tuple{1}, 2).ok());
  TableDelta delta;
  delta.Add(Tuple{1}, -1);
  delta.Add(Tuple{2}, 3);
  ASSERT_TRUE(delta.ApplyTo(&table).ok());
  EXPECT_EQ(table.CountOf(Tuple{1}), 1);
  EXPECT_EQ(table.CountOf(Tuple{2}), 3);
}

TEST(DeltaTest, ApplyToFailsAtomically) {
  Table table("V", Schema::AllInt64({"A"}));
  ASSERT_TRUE(table.Insert(Tuple{1}).ok());
  TableDelta delta;
  delta.Add(Tuple{2}, 1);
  delta.Add(Tuple{1}, -2);  // over-delete
  EXPECT_TRUE(delta.ApplyTo(&table).IsFailedPrecondition());
  // Nothing applied.
  EXPECT_EQ(table.CountOf(Tuple{1}), 1);
  EXPECT_EQ(table.CountOf(Tuple{2}), 0);
}

TEST(DeltaTest, ApplyToNetsOutSelfCancellingRows) {
  Table table("V", Schema::AllInt64({"A"}));
  TableDelta delta;
  delta.Add(Tuple{5}, -1);
  delta.Add(Tuple{5}, 1);  // nets to zero: legal even though absent
  ASSERT_TRUE(delta.ApplyTo(&table).ok());
  EXPECT_TRUE(table.empty());
}

TEST(UpdateTest, FactoriesAndToString) {
  Update ins = Update::Insert("s", "R", Tuple{1});
  EXPECT_EQ(ins.op, UpdateOp::kInsert);
  Update del = Update::Delete("s", "R", Tuple{1});
  EXPECT_EQ(del.op, UpdateOp::kDelete);
  Update mod = Update::Modify("s", "R", Tuple{1}, Tuple{2});
  EXPECT_EQ(mod.op, UpdateOp::kModify);
  EXPECT_NE(ins, del);
  EXPECT_NE(mod.ToString().find("MODIFY"), std::string::npos);
  SourceTransaction txn;
  txn.local_seq = 3;
  txn.updates = {ins};
  EXPECT_NE(txn.ToString().find("seq=3"), std::string::npos);
}

}  // namespace
}  // namespace mvc
