// Crash-recovery tests: fault plans, checkpointed view managers, the
// merge-process WAL, and the consistency oracle across crash boundaries.
//
// The deterministic simulator makes every scenario exactly repeatable:
// the same seed and fault plan produce the same crash interleaving, so
// a recovery bug is a reproducible test failure, not a flake.

#include <algorithm>
#include <gtest/gtest.h>
#include <set>

#include "fault/fault_plan.h"
#include "parser/scenario_parser.h"
#include "system/run_report.h"
#include "system/warehouse_system.h"
#include "workload/generator.h"

namespace mvc {
namespace {

/// A generated workload long enough that every fault window overlaps
/// live traffic. Views V0..V2 over two sources, 40 transactions at a
/// mean 1ms apart.
Result<SystemConfig> BaseConfig(uint64_t seed) {
  WorkloadSpec spec;
  spec.seed = seed;
  spec.num_sources = 2;
  spec.relations_per_source = 2;
  spec.num_views = 3;
  spec.num_transactions = 40;
  spec.mean_interarrival = 1000;
  MVC_ASSIGN_OR_RETURN(SystemConfig config, GenerateScenario(spec));
  config.latency = LatencyModel::Uniform(200, 500);
  return config;
}

/// Crashes each view manager once and the merge process once, staggered
/// across the workload.
void AddFaults(SystemConfig* config) {
  config->fault.plan.events = {
      FaultEvent{"vm-V0", 5000, 6000},
      FaultEvent{"vm-V1", 9000, 6000},
      FaultEvent{"vm-V2", 13000, 6000},
      FaultEvent{"merge-0", 20000, 8000},
  };
  config->fault.checkpoint_every = 3;
}

std::unique_ptr<WarehouseSystem> BuildAndRun(SystemConfig config) {
  auto system = WarehouseSystem::Build(std::move(config));
  MVC_CHECK(system.ok()) << system.status().ToString();
  (*system)->Run();
  return std::move(system).value();
}


TEST(FaultPlanTest, ParseFaultSpec) {
  auto plan = ParseFaultSpec("vm-V1@5000+30000,merge-0@12000");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->events.size(), 2u);
  EXPECT_EQ(plan->events[0].target, "vm-V1");
  EXPECT_EQ(plan->events[0].at, 5000);
  EXPECT_EQ(plan->events[0].down_for, 30000);
  EXPECT_EQ(plan->events[1].target, "merge-0");
  EXPECT_EQ(plan->events[1].at, 12000);
  EXPECT_EQ(plan->events[1].down_for, 20000);  // default downtime

  EXPECT_FALSE(ParseFaultSpec("vm-V1").ok());
  EXPECT_FALSE(ParseFaultSpec("@5000").ok());
  EXPECT_FALSE(ParseFaultSpec("vm-V1@abc").ok());
}

TEST(FaultPlanTest, ScenarioFaultStatement) {
  auto config = ParseScenario(
      "source s { relation r(a, b); }\n"
      "view v = select * from r;\n"
      "txn @1000 s { insert r (1, 2); }\n"
      "fault vm-v @ 500 down 2000;\n"
      "fault merge-0 @ 800;\n");
  ASSERT_TRUE(config.ok()) << config.status();
  ASSERT_EQ(config->fault.plan.events.size(), 2u);
  EXPECT_EQ(config->fault.plan.events[0].target, "vm-v");
  EXPECT_EQ(config->fault.plan.events[0].at, 500);
  EXPECT_EQ(config->fault.plan.events[0].down_for, 2000);
  EXPECT_EQ(config->fault.plan.events[1].target, "merge-0");
}

TEST(FaultTest, BuildRejectsUnknownTarget) {
  auto config = BaseConfig(1);
  ASSERT_TRUE(config.ok());
  config->fault.plan.events = {FaultEvent{"vm-nope", 1000, 2000}};
  auto system = WarehouseSystem::Build(std::move(*config));
  ASSERT_FALSE(system.ok());
  EXPECT_NE(system.status().message().find("vm-nope"), std::string::npos)
      << system.status();
}

TEST(FaultTest, BuildRejectsConvergentManagers) {
  auto config = BaseConfig(1);
  ASSERT_TRUE(config.ok());
  config->manager_kinds["V0"] = ManagerKind::kConvergent;
  AddFaults(&*config);
  auto system = WarehouseSystem::Build(std::move(*config));
  ASSERT_FALSE(system.ok());
  EXPECT_NE(system.status().message().find("convergent"), std::string::npos)
      << system.status();
}

TEST(FaultTest, BuildRejectsPiggybackRel) {
  auto config = BaseConfig(1);
  ASSERT_TRUE(config.ok());
  config->integrator.piggyback_rel = true;
  AddFaults(&*config);
  EXPECT_FALSE(WarehouseSystem::Build(std::move(*config)).ok());
}

// The tentpole claim: crash every view manager once and the merge
// process once mid-workload; the run still reaches the same MVC verdict
// as the fault-free run, and the warehouse reflects the same updates.
TEST(FaultTest, CrashEveryProcessStillComplete) {
  auto clean_config = BaseConfig(11);
  ASSERT_TRUE(clean_config.ok());
  auto clean = BuildAndRun(std::move(*clean_config));
  ConsistencyChecker clean_checker = clean->MakeChecker();
  ASSERT_TRUE(clean_checker.CheckComplete(clean->recorder()).ok());

  auto config = BaseConfig(11);
  ASSERT_TRUE(config.ok());
  AddFaults(&*config);
  auto system = BuildAndRun(std::move(*config));

  // Every targeted process actually went down and came back.
  for (const auto& vm : system->view_managers()) {
    EXPECT_EQ(vm->crash_count(), 1) << vm->name();
    EXPECT_EQ(vm->recover_count(), 1) << vm->name();
    EXPECT_FALSE(vm->down()) << vm->name();
    EXPECT_FALSE(vm->recovering()) << vm->name();
  }
  ASSERT_EQ(system->merges().size(), 1u);
  EXPECT_EQ(system->merges()[0]->crash_count(), 1);
  EXPECT_EQ(system->merges()[0]->recover_count(), 1);
  EXPECT_FALSE(system->merges()[0]->resyncing());

  // Recovery machinery was exercised, not bypassed.
  EXPECT_GE(system->checkpoint_store()->checkpoints_saved(),
            static_cast<int64_t>(system->view_managers().size()));
  EXPECT_GT(system->merges()[0]->stats().log_entries_replayed, 0);

  // Same verdict as the fault-free run, and complete MVC holds across
  // every crash boundary (per-commit view equality + no duplicate AL).
  ConsistencyChecker checker = system->MakeChecker();
  Status verdict = checker.CheckComplete(system->recorder());
  EXPECT_TRUE(verdict.ok()) << verdict;

  // Same source schedule and, since both runs absorb the whole
  // workload, identical final warehouse contents. (Update *ids* are not
  // comparable across the runs: the injector's messages shift the
  // simulator's latency draws, so the integrator numbers arrivals
  // differently.)
  EXPECT_EQ(system->recorder().updates().size(),
            clean->recorder().updates().size());
  for (const std::string& view : clean->warehouse().views().TableNames()) {
    const Table* expected = *clean->warehouse().views().GetTable(view);
    const Table* actual = *system->warehouse().views().GetTable(view);
    EXPECT_TRUE(expected->ContentsEqual(*actual))
        << "view " << view << " diverged from the fault-free run";
  }
}

TEST(FaultTest, StrongManagersSurviveCrashes) {
  auto config = BaseConfig(23);
  ASSERT_TRUE(config.ok());
  for (const ViewDefinition& def : config->views) {
    config->manager_kinds[def.name] = ManagerKind::kStrong;
  }
  config->vm_options.delta_cost = 1500;  // force real batches
  AddFaults(&*config);
  auto system = BuildAndRun(std::move(*config));
  ConsistencyChecker checker = system->MakeChecker();
  Status verdict = checker.CheckStrong(system->recorder());
  EXPECT_TRUE(verdict.ok()) << verdict;
  for (const auto& vm : system->view_managers()) {
    EXPECT_EQ(vm->crash_count(), 1) << vm->name();
  }
  EXPECT_EQ(system->merges()[0]->crash_count(), 1);
}

// WAL audit: the submit entries the recovered merge's log ends up with
// must be exactly txn 1..N in order — replay regenerating an
// already-sent transaction (duplicate) or losing one (skip) would show
// up here even if the view contents happened to mask it.
TEST(FaultTest, MergeLogAuditNoDupNoSkip) {
  auto config = BaseConfig(11);
  ASSERT_TRUE(config.ok());
  AddFaults(&*config);
  auto system = BuildAndRun(std::move(*config));
  ASSERT_EQ(system->merge_logs().size(), 1u);

  std::vector<int64_t> submitted;
  int64_t acked = 0;
  for (const MergeLogEntry& entry : system->merge_logs()[0]->Snapshot()) {
    if (entry.kind == MergeLogEntry::Kind::kSubmit) {
      submitted.push_back(entry.txn_id);
    } else if (entry.kind == MergeLogEntry::Kind::kAck) {
      ++acked;
    }
  }
  ASSERT_FALSE(submitted.empty());
  for (size_t i = 0; i < submitted.size(); ++i) {
    EXPECT_EQ(submitted[i], static_cast<int64_t>(i) + 1)
        << "gap or duplicate in the submitted transaction sequence";
  }
  // Everything submitted was eventually acknowledged exactly once.
  EXPECT_EQ(acked, static_cast<int64_t>(submitted.size()));
  EXPECT_EQ(system->warehouse().transactions_committed(),
            static_cast<int64_t>(submitted.size()));
}

// Determinism: same seed + same fault plan => byte-identical report.
TEST(FaultTest, DeterministicReplayByteIdenticalReports) {
  std::string reports[2];
  for (int run = 0; run < 2; ++run) {
    auto config = BaseConfig(31);
    ASSERT_TRUE(config.ok());
    AddFaults(&*config);
    auto system = BuildAndRun(std::move(*config));
    reports[run] = RunReportString(*system);
  }
  EXPECT_FALSE(reports[0].empty());
  EXPECT_EQ(reports[0], reports[1]);
}

// Real threads: the same recovery protocol under genuine concurrency.
// Wall-clock fault times are generous multiples of the workload rate so
// the schedule overlaps live traffic without racing the run's end.
TEST(FaultTest, ThreadRuntimeFaultySmoke) {
  WorkloadSpec spec;
  spec.seed = 7;
  spec.num_sources = 2;
  spec.relations_per_source = 2;
  spec.num_views = 3;
  spec.num_transactions = 30;
  spec.mean_interarrival = 500;
  auto config = GenerateScenario(spec);
  ASSERT_TRUE(config.ok());
  config->use_threads = true;
  config->latency = LatencyModel::Uniform(0, 200);
  config->fault.plan.events = {
      FaultEvent{"vm-V0", 3000, 4000},
      FaultEvent{"merge-0", 6000, 4000},
  };
  auto system = BuildAndRun(std::move(*config));
  EXPECT_EQ(system->view_managers()[0]->crash_count(), 1);
  EXPECT_EQ(system->merges()[0]->crash_count(), 1);
  EXPECT_FALSE(system->merges()[0]->down());
  ConsistencyChecker checker = system->MakeChecker();
  Status verdict = checker.CheckStrong(system->recorder());
  EXPECT_TRUE(verdict.ok()) << verdict;
}

}  // namespace
}  // namespace mvc
