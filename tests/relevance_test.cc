// Unit tests for irrelevant-update detection (integrator REL pruning).

#include <gtest/gtest.h>

#include "query/relevance.h"
#include "workload/paper_examples.h"

namespace mvc {
namespace {

std::map<std::string, Schema> PaperSchemas() {
  return {{"R", Schema::AllInt64({"A", "B"})},
          {"S", Schema::AllInt64({"B", "C"})},
          {"T", Schema::AllInt64({"C", "D"})},
          {"Q", Schema::AllInt64({"D", "E"})}};
}

BoundView BindDef(const ViewDefinition& def) {
  auto bound = BoundView::Bind(def, PaperSchemas());
  MVC_CHECK(bound.ok()) << bound.status().ToString();
  return std::move(bound).value();
}

TEST(RelevanceTest, ForeignRelationIsIrrelevant) {
  BoundView v1 = BindDef(PaperV1());
  EXPECT_FALSE(TupleMayAffectView(v1, "Q", Tuple{1, 1}));
  EXPECT_FALSE(
      UpdateIsRelevant(v1, Update::Insert("s", "Q", Tuple{1, 1})));
}

TEST(RelevanceTest, MemberRelationWithoutSelectionIsRelevant) {
  BoundView v1 = BindDef(PaperV1());
  EXPECT_TRUE(TupleMayAffectView(v1, "S", Tuple{2, 3}));
  EXPECT_TRUE(TupleMayAffectView(v1, "R", Tuple{0, 0}));
}

ViewDefinition SelectiveView() {
  ViewDefinition def;
  def.name = "Sel";
  def.relations = {"R", "S"};
  def.predicate = Predicate::And(
      {Predicate::ColEqCol(ColumnRef{"R", "B"}, ColumnRef{"S", "B"}),
       Predicate::ColCmpConst(CompareOp::kLt, ColumnRef{"S", "C"},
                              Value(10))});
  return def;
}

TEST(RelevanceTest, SingleRelationConjunctPrunes) {
  BoundView sel = BindDef(SelectiveView());
  EXPECT_TRUE(TupleMayAffectView(sel, "S", Tuple{1, 5}));
  EXPECT_FALSE(TupleMayAffectView(sel, "S", Tuple{1, 15}));
  // The join conjunct (two relations) must NOT prune.
  EXPECT_TRUE(TupleMayAffectView(sel, "R", Tuple{1, 99}));
}

TEST(RelevanceTest, ModifyRelevantIfEitherSideQualifies) {
  BoundView sel = BindDef(SelectiveView());
  // Old fails, new passes: relevant.
  EXPECT_TRUE(UpdateIsRelevant(
      sel, Update::Modify("s", "S", Tuple{1, 15}, Tuple{1, 5})));
  // Old passes, new fails: relevant.
  EXPECT_TRUE(UpdateIsRelevant(
      sel, Update::Modify("s", "S", Tuple{1, 5}, Tuple{1, 15})));
  // Both fail: irrelevant.
  EXPECT_FALSE(UpdateIsRelevant(
      sel, Update::Modify("s", "S", Tuple{1, 15}, Tuple{1, 25})));
}

TEST(RelevanceTest, DeleteUsesTupleValue) {
  BoundView sel = BindDef(SelectiveView());
  EXPECT_TRUE(UpdateIsRelevant(sel, Update::Delete("s", "S", Tuple{1, 5})));
  EXPECT_FALSE(
      UpdateIsRelevant(sel, Update::Delete("s", "S", Tuple{1, 15})));
}

TEST(RelevanceTest, DisjunctionIsNotPrunedPartially) {
  // OR conjuncts referencing one relation still prune only when the
  // whole disjunction is false.
  ViewDefinition def;
  def.name = "OrSel";
  def.relations = {"S"};
  def.predicate = Predicate::Or(
      {Predicate::ColCmpConst(CompareOp::kLt, ColumnRef{"S", "C"}, Value(5)),
       Predicate::ColCmpConst(CompareOp::kGt, ColumnRef{"S", "C"},
                              Value(100))});
  BoundView v = BindDef(def);
  EXPECT_TRUE(TupleMayAffectView(v, "S", Tuple{1, 3}));
  EXPECT_TRUE(TupleMayAffectView(v, "S", Tuple{1, 200}));
  EXPECT_FALSE(TupleMayAffectView(v, "S", Tuple{1, 50}));
}

}  // namespace
}  // namespace mvc
