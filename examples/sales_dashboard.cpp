// Aggregate views in the warehouse (Section 1.2: "some views, e.g.,
// aggregate views need to use different maintenance algorithms").
//
// Sources:
//   "orders-db":  orders(region, product, amount)
//   "catalog-db": products(product, category)
//
// Warehouse views:
//   region_revenue   = SELECT region, COUNT(*), SUM(amount)
//                      FROM orders GROUP BY region
//   category_revenue = SELECT category, COUNT(*), SUM(amount)
//                      FROM orders JOIN products GROUP BY category
//   order_detail     = orders JOIN products   (plain SPJ view)
//
// All three views derive from the same orders stream. A dashboard that
// cross-checks "sum over regions == sum over categories" only works if
// the aggregate views are mutually consistent — MVC again, now with a
// per-view specialized (aggregate) maintenance algorithm in the mix.

#include <iostream>

#include "query/aggregate.h"
#include "system/warehouse_system.h"

namespace mvc {
namespace {

SystemConfig DashboardScenario() {
  SystemConfig config;
  config.sources["orders-db"] = {"orders"};
  config.sources["catalog-db"] = {"products"};
  config.schemas["orders"] = Schema::AllInt64({"region", "product", "amount"});
  config.schemas["products"] = Schema::AllInt64({"product", "category"});
  config.initial_data["orders"] = {Tuple{1, 10, 50}, Tuple{2, 11, 30}};
  config.initial_data["products"] = {Tuple{10, 100}, Tuple{11, 100},
                                     Tuple{12, 200}};

  ViewDefinition region_core;
  region_core.name = "region_revenue";
  region_core.relations = {"orders"};
  AggregateSpec region_spec;
  region_spec.group_by = {"region"};
  region_spec.aggregates = {
      AggregateColumn{AggregateFn::kCount, "", "orders"},
      AggregateColumn{AggregateFn::kSum, "amount", "revenue"}};

  ViewDefinition category_core;
  category_core.name = "category_revenue";
  category_core.relations = {"orders", "products"};
  category_core.predicate = Predicate::ColEqCol(
      ColumnRef{"orders", "product"}, ColumnRef{"products", "product"});
  category_core.projection = {ColumnRef{"products", "category"},
                              ColumnRef{"orders", "amount"}};
  AggregateSpec category_spec;
  category_spec.group_by = {"category"};
  category_spec.aggregates = {
      AggregateColumn{AggregateFn::kCount, "", "orders"},
      AggregateColumn{AggregateFn::kSum, "amount", "revenue"}};

  ViewDefinition detail;
  detail.name = "order_detail";
  detail.relations = {"orders", "products"};
  detail.predicate = Predicate::ColEqCol(ColumnRef{"orders", "product"},
                                         ColumnRef{"products", "product"});

  config.views = {region_core, category_core, detail};
  config.aggregates["region_revenue"] = region_spec;
  config.aggregates["category_revenue"] = category_spec;
  config.latency = LatencyModel::Uniform(400, 1800);
  config.vm_options.delta_cost = 600;
  config.seed = 29;

  // A burst of order activity, including a correction (delete) and a
  // repricing (modify).
  TimeMicros at = 1000;
  for (const Update& u :
       {Update::Insert("orders-db", "orders", Tuple{1, 12, 70}),
        Update::Insert("orders-db", "orders", Tuple{2, 10, 20}),
        Update::Insert("orders-db", "orders", Tuple{1, 11, 40}),
        Update::Delete("orders-db", "orders", Tuple{2, 11, 30}),
        Update::Modify("orders-db", "orders", Tuple{1, 10, 50},
                       Tuple{1, 10, 65}),
        Update::Insert("catalog-db", "products", Tuple{13, 200}),
        Update::Insert("orders-db", "orders", Tuple{2, 13, 90})}) {
    Injection inj;
    inj.at = at;
    inj.source = u.source;
    inj.updates = {u};
    config.workload.push_back(inj);
    at += 1700;
  }
  return config;
}

int64_t TotalRevenue(const Table& t, size_t revenue_col) {
  int64_t total = 0;
  t.Scan([&](const Tuple& row, int64_t count) {
    total += count * row[revenue_col].AsInt64();
  });
  return total;
}

}  // namespace
}  // namespace mvc

int main() {
  using namespace mvc;
  std::cout << "=== Sales dashboard: aggregate views under MVC ===\n\n";
  auto system = WarehouseSystem::Build(DashboardScenario());
  MVC_CHECK(system.ok()) << system.status().ToString();
  (*system)->Run();

  const Catalog& views = (*system)->warehouse().views();
  for (const std::string& name : views.TableNames()) {
    std::cout << views.GetTable(name).value()->ToString() << "\n";
  }

  // Dashboard cross-check: both aggregates summarize the same orders.
  const Table* by_region = *views.GetTable("region_revenue");
  const Table* by_category = *views.GetTable("category_revenue");
  int64_t region_total = TotalRevenue(*by_region, 2);
  int64_t category_total = TotalRevenue(*by_category, 2);
  std::cout << "Cross-check: revenue by region = " << region_total
            << ", by category = " << category_total << " -> "
            << (region_total == category_total ? "CONSISTENT"
                                               : "INCONSISTENT")
            << "\n";

  // Per-commit cross-check: at *every* warehouse state, the two
  // aggregate totals agree — that is MVC observed through aggregates.
  bool every_state_ok = true;
  for (const auto& commit : (*system)->recorder().commits()) {
    auto r = commit.view_snapshot.GetTable("region_revenue");
    auto c = commit.view_snapshot.GetTable("category_revenue");
    if (TotalRevenue(**r, 2) != TotalRevenue(**c, 2)) {
      every_state_ok = false;
    }
  }
  std::cout << "Cross-check at every intermediate warehouse state: "
            << (every_state_ok ? "CONSISTENT" : "INCONSISTENT") << "\n";

  ConsistencyChecker checker = (*system)->MakeChecker();
  Status strong = checker.CheckStrong((*system)->recorder());
  std::cout << "\nOracle (strong MVC): " << strong << "\n";
  return strong.ok() && every_state_ok &&
                 region_total == category_total
             ? 0
             : 1;
}
