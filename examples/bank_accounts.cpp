// The paper's Section 1.1 motivating application: a warehouse serving
// customer inquiries off-line from the operational systems.
//
// Source "core-banking" hosts:
//   checking(cust, balance)   savings(cust, balance)
// Source "crm" hosts:
//   customers(cust, segment)
//
// Warehouse views:
//   account_summary = customers |><| checking |><| savings
//       (what a support agent sees when the customer calls — her
//        checking record must match her linked savings record)
//   promo_candidates = customers |><| savings WHERE savings.balance >= 50
//       (a marketing view that must pick the right customers, not ones
//        whose qualifying deposit is only half-applied)
//
// A "transfer" moves money between checking and savings: one source
// transaction with two updates. Under MVC both views change atomically;
// the agent can never see money that left checking but has not arrived
// in savings.

#include <iostream>

#include "system/warehouse_system.h"

namespace mvc {
namespace {

SystemConfig BankScenario() {
  SystemConfig config;
  config.sources["core-banking"] = {"checking", "savings"};
  config.sources["crm"] = {"customers"};
  config.schemas["checking"] = Schema::AllInt64({"cust", "cbal"});
  config.schemas["savings"] = Schema::AllInt64({"cust", "sbal"});
  config.schemas["customers"] = Schema::AllInt64({"cust", "segment"});
  config.initial_data["checking"] = {Tuple{100, 80}, Tuple{101, 45}};
  config.initial_data["savings"] = {Tuple{100, 20}, Tuple{101, 10}};
  config.initial_data["customers"] = {Tuple{100, 1}, Tuple{101, 2}};

  ViewDefinition summary;
  summary.name = "account_summary";
  summary.relations = {"customers", "checking", "savings"};
  summary.predicate = Predicate::And(
      {Predicate::ColEqCol(ColumnRef{"customers", "cust"},
                           ColumnRef{"checking", "cust"}),
       Predicate::ColEqCol(ColumnRef{"checking", "cust"},
                           ColumnRef{"savings", "cust"})});
  summary.projection = {
      ColumnRef{"customers", "cust"}, ColumnRef{"customers", "segment"},
      ColumnRef{"checking", "cbal"}, ColumnRef{"savings", "sbal"}};

  ViewDefinition promo;
  promo.name = "promo_candidates";
  promo.relations = {"customers", "savings"};
  promo.predicate = Predicate::And(
      {Predicate::ColEqCol(ColumnRef{"customers", "cust"},
                           ColumnRef{"savings", "cust"}),
       Predicate::ColCmpConst(CompareOp::kGe, ColumnRef{"savings", "sbal"},
                              Value(50))});
  promo.projection = {ColumnRef{"customers", "cust"},
                      ColumnRef{"customers", "segment"},
                      ColumnRef{"savings", "sbal"}};

  config.views = {summary, promo};
  config.latency = LatencyModel::Uniform(500, 1500);
  config.seed = 3;

  // Customer 100 transfers 60 from checking to savings — one atomic
  // source transaction with two updates. Afterwards she qualifies for
  // the promotion (savings 80 >= 50).
  Injection transfer;
  transfer.at = 1000;
  transfer.source = "core-banking";
  transfer.updates = {
      Update::Modify("core-banking", "checking", Tuple{100, 80},
                     Tuple{100, 20}),
      Update::Modify("core-banking", "savings", Tuple{100, 20},
                     Tuple{100, 80})};
  // A CRM segment change arrives concurrently for customer 101.
  Injection segment;
  segment.at = 1200;
  segment.source = "crm";
  segment.updates = {Update::Modify("crm", "customers", Tuple{101, 2},
                                    Tuple{101, 3})};
  config.workload = {transfer, segment};
  return config;
}

}  // namespace
}  // namespace mvc

int main() {
  using namespace mvc;
  std::cout << "=== Bank warehouse: customer inquiries need MVC "
               "(Section 1.1) ===\n\n";
  auto system = WarehouseSystem::Build(BankScenario());
  MVC_CHECK(system.ok()) << system.status().ToString();
  (*system)->Run();

  std::cout << "Warehouse views after the transfer:\n\n";
  for (const std::string& name :
       (*system)->warehouse().views().TableNames()) {
    std::cout << (*system)->warehouse().views().GetTable(name).value()
                     ->ToString()
              << "\n";
  }

  std::cout << "Commit log (each line is one atomic warehouse "
               "transaction):\n";
  for (const auto& commit : (*system)->recorder().commits()) {
    std::cout << "  t=" << commit.committed_at << "us  "
              << commit.txn.ToString() << "\n";
  }

  auto checker = (*system)->MakeChecker();
  Status complete = checker.CheckComplete((*system)->recorder());
  std::cout << "\nMVC completeness: " << complete << "\n\n"
            << "Because the transfer's two updates form one transaction\n"
            << "(Section 6.2 semantics), account_summary and\n"
            << "promo_candidates moved together: no agent ever saw the\n"
            << "60 in neither account, and the promotion query never\n"
            << "fired on a half-applied deposit.\n";
  return complete.ok() ? 0 : 1;
}
