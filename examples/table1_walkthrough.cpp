// Walkthrough of the paper's Example 1 / Table 1, narrated step by step.
//
// Shows (a) the anomaly — maintaining each view independently leaves a
// window where V1 reflects the new S tuple and V2 does not — and (b) how
// the merge process's ViewUpdateTable holds V1's action list until V2's
// arrives so the warehouse never exposes that window.

#include <iostream>

#include "merge/merge_engine.h"
#include "query/evaluator.h"
#include "storage/id_registry.h"
#include "system/warehouse_system.h"
#include "workload/paper_examples.h"

namespace mvc {
namespace {

const IdRegistry* Names() {
  static const IdRegistry* reg = [] {
    auto* r = new IdRegistry();
    r->InternViews({"V1", "V2"});
    return r;
  }();
  return reg;
}

void Walkthrough() {
  std::cout <<
      "Setup (Table 1):\n"
      "  R(A,B) = {[1,2]}    S(B,C) = {}    T(C,D) = {[3,4]}\n"
      "  V1 = R |><| S   (warehouse view, initially empty)\n"
      "  V2 = S |><| T   (warehouse view, initially empty)\n\n"
      "At t1, the source inserts [2,3] into S. Both views are affected:\n"
      "  delta(V1) = +[1,2,3]   delta(V2) = +[2,3,4]\n\n";

  std::cout <<
      "-- Without MVC ------------------------------------------------\n"
      "V1's manager finishes first and its delta is applied at t2;\n"
      "V2's delta only lands at t3. Between t2 and t3 a warehouse reader\n"
      "joining customer data across the two views sees S's new tuple in\n"
      "V1 but not in V2 — the views match NO single source state.\n\n";

  std::cout <<
      "-- With the merge process (SPA) -------------------------------\n"
      "The integrator numbers the update U1 and tells the merge process\n"
      "REL_1 = {V1, V2}. The ViewUpdateTable tracks what has arrived:\n\n";

  const ViewId v1 = *Names()->FindView("V1");
  const ViewId v2 = *Names()->FindView("V2");
  SpaEngine engine({v1, v2}, Names());
  std::vector<WarehouseTransaction> out;
  engine.ReceiveRelSet(1, {v1, v2}, &out);
  std::cout << engine.vut().ToString() << "\n";

  std::cout << "V1's action list arrives first -> its cell turns red, but\n"
               "the row still has a white cell, so SPA holds it:\n\n";
  ActionList al1;
  al1.view = v1;
  al1.update = 1;
  al1.first_update = 1;
  al1.covered = {1};
  al1.delta.target = "V1";
  al1.delta.Add(Tuple{1, 2, 3}, 1);
  engine.ReceiveActionList(al1, &out);
  std::cout << engine.vut().ToString() << "\n";
  MVC_CHECK(out.empty());

  std::cout << "V2's action list arrives -> the row is complete; SPA emits\n"
               "ONE warehouse transaction updating both views, then purges\n"
               "the row:\n\n";
  ActionList al2;
  al2.view = v2;
  al2.update = 1;
  al2.first_update = 1;
  al2.covered = {1};
  al2.delta.target = "V2";
  al2.delta.Add(Tuple{2, 3, 4}, 1);
  engine.ReceiveActionList(al2, &out);
  for (const auto& txn : out) std::cout << "  " << txn.ToString(Names()) << "\n";
  std::cout << "\nRemaining VUT rows: " << engine.open_rows() << "\n\n";
}

}  // namespace
}  // namespace mvc

int main() {
  std::cout << "=== Example 1 / Table 1 walkthrough =====================\n\n";
  mvc::Walkthrough();

  std::cout <<
      "-- End to end --------------------------------------------------\n"
      "Running the same scenario through the full system (sources ->\n"
      "integrator -> view managers -> merge -> warehouse) and checking\n"
      "the formal definitions of Section 2:\n\n";
  auto system = mvc::WarehouseSystem::Build(mvc::Table1Scenario());
  MVC_CHECK(system.ok());
  (*system)->Run();
  for (const std::string& name :
       (*system)->warehouse().views().TableNames()) {
    std::cout << (*system)->warehouse().views().GetTable(name).value()
                     ->ToString();
  }
  auto checker = (*system)->MakeChecker();
  std::cout << "\nMVC complete:   "
            << checker.CheckComplete((*system)->recorder()) << "\n"
            << "MVC strong:     "
            << checker.CheckStrong((*system)->recorder()) << "\n"
            << "MVC convergent: "
            << checker.CheckConvergent((*system)->recorder()) << "\n";
  return 0;
}
