// Quickstart: build the paper's Table 1 scenario, run it through the
// full WHIPS-MVC pipeline (source -> integrator -> view managers ->
// merge/SPA -> warehouse), and verify MVC completeness with the oracle.
//
//   V1 = R JOIN S,  V2 = S JOIN T;  one update inserts [2,3] into S.
//
// Under SPA both views change in a single warehouse transaction — the
// inconsistency window of Example 1 never exists.

#include <iostream>

#include "system/warehouse_system.h"
#include "workload/paper_examples.h"

int main() {
  mvc::SystemConfig config = mvc::Table1Scenario();
  config.latency = mvc::LatencyModel::Uniform(1000, 500);

  auto system = mvc::WarehouseSystem::Build(std::move(config));
  if (!system.ok()) {
    std::cerr << "build failed: " << system.status() << "\n";
    return 1;
  }
  (*system)->Run();

  std::cout << "=== Warehouse views after the run ===\n";
  for (const std::string& name : (*system)->warehouse().views().TableNames()) {
    auto table = (*system)->warehouse().views().GetTable(name);
    std::cout << (*table)->ToString();
  }

  std::cout << "\n=== Commit log ===\n";
  for (const auto& commit : (*system)->recorder().commits()) {
    std::cout << "t=" << commit.committed_at << "us  "
              << commit.txn.ToString() << "\n";
  }

  mvc::ConsistencyChecker checker = (*system)->MakeChecker();
  mvc::Status complete = checker.CheckComplete((*system)->recorder());
  std::cout << "\nMVC completeness: " << complete << "\n";

  mvc::FreshnessStats freshness = (*system)->recorder().ComputeFreshness();
  std::cout << "Freshness: " << freshness.ToString() << "\n";
  return complete.ok() ? 0 : 1;
}
