// MVC as a prerequisite of other maintenance algorithms (Section 1.1):
// to maintain an expensive primary view V = R |><| S |><| T cheaply, the
// warehouse materializes the auxiliary views A1 = R |><| S and
// A2 = S |><| T and computes V from them (Ross/Srivastava/Sudarshan
// style). That derivation is only correct when A1 and A2 are *mutually*
// consistent at every state V is computed — precisely what the merge
// process guarantees.
//
// This example maintains A1 and A2 under SPA and, after every warehouse
// commit, derives V from the two auxiliaries and checks it against V
// evaluated directly over the mapped source state.

#include <iostream>

#include "common/string_util.h"
#include "query/evaluator.h"
#include "system/warehouse_system.h"
#include "workload/paper_examples.h"

namespace mvc {
namespace {

SystemConfig AuxScenario() {
  SystemConfig config = PaperBaseConfig();
  config.initial_data["R"] = {Tuple{1, 2}, Tuple{5, 6}};
  config.initial_data["S"] = {Tuple{6, 7}};
  config.initial_data["T"] = {Tuple{3, 4}, Tuple{7, 8}};

  ViewDefinition a1 = PaperV1();  // R |><| S, columns (A, B, C)
  a1.name = "A1";
  ViewDefinition a2 = PaperV2();  // S |><| T, columns (B, C, D)
  a2.name = "A2";
  config.views = {a1, a2};
  config.latency = LatencyModel::Uniform(400, 2500);
  config.seed = 11;

  // A stream of S updates — each touches both auxiliaries.
  TimeMicros at = 1000;
  for (const Update& u :
       {Update::Insert("src0", "S", Tuple{2, 3}),
        Update::Insert("src0", "S", Tuple{2, 7}),
        Update::Delete("src0", "S", Tuple{6, 7}),
        Update::Insert("src0", "S", Tuple{6, 3})}) {
    Injection inj;
    inj.at = at;
    inj.source = "src0";
    inj.updates = {u};
    config.workload.push_back(inj);
    at += 1500;
  }
  return config;
}

/// Derives V = R|><|S|><|T from the materialized A1(A,B,C), A2(B,C,D):
/// join on (B, C).
Result<Table> DeriveV(const Catalog& views) {
  MVC_ASSIGN_OR_RETURN(const Table* a1, views.GetTable("A1"));
  MVC_ASSIGN_OR_RETURN(const Table* a2, views.GetTable("A2"));
  Table v("V", Schema::AllInt64({"A", "B", "C", "D"}));
  Status st;
  a1->Scan([&](const Tuple& left, int64_t lc) {
    a2->Scan([&](const Tuple& right, int64_t rc) {
      if (!st.ok()) return;
      if (left[1] == right[0] && left[2] == right[1]) {
        st = v.Insert(Tuple{left[0], left[1], left[2], right[2]}, lc * rc);
      }
    });
  });
  MVC_RETURN_IF_ERROR(st);
  return v;
}

}  // namespace
}  // namespace mvc

int main() {
  using namespace mvc;
  std::cout << "=== Auxiliary views: V = R|><|S|><|T derived from "
               "A1 = R|><|S and A2 = S|><|T ===\n\n";
  auto system = WarehouseSystem::Build(AuxScenario());
  MVC_CHECK(system.ok()) << system.status().ToString();
  (*system)->Run();

  // Oracle for V: replay the numbered updates over the initial base and
  // evaluate V directly at each mapped source state.
  ViewDefinition v_def;
  v_def.name = "V";
  v_def.relations = {"R", "S", "T"};
  v_def.predicate = Predicate::And(
      {Predicate::ColEqCol(ColumnRef{"R", "B"}, ColumnRef{"S", "B"}),
       Predicate::ColEqCol(ColumnRef{"S", "C"}, ColumnRef{"T", "C"})});
  v_def.projection = {ColumnRef{"R", "A"}, ColumnRef{"R", "B"},
                      ColumnRef{"S", "C"}, ColumnRef{"T", "D"}};
  std::map<std::string, Schema> schemas = {
      {"R", Schema::AllInt64({"A", "B"})},
      {"S", Schema::AllInt64({"B", "C"})},
      {"T", Schema::AllInt64({"C", "D"})},
      {"Q", Schema::AllInt64({"D", "E"})}};
  auto v_bound = std::move(BoundView::Bind(v_def, schemas)).value();

  Catalog base = (*system)->initial_base().Clone();
  std::map<UpdateId, const SourceTransaction*> by_id;
  for (const auto& u : (*system)->recorder().updates()) {
    by_id[u.id] = &u.txn;
  }

  UpdateId replayed = 0;
  bool all_ok = true;
  for (const auto& commit : (*system)->recorder().commits()) {
    // Advance the replayed base to the commit's source state.
    for (UpdateId id : commit.txn.rows) {
      for (; replayed < id;) {
        ++replayed;
        auto it = by_id.find(replayed);
        if (it == by_id.end()) continue;
        for (const Update& u : it->second->updates) {
          auto table = base.GetTable(u.relation);
          MVC_CHECK(table.ok());
          MVC_CHECK(
              ViewEvaluator::UpdateToBaseDelta(u).ApplyTo(*table).ok());
        }
      }
    }
    auto direct = ViewEvaluator::Evaluate(v_bound, CatalogProvider(&base));
    MVC_CHECK(direct.ok());
    auto derived = DeriveV(commit.view_snapshot);
    MVC_CHECK(derived.ok());
    bool match = derived->ContentsEqual(*direct);
    all_ok = all_ok && match;
    std::cout << "commit rows=[" << JoinToString(commit.txn.rows, ",")
              << "]: derived V has " << derived->NumRows()
              << " rows, direct V(ss) has " << direct->NumRows()
              << " rows -> " << (match ? "MATCH" : "MISMATCH") << "\n";
  }

  auto checker = (*system)->MakeChecker();
  const auto verdict = checker.CheckComplete((*system)->recorder());
  std::cout << "\nAuxiliary views MVC completeness: " << verdict << "\n"
            << (all_ok ? "V derived from (A1, A2) was correct at every "
                         "warehouse state — the derivation is safe "
                         "because the auxiliaries are mutually "
                         "consistent.\n"
                       : "Derivation mismatch!\n");
  // Both the derivation sweep and the oracle's verdict gate the exit
  // code: this binary doubles as a ctest.
  return (all_ok && verdict.ok()) ? 0 : 1;
}
