// Message-level trace of the Table 1 scenario: every delivery in the
// system, in virtual-time order, straight from the simulator's trace
// sink. Useful for understanding (and debugging) the Figure 1 flow:
//
//   driver -> source -> integrator -> {view managers, merge} -> warehouse
//
// Run it and follow U1 end to end.

#include <iostream>

#include "net/sim_runtime.h"
#include "system/warehouse_system.h"
#include "workload/paper_examples.h"

int main() {
  mvc::SystemConfig config = mvc::Table1Scenario();
  config.latency = mvc::LatencyModel::Uniform(1000, 500);

  auto system = mvc::WarehouseSystem::Build(std::move(config));
  MVC_CHECK(system.ok()) << system.status().ToString();

  auto* sim = dynamic_cast<mvc::SimRuntime*>(&(*system)->runtime());
  MVC_CHECK(sim != nullptr);
  std::cout << "=== Message trace of the Table 1 scenario ===\n\n";
  sim->SetTraceSink([](const std::string& line) {
    std::cout << "  " << line << "\n";
  });

  (*system)->Run();

  auto checker = (*system)->MakeChecker();
  std::cout << "\nMVC completeness: "
            << checker.CheckComplete((*system)->recorder()) << "\n";
  return 0;
}
