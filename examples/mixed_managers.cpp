// Heterogeneous deployment (Sections 1.2, 6.1, 6.3): every view picks
// the maintenance algorithm that suits it — a copy view refreshes
// periodically, an aggregate-ish selective view uses a strongly
// consistent manager, a plain join stays complete — and the planner
// partitions the views into disjoint groups, giving each group its own
// merge process running the weakest-sufficient painting algorithm.

#include <iostream>

#include "common/string_util.h"
#include "merge/merge_engine.h"
#include "system/warehouse_system.h"
#include "workload/generator.h"
#include "workload/paper_examples.h"

namespace mvc {
namespace {

SystemConfig MixedScenario() {
  SystemConfig config = PaperBaseConfig();
  config.initial_data["R"] = {Tuple{1, 2}, Tuple{5, 6}};
  config.initial_data["T"] = {Tuple{3, 4}};
  config.initial_data["Q"] = {Tuple{4, 9}, Tuple{8, 2}};

  // Group 1 (relations R, S, T): V1 complete, V2 strong.
  // Group 2 (relation Q): V3 maintained by periodic refresh.
  config.views = {PaperV1(), PaperV2(), PaperV3()};
  config.manager_kinds = {{"V2", ManagerKind::kStrong},
                          {"V3", ManagerKind::kPeriodic}};
  config.periodic_options.period = 20000;
  config.vm_options.delta_cost = 1000;
  config.num_merge_processes = 2;
  config.latency = LatencyModel::Uniform(300, 1200);
  config.seed = 19;

  TimeMicros at = 1000;
  for (const Update& u :
       {Update::Insert("src0", "S", Tuple{2, 3}),
        Update::Insert("src1", "Q", Tuple{5, 7}),
        Update::Insert("src0", "S", Tuple{6, 3}),
        Update::Insert("src1", "T", Tuple{3, 6}),
        Update::Delete("src1", "Q", Tuple{8, 2}),
        Update::Modify("src0", "S", Tuple{2, 3}, Tuple{2, 4})}) {
    Injection inj;
    inj.at = at;
    inj.source = u.source;
    inj.updates = {u};
    config.workload.push_back(inj);
    at += 2500;
  }
  return config;
}

}  // namespace
}  // namespace mvc

int main() {
  using namespace mvc;
  std::cout << "=== Mixed view managers + distributed merge ===\n\n";
  auto system = WarehouseSystem::Build(MixedScenario());
  MVC_CHECK(system.ok()) << system.status().ToString();

  std::cout << "Deployment plan:\n";
  for (size_t g = 0; g < system.value()->view_groups().size(); ++g) {
    const auto& group = system.value()->view_groups()[g];
    std::cout << "  merge-" << g << " ["
              << MergeAlgorithmToString(
                     system.value()->merges()[g]->engine().algorithm())
              << "]  views {" << JoinToString(group.views, ", ")
              << "}  over relations {" << JoinToString(group.relations, ", ")
              << "}\n";
  }
  std::cout << "\nView managers:\n";
  for (const auto& vm : system.value()->view_managers()) {
    std::cout << "  " << vm->name() << ": "
              << ConsistencyLevelToString(vm->level()) << "\n";
  }

  (*system)->Run();

  std::cout << "\nFinal warehouse contents:\n";
  for (const std::string& name :
       (*system)->warehouse().views().TableNames()) {
    std::cout << (*system)->warehouse().views().GetTable(name).value()
                     ->ToString();
  }

  auto checker = (*system)->MakeChecker();
  Status strong = checker.CheckStrong((*system)->recorder());
  std::cout << "\nSystem-wide MVC (strong, the weakest manager's level): "
            << strong << "\n"
            << "Freshness: "
            << (*system)->recorder().ComputeFreshness().ToString() << "\n";
  return strong.ok() ? 0 : 1;
}
