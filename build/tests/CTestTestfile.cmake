# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/view_def_test[1]_include.cmake")
include("/root/repo/build/tests/evaluator_test[1]_include.cmake")
include("/root/repo/build/tests/relevance_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/source_test[1]_include.cmake")
include("/root/repo/build/tests/integrator_test[1]_include.cmake")
include("/root/repo/build/tests/vut_test[1]_include.cmake")
include("/root/repo/build/tests/spa_engine_test[1]_include.cmake")
include("/root/repo/build/tests/pa_engine_test[1]_include.cmake")
include("/root/repo/build/tests/merge_process_test[1]_include.cmake")
include("/root/repo/build/tests/warehouse_test[1]_include.cmake")
include("/root/repo/build/tests/viewmgr_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/checker_test[1]_include.cmake")
include("/root/repo/build/tests/system_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/aggregate_test[1]_include.cmake")
include("/root/repo/build/tests/reader_test[1]_include.cmake")
include("/root/repo/build/tests/generator_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/merge_engine_edge_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
