file(REMOVE_RECURSE
  "CMakeFiles/merge_process_test.dir/merge_process_test.cc.o"
  "CMakeFiles/merge_process_test.dir/merge_process_test.cc.o.d"
  "merge_process_test"
  "merge_process_test.pdb"
  "merge_process_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_process_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
