# Empty dependencies file for merge_process_test.
# This may be replaced when dependencies are built.
