file(REMOVE_RECURSE
  "CMakeFiles/spa_engine_test.dir/spa_engine_test.cc.o"
  "CMakeFiles/spa_engine_test.dir/spa_engine_test.cc.o.d"
  "spa_engine_test"
  "spa_engine_test.pdb"
  "spa_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spa_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
