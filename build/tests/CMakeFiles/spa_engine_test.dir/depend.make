# Empty dependencies file for spa_engine_test.
# This may be replaced when dependencies are built.
