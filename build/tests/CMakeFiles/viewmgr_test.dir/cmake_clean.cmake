file(REMOVE_RECURSE
  "CMakeFiles/viewmgr_test.dir/viewmgr_test.cc.o"
  "CMakeFiles/viewmgr_test.dir/viewmgr_test.cc.o.d"
  "viewmgr_test"
  "viewmgr_test.pdb"
  "viewmgr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewmgr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
