# Empty compiler generated dependencies file for viewmgr_test.
# This may be replaced when dependencies are built.
