# Empty dependencies file for relevance_test.
# This may be replaced when dependencies are built.
