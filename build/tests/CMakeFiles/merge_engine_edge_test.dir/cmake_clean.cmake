file(REMOVE_RECURSE
  "CMakeFiles/merge_engine_edge_test.dir/merge_engine_edge_test.cc.o"
  "CMakeFiles/merge_engine_edge_test.dir/merge_engine_edge_test.cc.o.d"
  "merge_engine_edge_test"
  "merge_engine_edge_test.pdb"
  "merge_engine_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_engine_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
