# Empty dependencies file for merge_engine_edge_test.
# This may be replaced when dependencies are built.
