file(REMOVE_RECURSE
  "CMakeFiles/vut_test.dir/vut_test.cc.o"
  "CMakeFiles/vut_test.dir/vut_test.cc.o.d"
  "vut_test"
  "vut_test.pdb"
  "vut_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vut_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
