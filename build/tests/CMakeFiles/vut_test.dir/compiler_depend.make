# Empty compiler generated dependencies file for vut_test.
# This may be replaced when dependencies are built.
