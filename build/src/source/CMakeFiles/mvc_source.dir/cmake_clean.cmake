file(REMOVE_RECURSE
  "CMakeFiles/mvc_source.dir/source_process.cc.o"
  "CMakeFiles/mvc_source.dir/source_process.cc.o.d"
  "libmvc_source.a"
  "libmvc_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
