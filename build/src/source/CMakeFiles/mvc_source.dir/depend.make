# Empty dependencies file for mvc_source.
# This may be replaced when dependencies are built.
