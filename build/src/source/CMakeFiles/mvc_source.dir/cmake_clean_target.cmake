file(REMOVE_RECURSE
  "libmvc_source.a"
)
