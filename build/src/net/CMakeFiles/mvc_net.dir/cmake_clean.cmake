file(REMOVE_RECURSE
  "CMakeFiles/mvc_net.dir/protocol.cc.o"
  "CMakeFiles/mvc_net.dir/protocol.cc.o.d"
  "CMakeFiles/mvc_net.dir/sim_runtime.cc.o"
  "CMakeFiles/mvc_net.dir/sim_runtime.cc.o.d"
  "CMakeFiles/mvc_net.dir/thread_runtime.cc.o"
  "CMakeFiles/mvc_net.dir/thread_runtime.cc.o.d"
  "libmvc_net.a"
  "libmvc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
