
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/catalog.cc" "src/storage/CMakeFiles/mvc_storage.dir/catalog.cc.o" "gcc" "src/storage/CMakeFiles/mvc_storage.dir/catalog.cc.o.d"
  "/root/repo/src/storage/delta.cc" "src/storage/CMakeFiles/mvc_storage.dir/delta.cc.o" "gcc" "src/storage/CMakeFiles/mvc_storage.dir/delta.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/storage/CMakeFiles/mvc_storage.dir/schema.cc.o" "gcc" "src/storage/CMakeFiles/mvc_storage.dir/schema.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/storage/CMakeFiles/mvc_storage.dir/table.cc.o" "gcc" "src/storage/CMakeFiles/mvc_storage.dir/table.cc.o.d"
  "/root/repo/src/storage/tuple.cc" "src/storage/CMakeFiles/mvc_storage.dir/tuple.cc.o" "gcc" "src/storage/CMakeFiles/mvc_storage.dir/tuple.cc.o.d"
  "/root/repo/src/storage/update.cc" "src/storage/CMakeFiles/mvc_storage.dir/update.cc.o" "gcc" "src/storage/CMakeFiles/mvc_storage.dir/update.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/storage/CMakeFiles/mvc_storage.dir/value.cc.o" "gcc" "src/storage/CMakeFiles/mvc_storage.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mvc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
