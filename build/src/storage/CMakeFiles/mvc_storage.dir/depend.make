# Empty dependencies file for mvc_storage.
# This may be replaced when dependencies are built.
