file(REMOVE_RECURSE
  "CMakeFiles/mvc_storage.dir/catalog.cc.o"
  "CMakeFiles/mvc_storage.dir/catalog.cc.o.d"
  "CMakeFiles/mvc_storage.dir/delta.cc.o"
  "CMakeFiles/mvc_storage.dir/delta.cc.o.d"
  "CMakeFiles/mvc_storage.dir/schema.cc.o"
  "CMakeFiles/mvc_storage.dir/schema.cc.o.d"
  "CMakeFiles/mvc_storage.dir/table.cc.o"
  "CMakeFiles/mvc_storage.dir/table.cc.o.d"
  "CMakeFiles/mvc_storage.dir/tuple.cc.o"
  "CMakeFiles/mvc_storage.dir/tuple.cc.o.d"
  "CMakeFiles/mvc_storage.dir/update.cc.o"
  "CMakeFiles/mvc_storage.dir/update.cc.o.d"
  "CMakeFiles/mvc_storage.dir/value.cc.o"
  "CMakeFiles/mvc_storage.dir/value.cc.o.d"
  "libmvc_storage.a"
  "libmvc_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
