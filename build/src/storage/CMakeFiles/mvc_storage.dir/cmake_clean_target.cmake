file(REMOVE_RECURSE
  "libmvc_storage.a"
)
