file(REMOVE_RECURSE
  "CMakeFiles/mvc_consistency.dir/checker.cc.o"
  "CMakeFiles/mvc_consistency.dir/checker.cc.o.d"
  "CMakeFiles/mvc_consistency.dir/recorder.cc.o"
  "CMakeFiles/mvc_consistency.dir/recorder.cc.o.d"
  "libmvc_consistency.a"
  "libmvc_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
