# Empty dependencies file for mvc_consistency.
# This may be replaced when dependencies are built.
