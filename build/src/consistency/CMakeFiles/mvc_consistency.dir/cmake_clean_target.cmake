file(REMOVE_RECURSE
  "libmvc_consistency.a"
)
