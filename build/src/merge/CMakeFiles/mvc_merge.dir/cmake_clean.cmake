file(REMOVE_RECURSE
  "CMakeFiles/mvc_merge.dir/merge_engine.cc.o"
  "CMakeFiles/mvc_merge.dir/merge_engine.cc.o.d"
  "CMakeFiles/mvc_merge.dir/merge_process.cc.o"
  "CMakeFiles/mvc_merge.dir/merge_process.cc.o.d"
  "CMakeFiles/mvc_merge.dir/partition.cc.o"
  "CMakeFiles/mvc_merge.dir/partition.cc.o.d"
  "CMakeFiles/mvc_merge.dir/vut.cc.o"
  "CMakeFiles/mvc_merge.dir/vut.cc.o.d"
  "libmvc_merge.a"
  "libmvc_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
