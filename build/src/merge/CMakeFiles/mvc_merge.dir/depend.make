# Empty dependencies file for mvc_merge.
# This may be replaced when dependencies are built.
