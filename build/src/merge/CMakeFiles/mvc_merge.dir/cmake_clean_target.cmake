file(REMOVE_RECURSE
  "libmvc_merge.a"
)
