file(REMOVE_RECURSE
  "CMakeFiles/mvc_system.dir/warehouse_system.cc.o"
  "CMakeFiles/mvc_system.dir/warehouse_system.cc.o.d"
  "libmvc_system.a"
  "libmvc_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
