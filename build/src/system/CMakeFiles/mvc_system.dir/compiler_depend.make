# Empty compiler generated dependencies file for mvc_system.
# This may be replaced when dependencies are built.
