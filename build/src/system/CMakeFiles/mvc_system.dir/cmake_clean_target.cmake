file(REMOVE_RECURSE
  "libmvc_system.a"
)
