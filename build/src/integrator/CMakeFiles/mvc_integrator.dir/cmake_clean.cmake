file(REMOVE_RECURSE
  "CMakeFiles/mvc_integrator.dir/integrator.cc.o"
  "CMakeFiles/mvc_integrator.dir/integrator.cc.o.d"
  "CMakeFiles/mvc_integrator.dir/sequential_integrator.cc.o"
  "CMakeFiles/mvc_integrator.dir/sequential_integrator.cc.o.d"
  "libmvc_integrator.a"
  "libmvc_integrator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_integrator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
