file(REMOVE_RECURSE
  "libmvc_integrator.a"
)
