# Empty compiler generated dependencies file for mvc_integrator.
# This may be replaced when dependencies are built.
