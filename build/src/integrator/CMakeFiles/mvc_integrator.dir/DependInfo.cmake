
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/integrator/integrator.cc" "src/integrator/CMakeFiles/mvc_integrator.dir/integrator.cc.o" "gcc" "src/integrator/CMakeFiles/mvc_integrator.dir/integrator.cc.o.d"
  "/root/repo/src/integrator/sequential_integrator.cc" "src/integrator/CMakeFiles/mvc_integrator.dir/sequential_integrator.cc.o" "gcc" "src/integrator/CMakeFiles/mvc_integrator.dir/sequential_integrator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/mvc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/mvc_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mvc_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mvc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
