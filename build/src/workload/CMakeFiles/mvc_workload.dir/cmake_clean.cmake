file(REMOVE_RECURSE
  "CMakeFiles/mvc_workload.dir/generator.cc.o"
  "CMakeFiles/mvc_workload.dir/generator.cc.o.d"
  "CMakeFiles/mvc_workload.dir/paper_examples.cc.o"
  "CMakeFiles/mvc_workload.dir/paper_examples.cc.o.d"
  "libmvc_workload.a"
  "libmvc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
