# Empty compiler generated dependencies file for mvc_workload.
# This may be replaced when dependencies are built.
