file(REMOVE_RECURSE
  "libmvc_workload.a"
)
