# Empty dependencies file for mvc_parser.
# This may be replaced when dependencies are built.
