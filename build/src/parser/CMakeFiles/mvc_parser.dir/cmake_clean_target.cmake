file(REMOVE_RECURSE
  "libmvc_parser.a"
)
