file(REMOVE_RECURSE
  "CMakeFiles/mvc_parser.dir/lexer.cc.o"
  "CMakeFiles/mvc_parser.dir/lexer.cc.o.d"
  "CMakeFiles/mvc_parser.dir/scenario_parser.cc.o"
  "CMakeFiles/mvc_parser.dir/scenario_parser.cc.o.d"
  "libmvc_parser.a"
  "libmvc_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
