# Empty dependencies file for mvc_viewmgr.
# This may be replaced when dependencies are built.
