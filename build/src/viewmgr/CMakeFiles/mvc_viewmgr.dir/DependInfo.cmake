
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viewmgr/aggregate_vm.cc" "src/viewmgr/CMakeFiles/mvc_viewmgr.dir/aggregate_vm.cc.o" "gcc" "src/viewmgr/CMakeFiles/mvc_viewmgr.dir/aggregate_vm.cc.o.d"
  "/root/repo/src/viewmgr/complete_vm.cc" "src/viewmgr/CMakeFiles/mvc_viewmgr.dir/complete_vm.cc.o" "gcc" "src/viewmgr/CMakeFiles/mvc_viewmgr.dir/complete_vm.cc.o.d"
  "/root/repo/src/viewmgr/convergent_vm.cc" "src/viewmgr/CMakeFiles/mvc_viewmgr.dir/convergent_vm.cc.o" "gcc" "src/viewmgr/CMakeFiles/mvc_viewmgr.dir/convergent_vm.cc.o.d"
  "/root/repo/src/viewmgr/periodic_vm.cc" "src/viewmgr/CMakeFiles/mvc_viewmgr.dir/periodic_vm.cc.o" "gcc" "src/viewmgr/CMakeFiles/mvc_viewmgr.dir/periodic_vm.cc.o.d"
  "/root/repo/src/viewmgr/strong_vm.cc" "src/viewmgr/CMakeFiles/mvc_viewmgr.dir/strong_vm.cc.o" "gcc" "src/viewmgr/CMakeFiles/mvc_viewmgr.dir/strong_vm.cc.o.d"
  "/root/repo/src/viewmgr/view_manager.cc" "src/viewmgr/CMakeFiles/mvc_viewmgr.dir/view_manager.cc.o" "gcc" "src/viewmgr/CMakeFiles/mvc_viewmgr.dir/view_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/mvc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/mvc_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mvc_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mvc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
