file(REMOVE_RECURSE
  "CMakeFiles/mvc_viewmgr.dir/aggregate_vm.cc.o"
  "CMakeFiles/mvc_viewmgr.dir/aggregate_vm.cc.o.d"
  "CMakeFiles/mvc_viewmgr.dir/complete_vm.cc.o"
  "CMakeFiles/mvc_viewmgr.dir/complete_vm.cc.o.d"
  "CMakeFiles/mvc_viewmgr.dir/convergent_vm.cc.o"
  "CMakeFiles/mvc_viewmgr.dir/convergent_vm.cc.o.d"
  "CMakeFiles/mvc_viewmgr.dir/periodic_vm.cc.o"
  "CMakeFiles/mvc_viewmgr.dir/periodic_vm.cc.o.d"
  "CMakeFiles/mvc_viewmgr.dir/strong_vm.cc.o"
  "CMakeFiles/mvc_viewmgr.dir/strong_vm.cc.o.d"
  "CMakeFiles/mvc_viewmgr.dir/view_manager.cc.o"
  "CMakeFiles/mvc_viewmgr.dir/view_manager.cc.o.d"
  "libmvc_viewmgr.a"
  "libmvc_viewmgr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_viewmgr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
