file(REMOVE_RECURSE
  "libmvc_viewmgr.a"
)
