file(REMOVE_RECURSE
  "CMakeFiles/mvc_common.dir/logging.cc.o"
  "CMakeFiles/mvc_common.dir/logging.cc.o.d"
  "CMakeFiles/mvc_common.dir/status.cc.o"
  "CMakeFiles/mvc_common.dir/status.cc.o.d"
  "CMakeFiles/mvc_common.dir/string_util.cc.o"
  "CMakeFiles/mvc_common.dir/string_util.cc.o.d"
  "libmvc_common.a"
  "libmvc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
