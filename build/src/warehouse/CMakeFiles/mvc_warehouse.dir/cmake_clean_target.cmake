file(REMOVE_RECURSE
  "libmvc_warehouse.a"
)
