# Empty compiler generated dependencies file for mvc_warehouse.
# This may be replaced when dependencies are built.
