file(REMOVE_RECURSE
  "CMakeFiles/mvc_warehouse.dir/warehouse.cc.o"
  "CMakeFiles/mvc_warehouse.dir/warehouse.cc.o.d"
  "libmvc_warehouse.a"
  "libmvc_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
