
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/warehouse/warehouse.cc" "src/warehouse/CMakeFiles/mvc_warehouse.dir/warehouse.cc.o" "gcc" "src/warehouse/CMakeFiles/mvc_warehouse.dir/warehouse.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/mvc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mvc_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mvc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
