
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/aggregate.cc" "src/query/CMakeFiles/mvc_query.dir/aggregate.cc.o" "gcc" "src/query/CMakeFiles/mvc_query.dir/aggregate.cc.o.d"
  "/root/repo/src/query/evaluator.cc" "src/query/CMakeFiles/mvc_query.dir/evaluator.cc.o" "gcc" "src/query/CMakeFiles/mvc_query.dir/evaluator.cc.o.d"
  "/root/repo/src/query/expr.cc" "src/query/CMakeFiles/mvc_query.dir/expr.cc.o" "gcc" "src/query/CMakeFiles/mvc_query.dir/expr.cc.o.d"
  "/root/repo/src/query/relevance.cc" "src/query/CMakeFiles/mvc_query.dir/relevance.cc.o" "gcc" "src/query/CMakeFiles/mvc_query.dir/relevance.cc.o.d"
  "/root/repo/src/query/view_def.cc" "src/query/CMakeFiles/mvc_query.dir/view_def.cc.o" "gcc" "src/query/CMakeFiles/mvc_query.dir/view_def.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/mvc_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mvc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
