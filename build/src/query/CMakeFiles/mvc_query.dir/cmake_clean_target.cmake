file(REMOVE_RECURSE
  "libmvc_query.a"
)
