# Empty compiler generated dependencies file for mvc_query.
# This may be replaced when dependencies are built.
