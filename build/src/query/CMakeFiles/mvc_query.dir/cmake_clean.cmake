file(REMOVE_RECURSE
  "CMakeFiles/mvc_query.dir/aggregate.cc.o"
  "CMakeFiles/mvc_query.dir/aggregate.cc.o.d"
  "CMakeFiles/mvc_query.dir/evaluator.cc.o"
  "CMakeFiles/mvc_query.dir/evaluator.cc.o.d"
  "CMakeFiles/mvc_query.dir/expr.cc.o"
  "CMakeFiles/mvc_query.dir/expr.cc.o.d"
  "CMakeFiles/mvc_query.dir/relevance.cc.o"
  "CMakeFiles/mvc_query.dir/relevance.cc.o.d"
  "CMakeFiles/mvc_query.dir/view_def.cc.o"
  "CMakeFiles/mvc_query.dir/view_def.cc.o.d"
  "libmvc_query.a"
  "libmvc_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
