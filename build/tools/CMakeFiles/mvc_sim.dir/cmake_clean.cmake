file(REMOVE_RECURSE
  "CMakeFiles/mvc_sim.dir/mvc_sim.cpp.o"
  "CMakeFiles/mvc_sim.dir/mvc_sim.cpp.o.d"
  "mvc_sim"
  "mvc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
