# Empty dependencies file for mvc_sim.
# This may be replaced when dependencies are built.
