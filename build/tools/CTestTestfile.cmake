# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(mvc_sim_generated "/root/repo/build/tools/mvc_sim" "--txns" "40" "--views" "4")
set_tests_properties(mvc_sim_generated PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(mvc_sim_strong "/root/repo/build/tools/mvc_sim" "--txns" "40" "--managers" "strong" "--delta-cost" "2000")
set_tests_properties(mvc_sim_strong PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(mvc_sim_sequential "/root/repo/build/tools/mvc_sim" "--sequential-baseline" "--txns" "30")
set_tests_properties(mvc_sim_sequential PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(mvc_sim_scenario "/root/repo/build/tools/mvc_sim" "--scenario" "/root/repo/examples/dashboard.mvc")
set_tests_properties(mvc_sim_scenario PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
