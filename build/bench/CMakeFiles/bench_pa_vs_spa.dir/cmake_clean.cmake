file(REMOVE_RECURSE
  "CMakeFiles/bench_pa_vs_spa.dir/bench_pa_vs_spa.cpp.o"
  "CMakeFiles/bench_pa_vs_spa.dir/bench_pa_vs_spa.cpp.o.d"
  "bench_pa_vs_spa"
  "bench_pa_vs_spa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pa_vs_spa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
