# Empty dependencies file for bench_pa_vs_spa.
# This may be replaced when dependencies are built.
