# Empty dependencies file for bench_promptness.
# This may be replaced when dependencies are built.
