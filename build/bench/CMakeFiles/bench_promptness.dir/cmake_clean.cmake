file(REMOVE_RECURSE
  "CMakeFiles/bench_promptness.dir/bench_promptness.cpp.o"
  "CMakeFiles/bench_promptness.dir/bench_promptness.cpp.o.d"
  "bench_promptness"
  "bench_promptness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_promptness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
