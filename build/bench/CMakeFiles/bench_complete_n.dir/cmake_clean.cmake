file(REMOVE_RECURSE
  "CMakeFiles/bench_complete_n.dir/bench_complete_n.cpp.o"
  "CMakeFiles/bench_complete_n.dir/bench_complete_n.cpp.o.d"
  "bench_complete_n"
  "bench_complete_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_complete_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
