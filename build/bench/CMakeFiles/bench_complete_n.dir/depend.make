# Empty dependencies file for bench_complete_n.
# This may be replaced when dependencies are built.
