file(REMOVE_RECURSE
  "CMakeFiles/bench_bottleneck.dir/bench_bottleneck.cpp.o"
  "CMakeFiles/bench_bottleneck.dir/bench_bottleneck.cpp.o.d"
  "bench_bottleneck"
  "bench_bottleneck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
