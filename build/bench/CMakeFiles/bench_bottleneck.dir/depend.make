# Empty dependencies file for bench_bottleneck.
# This may be replaced when dependencies are built.
