file(REMOVE_RECURSE
  "CMakeFiles/bench_vut_traces.dir/bench_vut_traces.cpp.o"
  "CMakeFiles/bench_vut_traces.dir/bench_vut_traces.cpp.o.d"
  "bench_vut_traces"
  "bench_vut_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vut_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
