# Empty dependencies file for bench_vut_traces.
# This may be replaced when dependencies are built.
