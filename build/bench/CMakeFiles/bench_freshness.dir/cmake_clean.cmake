file(REMOVE_RECURSE
  "CMakeFiles/bench_freshness.dir/bench_freshness.cpp.o"
  "CMakeFiles/bench_freshness.dir/bench_freshness.cpp.o.d"
  "bench_freshness"
  "bench_freshness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_freshness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
