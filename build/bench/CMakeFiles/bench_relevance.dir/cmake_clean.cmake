file(REMOVE_RECURSE
  "CMakeFiles/bench_relevance.dir/bench_relevance.cpp.o"
  "CMakeFiles/bench_relevance.dir/bench_relevance.cpp.o.d"
  "bench_relevance"
  "bench_relevance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_relevance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
