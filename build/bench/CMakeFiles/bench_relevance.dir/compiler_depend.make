# Empty compiler generated dependencies file for bench_relevance.
# This may be replaced when dependencies are built.
