# Empty compiler generated dependencies file for bench_distributed_merge.
# This may be replaced when dependencies are built.
