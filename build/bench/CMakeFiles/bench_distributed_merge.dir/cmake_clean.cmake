file(REMOVE_RECURSE
  "CMakeFiles/bench_distributed_merge.dir/bench_distributed_merge.cpp.o"
  "CMakeFiles/bench_distributed_merge.dir/bench_distributed_merge.cpp.o.d"
  "bench_distributed_merge"
  "bench_distributed_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distributed_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
