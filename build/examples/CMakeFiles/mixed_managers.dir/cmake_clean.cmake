file(REMOVE_RECURSE
  "CMakeFiles/mixed_managers.dir/mixed_managers.cpp.o"
  "CMakeFiles/mixed_managers.dir/mixed_managers.cpp.o.d"
  "mixed_managers"
  "mixed_managers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_managers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
