# Empty compiler generated dependencies file for mixed_managers.
# This may be replaced when dependencies are built.
