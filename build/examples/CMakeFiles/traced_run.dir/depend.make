# Empty dependencies file for traced_run.
# This may be replaced when dependencies are built.
