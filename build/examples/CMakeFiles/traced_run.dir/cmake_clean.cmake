file(REMOVE_RECURSE
  "CMakeFiles/traced_run.dir/traced_run.cpp.o"
  "CMakeFiles/traced_run.dir/traced_run.cpp.o.d"
  "traced_run"
  "traced_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traced_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
