file(REMOVE_RECURSE
  "CMakeFiles/sales_dashboard.dir/sales_dashboard.cpp.o"
  "CMakeFiles/sales_dashboard.dir/sales_dashboard.cpp.o.d"
  "sales_dashboard"
  "sales_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sales_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
