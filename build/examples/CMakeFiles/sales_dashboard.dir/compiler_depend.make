# Empty compiler generated dependencies file for sales_dashboard.
# This may be replaced when dependencies are built.
