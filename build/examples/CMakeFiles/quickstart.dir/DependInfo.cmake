
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/mvc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/mvc_system.dir/DependInfo.cmake"
  "/root/repo/build/src/consistency/CMakeFiles/mvc_consistency.dir/DependInfo.cmake"
  "/root/repo/build/src/merge/CMakeFiles/mvc_merge.dir/DependInfo.cmake"
  "/root/repo/build/src/viewmgr/CMakeFiles/mvc_viewmgr.dir/DependInfo.cmake"
  "/root/repo/build/src/integrator/CMakeFiles/mvc_integrator.dir/DependInfo.cmake"
  "/root/repo/build/src/source/CMakeFiles/mvc_source.dir/DependInfo.cmake"
  "/root/repo/build/src/warehouse/CMakeFiles/mvc_warehouse.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mvc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/mvc_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mvc_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mvc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
