# Empty dependencies file for table1_walkthrough.
# This may be replaced when dependencies are built.
