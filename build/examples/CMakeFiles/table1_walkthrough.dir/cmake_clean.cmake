file(REMOVE_RECURSE
  "CMakeFiles/table1_walkthrough.dir/table1_walkthrough.cpp.o"
  "CMakeFiles/table1_walkthrough.dir/table1_walkthrough.cpp.o.d"
  "table1_walkthrough"
  "table1_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
