# Empty dependencies file for auxiliary_views.
# This may be replaced when dependencies are built.
