file(REMOVE_RECURSE
  "CMakeFiles/auxiliary_views.dir/auxiliary_views.cpp.o"
  "CMakeFiles/auxiliary_views.dir/auxiliary_views.cpp.o.d"
  "auxiliary_views"
  "auxiliary_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auxiliary_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
