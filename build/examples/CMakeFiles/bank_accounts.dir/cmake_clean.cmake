file(REMOVE_RECURSE
  "CMakeFiles/bank_accounts.dir/bank_accounts.cpp.o"
  "CMakeFiles/bank_accounts.dir/bank_accounts.cpp.o.d"
  "bank_accounts"
  "bank_accounts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_accounts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
