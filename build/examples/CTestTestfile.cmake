# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_table1_walkthrough "/root/repo/build/examples/table1_walkthrough")
set_tests_properties(example_table1_walkthrough PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bank_accounts "/root/repo/build/examples/bank_accounts")
set_tests_properties(example_bank_accounts PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_auxiliary_views "/root/repo/build/examples/auxiliary_views")
set_tests_properties(example_auxiliary_views PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mixed_managers "/root/repo/build/examples/mixed_managers")
set_tests_properties(example_mixed_managers PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sales_dashboard "/root/repo/build/examples/sales_dashboard")
set_tests_properties(example_sales_dashboard PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_traced_run "/root/repo/build/examples/traced_run")
set_tests_properties(example_traced_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
