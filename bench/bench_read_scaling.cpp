// Read-path scaling: MVCC snapshot handles vs the legacy clone history.
//
// Two claims are measured. First, snapshot *acquisition* is O(1) in
// table size on the MVCC path (a shared_ptr copy) while a catalog clone
// is O(table): the acquire cost must stay flat as the table grows 10x.
// Second, serving a pool of point-lookup readers — the Section 1.1
// customer-inquiry pattern: look up a handful of keys across views in
// one atomic read — is dominated by the per-read deep copy on the clone
// path, so MVCC read throughput must beat it by a wide margin while the
// same maintenance commits run.
//
//   bench_read_scaling [--tiny] [--json[=PATH]]
//
// --tiny shrinks every dimension for CI smoke runs; --json writes
// BENCH_read.json (validated by `mvc_stats --check-bench`).

#include <chrono>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/sim_runtime.h"
#include "storage/id_registry.h"
#include "storage/versioned_store.h"
#include "warehouse/reader.h"
#include "warehouse/warehouse.h"

namespace mvc {
namespace {

using Clock = std::chrono::steady_clock;

double NsSince(Clock::time_point start, int64_t iterations) {
  const auto elapsed = Clock::now() - start;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                 .count()) /
         static_cast<double>(iterations);
}

Schema ViewSchema() { return Schema::AllInt64({"A", "B"}); }

/// --- Part 1: snapshot acquisition cost vs table size ---

/// MVCC: acquiring a snapshot of an N-row store is one refcount bump.
double TimeMvccAcquire(int64_t rows, int64_t iterations) {
  VersionedStore store(8);
  MVC_CHECK(store.CreateTable("V1", ViewSchema()).ok());
  VersionedTable* table = *store.GetTable("V1");
  for (int64_t i = 0; i < rows; ++i) {
    MVC_CHECK(table->Insert(Tuple{i, i * 7}).ok());
  }
  store.Commit(0);
  // Keep one handle live so acquired handles are never the last owner.
  SnapshotHandle warm = store.AcquireSnapshot();
  const auto start = Clock::now();
  int64_t sink = 0;
  for (int64_t i = 0; i < iterations; ++i) {
    SnapshotHandle handle = store.AcquireSnapshot();
    sink += handle.commit_id();
  }
  const double ns = NsSince(start, iterations);
  MVC_CHECK(sink == 0);
  return ns;
}

/// Legacy: every snapshot of an N-row catalog is a deep clone.
double TimeCloneAcquire(int64_t rows, int64_t iterations) {
  Table table("V1", ViewSchema());
  for (int64_t i = 0; i < rows; ++i) {
    MVC_CHECK(table.Insert(Tuple{i, i * 7}).ok());
  }
  const auto start = Clock::now();
  int64_t sink = 0;
  for (int64_t i = 0; i < iterations; ++i) {
    Table snapshot = table.Clone();
    sink += snapshot.NumRows();
  }
  const double ns = NsSince(start, iterations);
  MVC_CHECK(sink == rows * iterations);
  return ns;
}

/// --- Part 2: read throughput under concurrent commits ---

/// Issues `reads` atomic point-lookup reads: each observation checks a
/// few keys in the snapshot (via the shared version on the MVCC path,
/// via the served clone on the legacy path) without flattening it.
class LookupReader : public Process {
 public:
  LookupReader(std::string name, ProcessId warehouse,
               std::vector<TimeMicros> read_at, int64_t key_space)
      : Process(std::move(name)),
        warehouse_(warehouse),
        read_at_(std::move(read_at)),
        key_space_(key_space) {}

  void OnStart() override {
    for (TimeMicros at : read_at_) {
      ScheduleSelf(std::make_unique<TickMsg>(), at);
    }
  }

  void OnMessage(ProcessId, MessagePtr msg) override {
    if (msg->kind == Message::Kind::kTick) {
      auto read = std::make_unique<ReadViewsMsg>();
      read->request_id = ++next_request_;
      Send(warehouse_, std::move(read));
      return;
    }
    MVC_CHECK(msg->kind == Message::Kind::kViewsSnapshot);
    auto* snap = static_cast<ViewsSnapshotMsg*>(msg.get());
    MVC_CHECK(snap->ok()) << snap->error;
    // Atomic multi-key inquiry against the snapshot.
    for (int64_t k = 0; k < 4; ++k) {
      const Tuple probe{(snap->request_id * 13 + k * 31) % key_space_,
                        ((snap->request_id * 13 + k * 31) % key_space_) * 7};
      if (snap->handle.valid()) {
        rows_seen += snap->handle.version().Find("V1")->CountOf(probe);
      } else {
        rows_seen += snap->snapshots[0].CountOf(probe);
      }
    }
    ++answers;
  }

  ProcessId warehouse_;
  std::vector<TimeMicros> read_at_;
  int64_t key_space_;
  int64_t next_request_ = 0;
  int64_t answers = 0;
  int64_t rows_seen = 0;
};

/// Sends `commits` single-row maintenance transactions spread over the
/// read window, so versions churn while readers are active.
class CommitDriver : public Process {
 public:
  CommitDriver(std::string name, ProcessId warehouse, int64_t commits,
               int64_t key_space)
      : Process(std::move(name)),
        warehouse_(warehouse),
        commits_(commits),
        key_space_(key_space) {}

  void OnStart() override {
    for (int64_t i = 1; i <= commits_; ++i) {
      auto msg = std::make_unique<WarehouseTxnMsg>();
      msg->txn.txn_id = i;
      msg->txn.views = {0};
      ActionList al;
      al.view = 0;
      al.delta.target = "V1";
      al.delta.Add(Tuple{key_space_ + i, (key_space_ + i) * 7}, 1);
      msg->txn.actions = {al};
      SendAfter(warehouse_, std::move(msg), i * 20);
    }
  }

  void OnMessage(ProcessId, MessagePtr msg) override {
    MVC_CHECK(msg->kind == Message::Kind::kTxnCommitted);
  }

  ProcessId warehouse_;
  int64_t commits_;
  int64_t key_space_;
};

struct ThroughputResult {
  double ns_per_read = 0;
  int64_t reads = 0;
};

/// Wall-clock cost per read of a warehouse serving `readers` pooled
/// readers while `commits` maintenance transactions land, on the MVCC
/// or the legacy clone path.
ThroughputResult TimeReadThroughput(bool legacy, int64_t rows,
                                    int64_t readers, int64_t reads_each,
                                    int64_t commits) {
  static const IdRegistry* registry = [] {
    auto* r = new IdRegistry();
    r->InternViews({"V1"});
    return r;
  }();

  SimRuntime runtime(11);
  WarehouseOptions options;
  options.history_depth = 8;  // the clone ring the legacy path pays for
  options.legacy_clone_history = legacy;
  WarehouseProcess warehouse("warehouse", options);
  warehouse.SetRegistry(registry);
  MVC_CHECK(warehouse.CreateView("V1", ViewSchema()).ok());
  Table initial("V1", ViewSchema());
  for (int64_t i = 0; i < rows; ++i) {
    MVC_CHECK(initial.Insert(Tuple{i, i * 7}).ok());
  }
  MVC_CHECK(warehouse.InitializeView("V1", initial).ok());
  ProcessId wpid = runtime.Register(&warehouse);

  CommitDriver driver("driver", wpid, commits, rows);
  runtime.Register(&driver);
  std::vector<std::unique_ptr<LookupReader>> pool;
  Rng rng(7);
  for (int64_t r = 0; r < readers; ++r) {
    pool.push_back(std::make_unique<LookupReader>(
        "reader-" + std::to_string(r), wpid,
        PoissonReadSchedule(rng.engine()(), static_cast<size_t>(reads_each),
                            /*mean_interval_us=*/25.0),
        rows));
    runtime.Register(pool.back().get());
  }

  const auto start = Clock::now();
  runtime.Run();
  ThroughputResult result;
  for (const auto& reader : pool) {
    MVC_CHECK(reader->answers == reads_each);
    result.reads += reader->answers;
  }
  result.ns_per_read = NsSince(start, result.reads);
  return result;
}

int Main(int argc, char** argv) {
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }
  const std::string json_path =
      bench::JsonOutputPath(argc, argv, "BENCH_read.json");

  const int64_t base_rows = tiny ? 1000 : 20000;
  const int64_t acquire_iters = tiny ? 20000 : 200000;
  const int64_t clone_iters = tiny ? 50 : 200;
  const int64_t readers = tiny ? 4 : 8;
  const int64_t reads_each = tiny ? 25 : 100;
  const int64_t commits = tiny ? 20 : 100;

  std::vector<bench::BenchRecord> records;
  bench::TablePrinter table(
      {"benchmark", "iterations", "ns/op"});
  auto record = [&](const std::string& name, int64_t iterations,
                    double ns) {
    records.push_back(bench::BenchRecord{name, iterations, ns, -1});
    table.AddRow(name, iterations, ns);
  };

  // Snapshot acquisition across a 10x size spread.
  const double mvcc_small = TimeMvccAcquire(base_rows, acquire_iters);
  const double mvcc_large = TimeMvccAcquire(base_rows * 10, acquire_iters);
  record("snapshot_acquire/mvcc/rows=" + std::to_string(base_rows),
         acquire_iters, mvcc_small);
  record("snapshot_acquire/mvcc/rows=" + std::to_string(base_rows * 10),
         acquire_iters, mvcc_large);
  const double clone_small = TimeCloneAcquire(base_rows, clone_iters);
  const double clone_large =
      TimeCloneAcquire(base_rows * 10, clone_iters);
  record("snapshot_acquire/clone/rows=" + std::to_string(base_rows),
         clone_iters, clone_small);
  record("snapshot_acquire/clone/rows=" + std::to_string(base_rows * 10),
         clone_iters, clone_large);

  // Read throughput with the same pooled readers and commit stream.
  ThroughputResult mvcc = TimeReadThroughput(
      /*legacy=*/false, base_rows, readers, reads_each, commits);
  ThroughputResult clone = TimeReadThroughput(
      /*legacy=*/true, base_rows, readers, reads_each, commits);
  record("read_throughput/mvcc/hd=8", mvcc.reads, mvcc.ns_per_read);
  record("read_throughput/clone/hd=8", clone.reads, clone.ns_per_read);

  table.Print();
  std::cout << "\nsnapshot acquire, 10x table growth: mvcc "
            << mvcc_small << " -> " << mvcc_large << " ns/op (ratio "
            << (mvcc_large / mvcc_small) << "), clone " << clone_small
            << " -> " << clone_large << " ns/op (ratio "
            << (clone_large / clone_small) << ")\n";
  std::cout << "read throughput at history depth 8: clone/mvcc speedup "
            << (clone.ns_per_read / mvcc.ns_per_read) << "x\n";

  if (!json_path.empty()) {
    bench::WriteBenchJson(json_path, "mvc-bench-read-v1", records);
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace mvc

int main(int argc, char** argv) { return mvc::Main(argc, argv); }
