// Experiment P1 — the merge process's effect on view freshness
// (the study Section 7 proposes).
//
// Sweep the update rate and compare propagation lag (update numbered ->
// first reflected at the warehouse) across architectures:
//   spa          complete managers + SPA             (MVC complete)
//   pa           strong managers + PA                (MVC strong)
//   sequential   Section 1.1 strawman                (MVC complete)
//   no-mvc       pass-through, no coordination       (convergent only)
//
// Expected shape: no-mvc has the lowest lag (it never holds an action
// list) but violates MVC; SPA/PA pay a modest holding cost; the
// sequential strawman's lag explodes as the update rate approaches its
// serial service rate.

#include "bench_util.h"

namespace mvc {
namespace {

SystemConfig BaseScenario(TimeMicros interarrival, uint64_t seed) {
  WorkloadSpec spec;
  spec.seed = seed;
  spec.num_sources = 2;
  spec.relations_per_source = 2;
  spec.num_views = 6;
  spec.max_view_width = 3;
  spec.num_transactions = 120;
  spec.mean_interarrival = interarrival;
  auto config = GenerateScenario(spec);
  MVC_CHECK(config.ok());
  config->latency = LatencyModel::Uniform(300, 400);
  config->vm_options.delta_cost = 800;
  config->warehouse.apply_delay = 100;
  config->warehouse.apply_jitter = 200;
  return std::move(*config);
}

}  // namespace
}  // namespace mvc

int main() {
  using namespace mvc;
  std::cout << "P1. View freshness vs update rate (Section 7 proposed "
               "study)\n"
            << "    120 txns, 6 views, delta cost 800us, latency "
               "300-700us; lag in us\n\n";
  bench::TablePrinter table({"interarrival_us", "architecture", "mean_lag",
                             "max_lag", "commits", "verdict"});
  for (TimeMicros rate : {5000, 2000, 1000, 500, 250}) {
    for (const std::string arch : {"spa", "pa", "sequential", "no-mvc"}) {
      SystemConfig config = BaseScenario(rate, 17);
      if (arch == "pa") {
        for (const auto& def : config.views) {
          config.manager_kinds[def.name] = ManagerKind::kStrong;
        }
        config.strong_options.max_batch = 8;
      } else if (arch == "sequential") {
        config.sequential_baseline = true;
        config.sequential.delta_cost = 800;
      } else if (arch == "no-mvc") {
        config.auto_algorithm = false;
        config.merge.algorithm = MergeAlgorithm::kPassThrough;
      }
      bench::RunMetrics m = bench::RunScenario(std::move(config));
      table.AddRow(rate, arch, m.mean_lag_us, m.max_lag_us, m.commits,
                   bench::Verdict(m));
    }
  }
  table.Print();
  std::cout << "\nReading: the sequential strawman's lag explodes once the "
               "inter-arrival time drops below its serial per-update service "
               "time; SPA/PA track the uncoordinated lower bound closely "
               "while preserving MVC.\n";
  return 0;
}
