// Experiment F3 — distributed merge (Section 6.1, Figure 3).
//
// Views that share no base relations can be coordinated by independent
// merge processes. This harness prints the partition the planner
// derives for the Figure 3 layout and then sweeps the number of merge
// processes on a workload of disjoint view families, reporting per-
// process pressure.

#include "bench_util.h"
#include "common/string_util.h"
#include "merge/partition.h"

namespace mvc {
namespace {

void Figure3Partition() {
  std::map<std::string, Schema> schemas = {
      {"R", Schema::AllInt64({"A", "B"})},
      {"S", Schema::AllInt64({"B", "C"})},
      {"T", Schema::AllInt64({"C", "D"})},
      {"Q", Schema::AllInt64({"D", "E"})}};
  // Figure 3: V1 = R, V2 = S |><| T, V3 = Q.
  ViewDefinition v1;
  v1.name = "V1";
  v1.relations = {"R"};
  ViewDefinition v2;
  v2.name = "V2";
  v2.relations = {"S", "T"};
  v2.predicate = Predicate::ColEqCol(ColumnRef{"S", "C"}, ColumnRef{"T", "C"});
  ViewDefinition v3;
  v3.name = "V3";
  v3.relations = {"Q"};

  auto b1 = std::move(BoundView::Bind(v1, schemas)).value();
  auto b2 = std::move(BoundView::Bind(v2, schemas)).value();
  auto b3 = std::move(BoundView::Bind(v3, schemas)).value();
  auto groups = PartitionViews({&b1, &b2, &b3});

  bench::TablePrinter table({"merge_process", "views", "base_relations"});
  for (size_t g = 0; g < groups.size(); ++g) {
    table.AddRow(StrCat("MP", g + 1), JoinToString(groups[g].views, ","),
                 JoinToString(groups[g].relations, ","));
  }
  table.Print();
}

SystemConfig Scenario(size_t merge_processes) {
  WorkloadSpec spec;
  spec.seed = 61;
  spec.num_sources = 3;
  spec.relations_per_source = 3;
  spec.num_views = 9;
  spec.max_view_width = 1;  // disjoint single-relation views
  spec.selection_probability = 0;
  spec.num_transactions = 200;
  spec.mean_interarrival = 400;
  auto config = GenerateScenario(spec);
  MVC_CHECK(config.ok());
  config->latency = LatencyModel::Uniform(200, 200);
  config->vm_options.delta_cost = 100;
  config->merge.process_delay = 300;
  config->num_merge_processes = merge_processes;
  return std::move(*config);
}

}  // namespace
}  // namespace mvc

int main() {
  using namespace mvc;
  std::cout << "F3. Distributed merge (Section 6.1)\n\n"
            << "Partition derived for the Figure 3 layout (V1 = R, "
               "V2 = S|><|T, V3 = Q):\n\n";
  Figure3Partition();

  std::cout << "\nScaling the merge tier on 9 disjoint views, 200 txns at "
               "400us, merge CPU 300us/message:\n\n";
  bench::TablePrinter table({"merge_procs", "peak_backlog", "mean_lag",
                             "max_lag", "verdict"});
  for (size_t mps : {size_t{1}, size_t{2}, size_t{3}, size_t{6},
                     size_t{9}}) {
    bench::RunMetrics m = bench::RunScenario(Scenario(mps));
    table.AddRow(mps, m.peak_backlog, m.mean_lag_us, m.max_lag_us,
                 bench::Verdict(m));
  }
  table.Print();
  std::cout << "\nReading: one merge process saturates (backlog grows, "
               "freshness degrades); spreading disjoint view groups over "
               "more merge processes divides the arrival rate per process "
               "and restores freshness without giving up MVC.\n";
  return 0;
}
