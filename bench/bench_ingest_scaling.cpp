// Scale-out ingest: sharded integrator throughput and group-commit
// latency (ROADMAP item 2, paper Section 6.2).
//
// The single global integrator is the serial bottleneck of Figure 1:
// every source transaction passes through one sequencer before fan-out.
// This bench models that sequencer as a serial server
// (IntegratorOptions::sequencing_cost_us) and measures, in simulated
// time, how ingest throughput scales when the source population is
// split across 1, 2, and 4 integrator shards drawing global update
// numbers from the shared cross-shard ticketer — with per-group merge
// fan-out and group commit at the warehouse on throughout.
//
// Two claims are measured. First, 4 shards must deliver at least 3x the
// committed-transaction throughput of the single-shard baseline (the
// sequencer is the bottleneck; sharding divides its queue). Second,
// group-commit latency must stay flat: the p99 of
// ingest.commit_latency_us at 4 shards must be within 1.5x of the
// single-shard baseline — batching absorbs the higher arrival rate
// instead of queueing it.
//
//   bench_ingest_scaling [--tiny] [--json[=PATH]]
//
// --tiny shrinks every dimension for CI smoke runs; --json writes
// BENCH_ingest.json (schema mvc-bench-ingest-v1, validated by
// `mvc_stats --check-bench`, including the summary invariants:
// committed == issued, per-shard sequenced counts sum to the total,
// positive p99s).

#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"
#include "system/warehouse_system.h"

namespace mvc {
namespace {

/// Independent single-relation clusters: source src<k> hosts relation
/// r<k>, exposed through view v<k>. Every cluster is its own view
/// group, so the shard planner can spread them over any shard budget
/// and the exact partition gives each group its own merge process.
SystemConfig MakeIngestConfig(size_t num_shards, int64_t sources,
                              int64_t txns_per_source) {
  SystemConfig config;
  for (int64_t s = 0; s < sources; ++s) {
    const std::string src = "src" + std::to_string(s);
    const std::string rel = "r" + std::to_string(s);
    config.sources[src] = {rel};
    config.schemas[rel] = Schema::AllInt64({"A", "B"});
    ViewDefinition def;
    def.name = "v" + std::to_string(s);
    def.relations = {rel};
    config.views.push_back(def);
  }
  config.ingest.num_shards = num_shards;
  config.ingest.fanout_merge = true;
  config.ingest.group_commit.enabled = true;
  config.ingest.group_commit.max_batch = 8;
  config.ingest.group_commit.max_delay_us = 1000;
  // The serial sequencer: 400us of modeled work per transaction. One
  // shard drains the whole offered load at 2.5k txn/s; N shards drain
  // N disjoint queues concurrently.
  config.integrator.sequencing_cost_us = 400;
  config.collect_metrics = true;
  // Oracle snapshots are O(views) per commit and benchmark-irrelevant;
  // the correctness battery covers sharded ingest separately.
  config.record_snapshots = false;

  // All sources inject in parallel, far faster than one sequencer can
  // drain: the arrival span is txns_per_source * 200us, the single-
  // shard service span sources * txns_per_source * 400us.
  for (int64_t j = 0; j < txns_per_source; ++j) {
    for (int64_t s = 0; s < sources; ++s) {
      Injection inj;
      inj.at = 1000 + j * 200;
      inj.source = "src" + std::to_string(s);
      inj.updates = {Update::Insert(inj.source, "r" + std::to_string(s),
                                    Tuple{j, s})};
      config.workload.push_back(std::move(inj));
    }
  }
  return config;
}

struct IngestResult {
  int64_t issued = 0;
  int64_t committed = 0;
  int64_t makespan_us = 0;
  double throughput_tps = 0;
  int64_t commit_p99_us = 0;
  std::vector<int64_t> per_shard_sequenced;
};

IngestResult RunIngest(size_t num_shards, int64_t sources,
                       int64_t txns_per_source) {
  auto system = WarehouseSystem::Build(
      MakeIngestConfig(num_shards, sources, txns_per_source));
  MVC_CHECK(system.ok()) << system.status().ToString();
  MVC_CHECK((*system)->integrator_shards().size() == num_shards)
      << "wanted " << num_shards << " shards, wired "
      << (*system)->integrator_shards().size();
  (*system)->Run();

  IngestResult r;
  r.issued = static_cast<int64_t>((*system)->recorder().updates().size());
  r.committed =
      static_cast<int64_t>((*system)->recorder().commits().size());
  MVC_CHECK(r.committed == sources * txns_per_source)
      << r.committed << " committed of " << sources * txns_per_source;
  MVC_CHECK(r.committed == r.issued);
  if (num_shards > 1) {
    MVC_CHECK((*system)->tickets_issued() == r.issued)
        << (*system)->tickets_issued() << " tickets for " << r.issued
        << " sequenced updates";
  }
  for (const auto& shard : (*system)->integrator_shards()) {
    r.per_shard_sequenced.push_back(shard->num_updates());
  }
  r.makespan_us = (*system)->runtime().Now();
  r.throughput_tps = static_cast<double>(r.committed) /
                     (static_cast<double>(r.makespan_us) / 1e6);
  const obs::MetricsSnapshot snapshot = (*system)->MetricsSnapshot();
  const obs::HistogramSnapshot* latency =
      obs::FindHistogram(snapshot, "ingest.commit_latency_us");
  MVC_CHECK(latency != nullptr) << "ingest.commit_latency_us not recorded";
  MVC_CHECK(latency->count == r.committed);
  r.commit_p99_us = latency->Quantile(0.99);
  return r;
}

int Main(int argc, char** argv) {
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }
  const std::string json_path =
      bench::JsonOutputPath(argc, argv, "BENCH_ingest.json");

  const int64_t sources = tiny ? 4 : 8;
  const int64_t txns_per_source = tiny ? 20 : 50;

  std::vector<bench::BenchRecord> records;
  bench::TablePrinter table(
      {"shards", "committed", "makespan_ms", "txn/s", "commit_p99_us"});
  std::vector<size_t> shard_counts = {1, 2, 4};
  std::vector<IngestResult> results;
  for (size_t n : shard_counts) {
    IngestResult r = RunIngest(n, sources, txns_per_source);
    table.AddRow(static_cast<int64_t>(n), r.committed,
                 static_cast<double>(r.makespan_us) / 1000.0,
                 r.throughput_tps, r.commit_p99_us);
    const std::string prefix = "ingest/shards=" + std::to_string(n);
    records.push_back(bench::BenchRecord{
        prefix + "/sequenced", r.committed,
        static_cast<double>(r.makespan_us) * 1000.0 /
            static_cast<double>(r.committed),
        -1});
    records.push_back(bench::BenchRecord{
        prefix + "/commit_p99", r.committed,
        static_cast<double>(r.commit_p99_us) * 1000.0, -1});
    results.push_back(std::move(r));
  }
  table.Print();

  const IngestResult& baseline = results.front();
  const IngestResult& scaled = results.back();
  const double speedup = scaled.throughput_tps / baseline.throughput_tps;
  const double p99_ratio = static_cast<double>(scaled.commit_p99_us) /
                           static_cast<double>(baseline.commit_p99_us);
  std::cout << "\ningest throughput: 1 shard " << std::fixed
            << std::setprecision(0) << baseline.throughput_tps
            << " txn/s, 4 shards " << scaled.throughput_tps
            << " txn/s (speedup " << std::setprecision(2) << speedup
            << "x); commit p99 " << baseline.commit_p99_us << "us -> "
            << scaled.commit_p99_us << "us (ratio " << p99_ratio << "x)\n";

  // The acceptance bar: sharding the sequencer must buy at least 3x
  // committed throughput at 4 shards, and group commit must keep the
  // p99 commit latency within 1.5x of the single-shard baseline.
  MVC_CHECK(speedup >= 3.0) << "4-shard speedup only " << speedup << "x";
  MVC_CHECK(p99_ratio <= 1.5) << "commit p99 regressed " << p99_ratio << "x";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    MVC_CHECK(out.good()) << "cannot open " << json_path;
    out << "{\n  \"schema\": \"mvc-bench-ingest-v1\",\n  \"records\": ";
    bench::WriteBenchRecordsArray(out, records, "    ", "  ");
    out << "  ,\n  \"summary\": {\"num_shards\": "
        << scaled.per_shard_sequenced.size()
        << ", \"issued\": " << scaled.issued
        << ", \"committed\": " << scaled.committed
        << ", \"per_shard_sequenced\": [";
    for (size_t i = 0; i < scaled.per_shard_sequenced.size(); ++i) {
      out << (i > 0 ? ", " : "") << scaled.per_shard_sequenced[i];
    }
    out << "], \"baseline_tps\": " << std::fixed << std::setprecision(2)
        << baseline.throughput_tps
        << ", \"scaled_tps\": " << scaled.throughput_tps
        << ", \"throughput_speedup\": " << speedup
        << ", \"baseline_commit_p99_us\": " << baseline.commit_p99_us
        << ", \"scaled_commit_p99_us\": " << scaled.commit_p99_us
        << ", \"p99_ratio\": " << p99_ratio << "}\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace mvc

int main(int argc, char** argv) { return mvc::Main(argc, argv); }
