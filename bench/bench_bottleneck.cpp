// Experiment P2 — when does the merge process become a bottleneck?
// (The second study Section 7 proposes, motivating Section 6.1.)
//
// The merge process is given a fixed per-message processing cost; as the
// update rate and view count grow, its inbound backlog grows without
// bound, inflating view freshness. Distributing the merge over several
// processes (Section 6.1) relieves it.

#include "bench_util.h"

namespace mvc {
namespace {

SystemConfig Scenario(int num_views, TimeMicros interarrival,
                      size_t merge_processes) {
  WorkloadSpec spec;
  spec.seed = 23;
  spec.num_sources = 2;
  // Keep views pairwise disjoint so the exact partition has many groups:
  // one relation per view.
  spec.relations_per_source = num_views / 2 + 1;
  spec.num_views = num_views;
  spec.max_view_width = 1;
  spec.selection_probability = 0;
  spec.num_transactions = 150;
  spec.mean_interarrival = interarrival;
  auto config = GenerateScenario(spec);
  MVC_CHECK(config.ok());
  config->latency = LatencyModel::Uniform(200, 200);
  config->vm_options.delta_cost = 100;
  config->merge.process_delay = 400;  // merge CPU per message
  config->num_merge_processes = merge_processes;
  return std::move(*config);
}

}  // namespace
}  // namespace mvc

int main() {
  using namespace mvc;
  std::cout << "P2. Merge-process bottleneck: backlog and freshness vs load "
               "and merge parallelism\n"
            << "    merge CPU 400us/message, 150 txns; lag in us\n\n";
  bench::TablePrinter table({"views", "interarrival_us", "merge_procs",
                             "peak_backlog", "mean_lag", "max_lag",
                             "verdict"});
  for (int views : {4, 8, 12}) {
    for (TimeMicros rate : {2000, 800, 400}) {
      for (size_t mps : {size_t{1}, size_t{2}, size_t{4}}) {
        bench::RunMetrics m =
            bench::RunScenario(Scenario(views, rate, mps));
        table.AddRow(views, rate, mps, m.peak_backlog, m.mean_lag_us,
                     m.max_lag_us, bench::Verdict(m));
      }
    }
  }
  table.Print();
  std::cout << "\nReading: with one merge process the backlog grows with "
               "view count x update rate (each update fans out one REL plus "
               "one AL per relevant view); partitioning the views over "
               "several merge processes (Figure 3) divides the load and "
               "restores freshness, with MVC still guaranteed per group.\n";
  return 0;
}
