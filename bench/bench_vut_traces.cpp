// Experiments E2/E3/E5 — regenerates the paper's VUT traces:
//   Example 2: the ViewUpdateTable after REL1, REL2, AL^2_1;
//   Example 3: the full SPA trace (times t4..t11);
//   Example 5: the full PA trace with (color,state) cells (t0..t7).

#include <iostream>

#include "merge/merge_engine.h"

namespace mvc {
namespace {

ActionList Al(const std::string& view, UpdateId first, UpdateId last) {
  ActionList al;
  al.view = view;
  al.first_update = first;
  al.update = last;
  for (UpdateId i = first; i <= last; ++i) al.covered.push_back(i);
  al.delta.target = view;
  al.delta.Add(Tuple{last}, 1);
  return al;
}

void Emit(const std::vector<WarehouseTransaction>& txns) {
  for (const auto& txn : txns) {
    std::cout << "    => apply " << txn.ToString() << "\n";
  }
}

void Example2() {
  std::cout << "E2. Example 2: ViewUpdateTable construction\n"
            << "    V1 = R|><|S, V2 = S|><|T|><|Q, V3 = Q;"
            << " U1 on S, U2 on Q\n\n";
  SpaEngine engine({"V1", "V2", "V3"});
  std::vector<WarehouseTransaction> out;
  engine.ReceiveRelSet(1, {"V1", "V2"}, &out);
  engine.ReceiveRelSet(2, {"V2", "V3"}, &out);
  std::cout << "  After REL1 and REL2:\n" << engine.vut().ToString() << "\n";
  engine.ReceiveActionList(Al("V2", 1, 1), &out);
  std::cout << "  After AL^2_1 (held: row 1 still waits for V1):\n"
            << engine.vut().ToString() << "\n";
}

void Example3() {
  std::cout << "E3. Example 3: Simple Painting Algorithm trace\n"
            << "    V1 = R|><|S, V2 = S|><|T, V3 = Q;"
            << " U1 on S, U2 on Q, U3 on T\n"
            << "    Arrival: REL1, AL(V2,1), REL2, REL3, AL(V3,2), "
               "AL(V2,3), AL(V1,1)\n\n";
  SpaEngine engine({"V1", "V2", "V3"});
  std::vector<WarehouseTransaction> out;

  auto step = [&](const std::string& what, auto&& fn) {
    out.clear();
    fn();
    std::cout << "  " << what << ":\n";
    Emit(out);
    std::cout << engine.vut().ToString() << "\n";
  };

  step("REL1 = {V1,V2}", [&] { engine.ReceiveRelSet(1, {"V1", "V2"}, &out); });
  step("AL^2_1 arrives (t1)",
       [&] { engine.ReceiveActionList(Al("V2", 1, 1), &out); });
  step("REL2 = {V3} (t2)", [&] { engine.ReceiveRelSet(2, {"V3"}, &out); });
  step("REL3 = {V2} (t3)", [&] { engine.ReceiveRelSet(3, {"V2"}, &out); });
  step("AL^3_2 arrives (t4): row 2 applies out of order (t5), purged (t6)",
       [&] { engine.ReceiveActionList(Al("V3", 2, 2), &out); });
  step("AL^2_3 arrives (t7): blocked behind row 1's red V2",
       [&] { engine.ReceiveActionList(Al("V2", 3, 3), &out); });
  step("AL^1_1 arrives (t8): row 1 applies (t9), then row 3 (t10-t11)",
       [&] { engine.ReceiveActionList(Al("V1", 1, 1), &out); });
}

void Example5() {
  std::cout << "E5. Example 5: Painting Algorithm trace (cells are "
               "(color,state))\n"
            << "    V1 = R|><|S, V2 = S|><|T|><|Q, V3 = Q;"
            << " U1 on S, U2 on Q, U3 on Q\n"
            << "    Arrival: REL1-3, AL(V2,1), AL(V2,2..3), AL(V3,2), "
               "AL(V1,1), AL(V3,3)\n\n";
  PaEngine engine({"V1", "V2", "V3"});
  std::vector<WarehouseTransaction> out;

  auto step = [&](const std::string& what, auto&& fn) {
    out.clear();
    fn();
    std::cout << "  " << what << ":\n";
    Emit(out);
    std::cout << engine.vut().ToString(true) << "\n";
  };

  step("REL1..REL3 (t0)", [&] {
    engine.ReceiveRelSet(1, {"V1", "V2"}, &out);
    engine.ReceiveRelSet(2, {"V2", "V3"}, &out);
    engine.ReceiveRelSet(3, {"V2", "V3"}, &out);
  });
  step("AL^2_1 (t1)", [&] { engine.ReceiveActionList(Al("V2", 1, 1), &out); });
  step("AL^2_3 covering U2,U3 (t2)",
       [&] { engine.ReceiveActionList(Al("V2", 2, 3), &out); });
  step("AL^3_2 (t3): ProcessRow(2) -> ProcessRow(1) fails on white V1",
       [&] { engine.ReceiveActionList(Al("V3", 2, 2), &out); });
  step("AL^1_1 (t4): row 1 applies alone (t5)",
       [&] { engine.ReceiveActionList(Al("V1", 1, 1), &out); });
  step("AL^3_3 (t6): rows 2 and 3 apply together (t7)",
       [&] { engine.ReceiveActionList(Al("V3", 3, 3), &out); });
}

}  // namespace
}  // namespace mvc

int main() {
  mvc::Example2();
  std::cout << "\n";
  mvc::Example3();
  std::cout << "\n";
  mvc::Example5();
  return 0;
}
