// Experiments E2/E3/E5 — regenerates the paper's VUT traces:
//   Example 2: the ViewUpdateTable after REL1, REL2, AL^2_1;
//   Example 3: the full SPA trace (times t4..t11);
//   Example 5: the full PA trace with (color,state) cells (t0..t7).
//
// Also times the VUT paint/scan hot path and the raw engine event loop.
// With --json (or --json=<path>) the timings are written as an
// mvc-bench-vut-v1 artifact (default BENCH_vut.json); heap allocations
// inside the timed regions are counted via the instrumented operator
// new below, and the schema requires the count on every record.

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <new>

#include "bench_util.h"
#include "merge/merge_engine.h"
#include "storage/id_registry.h"

// --- Allocation instrumentation (whole binary) ---

namespace {
int64_t g_allocations = 0;
}  // namespace

// The replacement pairs are consistent (malloc in new, free in delete);
// GCC's -Wmismatched-new-delete cannot see across replaced operators.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace mvc {
namespace {

constexpr ViewId kV1 = 0, kV2 = 1, kV3 = 2;

const IdRegistry* Names() {
  static const IdRegistry* reg = [] {
    auto* r = new IdRegistry();
    r->InternViews({"V1", "V2", "V3"});
    return r;
  }();
  return reg;
}

ActionList Al(ViewId view, UpdateId first, UpdateId last) {
  ActionList al;
  al.view = view;
  al.first_update = first;
  al.update = last;
  for (UpdateId i = first; i <= last; ++i) al.covered.push_back(i);
  al.delta.target = Names()->ViewName(view);
  al.delta.Add(Tuple{last}, 1);
  return al;
}

void Emit(const std::vector<WarehouseTransaction>& txns) {
  for (const auto& txn : txns) {
    std::cout << "    => apply " << txn.ToString(Names()) << "\n";
  }
}

void Example2() {
  std::cout << "E2. Example 2: ViewUpdateTable construction\n"
            << "    V1 = R|><|S, V2 = S|><|T|><|Q, V3 = Q;"
            << " U1 on S, U2 on Q\n\n";
  SpaEngine engine({kV1, kV2, kV3}, Names());
  std::vector<WarehouseTransaction> out;
  engine.ReceiveRelSet(1, {kV1, kV2}, &out);
  engine.ReceiveRelSet(2, {kV2, kV3}, &out);
  std::cout << "  After REL1 and REL2:\n" << engine.vut().ToString() << "\n";
  engine.ReceiveActionList(Al(kV2, 1, 1), &out);
  std::cout << "  After AL^2_1 (held: row 1 still waits for V1):\n"
            << engine.vut().ToString() << "\n";
}

void Example3() {
  std::cout << "E3. Example 3: Simple Painting Algorithm trace\n"
            << "    V1 = R|><|S, V2 = S|><|T, V3 = Q;"
            << " U1 on S, U2 on Q, U3 on T\n"
            << "    Arrival: REL1, AL(V2,1), REL2, REL3, AL(V3,2), "
               "AL(V2,3), AL(V1,1)\n\n";
  SpaEngine engine({kV1, kV2, kV3}, Names());
  std::vector<WarehouseTransaction> out;

  auto step = [&](const std::string& what, auto&& fn) {
    out.clear();
    fn();
    std::cout << "  " << what << ":\n";
    Emit(out);
    std::cout << engine.vut().ToString() << "\n";
  };

  step("REL1 = {V1,V2}", [&] { engine.ReceiveRelSet(1, {kV1, kV2}, &out); });
  step("AL^2_1 arrives (t1)",
       [&] { engine.ReceiveActionList(Al(kV2, 1, 1), &out); });
  step("REL2 = {V3} (t2)", [&] { engine.ReceiveRelSet(2, {kV3}, &out); });
  step("REL3 = {V2} (t3)", [&] { engine.ReceiveRelSet(3, {kV2}, &out); });
  step("AL^3_2 arrives (t4): row 2 applies out of order (t5), purged (t6)",
       [&] { engine.ReceiveActionList(Al(kV3, 2, 2), &out); });
  step("AL^2_3 arrives (t7): blocked behind row 1's red V2",
       [&] { engine.ReceiveActionList(Al(kV2, 3, 3), &out); });
  step("AL^1_1 arrives (t8): row 1 applies (t9), then row 3 (t10-t11)",
       [&] { engine.ReceiveActionList(Al(kV1, 1, 1), &out); });
}

void Example5() {
  std::cout << "E5. Example 5: Painting Algorithm trace (cells are "
               "(color,state))\n"
            << "    V1 = R|><|S, V2 = S|><|T|><|Q, V3 = Q;"
            << " U1 on S, U2 on Q, U3 on Q\n"
            << "    Arrival: REL1-3, AL(V2,1), AL(V2,2..3), AL(V3,2), "
               "AL(V1,1), AL(V3,3)\n\n";
  PaEngine engine({kV1, kV2, kV3}, Names());
  std::vector<WarehouseTransaction> out;

  auto step = [&](const std::string& what, auto&& fn) {
    out.clear();
    fn();
    std::cout << "  " << what << ":\n";
    Emit(out);
    std::cout << engine.vut().ToString(true) << "\n";
  };

  step("REL1..REL3 (t0)", [&] {
    engine.ReceiveRelSet(1, {kV1, kV2}, &out);
    engine.ReceiveRelSet(2, {kV2, kV3}, &out);
    engine.ReceiveRelSet(3, {kV2, kV3}, &out);
  });
  step("AL^2_1 (t1)", [&] { engine.ReceiveActionList(Al(kV2, 1, 1), &out); });
  step("AL^2_3 covering U2,U3 (t2)",
       [&] { engine.ReceiveActionList(Al(kV2, 2, 3), &out); });
  step("AL^3_2 (t3): ProcessRow(2) -> ProcessRow(1) fails on white V1",
       [&] { engine.ReceiveActionList(Al(kV3, 2, 2), &out); });
  step("AL^1_1 (t4): row 1 applies alone (t5)",
       [&] { engine.ReceiveActionList(Al(kV1, 1, 1), &out); });
  step("AL^3_3 (t6): rows 2 and 3 apply together (t7)",
       [&] { engine.ReceiveActionList(Al(kV3, 3, 3), &out); });
}

// --- Timings ---

// Keeps scan results observable so the optimizer cannot drop them.
volatile int64_t benchmark_sink = 0;

using Clock = std::chrono::steady_clock;

/// Runs `fn` (which performs `ops_per_call` operations) until ~0.2s of
/// wall time is spent; records ns/op plus allocations per call.
template <typename Fn>
bench::BenchRecord Time(const std::string& name, int64_t ops_per_call,
                        Fn&& fn) {
  fn();  // warm up (also populates free pools / hash tables)
  const int64_t alloc_before = g_allocations;
  fn();
  const int64_t allocs_per_call = g_allocations - alloc_before;

  int64_t calls = 0;
  auto start = Clock::now();
  auto deadline = start + std::chrono::milliseconds(200);
  while (Clock::now() < deadline) {
    fn();
    ++calls;
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     Clock::now() - start)
                     .count();
  bench::BenchRecord record;
  record.name = name;
  record.iterations = calls * ops_per_call;
  record.ns_per_op =
      static_cast<double>(elapsed) / static_cast<double>(record.iterations);
  record.allocations = allocs_per_call;
  return record;
}

/// Paint/scan sweep over a VUT with `cols` columns and a window of
/// `rows` live rows per call: allocate, color, scan, purge.
bench::BenchRecord TimeVutPaintScan(int cols, int rows) {
  auto* reg = new IdRegistry();
  std::vector<ViewId> views;
  for (int x = 0; x < cols; ++x) {
    views.push_back(reg->InternView("W" + std::to_string(x)));
  }
  ViewUpdateTable vut(views, reg);
  UpdateId next = 1;
  auto fn = [&] {
    for (int i = 0; i < rows; ++i) {
      vut.AllocateRow(next + i, views);
    }
    for (int i = 0; i < rows; ++i) {
      UpdateId row = next + i;
      for (size_t x = 0; x < views.size(); ++x) {
        vut.SetColor(row, x, CellColor::kRed);
      }
      benchmark_sink = benchmark_sink + (vut.RowHasWhite(row) ? 1 : 0);
      benchmark_sink = benchmark_sink + (vut.HasEarlierRed(row, 0) ? 1 : 0);
      for (size_t x = 0; x < views.size(); ++x) {
        vut.SetColor(row, x, CellColor::kGray);
      }
      if (vut.RowAllBlackOrGray(row)) vut.PurgeRow(row);
    }
    next += rows;
  };
  bench::BenchRecord r = Time("VutPaintScan/cols:" + std::to_string(cols) +
                                  "/rows:" + std::to_string(rows),
                              rows, fn);
  delete reg;
  return r;
}

/// Raw SPA event loop: REL + AL per update across `cols` views.
bench::BenchRecord TimeSpaEvents(int cols) {
  auto* reg = new IdRegistry();
  std::vector<ViewId> views;
  for (int x = 0; x < cols; ++x) {
    views.push_back(reg->InternView("W" + std::to_string(x)));
  }
  SpaEngine engine(views, reg);
  std::vector<WarehouseTransaction> out;
  UpdateId next = 1;
  const int kBatch = 64;
  auto fn = [&] {
    for (int i = 0; i < kBatch; ++i) {
      UpdateId id = next + i;
      ViewId v = views[static_cast<size_t>(id) % views.size()];
      engine.ReceiveRelSet(id, {v}, &out);
      ActionList al;
      al.view = v;
      al.update = id;
      al.first_update = id;
      al.covered = {id};
      engine.ReceiveActionList(al, &out);
      out.clear();
    }
    next += kBatch;
  };
  bench::BenchRecord r =
      Time("SpaEngineEvents/cols:" + std::to_string(cols), kBatch * 2, fn);
  delete reg;
  return r;
}

void RunTimings(const std::string& json_path) {
  std::vector<bench::BenchRecord> records;
  records.push_back(TimeVutPaintScan(3, 16));
  records.push_back(TimeVutPaintScan(8, 64));
  records.push_back(TimeVutPaintScan(32, 256));
  records.push_back(TimeSpaEvents(3));
  records.push_back(TimeSpaEvents(16));

  std::cout << "T. VUT paint/scan timings\n\n";
  bench::TablePrinter table({"benchmark", "iterations", "ns/op", "allocs"});
  for (const bench::BenchRecord& r : records) {
    table.AddRow(r.name, r.iterations, r.ns_per_op, r.allocations);
  }
  table.Print();

  if (!json_path.empty()) {
    bench::WriteBenchJson(json_path, "mvc-bench-vut-v1", records);
    std::cout << "\n  wrote " << json_path << "\n";
  }
}

}  // namespace
}  // namespace mvc

int main(int argc, char** argv) {
  mvc::Example2();
  std::cout << "\n";
  mvc::Example3();
  std::cout << "\n";
  mvc::Example5();
  std::cout << "\n";
  mvc::RunTimings(mvc::bench::JsonOutputPath(argc, argv, "BENCH_vut.json"));
  return 0;
}
