// Ablation A2 — promptness (Section 4.4).
//
// "Another important property of the SPA algorithm is that it applies
// action lists promptly … we could devise an algorithm that waits until
// all actions about all source updates arrive, then applies WT_1..WT_f
// in that order. This algorithm is also complete under MVC, but is
// clearly not a desirable one."
//
// This harness feeds the identical event stream to SPA and to exactly
// that lazy strawman, and measures how long each action list is held
// (in event steps between its arrival and its application). Both yield
// the same complete sequence of warehouse transactions; only the hold
// times differ.

#include <map>

#include "bench_util.h"
#include "common/rng.h"
#include "merge/merge_engine.h"
#include "storage/id_registry.h"

namespace mvc {
namespace {

struct Event {
  bool is_rel;
  UpdateId update;
  std::vector<ViewId> rel_views;  // for REL events
  ViewId view = kInvalidView;     // for AL events
};

const IdRegistry* Names() {
  static const IdRegistry* reg = [] {
    auto* r = new IdRegistry();
    r->InternViews({"V1", "V2", "V3", "V4"});
    return r;
  }();
  return reg;
}

std::vector<Event> MakeStream(int updates, const std::vector<ViewId>& views,
                              uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<ViewId>> rels(
      static_cast<size_t>(updates) + 1);
  for (int i = 1; i <= updates; ++i) {
    for (ViewId v : views) {
      if (rng.Bernoulli(0.5)) rels[static_cast<size_t>(i)].push_back(v);
    }
  }
  // Interleave REL stream (FIFO) with per-view AL streams (FIFO).
  std::vector<Event> stream;
  size_t rel_next = 1;
  std::map<ViewId, std::vector<UpdateId>> al_streams;
  std::map<ViewId, size_t> al_next;
  for (ViewId v : views) {
    for (int i = 1; i <= updates; ++i) {
      const auto& r = rels[static_cast<size_t>(i)];
      if (std::find(r.begin(), r.end(), v) != r.end()) {
        al_streams[v].push_back(i);
      }
    }
    al_next[v] = 0;
  }
  for (;;) {
    std::vector<int> choices;
    if (rel_next <= static_cast<size_t>(updates)) choices.push_back(-1);
    for (size_t x = 0; x < views.size(); ++x) {
      // ALs only after the REL stream has passed them (the VM needs the
      // update first).
      if (al_next[views[x]] < al_streams[views[x]].size() &&
          al_streams[views[x]][al_next[views[x]]] <
              static_cast<UpdateId>(rel_next)) {
        choices.push_back(static_cast<int>(x));
      }
    }
    if (choices.empty()) break;
    int pick = choices[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(choices.size()) - 1))];
    Event ev;
    if (pick == -1) {
      ev.is_rel = true;
      ev.update = static_cast<UpdateId>(rel_next);
      ev.rel_views = rels[rel_next];
      ++rel_next;
    } else {
      ViewId v = views[static_cast<size_t>(pick)];
      ev.is_rel = false;
      ev.view = v;
      ev.update = al_streams[v][al_next[v]++];
    }
    stream.push_back(std::move(ev));
  }
  return stream;
}

ActionList MakeAl(ViewId view, UpdateId update) {
  ActionList al;
  al.view = view;
  al.update = update;
  al.first_update = update;
  al.covered = {update};
  al.delta.target = Names()->ViewName(view);
  al.delta.Add(Tuple{update}, 1);
  return al;
}

struct HoldStats {
  double mean_hold = 0;
  int64_t max_hold = 0;
  int64_t txns = 0;
};

/// Replays the stream through SPA (prompt = true) or the Section 4.4
/// lazy strawman (apply everything at the end, in row order).
HoldStats Measure(const std::vector<Event>& stream,
                  const std::vector<ViewId>& views, bool prompt) {
  SpaEngine engine(views, Names());
  std::map<std::pair<ViewId, UpdateId>, int64_t> arrived_at;
  std::vector<WarehouseTransaction> lazy_buffer;
  HoldStats stats;
  double total_hold = 0;
  int64_t held_count = 0;

  int64_t step = 0;
  auto account = [&](const std::vector<WarehouseTransaction>& txns) {
    for (const auto& txn : txns) {
      ++stats.txns;
      for (const auto& al : txn.actions) {
        int64_t hold = step - arrived_at[{al.view, al.update}];
        total_hold += static_cast<double>(hold);
        stats.max_hold = std::max(stats.max_hold, hold);
        ++held_count;
      }
    }
  };

  for (const Event& ev : stream) {
    ++step;
    std::vector<WarehouseTransaction> out;
    if (ev.is_rel) {
      engine.ReceiveRelSet(ev.update, ev.rel_views, &out);
    } else {
      arrived_at[{ev.view, ev.update}] = step;
      engine.ReceiveActionList(MakeAl(ev.view, ev.update), &out);
    }
    if (prompt) {
      account(out);
    } else {
      // Lazy: hold everything until the stream ends.
      for (auto& txn : out) lazy_buffer.push_back(std::move(txn));
    }
  }
  if (!prompt) account(lazy_buffer);
  if (held_count > 0) {
    stats.mean_hold = total_hold / static_cast<double>(held_count);
  }
  return stats;
}

}  // namespace
}  // namespace mvc

int main() {
  using namespace mvc;
  std::cout << "A2. Promptness ablation (Section 4.4): SPA vs the "
               "wait-for-everything strawman\n"
            << "    Hold time = events between an AL's arrival and its "
               "application; both runs\n"
            << "    produce the same complete transaction sequence.\n\n";
  const std::vector<ViewId> views = {
      *Names()->FindView("V1"), *Names()->FindView("V2"),
      *Names()->FindView("V3"), *Names()->FindView("V4")};
  bench::TablePrinter table({"updates", "algorithm", "mean_hold",
                             "max_hold", "txns"});
  for (int updates : {20, 100, 400}) {
    auto stream = MakeStream(updates, views, 97);
    for (bool prompt : {true, false}) {
      HoldStats stats = Measure(stream, views, prompt);
      table.AddRow(updates, prompt ? "SPA (prompt)" : "lazy strawman",
                   stats.mean_hold, stats.max_hold, stats.txns);
    }
  }
  table.Print();
  std::cout << "\nReading: SPA's hold time is bounded by how long a row's "
               "slowest action list takes to arrive and does not grow with "
               "the workload length; the lazy strawman's mean hold grows "
               "linearly with the number of updates — complete, but every "
               "view is stale for the whole run.\n";
  return 0;
}
