// Experiment T1 — reproduces the paper's Table 1 (Example 1).
//
// First, the *anomaly*: maintaining V1 = R|><|S and V2 = S|><|T
// independently, V1 is updated at t2 and V2 only at t3, so between t2
// and t3 the warehouse views are mutually inconsistent. We regenerate
// the table's four time steps directly from the storage/query substrate.
//
// Second, the *fix*: the same scenario through the full system under
// SPA — the merge process holds V1's action list until V2's arrives and
// applies both in one warehouse transaction, so no warehouse state ever
// shows the t2 row of Table 1.

#include <iostream>

#include "bench_util.h"
#include "common/string_util.h"
#include "query/evaluator.h"
#include "workload/paper_examples.h"

namespace mvc {
namespace {

std::string RowsOf(const Table& t) {
  std::string out;
  for (const Row& row : t.SortedRows()) {
    if (!out.empty()) out += " ";
    out += TupleToString(row.tuple);
  }
  return out.empty() ? "(empty)" : out;
}

void PrintTable1() {
  std::map<std::string, Schema> schemas = {
      {"R", Schema::AllInt64({"A", "B"})},
      {"S", Schema::AllInt64({"B", "C"})},
      {"T", Schema::AllInt64({"C", "D"})},
      {"Q", Schema::AllInt64({"D", "E"})}};
  Catalog base;
  MVC_CHECK(base.CreateTable("R", schemas["R"]).ok());
  MVC_CHECK(base.CreateTable("S", schemas["S"]).ok());
  MVC_CHECK(base.CreateTable("T", schemas["T"]).ok());
  MVC_CHECK((*base.GetTable("R"))->Insert(Tuple{1, 2}).ok());
  MVC_CHECK((*base.GetTable("T"))->Insert(Tuple{3, 4}).ok());

  auto v1 = std::move(BoundView::Bind(PaperV1(), schemas)).value();
  auto v2 = std::move(BoundView::Bind(PaperV2(), schemas)).value();

  // Materialized views maintained *independently* (the anomaly).
  Table mat_v1("V1", v1.output_schema());
  Table mat_v2("V2", v2.output_schema());

  bench::TablePrinter table({"Time", "R", "S", "T", "V1", "V2"});
  auto snapshot = [&](const std::string& time) {
    table.AddRow(time, RowsOf(**base.GetTable("R")),
                 RowsOf(**base.GetTable("S")), RowsOf(**base.GetTable("T")),
                 RowsOf(mat_v1), RowsOf(mat_v2));
  };

  snapshot("t0");

  // t1: tuple [2,3] inserted into S.
  TableDelta ds;
  ds.target = "S";
  ds.Add(Tuple{2, 3}, 1);
  // Deltas are computed against the pre-update state of the *other*
  // relations, as the view managers would.
  TableDelta dv1 = std::move(ViewEvaluator::EvaluateDelta(
                                 v1, "S", ds, CatalogProvider(&base)))
                       .value();
  TableDelta dv2 = std::move(ViewEvaluator::EvaluateDelta(
                                 v2, "S", ds, CatalogProvider(&base)))
                       .value();
  MVC_CHECK(ds.ApplyTo(*base.GetTable("S")).ok());
  snapshot("t1");

  // t2: V1's changes are applied; V2 still reflects the old state.
  MVC_CHECK(dv1.ApplyTo(&mat_v1).ok());
  snapshot("t2  <-- V1 and V2 mutually inconsistent");

  // t3: V2 catches up.
  MVC_CHECK(dv2.ApplyTo(&mat_v2).ok());
  snapshot("t3");

  table.Print();
}

}  // namespace
}  // namespace mvc

int main() {
  std::cout << "T1. Paper Table 1 (Example 1): independent maintenance "
               "creates an inconsistency window\n\n";
  mvc::PrintTable1();

  std::cout << "\nSame update through the full system under SPA:\n\n";
  mvc::SystemConfig config = mvc::Table1Scenario();
  config.latency = mvc::LatencyModel::Uniform(1000, 500);
  auto system = mvc::WarehouseSystem::Build(std::move(config));
  MVC_CHECK(system.ok());
  (*system)->Run();
  mvc::bench::TablePrinter commits(
      {"Commit", "Rows", "Views updated atomically"});
  int i = 0;
  for (const auto& c : (*system)->recorder().commits()) {
    commits.AddRow(++i, mvc::JoinToString(c.txn.rows, ","),
                   mvc::JoinToString(c.txn.views, ","));
  }
  commits.Print();
  auto checker = (*system)->MakeChecker();
  std::cout << "\nMVC completeness: "
            << checker.CheckComplete((*system)->recorder()) << "\n"
            << "The t2 inconsistency window of Table 1 cannot occur: both "
               "views move in one transaction.\n";
  return 0;
}
