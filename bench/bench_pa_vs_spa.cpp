// Experiment P5 — PA with strongly consistent managers vs SPA with
// complete managers, as intertwining grows (Section 5).
//
// Slow delta computation makes updates pile up at a busy strong manager,
// which then covers the whole backlog with a single action list — the
// intertwined batches that force PA. Complete managers emit one AL per
// update regardless, paying the full per-update cost serially inside
// each manager.

#include "bench_util.h"

namespace mvc {
namespace {

SystemConfig Scenario(TimeMicros per_al_cost, bool strong, uint64_t seed) {
  WorkloadSpec spec;
  spec.seed = seed;
  spec.num_sources = 2;
  spec.relations_per_source = 2;
  spec.num_views = 5;
  spec.max_view_width = 3;
  spec.num_transactions = 100;
  spec.mean_interarrival = 600;
  auto config = GenerateScenario(spec);
  MVC_CHECK(config.ok());
  config->latency = LatencyModel::Uniform(200, 300);
  // Small per-update cost, dominated by the fixed per-AL overhead
  // (source round trips, message/transaction setup) that batching
  // amortizes.
  config->vm_options.delta_cost = 100;
  config->vm_options.per_al_cost = per_al_cost;
  if (strong) {
    for (const auto& def : config->views) {
      config->manager_kinds[def.name] = ManagerKind::kStrong;
    }
  }
  return std::move(*config);
}

}  // namespace
}  // namespace mvc

int main() {
  using namespace mvc;
  std::cout << "P5. SPA + complete managers vs PA + strong managers as "
               "per-AL overhead (intertwining pressure) grows\n"
            << "    100 txns at 600us mean inter-arrival, 100us per-update "
               "delta cost; lag in us\n\n";
  bench::TablePrinter table({"per_al_cost", "managers", "action_lists",
                             "commits", "rows_per_commit", "mean_lag",
                             "max_lag", "verdict"});
  for (TimeMicros cost : {100, 500, 1500, 4000}) {
    for (bool strong : {false, true}) {
      bench::RunMetrics m = bench::RunScenario(Scenario(cost, strong, 47));
      double rows_per_commit =
          m.commits == 0 ? 0.0
                         : static_cast<double>(m.updates) /
                               static_cast<double>(m.commits);
      table.AddRow(cost, strong ? "strong(PA)" : "complete(SPA)",
                   m.action_lists, m.commits, rows_per_commit, m.mean_lag_us,
                   m.max_lag_us, bench::Verdict(m));
    }
  }
  table.Print();
  std::cout << "\nReading: as the fixed per-AL overhead grows, strong "
               "managers amortize it by covering the whole backlog of "
               "intertwined updates with one action list — fewer ALs, "
               "fewer but larger warehouse transactions (rows/commit "
               "grows), and an order of magnitude lower lag than complete "
               "managers, which pay the overhead for every update. The "
               "price is the weaker guarantee: strong instead of complete, "
               "exactly the Section 5 trade-off.\n";
  return 0;
}
