// Shared helpers for the experiment harnesses: scenario runners and
// aligned table printing in the style of the paper's reporting.

#pragma once

#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "system/warehouse_system.h"
#include "workload/generator.h"

namespace mvc {
namespace bench {

/// One machine-readable benchmark result. `allocations` is the number of
/// heap allocations observed during the timed region, or -1 when the
/// binary does not instrument the allocator.
struct BenchRecord {
  std::string name;
  int64_t iterations = 0;
  double ns_per_op = 0;
  int64_t allocations = -1;
};

/// Returns the output path if `--json` (or `--json=<path>`) is present
/// in argv, using `default_path` for the bare form; empty otherwise.
inline std::string JsonOutputPath(int argc, char** argv,
                                  const std::string& default_path) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return default_path;
    if (std::strncmp(argv[i], "--json=", 7) == 0) return argv[i] + 7;
  }
  return "";
}

inline void WriteBenchRecordsArray(std::ostream& out,
                                   const std::vector<BenchRecord>& records,
                                   const std::string& row_indent,
                                   const std::string& close_indent) {
  out << "[\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    out << row_indent << "{\"name\": \"" << r.name << "\", \"iterations\": "
        << r.iterations << ", \"ns_per_op\": " << std::fixed
        << std::setprecision(2) << r.ns_per_op;
    if (r.allocations >= 0) out << ", \"allocations\": " << r.allocations;
    out << "}" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << close_indent << "]\n";
}

/// Writes records as a JSON array of objects (the legacy artifact form;
/// new benchmarks should pass a schema name). Names are produced by the
/// benchmarks themselves and contain no characters needing escapes.
inline void WriteBenchJson(const std::string& path,
                           const std::vector<BenchRecord>& records) {
  std::ofstream out(path);
  MVC_CHECK(out.good()) << "cannot open " << path;
  WriteBenchRecordsArray(out, records, "  ", "");
}

/// Schema-tagged artifact form: {"schema": "<name>", "records": [...]}.
/// `mvc_stats --check-bench` validates the name against its allowlist,
/// so CI can tell a read-scaling artifact from a compaction one.
inline void WriteBenchJson(const std::string& path, const std::string& schema,
                           const std::vector<BenchRecord>& records) {
  std::ofstream out(path);
  MVC_CHECK(out.good()) << "cannot open " << path;
  out << "{\n  \"schema\": \"" << schema << "\",\n  \"records\": ";
  WriteBenchRecordsArray(out, records, "    ", "  ");
  out << "}\n";
}

/// Everything an experiment row reports about one run.
struct RunMetrics {
  // Freshness (Section 7's proposed study): propagation lag from update
  // numbering to first warehouse reflection.
  double mean_lag_us = 0;
  int64_t max_lag_us = 0;
  // Volume.
  int64_t updates = 0;
  int64_t commits = 0;
  int64_t messages = 0;
  // Virtual time from start until the system quiesced.
  int64_t makespan_us = 0;
  // Merge-process pressure (summed over merge processes; peaks are max).
  size_t peak_held_action_lists = 0;
  size_t peak_open_rows = 0;
  size_t peak_backlog = 0;
  int64_t action_lists = 0;
  int64_t actions_submitted = 0;
  // Oracle verdicts.
  bool complete = false;
  bool strong = false;
  bool convergent = false;
};

/// Builds, runs, and measures one scenario.
inline RunMetrics RunScenario(SystemConfig config) {
  auto system = WarehouseSystem::Build(std::move(config));
  MVC_CHECK(system.ok()) << system.status().ToString();
  (*system)->Run();

  RunMetrics m;
  const ConsistencyRecorder& recorder = (*system)->recorder();
  FreshnessStats freshness = recorder.ComputeFreshness();
  m.mean_lag_us = freshness.mean_lag_micros;
  m.max_lag_us = freshness.max_lag_micros;
  m.updates = static_cast<int64_t>(recorder.updates().size());
  m.commits = static_cast<int64_t>(recorder.commits().size());
  m.messages = (*system)->runtime().stats().total_messages;
  m.makespan_us = (*system)->runtime().Now();
  for (const auto& merge : (*system)->merges()) {
    m.peak_held_action_lists = std::max(
        m.peak_held_action_lists, merge->stats().peak_held_action_lists);
    m.peak_open_rows =
        std::max(m.peak_open_rows, merge->stats().peak_open_rows);
    m.peak_backlog = std::max(m.peak_backlog, merge->stats().peak_backlog);
    m.action_lists += merge->stats().action_lists_received;
    m.actions_submitted += merge->stats().actions_submitted;
  }
  ConsistencyChecker checker = (*system)->MakeChecker();
  m.complete = checker.CheckComplete(recorder).ok();
  m.strong = checker.CheckStrong(recorder).ok();
  m.convergent = checker.CheckConvergent(recorder).ok();
  return m;
}

/// Simple aligned-column table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  template <typename... Args>
  void AddRow(Args&&... args) {
    std::vector<std::string> row;
    (row.push_back(Str(std::forward<Args>(args))), ...);
    rows_.push_back(std::move(row));
  }

  void Print(std::ostream& os = std::cout) const {
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size(); ++i) {
        os << "  " << std::left << std::setw(static_cast<int>(widths[i]))
           << row[i];
      }
      os << "\n";
    };
    print_row(headers_);
    size_t total = 0;
    for (size_t w : widths) total += w + 2;
    os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
    for (const auto& row : rows_) print_row(row);
  }

 private:
  template <typename T>
  static std::string Str(const T& v) {
    std::ostringstream os;
    if constexpr (std::is_floating_point_v<T>) {
      os << std::fixed << std::setprecision(1) << v;
    } else {
      os << v;
    }
    return os.str();
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline const char* Verdict(const RunMetrics& m) {
  if (m.complete) return "complete";
  if (m.strong) return "strong";
  if (m.convergent) return "convergent";
  return "VIOLATED";
}

}  // namespace bench
}  // namespace mvc
