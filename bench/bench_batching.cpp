// Experiment P4 — batched warehouse transactions (Section 4.3).
//
// When warehouse transaction overhead is high, the merge process can
// fold several ready transactions into one BWT. Batching divides the
// commit count (and the per-transaction overhead paid) but demotes the
// guarantee from complete to strong — each commit advances the
// warehouse by several source states — and adds queueing delay.

#include "bench_util.h"

namespace mvc {
namespace {

SystemConfig Scenario(size_t batch_size, TimeMicros txn_overhead) {
  WorkloadSpec spec;
  spec.seed = 41;
  spec.num_sources = 2;
  spec.relations_per_source = 2;
  spec.num_views = 6;
  spec.max_view_width = 3;
  spec.num_transactions = 120;
  spec.mean_interarrival = 700;
  auto config = GenerateScenario(spec);
  MVC_CHECK(config.ok());
  config->latency = LatencyModel::Uniform(200, 300);
  config->vm_options.delta_cost = 300;
  config->warehouse.apply_delay = txn_overhead;
  if (batch_size > 1) {
    config->merge.policy = SubmissionPolicy::kBatched;
    config->merge.batch_size = batch_size;
    config->merge.batch_timeout = 4000;
  }
  return std::move(*config);
}

}  // namespace
}  // namespace mvc

int main() {
  using namespace mvc;
  std::cout << "P4. Batched warehouse transactions (BWT, Section 4.3)\n"
            << "    120 txns, 6 views, warehouse overhead per txn as "
               "shown; lag in us\n\n";
  bench::TablePrinter table({"wh_overhead_us", "batch", "commits",
                             "mean_lag", "max_lag", "verdict"});
  for (TimeMicros overhead : {500, 2500}) {
    for (size_t batch : {size_t{1}, size_t{2}, size_t{4}, size_t{8},
                         size_t{16}}) {
      bench::RunMetrics m = bench::RunScenario(Scenario(batch, overhead));
      table.AddRow(overhead, batch, m.commits, m.mean_lag_us, m.max_lag_us,
                   bench::Verdict(m));
    }
  }
  table.Print();
  std::cout << "\nReading: batching divides the commit count roughly by "
               "the batch size. With cheap warehouse transactions it only "
               "adds queueing delay; with expensive ones it wins on "
               "freshness too. Any batch size > 1 demotes completeness to "
               "strong consistency, exactly as Section 4.3 notes.\n";
  return 0;
}
