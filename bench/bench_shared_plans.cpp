// Self-maintenance with shared delta plans (ROADMAP item 3, src/maint/).
//
// The dashboard scenario the plan exists for: 24 views over four base
// relations, built as 6 join/selection shapes x 4 projection variants.
// Views that differ only in projection share their *entire* delta
// chains; shapes sharing join prefixes share the prefix nodes. The
// per-view architecture re-evaluates every chain step once per view per
// relevant update — and, with Strobe-style query rounds enabled, also
// round-trips to the sources for every update. The shared-plan
// SelfMaintainingVm evaluates each distinct node once per update and
// answers everything from its auxiliary store.
//
// Two claims are measured, in the same unit (delta chain steps):
//
//   1. sharing: the shared plan must run at most 0.5x the chain-step
//      evaluations of the per-view path at 24 views;
//   2. self-maintenance: the per-view path issues a query round per
//      relevant update, the shared path issues none and reports every
//      AL as a round avoided.
//
//   bench_shared_plans [--tiny] [--json[=PATH]]
//
// --tiny shrinks the update stream for CI smoke runs; --json writes
// BENCH_maint.json (schema mvc-bench-maint-v1, validated by
// `mvc_stats --check-bench`: shared_evals < per_view_evals, zero query
// rounds on the shared path, positive p99s).

#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "system/warehouse_system.h"

namespace mvc {
namespace {

/// One source hosting four relations chained on shared attributes:
/// r0(A,J0,P0), r1(J0,J1,P1), r2(J1,J2,P2), r3(J2,J3,P3).
SystemConfig DashboardConfig(int64_t num_updates, uint64_t seed) {
  SystemConfig config;
  const std::vector<std::vector<std::string>> cols = {
      {"A", "J0", "P0"}, {"J0", "J1", "P1"}, {"J1", "J2", "P2"},
      {"J2", "J3", "P3"}};
  config.sources["src0"] = {"r0", "r1", "r2", "r3"};
  for (size_t r = 0; r < cols.size(); ++r) {
    config.schemas["r" + std::to_string(r)] = Schema::AllInt64(cols[r]);
  }

  // Initial rows: join attributes from a small domain so chains connect.
  Rng rng(seed);
  for (size_t r = 0; r < cols.size(); ++r) {
    std::vector<Tuple> rows;
    for (int i = 0; i < 12; ++i) {
      rows.push_back(Tuple{rng.UniformInt(0, 7), rng.UniformInt(0, 7),
                           rng.UniformInt(0, 49)});
    }
    config.initial_data["r" + std::to_string(r)] = rows;
  }

  // 6 shapes x 4 projection variants = 24 views. Shapes: chains
  // [r0,r1], [r0,r1,r2], [r1,r2], [r1,r2,r3], [r2,r3] and a selective
  // variant of the first; projections: all columns, first, last,
  // first+last of the shape's full output.
  struct Shape {
    std::vector<std::string> rels;
    int64_t p1_less_than;  // 0 = no extra selection
  };
  const std::vector<Shape> shapes = {
      {{"r0", "r1"}, 0},       {{"r0", "r1", "r2"}, 0},
      {{"r1", "r2"}, 0},       {{"r1", "r2", "r3"}, 0},
      {{"r2", "r3"}, 0},       {{"r0", "r1"}, 25}};
  int v = 0;
  for (const Shape& shape : shapes) {
    std::vector<Predicate> preds;
    for (size_t i = 0; i + 1 < shape.rels.size(); ++i) {
      // Join column: r_k and r_{k+1} share attribute J_k.
      const std::string join_col =
          "J" + std::to_string(shape.rels[i][1] - '0');
      preds.push_back(Predicate::ColEqCol(
          ColumnRef{shape.rels[i], join_col},
          ColumnRef{shape.rels[i + 1], join_col}));
    }
    if (shape.p1_less_than != 0) {
      preds.push_back(Predicate::ColCmpConst(
          CompareOp::kLt, ColumnRef{"r1", "P1"}, shape.p1_less_than));
    }
    // Full output columns of the shape, for projection variants.
    std::vector<ColumnRef> all;
    for (const std::string& rel : shape.rels) {
      for (const std::string& col : cols[rel[1] - '0']) {
        all.push_back(ColumnRef{rel, col});
      }
    }
    for (int variant = 0; variant < 4; ++variant) {
      ViewDefinition def;
      def.name = "dash" + std::to_string(v++);
      def.relations = shape.rels;
      def.predicate = Predicate::And(preds);
      switch (variant) {
        case 0:
          break;  // all columns
        case 1:
          def.projection = {all.front()};
          break;
        case 2:
          def.projection = {all.back()};
          break;
        case 3:
          def.projection = {all.front(), all.back()};
          break;
      }
      config.views.push_back(std::move(def));
    }
  }

  // Update stream: single-update transactions round-robining over the
  // relations, values drawn from the same domains.
  TimeMicros at = 1000;
  for (int64_t i = 0; i < num_updates; ++i) {
    const std::string rel = "r" + std::to_string(i % 4);
    Injection inj;
    inj.at = at;
    inj.source = "src0";
    inj.updates = {Update::Insert(
        "src0", rel,
        Tuple{rng.UniformInt(0, 7), rng.UniformInt(0, 7),
              rng.UniformInt(0, 49)})};
    config.workload.push_back(std::move(inj));
    at += 500;
  }

  config.collect_metrics = true;
  config.collect_trace = true;
  config.latency = LatencyModel::Uniform(100, 400);
  config.seed = seed;
  // Oracle snapshots are O(views) per commit; the maintenance-
  // equivalence battery covers correctness separately.
  config.record_snapshots = false;
  return config;
}

struct MaintResult {
  int64_t updates = 0;
  int64_t commits = 0;
  int64_t chain_step_evals = 0;
  int64_t query_rounds = 0;
  int64_t query_rounds_avoided = 0;
  int64_t aux_bytes = 0;
  int64_t makespan_us = 0;
  int64_t commit_p99_us = 0;
};

MaintResult Run(SystemConfig config, bool self_maintain) {
  config.maint.self_maintain = self_maintain;
  if (!self_maintain) {
    // Strobe-style: every relevant update answered by a source round.
    config.vm_options.issue_query_round = true;
  }
  auto system = WarehouseSystem::Build(std::move(config));
  MVC_CHECK(system.ok()) << system.status().ToString();
  (*system)->Run();

  MaintResult r;
  r.updates = static_cast<int64_t>((*system)->recorder().updates().size());
  r.commits = static_cast<int64_t>((*system)->recorder().commits().size());
  r.makespan_us = (*system)->runtime().Now();
  if (self_maintain) {
    MVC_CHECK(!(*system)->maint_vms().empty());
    MVC_CHECK((*system)->view_managers().empty());
    for (const auto& vm : (*system)->maint_vms()) {
      r.chain_step_evals += vm->shared_node_evals();
      r.query_rounds_avoided += vm->query_rounds_avoided();
      r.aux_bytes += vm->aux_bytes();
    }
  } else {
    for (const auto& vm : (*system)->view_managers()) {
      // The per-view path walks the full delta chain of the view for
      // every relevant update: width chain steps each (single-update
      // transactions), the same unit the shared plan counts.
      r.chain_step_evals +=
          vm->updates_received() *
          static_cast<int64_t>(vm->view().num_relations());
      r.query_rounds += vm->query_rounds_issued();
    }
  }
  const obs::MetricsSnapshot snapshot = (*system)->MetricsSnapshot();
  const obs::HistogramSnapshot* latency =
      obs::FindHistogram(snapshot, "update.commit_latency_us");
  MVC_CHECK(latency != nullptr) << "update.commit_latency_us not recorded";
  MVC_CHECK(latency->count > 0);
  r.commit_p99_us = latency->Quantile(0.99);
  return r;
}

int Main(int argc, char** argv) {
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }
  const std::string json_path =
      bench::JsonOutputPath(argc, argv, "BENCH_maint.json");

  const int64_t num_updates = tiny ? 40 : 200;
  const uint64_t seed = 17;

  MaintResult per_view = Run(DashboardConfig(num_updates, seed), false);
  MaintResult shared = Run(DashboardConfig(num_updates, seed), true);
  MVC_CHECK(per_view.commits == shared.commits)
      << per_view.commits << " vs " << shared.commits;

  bench::TablePrinter table({"path", "updates", "chain_step_evals",
                             "query_rounds", "rounds_avoided",
                             "commit_p99_us"});
  table.AddRow("per-view", per_view.updates, per_view.chain_step_evals,
               per_view.query_rounds, int64_t{0}, per_view.commit_p99_us);
  table.AddRow("shared", shared.updates, shared.chain_step_evals,
               int64_t{0}, shared.query_rounds_avoided,
               shared.commit_p99_us);
  table.Print();

  const double eval_ratio =
      static_cast<double>(shared.chain_step_evals) /
      static_cast<double>(per_view.chain_step_evals);
  std::cout << "\n24-view dashboard, " << num_updates
            << " updates: shared plan ran " << shared.chain_step_evals
            << " chain-step evals vs " << per_view.chain_step_evals
            << " per-view (" << std::fixed << std::setprecision(3)
            << eval_ratio << "x); " << shared.query_rounds_avoided
            << " source query rounds avoided (per-view path issued "
            << per_view.query_rounds << "); auxiliary store ~"
            << shared.aux_bytes << " bytes\n";

  // The acceptance bars (ROADMAP item 3): sharing must at least halve
  // the evaluation work at 24 views, and the shared path must answer
  // every update without a single source round trip.
  MVC_CHECK(eval_ratio <= 0.5)
      << "shared plan only reached " << eval_ratio << "x of per-view";
  MVC_CHECK(per_view.query_rounds > 0)
      << "per-view baseline never issued a query round";
  MVC_CHECK(shared.query_rounds == 0);
  MVC_CHECK(shared.query_rounds_avoided > 0);
  MVC_CHECK(shared.aux_bytes > 0);

  if (!json_path.empty()) {
    std::vector<bench::BenchRecord> records;
    records.push_back(bench::BenchRecord{
        "maint/per_view/chain_steps", per_view.chain_step_evals,
        static_cast<double>(per_view.makespan_us) * 1000.0 /
            static_cast<double>(per_view.chain_step_evals),
        -1});
    records.push_back(bench::BenchRecord{
        "maint/shared/chain_steps", shared.chain_step_evals,
        static_cast<double>(shared.makespan_us) * 1000.0 /
            static_cast<double>(shared.chain_step_evals),
        -1});
    std::ofstream out(json_path);
    MVC_CHECK(out.good()) << "cannot open " << json_path;
    out << "{\n  \"schema\": \"mvc-bench-maint-v1\",\n  \"records\": ";
    bench::WriteBenchRecordsArray(out, records, "    ", "  ");
    out << "  ,\n  \"summary\": {\"views\": 24"
        << ", \"updates\": " << shared.updates
        << ", \"per_view_evals\": " << per_view.chain_step_evals
        << ", \"shared_evals\": " << shared.chain_step_evals
        << ", \"eval_ratio\": " << std::fixed << std::setprecision(4)
        << eval_ratio
        << ", \"per_view_query_rounds\": " << per_view.query_rounds
        << ", \"shared_query_rounds\": " << shared.query_rounds
        << ", \"query_rounds_avoided\": " << shared.query_rounds_avoided
        << ", \"aux_bytes\": " << shared.aux_bytes
        << ", \"per_view_commit_p99_us\": " << per_view.commit_p99_us
        << ", \"shared_commit_p99_us\": " << shared.commit_p99_us
        << "}\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace mvc

int main(int argc, char** argv) { return mvc::Main(argc, argv); }
