// Experiment P3 — concurrent view managers vs the sequential strawman
// (the Section 1.1 argument for the architecture).
//
// Delta computation dominates maintenance cost. The sequential
// integrator performs every view's computation one after another and
// waits for each warehouse commit; the Figure 1 architecture computes
// per view in parallel. Makespan (virtual time to drain the workload)
// and mean lag quantify the win as the view count and per-view delta
// cost grow.

#include "bench_util.h"

namespace mvc {
namespace {

SystemConfig Scenario(int num_views, TimeMicros delta_cost,
                      bool sequential) {
  WorkloadSpec spec;
  spec.seed = 31;
  spec.num_sources = 2;
  spec.relations_per_source = 2;
  spec.num_views = num_views;
  spec.max_view_width = 2;
  spec.num_transactions = 60;
  spec.mean_interarrival = 1500;
  auto config = GenerateScenario(spec);
  MVC_CHECK(config.ok());
  config->latency = LatencyModel::Uniform(200, 300);
  if (sequential) {
    config->sequential_baseline = true;
    config->sequential.delta_cost = delta_cost;
  } else {
    config->vm_options.delta_cost = delta_cost;
  }
  return std::move(*config);
}

}  // namespace
}  // namespace mvc

int main() {
  using namespace mvc;
  std::cout << "P3. Concurrent view managers + SPA vs sequential "
               "integrator strawman\n"
            << "    60 txns at 1.5ms mean inter-arrival; time in us\n\n";
  bench::TablePrinter table({"views", "delta_cost", "architecture",
                             "makespan", "mean_lag", "max_lag", "verdict"});
  for (int views : {2, 4, 8, 16}) {
    for (TimeMicros cost : {500, 2000}) {
      for (bool sequential : {false, true}) {
        bench::RunMetrics m =
            bench::RunScenario(Scenario(views, cost, sequential));
        table.AddRow(views, cost, sequential ? "sequential" : "concurrent",
                     m.makespan_us, m.mean_lag_us, m.max_lag_us,
                     bench::Verdict(m));
      }
    }
  }
  table.Print();
  std::cout << "\nReading: the sequential integrator serializes "
               "(#relevant views x delta cost) per update, so its lag and "
               "makespan grow with the view count while the concurrent "
               "architecture's stay nearly flat — the core scalability "
               "claim of the paper's architecture. Both remain MVC "
               "complete.\n";
  return 0;
}
