// Production read tier: query-in-place vs flatten-then-scan.
//
// The read path before this tier shipped whole snapshots: a reader
// asking "which rows of V1 fall in [lo, hi]?" received an O(1)
// SnapshotHandle, flattened the entire view into a Table at its
// boundary, and scanned the copy. The serve tier instead evaluates the
// ScanQuery on the warehouse, in place over the pinned version's
// columnar chunks, and returns only the matching rows.
//
// Two claims are measured. First, under a 10x-scaled pool of range-
// query readers, per-query p99 latency on the in-place path must beat
// flatten-then-scan by a wide margin (>=5x at the largest table; the
// flatten path pays an O(table) materialization per query, the
// columnar scan only a vectorized pass). Second, under deliberate
// saturation the warehouse sheds with explicit responses: every issued
// query is answered (result or shed notice) and nothing times out.
//
//   bench_serve [--tiny] [--json[=PATH]]
//
// --tiny shrinks every dimension for CI smoke runs; --json writes
// BENCH_serve.json (schema mvc-bench-serve-v1, validated by
// `mvc_stats --check-bench`, including the summary invariants).

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/sim_runtime.h"
#include "query/scan.h"
#include "storage/id_registry.h"
#include "warehouse/reader.h"
#include "warehouse/warehouse.h"

namespace mvc {
namespace {

using Clock = std::chrono::steady_clock;

Schema ViewSchema() { return Schema::AllInt64({"A", "B"}); }

double NsBetween(Clock::time_point start, Clock::time_point end) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
}

/// q-quantile of a latency sample (nearest-rank).
double Quantile(std::vector<double> ns, double q) {
  MVC_CHECK(!ns.empty());
  std::sort(ns.begin(), ns.end());
  const size_t rank = std::min(
      ns.size() - 1,
      static_cast<size_t>(q * static_cast<double>(ns.size())));
  return ns[rank];
}

double Mean(const std::vector<double>& ns) {
  double sum = 0;
  for (double v : ns) sum += v;
  return sum / static_cast<double>(ns.size());
}

/// The same deterministic range-query stream both paths replay: query k
/// of reader r covers the identical [lo, lo+width] window, so the two
/// runs do the same logical work and their matched counts must agree.
ScanQuery RangeQueryAt(Rng* rng, int64_t key_space, int64_t width) {
  const int64_t lo = rng->UniformInt(0, std::max<int64_t>(0, key_space - width));
  return ScanQuery::Range("A", Value(lo), Value(lo + width));
}

/// In-place path: ships each ScanQuery to the warehouse (QueryViewMsg)
/// and host-times send -> result. The warehouse scans the columnar
/// chunks of its pinned version; only matching rows travel back.
class InPlaceReader : public Process {
 public:
  InPlaceReader(std::string name, ProcessId warehouse,
                std::vector<TimeMicros> read_at, uint64_t seed,
                int64_t key_space, int64_t width)
      : Process(std::move(name)),
        warehouse_(warehouse),
        read_at_(std::move(read_at)),
        rng_(seed),
        key_space_(key_space),
        width_(width) {}

  void OnStart() override {
    for (TimeMicros at : read_at_) {
      ScheduleSelf(std::make_unique<TickMsg>(), at);
    }
  }

  void OnMessage(ProcessId, MessagePtr msg) override {
    if (msg->kind == Message::Kind::kTick) {
      auto query = std::make_unique<QueryViewMsg>();
      query->request_id = ++next_request_;
      query->view = 0;
      query->query = RangeQueryAt(&rng_, key_space_, width_);
      sent_at_[query->request_id] = Clock::now();
      Send(warehouse_, std::move(query));
      return;
    }
    MVC_CHECK(msg->kind == Message::Kind::kQueryResult);
    auto* result = static_cast<QueryResultMsg*>(msg.get());
    MVC_CHECK(result->ok()) << result->error;
    latencies_ns.push_back(
        NsBetween(sent_at_.at(result->request_id), Clock::now()));
    sent_at_.erase(result->request_id);
    matched += result->matched_count;
  }

  std::vector<double> latencies_ns;
  int64_t matched = 0;

 private:
  ProcessId warehouse_;
  std::vector<TimeMicros> read_at_;
  Rng rng_;
  int64_t key_space_;
  int64_t width_;
  int64_t next_request_ = 0;
  std::map<int64_t, Clock::time_point> sent_at_;
};

/// Flatten path: the pre-serve-tier idiom. Each query fetches the whole
/// view (ReadViewsMsg), flattens the snapshot handle into a Table at the
/// reader boundary, and runs the identical ScanQuery on the copy. The
/// timed interval is send -> scan-of-the-flattened-copy done, since the
/// materialization is part of answering the query.
class FlattenScanReader : public Process {
 public:
  FlattenScanReader(std::string name, ProcessId warehouse,
                    std::vector<TimeMicros> read_at, uint64_t seed,
                    int64_t key_space, int64_t width)
      : Process(std::move(name)),
        warehouse_(warehouse),
        read_at_(std::move(read_at)),
        rng_(seed),
        key_space_(key_space),
        width_(width) {}

  void OnStart() override {
    for (TimeMicros at : read_at_) {
      ScheduleSelf(std::make_unique<TickMsg>(), at);
    }
  }

  void OnMessage(ProcessId, MessagePtr msg) override {
    if (msg->kind == Message::Kind::kTick) {
      auto read = std::make_unique<ReadViewsMsg>();
      read->request_id = ++next_request_;
      read->views = {0};
      InFlight sent;
      sent.at = Clock::now();
      sent.query = RangeQueryAt(&rng_, key_space_, width_);
      in_flight_[read->request_id] = std::move(sent);
      Send(warehouse_, std::move(read));
      return;
    }
    MVC_CHECK(msg->kind == Message::Kind::kViewsSnapshot);
    auto* snap = static_cast<ViewsSnapshotMsg*>(msg.get());
    MVC_CHECK(snap->ok()) << snap->error;
    InFlight& sent = in_flight_.at(snap->request_id);
    std::vector<Table> tables = snap->TakeTables();
    MVC_CHECK(tables.size() == 1);
    auto result = ExecuteScanOnTable(tables[0], sent.query);
    MVC_CHECK(result.ok()) << result.status().ToString();
    matched += result->matched_count;
    latencies_ns.push_back(NsBetween(sent.at, Clock::now()));
    in_flight_.erase(snap->request_id);
  }

  std::vector<double> latencies_ns;
  int64_t matched = 0;

 private:
  struct InFlight {
    Clock::time_point at;
    ScanQuery query;
  };
  ProcessId warehouse_;
  std::vector<TimeMicros> read_at_;
  Rng rng_;
  int64_t key_space_;
  int64_t width_;
  int64_t next_request_ = 0;
  std::map<int64_t, InFlight> in_flight_;
};

/// Single-row maintenance commits spread over the read window so the
/// store churns versions while queries land (same as bench_read_scaling).
class CommitDriver : public Process {
 public:
  CommitDriver(std::string name, ProcessId warehouse, int64_t commits,
               int64_t key_space)
      : Process(std::move(name)),
        warehouse_(warehouse),
        commits_(commits),
        key_space_(key_space) {}

  void OnStart() override {
    for (int64_t i = 1; i <= commits_; ++i) {
      auto msg = std::make_unique<WarehouseTxnMsg>();
      msg->txn.txn_id = i;
      msg->txn.views = {0};
      ActionList al;
      al.view = 0;
      al.delta.target = "V1";
      al.delta.Add(Tuple{key_space_ + i, (key_space_ + i) * 7}, 1);
      msg->txn.actions = {al};
      SendAfter(warehouse_, std::move(msg), i * 20);
    }
  }

  void OnMessage(ProcessId, MessagePtr msg) override {
    MVC_CHECK(msg->kind == Message::Kind::kTxnCommitted);
  }

  ProcessId warehouse_;
  int64_t commits_;
  int64_t key_space_;
};

const IdRegistry* SharedRegistry() {
  static const IdRegistry* registry = [] {
    auto* r = new IdRegistry();
    r->InternViews({"V1"});
    return r;
  }();
  return registry;
}

struct ServeResult {
  std::vector<double> latencies_ns;
  int64_t queries = 0;
  int64_t matched = 0;
};

/// One latency run: `readers` pooled readers each issuing
/// `queries_each` range queries over an N-row view while `commits`
/// maintenance transactions land. Both paths replay the same seeds, so
/// the per-query work is identical in everything but mechanism.
ServeResult RunServe(bool in_place, int64_t rows, int64_t readers,
                     int64_t queries_each, int64_t commits, int64_t width) {
  SimRuntime runtime(11);
  WarehouseOptions options;
  WarehouseProcess warehouse("warehouse", options);
  warehouse.SetRegistry(SharedRegistry());
  MVC_CHECK(warehouse.CreateView("V1", ViewSchema()).ok());
  Table initial("V1", ViewSchema());
  for (int64_t i = 0; i < rows; ++i) {
    MVC_CHECK(initial.Insert(Tuple{i, i * 7}).ok());
  }
  MVC_CHECK(warehouse.InitializeView("V1", initial).ok());
  ProcessId wpid = runtime.Register(&warehouse);

  CommitDriver driver("driver", wpid, commits, rows);
  runtime.Register(&driver);

  std::vector<std::unique_ptr<InPlaceReader>> in_place_pool;
  std::vector<std::unique_ptr<FlattenScanReader>> flatten_pool;
  Rng rng(7);
  for (int64_t r = 0; r < readers; ++r) {
    // Same schedule seed and query seed per reader index on both paths.
    const uint64_t schedule_seed = rng.engine()();
    const uint64_t query_seed = rng.engine()();
    auto read_at =
        PoissonReadSchedule(schedule_seed, static_cast<size_t>(queries_each),
                            /*mean_interval_us=*/25.0);
    if (in_place) {
      in_place_pool.push_back(std::make_unique<InPlaceReader>(
          "reader-" + std::to_string(r), wpid, std::move(read_at), query_seed,
          rows, width));
      runtime.Register(in_place_pool.back().get());
    } else {
      flatten_pool.push_back(std::make_unique<FlattenScanReader>(
          "reader-" + std::to_string(r), wpid, std::move(read_at), query_seed,
          rows, width));
      runtime.Register(flatten_pool.back().get());
    }
  }

  runtime.Run();
  ServeResult result;
  for (const auto& reader : in_place_pool) {
    MVC_CHECK(static_cast<int64_t>(reader->latencies_ns.size()) ==
              queries_each);
    result.queries += queries_each;
    result.matched += reader->matched;
    result.latencies_ns.insert(result.latencies_ns.end(),
                               reader->latencies_ns.begin(),
                               reader->latencies_ns.end());
  }
  for (const auto& reader : flatten_pool) {
    MVC_CHECK(static_cast<int64_t>(reader->latencies_ns.size()) ==
              queries_each);
    result.queries += queries_each;
    result.matched += reader->matched;
    result.latencies_ns.insert(result.latencies_ns.end(),
                               reader->latencies_ns.begin(),
                               reader->latencies_ns.end());
  }
  return result;
}

struct SaturationResult {
  int64_t issued = 0;
  int64_t answered = 0;
  int64_t shed = 0;
  int64_t timeouts = 0;  // queries never answered at quiescence
};

/// Saturation run: a tiny in-flight budget plus per-query service time,
/// hammered by bursty readers. Admission control must shed with
/// explicit responses — every issued query is answered, none dangle.
SaturationResult RunSaturation(int64_t rows, int64_t readers,
                               int64_t arrivals, int64_t burst) {
  SimRuntime runtime(13);
  WarehouseOptions options;
  options.max_inflight_queries = 2;
  options.query_service_us = 200;
  options.query_cost_per_krow = 50;
  WarehouseProcess warehouse("warehouse", options);
  warehouse.SetRegistry(SharedRegistry());
  MVC_CHECK(warehouse.CreateView("V1", ViewSchema()).ok());
  Table initial("V1", ViewSchema());
  for (int64_t i = 0; i < rows; ++i) {
    MVC_CHECK(initial.Insert(Tuple{i, i * 7}).ok());
  }
  MVC_CHECK(warehouse.InitializeView("V1", initial).ok());
  ProcessId wpid = runtime.Register(&warehouse);

  ReaderQueryOptions query;
  query.enabled = true;
  query.zipf_theta = 0.99;
  query.burst = static_cast<size_t>(burst);
  query.column = "A";
  query.key_min = 0;
  query.key_max = rows - 1;
  query.range_width = 64;

  std::vector<std::unique_ptr<WarehouseReader>> pool;
  Rng rng(23);
  for (int64_t r = 0; r < readers; ++r) {
    pool.push_back(std::make_unique<WarehouseReader>(
        "qreader-" + std::to_string(r), std::vector<ViewId>{0},
        PoissonReadSchedule(rng.engine()(), static_cast<size_t>(arrivals),
                            /*mean_interval_us=*/100.0)));
    pool.back()->SetQueryOptions(query, rng.engine()());
    runtime.Register(pool.back().get());
    pool.back()->SetWarehouse(wpid);
  }

  runtime.Run();
  SaturationResult result;
  result.issued = readers * arrivals * burst;
  for (const auto& reader : pool) {
    result.answered +=
        static_cast<int64_t>(reader->query_observations().size());
    result.shed += reader->queries_shed();
    result.timeouts += static_cast<int64_t>(reader->in_flight_size());
  }
  return result;
}

int Main(int argc, char** argv) {
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }
  const std::string json_path =
      bench::JsonOutputPath(argc, argv, "BENCH_serve.json");

  const int64_t base_rows = tiny ? 500 : 2000;
  const int64_t readers = tiny ? 10 : 40;  // 10x the classic pool of 4
  const int64_t queries_each = tiny ? 10 : 50;
  const int64_t commits = tiny ? 10 : 50;
  const int64_t width = 64;

  std::vector<bench::BenchRecord> records;
  bench::TablePrinter table({"benchmark", "queries", "ns/op"});
  auto record = [&](const std::string& name, int64_t queries, double ns) {
    records.push_back(bench::BenchRecord{name, queries, ns, -1});
    table.AddRow(name, queries, ns);
  };

  double in_place_p99 = 0;
  double flatten_p99 = 0;
  for (const int64_t rows : {base_rows, base_rows * 10}) {
    ServeResult in_place = RunServe(/*in_place=*/true, rows, readers,
                                    queries_each, commits, width);
    ServeResult flatten = RunServe(/*in_place=*/false, rows, readers,
                                   queries_each, commits, width);
    // Same seeds, same queries: the two mechanisms must agree on what
    // the queries matched.
    MVC_CHECK(in_place.matched == flatten.matched)
        << in_place.matched << " vs " << flatten.matched;
    const std::string sz = "/rows=" + std::to_string(rows);
    record("serve/in_place" + sz + "/mean", in_place.queries,
           Mean(in_place.latencies_ns));
    record("serve/in_place" + sz + "/p99", in_place.queries,
           Quantile(in_place.latencies_ns, 0.99));
    record("serve/flatten" + sz + "/mean", flatten.queries,
           Mean(flatten.latencies_ns));
    record("serve/flatten" + sz + "/p99", flatten.queries,
           Quantile(flatten.latencies_ns, 0.99));
    if (rows == base_rows * 10) {
      in_place_p99 = Quantile(in_place.latencies_ns, 0.99);
      flatten_p99 = Quantile(flatten.latencies_ns, 0.99);
    }
  }

  SaturationResult sat =
      RunSaturation(base_rows, /*readers=*/tiny ? 4 : 8,
                    /*arrivals=*/tiny ? 5 : 20, /*burst=*/4);

  table.Print();
  const double speedup = flatten_p99 / in_place_p99;
  std::cout << "\nserve p99 at rows=" << base_rows * 10 << ": in-place "
            << in_place_p99 << " ns, flatten-then-scan " << flatten_p99
            << " ns (speedup " << std::fixed << std::setprecision(1)
            << speedup << "x)\n";
  std::cout << "saturation: issued=" << sat.issued
            << " answered=" << sat.answered << " shed=" << sat.shed
            << " timeouts=" << sat.timeouts << "\n";

  // The acceptance bar: in place must beat flatten-then-scan by 5x at
  // the largest table (2x under --tiny, where the table is small enough
  // that constant factors blur the gap on loaded CI machines).
  MVC_CHECK(speedup >= (tiny ? 2.0 : 5.0))
      << "in-place p99 speedup only " << speedup << "x";
  // Saturation sheds with explicit responses; nothing times out.
  MVC_CHECK(sat.shed > 0);
  MVC_CHECK(sat.answered == sat.issued)
      << sat.answered << " answered of " << sat.issued;
  MVC_CHECK(sat.timeouts == 0);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    MVC_CHECK(out.good()) << "cannot open " << json_path;
    out << "{\n  \"schema\": \"mvc-bench-serve-v1\",\n  \"records\": ";
    bench::WriteBenchRecordsArray(out, records, "    ", "  ");
    out << "  ,\n  \"summary\": {\"in_place_p99_ns\": " << std::fixed
        << std::setprecision(2) << in_place_p99
        << ", \"flatten_p99_ns\": " << flatten_p99
        << ", \"p99_speedup\": " << speedup << ", \"issued\": " << sat.issued
        << ", \"answered\": " << sat.answered << ", \"shed\": " << sat.shed
        << ", \"timeouts\": " << sat.timeouts << "}\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace mvc

int main(int argc, char** argv) { return mvc::Main(argc, argv); }
