// Ablation A3 — complete-N view managers (Section 6.3): "process N
// source updates at a time and maintain the view consistently after
// every N updates". Sweeps N and reports the consistency granularity /
// freshness trade-off.

#include "bench_util.h"

namespace mvc {
namespace {

SystemConfig Scenario(size_t n) {
  WorkloadSpec spec;
  spec.seed = 71;
  spec.num_sources = 2;
  spec.relations_per_source = 2;
  spec.num_views = 4;
  spec.max_view_width = 2;
  spec.num_transactions = 120;
  spec.mean_interarrival = 600;
  auto config = GenerateScenario(spec);
  MVC_CHECK(config.ok());
  config->latency = LatencyModel::Uniform(200, 400);
  config->vm_options.delta_cost = 150;
  config->vm_options.per_al_cost = 1200;  // batching pays this off
  if (n > 1) {
    for (const auto& def : config->views) {
      config->manager_kinds[def.name] = ManagerKind::kCompleteN;
    }
    config->complete_n = n;
    config->strong_options.flush_timeout = 30000;
  }
  return std::move(*config);
}

}  // namespace
}  // namespace mvc

int main() {
  using namespace mvc;
  std::cout << "A3. Complete-N managers (Section 6.3): consistency "
               "granularity vs freshness/cost\n"
            << "    120 txns, per-AL overhead 1200us; N=1 is the plain "
               "complete manager; lag in us\n\n";
  bench::TablePrinter table({"N", "action_lists", "commits",
                             "rows_per_commit", "mean_lag", "max_lag",
                             "verdict"});
  for (size_t n : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    bench::RunMetrics m = bench::RunScenario(Scenario(n));
    double rows_per_commit =
        m.commits == 0 ? 0.0
                       : static_cast<double>(m.updates) /
                             static_cast<double>(m.commits);
    table.AddRow(n, m.action_lists, m.commits, rows_per_commit,
                 m.mean_lag_us, m.max_lag_us, bench::Verdict(m));
  }
  table.Print();
  std::cout << "\nReading: N=1 walks the warehouse through every source "
               "state (complete) but pays the per-AL overhead per update; "
               "larger N amortizes it — fewer ALs and commits — while the "
               "warehouse advances N states at a time (strong, complete-N "
               "granularity). Freshness is the tension between that "
               "amortization and the wait-for-N delay: here N=2 roughly "
               "breaks even and larger N trades staleness for cost.\n";
  return 0;
}
