// Ablation A1 — maintaining aggregate views: incremental group folding
// (the AggregateViewManager) vs periodic full refresh of the same
// aggregate contents.
//
// The paper's Section 1.2 motivates per-view algorithm selection with
// aggregates; this ablation quantifies the choice. Workload: orders
// stream into a GROUP BY region SUM/COUNT view; the incremental manager
// emits old-row/new-row pairs per affected group, the periodic manager
// replaces the whole view every period. (The periodic variant refreshes
// the *SPJ core*; for a fair consistency comparison both must land in a
// warehouse view of the same shape, so the periodic row uses the core
// view directly with the aggregate computed by the reader — we report
// its AL volume on the core contents.)

#include "bench_util.h"
#include "query/aggregate.h"

namespace mvc {
namespace {

SystemConfig Scenario(bool incremental, int txns, TimeMicros rate,
                      int64_t regions) {
  SystemConfig config;
  config.sources["orders-db"] = {"orders"};
  config.schemas["orders"] =
      Schema::AllInt64({"region", "product", "amount"});

  ViewDefinition core;
  core.name = "revenue";
  core.relations = {"orders"};
  if (incremental) {
    AggregateSpec spec;
    spec.group_by = {"region"};
    spec.aggregates = {AggregateColumn{AggregateFn::kCount, "", "orders"},
                       AggregateColumn{AggregateFn::kSum, "amount", "rev"}};
    config.aggregates["revenue"] = spec;
  } else {
    config.manager_kinds["revenue"] = ManagerKind::kPeriodic;
    config.periodic_options.period = 5000;
  }
  config.views = {core};
  config.latency = LatencyModel::Uniform(200, 300);
  config.vm_options.delta_cost = 200;
  config.seed = 67;

  Rng rng(67);
  TimeMicros at = 0;
  std::vector<Tuple> live;
  for (int i = 0; i < txns; ++i) {
    at += static_cast<TimeMicros>(
        rng.Exponential(static_cast<double>(rate)));
    Injection inj;
    inj.at = at;
    inj.source = "orders-db";
    if (rng.Bernoulli(0.25) && !live.empty()) {
      size_t idx = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      inj.updates = {Update::Delete("orders-db", "orders", live[idx])};
      live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
    } else {
      Tuple t{rng.UniformInt(0, regions - 1), rng.UniformInt(0, 50),
              rng.UniformInt(1, 100)};
      live.push_back(t);
      inj.updates = {Update::Insert("orders-db", "orders", t)};
    }
    config.workload.push_back(std::move(inj));
  }
  return config;
}

/// Total delta rows shipped to the warehouse across all commits.
int64_t ShippedRows(const ConsistencyRecorder& recorder) {
  int64_t rows = 0;
  for (const auto& commit : recorder.commits()) {
    for (const auto& al : commit.txn.actions) {
      rows += static_cast<int64_t>(al.delta.rows.size());
    }
  }
  return rows;
}

}  // namespace
}  // namespace mvc

int main() {
  using namespace mvc;
  std::cout << "A1. Aggregate maintenance ablation: incremental group "
               "folding vs periodic full refresh\n"
            << "    orders stream -> GROUP BY region COUNT/SUM view; "
               "lag in us\n\n";
  bench::TablePrinter table({"txns", "regions", "maintenance", "commits",
                             "rows_shipped", "mean_lag", "verdict"});
  for (int txns : {100, 300}) {
    for (int64_t regions : {4, 64}) {
      for (bool incremental : {true, false}) {
        auto system = WarehouseSystem::Build(
            Scenario(incremental, txns, 600, regions));
        MVC_CHECK(system.ok()) << system.status().ToString();
        (*system)->Run();
        ConsistencyChecker checker = (*system)->MakeChecker();
        const ConsistencyRecorder& recorder = (*system)->recorder();
        const char* verdict =
            checker.CheckComplete(recorder).ok()   ? "complete"
            : checker.CheckStrong(recorder).ok()   ? "strong"
            : checker.CheckConvergent(recorder).ok() ? "convergent"
                                                     : "VIOLATED";
        table.AddRow(txns, regions,
                     incremental ? "incremental-agg" : "periodic-refresh",
                     recorder.commits().size(), ShippedRows(recorder),
                     recorder.ComputeFreshness().mean_lag_micros, verdict);
      }
    }
  }
  table.Print();
  std::cout << "\nReading: the incremental aggregate manager ships two "
               "delta rows per affected group per batch; the periodic "
               "refresher ships the whole view image every period, so its "
               "shipped volume scales with the view size (here, the live "
               "order count) instead of the change rate, and its freshness "
               "is bounded below by the refresh period. Both satisfy "
               "strong MVC.\n";
  return 0;
}
