// Experiment P6 — relevance pruning at the integrator (Section 3.2,
// the Blakeley-style irrelevant-update test).
//
// Views carry selective single-relation predicates; with pruning the
// integrator drops updates whose tuples cannot satisfy them, saving the
// view-manager round trip and the (empty) action list. We count
// messages, action lists, and freshness with pruning on and off.

#include "bench_util.h"

namespace mvc {
namespace {

SystemConfig Scenario(bool pruning, uint64_t seed) {
  WorkloadSpec spec;
  spec.seed = seed;
  spec.num_sources = 2;
  spec.relations_per_source = 2;
  spec.num_views = 6;
  spec.max_view_width = 2;
  spec.selection_probability = 1.0;  // every view is selective
  spec.num_transactions = 150;
  spec.mean_interarrival = 800;
  auto config = GenerateScenario(spec);
  MVC_CHECK(config.ok());
  config->latency = LatencyModel::Uniform(200, 300);
  config->vm_options.delta_cost = 400;
  config->integrator.relevance_pruning = pruning;
  return std::move(*config);
}

}  // namespace
}  // namespace mvc

int main() {
  using namespace mvc;
  std::cout << "P6. Integrator relevance pruning (Section 3.2)\n"
            << "    150 txns, 6 selective views; lag in us\n\n";
  bench::TablePrinter table({"pruning", "messages", "action_lists",
                             "commits", "mean_lag", "verdict"});
  for (bool pruning : {false, true}) {
    bench::RunMetrics m = bench::RunScenario(Scenario(pruning, 53));
    table.AddRow(pruning ? "on" : "off", m.messages, m.action_lists,
                 m.commits, m.mean_lag_us, bench::Verdict(m));
  }
  table.Print();

  std::cout << "\nREL delivery scheme ablation (Section 3.2 alternate "
               "scheme): piggybacking REL_i on a view manager saves one "
               "integrator->merge message per update:\n\n";
  bench::TablePrinter table2(
      {"rel_delivery", "messages", "mean_lag", "verdict"});
  for (bool piggyback : {false, true}) {
    SystemConfig config = Scenario(true, 53);
    config.integrator.piggyback_rel = piggyback;
    bench::RunMetrics m = bench::RunScenario(std::move(config));
    table2.AddRow(piggyback ? "piggyback" : "direct", m.messages,
                  m.mean_lag_us, bench::Verdict(m));
  }
  table2.Print();
  std::cout << "\nReading: pruning removes the irrelevant updates' "
               "messages and empty action lists end to end; the piggyback "
               "scheme trades messages for slightly later REL arrival at "
               "the merge process. Consistency is unaffected by either "
               "knob.\n";
  return 0;
}
