// Experiment M1 — microbenchmarks (google-benchmark) for the hot paths:
// bag-table mutation, hash-join evaluation, incremental delta
// propagation, VUT operations, and raw merge-engine event throughput.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "merge/merge_engine.h"
#include "query/evaluator.h"
#include "storage/id_registry.h"
#include "workload/paper_examples.h"

namespace mvc {
namespace {

/// Leaked registry with views V0..V63 — engine benches index into it.
const IdRegistry* MicroRegistry() {
  static const IdRegistry* reg = [] {
    auto* r = new IdRegistry();
    for (int i = 0; i < 64; ++i) r->InternView("V" + std::to_string(i));
    return r;
  }();
  return reg;
}

void BM_TableInsertDelete(benchmark::State& state) {
  Table table("R", Schema::AllInt64({"A", "B"}));
  Rng rng(1);
  std::vector<Tuple> tuples;
  for (int i = 0; i < 1024; ++i) {
    tuples.push_back(Tuple{rng.UniformInt(0, 1 << 20), i});
  }
  size_t i = 0;
  for (auto _ : state) {
    const Tuple& t = tuples[i++ & 1023];
    benchmark::DoNotOptimize(table.Insert(t));
    benchmark::DoNotOptimize(table.Delete(t));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_TableInsertDelete);

Catalog MakeJoinCatalog(int64_t rows, int64_t domain, uint64_t seed) {
  Catalog catalog;
  MVC_CHECK(catalog.CreateTable("R", Schema::AllInt64({"A", "B"})).ok());
  MVC_CHECK(catalog.CreateTable("S", Schema::AllInt64({"B", "C"})).ok());
  MVC_CHECK(catalog.CreateTable("T", Schema::AllInt64({"C", "D"})).ok());
  MVC_CHECK(catalog.CreateTable("Q", Schema::AllInt64({"D", "E"})).ok());
  Rng rng(seed);
  for (const char* name : {"R", "S", "T", "Q"}) {
    Table* table = *catalog.GetTable(name);
    for (int64_t i = 0; i < rows; ++i) {
      MVC_CHECK(table
                    ->Insert(Tuple{rng.UniformInt(0, domain - 1),
                                   rng.UniformInt(0, domain - 1)})
                    .ok());
    }
  }
  return catalog;
}

void BM_HashJoinEvaluate(benchmark::State& state) {
  const int64_t rows = state.range(0);
  Catalog catalog = MakeJoinCatalog(rows, rows / 4 + 1, 2);
  auto view = std::move(BoundView::Bind(
                            PaperV2WithQ(),
                            {{"R", Schema::AllInt64({"A", "B"})},
                             {"S", Schema::AllInt64({"B", "C"})},
                             {"T", Schema::AllInt64({"C", "D"})},
                             {"Q", Schema::AllInt64({"D", "E"})}}))
                  .value();
  TableProviderFn provider = CatalogProvider(&catalog);
  for (auto _ : state) {
    auto result = ViewEvaluator::Evaluate(view, provider);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * rows * 3);
}
BENCHMARK(BM_HashJoinEvaluate)->Arg(64)->Arg(512)->Arg(4096);

void BM_DeltaPropagation(benchmark::State& state) {
  const int64_t rows = state.range(0);
  Catalog catalog = MakeJoinCatalog(rows, rows / 4 + 1, 3);
  auto view = std::move(BoundView::Bind(
                            PaperV2WithQ(),
                            {{"R", Schema::AllInt64({"A", "B"})},
                             {"S", Schema::AllInt64({"B", "C"})},
                             {"T", Schema::AllInt64({"C", "D"})},
                             {"Q", Schema::AllInt64({"D", "E"})}}))
                  .value();
  TableProviderFn provider = CatalogProvider(&catalog);
  TableDelta base;
  base.target = "S";
  base.Add(Tuple{1, 1}, 1);
  for (auto _ : state) {
    auto delta = ViewEvaluator::EvaluateDelta(view, "S", base, provider);
    benchmark::DoNotOptimize(delta);
  }
}
BENCHMARK(BM_DeltaPropagation)->Arg(64)->Arg(512)->Arg(4096);

void BM_VutOperations(benchmark::State& state) {
  std::vector<ViewId> views;
  for (int i = 0; i < 16; ++i) views.push_back(static_cast<ViewId>(i));
  for (auto _ : state) {
    ViewUpdateTable vut(views, MicroRegistry());
    for (UpdateId row = 1; row <= 64; ++row) {
      vut.AllocateRow(row, {views[static_cast<size_t>(row) % 16],
                            views[static_cast<size_t>(row + 1) % 16]});
    }
    for (UpdateId row = 1; row <= 64; ++row) {
      benchmark::DoNotOptimize(vut.RowHasWhite(row));
      benchmark::DoNotOptimize(vut.NextRed(row, 0));
      vut.PurgeRow(row);
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_VutOperations);

ActionList MicroAl(ViewId view, UpdateId first, UpdateId last) {
  ActionList al;
  al.view = view;
  al.first_update = first;
  al.update = last;
  for (UpdateId i = first; i <= last; ++i) al.covered.push_back(i);
  al.delta.target = MicroRegistry()->ViewName(view);
  al.delta.Add(Tuple{last}, 1);
  return al;
}

void BM_SpaEngineThroughput(benchmark::State& state) {
  const int num_views = static_cast<int>(state.range(0));
  std::vector<ViewId> views;
  for (int i = 0; i < num_views; ++i) views.push_back(static_cast<ViewId>(i));
  for (auto _ : state) {
    SpaEngine engine(views, MicroRegistry());
    std::vector<WarehouseTransaction> out;
    for (UpdateId u = 1; u <= 256; ++u) {
      // Each update touches two adjacent views.
      std::vector<ViewId> rel{
          views[static_cast<size_t>(u) % views.size()],
          views[static_cast<size_t>(u + 1) % views.size()]};
      engine.ReceiveRelSet(u, rel, &out);
      engine.ReceiveActionList(MicroAl(rel[0], u, u), &out);
      engine.ReceiveActionList(MicroAl(rel[1], u, u), &out);
    }
    benchmark::DoNotOptimize(out);
    MVC_CHECK(engine.open_rows() == 0);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_SpaEngineThroughput)->Arg(4)->Arg(16)->Arg(64);

void BM_PaEngineBatchedThroughput(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  std::vector<ViewId> views{0, 1};
  for (auto _ : state) {
    PaEngine engine(views, MicroRegistry());
    std::vector<WarehouseTransaction> out;
    for (UpdateId u = 1; u <= 256; ++u) {
      engine.ReceiveRelSet(u, views, &out);
      if (u % batch == 0) {
        engine.ReceiveActionList(MicroAl(0, u - batch + 1, u), &out);
        engine.ReceiveActionList(MicroAl(1, u - batch + 1, u), &out);
      }
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_PaEngineBatchedThroughput)->Arg(1)->Arg(4)->Arg(16);

}  // namespace
}  // namespace mvc

BENCHMARK_MAIN();
