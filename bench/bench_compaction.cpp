// Background compaction: bounded resident bytes and flat commit latency
// under sustained ingest.
//
// Part 1 drives a long rolling-window commit stream directly against a
// VersionedStore with retain-everything semantics and runs a
// CompactionPolicy against it the way the CompactorProcess would:
// TieredCompactionPolicy must keep resident chunk bytes bounded (the
// exponentially-spaced keeper set) and commit p99 flat across the
// stream, while NoopPolicy on the same stream grows without bound.
// The stream's early phase grows the table 16x and then shrinks it, so
// cold keeper versions carry fragmented chunk chains and the squash
// path runs too.
//
// Part 2 runs the real actors — WarehouseProcess + CompactorProcess on
// a SimRuntime with a commit driver — and reports the compact.* metrics
// end to end.
//
//   bench_compaction [--tiny] [--commits=N] [--json[=PATH]]
//
// --tiny shrinks every dimension for CI smoke runs; --json writes
// BENCH_compact.json (validated by `mvc_stats --check-bench`).

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "compact/chunk_squash.h"
#include "compact/compaction_policy.h"
#include "compact/compactor_process.h"
#include "net/sim_runtime.h"
#include "obs/metrics.h"
#include "storage/id_registry.h"
#include "storage/versioned_store.h"
#include "warehouse/warehouse.h"

namespace mvc {
namespace {

using Clock = std::chrono::steady_clock;

Schema ViewSchema() { return Schema::AllInt64({"A", "B"}); }

int64_t P99(std::vector<int64_t> ns) {
  MVC_CHECK(!ns.empty());
  const size_t idx = ns.size() * 99 / 100;
  std::nth_element(ns.begin(), ns.begin() + static_cast<ptrdiff_t>(idx),
                   ns.end());
  return ns[idx];
}

struct StreamResult {
  /// p99 of the per-commit apply+seal time, per decile of the
  /// post-warmup stream (the first 10% — the grow/shrink transient — is
  /// excluded so the deciles compare steady state against steady state).
  std::vector<int64_t> decile_p99_ns;
  /// (commit, ResidentChunkBytes) samples across the whole stream.
  std::vector<std::pair<int64_t, size_t>> resident_samples;
  size_t final_resident_bytes = 0;
  size_t final_versions_live = 0;
  /// Mean chunk-chain length over cold retained versions at the end —
  /// the squash target metric.
  double mean_cold_chunks = 0;
  int64_t merges = 0;
  int64_t squashes = 0;
  int64_t versions_collapsed = 0;
  int64_t bytes_reclaimed = 0;
  /// Background work total — spent OUTSIDE the timed commit path.
  int64_t compact_ns = 0;
};

/// Applies `spec` synchronously, exactly as the warehouse actor would.
void ApplySpec(VersionedStore* store, const CompactionSpec& spec,
               size_t rows_per_chunk, StreamResult* out) {
  if (spec.kind == CompactionKind::kCollapseVersions) {
    CompactionApplyResult r = store->CollapseVersions(spec.victims);
    out->versions_collapsed += static_cast<int64_t>(r.versions_collapsed);
    out->bytes_reclaimed += static_cast<int64_t>(r.bytes_reclaimed);
    ++out->merges;
    return;
  }
  Result<SnapshotHandle> handle = store->AcquireSnapshotAt(spec.commit_id);
  if (!handle.ok()) return;
  const TableVersion* source = handle->version().Find(spec.table);
  MVC_CHECK(source != nullptr);
  TableVersion squashed = BuildSquashedTableVersion(*source, rows_per_chunk);
  handle->Release();
  Result<CompactionApplyResult> r =
      store->SwapCompactedTable(spec.commit_id, std::move(squashed));
  if (r.ok()) {
    out->bytes_reclaimed += static_cast<int64_t>(r->bytes_reclaimed);
    ++out->merges;
    ++out->squashes;
  }
}

StreamResult RunCommitStream(CompactionPolicyKind kind, int64_t commits,
                             int64_t big_window, int64_t small_window) {
  // Retain-everything store: without compaction nothing is ever GC'd —
  // the setting where tiered retention is the only thing bounding
  // memory.
  VersionedStore store(static_cast<size_t>(commits));
  MVC_CHECK(store.CreateTable("V1", ViewSchema()).ok());
  VersionedTable* table = *store.GetTable("V1");
  store.Commit(0);

  TieredCompactionOptions topts;
  topts.hot_window = 64;
  topts.rows_per_chunk = 64;
  topts.max_specs = 16;
  topts.max_victims_per_spec = 256;
  std::unique_ptr<CompactionPolicy> policy = MakeCompactionPolicy(kind, topts);
  const int64_t stats_every = 16;
  const size_t max_detail = 4096;

  StreamResult result;
  std::vector<int64_t> commit_ns;
  commit_ns.reserve(static_cast<size_t>(commits));
  // The transient grows the table well past several chunk-doubling
  // thresholds (batched inserts reach big_window within the phase), then
  // the stream shrinks to small_window: cold keeper versions are left
  // with chunk chains far beyond their ideal count, so the squash path
  // has real work.
  const int64_t grow_until = commits / 20;
  const int64_t sample_every = std::max<int64_t>(1, commits / 20);
  std::deque<int64_t> live;
  int64_t next_key = 0;

  for (int64_t i = 1; i <= commits; ++i) {
    TableDelta delta;
    delta.target = "V1";
    const int64_t inserts = i <= grow_until ? 8 : 1;
    for (int64_t b = 0; b < inserts; ++b) {
      delta.Add(Tuple{next_key, next_key * 7}, 1);
      live.push_back(next_key);
      ++next_key;
    }
    const int64_t window = i <= grow_until ? big_window : small_window;
    while (static_cast<int64_t>(live.size()) > window) {
      const int64_t k = live.front();
      live.pop_front();
      delta.Add(Tuple{k, k * 7}, -1);
    }

    const auto t0 = Clock::now();
    MVC_CHECK(table->ApplyDelta(delta).ok());
    store.Commit(i);
    commit_ns.push_back(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count());

    if (i % stats_every == 0) {
      const auto c0 = Clock::now();
      for (const CompactionSpec& spec :
           policy->Plan(store.ComputeStats(max_detail))) {
        ApplySpec(&store, spec, topts.rows_per_chunk, &result);
      }
      result.compact_ns +=
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               c0)
              .count();
    }
    if (i % sample_every == 0) {
      result.resident_samples.emplace_back(i, store.ResidentChunkBytes());
    }
  }

  // Post-warmup deciles: drop the grow/shrink transient.
  const size_t warmup = commit_ns.size() / 10;
  const size_t steady = commit_ns.size() - warmup;
  for (size_t d = 0; d < 10; ++d) {
    const size_t begin = warmup + d * steady / 10;
    const size_t end = warmup + (d + 1) * steady / 10;
    result.decile_p99_ns.push_back(P99(std::vector<int64_t>(
        commit_ns.begin() + static_cast<ptrdiff_t>(begin),
        commit_ns.begin() + static_cast<ptrdiff_t>(end))));
  }
  result.final_resident_bytes = store.ResidentChunkBytes();
  result.final_versions_live = store.versions_live();
  StoreStats stats = store.ComputeStats(max_detail);
  size_t cold = 0, cold_chunks = 0;
  for (const VersionStats& vs : stats.versions) {
    if (stats.latest_commit - vs.commit_id < topts.hot_window) continue;
    ++cold;
    for (const TableVersionStats& ts : vs.tables) cold_chunks += ts.num_chunks;
  }
  result.mean_cold_chunks =
      cold == 0 ? 0 : static_cast<double>(cold_chunks) /
                          static_cast<double>(cold);
  return result;
}

/// --- Part 2: the real actors on a SimRuntime ---

class CommitDriver : public Process {
 public:
  CommitDriver(std::string name, ProcessId warehouse, int64_t commits)
      : Process(std::move(name)), warehouse_(warehouse), commits_(commits) {}

  void OnStart() override {
    for (int64_t i = 1; i <= commits_; ++i) {
      auto msg = std::make_unique<WarehouseTxnMsg>();
      msg->txn.txn_id = i;
      msg->txn.views = {0};
      ActionList al;
      al.view = 0;
      al.delta.target = "V1";
      al.delta.Add(Tuple{i, i * 7}, 1);
      if (i > 64) al.delta.Add(Tuple{i - 64, (i - 64) * 7}, -1);
      msg->txn.actions = {al};
      SendAfter(warehouse_, std::move(msg), i * 20);
    }
  }

  void OnMessage(ProcessId, MessagePtr msg) override {
    MVC_CHECK(msg->kind == Message::Kind::kTxnCommitted);
  }

  ProcessId warehouse_;
  int64_t commits_;
};

struct SystemResult {
  int64_t merges_total = 0;
  int64_t versions_collapsed = 0;
  int64_t bytes_reclaimed = 0;
  int64_t versions_live = 0;
  size_t peak_inflight = 0;
};

SystemResult RunActorSystem(int64_t commits) {
  static const IdRegistry* registry = [] {
    auto* r = new IdRegistry();
    r->InternViews({"V1"});
    return r;
  }();

  SimRuntime runtime(13);
  obs::MetricsRegistry metrics;
  WarehouseOptions options;
  options.max_retained_versions = static_cast<size_t>(commits);
  WarehouseProcess warehouse("warehouse", options);
  warehouse.SetRegistry(registry);
  warehouse.EnableObservability(&metrics);
  MVC_CHECK(warehouse.CreateView("V1", ViewSchema()).ok());
  const ProcessId wpid = runtime.Register(&warehouse);

  CompactionConfig config;
  config.enabled = true;
  config.policy = CompactionPolicyKind::kTiered;
  config.tiered.hot_window = 16;
  config.stats_every_commits = 8;
  config.max_inflight = 2;
  CompactorProcess compactor("compactor", config);
  compactor.EnableObservability(&metrics);
  const ProcessId cpid = runtime.Register(&compactor);
  compactor.SetWarehouse(wpid);
  warehouse.SetCompactor(cpid, config.stats_every_commits,
                         config.max_version_detail);

  CommitDriver driver("driver", wpid, commits);
  runtime.Register(&driver);
  runtime.Run();

  MVC_CHECK(compactor.inflight() == 0 && compactor.pending() == 0)
      << "compactor did not drain";
  SystemResult r;
  for (const auto& m : metrics.Snapshot().counters) {
    if (m.name == "compact.merges_total") r.merges_total = m.value;
    if (m.name == "compact.versions_collapsed") {
      r.versions_collapsed = m.value;
    }
    if (m.name == "compact.bytes_reclaimed") r.bytes_reclaimed = m.value;
  }
  for (const auto& g : metrics.Snapshot().gauges) {
    if (g.name == "warehouse.versions_live") r.versions_live = g.value;
  }
  r.peak_inflight = compactor.stats().peak_inflight;
  MVC_CHECK(r.peak_inflight <= config.max_inflight)
      << "inflight bound violated: " << r.peak_inflight;
  return r;
}

int Main(int argc, char** argv) {
  bool tiny = false;
  int64_t commits = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
    if (std::strncmp(argv[i], "--commits=", 10) == 0) {
      commits = std::atoll(argv[i] + 10);
    }
  }
  if (commits == 0) commits = tiny ? 4000 : 100000;
  const std::string json_path =
      bench::JsonOutputPath(argc, argv, "BENCH_compact.json");
  // Off power-of-two boundaries so the chunk-doubling growth is not
  // sensitive to apply-order transients at exactly the threshold.
  const int64_t big_window = tiny ? 1200 : 4500;
  const int64_t small_window = 64;

  std::vector<bench::BenchRecord> records;
  bench::TablePrinter table({"benchmark", "iterations", "value"});
  auto record = [&](const std::string& name, int64_t iterations,
                    double value) {
    records.push_back(bench::BenchRecord{name, iterations, value, -1});
    table.AddRow(name, iterations, value);
  };

  StreamResult tiered = RunCommitStream(CompactionPolicyKind::kTiered,
                                        commits, big_window, small_window);
  StreamResult noop = RunCommitStream(CompactionPolicyKind::kNoop, commits,
                                      big_window, small_window);

  // The acceptance claims, as structural checks where determinism
  // allows. Resident bytes: tiered bounded, noop monotonic growth.
  const size_t noop_mid =
      noop.resident_samples[noop.resident_samples.size() / 2].second;
  MVC_CHECK(noop.final_resident_bytes > noop_mid)
      << "noop resident bytes should grow monotonically";
  // At full scale the keeper set is a vanishing fraction of history and
  // the gap is wide; in --tiny the hot window plus the youngest tiers
  // still cover a sizable share of the 4k commits, so ask for less.
  const size_t resident_factor = tiny ? 2 : 4;
  MVC_CHECK(tiered.final_resident_bytes * resident_factor <
            static_cast<size_t>(noop.final_resident_bytes))
      << "tiered resident bytes should be far below noop (tiered="
      << tiered.final_resident_bytes
      << " noop=" << noop.final_resident_bytes << ")";
  MVC_CHECK(tiered.versions_collapsed > 0 && tiered.squashes > 0);
  MVC_CHECK(noop.merges == 0);

  const double tiered_ratio =
      static_cast<double>(tiered.decile_p99_ns.back()) /
      static_cast<double>(tiered.decile_p99_ns.front());

  record("commit_p99_ns/tiered/first_decile", commits,
         static_cast<double>(tiered.decile_p99_ns.front()));
  record("commit_p99_ns/tiered/last_decile", commits,
         static_cast<double>(tiered.decile_p99_ns.back()));
  record("commit_p99_ns/noop/first_decile", commits,
         static_cast<double>(noop.decile_p99_ns.front()));
  record("commit_p99_ns/noop/last_decile", commits,
         static_cast<double>(noop.decile_p99_ns.back()));
  record("resident_bytes/tiered/final", commits,
         static_cast<double>(tiered.final_resident_bytes));
  record("resident_bytes/noop/final", commits,
         static_cast<double>(noop.final_resident_bytes));
  record("versions_live/tiered/final", commits,
         static_cast<double>(tiered.final_versions_live));
  record("versions_live/noop/final", commits,
         static_cast<double>(noop.final_versions_live));
  record("mean_cold_chunks/tiered", commits, tiered.mean_cold_chunks);
  record("mean_cold_chunks/noop", commits, noop.mean_cold_chunks);
  record("compact/merges_total", commits,
         static_cast<double>(tiered.merges));
  record("compact/squashes", commits, static_cast<double>(tiered.squashes));
  record("compact/versions_collapsed", commits,
         static_cast<double>(tiered.versions_collapsed));
  record("compact/bytes_reclaimed", commits,
         static_cast<double>(tiered.bytes_reclaimed));

  // Part 2: actors end to end.
  const int64_t sys_commits = tiny ? 300 : 3000;
  SystemResult sys = RunActorSystem(sys_commits);
  MVC_CHECK(sys.merges_total > 0 && sys.versions_collapsed > 0)
      << "actor-system compaction never ran";
  record("system/compact.merges_total", sys_commits,
         static_cast<double>(sys.merges_total));
  record("system/compact.versions_collapsed", sys_commits,
         static_cast<double>(sys.versions_collapsed));
  record("system/compact.bytes_reclaimed", sys_commits,
         static_cast<double>(sys.bytes_reclaimed));
  record("system/warehouse.versions_live", sys_commits,
         static_cast<double>(sys.versions_live));
  record("system/compact.peak_inflight", sys_commits,
         static_cast<double>(sys.peak_inflight));

  table.Print();
  std::cout << "\ncommit p99, last/first steady decile: tiered "
            << tiered_ratio << "x (target <= 1.5x), noop "
            << (static_cast<double>(noop.decile_p99_ns.back()) /
                static_cast<double>(noop.decile_p99_ns.front()))
            << "x\n";
  std::cout << "resident chunk bytes after " << commits
            << " commits: tiered " << tiered.final_resident_bytes << " ("
            << tiered.final_versions_live << " versions live), noop "
            << noop.final_resident_bytes << " (" << noop.final_versions_live
            << " versions live)\n";
  std::cout << "background compaction work: " << tiered.merges << " merges ("
            << tiered.squashes << " squashes), "
            << tiered.versions_collapsed << " versions collapsed, "
            << tiered.bytes_reclaimed << " bytes reclaimed, "
            << tiered.compact_ns / 1000000 << " ms off the commit path\n";

  if (!json_path.empty()) {
    bench::WriteBenchJson(json_path, "mvc-bench-compact-v1", records);
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace mvc

int main(int argc, char** argv) { return mvc::Main(argc, argv); }
