#include "obs/metrics.h"

#include <algorithm>
#include <tuple>

#include "common/logging.h"
#include "common/string_util.h"

namespace mvc {
namespace obs {

namespace {

void UpdateAtomicMin(std::atomic<int64_t>* slot, int64_t v) {
  int64_t cur = slot->load(std::memory_order_relaxed);
  while (v < cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void UpdateAtomicMax(std::atomic<int64_t>* slot, int64_t v) {
  int64_t cur = slot->load(std::memory_order_relaxed);
  while (v > cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// "merge.rels{process=\"merge-0\"}" -> base "merge.rels".
std::string BaseName(const std::string& name) {
  size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

/// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string PrometheusName(const std::string& base) {
  std::string out = "mvc_";
  for (char c : base) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

/// Label block including braces ("{process=\"merge-0\"}"), or "".
std::string LabelPart(const std::string& name) {
  size_t brace = name.find('{');
  return brace == std::string::npos ? "" : name.substr(brace);
}

/// Label block with one extra label appended (for histogram buckets).
std::string LabelPartWith(const std::string& name, const std::string& extra) {
  std::string labels = LabelPart(name);
  if (labels.empty()) return StrCat("{", extra, "}");
  labels.pop_back();  // drop '}'
  return StrCat(labels, ",", extra, "}");
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

void Histogram::Record(int64_t v) {
  if (v < 0) v = 0;
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  UpdateAtomicMin(&min_, v);
  UpdateAtomicMax(&max_, v);
}

int64_t Histogram::min() const {
  return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

int64_t Histogram::max() const {
  return count() == 0 ? 0 : max_.load(std::memory_order_relaxed);
}

int64_t Histogram::BucketUpperBound(size_t b) {
  if (b == 0) return 0;
  if (b >= kBuckets - 1) return INT64_MAX;
  return (int64_t{1} << b) - 1;
}

size_t Histogram::BucketIndex(int64_t v) {
  if (v <= 0) return 0;
  size_t b = 1;
  while (b < kBuckets - 1 && v > BucketUpperBound(b)) ++b;
  return b;
}

double HistogramSnapshot::Mean() const {
  return count == 0 ? 0.0
                    : static_cast<double>(sum) / static_cast<double>(count);
}

int64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the sample we want, 1-based.
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(q * static_cast<double>(count) + 0.5));
  int64_t seen = 0;
  for (const Bucket& b : buckets) {
    seen += b.count;
    if (seen >= rank) return std::min(b.le, max);
  }
  return max;
}

Counter* MetricsRegistry::RegisterCounter(const std::string& name) {
  for (auto& [n, c] : counters_) {
    if (n == name) return &c;
  }
  // Atomics are neither copyable nor movable; construct in place.
  counters_.emplace_back(std::piecewise_construct,
                         std::forward_as_tuple(name),
                         std::forward_as_tuple());
  return &counters_.back().second;
}

Gauge* MetricsRegistry::RegisterGauge(const std::string& name) {
  for (auto& [n, g] : gauges_) {
    if (n == name) return &g;
  }
  gauges_.emplace_back(std::piecewise_construct,
                       std::forward_as_tuple(name),
                       std::forward_as_tuple());
  return &gauges_.back().second;
}

Histogram* MetricsRegistry::RegisterHistogram(const std::string& name,
                                              const std::string& unit) {
  for (auto& h : histograms_) {
    if (h.name == name) return &h.histogram;
  }
  histograms_.emplace_back();
  histograms_.back().name = name;
  histograms_.back().unit = unit;
  return &histograms_.back().histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) {
    s.counters.push_back(CounterSnapshot{name, c.value()});
  }
  for (const auto& [name, g] : gauges_) {
    s.gauges.push_back(CounterSnapshot{name, g.value()});
  }
  for (const auto& h : histograms_) {
    HistogramSnapshot hs;
    hs.name = h.name;
    hs.unit = h.unit;
    hs.count = h.histogram.count();
    hs.sum = h.histogram.sum();
    hs.min = h.histogram.min();
    hs.max = h.histogram.max();
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      int64_t n = h.histogram.bucket(b);
      if (n > 0) {
        hs.buckets.push_back(
            HistogramSnapshot::Bucket{Histogram::BucketUpperBound(b), n});
      }
    }
    s.histograms.push_back(std::move(hs));
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(s.counters.begin(), s.counters.end(), by_name);
  std::sort(s.gauges.begin(), s.gauges.end(), by_name);
  std::sort(s.histograms.begin(), s.histograms.end(), by_name);
  return s;
}

const CounterSnapshot* FindCounter(const MetricsSnapshot& s,
                                   const std::string& name) {
  for (const CounterSnapshot& c : s.counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const CounterSnapshot* FindGauge(const MetricsSnapshot& s,
                                 const std::string& name) {
  for (const CounterSnapshot& g : s.gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSnapshot* FindHistogram(const MetricsSnapshot& s,
                                       const std::string& name) {
  for (const HistogramSnapshot& h : s.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

int64_t SumCounters(const MetricsSnapshot& s, const std::string& base) {
  int64_t total = 0;
  for (const CounterSnapshot& c : s.counters) {
    if (BaseName(c.name) == base) total += c.value;
  }
  return total;
}

int64_t SumHistogramCounts(const MetricsSnapshot& s, const std::string& base) {
  int64_t total = 0;
  for (const HistogramSnapshot& h : s.histograms) {
    if (BaseName(h.name) == base) total += h.count;
  }
  return total;
}

std::string MetricsToJson(const MetricsSnapshot& s) {
  std::string out = "{\n  \"schema\": \"mvc-metrics-v1\",\n";
  out += "  \"counters\": [";
  for (size_t i = 0; i < s.counters.size(); ++i) {
    out += StrCat(i == 0 ? "\n" : ",\n", "    {\"name\": \"",
                  JsonEscape(s.counters[i].name),
                  "\", \"value\": ", s.counters[i].value, "}");
  }
  out += s.counters.empty() ? "],\n" : "\n  ],\n";
  out += "  \"gauges\": [";
  for (size_t i = 0; i < s.gauges.size(); ++i) {
    out += StrCat(i == 0 ? "\n" : ",\n", "    {\"name\": \"",
                  JsonEscape(s.gauges[i].name),
                  "\", \"value\": ", s.gauges[i].value, "}");
  }
  out += s.gauges.empty() ? "],\n" : "\n  ],\n";
  out += "  \"histograms\": [";
  for (size_t i = 0; i < s.histograms.size(); ++i) {
    const HistogramSnapshot& h = s.histograms[i];
    out += StrCat(i == 0 ? "\n" : ",\n", "    {\"name\": \"",
                  JsonEscape(h.name), "\", \"unit\": \"",
                  JsonEscape(h.unit), "\", \"count\": ", h.count,
                  ", \"sum\": ", h.sum, ", \"min\": ", h.min,
                  ", \"max\": ", h.max, ", \"buckets\": [");
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      out += StrCat(b == 0 ? "" : ", ", "{\"le\": ", h.buckets[b].le,
                    ", \"count\": ", h.buckets[b].count, "}");
    }
    out += "]}";
  }
  out += s.histograms.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string MetricsToPrometheus(const MetricsSnapshot& s) {
  std::string out;
  for (const CounterSnapshot& c : s.counters) {
    out += StrCat("# TYPE ", PrometheusName(BaseName(c.name)), " counter\n",
                  PrometheusName(BaseName(c.name)), LabelPart(c.name), " ",
                  c.value, "\n");
  }
  for (const CounterSnapshot& g : s.gauges) {
    out += StrCat("# TYPE ", PrometheusName(BaseName(g.name)), " gauge\n",
                  PrometheusName(BaseName(g.name)), LabelPart(g.name), " ",
                  g.value, "\n");
  }
  for (const HistogramSnapshot& h : s.histograms) {
    const std::string pname = PrometheusName(BaseName(h.name));
    out += StrCat("# TYPE ", pname, " histogram\n");
    int64_t cumulative = 0;
    for (const HistogramSnapshot::Bucket& b : h.buckets) {
      cumulative += b.count;
      out += StrCat(pname, "_bucket",
                    LabelPartWith(h.name, StrCat("le=\"", b.le, "\"")), " ",
                    cumulative, "\n");
    }
    out += StrCat(pname, "_bucket", LabelPartWith(h.name, "le=\"+Inf\""),
                  " ", h.count, "\n");
    out += StrCat(pname, "_sum", LabelPart(h.name), " ", h.sum, "\n");
    out += StrCat(pname, "_count", LabelPart(h.name), " ", h.count, "\n");
  }
  return out;
}

}  // namespace obs
}  // namespace mvc
