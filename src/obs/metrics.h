// Lock-light metrics for a live warehouse system: monotonic counters,
// gauges, and log-bucketed histograms.
//
// Instruments are registered by name at wiring time (before the runtime
// starts) and hold stable addresses for the life of the registry, so
// processes keep raw pointers and the hot path touches exactly one
// relaxed atomic cell per event. Snapshots read the same cells without
// stopping the writers: under SimRuntime/ExploringRuntime everything is
// one thread anyway, under ThreadRuntime a snapshot is a momentary view
// of monotone counters.
//
// Names follow the Prometheus convention loosely: a dotted base name
// plus an optional {key="value"} label suffix identifying the process or
// view, e.g. merge.rels_received{process="merge-0"}.

#pragma once

#include <array>
#include <atomic>  // mvc-lint: allow-sync -- instruments are shared with ThreadRuntime worker threads; one relaxed atomic op per event
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace mvc {
namespace obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time level; last write wins.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-bucketed histogram of non-negative int64 samples (negative
/// samples clamp to 0). Bucket 0 holds the value 0; bucket b >= 1 holds
/// [2^(b-1), 2^b - 1], so upper bounds run 0, 1, 3, 7, 15, ... and 63
/// buckets cover the full range.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(int64_t v);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 when empty.
  int64_t min() const;
  int64_t max() const;
  int64_t bucket(size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Inclusive upper bound of bucket b (0, 1, 3, 7, ...).
  static int64_t BucketUpperBound(size_t b);
  static size_t BucketIndex(int64_t v);

 private:
  std::array<std::atomic<int64_t>, kBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{INT64_MIN};
};

/// --- Snapshots (plain data, safe to copy around and serialize) ---

struct CounterSnapshot {
  std::string name;
  int64_t value = 0;
};

struct HistogramSnapshot {
  struct Bucket {
    int64_t le = 0;  // inclusive upper bound
    int64_t count = 0;
  };
  std::string name;
  std::string unit;  // "us", "rows", "als", ... (informational)
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
  /// Non-empty buckets only, ascending by `le`.
  std::vector<Bucket> buckets;

  double Mean() const;
  /// Estimated q-quantile (q in [0,1]) from the bucket upper bounds.
  int64_t Quantile(double q) const;
};

struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;  // sorted by name
  std::vector<CounterSnapshot> gauges;    // sorted by name
  std::vector<HistogramSnapshot> histograms;  // sorted by name
};

/// Exact-name lookups; nullptr when absent.
const CounterSnapshot* FindCounter(const MetricsSnapshot& s,
                                   const std::string& name);
const CounterSnapshot* FindGauge(const MetricsSnapshot& s,
                                 const std::string& name);
const HistogramSnapshot* FindHistogram(const MetricsSnapshot& s,
                                       const std::string& name);
/// Sum of every counter whose base name (the part before '{') matches.
int64_t SumCounters(const MetricsSnapshot& s, const std::string& base);
/// Sum of `count` over every histogram whose base name matches.
int64_t SumHistogramCounts(const MetricsSnapshot& s, const std::string& base);

/// Owns every instrument; hands out stable pointers. Registration is
/// idempotent by name (the existing instrument is returned) and must
/// happen at wiring time — before the runtime starts delivering
/// messages — so no lock guards the containers.
class MetricsRegistry {
 public:
  Counter* RegisterCounter(const std::string& name);
  Gauge* RegisterGauge(const std::string& name);
  Histogram* RegisterHistogram(const std::string& name,
                               const std::string& unit = "");

  MetricsSnapshot Snapshot() const;

 private:
  // Deques: stable addresses across registration.
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  struct NamedHistogram {
    std::string name;
    std::string unit;
    Histogram histogram;
  };
  std::deque<NamedHistogram> histograms_;
};

/// JSON export, machine-diffable (schema "mvc-metrics-v1"); same 2-space
/// indent style as the BENCH_*.json files. tools/mvc_stats parses and
/// validates this format.
std::string MetricsToJson(const MetricsSnapshot& s);

/// Prometheus text exposition format. Dots in names become underscores,
/// histograms expand to cumulative _bucket/_sum/_count series.
std::string MetricsToPrometheus(const MetricsSnapshot& s);

}  // namespace obs
}  // namespace mvc
