// Causal tracing of update lifecycles. Every instrumented process emits
// spans keyed by the integrator's UpdateId, so a single update can be
// followed from its source post through sequencing, AL production, the
// merge paint steps, and the final warehouse commit.
//
// Timestamps are whatever the owning runtime's Now() returns: virtual
// microseconds under SimRuntime, the logical clock under
// ExploringRuntime, and steady-clock microseconds under ThreadRuntime
// (see docs/OBSERVABILITY.md for the exact semantics). Span order in the
// log is append order, which under the simulator is delivery order.

#pragma once

#include <cstdint>
#include <mutex>  // mvc-lint: allow-sync -- the span log is appended by every process; ThreadRuntime runs them on distinct threads
#include <string>
#include <vector>

#include "net/protocol.h"
#include "storage/id_registry.h"

namespace mvc {
namespace obs {

enum class SpanKind : uint8_t {
  /// Source committed a local transaction and reported it (no global
  /// number yet; update == kInvalidUpdate, aux == local sequence).
  kSourcePost = 0,
  /// Integrator assigned the global UpdateId; aux == |REL_i|.
  kSequenced = 1,
  /// View manager emitted an action list covering this update
  /// (view set, aux == the AL's label j).
  kAlProduced = 2,
  /// Merge process consumed REL_i from the integrator.
  kRelReceived = 3,
  /// Merge process consumed AL^x_j (view set, aux == label j).
  kAlReceived = 4,
  /// Merge process folded this VUT row into a submitted warehouse
  /// transaction (txn_id set).
  kSubmitted = 5,
  /// Warehouse committed the transaction containing this row (txn_id
  /// set, aux == submitting merge's ProcessId).
  kCommitted = 6,
  /// The committed transaction reflected this update in this view
  /// (one span per covered (view, update) pair).
  kViewReflected = 7,
};

const char* SpanKindToString(SpanKind kind);

struct Span {
  SpanKind kind = SpanKind::kSourcePost;
  UpdateId update = kInvalidUpdate;
  ViewId view = kInvalidView;
  int64_t txn_id = -1;
  /// Kind-specific extra (REL size, AL label, local seq, ...).
  int64_t aux = 0;
  /// Runtime Now() at emission (logical or steady micros; see header).
  int64_t at = 0;
  /// Emitting process name ("integrator", "merge-0", "vm-V1", ...).
  std::string process;
};

/// Append-only span log shared by every instrumented process.
class Tracer {
 public:
  void Record(Span span);
  size_t size() const;
  /// Copy of the log; safe at any time (the log only grows).
  std::vector<Span> Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::vector<Span> spans_;
};

/// JSON export (schema "mvc-trace-v1"); `names` resolves view ids to
/// names, pass nullptr to render raw ids.
std::string TraceToJson(const std::vector<Span>& spans,
                        const IdRegistry* names);

}  // namespace obs
}  // namespace mvc
