// Headline metrics derived from the span log after (or during) a run:
//
//   update.commit_latency_us   kSequenced -> first kCommitted, per update
//   view.staleness_us          kSequenced -> first kViewReflected, per
//                              (view, update); one labelled histogram
//                              per view plus the aggregate
//   merge.al_hold_time_us      kAlReceived -> kSubmitted of the AL's
//                              labelled row at the same merge process
//
// plus gauges counting what is still in flight at derivation time
// (update.uncommitted, view.unreflected_updates, merge.unsubmitted_als)
// so mid-run or faulty snapshots expose their backlog instead of hiding
// it.

#pragma once

#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/id_registry.h"

namespace mvc {
namespace obs {

/// Registers (idempotently) and fills the derived instruments in
/// `metrics` from `spans`. `names` labels the per-view histograms; pass
/// nullptr to label with raw ids.
void ComputeDerivedMetrics(const std::vector<Span>& spans,
                           const IdRegistry* names, MetricsRegistry* metrics);

/// Trace-completeness property (the obs_test oracle): every kSequenced
/// update with a non-empty REL (aux > 0) has exactly one kCommitted
/// span, and every empty-REL update has none. Returns the first
/// violation found.
Status CheckTraceComplete(const std::vector<Span>& spans);

}  // namespace obs
}  // namespace mvc
