// A minimal JSON reader for the observability tooling (tools/mvc_stats
// validates mvc-metrics-v1 files without external dependencies). Parses
// the full JSON grammar into a tree of JsonValue nodes; numbers are kept
// as doubles (the metrics exporter never emits values that lose
// precision below 2^53, and the validator only compares counts).

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace mvc {
namespace obs {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  static Result<JsonValue> Parse(const std::string& text);

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  /// Insertion order preserved.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  int64_t AsInt() const { return static_cast<int64_t>(number); }
};

}  // namespace obs
}  // namespace mvc
