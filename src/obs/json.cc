#include "obs/json.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace mvc {
namespace obs {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    MVC_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(
          StrCat("trailing characters at offset ", pos_));
    }
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  Status Expect(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Status::InvalidArgument(
          StrCat("expected '", std::string(1, c), "' at offset ", pos_));
    }
    ++pos_;
    return Status::OK();
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    MVC_RETURN_IF_ERROR(Expect('{'));
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (Peek('}')) {
      ++pos_;
      return v;
    }
    while (true) {
      MVC_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      MVC_RETURN_IF_ERROR(Expect(':'));
      MVC_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      v.object.emplace_back(std::move(key.str), std::move(member));
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      MVC_RETURN_IF_ERROR(Expect('}'));
      return v;
    }
  }

  Result<JsonValue> ParseArray() {
    MVC_RETURN_IF_ERROR(Expect('['));
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (Peek(']')) {
      ++pos_;
      return v;
    }
    while (true) {
      MVC_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      v.array.push_back(std::move(element));
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      MVC_RETURN_IF_ERROR(Expect(']'));
      return v;
    }
  }

  Result<JsonValue> ParseString() {
    MVC_RETURN_IF_ERROR(Expect('"'));
    JsonValue v;
    v.type = JsonValue::Type::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return Status::InvalidArgument("unterminated escape");
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            v.str += '"';
            break;
          case '\\':
            v.str += '\\';
            break;
          case '/':
            v.str += '/';
            break;
          case 'n':
            v.str += '\n';
            break;
          case 't':
            v.str += '\t';
            break;
          case 'r':
            v.str += '\r';
            break;
          case 'b':
            v.str += '\b';
            break;
          case 'f':
            v.str += '\f';
            break;
          case 'u': {
            // Decoded as a raw code unit; enough for the validator,
            // which never needs non-ASCII round trips.
            if (pos_ + 4 > text_.size()) {
              return Status::InvalidArgument("bad \\u escape");
            }
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            const long code = std::strtol(hex.c_str(), nullptr, 16);
            if (code < 0x80) {
              v.str += static_cast<char>(code);
            } else {
              v.str += '?';
            }
            break;
          }
          default:
            return Status::InvalidArgument(
                StrCat("bad escape '\\", std::string(1, esc), "'"));
        }
      } else {
        v.str += c;
      }
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unterminated string");
    }
    ++pos_;  // closing quote
    return v;
  }

  Result<JsonValue> ParseBool() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
      return v;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
      return v;
    }
    return Status::InvalidArgument(StrCat("bad literal at offset ", pos_));
  }

  Result<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") != 0) {
      return Status::InvalidArgument(StrCat("bad literal at offset ", pos_));
    }
    pos_ += 4;
    JsonValue v;
    v.type = JsonValue::Type::kNull;
    return v;
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument(StrCat("bad number at offset ", pos_));
    }
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return Parser(text).Parse();
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

}  // namespace obs
}  // namespace mvc
