#include "obs/derived.h"

#include <map>
#include <utility>

#include "common/string_util.h"

namespace mvc {
namespace obs {

namespace {

std::string ViewLabel(ViewId view, const IdRegistry* names) {
  const bool known = names != nullptr && view >= 0 &&
                     static_cast<size_t>(view) < names->num_views();
  return known ? names->ViewName(view) : StrCat("V#", view);
}

}  // namespace

void ComputeDerivedMetrics(const std::vector<Span>& spans,
                           const IdRegistry* names,
                           MetricsRegistry* metrics) {
  std::map<UpdateId, int64_t> sequenced_at;
  std::map<UpdateId, int64_t> rel_size;
  std::map<UpdateId, int64_t> first_commit;
  std::map<std::pair<ViewId, UpdateId>, int64_t> first_reflect;
  /// (merge process, row id) -> submission time.
  std::map<std::pair<std::string, UpdateId>, int64_t> submit_at;
  struct ReceivedAl {
    std::string process;
    UpdateId label;
    int64_t at;
  };
  std::vector<ReceivedAl> received_als;
  std::map<std::pair<ViewId, UpdateId>, bool> produced;

  for (const Span& s : spans) {
    switch (s.kind) {
      case SpanKind::kSequenced:
        sequenced_at.emplace(s.update, s.at);
        rel_size.emplace(s.update, s.aux);
        break;
      case SpanKind::kCommitted:
        first_commit.emplace(s.update, s.at);
        break;
      case SpanKind::kViewReflected:
        first_reflect.emplace(std::make_pair(s.view, s.update), s.at);
        break;
      case SpanKind::kSubmitted:
        submit_at.emplace(std::make_pair(s.process, s.update), s.at);
        break;
      case SpanKind::kAlReceived:
        received_als.push_back(ReceivedAl{s.process, s.update, s.at});
        break;
      case SpanKind::kAlProduced:
        produced[std::make_pair(s.view, s.update)] = true;
        break;
      case SpanKind::kSourcePost:
      case SpanKind::kRelReceived:
        break;
    }
  }

  Histogram* latency =
      metrics->RegisterHistogram("update.commit_latency_us", "us");
  Gauge* uncommitted = metrics->RegisterGauge("update.uncommitted");
  int64_t uncommitted_count = 0;
  for (const auto& [update, at] : sequenced_at) {
    auto commit = first_commit.find(update);
    if (commit != first_commit.end()) {
      latency->Record(commit->second - at);
    } else if (rel_size[update] > 0) {
      ++uncommitted_count;
    }
  }
  uncommitted->Set(uncommitted_count);

  Histogram* staleness_all =
      metrics->RegisterHistogram("view.staleness_us", "us");
  Gauge* unreflected = metrics->RegisterGauge("view.unreflected_updates");
  int64_t unreflected_count = 0;
  for (const auto& [key, at] : first_reflect) {
    auto seq = sequenced_at.find(key.second);
    if (seq == sequenced_at.end()) continue;
    const int64_t lag = at - seq->second;
    staleness_all->Record(lag);
    metrics
        ->RegisterHistogram(StrCat("view.staleness_us{view=\"",
                                   ViewLabel(key.first, names), "\"}"),
                            "us")
        ->Record(lag);
  }
  for (const auto& [key, was_produced] : produced) {
    (void)was_produced;
    if (first_reflect.count(key) == 0) ++unreflected_count;
  }
  unreflected->Set(unreflected_count);

  Histogram* hold = metrics->RegisterHistogram("merge.al_hold_time_us", "us");
  Gauge* unsubmitted = metrics->RegisterGauge("merge.unsubmitted_als");
  int64_t unsubmitted_count = 0;
  for (const ReceivedAl& al : received_als) {
    auto submit = submit_at.find(std::make_pair(al.process, al.label));
    if (submit == submit_at.end()) {
      ++unsubmitted_count;
    } else {
      hold->Record(submit->second - al.at);
    }
  }
  unsubmitted->Set(unsubmitted_count);
}

Status CheckTraceComplete(const std::vector<Span>& spans) {
  std::map<UpdateId, int64_t> commits;
  std::map<UpdateId, int64_t> rel_size;
  std::vector<UpdateId> sequenced;
  for (const Span& s : spans) {
    if (s.kind == SpanKind::kSequenced) {
      sequenced.push_back(s.update);
      rel_size[s.update] = s.aux;
    } else if (s.kind == SpanKind::kCommitted) {
      ++commits[s.update];
    }
  }
  for (const auto& [update, n] : commits) {
    if (rel_size.count(update) == 0) {
      return Status::Internal(
          StrCat("U_", update, " committed but never sequenced"));
    }
  }
  for (UpdateId update : sequenced) {
    const int64_t n = commits.count(update) > 0 ? commits[update] : 0;
    if (rel_size[update] > 0 && n != 1) {
      return Status::Internal(StrCat("U_", update, " (|REL|=",
                                     rel_size[update], ") has ", n,
                                     " warehouse commits, want 1"));
    }
    if (rel_size[update] == 0 && n != 0) {
      return Status::Internal(StrCat("U_", update,
                                     " has an empty REL but ", n,
                                     " warehouse commits"));
    }
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace mvc
