#include "obs/trace.h"

#include "common/string_util.h"

namespace mvc {
namespace obs {

const char* SpanKindToString(SpanKind kind) {
  switch (kind) {
    case SpanKind::kSourcePost:
      return "source-post";
    case SpanKind::kSequenced:
      return "sequenced";
    case SpanKind::kAlProduced:
      return "al-produced";
    case SpanKind::kRelReceived:
      return "rel-received";
    case SpanKind::kAlReceived:
      return "al-received";
    case SpanKind::kSubmitted:
      return "submitted";
    case SpanKind::kCommitted:
      return "committed";
    case SpanKind::kViewReflected:
      return "view-reflected";
  }
  return "?";
}

void Tracer::Record(Span span) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(span));
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<Span> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::string TraceToJson(const std::vector<Span>& spans,
                        const IdRegistry* names) {
  std::string out = "{\n  \"schema\": \"mvc-trace-v1\",\n  \"spans\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    out += StrCat(i == 0 ? "\n" : ",\n", "    {\"kind\": \"",
                  SpanKindToString(s.kind), "\", \"update\": ", s.update);
    if (s.view != kInvalidView) {
      const bool known =
          names != nullptr && s.view >= 0 &&
          static_cast<size_t>(s.view) < names->num_views();
      out += StrCat(", \"view\": \"",
                    known ? names->ViewName(s.view) : StrCat("V#", s.view),
                    "\"");
    }
    if (s.txn_id >= 0) out += StrCat(", \"txn\": ", s.txn_id);
    out += StrCat(", \"aux\": ", s.aux, ", \"at\": ", s.at,
                  ", \"process\": \"", s.process, "\"}");
  }
  out += spans.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace obs
}  // namespace mvc
