#include "merge/partition.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "common/logging.h"

namespace mvc {

namespace {

/// Union-find over view indexes.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

ViewGroup MakeGroup(const std::vector<const BoundView*>& views,
                    const std::vector<size_t>& members) {
  ViewGroup group;
  std::set<std::string> relations;
  for (size_t idx : members) {
    group.views.push_back(views[idx]->name());
    for (size_t r = 0; r < views[idx]->num_relations(); ++r) {
      relations.insert(views[idx]->relation(r));
    }
  }
  std::sort(group.views.begin(), group.views.end());
  group.relations.assign(relations.begin(), relations.end());
  return group;
}

}  // namespace

std::vector<ViewGroup> PartitionViews(
    const std::vector<const BoundView*>& views) {
  UnionFind uf(views.size());
  std::map<std::string, size_t> first_user;  // relation -> view index
  for (size_t i = 0; i < views.size(); ++i) {
    MVC_CHECK(views[i] != nullptr);
    for (size_t r = 0; r < views[i]->num_relations(); ++r) {
      auto [it, inserted] =
          first_user.emplace(views[i]->relation(r), i);
      if (!inserted) uf.Union(i, it->second);
    }
  }
  std::map<size_t, std::vector<size_t>> components;
  for (size_t i = 0; i < views.size(); ++i) {
    components[uf.Find(i)].push_back(i);
  }
  std::vector<ViewGroup> groups;
  for (const auto& [_, members] : components) {
    groups.push_back(MakeGroup(views, members));
  }
  std::sort(groups.begin(), groups.end(),
            [](const ViewGroup& a, const ViewGroup& b) {
              return a.views.front() < b.views.front();
            });
  return groups;
}

std::vector<ViewGroup> PartitionViewsInto(
    const std::vector<const BoundView*>& views, size_t max_groups) {
  MVC_CHECK(max_groups > 0);
  std::vector<ViewGroup> exact = PartitionViews(views);
  if (exact.size() <= max_groups) return exact;
  // Greedy balance: biggest components first, each into the currently
  // smallest bucket.
  std::sort(exact.begin(), exact.end(),
            [](const ViewGroup& a, const ViewGroup& b) {
              return a.views.size() > b.views.size();
            });
  std::vector<ViewGroup> buckets(max_groups);
  for (ViewGroup& component : exact) {
    auto smallest = std::min_element(
        buckets.begin(), buckets.end(),
        [](const ViewGroup& a, const ViewGroup& b) {
          return a.views.size() < b.views.size();
        });
    smallest->views.insert(smallest->views.end(), component.views.begin(),
                           component.views.end());
    smallest->relations.insert(smallest->relations.end(),
                               component.relations.begin(),
                               component.relations.end());
  }
  std::vector<ViewGroup> out;
  for (ViewGroup& bucket : buckets) {
    if (bucket.views.empty()) continue;
    std::sort(bucket.views.begin(), bucket.views.end());
    std::sort(bucket.relations.begin(), bucket.relations.end());
    bucket.relations.erase(
        std::unique(bucket.relations.begin(), bucket.relations.end()),
        bucket.relations.end());
    out.push_back(std::move(bucket));
  }
  std::sort(out.begin(), out.end(),
            [](const ViewGroup& a, const ViewGroup& b) {
              return a.views.front() < b.views.front();
            });
  return out;
}

std::map<std::string, size_t> ViewRouting(
    const std::vector<ViewGroup>& groups) {
  std::map<std::string, size_t> routing;
  for (size_t g = 0; g < groups.size(); ++g) {
    for (const std::string& view : groups[g].views) {
      auto [it, inserted] = routing.emplace(view, g);
      MVC_CHECK(inserted) << "view '" << view << "' appears in groups "
                          << it->second << " and " << g
                          << "; the partition must route every view to "
                             "exactly one group";
    }
  }
  return routing;
}

ShardPlan PlanIntegratorShards(
    const std::map<std::string, std::vector<std::string>>& sources,
    const std::vector<ViewGroup>& groups,
    const std::vector<std::vector<std::string>>& co_located,
    size_t max_shards) {
  MVC_CHECK(max_shards > 0);
  // Union-find over sources, indexed in name order (std::map iteration),
  // so the plan is deterministic for a given config.
  std::vector<std::string> names;
  std::map<std::string, size_t> index;
  for (const auto& [name, relations] : sources) {
    index[name] = names.size();
    names.push_back(name);
  }
  UnionFind uf(names.size());
  // Sources hosting relations of the same merge group must co-locate:
  // the group's merge process and view managers each listen on a single
  // FIFO channel per sender, and only a single sending shard keeps that
  // stream in cross-shard ticket order.
  std::map<std::string, size_t> group_of_relation;
  for (size_t g = 0; g < groups.size(); ++g) {
    for (const std::string& rel : groups[g].relations) {
      group_of_relation[rel] = g;
    }
  }
  std::map<size_t, size_t> first_host;  // group -> source index
  for (const auto& [name, relations] : sources) {
    for (const std::string& rel : relations) {
      auto grp = group_of_relation.find(rel);
      if (grp == group_of_relation.end()) continue;  // unused by any view
      auto [it, inserted] = first_host.emplace(grp->second, index[name]);
      if (!inserted) uf.Union(index[name], it->second);
    }
  }
  // All participants of one global transaction must feed the same shard
  // so the parts can assemble into one atomic unit there.
  for (const std::vector<std::string>& set : co_located) {
    for (size_t i = 1; i < set.size(); ++i) {
      auto a = index.find(set[0]);
      auto b = index.find(set[i]);
      MVC_CHECK(a != index.end() && b != index.end())
          << "co-location constraint references an unknown source";
      uf.Union(a->second, b->second);
    }
  }
  // Clusters in name order of their first member (deterministic), then
  // greedy balance by hosted-relation count into at most max_shards.
  std::map<size_t, std::vector<size_t>> clusters;
  for (size_t i = 0; i < names.size(); ++i) {
    clusters[uf.Find(i)].push_back(i);
  }
  struct Cluster {
    std::vector<size_t> members;
    size_t weight = 0;  // hosted relations
  };
  std::vector<Cluster> ordered;
  for (auto& [root, members] : clusters) {
    Cluster c;
    std::sort(members.begin(), members.end());
    for (size_t m : members) {
      c.weight += sources.at(names[m]).size();
    }
    c.members = std::move(members);
    ordered.push_back(std::move(c));
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const Cluster& a, const Cluster& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.members.front() < b.members.front();
            });
  const size_t num_shards = std::min(max_shards, ordered.size());
  ShardPlan plan;
  plan.num_shards = names.empty() ? 0 : std::max<size_t>(num_shards, 1);
  if (names.empty()) return plan;
  std::vector<size_t> load(plan.num_shards, 0);
  for (const Cluster& c : ordered) {
    const size_t shard = static_cast<size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    load[shard] += c.weight;
    for (size_t m : c.members) {
      plan.shard_of_source[names[m]] = shard;
    }
  }
  return plan;
}

}  // namespace mvc
