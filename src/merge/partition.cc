#include "merge/partition.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "common/logging.h"

namespace mvc {

namespace {

/// Union-find over view indexes.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

ViewGroup MakeGroup(const std::vector<const BoundView*>& views,
                    const std::vector<size_t>& members) {
  ViewGroup group;
  std::set<std::string> relations;
  for (size_t idx : members) {
    group.views.push_back(views[idx]->name());
    for (size_t r = 0; r < views[idx]->num_relations(); ++r) {
      relations.insert(views[idx]->relation(r));
    }
  }
  std::sort(group.views.begin(), group.views.end());
  group.relations.assign(relations.begin(), relations.end());
  return group;
}

}  // namespace

std::vector<ViewGroup> PartitionViews(
    const std::vector<const BoundView*>& views) {
  UnionFind uf(views.size());
  std::map<std::string, size_t> first_user;  // relation -> view index
  for (size_t i = 0; i < views.size(); ++i) {
    MVC_CHECK(views[i] != nullptr);
    for (size_t r = 0; r < views[i]->num_relations(); ++r) {
      auto [it, inserted] =
          first_user.emplace(views[i]->relation(r), i);
      if (!inserted) uf.Union(i, it->second);
    }
  }
  std::map<size_t, std::vector<size_t>> components;
  for (size_t i = 0; i < views.size(); ++i) {
    components[uf.Find(i)].push_back(i);
  }
  std::vector<ViewGroup> groups;
  for (const auto& [_, members] : components) {
    groups.push_back(MakeGroup(views, members));
  }
  std::sort(groups.begin(), groups.end(),
            [](const ViewGroup& a, const ViewGroup& b) {
              return a.views.front() < b.views.front();
            });
  return groups;
}

std::vector<ViewGroup> PartitionViewsInto(
    const std::vector<const BoundView*>& views, size_t max_groups) {
  MVC_CHECK(max_groups > 0);
  std::vector<ViewGroup> exact = PartitionViews(views);
  if (exact.size() <= max_groups) return exact;
  // Greedy balance: biggest components first, each into the currently
  // smallest bucket.
  std::sort(exact.begin(), exact.end(),
            [](const ViewGroup& a, const ViewGroup& b) {
              return a.views.size() > b.views.size();
            });
  std::vector<ViewGroup> buckets(max_groups);
  for (ViewGroup& component : exact) {
    auto smallest = std::min_element(
        buckets.begin(), buckets.end(),
        [](const ViewGroup& a, const ViewGroup& b) {
          return a.views.size() < b.views.size();
        });
    smallest->views.insert(smallest->views.end(), component.views.begin(),
                           component.views.end());
    smallest->relations.insert(smallest->relations.end(),
                               component.relations.begin(),
                               component.relations.end());
  }
  std::vector<ViewGroup> out;
  for (ViewGroup& bucket : buckets) {
    if (bucket.views.empty()) continue;
    std::sort(bucket.views.begin(), bucket.views.end());
    std::sort(bucket.relations.begin(), bucket.relations.end());
    bucket.relations.erase(
        std::unique(bucket.relations.begin(), bucket.relations.end()),
        bucket.relations.end());
    out.push_back(std::move(bucket));
  }
  std::sort(out.begin(), out.end(),
            [](const ViewGroup& a, const ViewGroup& b) {
              return a.views.front() < b.views.front();
            });
  return out;
}

}  // namespace mvc
