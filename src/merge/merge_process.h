// The merge process actor: wraps a MergeEngine with message handling,
// warehouse-transaction submission policies (Section 4.3), and the
// bottleneck cost model (Section 6.1 / 7).
//
// Submission policies:
//   kSequential      submit one transaction at a time; the next goes out
//                    only after the previous commit is acknowledged.
//   kHoldDependents  submit immediately unless an earlier uncommitted
//                    transaction updates an overlapping view set; held
//                    transactions are released in order as commits
//                    arrive ("only sequence dependent transactions").
//   kAnnotate        submit immediately, attaching depends_on edges for
//                    the warehouse DBMS to enforce ("submit transactions
//                    with dependency information").
//   kBatched         buffer ready transactions and submit them as one
//                    batched warehouse transaction (BWT) when the batch
//                    fills or times out; trades completeness for
//                    throughput (the warehouse state advances by more
//                    than one update per commit).

#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "storage/id_registry.h"
#include "fault/merge_log.h"
#include "merge/merge_engine.h"
#include "net/protocol.h"
#include "net/runtime.h"

namespace mvc {

namespace obs {
class MetricsRegistry;
class Tracer;
class Counter;
class Histogram;
}  // namespace obs

enum class SubmissionPolicy : uint8_t {
  kSequential = 0,
  kHoldDependents = 1,
  kAnnotate = 2,
  kBatched = 3,
};

const char* SubmissionPolicyToString(SubmissionPolicy policy);

struct MergeOptions {
  MergeAlgorithm algorithm = MergeAlgorithm::kSPA;
  SubmissionPolicy policy = SubmissionPolicy::kHoldDependents;
  /// kBatched: flush when this many transactions are buffered.
  size_t batch_size = 4;
  /// kBatched: flush a partial batch this long after its first entry
  /// (0 = only flush on size).
  TimeMicros batch_timeout = 10000;
  /// Simulated per-message processing cost at the merge process. Nonzero
  /// values serialize merge work and expose the bottleneck the paper
  /// proposes to study.
  TimeMicros process_delay = 0;
  /// Deliberately broken paint rule for the explorer self-test; kNone in
  /// every real configuration.
  PaintMutation mutation = PaintMutation::kNone;
};

/// Statistics exposed for the benchmark harness.
struct MergeStats {
  int64_t rels_received = 0;
  int64_t action_lists_received = 0;
  int64_t transactions_submitted = 0;
  int64_t transactions_committed = 0;
  /// Largest number of held (received, unapplied) action lists.
  size_t peak_held_action_lists = 0;
  /// Largest number of live VUT rows.
  size_t peak_open_rows = 0;
  /// Largest internal message backlog (only grows when process_delay>0).
  size_t peak_backlog = 0;
  /// Total action lists folded into submitted transactions.
  int64_t actions_submitted = 0;
  // --- Crash recovery (zero in fault-free runs) ---
  /// MergeLog entries replayed across all recoveries.
  int64_t log_entries_replayed = 0;
  /// Action lists dropped because their label was already processed.
  int64_t duplicate_als_dropped = 0;
  /// Commit acks for transactions no longer outstanding.
  int64_t stale_acks = 0;
  /// AL resync requests re-sent because a view manager was down.
  int64_t resync_retries = 0;
  /// Ordinary REL/AL messages dropped while a resync covered them.
  int64_t dropped_during_resync = 0;
  /// Action lists rejected because their view is not a column of this
  /// merge process (mis-routed traffic; logged, never fatal).
  int64_t misrouted_als = 0;
};

class MergeProcess : public Process {
 public:
  /// `views` are the columns of this process's VUT — exactly the views
  /// whose managers send it action lists (Figure 3 partitioning).
  /// `registry` resolves ids to names at trace/log boundaries and must
  /// outlive the process.
  MergeProcess(std::string name, std::vector<ViewId> views,
               const IdRegistry* registry, MergeOptions options = {});

  void SetWarehouse(ProcessId warehouse) { warehouse_ = warehouse; }

  /// Turns on crash recovery: every consumed input and submitted
  /// transaction is appended to `log` (the durable WAL); on recovery the
  /// log is replayed through a fresh engine and the REL stream, each
  /// view's AL stream, and the commit set are resynced with `integrator`,
  /// the view managers in `vm_of_view`, and the warehouse.
  void EnableFaultTolerance(MergeLog* log, ProcessId integrator,
                            std::map<ViewId, ProcessId> vm_of_view,
                            const FaultOptions& opts);

  /// Wires the observability hub (before the runtime starts): this
  /// process's instruments register under its name, and REL/AL intake,
  /// submissions, and the SPA promptness scan emit metrics and trace
  /// spans. Either pointer may be null to disable that half.
  void EnableObservability(obs::MetricsRegistry* metrics,
                           obs::Tracer* tracer);

  const MergeEngine& engine() const { return *engine_; }
  const MergeStats& stats() const { return stats_; }
  const MergeOptions& options() const { return options_; }
  bool resyncing() const { return !rel_synced_ || !awaiting_al_sync_.empty(); }

  void OnMessage(ProcessId from, MessagePtr msg) override;

 protected:
  void OnCrashed() override;
  void OnRecovered() override;

 private:
  void HandleNow(Message* msg);
  void PumpBacklog();
  void HandleEmitted(std::vector<WarehouseTransaction> emitted);
  void SubmitOrQueue(WarehouseTransaction txn);
  void Submit(WarehouseTransaction txn);
  void OnCommitted(int64_t txn_id);
  bool OverlapsUncommitted(const WarehouseTransaction& txn,
                           int64_t before_txn_id) const;
  void FlushBatch();
  /// Feeds one REL set / action list into the engine, logging it (when
  /// not replaying) and dropping duplicates by id/label.
  void ConsumeRel(UpdateId update_id, const std::vector<ViewId>& views,
                  std::vector<WarehouseTransaction>* emitted);
  void ConsumeAl(ActionList al, std::vector<WarehouseTransaction>* emitted);
  /// True if `view` is a column of this merge process.
  bool OwnsView(ViewId view) const;
  /// Logs a commit acknowledgement and applies it.
  void AckAndLog(int64_t txn_id);
  void SendAlResyncRequest(ViewId view);
  void ArmResyncRetry();
  /// Records post-event engine metrics (VUT occupancy, held ALs) and
  /// runs the SPA promptness scan; no-op when metrics are disabled.
  void RecordEngineObs();

  MergeOptions options_;
  /// This process's VUT columns, sorted by id; kept (not just moved into
  /// the engine) so recovery can build a fresh engine.
  std::vector<ViewId> views_;
  const IdRegistry* registry_;
  std::unique_ptr<MergeEngine> engine_;
  ProcessId warehouse_ = kInvalidProcess;
  MergeStats stats_;

  // --- Observability (all null when disabled) ---
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* m_rels_ = nullptr;
  obs::Counter* m_als_ = nullptr;
  obs::Counter* m_misrouted_ = nullptr;
  obs::Counter* m_als_held_ = nullptr;
  obs::Counter* m_als_prompt_ = nullptr;
  obs::Counter* m_prompt_violations_ = nullptr;
  obs::Counter* m_submitted_ = nullptr;
  obs::Counter* m_committed_ = nullptr;
  obs::Histogram* m_open_rows_ = nullptr;
  obs::Histogram* m_held_now_ = nullptr;
  obs::Histogram* m_wave_rows_ = nullptr;
  obs::Histogram* m_txn_actions_ = nullptr;

  // --- Fault tolerance (log_ == nullptr when disabled) ---
  MergeLog* log_ = nullptr;
  ProcessId integrator_ = kInvalidProcess;
  std::map<ViewId, ProcessId> vm_of_view_;
  TimeMicros resync_retry_micros_ = 10000;
  int32_t max_resync_retries_ = 50;
  /// Incremented per recovery; resync responses carrying an older epoch
  /// answer an interrupted recovery and are discarded.
  int64_t epoch_ = 0;
  /// True while the WAL is being replayed: the engine and submission
  /// state advance, but nothing is sent, logged, or counted.
  bool replaying_ = false;
  /// False between recovery and the integrator's REL resync response;
  /// ordinary REL sets are dropped meanwhile (the response covers them).
  bool rel_synced_ = true;
  /// Views whose AL resync response is still pending; their ordinary
  /// action lists are dropped meanwhile.
  std::set<ViewId> awaiting_al_sync_;
  /// Highest REL id / per-view AL label ever consumed — the dedup
  /// watermarks that make resync overlap harmless.
  UpdateId max_rel_id_ = kInvalidUpdate;
  std::map<ViewId, UpdateId> max_al_label_;
  int32_t resync_retries_done_ = 0;
  static constexpr int64_t kResyncRetryTag = -2;

  int64_t next_txn_id_ = 0;
  /// Submitted-but-unacknowledged transactions' view sets, by txn id.
  std::map<int64_t, std::vector<ViewId>> outstanding_;
  /// kSequential / kHoldDependents: transactions waiting to be submitted,
  /// in emission order.
  std::deque<WarehouseTransaction> wait_queue_;
  /// kBatched: ready transactions accumulating into the next BWT.
  std::vector<WarehouseTransaction> batch_;
  bool batch_timer_armed_ = false;
  static constexpr int64_t kBatchFlushTag = -1;

  /// process_delay > 0: queued inbound messages awaiting processing.
  std::deque<MessagePtr> backlog_;
  bool busy_ = false;
};

}  // namespace mvc
