// The merge process actor: wraps a MergeEngine with message handling,
// warehouse-transaction submission policies (Section 4.3), and the
// bottleneck cost model (Section 6.1 / 7).
//
// Submission policies:
//   kSequential      submit one transaction at a time; the next goes out
//                    only after the previous commit is acknowledged.
//   kHoldDependents  submit immediately unless an earlier uncommitted
//                    transaction updates an overlapping view set; held
//                    transactions are released in order as commits
//                    arrive ("only sequence dependent transactions").
//   kAnnotate        submit immediately, attaching depends_on edges for
//                    the warehouse DBMS to enforce ("submit transactions
//                    with dependency information").
//   kBatched         buffer ready transactions and submit them as one
//                    batched warehouse transaction (BWT) when the batch
//                    fills or times out; trades completeness for
//                    throughput (the warehouse state advances by more
//                    than one update per commit).

#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "merge/merge_engine.h"
#include "net/protocol.h"
#include "net/runtime.h"

namespace mvc {

enum class SubmissionPolicy : uint8_t {
  kSequential = 0,
  kHoldDependents = 1,
  kAnnotate = 2,
  kBatched = 3,
};

const char* SubmissionPolicyToString(SubmissionPolicy policy);

struct MergeOptions {
  MergeAlgorithm algorithm = MergeAlgorithm::kSPA;
  SubmissionPolicy policy = SubmissionPolicy::kHoldDependents;
  /// kBatched: flush when this many transactions are buffered.
  size_t batch_size = 4;
  /// kBatched: flush a partial batch this long after its first entry
  /// (0 = only flush on size).
  TimeMicros batch_timeout = 10000;
  /// Simulated per-message processing cost at the merge process. Nonzero
  /// values serialize merge work and expose the bottleneck the paper
  /// proposes to study.
  TimeMicros process_delay = 0;
};

/// Statistics exposed for the benchmark harness.
struct MergeStats {
  int64_t rels_received = 0;
  int64_t action_lists_received = 0;
  int64_t transactions_submitted = 0;
  int64_t transactions_committed = 0;
  /// Largest number of held (received, unapplied) action lists.
  size_t peak_held_action_lists = 0;
  /// Largest number of live VUT rows.
  size_t peak_open_rows = 0;
  /// Largest internal message backlog (only grows when process_delay>0).
  size_t peak_backlog = 0;
  /// Total action lists folded into submitted transactions.
  int64_t actions_submitted = 0;
};

class MergeProcess : public Process {
 public:
  /// `views` are the columns of this process's VUT — exactly the views
  /// whose managers send it action lists (Figure 3 partitioning).
  MergeProcess(std::string name, std::vector<std::string> views,
               MergeOptions options = {});

  void SetWarehouse(ProcessId warehouse) { warehouse_ = warehouse; }

  const MergeEngine& engine() const { return *engine_; }
  const MergeStats& stats() const { return stats_; }
  const MergeOptions& options() const { return options_; }

  void OnMessage(ProcessId from, MessagePtr msg) override;

 private:
  void HandleNow(Message* msg);
  void PumpBacklog();
  void HandleEmitted(std::vector<WarehouseTransaction> emitted);
  void SubmitOrQueue(WarehouseTransaction txn);
  void Submit(WarehouseTransaction txn);
  void OnCommitted(int64_t txn_id);
  bool OverlapsUncommitted(const WarehouseTransaction& txn,
                           int64_t before_txn_id) const;
  void FlushBatch();

  MergeOptions options_;
  std::unique_ptr<MergeEngine> engine_;
  ProcessId warehouse_ = kInvalidProcess;
  MergeStats stats_;

  int64_t next_txn_id_ = 0;
  /// Submitted-but-unacknowledged transactions' view sets, by txn id.
  std::map<int64_t, std::vector<std::string>> outstanding_;
  /// kSequential / kHoldDependents: transactions waiting to be submitted,
  /// in emission order.
  std::deque<WarehouseTransaction> wait_queue_;
  /// kBatched: ready transactions accumulating into the next BWT.
  std::vector<WarehouseTransaction> batch_;
  bool batch_timer_armed_ = false;
  static constexpr int64_t kBatchFlushTag = -1;

  /// process_delay > 0: queued inbound messages awaiting processing.
  std::deque<MessagePtr> backlog_;
  bool busy_ = false;
};

}  // namespace mvc
