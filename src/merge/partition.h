// Distributed merge partitioning (Section 6.1, Figure 3): split the view
// set into groups such that the base relations used by one group are
// disjoint from those used by any other, then give each group its own
// merge process. Within a group MVC is preserved by the group's painting
// algorithm; across groups no source transaction can span views (it
// would have to touch relations of two disjoint groups), so no
// coordination is needed.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "query/view_def.h"

namespace mvc {

/// One group of views sharing base relations.
struct ViewGroup {
  /// View names, sorted.
  std::vector<std::string> views;
  /// Base relations those views read, sorted.
  std::vector<std::string> relations;
};

/// Partitions `views` into connected components of the shares-a-relation
/// graph. Groups are returned sorted by their first view name, making
/// process layout deterministic.
std::vector<ViewGroup> PartitionViews(
    const std::vector<const BoundView*>& views);

/// Greedily merges the exact partition into at most `max_groups` groups
/// (balancing view counts) for deployments with a fixed merge-process
/// budget. With max_groups >= PartitionViews(...).size() this is the
/// exact partition.
std::vector<ViewGroup> PartitionViewsInto(
    const std::vector<const BoundView*>& views, size_t max_groups);

/// The routing map behind the merge fan-out: every view name -> index of
/// the (single) group that maintains it. Checks the partition invariant
/// along the way — a view appearing in zero or two groups is a wiring
/// bug, not a recoverable condition.
std::map<std::string, size_t> ViewRouting(
    const std::vector<ViewGroup>& groups);

/// Assignment of sources to integrator shards (sharded ingest, ROADMAP
/// item 2). Shards are numbered densely from 0.
struct ShardPlan {
  /// Source name -> shard index.
  std::map<std::string, size_t> shard_of_source;
  size_t num_shards = 0;

  size_t ShardOf(const std::string& source) const {
    auto it = shard_of_source.find(source);
    return it == shard_of_source.end() ? 0 : it->second;
  }
};

/// Plans integrator shards for `sources` (source name -> hosted
/// relations) against the merge groups: every source hosting a relation
/// of one group must land on the same shard, so each merge group's
/// entire update stream flows through exactly one shard and per-channel
/// FIFO preserves cross-shard ticket order at the group's view managers
/// and merge process. `co_located` lists extra sets of sources that must
/// share a shard (the sources of one global transaction, whose parts
/// must assemble at a single shard). The resulting clusters are greedily
/// balanced into at most `max_shards` shards (by hosted-relation count);
/// sources that constrain each other never split, so the effective shard
/// count can be lower than requested.
ShardPlan PlanIntegratorShards(
    const std::map<std::string, std::vector<std::string>>& sources,
    const std::vector<ViewGroup>& groups,
    const std::vector<std::vector<std::string>>& co_located,
    size_t max_shards);

}  // namespace mvc
