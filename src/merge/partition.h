// Distributed merge partitioning (Section 6.1, Figure 3): split the view
// set into groups such that the base relations used by one group are
// disjoint from those used by any other, then give each group its own
// merge process. Within a group MVC is preserved by the group's painting
// algorithm; across groups no source transaction can span views (it
// would have to touch relations of two disjoint groups), so no
// coordination is needed.

#pragma once

#include <string>
#include <vector>

#include "query/view_def.h"

namespace mvc {

/// One group of views sharing base relations.
struct ViewGroup {
  /// View names, sorted.
  std::vector<std::string> views;
  /// Base relations those views read, sorted.
  std::vector<std::string> relations;
};

/// Partitions `views` into connected components of the shares-a-relation
/// graph. Groups are returned sorted by their first view name, making
/// process layout deterministic.
std::vector<ViewGroup> PartitionViews(
    const std::vector<const BoundView*>& views);

/// Greedily merges the exact partition into at most `max_groups` groups
/// (balancing view counts) for deployments with a fixed merge-process
/// budget. With max_groups >= PartitionViews(...).size() this is the
/// exact partition.
std::vector<ViewGroup> PartitionViewsInto(
    const std::vector<const BoundView*>& views, size_t max_groups);

}  // namespace mvc
