// The ViewUpdateTable (VUT) of Section 4.1.
//
// A two-dimensional table: one row per source update U_i the merge
// process knows about, one column per view it coordinates. Each cell
// carries a color — white (waiting for the action list), red (received,
// held), gray (applied), black (irrelevant) — and, for the Painting
// Algorithm, a `state` field naming the later row whose action list
// subsumes this cell's actions (intertwined updates).
//
// Layout: views are interned ViewIds, mapped once to dense column
// indices; rows live in a contiguous ring (std::deque) keyed off the
// lowest live UpdateId, so the per-update paint/scan operations are
// flat array sweeps with no hashing, string compares, or node
// allocation. Cell storage is recycled through a free pool, making the
// steady state allocation-free.
//
// Rendering matches the paper's example tables so golden tests can
// compare traces character for character; the IdRegistry supplies the
// view names at that boundary.

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/logging.h"
#include "net/protocol.h"
#include "storage/id_registry.h"

namespace mvc {

enum class CellColor : uint8_t { kWhite, kRed, kGray, kBlack };

/// 'w', 'r', 'g', or 'b'.
char CellColorChar(CellColor color);

class ViewUpdateTable {
 public:
  /// Columns, in display order (the views this merge process manages).
  /// `names` resolves ids back to names for rendering; it must outlive
  /// the table.
  ViewUpdateTable(std::vector<ViewId> views, const IdRegistry* names);

  const std::vector<ViewId>& views() const { return views_; }

  /// Column index of `view`; the view must be a column of this table.
  size_t ViewIndex(ViewId view) const {
    std::optional<size_t> idx = FindViewIndex(view);
    MVC_CHECK(idx.has_value()) << "unknown view V#" << view;
    return *idx;
  }

  /// Column index of `view`, or nullopt if this table has no such
  /// column (non-fatal variant for rejecting mis-routed traffic).
  std::optional<size_t> FindViewIndex(ViewId view) const {
    if (view >= 0 && static_cast<size_t>(view) < col_of_view_.size() &&
        col_of_view_[static_cast<size_t>(view)] >= 0) {
      return static_cast<size_t>(col_of_view_[static_cast<size_t>(view)]);
    }
    return std::nullopt;
  }

  /// --- Rows ---

  bool HasRow(UpdateId i) const {
    return i >= base_ && i < base_ + static_cast<UpdateId>(window_.size()) &&
           window_[static_cast<size_t>(i - base_)].live;
  }

  /// Creates row i: white for views in `rel` (which must all be known
  /// columns), black for the rest; all states 0.
  void AllocateRow(UpdateId i, const std::vector<ViewId>& rel);

  /// Removes row i entirely.
  void PurgeRow(UpdateId i);

  /// Ascending ids of live rows.
  std::vector<UpdateId> RowIds() const;

  size_t num_rows() const { return live_rows_; }

  /// Largest row id ever allocated (0 if none) — used to distinguish "not
  /// yet announced" from "already purged".
  UpdateId max_allocated() const { return max_allocated_; }

  /// --- Cells ---

  CellColor color(UpdateId i, size_t view_idx) const {
    return Cell(i, view_idx).color;
  }
  UpdateId state(UpdateId i, size_t view_idx) const {
    return Cell(i, view_idx).state;
  }
  void SetColor(UpdateId i, size_t view_idx, CellColor color) {
    MutableCell(i, view_idx)->color = color;
  }
  void SetState(UpdateId i, size_t view_idx, UpdateId state) {
    MutableCell(i, view_idx)->state = state;
  }

  /// --- Queries the painting algorithms use ---

  /// True if any cell in row i is white.
  bool RowHasWhite(UpdateId i) const;

  /// True if every cell in row i is black or gray (purge condition).
  bool RowAllBlackOrGray(UpdateId i) const;

  /// Row number of the first red cell strictly below [i, view_idx] in the
  /// same column; 0 if none (the paper's nextRed(i, x)).
  UpdateId NextRed(UpdateId i, size_t view_idx) const;

  /// True if some row i' < i has a red cell in the same column.
  bool HasEarlierRed(UpdateId i, size_t view_idx) const;

  /// Ascending ids of rows i' < i with a red cell in column view_idx.
  std::vector<UpdateId> EarlierRedRows(UpdateId i, size_t view_idx) const;

  /// Ascending ids of rows i' <= i whose cell in column view_idx is
  /// white (Painting Algorithm's ProcessAction sweep).
  std::vector<UpdateId> WhiteRowsUpTo(UpdateId i, size_t view_idx) const;

  /// Views whose cell in row i has the given color, in column order.
  std::vector<ViewId> RowViewsWithColor(UpdateId i, CellColor color) const;

  /// --- Rendering ---

  /// ASCII table in the paper's style. With show_state, cells render as
  /// "(c,s)" pairs as in Example 5; otherwise as single color letters as
  /// in Example 3. View names come from the IdRegistry.
  std::string ToString(bool show_state = false) const;

 private:
  struct CellData {
    CellColor color = CellColor::kBlack;
    UpdateId state = 0;
  };
  struct RowSlot {
    bool live = false;
    std::vector<CellData> cells;
  };

  const RowSlot& Slot(UpdateId i) const {
    MVC_CHECK(HasRow(i)) << "no VUT row " << i;
    return window_[static_cast<size_t>(i - base_)];
  }
  RowSlot* MutableSlot(UpdateId i) {
    MVC_CHECK(HasRow(i)) << "no VUT row " << i;
    return &window_[static_cast<size_t>(i - base_)];
  }
  const CellData& Cell(UpdateId i, size_t view_idx) const {
    MVC_CHECK(view_idx < views_.size());
    return Slot(i).cells[view_idx];
  }
  CellData* MutableCell(UpdateId i, size_t view_idx) {
    MVC_CHECK(view_idx < views_.size());
    return &MutableSlot(i)->cells[view_idx];
  }

  /// Drops dead slots at both ends of the window so base_ tracks the
  /// lowest live row.
  void ShrinkWindow();

  std::vector<ViewId> views_;
  /// Global ViewId -> column index; -1 for views not in this table.
  std::vector<int32_t> col_of_view_;
  const IdRegistry* names_;

  /// window_[k] is row base_ + k. Slots between live rows are dead
  /// placeholders so ids map to offsets with plain arithmetic.
  std::deque<RowSlot> window_;
  UpdateId base_ = 0;
  size_t live_rows_ = 0;
  UpdateId max_allocated_ = 0;
  /// Recycled cell vectors from purged rows (steady state never mallocs).
  std::vector<std::vector<CellData>> free_cells_;
};

}  // namespace mvc
