// The ViewUpdateTable (VUT) of Section 4.1.
//
// A two-dimensional table: one row per source update U_i the merge
// process knows about, one column per view it coordinates. Each cell
// carries a color — white (waiting for the action list), red (received,
// held), gray (applied), black (irrelevant) — and, for the Painting
// Algorithm, a `state` field naming the later row whose action list
// subsumes this cell's actions (intertwined updates).
//
// Rendering matches the paper's example tables so golden tests can
// compare traces character for character.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/logging.h"
#include "net/protocol.h"

namespace mvc {

enum class CellColor : uint8_t { kWhite, kRed, kGray, kBlack };

/// 'w', 'r', 'g', or 'b'.
char CellColorChar(CellColor color);

class ViewUpdateTable {
 public:
  /// Columns, in display order (the views this merge process manages).
  explicit ViewUpdateTable(std::vector<std::string> views);

  const std::vector<std::string>& views() const { return views_; }

  /// Column index of `view`; the view must be known.
  size_t ViewIndex(const std::string& view) const;

  /// --- Rows ---

  bool HasRow(UpdateId i) const { return rows_.count(i) > 0; }

  /// Creates row i: white for views in `rel` (which must all be known
  /// columns), black for the rest; all states 0.
  void AllocateRow(UpdateId i, const std::vector<std::string>& rel);

  /// Removes row i entirely.
  void PurgeRow(UpdateId i);

  /// Ascending ids of live rows.
  std::vector<UpdateId> RowIds() const;

  size_t num_rows() const { return rows_.size(); }

  /// Largest row id ever allocated (0 if none) — used to distinguish "not
  /// yet announced" from "already purged".
  UpdateId max_allocated() const { return max_allocated_; }

  /// --- Cells ---

  CellColor color(UpdateId i, size_t view_idx) const {
    return Cell(i, view_idx).color;
  }
  UpdateId state(UpdateId i, size_t view_idx) const {
    return Cell(i, view_idx).state;
  }
  void SetColor(UpdateId i, size_t view_idx, CellColor color) {
    MutableCell(i, view_idx)->color = color;
  }
  void SetState(UpdateId i, size_t view_idx, UpdateId state) {
    MutableCell(i, view_idx)->state = state;
  }

  /// --- Queries the painting algorithms use ---

  /// True if any cell in row i is white.
  bool RowHasWhite(UpdateId i) const;

  /// True if every cell in row i is black or gray (purge condition).
  bool RowAllBlackOrGray(UpdateId i) const;

  /// Row number of the first red cell strictly below [i, view_idx] in the
  /// same column; 0 if none (the paper's nextRed(i, x)).
  UpdateId NextRed(UpdateId i, size_t view_idx) const;

  /// True if some row i' < i has a red cell in the same column.
  bool HasEarlierRed(UpdateId i, size_t view_idx) const;

  /// Ascending ids of rows i' < i with a red cell in column view_idx.
  std::vector<UpdateId> EarlierRedRows(UpdateId i, size_t view_idx) const;

  /// Ascending ids of rows i' <= i whose cell in column view_idx is
  /// white (Painting Algorithm's ProcessAction sweep).
  std::vector<UpdateId> WhiteRowsUpTo(UpdateId i, size_t view_idx) const;

  /// Views whose cell in row i has the given color, in column order.
  std::vector<std::string> RowViewsWithColor(UpdateId i,
                                             CellColor color) const;

  /// --- Rendering ---

  /// ASCII table in the paper's style. With show_state, cells render as
  /// "(c,s)" pairs as in Example 5; otherwise as single color letters as
  /// in Example 3.
  std::string ToString(bool show_state = false) const;

 private:
  struct CellData {
    CellColor color = CellColor::kBlack;
    UpdateId state = 0;
  };

  const CellData& Cell(UpdateId i, size_t view_idx) const {
    auto it = rows_.find(i);
    MVC_CHECK(it != rows_.end()) << "no VUT row " << i;
    MVC_CHECK(view_idx < views_.size());
    return it->second[view_idx];
  }
  CellData* MutableCell(UpdateId i, size_t view_idx) {
    auto it = rows_.find(i);
    MVC_CHECK(it != rows_.end()) << "no VUT row " << i;
    MVC_CHECK(view_idx < views_.size());
    return &it->second[view_idx];
  }

  std::vector<std::string> views_;
  std::map<std::string, size_t> view_index_;
  std::map<UpdateId, std::vector<CellData>> rows_;
  UpdateId max_allocated_ = 0;
};

}  // namespace mvc
