#include "merge/vut.h"

#include <sstream>

#include "common/string_util.h"

namespace mvc {

char CellColorChar(CellColor color) {
  switch (color) {
    case CellColor::kWhite:
      return 'w';
    case CellColor::kRed:
      return 'r';
    case CellColor::kGray:
      return 'g';
    case CellColor::kBlack:
      return 'b';
  }
  return '?';
}

ViewUpdateTable::ViewUpdateTable(std::vector<std::string> views)
    : views_(std::move(views)) {
  for (size_t i = 0; i < views_.size(); ++i) view_index_[views_[i]] = i;
  MVC_CHECK_EQ(view_index_.size(), views_.size());
}

size_t ViewUpdateTable::ViewIndex(const std::string& view) const {
  auto it = view_index_.find(view);
  MVC_CHECK(it != view_index_.end()) << "unknown view " << view;
  return it->second;
}

void ViewUpdateTable::AllocateRow(UpdateId i,
                                  const std::vector<std::string>& rel) {
  MVC_CHECK(!HasRow(i)) << "VUT row " << i << " already allocated";
  std::vector<CellData> row(views_.size());
  for (const std::string& view : rel) {
    row[ViewIndex(view)].color = CellColor::kWhite;
  }
  rows_[i] = std::move(row);
  max_allocated_ = std::max(max_allocated_, i);
}

void ViewUpdateTable::PurgeRow(UpdateId i) {
  MVC_CHECK(rows_.erase(i) == 1) << "no VUT row " << i << " to purge";
}

std::vector<UpdateId> ViewUpdateTable::RowIds() const {
  std::vector<UpdateId> out;
  out.reserve(rows_.size());
  for (const auto& [id, _] : rows_) out.push_back(id);
  return out;
}

bool ViewUpdateTable::RowHasWhite(UpdateId i) const {
  auto it = rows_.find(i);
  MVC_CHECK(it != rows_.end());
  for (const CellData& cell : it->second) {
    if (cell.color == CellColor::kWhite) return true;
  }
  return false;
}

bool ViewUpdateTable::RowAllBlackOrGray(UpdateId i) const {
  auto it = rows_.find(i);
  MVC_CHECK(it != rows_.end());
  for (const CellData& cell : it->second) {
    if (cell.color != CellColor::kBlack && cell.color != CellColor::kGray) {
      return false;
    }
  }
  return true;
}

UpdateId ViewUpdateTable::NextRed(UpdateId i, size_t view_idx) const {
  for (auto it = rows_.upper_bound(i); it != rows_.end(); ++it) {
    if (it->second[view_idx].color == CellColor::kRed) return it->first;
  }
  return 0;
}

bool ViewUpdateTable::HasEarlierRed(UpdateId i, size_t view_idx) const {
  for (auto it = rows_.begin(); it != rows_.end() && it->first < i; ++it) {
    if (it->second[view_idx].color == CellColor::kRed) return true;
  }
  return false;
}

std::vector<UpdateId> ViewUpdateTable::EarlierRedRows(UpdateId i,
                                                      size_t view_idx) const {
  std::vector<UpdateId> out;
  for (auto it = rows_.begin(); it != rows_.end() && it->first < i; ++it) {
    if (it->second[view_idx].color == CellColor::kRed) out.push_back(it->first);
  }
  return out;
}

std::vector<UpdateId> ViewUpdateTable::WhiteRowsUpTo(UpdateId i,
                                                     size_t view_idx) const {
  std::vector<UpdateId> out;
  for (auto it = rows_.begin(); it != rows_.end() && it->first <= i; ++it) {
    if (it->second[view_idx].color == CellColor::kWhite) {
      out.push_back(it->first);
    }
  }
  return out;
}

std::vector<std::string> ViewUpdateTable::RowViewsWithColor(
    UpdateId i, CellColor color) const {
  auto it = rows_.find(i);
  MVC_CHECK(it != rows_.end());
  std::vector<std::string> out;
  for (size_t x = 0; x < views_.size(); ++x) {
    if (it->second[x].color == color) out.push_back(views_[x]);
  }
  return out;
}

std::string ViewUpdateTable::ToString(bool show_state) const {
  std::ostringstream os;
  os << "    ";
  for (const std::string& view : views_) os << " " << view;
  os << "\n";
  for (const auto& [id, row] : rows_) {
    os << "U" << id << ":";
    for (const CellData& cell : row) {
      if (show_state) {
        os << " (" << CellColorChar(cell.color) << "," << cell.state << ")";
      } else {
        os << " " << CellColorChar(cell.color);
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace mvc
