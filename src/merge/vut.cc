#include "merge/vut.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace mvc {

char CellColorChar(CellColor color) {
  switch (color) {
    case CellColor::kWhite:
      return 'w';
    case CellColor::kRed:
      return 'r';
    case CellColor::kGray:
      return 'g';
    case CellColor::kBlack:
      return 'b';
  }
  return '?';
}

ViewUpdateTable::ViewUpdateTable(std::vector<ViewId> views,
                                 const IdRegistry* names)
    : views_(std::move(views)), names_(names) {
  MVC_CHECK(names_ != nullptr);
  for (size_t x = 0; x < views_.size(); ++x) {
    ViewId v = views_[x];
    MVC_CHECK(v >= 0) << "invalid view id " << v;
    if (static_cast<size_t>(v) >= col_of_view_.size()) {
      col_of_view_.resize(static_cast<size_t>(v) + 1, -1);
    }
    MVC_CHECK(col_of_view_[static_cast<size_t>(v)] < 0)
        << "duplicate view V#" << v;
    col_of_view_[static_cast<size_t>(v)] = static_cast<int32_t>(x);
  }
}

void ViewUpdateTable::AllocateRow(UpdateId i, const std::vector<ViewId>& rel) {
  MVC_CHECK(!HasRow(i)) << "VUT row " << i << " already allocated";
  if (window_.empty()) {
    base_ = i;
    window_.emplace_back();
  } else if (i < base_) {
    // Re-announce below the window (e.g. replay after a purge): grow the
    // front with dead slots down to i.
    for (UpdateId k = base_; k > i; --k) window_.emplace_front();
    base_ = i;
  } else if (i >= base_ + static_cast<UpdateId>(window_.size())) {
    // Far-ahead allocation: pad with dead slots so ids stay offsets.
    size_t need = static_cast<size_t>(i - base_) + 1;
    while (window_.size() < need) window_.emplace_back();
  }
  RowSlot& slot = window_[static_cast<size_t>(i - base_)];
  slot.live = true;
  if (!free_cells_.empty()) {
    slot.cells = std::move(free_cells_.back());
    free_cells_.pop_back();
    std::fill(slot.cells.begin(), slot.cells.end(), CellData{});
  } else {
    slot.cells.assign(views_.size(), CellData{});
  }
  for (ViewId view : rel) {
    slot.cells[ViewIndex(view)].color = CellColor::kWhite;
  }
  ++live_rows_;
  max_allocated_ = std::max(max_allocated_, i);
}

void ViewUpdateTable::PurgeRow(UpdateId i) {
  MVC_CHECK(HasRow(i)) << "no VUT row " << i << " to purge";
  RowSlot& slot = window_[static_cast<size_t>(i - base_)];
  slot.live = false;
  free_cells_.push_back(std::move(slot.cells));
  slot.cells.clear();
  --live_rows_;
  ShrinkWindow();
}

void ViewUpdateTable::ShrinkWindow() {
  while (!window_.empty() && !window_.front().live) {
    window_.pop_front();
    ++base_;
  }
  while (!window_.empty() && !window_.back().live) {
    window_.pop_back();
  }
}

std::vector<UpdateId> ViewUpdateTable::RowIds() const {
  std::vector<UpdateId> out;
  out.reserve(live_rows_);
  for (size_t k = 0; k < window_.size(); ++k) {
    if (window_[k].live) out.push_back(base_ + static_cast<UpdateId>(k));
  }
  return out;
}

bool ViewUpdateTable::RowHasWhite(UpdateId i) const {
  for (const CellData& cell : Slot(i).cells) {
    if (cell.color == CellColor::kWhite) return true;
  }
  return false;
}

bool ViewUpdateTable::RowAllBlackOrGray(UpdateId i) const {
  for (const CellData& cell : Slot(i).cells) {
    if (cell.color != CellColor::kBlack && cell.color != CellColor::kGray) {
      return false;
    }
  }
  return true;
}

UpdateId ViewUpdateTable::NextRed(UpdateId i, size_t view_idx) const {
  size_t k = i < base_ ? 0 : static_cast<size_t>(i - base_) + 1;
  for (; k < window_.size(); ++k) {
    const RowSlot& slot = window_[k];
    if (slot.live && slot.cells[view_idx].color == CellColor::kRed) {
      return base_ + static_cast<UpdateId>(k);
    }
  }
  return 0;
}

bool ViewUpdateTable::HasEarlierRed(UpdateId i, size_t view_idx) const {
  size_t end = i <= base_ ? 0
               : std::min(static_cast<size_t>(i - base_), window_.size());
  for (size_t k = 0; k < end; ++k) {
    const RowSlot& slot = window_[k];
    if (slot.live && slot.cells[view_idx].color == CellColor::kRed) {
      return true;
    }
  }
  return false;
}

std::vector<UpdateId> ViewUpdateTable::EarlierRedRows(UpdateId i,
                                                      size_t view_idx) const {
  std::vector<UpdateId> out;
  size_t end = i <= base_ ? 0
               : std::min(static_cast<size_t>(i - base_), window_.size());
  for (size_t k = 0; k < end; ++k) {
    const RowSlot& slot = window_[k];
    if (slot.live && slot.cells[view_idx].color == CellColor::kRed) {
      out.push_back(base_ + static_cast<UpdateId>(k));
    }
  }
  return out;
}

std::vector<UpdateId> ViewUpdateTable::WhiteRowsUpTo(UpdateId i,
                                                     size_t view_idx) const {
  std::vector<UpdateId> out;
  if (i < base_) return out;
  size_t end = std::min(static_cast<size_t>(i - base_) + 1, window_.size());
  for (size_t k = 0; k < end; ++k) {
    const RowSlot& slot = window_[k];
    if (slot.live && slot.cells[view_idx].color == CellColor::kWhite) {
      out.push_back(base_ + static_cast<UpdateId>(k));
    }
  }
  return out;
}

std::vector<ViewId> ViewUpdateTable::RowViewsWithColor(UpdateId i,
                                                       CellColor color) const {
  const RowSlot& slot = Slot(i);
  std::vector<ViewId> out;
  for (size_t x = 0; x < views_.size(); ++x) {
    if (slot.cells[x].color == color) out.push_back(views_[x]);
  }
  return out;
}

std::string ViewUpdateTable::ToString(bool show_state) const {
  std::ostringstream os;
  os << "    ";
  for (ViewId view : views_) os << " " << names_->ViewName(view);
  os << "\n";
  for (size_t k = 0; k < window_.size(); ++k) {
    const RowSlot& slot = window_[k];
    if (!slot.live) continue;
    os << "U" << (base_ + static_cast<UpdateId>(k)) << ":";
    for (const CellData& cell : slot.cells) {
      if (show_state) {
        os << " (" << CellColorChar(cell.color) << "," << cell.state << ")";
      } else {
        os << " " << CellColorChar(cell.color);
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace mvc
