#include "merge/merge_process.h"

#include <algorithm>

#include "common/string_util.h"

namespace mvc {

const char* SubmissionPolicyToString(SubmissionPolicy policy) {
  switch (policy) {
    case SubmissionPolicy::kSequential:
      return "sequential";
    case SubmissionPolicy::kHoldDependents:
      return "hold-dependents";
    case SubmissionPolicy::kAnnotate:
      return "annotate";
    case SubmissionPolicy::kBatched:
      return "batched";
  }
  return "?";
}

namespace {
/// True if the two sorted view-name vectors intersect.
bool ViewsOverlap(const std::vector<std::string>& a,
                  const std::vector<std::string>& b) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}
}  // namespace

MergeProcess::MergeProcess(std::string name, std::vector<std::string> views,
                           MergeOptions options)
    : Process(std::move(name)),
      options_(options),
      engine_(MergeEngine::Create(options.algorithm, std::move(views))) {}

void MergeProcess::OnMessage(ProcessId from, MessagePtr msg) {
  (void)from;
  switch (msg->kind) {
    case Message::Kind::kTxnCommitted: {
      // Commit acknowledgements are cheap bookkeeping; handled inline.
      OnCommitted(static_cast<TxnCommittedMsg*>(msg.get())->txn_id);
      return;
    }
    case Message::Kind::kTick: {
      auto* tick = static_cast<TickMsg*>(msg.get());
      if (tick->tag == kBatchFlushTag) {
        batch_timer_armed_ = false;
        if (!batch_.empty()) FlushBatch();
      } else {
        busy_ = false;
        PumpBacklog();
      }
      return;
    }
    case Message::Kind::kRelSet:
    case Message::Kind::kActionList: {
      if (options_.process_delay == 0) {
        HandleNow(msg.get());
      } else {
        backlog_.push_back(std::move(msg));
        stats_.peak_backlog = std::max(stats_.peak_backlog, backlog_.size());
        PumpBacklog();
      }
      return;
    }
    default:
      MVC_LOG_ERROR() << "merge " << name() << ": unexpected message "
                      << msg->Summary();
  }
}

void MergeProcess::PumpBacklog() {
  if (busy_ || backlog_.empty()) return;
  MessagePtr msg = std::move(backlog_.front());
  backlog_.pop_front();
  HandleNow(msg.get());
  busy_ = true;
  ScheduleSelf(std::make_unique<TickMsg>(), options_.process_delay);
}

void MergeProcess::HandleNow(Message* msg) {
  std::vector<WarehouseTransaction> emitted;
  if (msg->kind == Message::Kind::kRelSet) {
    auto* rel = static_cast<RelSetMsg*>(msg);
    ++stats_.rels_received;
    engine_->ReceiveRelSet(rel->update_id, rel->views, &emitted);
  } else {
    auto* alm = static_cast<ActionListMsg*>(msg);
    // Piggybacked REL sets (alternate delivery scheme) are processed
    // before the action list that carried them.
    for (RelSetMsg& rel : alm->piggybacked_rels) {
      ++stats_.rels_received;
      engine_->ReceiveRelSet(rel.update_id, rel.views, &emitted);
    }
    ++stats_.action_lists_received;
    engine_->ReceiveActionList(std::move(alm->al), &emitted);
  }
  stats_.peak_held_action_lists =
      std::max(stats_.peak_held_action_lists, engine_->held_action_lists());
  stats_.peak_open_rows =
      std::max(stats_.peak_open_rows, engine_->open_rows());
  HandleEmitted(std::move(emitted));
}

void MergeProcess::HandleEmitted(std::vector<WarehouseTransaction> emitted) {
  for (WarehouseTransaction& txn : emitted) {
    SubmitOrQueue(std::move(txn));
  }
}

void MergeProcess::SubmitOrQueue(WarehouseTransaction txn) {
  switch (options_.policy) {
    case SubmissionPolicy::kSequential:
      if (outstanding_.empty() && wait_queue_.empty()) {
        Submit(std::move(txn));
      } else {
        wait_queue_.push_back(std::move(txn));
      }
      return;
    case SubmissionPolicy::kHoldDependents: {
      bool blocked = OverlapsUncommitted(txn, /*before_txn_id=*/-1);
      if (!blocked) {
        for (const WarehouseTransaction& queued : wait_queue_) {
          if (ViewsOverlap(txn.views, queued.views)) {
            blocked = true;
            break;
          }
        }
      }
      if (blocked) {
        wait_queue_.push_back(std::move(txn));
      } else {
        Submit(std::move(txn));
      }
      return;
    }
    case SubmissionPolicy::kAnnotate:
      Submit(std::move(txn));
      return;
    case SubmissionPolicy::kBatched:
      batch_.push_back(std::move(txn));
      if (batch_.size() >= options_.batch_size) {
        FlushBatch();
      } else if (options_.batch_timeout > 0 && !batch_timer_armed_) {
        batch_timer_armed_ = true;
        auto tick = std::make_unique<TickMsg>();
        tick->tag = kBatchFlushTag;
        ScheduleSelf(std::move(tick), options_.batch_timeout);
      }
      return;
  }
}

void MergeProcess::FlushBatch() {
  MVC_CHECK(!batch_.empty());
  // Combine into one batched warehouse transaction (BWT). Dependent
  // members already appear in emission order, satisfying the Section 4.3
  // in-batch ordering requirement.
  WarehouseTransaction bwt;
  std::set<std::string> views;
  for (WarehouseTransaction& member : batch_) {
    bwt.rows.insert(bwt.rows.end(), member.rows.begin(), member.rows.end());
    for (ActionList& al : member.actions) {
      bwt.actions.push_back(std::move(al));
    }
    views.insert(member.views.begin(), member.views.end());
    bwt.source_state = std::max(bwt.source_state, member.source_state);
  }
  batch_.clear();
  std::sort(bwt.rows.begin(), bwt.rows.end());
  bwt.views.assign(views.begin(), views.end());
  Submit(std::move(bwt));
}

void MergeProcess::Submit(WarehouseTransaction txn) {
  txn.txn_id = ++next_txn_id_;
  if (options_.policy == SubmissionPolicy::kAnnotate ||
      options_.policy == SubmissionPolicy::kBatched) {
    for (const auto& [id, views] : outstanding_) {
      if (ViewsOverlap(txn.views, views)) txn.depends_on.push_back(id);
    }
  }
  outstanding_[txn.txn_id] = txn.views;
  ++stats_.transactions_submitted;
  stats_.actions_submitted += static_cast<int64_t>(txn.actions.size());
  auto msg = std::make_unique<WarehouseTxnMsg>();
  msg->txn = std::move(txn);
  Send(warehouse_, std::move(msg));
}

void MergeProcess::OnCommitted(int64_t txn_id) {
  MVC_CHECK(outstanding_.erase(txn_id) == 1)
      << "commit ack for unknown transaction " << txn_id;
  ++stats_.transactions_committed;
  switch (options_.policy) {
    case SubmissionPolicy::kSequential:
      if (!wait_queue_.empty()) {
        WarehouseTransaction next = std::move(wait_queue_.front());
        wait_queue_.pop_front();
        Submit(std::move(next));
      }
      return;
    case SubmissionPolicy::kHoldDependents: {
      // Release queued transactions whose dependencies have drained, in
      // order; a queued transaction stays put while an earlier queued
      // one overlaps it.
      bool progressed = true;
      while (progressed) {
        progressed = false;
        for (size_t j = 0; j < wait_queue_.size(); ++j) {
          bool blocked = OverlapsUncommitted(wait_queue_[j], -1);
          for (size_t k = 0; !blocked && k < j; ++k) {
            blocked = ViewsOverlap(wait_queue_[j].views,
                                   wait_queue_[k].views);
          }
          if (!blocked) {
            WarehouseTransaction next = std::move(wait_queue_[j]);
            wait_queue_.erase(wait_queue_.begin() +
                              static_cast<ptrdiff_t>(j));
            Submit(std::move(next));
            progressed = true;
            break;
          }
        }
      }
      return;
    }
    case SubmissionPolicy::kAnnotate:
    case SubmissionPolicy::kBatched:
      return;
  }
}

bool MergeProcess::OverlapsUncommitted(const WarehouseTransaction& txn,
                                       int64_t before_txn_id) const {
  for (const auto& [id, views] : outstanding_) {
    if (before_txn_id >= 0 && id >= before_txn_id) continue;
    if (ViewsOverlap(txn.views, views)) return true;
  }
  return false;
}

}  // namespace mvc
