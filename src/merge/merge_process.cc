#include "merge/merge_process.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mvc {

const char* SubmissionPolicyToString(SubmissionPolicy policy) {
  switch (policy) {
    case SubmissionPolicy::kSequential:
      return "sequential";
    case SubmissionPolicy::kHoldDependents:
      return "hold-dependents";
    case SubmissionPolicy::kAnnotate:
      return "annotate";
    case SubmissionPolicy::kBatched:
      return "batched";
  }
  return "?";
}

namespace {
/// True if the two sorted view-id vectors intersect.
bool ViewsOverlap(const std::vector<ViewId>& a, const std::vector<ViewId>& b) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}
}  // namespace

MergeProcess::MergeProcess(std::string name, std::vector<ViewId> views,
                           const IdRegistry* registry, MergeOptions options)
    : Process(std::move(name)),
      options_(options),
      views_(std::move(views)),
      registry_(registry),
      engine_(MergeEngine::Create(options.algorithm, views_, registry_,
                                  options.mutation)) {
  MVC_CHECK(registry_ != nullptr);
}

bool MergeProcess::OwnsView(ViewId view) const {
  return engine_->vut().FindViewIndex(view).has_value();
}

void MergeProcess::EnableObservability(obs::MetricsRegistry* metrics,
                                       obs::Tracer* tracer) {
  tracer_ = tracer;
  if (metrics == nullptr) return;
  const std::string l = StrCat("{process=\"", name(), "\"}");
  m_rels_ = metrics->RegisterCounter(StrCat("merge.rels_received", l));
  m_als_ = metrics->RegisterCounter(StrCat("merge.action_lists_received", l));
  m_misrouted_ = metrics->RegisterCounter(StrCat("merge.misrouted_als", l));
  m_als_held_ = metrics->RegisterCounter(StrCat("merge.als_held", l));
  m_als_prompt_ =
      metrics->RegisterCounter(StrCat("merge.als_prompt_applied", l));
  m_prompt_violations_ =
      metrics->RegisterCounter(StrCat("merge.prompt_violations", l));
  m_submitted_ =
      metrics->RegisterCounter(StrCat("merge.txns_submitted", l));
  m_committed_ = metrics->RegisterCounter(StrCat("merge.txns_committed", l));
  m_open_rows_ =
      metrics->RegisterHistogram(StrCat("merge.vut_open_rows", l), "rows");
  m_held_now_ =
      metrics->RegisterHistogram(StrCat("merge.held_action_lists", l), "als");
  m_wave_rows_ =
      metrics->RegisterHistogram(StrCat("merge.paint_wave_rows", l), "rows");
  m_txn_actions_ =
      metrics->RegisterHistogram(StrCat("merge.txn_actions", l), "als");
}

void MergeProcess::RecordEngineObs() {
  if (m_open_rows_ == nullptr) return;
  m_open_rows_->Record(static_cast<int64_t>(engine_->open_rows()));
  m_held_now_->Record(static_cast<int64_t>(engine_->held_action_lists()));
  // SPA promptness theorem (Section 4.2): between event handlers no row
  // may sit fully painted yet unapplied. The PA engine's applicability
  // depends on its wave/state computation, so only SPA is scanned; both
  // are covered by the end-of-run held-AL gauges. Mutated engines
  // (explorer self-test) break the rule on purpose.
  if (engine_->algorithm() == MergeAlgorithm::kSPA &&
      options_.mutation == PaintMutation::kNone) {
    const size_t ready = CountSpaApplicableRows(engine_->vut());
    if (ready > 0) m_prompt_violations_->Add(static_cast<int64_t>(ready));
  }
}

void MergeProcess::EnableFaultTolerance(
    MergeLog* log, ProcessId integrator,
    std::map<ViewId, ProcessId> vm_of_view, const FaultOptions& opts) {
  MVC_CHECK(log != nullptr);
  log_ = log;
  integrator_ = integrator;
  vm_of_view_ = std::move(vm_of_view);
  resync_retry_micros_ = opts.resync_retry_micros;
  max_resync_retries_ = opts.max_resync_retries;
}

void MergeProcess::OnMessage(ProcessId from, MessagePtr msg) {
  (void)from;
  switch (msg->kind) {
    case Message::Kind::kTxnCommitted: {
      // Commit acknowledgements are cheap bookkeeping; handled inline.
      AckAndLog(static_cast<TxnCommittedMsg*>(msg.get())->txn_id);
      return;
    }
    case Message::Kind::kTick: {
      auto* tick = static_cast<TickMsg*>(msg.get());
      if (tick->tag == kBatchFlushTag) {
        batch_timer_armed_ = false;
        if (!batch_.empty()) {
          // Timer flushes are not derivable from the input entries, so
          // the WAL records them explicitly for replay.
          if (log_ != nullptr) {
            MergeLogEntry e;
            e.kind = MergeLogEntry::Kind::kFlush;
            log_->Append(std::move(e));
          }
          FlushBatch();
        }
      } else if (tick->tag == kResyncRetryTag) {
        // A view manager may itself have been down when we asked for its
        // AL outbox tail; re-ask (capped so the run still quiesces if it
        // never comes back).
        if (awaiting_al_sync_.empty() ||
            resync_retries_done_ >= max_resync_retries_) {
          return;
        }
        ++resync_retries_done_;
        ++stats_.resync_retries;
        for (ViewId view : awaiting_al_sync_) {
          SendAlResyncRequest(view);
        }
        ArmResyncRetry();
      } else {
        busy_ = false;
        PumpBacklog();
      }
      return;
    }
    case Message::Kind::kRelSet:
    case Message::Kind::kActionList: {
      if (options_.process_delay == 0) {
        HandleNow(msg.get());
      } else {
        backlog_.push_back(std::move(msg));
        stats_.peak_backlog = std::max(stats_.peak_backlog, backlog_.size());
        PumpBacklog();
      }
      return;
    }
    case Message::Kind::kRelResyncResponse: {
      auto* resp = static_cast<RelResyncResponseMsg*>(msg.get());
      if (resp->epoch != epoch_ || rel_synced_) return;
      rel_synced_ = true;
      for (RelEntry& entry : resp->rels) {
        std::vector<WarehouseTransaction> emitted;
        ConsumeRel(entry.update_id, entry.views, &emitted);
        HandleEmitted(std::move(emitted));
      }
      RecordEngineObs();
      return;
    }
    case Message::Kind::kAlResyncResponse: {
      auto* resp = static_cast<AlResyncResponseMsg*>(msg.get());
      if (resp->epoch != epoch_) return;
      if (awaiting_al_sync_.erase(resp->view) == 0) return;
      for (ActionList& al : resp->action_lists) {
        std::vector<WarehouseTransaction> emitted;
        ConsumeAl(std::move(al), &emitted);
        HandleEmitted(std::move(emitted));
      }
      RecordEngineObs();
      return;
    }
    case Message::Kind::kCommitResyncResponse: {
      auto* resp = static_cast<CommitResyncResponseMsg*>(msg.get());
      if (resp->epoch != epoch_) return;
      // Acks delivered while we were down are gone; the warehouse's
      // committed set stands in for them.
      for (int64_t txn_id : resp->committed) {
        if (outstanding_.count(txn_id) > 0) AckAndLog(txn_id);
      }
      return;
    }
    default:
      MVC_LOG_ERROR() << "merge " << name() << ": unexpected message "
                      << msg->Summary();
  }
}

void MergeProcess::OnCrashed() {
  // All volatile state dies with the process; the MergeLog survives.
  backlog_.clear();
  busy_ = false;
  batch_.clear();
  batch_timer_armed_ = false;
  wait_queue_.clear();
  outstanding_.clear();
  next_txn_id_ = 0;
  max_rel_id_ = kInvalidUpdate;
  max_al_label_.clear();
  rel_synced_ = true;
  awaiting_al_sync_.clear();
  replaying_ = false;
  resync_retries_done_ = 0;
  engine_ = MergeEngine::Create(options_.algorithm, views_, registry_,
                                options_.mutation);
}

void MergeProcess::OnRecovered() {
  MVC_CHECK(log_ != nullptr);  // faults only target fault-tolerant merges
  // Phase 1: rebuild the VUT and submission state by replaying the WAL
  // through the fresh engine. The engine is deterministic, so replay
  // regenerates exactly the pre-crash transaction sequence — Submit
  // re-assigns the same txn ids but sends nothing (the pre-crash
  // incarnation already did).
  replaying_ = true;
  for (MergeLogEntry& entry : log_->Snapshot()) {
    std::vector<WarehouseTransaction> emitted;
    switch (entry.kind) {
      case MergeLogEntry::Kind::kRel:
        ConsumeRel(entry.update_id, entry.views, &emitted);
        break;
      case MergeLogEntry::Kind::kActionList:
        ConsumeAl(entry.al, &emitted);
        break;
      case MergeLogEntry::Kind::kFlush:
        if (!batch_.empty()) FlushBatch();
        break;
      case MergeLogEntry::Kind::kSubmit:
        // Audit-only: replaying the inputs regenerates the submission.
        break;
      case MergeLogEntry::Kind::kAck:
        OnCommitted(entry.txn_id);
        break;
    }
    HandleEmitted(std::move(emitted));
    ++stats_.log_entries_replayed;
  }
  replaying_ = false;
  // Phase 2: resync with the neighbours. Everything consumed while we
  // were down is gone; each peer's durable state fills the gap, and the
  // watermarks just rebuilt (max_rel_id_, max_al_label_) tell every peer
  // exactly where our log ends.
  ++epoch_;
  rel_synced_ = false;
  auto rel_req = std::make_unique<RelResyncRequestMsg>();
  rel_req->after = max_rel_id_;
  rel_req->epoch = epoch_;
  Send(integrator_, std::move(rel_req));
  awaiting_al_sync_.clear();
  for (ViewId view : views_) {
    awaiting_al_sync_.insert(view);
    SendAlResyncRequest(view);
  }
  auto commit_req = std::make_unique<CommitResyncRequestMsg>();
  commit_req->epoch = epoch_;
  Send(warehouse_, std::move(commit_req));
  resync_retries_done_ = 0;
  ArmResyncRetry();
}

void MergeProcess::SendAlResyncRequest(ViewId view) {
  auto it = vm_of_view_.find(view);
  MVC_CHECK(it != vm_of_view_.end());
  auto req = std::make_unique<AlResyncRequestMsg>();
  req->view = view;
  auto label = max_al_label_.find(view);
  req->after = label == max_al_label_.end() ? kInvalidUpdate : label->second;
  req->epoch = epoch_;
  Send(it->second, std::move(req));
}

void MergeProcess::ArmResyncRetry() {
  if (awaiting_al_sync_.empty()) return;
  auto tick = std::make_unique<TickMsg>();
  tick->tag = kResyncRetryTag;
  ScheduleSelf(std::move(tick), resync_retry_micros_);
}

void MergeProcess::PumpBacklog() {
  if (busy_ || backlog_.empty()) return;
  MessagePtr msg = std::move(backlog_.front());
  backlog_.pop_front();
  HandleNow(msg.get());
  busy_ = true;
  ScheduleSelf(std::make_unique<TickMsg>(), options_.process_delay);
}

void MergeProcess::HandleNow(Message* msg) {
  std::vector<WarehouseTransaction> emitted;
  if (msg->kind == Message::Kind::kRelSet) {
    auto* rel = static_cast<RelSetMsg*>(msg);
    if (!rel_synced_) {
      // The integrator's resync response will cover this id.
      ++stats_.dropped_during_resync;
      return;
    }
    ConsumeRel(rel->update_id, rel->views, &emitted);
  } else {
    auto* alm = static_cast<ActionListMsg*>(msg);
    // Piggybacked REL sets (alternate delivery scheme) are processed
    // before the action list that carried them.
    for (RelSetMsg& rel : alm->piggybacked_rels) {
      ConsumeRel(rel.update_id, rel.views, &emitted);
    }
    if (awaiting_al_sync_.count(alm->al.view) > 0) {
      // In flight before our resync request reached the manager, so the
      // pending response includes it.
      ++stats_.dropped_during_resync;
    } else {
      ConsumeAl(std::move(alm->al), &emitted);
    }
  }
  stats_.peak_held_action_lists =
      std::max(stats_.peak_held_action_lists, engine_->held_action_lists());
  stats_.peak_open_rows =
      std::max(stats_.peak_open_rows, engine_->open_rows());
  HandleEmitted(std::move(emitted));
  RecordEngineObs();
}

void MergeProcess::ConsumeRel(UpdateId update_id,
                              const std::vector<ViewId>& views,
                              std::vector<WarehouseTransaction>* emitted) {
  if (log_ != nullptr) {
    // REL ids arrive in increasing order per merge, so the watermark
    // catches any resync/stream overlap.
    if (update_id <= max_rel_id_) return;
    max_rel_id_ = update_id;
    if (!replaying_) {
      MergeLogEntry e;
      e.kind = MergeLogEntry::Kind::kRel;
      e.update_id = update_id;
      e.views = views;
      log_->Append(std::move(e));
    }
  }
  if (!replaying_) {
    ++stats_.rels_received;
    if (m_rels_ != nullptr) m_rels_->Add();
    if (tracer_ != nullptr) {
      tracer_->Record(obs::Span{obs::SpanKind::kRelReceived, update_id,
                                kInvalidView, -1,
                                static_cast<int64_t>(views.size()), Now(),
                                name()});
    }
  }
  engine_->ReceiveRelSet(update_id, views, emitted);
}

void MergeProcess::ConsumeAl(ActionList al,
                             std::vector<WarehouseTransaction>* emitted) {
  if (!OwnsView(al.view)) {
    // Mis-routed traffic (wiring bug or confused sender): reject the AL
    // instead of letting the engine abort the whole system on an unknown
    // VUT column. Applies on every intake path — direct, piggybacked,
    // resync, and WAL replay.
    ++stats_.misrouted_als;
    if (m_misrouted_ != nullptr) m_misrouted_->Add();
    const bool known_id =
        al.view >= 0 && static_cast<size_t>(al.view) < registry_->num_views();
    MVC_LOG_ERROR() << "merge " << name() << ": dropping mis-routed "
                    << al.ToString(known_id ? registry_ : nullptr)
                    << " (not a column of this merge process)";
    return;
  }
  if (log_ != nullptr) {
    // Per-view labels increase strictly (the painting engines check
    // this), so a label at or below the watermark is a duplicate from a
    // resync overlap and must not reach the engine.
    auto it = max_al_label_.find(al.view);
    if (it != max_al_label_.end() && al.update <= it->second) {
      if (!replaying_) ++stats_.duplicate_als_dropped;
      return;
    }
    max_al_label_[al.view] = al.update;
    if (!replaying_) {
      MergeLogEntry e;
      e.kind = MergeLogEntry::Kind::kActionList;
      e.al = al;
      log_->Append(std::move(e));
    }
  }
  if (!replaying_) {
    ++stats_.action_lists_received;
    if (m_als_ != nullptr) m_als_->Add();
    if (tracer_ != nullptr) {
      tracer_->Record(obs::Span{obs::SpanKind::kAlReceived, al.update,
                                al.view, -1, al.update, Now(), name()});
    }
  }
  const size_t held_before = engine_->held_action_lists();
  engine_->ReceiveActionList(std::move(al), emitted);
  // Held vs. prompt-applied: the engine bumps its held count on intake
  // and drops it as rows apply, so a net increase across the call means
  // this AL (or one it depended on) is now waiting in the VUT.
  if (!replaying_ && m_als_held_ != nullptr) {
    if (engine_->held_action_lists() > held_before) {
      m_als_held_->Add();
    } else {
      m_als_prompt_->Add();
    }
  }
}

void MergeProcess::HandleEmitted(std::vector<WarehouseTransaction> emitted) {
  for (WarehouseTransaction& txn : emitted) {
    SubmitOrQueue(std::move(txn));
  }
}

void MergeProcess::SubmitOrQueue(WarehouseTransaction txn) {
  switch (options_.policy) {
    case SubmissionPolicy::kSequential:
      if (outstanding_.empty() && wait_queue_.empty()) {
        Submit(std::move(txn));
      } else {
        wait_queue_.push_back(std::move(txn));
      }
      return;
    case SubmissionPolicy::kHoldDependents: {
      bool blocked = OverlapsUncommitted(txn, /*before_txn_id=*/-1);
      if (!blocked) {
        for (const WarehouseTransaction& queued : wait_queue_) {
          if (ViewsOverlap(txn.views, queued.views)) {
            blocked = true;
            break;
          }
        }
      }
      if (blocked) {
        wait_queue_.push_back(std::move(txn));
      } else {
        Submit(std::move(txn));
      }
      return;
    }
    case SubmissionPolicy::kAnnotate:
      Submit(std::move(txn));
      return;
    case SubmissionPolicy::kBatched:
      batch_.push_back(std::move(txn));
      if (batch_.size() >= options_.batch_size) {
        FlushBatch();
      } else if (options_.batch_timeout > 0 && !batch_timer_armed_) {
        batch_timer_armed_ = true;
        auto tick = std::make_unique<TickMsg>();
        tick->tag = kBatchFlushTag;
        ScheduleSelf(std::move(tick), options_.batch_timeout);
      }
      return;
  }
}

void MergeProcess::FlushBatch() {
  MVC_CHECK(!batch_.empty());
  // Combine into one batched warehouse transaction (BWT). Dependent
  // members already appear in emission order, satisfying the Section 4.3
  // in-batch ordering requirement.
  WarehouseTransaction bwt;
  std::set<ViewId> views;
  for (WarehouseTransaction& member : batch_) {
    bwt.rows.insert(bwt.rows.end(), member.rows.begin(), member.rows.end());
    for (ActionList& al : member.actions) {
      bwt.actions.push_back(std::move(al));
    }
    views.insert(member.views.begin(), member.views.end());
    bwt.source_state = std::max(bwt.source_state, member.source_state);
  }
  batch_.clear();
  std::sort(bwt.rows.begin(), bwt.rows.end());
  bwt.views.assign(views.begin(), views.end());
  Submit(std::move(bwt));
}

void MergeProcess::Submit(WarehouseTransaction txn) {
  txn.txn_id = ++next_txn_id_;
  if (options_.policy == SubmissionPolicy::kAnnotate ||
      options_.policy == SubmissionPolicy::kBatched) {
    for (const auto& [id, views] : outstanding_) {
      if (ViewsOverlap(txn.views, views)) txn.depends_on.push_back(id);
    }
  }
  outstanding_[txn.txn_id] = txn.views;
  if (replaying_) {
    // The pre-crash incarnation already sent this exact transaction
    // (same inputs, same engine, same id); only the bookkeeping above
    // needed rebuilding.
    return;
  }
  ++stats_.transactions_submitted;
  stats_.actions_submitted += static_cast<int64_t>(txn.actions.size());
  if (m_submitted_ != nullptr) {
    m_submitted_->Add();
    m_wave_rows_->Record(static_cast<int64_t>(txn.rows.size()));
    m_txn_actions_->Record(static_cast<int64_t>(txn.actions.size()));
  }
  if (tracer_ != nullptr) {
    for (UpdateId row : txn.rows) {
      tracer_->Record(obs::Span{obs::SpanKind::kSubmitted, row, kInvalidView,
                                txn.txn_id, 0, Now(), name()});
    }
  }
  if (log_ != nullptr) {
    MergeLogEntry e;
    e.kind = MergeLogEntry::Kind::kSubmit;
    e.txn_id = txn.txn_id;
    e.txn = txn;
    log_->Append(std::move(e));
  }
  auto msg = std::make_unique<WarehouseTxnMsg>();
  msg->txn = std::move(txn);
  Send(warehouse_, std::move(msg));
}

void MergeProcess::AckAndLog(int64_t txn_id) {
  if (log_ != nullptr && !replaying_) {
    MergeLogEntry e;
    e.kind = MergeLogEntry::Kind::kAck;
    e.txn_id = txn_id;
    log_->Append(std::move(e));
  }
  OnCommitted(txn_id);
}

void MergeProcess::OnCommitted(int64_t txn_id) {
  if (outstanding_.erase(txn_id) == 0) {
    // Either a duplicate (the commit resync raced a late ack) or an ack
    // for a transaction an earlier incarnation retired. Without fault
    // tolerance this is still a protocol error.
    MVC_CHECK(log_ != nullptr)
        << "commit ack for unknown transaction " << txn_id;
    ++stats_.stale_acks;
    return;
  }
  if (!replaying_) {
    ++stats_.transactions_committed;
    if (m_committed_ != nullptr) m_committed_->Add();
  }
  switch (options_.policy) {
    case SubmissionPolicy::kSequential:
      if (!wait_queue_.empty()) {
        WarehouseTransaction next = std::move(wait_queue_.front());
        wait_queue_.pop_front();
        Submit(std::move(next));
      }
      return;
    case SubmissionPolicy::kHoldDependents: {
      // Release queued transactions whose dependencies have drained, in
      // order; a queued transaction stays put while an earlier queued
      // one overlaps it.
      bool progressed = true;
      while (progressed) {
        progressed = false;
        for (size_t j = 0; j < wait_queue_.size(); ++j) {
          bool blocked = OverlapsUncommitted(wait_queue_[j], -1);
          for (size_t k = 0; !blocked && k < j; ++k) {
            blocked = ViewsOverlap(wait_queue_[j].views,
                                   wait_queue_[k].views);
          }
          if (!blocked) {
            WarehouseTransaction next = std::move(wait_queue_[j]);
            wait_queue_.erase(wait_queue_.begin() +
                              static_cast<ptrdiff_t>(j));
            Submit(std::move(next));
            progressed = true;
            break;
          }
        }
      }
      return;
    }
    case SubmissionPolicy::kAnnotate:
    case SubmissionPolicy::kBatched:
      return;
  }
}

bool MergeProcess::OverlapsUncommitted(const WarehouseTransaction& txn,
                                       int64_t before_txn_id) const {
  for (const auto& [id, views] : outstanding_) {
    if (before_txn_id >= 0 && id >= before_txn_id) continue;
    if (ViewsOverlap(txn.views, views)) return true;
  }
  return false;
}

}  // namespace mvc
