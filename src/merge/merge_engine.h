// The merge algorithms (Sections 4 and 5) as pure, runtime-independent
// state machines.
//
// A MergeEngine consumes the two event kinds the merge process receives
// — REL_i sets from the integrator and action lists from view managers —
// and emits warehouse transactions exactly when the paper's algorithms
// allow:
//
//   SpaEngine          Simple Painting Algorithm (Algorithm 1), for
//                      complete view managers; MVC-complete and prompt.
//   PaEngine           Painting Algorithm (Algorithm 2), for strongly
//                      consistent view managers whose ALs may cover
//                      several intertwined updates; MVC-strong, prompt.
//   PassThroughEngine  For convergence-only view managers (Section 6.3):
//                      forwards every AL immediately; MVC-convergent.
//
// Keeping the algorithms free of messaging makes them directly unit
// testable — the golden tests replay the paper's Examples 2-5 event by
// event and compare VUT renderings.

#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "merge/vut.h"
#include "net/protocol.h"
#include "storage/id_registry.h"

namespace mvc {

enum class MergeAlgorithm : uint8_t { kSPA = 0, kPA = 1, kPassThrough = 2 };

const char* MergeAlgorithmToString(MergeAlgorithm algorithm);

/// Deliberate bugs for the schedule explorer's self-test
/// (tools/mvc_explore --self-test): each disables one gate the painting
/// algorithms depend on, so a systematic search over delivery orders must
/// find a schedule exposing the resulting MVC violation. Never set
/// outside tests.
enum class PaintMutation : uint8_t {
  kNone = 0,
  /// SPA ProcessRow line 1: apply a row without waiting for all its
  /// action lists (violates on any schedule once one AL arrives).
  kSpaSkipWhiteGate = 1,
  /// SPA ProcessRow line 2: ignore earlier red rows in the row's
  /// columns. Violates only under schedules where a later update's AL
  /// completes a row while an earlier dependent row is still red —
  /// i.e. the explorer has to *find* the bad interleaving.
  kSpaSkipOrderGate = 2,
  /// PA ProcessRow line 2: treat rows still waiting for action lists as
  /// ready, committing partial waves.
  kPaSkipWhiteGate = 3,
};

const char* PaintMutationToString(PaintMutation mutation);

/// Accepts the ToString spellings ("none", "spa-skip-white-gate", ...).
bool ParsePaintMutation(const std::string& text, PaintMutation* out);

/// Picks the weakest-sufficient merge algorithm for a set of view-manager
/// consistency levels (Section 6.3: use the algorithm matching the
/// weakest manager).
MergeAlgorithm AlgorithmForLevels(const std::vector<uint8_t>& levels);

/// Number of rows SPA could apply right now: fully painted (no white
/// cell), at least one red cell, and no red cell preceded by an earlier
/// red in its column. SPA applies such rows before returning from any
/// event handler, so between handlers this must be zero — a non-zero
/// count is a violation of the paper's promptness theorem, surfaced as
/// the merge.prompt_violations metric.
size_t CountSpaApplicableRows(const ViewUpdateTable& vut);

class MergeEngine {
 public:
  virtual ~MergeEngine() = default;

  static std::unique_ptr<MergeEngine> Create(
      MergeAlgorithm algorithm, std::vector<ViewId> views,
      const IdRegistry* names,
      PaintMutation mutation = PaintMutation::kNone);

  virtual MergeAlgorithm algorithm() const = 0;

  /// Feeds REL_i. Emits any transactions that become applicable.
  /// `views` must be a subset of the engine's columns; an empty set
  /// records the update for freshness accounting only.
  virtual void ReceiveRelSet(UpdateId update,
                             const std::vector<ViewId>& views,
                             std::vector<WarehouseTransaction>* out) = 0;

  /// Feeds one action list. Emits any transactions that become
  /// applicable (possibly several, possibly none).
  virtual void ReceiveActionList(ActionList al,
                                 std::vector<WarehouseTransaction>* out) = 0;

  /// The VUT, exposed for tests and traces. The pass-through engine
  /// keeps an empty table.
  virtual const ViewUpdateTable& vut() const = 0;

  /// Action lists held (received but not yet applied) — the merge
  /// holding cost the paper proposes to study (Section 7).
  virtual size_t held_action_lists() const = 0;

  /// Rows currently live in the VUT.
  virtual size_t open_rows() const = 0;
};

/// Shared implementation for the two painting algorithms.
class PaintingEngineBase : public MergeEngine {
 public:
  PaintingEngineBase(std::vector<ViewId> views, const IdRegistry* names,
                     PaintMutation mutation = PaintMutation::kNone)
      : vut_(std::move(views), names), mutation_(mutation) {}

  const ViewUpdateTable& vut() const override { return vut_; }
  size_t held_action_lists() const override { return held_; }
  size_t open_rows() const override { return vut_.num_rows(); }

 protected:
  /// The WT_i arrays: action lists received for row i, arrival order.
  std::map<UpdateId, std::vector<ActionList>> wt_;
  /// Action lists held back: either their REL has not arrived (Section
  /// 4: "the merge process may receive AL^x_j without having received
  /// REL_j"), or an earlier AL from the same view manager is itself held
  /// back (possible under the piggyback REL scheme, where REL sets can
  /// arrive out of update order). Keyed by AL label.
  std::map<UpdateId, std::vector<ActionList>> early_;
  ViewUpdateTable vut_;
  PaintMutation mutation_ = PaintMutation::kNone;
  size_t held_ = 0;
  /// Label of the last AL processed per column; guards the
  /// per-view-manager FIFO invariant the algorithms rely on. Indexed by
  /// column; 0 means "none yet" (labels start at 1).
  std::vector<UpdateId> last_processed_;

  /// Algorithm-specific ProcessAction (the AL is already stored in wt_).
  virtual void DoProcessAction(ViewId view, UpdateId update,
                               std::vector<WarehouseTransaction>* out) = 0;

  /// Shared AL intake: buffer if the row is unknown or an earlier AL of
  /// the same view is buffered; otherwise process, then drain any
  /// buffered ALs that became processable.
  void ReceiveActionListCommon(ActionList al,
                               std::vector<WarehouseTransaction>* out);

  /// Drains processable buffered ALs in label order per view.
  void DrainEarly(std::vector<WarehouseTransaction>* out);

  /// True if some buffered AL of `view` has a label < i.
  bool HasEarlierBufferedAl(ViewId view, UpdateId i) const;

  /// True if every row the AL covers has been allocated (its REL
  /// arrived). Under the piggyback scheme RELs can arrive out of update
  /// order, so a batched AL may name rows the engine has not seen yet;
  /// processing it early would strand those rows white forever.
  bool CoveredRowsKnown(const ActionList& al) const;

  /// Builds the warehouse transaction applying rows `rows` (ascending):
  /// concatenates their WT sets in row order, collects the view set, and
  /// clears the row storage.
  WarehouseTransaction BuildTransaction(const std::vector<UpdateId>& rows);

 private:
  void ProcessOne(ActionList al, std::vector<WarehouseTransaction>* out);
};

class SpaEngine : public PaintingEngineBase {
 public:
  SpaEngine(std::vector<ViewId> views, const IdRegistry* names,
            PaintMutation mutation = PaintMutation::kNone)
      : PaintingEngineBase(std::move(views), names, mutation) {}

  MergeAlgorithm algorithm() const override { return MergeAlgorithm::kSPA; }

  void ReceiveRelSet(UpdateId update, const std::vector<ViewId>& views,
                     std::vector<WarehouseTransaction>* out) override;
  void ReceiveActionList(ActionList al,
                         std::vector<WarehouseTransaction>* out) override;

 protected:
  void DoProcessAction(ViewId view, UpdateId update,
                       std::vector<WarehouseTransaction>* out) override;

 private:
  void ProcessRow(UpdateId i, std::vector<WarehouseTransaction>* out);
};

class PaEngine : public PaintingEngineBase {
 public:
  PaEngine(std::vector<ViewId> views, const IdRegistry* names,
           PaintMutation mutation = PaintMutation::kNone)
      : PaintingEngineBase(std::move(views), names, mutation) {}

  MergeAlgorithm algorithm() const override { return MergeAlgorithm::kPA; }

  void ReceiveRelSet(UpdateId update, const std::vector<ViewId>& views,
                     std::vector<WarehouseTransaction>* out) override;
  void ReceiveActionList(ActionList al,
                         std::vector<WarehouseTransaction>* out) override;

 protected:
  void DoProcessAction(ViewId view, UpdateId update,
                       std::vector<WarehouseTransaction>* out) override;

 private:
  bool ProcessRow(UpdateId i, std::vector<WarehouseTransaction>* out);
  void ProcessFollowers(std::vector<WarehouseTransaction>* out);
  void PurgeFinishedRows();

  std::set<UpdateId> apply_rows_;
};

class PassThroughEngine : public MergeEngine {
 public:
  PassThroughEngine(std::vector<ViewId> views, const IdRegistry* names)
      : vut_(std::move(views), names) {}

  MergeAlgorithm algorithm() const override {
    return MergeAlgorithm::kPassThrough;
  }

  void ReceiveRelSet(UpdateId update, const std::vector<ViewId>& views,
                     std::vector<WarehouseTransaction>* out) override;
  void ReceiveActionList(ActionList al,
                         std::vector<WarehouseTransaction>* out) override;

  const ViewUpdateTable& vut() const override { return vut_; }
  size_t held_action_lists() const override { return 0; }
  size_t open_rows() const override { return 0; }

 private:
  ViewUpdateTable vut_;  // unused; kept so vut() has a stable referent
};

}  // namespace mvc
