#include "merge/merge_engine.h"

#include <algorithm>

#include "common/string_util.h"
#include "viewmgr/view_manager.h"

namespace mvc {

const char* MergeAlgorithmToString(MergeAlgorithm algorithm) {
  switch (algorithm) {
    case MergeAlgorithm::kSPA:
      return "SPA";
    case MergeAlgorithm::kPA:
      return "PA";
    case MergeAlgorithm::kPassThrough:
      return "PassThrough";
  }
  return "?";
}

const char* PaintMutationToString(PaintMutation mutation) {
  switch (mutation) {
    case PaintMutation::kNone:
      return "none";
    case PaintMutation::kSpaSkipWhiteGate:
      return "spa-skip-white-gate";
    case PaintMutation::kSpaSkipOrderGate:
      return "spa-skip-order-gate";
    case PaintMutation::kPaSkipWhiteGate:
      return "pa-skip-white-gate";
  }
  return "?";
}

bool ParsePaintMutation(const std::string& text, PaintMutation* out) {
  for (PaintMutation m :
       {PaintMutation::kNone, PaintMutation::kSpaSkipWhiteGate,
        PaintMutation::kSpaSkipOrderGate, PaintMutation::kPaSkipWhiteGate}) {
    if (text == PaintMutationToString(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

MergeAlgorithm AlgorithmForLevels(const std::vector<uint8_t>& levels) {
  // Weakest manager decides (Section 6.3).
  uint8_t weakest = static_cast<uint8_t>(ConsistencyLevel::kComplete);
  for (uint8_t level : levels) weakest = std::min(weakest, level);
  switch (static_cast<ConsistencyLevel>(weakest)) {
    case ConsistencyLevel::kComplete:
      return MergeAlgorithm::kSPA;
    case ConsistencyLevel::kStrong:
      return MergeAlgorithm::kPA;
    case ConsistencyLevel::kConvergent:
      return MergeAlgorithm::kPassThrough;
  }
  return MergeAlgorithm::kPA;
}

size_t CountSpaApplicableRows(const ViewUpdateTable& vut) {
  size_t ready = 0;
  for (UpdateId i : vut.RowIds()) {
    if (vut.RowHasWhite(i)) continue;  // still waiting for an AL
    const std::vector<ViewId> reds = vut.RowViewsWithColor(i, CellColor::kRed);
    if (reds.empty()) continue;  // nothing held (all gray/black)
    bool blocked = false;
    for (ViewId view : reds) {
      if (vut.HasEarlierRed(i, vut.ViewIndex(view))) {
        blocked = true;  // an earlier update in this column goes first
        break;
      }
    }
    if (!blocked) ++ready;
  }
  return ready;
}

std::unique_ptr<MergeEngine> MergeEngine::Create(MergeAlgorithm algorithm,
                                                 std::vector<ViewId> views,
                                                 const IdRegistry* names,
                                                 PaintMutation mutation) {
  switch (algorithm) {
    case MergeAlgorithm::kSPA:
      return std::make_unique<SpaEngine>(std::move(views), names, mutation);
    case MergeAlgorithm::kPA:
      return std::make_unique<PaEngine>(std::move(views), names, mutation);
    case MergeAlgorithm::kPassThrough:
      return std::make_unique<PassThroughEngine>(std::move(views), names);
  }
  return nullptr;
}

WarehouseTransaction PaintingEngineBase::BuildTransaction(
    const std::vector<UpdateId>& rows) {
  WarehouseTransaction txn;
  txn.rows = rows;
  std::set<ViewId> views;
  for (UpdateId row : rows) {
    auto it = wt_.find(row);
    if (it == wt_.end()) continue;
    for (ActionList& al : it->second) {
      MVC_CHECK(held_ > 0);
      --held_;
      views.insert(al.view);
      txn.actions.push_back(std::move(al));
    }
    wt_.erase(it);
  }
  txn.views.assign(views.begin(), views.end());
  txn.source_state = rows.empty() ? 0 : rows.back();
  return txn;
}

bool PaintingEngineBase::HasEarlierBufferedAl(ViewId view,
                                              UpdateId i) const {
  for (const auto& [label, list] : early_) {
    if (label >= i) break;
    for (const ActionList& al : list) {
      if (al.view == view) return true;
    }
  }
  return false;
}

bool PaintingEngineBase::CoveredRowsKnown(const ActionList& al) const {
  if (al.covered.empty()) return vut_.HasRow(al.update);
  for (UpdateId id : al.covered) {
    if (!vut_.HasRow(id)) return false;
  }
  return true;
}

void PaintingEngineBase::ProcessOne(ActionList al,
                                    std::vector<WarehouseTransaction>* out) {
  const ViewId view = al.view;
  const UpdateId i = al.update;
  if (last_processed_.empty()) last_processed_.resize(vut_.views().size(), 0);
  last_processed_[vut_.ViewIndex(view)] = i;
  wt_[i].push_back(std::move(al));
  DoProcessAction(view, i, out);
}

void PaintingEngineBase::ReceiveActionListCommon(
    ActionList al, std::vector<WarehouseTransaction>* out) {
  ++held_;
  const UpdateId i = al.update;
  if (last_processed_.empty()) last_processed_.resize(vut_.views().size(), 0);
  MVC_CHECK(last_processed_[vut_.ViewIndex(al.view)] < i)
      << "view manager for V#" << al.view
      << " violated per-channel AL order at label " << i;
  if (!CoveredRowsKnown(al) || HasEarlierBufferedAl(al.view, i)) {
    early_[i].push_back(std::move(al));
    return;
  }
  ProcessOne(std::move(al), out);
  DrainEarly(out);
}

void PaintingEngineBase::DrainEarly(std::vector<WarehouseTransaction>* out) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = early_.begin(); it != early_.end() && !progress;) {
      const UpdateId label = it->first;
      std::vector<ActionList>& list = it->second;
      for (size_t k = 0; k < list.size(); ++k) {
        if (!CoveredRowsKnown(list[k])) continue;
        if (HasEarlierBufferedAl(list[k].view, label)) continue;
        ActionList al = std::move(list[k]);
        list.erase(list.begin() + static_cast<ptrdiff_t>(k));
        if (list.empty()) early_.erase(it);  // `it` must not be touched after
        ProcessOne(std::move(al), out);
        progress = true;  // containers mutated; restart the scan
        break;
      }
      if (!progress) ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// Simple Painting Algorithm (Algorithm 1).

void SpaEngine::ReceiveRelSet(UpdateId update,
                              const std::vector<ViewId>& views,
                              std::vector<WarehouseTransaction>* out) {
  vut_.AllocateRow(update, views);
  if (views.empty()) {
    // No view affected: nothing will ever arrive for this row.
    vut_.PurgeRow(update);
    return;
  }
  DrainEarly(out);
}

void SpaEngine::ReceiveActionList(ActionList al,
                                  std::vector<WarehouseTransaction>* out) {
  MVC_CHECK_EQ(al.first_update, al.update)
      << "SPA requires complete view managers (one AL per update); AL "
      << al.ToString() << " covers a batch";
  ReceiveActionListCommon(std::move(al), out);
}

void SpaEngine::DoProcessAction(ViewId view, UpdateId update,
                                std::vector<WarehouseTransaction>* out) {
  vut_.SetColor(update, vut_.ViewIndex(view), CellColor::kRed);
  ProcessRow(update, out);
}

void SpaEngine::ProcessRow(UpdateId i,
                           std::vector<WarehouseTransaction>* out) {
  // Line 1: some action list for this row has not arrived yet.
  if (mutation_ != PaintMutation::kSpaSkipWhiteGate && vut_.RowHasWhite(i)) {
    return;
  }
  // Line 2: a previous list from the same view manager is still pending;
  // lists from one manager must be applied in the order generated.
  if (mutation_ != PaintMutation::kSpaSkipOrderGate) {
    for (size_t x = 0; x < vut_.views().size(); ++x) {
      if (vut_.color(i, x) == CellColor::kRed && vut_.HasEarlierRed(i, x)) {
        return;
      }
    }
  }
  // Line 3: paint the row gray.
  for (size_t x = 0; x < vut_.views().size(); ++x) {
    if (vut_.color(i, x) == CellColor::kRed) {
      vut_.SetColor(i, x, CellColor::kGray);
    }
  }
  // Line 4: apply all actions in WT_i as a single warehouse transaction.
  WarehouseTransaction txn = BuildTransaction({i});
  if (!txn.actions.empty()) out->push_back(std::move(txn));
  // Line 5: applying this row may unblock later rows in its columns.
  std::vector<UpdateId> followers;
  for (size_t x = 0; x < vut_.views().size(); ++x) {
    if (vut_.color(i, x) == CellColor::kGray) {
      UpdateId next = vut_.NextRed(i, x);
      if (next != 0) followers.push_back(next);
    }
  }
  // Line 6: purge row i.
  vut_.PurgeRow(i);
  for (UpdateId next : followers) {
    if (vut_.HasRow(next)) ProcessRow(next, out);
  }
}

// ---------------------------------------------------------------------------
// Painting Algorithm (Algorithm 2).

void PaEngine::ReceiveRelSet(UpdateId update,
                             const std::vector<ViewId>& views,
                             std::vector<WarehouseTransaction>* out) {
  vut_.AllocateRow(update, views);  // states initialized to 0
  if (views.empty()) {
    vut_.PurgeRow(update);
    return;
  }
  DrainEarly(out);
}

void PaEngine::ReceiveActionList(ActionList al,
                                 std::vector<WarehouseTransaction>* out) {
  ReceiveActionListCommon(std::move(al), out);
}

void PaEngine::DoProcessAction(ViewId view, UpdateId update,
                               std::vector<WarehouseTransaction>* out) {
  const size_t x = vut_.ViewIndex(view);
  // All white entries at or before `update` in column x are covered by
  // this AL (the view manager batches every pending relevant update).
  for (UpdateId row : vut_.WhiteRowsUpTo(update, x)) {
    vut_.SetColor(row, x, CellColor::kRed);
    vut_.SetState(row, x, update);
  }
  apply_rows_.clear();
  if (ProcessRow(update, out)) {
    ProcessFollowers(out);
  }
  apply_rows_.clear();
}

bool PaEngine::ProcessRow(UpdateId i,
                          std::vector<WarehouseTransaction>* out) {
  // Line 1: already scheduled in this wave (recursion terminator).
  if (apply_rows_.count(i) > 0) return true;
  if (!vut_.HasRow(i)) {
    // Row applied and purged earlier; nothing blocks on it.
    return true;
  }
  // Line 2: waiting for some action list.
  if (mutation_ != PaintMutation::kPaSkipWhiteGate && vut_.RowHasWhite(i)) {
    return false;
  }
  // Line 3.
  apply_rows_.insert(i);
  // Line 4: previous red rows in this row's red columns must be applied
  // together (in-order delivery per view manager).
  for (size_t x = 0; x < vut_.views().size(); ++x) {
    if (vut_.color(i, x) != CellColor::kRed) continue;
    for (UpdateId prev : vut_.EarlierRedRows(i, x)) {
      if (!ProcessRow(prev, out)) return false;
    }
  }
  // Line 5: entries bundled into a later AL force that row in too.
  for (size_t x = 0; x < vut_.views().size(); ++x) {
    const UpdateId bundled = vut_.state(i, x);
    if (bundled > i) {
      if (!ProcessRow(bundled, out)) return false;
    }
  }
  // Only the outermost call performs the apply; nested calls return and
  // let the caller accumulate. Detect the outermost call by checking
  // whether we are the row that started the wave — simplest correct
  // variant: perform lines 6-10 whenever this row completes and every
  // row collected so far is ready. The paper's formulation applies at
  // the top of the recursion; doing it here for the same set yields the
  // same transaction because apply_rows_ is shared across the wave.
  return true;
}

void PaEngine::ProcessFollowers(std::vector<WarehouseTransaction>* out) {
  // Lines 6-8: paint the wave gray and emit one transaction.
  std::vector<UpdateId> rows(apply_rows_.begin(), apply_rows_.end());
  std::sort(rows.begin(), rows.end());
  for (UpdateId row : rows) {
    for (size_t x = 0; x < vut_.views().size(); ++x) {
      if (vut_.color(row, x) == CellColor::kRed) {
        vut_.SetColor(row, x, CellColor::kGray);
      }
    }
  }
  WarehouseTransaction txn = BuildTransaction(rows);
  if (!txn.actions.empty()) out->push_back(std::move(txn));
  apply_rows_.clear();
  // Line 9: applying this wave may unblock later red rows.
  std::vector<UpdateId> candidates;
  for (UpdateId row : rows) {
    if (!vut_.HasRow(row)) continue;
    for (size_t x = 0; x < vut_.views().size(); ++x) {
      if (vut_.color(row, x) == CellColor::kGray) {
        UpdateId next = vut_.NextRed(row, x);
        if (next != 0) candidates.push_back(next);
      }
    }
  }
  // Line 10: purge rows that are entirely black or gray.
  PurgeFinishedRows();
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  for (UpdateId next : candidates) {
    if (!vut_.HasRow(next)) continue;
    apply_rows_.clear();
    if (ProcessRow(next, out)) {
      ProcessFollowers(out);
    }
  }
  apply_rows_.clear();
}

void PaEngine::PurgeFinishedRows() {
  for (UpdateId row : vut_.RowIds()) {
    if (vut_.RowAllBlackOrGray(row)) vut_.PurgeRow(row);
  }
}

// ---------------------------------------------------------------------------
// Pass-through (convergent view managers, Section 6.3).

void PassThroughEngine::ReceiveRelSet(UpdateId update,
                                      const std::vector<ViewId>& views,
                                      std::vector<WarehouseTransaction>* out) {
  (void)update;
  (void)views;
  (void)out;
}

void PassThroughEngine::ReceiveActionList(
    ActionList al, std::vector<WarehouseTransaction>* out) {
  WarehouseTransaction txn;
  // Release-mode ALs may omit `covered`; the label range collapses to
  // the single labeled update for row accounting.
  txn.rows = al.covered.empty() ? std::vector<UpdateId>{al.update}
                                : al.covered;
  txn.views = {al.view};
  txn.source_state = al.update;
  txn.actions.push_back(std::move(al));
  out->push_back(std::move(txn));
}

}  // namespace mvc
