// A warehouse reader: the Section 1.1 customer-inquiry application.
//
// Issues atomic multi-view reads against the warehouse at scheduled
// times and records every snapshot it receives, so tests and examples
// can verify *reader-visible* mutual consistency — not only the
// oracle's post-hoc view of commit states, but what an application
// concurrently querying the warehouse would actually have seen.
//
// The warehouse answers with an O(1) MVCC SnapshotHandle; the reader
// materializes it into flat Tables here, at the consumption boundary,
// so the flattening cost lands on the reader, never on the warehouse
// actor. Readers are pool-friendly: WarehouseSystem::AttachReaderPool
// spawns N of them with independent Poisson schedules, and each records
// its request round-trips into read.latency_us when observability is on.

#pragma once

#include <map>
#include <vector>

#include "common/rng.h"
#include "net/protocol.h"
#include "net/runtime.h"
#include "obs/metrics.h"
#include "storage/catalog.h"
#include "storage/id_registry.h"

namespace mvc {

/// A Poisson-process read schedule: `count` arrival times after `start`
/// with exponential inter-arrival gaps of the given mean (microseconds).
/// Deterministic in the seed, like every draw in the library.
inline std::vector<TimeMicros> PoissonReadSchedule(uint64_t seed,
                                                   size_t count,
                                                   double mean_interval_us,
                                                   TimeMicros start = 0) {
  Rng rng(seed);
  std::vector<TimeMicros> at;
  at.reserve(count);
  double t = static_cast<double>(start);
  for (size_t i = 0; i < count; ++i) {
    t += rng.Exponential(mean_interval_us);
    at.push_back(static_cast<TimeMicros>(t));
  }
  return at;
}

/// Configuration for WarehouseSystem::AttachReaderPool.
struct ReaderPoolOptions {
  /// Number of independent reader processes.
  size_t num_readers = 1;
  /// Reads each reader issues over the run.
  size_t reads_per_reader = 8;
  /// Mean of the exponential inter-read gap (Poisson arrivals).
  double mean_interval_us = 1000.0;
  /// First read happens at or after this time.
  TimeMicros start = 0;
  /// Root seed; each reader gets a forked stream.
  uint64_t seed = 17;
  /// View names to read atomically (empty = every view).
  std::vector<std::string> views;
};

class WarehouseReader : public Process {
 public:
  /// Reads `views` (interned ids; empty = all views) from `warehouse` at
  /// each time in `read_at` (simulated microseconds from start).
  WarehouseReader(std::string name, std::vector<ViewId> views,
                  std::vector<TimeMicros> read_at)
      : Process(std::move(name)),
        views_(std::move(views)),
        read_at_(std::move(read_at)) {}

  void SetWarehouse(ProcessId warehouse) { warehouse_ = warehouse; }

  /// Makes every read a time-travel read of the given commit instead of
  /// a read of the current state. A commit that has been garbage-
  /// collected produces an Observation with a non-empty error.
  void SetAsOfCommit(int64_t commit) { as_of_commit_ = commit; }

  /// Registers this reader's read.latency_us histogram. Must happen at
  /// wiring time, before the runtime starts.
  void EnableObservability(obs::MetricsRegistry* metrics) {
    if (metrics == nullptr) return;
    latency_us_ = metrics->RegisterHistogram(
        std::string("read.latency_us{process=\"") + name() + "\"}", "us");
  }

  struct Observation {
    TimeMicros at = 0;
    int64_t as_of_commit = 0;
    std::vector<Table> snapshots;
    /// Non-empty when the warehouse refused the read (e.g. the requested
    /// version fell out of the retained window).
    std::string error;
    bool ok() const { return error.empty(); }
  };
  const std::vector<Observation>& observations() const {
    return observations_;
  }

  void OnStart() override {
    for (TimeMicros at : read_at_) {
      auto tick = std::make_unique<TickMsg>();
      ScheduleSelf(std::move(tick), at);
    }
  }

  void OnMessage(ProcessId from, MessagePtr msg) override {
    (void)from;
    switch (msg->kind) {
      case Message::Kind::kTick: {
        auto read = std::make_unique<ReadViewsMsg>();
        read->request_id = ++next_request_;
        read->views = views_;
        read->as_of_commit = as_of_commit_;
        in_flight_[read->request_id] = Now();
        Send(warehouse_, std::move(read));
        return;
      }
      case Message::Kind::kViewsSnapshot: {
        auto* snap = static_cast<ViewsSnapshotMsg*>(msg.get());
        auto sent = in_flight_.find(snap->request_id);
        if (latency_us_ != nullptr && sent != in_flight_.end()) {
          latency_us_->Record(Now() - sent->second);
        }
        if (sent != in_flight_.end()) in_flight_.erase(sent);
        Observation obs;
        obs.at = Now();
        obs.as_of_commit = snap->as_of_commit;
        obs.error = snap->error;
        // Materialize the MVCC handle (or take the legacy clones) here,
        // on the reader — the consumption boundary — and release the
        // handle so the version can be collected.
        if (snap->ok()) obs.snapshots = snap->TakeTables();
        snap->handle.Release();
        observations_.push_back(std::move(obs));
        return;
      }
      default:
        MVC_LOG_ERROR() << "reader: unexpected message " << msg->Summary();
    }
  }

 private:
  std::vector<ViewId> views_;
  std::vector<TimeMicros> read_at_;
  ProcessId warehouse_ = kInvalidProcess;
  int64_t as_of_commit_ = -1;
  int64_t next_request_ = 0;
  /// request_id -> send time, for the latency histogram.
  std::map<int64_t, TimeMicros> in_flight_;
  obs::Histogram* latency_us_ = nullptr;
  std::vector<Observation> observations_;
};

}  // namespace mvc
