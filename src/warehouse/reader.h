// A warehouse reader: the Section 1.1 customer-inquiry application.
//
// Issues atomic multi-view reads against the warehouse at scheduled
// times and records every snapshot it receives, so tests and examples
// can verify *reader-visible* mutual consistency — not only the
// oracle's post-hoc view of commit states, but what an application
// concurrently querying the warehouse would actually have seen.
//
// The warehouse answers with an O(1) MVCC SnapshotHandle; the reader
// materializes it into flat Tables here, at the consumption boundary,
// so the flattening cost lands on the reader, never on the warehouse
// actor. Readers are pool-friendly: WarehouseSystem::AttachReaderPool
// spawns N of them with independent Poisson schedules, and each records
// its request round-trips into read.latency_us when observability is on.

#pragma once

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "net/protocol.h"
#include "net/runtime.h"
#include "obs/metrics.h"
#include "storage/catalog.h"
#include "storage/id_registry.h"

namespace mvc {

/// A Poisson-process read schedule: `count` arrival times after `start`
/// with exponential inter-arrival gaps of the given mean (microseconds).
/// Deterministic in the seed, like every draw in the library.
inline std::vector<TimeMicros> PoissonReadSchedule(uint64_t seed,
                                                   size_t count,
                                                   double mean_interval_us,
                                                   TimeMicros start = 0) {
  Rng rng(seed);
  std::vector<TimeMicros> at;
  at.reserve(count);
  double t = static_cast<double>(start);
  for (size_t i = 0; i < count; ++i) {
    t += rng.Exponential(mean_interval_us);
    at.push_back(static_cast<TimeMicros>(t));
  }
  return at;
}

/// Query-workload settings for a reader (pool): instead of flattening
/// whole views with ReadViewsMsg, the reader ships ScanQuerys to the
/// warehouse (QueryViewMsg) with Zipf-skewed view popularity and bursty
/// arrivals — the production read-tier simulation.
struct ReaderQueryOptions {
  bool enabled = false;
  /// Zipf skew over the reader's view list: the first views are the hot
  /// ones. 0 = uniform popularity.
  double zipf_theta = 0.99;
  /// Queries issued per Poisson arrival (a burst lands at one instant,
  /// which is what saturates admission control).
  size_t burst = 1;
  /// Column the range queries bound; must exist in every queried view.
  std::string column;
  /// Key domain range endpoints are drawn from.
  int64_t key_min = 0;
  int64_t key_max = 0;
  /// Each query covers [lo, lo + range_width] inclusive.
  int64_t range_width = 0;
};

/// Configuration for WarehouseSystem::AttachReaderPool.
struct ReaderPoolOptions {
  /// Number of independent reader processes.
  size_t num_readers = 1;
  /// Reads each reader issues over the run.
  size_t reads_per_reader = 8;
  /// Mean of the exponential inter-read gap (Poisson arrivals).
  double mean_interval_us = 1000.0;
  /// First read happens at or after this time.
  TimeMicros start = 0;
  /// Root seed; each reader gets a forked stream.
  uint64_t seed = 17;
  /// View names to read atomically (empty = every view).
  std::vector<std::string> views;
  /// Scan-query workload (off = classic whole-view reads).
  ReaderQueryOptions query;
};

class WarehouseReader : public Process {
 public:
  /// Reads `views` (interned ids; empty = all views) from `warehouse` at
  /// each time in `read_at` (simulated microseconds from start).
  WarehouseReader(std::string name, std::vector<ViewId> views,
                  std::vector<TimeMicros> read_at)
      : Process(std::move(name)),
        views_(std::move(views)),
        read_at_(std::move(read_at)) {}

  void SetWarehouse(ProcessId warehouse) { warehouse_ = warehouse; }

  /// Makes every read a time-travel read of the given commit instead of
  /// a read of the current state. A commit that has been garbage-
  /// collected produces an Observation with a non-empty error.
  void SetAsOfCommit(int64_t commit) { as_of_commit_ = commit; }

  /// Switches this reader to the scan-query workload: each scheduled
  /// arrival issues `query.burst` QueryViewMsgs against Zipf-picked
  /// views. Must be called before EnableObservability and before the
  /// runtime starts. `seed` drives the view/range draws.
  void SetQueryOptions(const ReaderQueryOptions& query, uint64_t seed) {
    MVC_CHECK(!views_.empty()) << "query workload needs a view list";
    query_ = query;
    query_rng_ = Rng(seed);
  }

  /// Bounds on the in-flight request map: entries older than `ttl_us`
  /// are aged out at the next arrival (responses lost to a warehouse
  /// crash must not leak forever), and the map never exceeds `max_size`
  /// entries (oldest evicted first).
  void SetInFlightLimits(TimeMicros ttl_us, size_t max_size) {
    in_flight_ttl_us_ = ttl_us;
    in_flight_cap_ = max_size;
  }

  /// Registers this reader's read.latency_us histogram (and
  /// read.query_latency_us when the query workload is on). Must happen
  /// at wiring time, before the runtime starts.
  void EnableObservability(obs::MetricsRegistry* metrics) {
    if (metrics == nullptr) return;
    latency_us_ = metrics->RegisterHistogram(
        std::string("read.latency_us{process=\"") + name() + "\"}", "us");
    if (query_.enabled) {
      query_latency_us_ = metrics->RegisterHistogram(
          std::string("read.query_latency_us{process=\"") + name() + "\"}",
          "us");
    }
  }

  struct Observation {
    TimeMicros at = 0;
    int64_t as_of_commit = 0;
    std::vector<Table> snapshots;
    /// Non-empty when the warehouse refused the read (e.g. the requested
    /// version fell out of the retained window).
    std::string error;
    bool ok() const { return error.empty(); }
  };
  const std::vector<Observation>& observations() const {
    return observations_;
  }

  /// One answered (or shed) scan query, with the query kept verbatim so
  /// property tests can replay it against an oracle snapshot.
  struct QueryObservation {
    TimeMicros at = 0;
    int64_t as_of_commit = -1;
    ViewId view = kInvalidView;
    ScanQuery query;
    std::vector<Row> rows;
    int64_t matched_count = 0;
    int64_t rows_scanned = 0;
    bool shed = false;
    std::string error;
    bool ok() const { return error.empty() && !shed; }
  };
  const std::vector<QueryObservation>& query_observations() const {
    return query_observations_;
  }

  /// Shed responses received (admission control rejections).
  int64_t queries_shed() const { return queries_shed_; }
  /// In-flight entries dropped by TTL/cap hygiene (lost responses).
  int64_t in_flight_expired() const { return in_flight_expired_; }
  size_t in_flight_size() const { return in_flight_.size(); }

  void OnStart() override {
    for (TimeMicros at : read_at_) {
      auto tick = std::make_unique<TickMsg>();
      ScheduleSelf(std::move(tick), at);
    }
  }

  void OnMessage(ProcessId from, MessagePtr msg) override {
    (void)from;
    switch (msg->kind) {
      case Message::Kind::kTick: {
        AgeOutInFlight();
        if (query_.enabled) {
          IssueQueryBurst();
          return;
        }
        auto read = std::make_unique<ReadViewsMsg>();
        read->request_id = ++next_request_;
        read->views = views_;
        read->as_of_commit = as_of_commit_;
        InFlightRequest sent;
        sent.sent_at = Now();
        TrackInFlight(read->request_id, std::move(sent));
        Send(warehouse_, std::move(read));
        return;
      }
      case Message::Kind::kViewsSnapshot: {
        auto* snap = static_cast<ViewsSnapshotMsg*>(msg.get());
        auto sent = in_flight_.find(snap->request_id);
        if (sent != in_flight_.end()) {
          // Single lookup: record the round trip and retire the entry.
          if (latency_us_ != nullptr) {
            latency_us_->Record(Now() - sent->second.sent_at);
          }
          in_flight_.erase(sent);
        }
        Observation obs;
        obs.at = Now();
        obs.as_of_commit = snap->as_of_commit;
        obs.error = snap->error;
        // Materialize the MVCC handle (or take the legacy clones) here,
        // on the reader — the consumption boundary — and release the
        // handle so the version can be collected.
        if (snap->ok()) obs.snapshots = snap->TakeTables();
        snap->handle.Release();
        observations_.push_back(std::move(obs));
        return;
      }
      case Message::Kind::kQueryResult: {
        auto* result = static_cast<QueryResultMsg*>(msg.get());
        QueryObservation obs;
        obs.at = Now();
        auto sent = in_flight_.find(result->request_id);
        if (sent != in_flight_.end()) {
          if (query_latency_us_ != nullptr) {
            query_latency_us_->Record(Now() - sent->second.sent_at);
          }
          obs.view = sent->second.view;
          obs.query = std::move(sent->second.query);
          in_flight_.erase(sent);
        }
        obs.as_of_commit = result->as_of_commit;
        obs.rows = std::move(result->rows);
        obs.matched_count = result->matched_count;
        obs.rows_scanned = result->rows_scanned;
        obs.shed = result->shed;
        obs.error = result->error;
        if (result->shed) ++queries_shed_;
        query_observations_.push_back(std::move(obs));
        return;
      }
      default:
        MVC_LOG_ERROR() << "reader: unexpected message " << msg->Summary();
    }
  }

 private:
  /// Context kept per unanswered request; queries keep their ScanQuery
  /// so the eventual response can be checked against an oracle.
  struct InFlightRequest {
    TimeMicros sent_at = 0;
    ViewId view = kInvalidView;
    ScanQuery query;
  };

  /// Drops entries whose response is presumed lost (older than the TTL)
  /// and enforces the hard size cap, oldest first — request ids are
  /// monotonic, so map order is send order. Without this a reader
  /// outliving a crashed warehouse grows in_flight_ without bound.
  void AgeOutInFlight() {
    const TimeMicros now = Now();
    while (!in_flight_.empty()) {
      const auto& oldest = *in_flight_.begin();
      const bool expired = in_flight_ttl_us_ > 0 &&
                           now - oldest.second.sent_at > in_flight_ttl_us_;
      const bool over_cap =
          in_flight_cap_ > 0 && in_flight_.size() >= in_flight_cap_;
      if (!expired && !over_cap) break;
      in_flight_.erase(in_flight_.begin());
      ++in_flight_expired_;
    }
  }

  void TrackInFlight(int64_t request_id, InFlightRequest request) {
    in_flight_[request_id] = std::move(request);
  }

  /// One Poisson arrival in query mode: `burst` scan queries against
  /// Zipf-picked views (the first views in the list are the popular
  /// ones), each covering a uniform random key range.
  void IssueQueryBurst() {
    for (size_t i = 0; i < std::max<size_t>(1, query_.burst); ++i) {
      const ViewId view = views_[static_cast<size_t>(
          query_rng_.Zipf(static_cast<int64_t>(views_.size()),
                          query_.zipf_theta))];
      const int64_t span = query_.key_max - query_.key_min;
      const int64_t max_lo =
          query_.key_min + (span > query_.range_width
                                ? span - query_.range_width
                                : 0);
      const int64_t lo = query_rng_.UniformInt(query_.key_min, max_lo);
      auto msg = std::make_unique<QueryViewMsg>();
      msg->request_id = ++next_request_;
      msg->view = view;
      msg->as_of_commit = as_of_commit_;
      msg->query = ScanQuery::Range(query_.column, Value(lo),
                                    Value(lo + query_.range_width));
      InFlightRequest sent;
      sent.sent_at = Now();
      sent.view = view;
      sent.query = msg->query;
      TrackInFlight(msg->request_id, std::move(sent));
      Send(warehouse_, std::move(msg));
    }
  }

  std::vector<ViewId> views_;
  std::vector<TimeMicros> read_at_;
  ProcessId warehouse_ = kInvalidProcess;
  int64_t as_of_commit_ = -1;
  int64_t next_request_ = 0;
  ReaderQueryOptions query_;
  Rng query_rng_{0};
  /// request_id -> send context; bounded by AgeOutInFlight.
  std::map<int64_t, InFlightRequest> in_flight_;
  TimeMicros in_flight_ttl_us_ = 60 * 1000 * 1000;
  size_t in_flight_cap_ = 1024;
  int64_t in_flight_expired_ = 0;
  int64_t queries_shed_ = 0;
  obs::Histogram* latency_us_ = nullptr;
  obs::Histogram* query_latency_us_ = nullptr;
  std::vector<Observation> observations_;
  std::vector<QueryObservation> query_observations_;
};

}  // namespace mvc
