// A warehouse reader: the Section 1.1 customer-inquiry application.
//
// Issues atomic multi-view reads against the warehouse at scheduled
// times and records every snapshot it receives, so tests and examples
// can verify *reader-visible* mutual consistency — not only the
// oracle's post-hoc view of commit states, but what an application
// concurrently querying the warehouse would actually have seen.

#pragma once

#include <vector>

#include "net/protocol.h"
#include "net/runtime.h"
#include "storage/catalog.h"
#include "storage/id_registry.h"

namespace mvc {

class WarehouseReader : public Process {
 public:
  /// Reads `views` (interned ids; empty = all views) from `warehouse` at
  /// each time in `read_at` (simulated microseconds from start).
  WarehouseReader(std::string name, std::vector<ViewId> views,
                  std::vector<TimeMicros> read_at)
      : Process(std::move(name)),
        views_(std::move(views)),
        read_at_(std::move(read_at)) {}

  void SetWarehouse(ProcessId warehouse) { warehouse_ = warehouse; }

  struct Observation {
    TimeMicros at = 0;
    int64_t as_of_commit = 0;
    std::vector<Table> snapshots;
  };
  const std::vector<Observation>& observations() const {
    return observations_;
  }

  void OnStart() override {
    for (TimeMicros at : read_at_) {
      auto tick = std::make_unique<TickMsg>();
      ScheduleSelf(std::move(tick), at);
    }
  }

  void OnMessage(ProcessId from, MessagePtr msg) override {
    (void)from;
    switch (msg->kind) {
      case Message::Kind::kTick: {
        auto read = std::make_unique<ReadViewsMsg>();
        read->request_id = ++next_request_;
        read->views = views_;
        Send(warehouse_, std::move(read));
        return;
      }
      case Message::Kind::kViewsSnapshot: {
        auto* snap = static_cast<ViewsSnapshotMsg*>(msg.get());
        Observation obs;
        obs.at = Now();
        obs.as_of_commit = snap->as_of_commit;
        obs.snapshots = std::move(snap->snapshots);
        observations_.push_back(std::move(obs));
        return;
      }
      default:
        MVC_LOG_ERROR() << "reader: unexpected message " << msg->Summary();
    }
  }

 private:
  std::vector<ViewId> views_;
  std::vector<TimeMicros> read_at_;
  ProcessId warehouse_ = kInvalidProcess;
  int64_t next_request_ = 0;
  std::vector<Observation> observations_;
};

}  // namespace mvc
