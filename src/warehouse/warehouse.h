// The warehouse: stores the materialized views and applies
// view-maintenance transactions atomically.
//
// Each WarehouseTransaction is applied as one atomic unit (all of its
// action lists together), matching the paper's requirement that one
// source update's effects on multiple views appear simultaneously.
//
// Commit ordering (Section 4.3): a real DBMS may finish transactions out
// of submission order. The warehouse models this with a randomized
// per-transaction processing delay. When `honor_dependencies` is set it
// respects the dependency edges the merge process attaches (a dependent
// transaction waits for its predecessors); switching it off while
// keeping reordering on reproduces the WT3-before-WT1 anomaly the paper
// warns about — the MVC tests use exactly this ablation.
//
// Read path (MVCC): alongside the flat view catalog (the maintenance
// working copy the oracle observes), every commit publishes an immutable
// version into a VersionedStore with structural sharing — a commit copies
// only the chunks its action lists touch. Reads are answered with O(1)
// SnapshotHandles instead of catalog clones; time-travel reads
// (ReadViewsMsg::as_of_commit) index the store's retained window and a
// read of a garbage-collected version gets a clean error response. The
// pre-MVCC clone-based history survives behind
// WarehouseOptions::legacy_clone_history for golden comparisons.

#pragma once

#include <functional>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "compact/compact_messages.h"
#include "net/protocol.h"
#include "net/runtime.h"
#include "obs/metrics.h"
#include "storage/catalog.h"
#include "storage/id_registry.h"
#include "storage/versioned_store.h"

namespace mvc {

/// Group commit (scale-out ingest): transactions from independent merge
/// groups are buffered and folded into one versioned-store commit,
/// bounding the number of store versions (and snapshot churn) under a
/// sharded ingest fan-in. The flat catalog, the commit observer, and the
/// per-transaction acks all still advance one transaction at a time, so
/// the consistency oracle and the merge processes are oblivious; only
/// the version the MVCC read path sees is batched. Configured through
/// SystemConfig::ingest.
struct GroupCommitOptions {
  bool enabled = false;
  /// Flush when this many transactions are buffered.
  size_t max_batch = 8;
  /// Flush deadline: a buffered transaction waits at most this long for
  /// the batch to fill. 0 flushes on the next scheduler step.
  TimeMicros max_delay_us = 0;
};

struct WarehouseOptions {
  /// Fixed part of the per-transaction processing time.
  TimeMicros apply_delay = 0;
  /// Uniform extra processing time in [0, apply_jitter]; non-zero values
  /// let independent transactions finish out of submission order.
  TimeMicros apply_jitter = 0;
  /// Respect WarehouseTransaction::depends_on (commit dependent
  /// transactions in submission order). Disabling this while jitter is
  /// non-zero demonstrates the Section 4.3 anomaly.
  bool honor_dependencies = true;
  /// Seed for the jitter draws.
  uint64_t seed = 11;
  /// DEPRECATED — use max_retained_versions. Number of past warehouse
  /// states retained for time-travel reads (ReadViewsMsg::as_of_commit).
  /// Kept as a retention hint: the MVCC store retains
  /// max(history_depth, max_retained_versions) past versions, so configs
  /// written against the clone era keep their time-travel window. The
  /// clone ring itself is only maintained (and only serves reads) when
  /// legacy_clone_history is also set.
  size_t history_depth = 0;
  /// Number of past versions the MVCC store keeps reachable for
  /// time-travel reads, on top of the always-readable current version.
  /// Versions older than the window survive only while a live snapshot
  /// handle pins them; reading them returns a clean error. O(delta)
  /// per-commit cost regardless of value — safe for production sizing.
  size_t max_retained_versions = 0;
  /// Serve reads from full catalog clones (the pre-MVCC implementation),
  /// including its crash-on-out-of-window time-travel semantics.
  /// Requires history_depth for time travel. Exists for the golden
  /// byte-identical comparison and the read-scaling baseline; do not use
  /// in new configurations.
  bool legacy_clone_history = false;

  /// --- Snapshot-serving query tier (QueryViewMsg admission control) ---

  /// Queries admitted but not yet answered before new arrivals are shed
  /// with an explicit QueryResultMsg{shed=true} instead of queueing
  /// unboundedly. 0 = unbounded admission (never sheds). Only meaningful
  /// with a non-zero service time — with instant service nothing stays
  /// in flight.
  size_t max_inflight_queries = 0;
  /// Simulated per-query service time: the query executes at admission
  /// (against the snapshot pinned then) and the response is delivered
  /// after this delay, modeling executor occupancy. 0 = answer inline.
  TimeMicros query_service_us = 0;
  /// Additional service time per 1000 distinct rows scanned, so big
  /// scans occupy the executor longer than point probes.
  TimeMicros query_cost_per_krow = 0;

  /// Group commit (see GroupCommitOptions; wired from
  /// SystemConfig::ingest.group_commit).
  GroupCommitOptions group_commit;

  /// Past versions the MVCC store retains (see above).
  size_t EffectiveRetention() const {
    return history_depth > max_retained_versions ? history_depth
                                                 : max_retained_versions;
  }
};

class WarehouseProcess : public Process {
 public:
  explicit WarehouseProcess(std::string name, WarehouseOptions options = {})
      : Process(std::move(name)),
        options_(options),
        rng_(options.seed),
        store_(options.EffectiveRetention()) {}

  /// --- Setup ---

  /// Resolves ViewIds in incoming transactions/reads back to catalog
  /// names; must be set before the runtime starts and outlive the
  /// process.
  void SetRegistry(const IdRegistry* registry) { registry_ = registry; }

  /// Registers the warehouse's snapshot metrics
  /// (warehouse.snapshot_bytes_shared, warehouse.versions_live). Must be
  /// called at wiring time, like every registry registration.
  void EnableObservability(obs::MetricsRegistry* metrics);

  Status CreateView(const std::string& view, const Schema& schema) {
    MVC_RETURN_IF_ERROR(views_.CreateTable(view, schema));
    return store_.CreateTable(view, schema);
  }

  /// Installs the initial materialization of a view.
  Status InitializeView(const std::string& view, const Table& contents);

  /// Points the warehouse at a CompactorProcess: every
  /// `stats_every_commits` commits it sends a CompactionStatsMsg with
  /// per-version detail capped at `max_version_detail`, and it answers
  /// the compactor's CompactionRequestMsgs between commits. Must be set
  /// before the runtime starts.
  void SetCompactor(ProcessId compactor, int64_t stats_every_commits,
                    size_t max_version_detail);

  /// Invoked after every commit with the transaction, the new view
  /// catalog, and the commit time. The consistency oracle hooks this.
  void SetCommitObserver(
      std::function<void(ProcessId submitter, const WarehouseTransaction&,
                         const Catalog&, TimeMicros)>
          observer) {
    observer_ = std::move(observer);
  }

  /// --- Introspection ---

  const Catalog& views() const { return views_; }
  int64_t transactions_committed() const { return committed_count_; }
  int64_t actions_applied() const { return actions_applied_; }
  /// The MVCC store behind the read path (GC state, live versions).
  const VersionedStore& store() const { return store_; }

  void OnStart() override { EnsureInitialVersion(); }
  void OnMessage(ProcessId from, MessagePtr msg) override;

 private:
  struct InFlight {
    ProcessId submitter;
    WarehouseTransaction txn;
  };

  /// True if every dependency of `txn` (from `submitter`) has committed.
  bool DependenciesMet(ProcessId submitter,
                       const WarehouseTransaction& txn) const;

  /// Applies the transaction (flat catalog, commit count, observer,
  /// ack); the caller decides when the store version is published.
  void Apply(const InFlight& in_flight);
  void Commit(InFlight in_flight);
  /// Group-commit entry: applies the transaction to the flat catalog
  /// (observer + ack fire per transaction, in order) but defers the
  /// versioned-store publish to the batch flush.
  void Enqueue(InFlight in_flight);
  /// Publishes one store version covering every buffered transaction.
  void FlushBatch();
  /// Group commit on: Enqueue; off: Commit. Both end dependency-ready.
  void Admit(InFlight in_flight);
  void RetryHeld();

  Status ApplyActionList(const ActionList& al);

  /// Publishes commit 0 (the initialized, pre-commit state) into the
  /// versioned store — and seeds the legacy clone ring — exactly once.
  void EnsureInitialVersion();

  /// The clone ring is maintained only on the explicit legacy path.
  bool LegacyRingActive() const {
    return options_.legacy_clone_history && options_.history_depth > 0;
  }

  void ServeRead(ProcessId from, const ReadViewsMsg& read);

  /// Executes one ScanQuery in place on a pinned snapshot and answers
  /// with the matching rows — or an explicit shed response when the
  /// in-flight budget is exhausted. With a non-zero service cost the
  /// query still executes at admission time (snapshot semantics) but
  /// the response is delivered after the modeled delay via a
  /// negative-tagged self tick.
  void ServeQuery(ProcessId from, const QueryViewMsg& query);

  /// Sends a stats snapshot to the compactor (post-commit trigger).
  void SendCompactionStats();
  /// Threshold-crossing trigger: fires whenever the commit count has
  /// advanced by at least stats_every_commits since the last send (a
  /// batched flush may jump the counter past several multiples).
  void MaybeSendCompactionStats();

  /// Applies/serves one compactor request: collapse (apply inline),
  /// squash fetch (pin + hand out a handle), squash swap (atomic
  /// version rebuild). Each is O(spec), never O(store) — compaction
  /// work interleaves with commits without blocking them.
  void ServeCompaction(ProcessId from, CompactionRequestMsg* req);

  WarehouseOptions options_;
  Rng rng_;
  const IdRegistry* registry_ = nullptr;
  /// Background compaction (kInvalidProcess = disabled).
  ProcessId compactor_ = kInvalidProcess;
  int64_t compaction_stats_every_ = 0;
  /// Commit count at the last stats send; the trigger is a threshold
  /// crossing, not a modulus, so batched commits that jump the counter
  /// by several transactions still report.
  int64_t compaction_stats_last_ = 0;
  size_t compaction_detail_ = 0;
  /// Flat maintenance working copy: the state the commit observer (and
  /// the consistency oracle) sees, and the source of legacy clones.
  Catalog views_;
  /// MVCC store: one immutable version per commit, structural sharing
  /// across versions. Serves every read on the default path.
  VersionedStore store_;
  /// Transactions whose processing delay elapsed but whose dependencies
  /// have not committed yet, in arrival order.
  std::vector<InFlight> held_;
  /// Processing transactions keyed by an internal ticket (tick tag).
  std::map<int64_t, InFlight> processing_;
  int64_t next_ticket_ = 0;
  /// Admitted queries awaiting their modeled service delay, keyed by a
  /// NEGATIVE tick tag — disjoint from the positive transaction ticket
  /// space so the two self-timer streams cannot collide.
  struct PendingQuery {
    ProcessId requester = kInvalidProcess;
    std::unique_ptr<QueryResultMsg> response;
  };
  std::map<int64_t, PendingQuery> pending_queries_;
  size_t inflight_queries_ = 0;
  int64_t next_query_ticket_ = 0;
  /// Committed txn ids per submitting merge process.
  std::map<ProcessId, std::set<int64_t>> committed_;
  /// Group commit: transactions applied to the flat catalog but not yet
  /// published as a store version, with their admission times (for the
  /// ingest.commit_latency_us histogram).
  struct Buffered {
    int64_t txn_id = 0;
    ProcessId submitter = kInvalidProcess;
    TimeMicros admitted_at = 0;
  };
  std::vector<Buffered> batch_;
  /// A flush tick (tag kFlushTag) is already in flight.
  bool flush_scheduled_ = false;
  /// Reserved self-tick tag for the group-commit flush timer; positive
  /// transaction tickets start at 1 and query tickets are negative, so
  /// 0 is free.
  static constexpr int64_t kFlushTag = 0;
  /// Ring of past states for time-travel reads: history_[k] is the view
  /// catalog after commit number first_history_commit_ + k.
  std::deque<Catalog> history_;
  /// Commit count corresponding to history_.front() (i.e. the catalog
  /// state after that many commits).
  int64_t first_history_commit_ = 0;
  int64_t committed_count_ = 0;
  int64_t actions_applied_ = 0;
  /// Bytes of chunk storage shared with an outgoing snapshot (cumulative
  /// over all handles handed out); nullptr when observability is off.
  obs::Counter* snapshot_bytes_shared_ = nullptr;
  /// Store versions currently reachable (retained window + pinned).
  obs::Gauge* versions_live_ = nullptr;
  /// Queries rejected by admission control (read.shed_total).
  obs::Counter* queries_shed_ = nullptr;
  /// Distinct rows examined per executed query (read.rows_scanned).
  obs::Histogram* rows_scanned_ = nullptr;
  /// Transactions folded into each published store version
  /// (ingest.batch_size); nullptr when observability or group commit is
  /// off.
  obs::Histogram* batch_size_ = nullptr;
  /// Admission-to-publish wait per transaction under group commit
  /// (ingest.commit_latency_us).
  obs::Histogram* commit_latency_us_ = nullptr;
  std::function<void(ProcessId, const WarehouseTransaction&, const Catalog&,
                     TimeMicros)>
      observer_;
};

}  // namespace mvc
