// The warehouse: stores the materialized views and applies
// view-maintenance transactions atomically.
//
// Each WarehouseTransaction is applied as one atomic unit (all of its
// action lists together), matching the paper's requirement that one
// source update's effects on multiple views appear simultaneously.
//
// Commit ordering (Section 4.3): a real DBMS may finish transactions out
// of submission order. The warehouse models this with a randomized
// per-transaction processing delay. When `honor_dependencies` is set it
// respects the dependency edges the merge process attaches (a dependent
// transaction waits for its predecessors); switching it off while
// keeping reordering on reproduces the WT3-before-WT1 anomaly the paper
// warns about — the MVC tests use exactly this ablation.

#pragma once

#include <functional>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "net/protocol.h"
#include "net/runtime.h"
#include "storage/catalog.h"
#include "storage/id_registry.h"

namespace mvc {

struct WarehouseOptions {
  /// Fixed part of the per-transaction processing time.
  TimeMicros apply_delay = 0;
  /// Uniform extra processing time in [0, apply_jitter]; non-zero values
  /// let independent transactions finish out of submission order.
  TimeMicros apply_jitter = 0;
  /// Respect WarehouseTransaction::depends_on (commit dependent
  /// transactions in submission order). Disabling this while jitter is
  /// non-zero demonstrates the Section 4.3 anomaly.
  bool honor_dependencies = true;
  /// Seed for the jitter draws.
  uint64_t seed = 11;
  /// Number of past warehouse states retained for time-travel reads
  /// (ReadViewsMsg::as_of_commit). 0 disables history. Each retained
  /// state is a full clone of the view catalog, so size this for tests
  /// and demos, not production workloads.
  size_t history_depth = 0;
};

class WarehouseProcess : public Process {
 public:
  explicit WarehouseProcess(std::string name, WarehouseOptions options = {})
      : Process(std::move(name)), options_(options), rng_(options.seed) {}

  /// --- Setup ---

  /// Resolves ViewIds in incoming transactions/reads back to catalog
  /// names; must be set before the runtime starts and outlive the
  /// process.
  void SetRegistry(const IdRegistry* registry) { registry_ = registry; }

  Status CreateView(const std::string& view, const Schema& schema) {
    return views_.CreateTable(view, schema);
  }

  /// Installs the initial materialization of a view.
  Status InitializeView(const std::string& view, const Table& contents);

  /// Invoked after every commit with the transaction, the new view
  /// catalog, and the commit time. The consistency oracle hooks this.
  void SetCommitObserver(
      std::function<void(ProcessId submitter, const WarehouseTransaction&,
                         const Catalog&, TimeMicros)>
          observer) {
    observer_ = std::move(observer);
  }

  /// --- Introspection ---

  const Catalog& views() const { return views_; }
  int64_t transactions_committed() const { return committed_count_; }
  int64_t actions_applied() const { return actions_applied_; }

  void OnMessage(ProcessId from, MessagePtr msg) override;

 private:
  struct InFlight {
    ProcessId submitter;
    WarehouseTransaction txn;
  };

  /// True if every dependency of `txn` (from `submitter`) has committed.
  bool DependenciesMet(ProcessId submitter,
                       const WarehouseTransaction& txn) const;

  void Commit(InFlight in_flight);
  void RetryHeld();

  Status ApplyActionList(const ActionList& al);

  WarehouseOptions options_;
  Rng rng_;
  const IdRegistry* registry_ = nullptr;
  Catalog views_;
  /// Transactions whose processing delay elapsed but whose dependencies
  /// have not committed yet, in arrival order.
  std::vector<InFlight> held_;
  /// Processing transactions keyed by an internal ticket (tick tag).
  std::map<int64_t, InFlight> processing_;
  int64_t next_ticket_ = 0;
  /// Committed txn ids per submitting merge process.
  std::map<ProcessId, std::set<int64_t>> committed_;
  /// Ring of past states for time-travel reads: history_[k] is the view
  /// catalog after commit number first_history_commit_ + k.
  std::deque<Catalog> history_;
  /// Commit count corresponding to history_.front() (i.e. the catalog
  /// state after that many commits).
  int64_t first_history_commit_ = 0;
  int64_t committed_count_ = 0;
  int64_t actions_applied_ = 0;
  std::function<void(ProcessId, const WarehouseTransaction&, const Catalog&,
                     TimeMicros)>
      observer_;
};

}  // namespace mvc
