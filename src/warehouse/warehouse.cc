#include "warehouse/warehouse.h"

#include "common/string_util.h"

namespace mvc {

Status WarehouseProcess::InitializeView(const std::string& view,
                                        const Table& contents) {
  MVC_ASSIGN_OR_RETURN(Table * table, views_.GetTable(view));
  MVC_CHECK(table->empty());
  Status st;
  contents.Scan([&](const Tuple& t, int64_t c) {
    if (st.ok()) st = table->Insert(t, c);
  });
  return st;
}

bool WarehouseProcess::DependenciesMet(
    ProcessId submitter, const WarehouseTransaction& txn) const {
  auto it = committed_.find(submitter);
  for (int64_t dep : txn.depends_on) {
    if (it == committed_.end() || it->second.count(dep) == 0) return false;
  }
  return true;
}

Status WarehouseProcess::ApplyActionList(const ActionList& al) {
  MVC_CHECK(registry_ != nullptr) << "warehouse registry not wired";
  MVC_ASSIGN_OR_RETURN(Table * table,
                       views_.GetTable(registry_->ViewName(al.view)));
  if (al.replace_all) {
    table->Clear();
  }
  ++actions_applied_;
  return al.delta.ApplyTo(table);
}

void WarehouseProcess::Commit(InFlight in_flight) {
  if (options_.history_depth > 0 && history_.empty()) {
    // Retain the pre-first-commit state as commit count 0.
    history_.push_back(views_.Clone());
    first_history_commit_ = 0;
  }
  for (const ActionList& al : in_flight.txn.actions) {
    Status st = ApplyActionList(al);
    MVC_CHECK(st.ok()) << "warehouse transaction "
                       << in_flight.txn.ToString()
                       << " failed: " << st.ToString();
  }
  committed_[in_flight.submitter].insert(in_flight.txn.txn_id);
  ++committed_count_;
  if (options_.history_depth > 0) {
    history_.push_back(views_.Clone());
    while (history_.size() > options_.history_depth + 1) {
      history_.pop_front();
      ++first_history_commit_;
    }
  }
  if (observer_) {
    observer_(in_flight.submitter, in_flight.txn, views_, Now());
  }
  auto ack = std::make_unique<TxnCommittedMsg>();
  ack->txn_id = in_flight.txn.txn_id;
  Send(in_flight.submitter, std::move(ack));
}

void WarehouseProcess::RetryHeld() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (size_t i = 0; i < held_.size(); ++i) {
      if (DependenciesMet(held_[i].submitter, held_[i].txn)) {
        InFlight txn = std::move(held_[i]);
        held_.erase(held_.begin() + static_cast<ptrdiff_t>(i));
        Commit(std::move(txn));
        progressed = true;
        break;
      }
    }
  }
}

void WarehouseProcess::OnMessage(ProcessId from, MessagePtr msg) {
  switch (msg->kind) {
    case Message::Kind::kWarehouseTxn: {
      auto* wt = static_cast<WarehouseTxnMsg*>(msg.get());
      InFlight in_flight{from, std::move(wt->txn)};
      TimeMicros delay = options_.apply_delay;
      if (options_.apply_jitter > 0) {
        delay += rng_.UniformInt(0, options_.apply_jitter);
      }
      if (delay == 0) {
        // Fast path: process synchronously (still honours dependencies).
        if (options_.honor_dependencies &&
            !DependenciesMet(in_flight.submitter, in_flight.txn)) {
          held_.push_back(std::move(in_flight));
        } else {
          Commit(std::move(in_flight));
          RetryHeld();
        }
        return;
      }
      const int64_t ticket = ++next_ticket_;
      processing_.emplace(ticket, std::move(in_flight));
      auto tick = std::make_unique<TickMsg>();
      tick->tag = ticket;
      ScheduleSelf(std::move(tick), delay);
      return;
    }
    case Message::Kind::kTick: {
      auto* tick = static_cast<TickMsg*>(msg.get());
      auto it = processing_.find(tick->tag);
      MVC_CHECK(it != processing_.end());
      InFlight in_flight = std::move(it->second);
      processing_.erase(it);
      if (options_.honor_dependencies &&
          !DependenciesMet(in_flight.submitter, in_flight.txn)) {
        held_.push_back(std::move(in_flight));
      } else {
        Commit(std::move(in_flight));
        RetryHeld();
      }
      return;
    }
    case Message::Kind::kReadViews: {
      // Served inline by the single warehouse actor, so the snapshot is
      // atomic with respect to view-maintenance transactions.
      auto* read = static_cast<ReadViewsMsg*>(msg.get());
      auto resp = std::make_unique<ViewsSnapshotMsg>();
      resp->request_id = read->request_id;
      const Catalog* state = &views_;
      resp->as_of_commit = committed_count_;
      if (read->as_of_commit >= 0) {
        // Time-travel read from the retained history window.
        const int64_t idx = read->as_of_commit - first_history_commit_;
        MVC_CHECK(options_.history_depth > 0)
            << "time-travel read but history_depth == 0";
        MVC_CHECK(idx >= 0 &&
                  idx < static_cast<int64_t>(history_.size()))
            << "commit " << read->as_of_commit
            << " outside the retained window ["
            << first_history_commit_ << ", "
            << first_history_commit_ +
                   static_cast<int64_t>(history_.size()) - 1
            << "]";
        state = &history_[static_cast<size_t>(idx)];
        resp->as_of_commit = read->as_of_commit;
      }
      std::vector<std::string> names;
      if (read->views.empty()) {
        names = state->TableNames();
      } else {
        MVC_CHECK(registry_ != nullptr) << "warehouse registry not wired";
        for (ViewId id : read->views) {
          names.push_back(registry_->ViewName(id));
        }
      }
      for (const std::string& name : names) {
        auto table = state->GetTable(name);
        MVC_CHECK(table.ok()) << "read of unknown view " << name;
        resp->snapshots.push_back((*table)->Clone());
      }
      Send(from, std::move(resp));
      return;
    }
    case Message::Kind::kCommitResyncRequest: {
      // A recovering merge process lost the acks delivered while it was
      // down; hand it the full committed set for its channel.
      auto* req = static_cast<CommitResyncRequestMsg*>(msg.get());
      auto resp = std::make_unique<CommitResyncResponseMsg>();
      resp->epoch = req->epoch;
      auto it = committed_.find(from);
      if (it != committed_.end()) {
        resp->committed.assign(it->second.begin(), it->second.end());
      }
      Send(from, std::move(resp));
      return;
    }
    default:
      MVC_LOG_ERROR() << "warehouse: unexpected message " << msg->Summary();
  }
}

}  // namespace mvc
