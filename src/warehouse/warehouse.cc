#include "warehouse/warehouse.h"

#include "common/string_util.h"
#include "query/scan.h"

namespace mvc {

Status WarehouseProcess::InitializeView(const std::string& view,
                                        const Table& contents) {
  MVC_ASSIGN_OR_RETURN(Table * table, views_.GetTable(view));
  MVC_ASSIGN_OR_RETURN(VersionedTable * versioned, store_.GetTable(view));
  MVC_CHECK(table->empty());
  MVC_CHECK(versioned->empty());
  Status st;
  contents.ForEachRow([&](const Tuple& t, int64_t c) {
    if (st.ok()) st = table->Insert(t, c);
    if (st.ok()) st = versioned->Insert(t, c);
  });
  return st;
}

void WarehouseProcess::EnableObservability(obs::MetricsRegistry* metrics) {
  snapshot_bytes_shared_ =
      metrics->RegisterCounter("warehouse.snapshot_bytes_shared");
  versions_live_ = metrics->RegisterGauge("warehouse.versions_live");
  queries_shed_ = metrics->RegisterCounter("read.shed_total");
  rows_scanned_ = metrics->RegisterHistogram("read.rows_scanned", "rows");
  if (options_.group_commit.enabled) {
    batch_size_ = metrics->RegisterHistogram("ingest.batch_size", "txns");
    commit_latency_us_ =
        metrics->RegisterHistogram("ingest.commit_latency_us", "us");
  }
}

void WarehouseProcess::SetCompactor(ProcessId compactor,
                                    int64_t stats_every_commits,
                                    size_t max_version_detail) {
  MVC_CHECK(stats_every_commits >= 1) << "stats_every_commits must be >= 1";
  compactor_ = compactor;
  compaction_stats_every_ = stats_every_commits;
  compaction_detail_ = max_version_detail;
}

void WarehouseProcess::EnsureInitialVersion() {
  if (store_.latest_commit() < 0) {
    // Publish the initialized, pre-commit state as commit 0 so a
    // time-travel read of commit 0 works before any transaction lands.
    store_.Commit(0);
    if (versions_live_ != nullptr) {
      versions_live_->Set(static_cast<int64_t>(store_.versions_live()));
    }
  }
  if (LegacyRingActive() && history_.empty()) {
    history_.push_back(views_.Clone());
    first_history_commit_ = 0;
  }
}

bool WarehouseProcess::DependenciesMet(
    ProcessId submitter, const WarehouseTransaction& txn) const {
  auto it = committed_.find(submitter);
  for (int64_t dep : txn.depends_on) {
    if (it == committed_.end() || it->second.count(dep) == 0) return false;
  }
  return true;
}

Status WarehouseProcess::ApplyActionList(const ActionList& al) {
  MVC_CHECK(registry_ != nullptr) << "warehouse registry not wired";
  const std::string& name = registry_->ViewName(al.view);
  MVC_ASSIGN_OR_RETURN(Table * table, views_.GetTable(name));
  MVC_ASSIGN_OR_RETURN(VersionedTable * versioned, store_.GetTable(name));
  if (al.replace_all) {
    table->Clear();
    versioned->Clear();
  }
  ++actions_applied_;
  MVC_RETURN_IF_ERROR(al.delta.ApplyTo(table));
  return versioned->ApplyDelta(al.delta);
}

// Applies the transaction to the flat catalog, advances the commit
// count, and fires the observer + ack. Publishing the store version is
// the caller's business: Commit seals immediately, Enqueue defers to
// the batch flush.
void WarehouseProcess::Apply(const InFlight& in_flight) {
  EnsureInitialVersion();
  for (const ActionList& al : in_flight.txn.actions) {
    Status st = ApplyActionList(al);
    MVC_CHECK(st.ok()) << "warehouse transaction "
                       << in_flight.txn.ToString()
                       << " failed: " << st.ToString();
  }
  committed_[in_flight.submitter].insert(in_flight.txn.txn_id);
  ++committed_count_;
  if (LegacyRingActive()) {
    history_.push_back(views_.Clone());
    while (history_.size() > options_.history_depth + 1) {
      history_.pop_front();
      ++first_history_commit_;
    }
  }
  if (observer_) {
    observer_(in_flight.submitter, in_flight.txn, views_, Now());
  }
  auto ack = std::make_unique<TxnCommittedMsg>();
  ack->txn_id = in_flight.txn.txn_id;
  Send(in_flight.submitter, std::move(ack));
}

void WarehouseProcess::Commit(InFlight in_flight) {
  Apply(in_flight);
  store_.Commit(committed_count_);
  if (versions_live_ != nullptr) {
    versions_live_->Set(static_cast<int64_t>(store_.versions_live()));
  }
  MaybeSendCompactionStats();
}

void WarehouseProcess::Enqueue(InFlight in_flight) {
  Apply(in_flight);
  batch_.push_back(Buffered{in_flight.txn.txn_id, in_flight.submitter,
                            Now()});
  if (batch_.size() >= options_.group_commit.max_batch) {
    FlushBatch();
    return;
  }
  if (!flush_scheduled_) {
    // One deadline tick per open batch; a tick finding the batch already
    // flushed (by size) flushes whatever accumulated since, which is the
    // deadline semantics those later transactions want anyway.
    flush_scheduled_ = true;
    auto tick = std::make_unique<TickMsg>();
    tick->tag = kFlushTag;
    ScheduleSelf(std::move(tick), options_.group_commit.max_delay_us);
  }
}

void WarehouseProcess::FlushBatch() {
  if (batch_.empty()) return;
  store_.Commit(committed_count_);
  if (versions_live_ != nullptr) {
    versions_live_->Set(static_cast<int64_t>(store_.versions_live()));
  }
  if (batch_size_ != nullptr) {
    batch_size_->Record(static_cast<int64_t>(batch_.size()));
  }
  if (commit_latency_us_ != nullptr) {
    for (const Buffered& b : batch_) {
      commit_latency_us_->Record(Now() - b.admitted_at);
    }
  }
  batch_.clear();
  MaybeSendCompactionStats();
}

void WarehouseProcess::Admit(InFlight in_flight) {
  if (options_.group_commit.enabled) {
    Enqueue(std::move(in_flight));
  } else {
    Commit(std::move(in_flight));
  }
}

void WarehouseProcess::MaybeSendCompactionStats() {
  if (compactor_ == kInvalidProcess) return;
  if (committed_count_ - compaction_stats_last_ < compaction_stats_every_) {
    return;
  }
  compaction_stats_last_ = committed_count_;
  SendCompactionStats();
}

void WarehouseProcess::SendCompactionStats() {
  auto stats = std::make_unique<CompactionStatsMsg>();
  stats->stats = store_.ComputeStats(compaction_detail_);
  Send(compactor_, std::move(stats));
}

void WarehouseProcess::ServeCompaction(ProcessId from,
                                       CompactionRequestMsg* req) {
  auto resp = std::make_unique<CompactionResponseMsg>();
  resp->request_id = req->request_id;
  resp->spec = req->spec;
  switch (req->spec.kind) {
    case CompactionKind::kCollapseVersions: {
      resp->phase = CompactionResponseMsg::Phase::kApplied;
      resp->result = store_.CollapseVersions(req->spec.victims);
      break;
    }
    case CompactionKind::kSquashChunks: {
      if (!req->has_replacement) {
        // Phase 1: pin the version and hand the compactor a handle to
        // rebuild from. The pin also shields the version from any
        // concurrent collapse until the compactor releases it.
        Result<SnapshotHandle> at =
            store_.AcquireSnapshotAt(req->spec.commit_id);
        if (!at.ok()) {
          resp->phase = CompactionResponseMsg::Phase::kDiscarded;
          resp->note = at.status().message();
        } else {
          resp->phase = CompactionResponseMsg::Phase::kFetched;
          resp->handle = *std::move(at);
        }
        break;
      }
      // Phase 2: atomic swap-in of the rebuilt table. Validation and
      // refcount safety live in the store; a stale request (version
      // collapsed or contents drifted) is discarded, never fatal.
      Result<CompactionApplyResult> swapped = store_.SwapCompactedTable(
          req->spec.commit_id, std::move(req->replacement));
      if (!swapped.ok()) {
        resp->phase = CompactionResponseMsg::Phase::kDiscarded;
        resp->note = swapped.status().message();
      } else {
        resp->phase = CompactionResponseMsg::Phase::kApplied;
        resp->result = *swapped;
      }
      break;
    }
  }
  if (versions_live_ != nullptr) {
    versions_live_->Set(static_cast<int64_t>(store_.versions_live()));
  }
  Send(from, std::move(resp));
}

void WarehouseProcess::RetryHeld() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (size_t i = 0; i < held_.size(); ++i) {
      if (DependenciesMet(held_[i].submitter, held_[i].txn)) {
        InFlight txn = std::move(held_[i]);
        held_.erase(held_.begin() + static_cast<ptrdiff_t>(i));
        Admit(std::move(txn));
        progressed = true;
        break;
      }
    }
  }
}

void WarehouseProcess::ServeRead(ProcessId from, const ReadViewsMsg& read) {
  EnsureInitialVersion();
  auto resp = std::make_unique<ViewsSnapshotMsg>();
  resp->request_id = read.request_id;
  if (options_.legacy_clone_history) {
    // Pre-MVCC behaviour, bit for bit: deep-clone the flat catalog (or
    // the history ring entry), crash on an out-of-window time travel.
    const Catalog* state = &views_;
    resp->as_of_commit = committed_count_;
    if (read.as_of_commit >= 0) {
      const int64_t idx = read.as_of_commit - first_history_commit_;
      MVC_CHECK(options_.history_depth > 0)
          << "time-travel read but history_depth == 0";
      MVC_CHECK(idx >= 0 && idx < static_cast<int64_t>(history_.size()))
          << "commit " << read.as_of_commit
          << " outside the retained window [" << first_history_commit_
          << ", "
          << first_history_commit_ + static_cast<int64_t>(history_.size()) -
                 1
          << "]";
      state = &history_[static_cast<size_t>(idx)];
      resp->as_of_commit = read.as_of_commit;
    }
    std::vector<std::string> names;
    if (read.views.empty()) {
      names = state->TableNames();
    } else {
      MVC_CHECK(registry_ != nullptr) << "warehouse registry not wired";
      for (ViewId id : read.views) {
        names.push_back(registry_->ViewName(id));
      }
    }
    for (const std::string& name : names) {
      auto table = state->GetTable(name);
      MVC_CHECK(table.ok()) << "read of unknown view " << name;
      resp->snapshots.push_back((*table)->Clone());
    }
    Send(from, std::move(resp));
    return;
  }
  // MVCC path: hand out an O(1) reference to a sealed version. The
  // tables flatten only at the reader/serialization boundary
  // (ViewsSnapshotMsg::TakeTables), never here on the warehouse actor.
  SnapshotHandle handle;
  if (read.as_of_commit >= 0) {
    Result<SnapshotHandle> at = store_.AcquireSnapshotAt(read.as_of_commit);
    if (!at.ok()) {
      // Clean failure: the version fell out of the retained window.
      resp->as_of_commit = read.as_of_commit;
      resp->error = at.status().message();
      Send(from, std::move(resp));
      return;
    }
    handle = *std::move(at);
  } else {
    handle = store_.AcquireSnapshot();
  }
  resp->as_of_commit = handle.commit_id();
  if (read.views.empty()) {
    for (const TableVersion& tv : handle.version().tables) {
      resp->view_names.push_back(tv.name);
    }
  } else {
    MVC_CHECK(registry_ != nullptr) << "warehouse registry not wired";
    for (ViewId id : read.views) {
      const std::string& name = registry_->ViewName(id);
      MVC_CHECK(handle.version().Find(name) != nullptr)
          << "read of unknown view " << name;
      resp->view_names.push_back(name);
    }
  }
  if (snapshot_bytes_shared_ != nullptr) {
    snapshot_bytes_shared_->Add(static_cast<int64_t>(handle.approx_bytes()));
  }
  resp->handle = std::move(handle);
  Send(from, std::move(resp));
}

void WarehouseProcess::ServeQuery(ProcessId from, const QueryViewMsg& query) {
  EnsureInitialVersion();
  auto resp = std::make_unique<QueryResultMsg>();
  resp->request_id = query.request_id;
  // Admission control: past the in-flight budget the query is rejected
  // at the door with an explicit shed notice — bounded occupancy, never
  // an unbounded queue, never a silent timeout.
  if (options_.max_inflight_queries > 0 &&
      inflight_queries_ >= options_.max_inflight_queries) {
    resp->shed = true;
    if (queries_shed_ != nullptr) queries_shed_->Add(1);
    Send(from, std::move(resp));
    return;
  }
  SnapshotHandle handle;
  if (query.as_of_commit >= 0) {
    Result<SnapshotHandle> at = store_.AcquireSnapshotAt(query.as_of_commit);
    if (!at.ok()) {
      resp->error = at.status().message();
      Send(from, std::move(resp));
      return;
    }
    handle = *std::move(at);
  } else {
    handle = store_.AcquireSnapshot();
  }
  MVC_CHECK(registry_ != nullptr) << "warehouse registry not wired";
  const std::string& name = registry_->ViewName(query.view);
  Result<ScanResult> scanned = ExecuteScan(handle, name, query.query);
  if (!scanned.ok()) {
    resp->error = scanned.status().message();
    Send(from, std::move(resp));
    return;
  }
  resp->as_of_commit = handle.commit_id();
  resp->rows = std::move(scanned->rows);
  resp->matched_count = scanned->matched_count;
  resp->rows_scanned = scanned->rows_scanned;
  if (rows_scanned_ != nullptr) rows_scanned_->Record(resp->rows_scanned);
  const TimeMicros cost =
      options_.query_service_us +
      options_.query_cost_per_krow * (resp->rows_scanned / 1000);
  if (cost <= 0) {
    Send(from, std::move(resp));
    return;
  }
  // Modeled service time: the result is already computed against the
  // admission-time snapshot; only its delivery occupies an executor slot.
  ++inflight_queries_;
  const int64_t ticket = -(++next_query_ticket_);
  pending_queries_.emplace(ticket, PendingQuery{from, std::move(resp)});
  auto tick = std::make_unique<TickMsg>();
  tick->tag = ticket;
  ScheduleSelf(std::move(tick), cost);
}

void WarehouseProcess::OnMessage(ProcessId from, MessagePtr msg) {
  switch (msg->kind) {
    case Message::Kind::kWarehouseTxn: {
      auto* wt = static_cast<WarehouseTxnMsg*>(msg.get());
      InFlight in_flight{from, std::move(wt->txn)};
      TimeMicros delay = options_.apply_delay;
      if (options_.apply_jitter > 0) {
        delay += rng_.UniformInt(0, options_.apply_jitter);
      }
      if (delay == 0) {
        // Fast path: process synchronously (still honours dependencies).
        if (options_.honor_dependencies &&
            !DependenciesMet(in_flight.submitter, in_flight.txn)) {
          held_.push_back(std::move(in_flight));
        } else {
          Admit(std::move(in_flight));
          RetryHeld();
        }
        return;
      }
      const int64_t ticket = ++next_ticket_;
      processing_.emplace(ticket, std::move(in_flight));
      auto tick = std::make_unique<TickMsg>();
      tick->tag = ticket;
      ScheduleSelf(std::move(tick), delay);
      return;
    }
    case Message::Kind::kTick: {
      auto* tick = static_cast<TickMsg*>(msg.get());
      if (tick->tag == kFlushTag) {
        // Group-commit deadline: publish whatever is buffered.
        flush_scheduled_ = false;
        FlushBatch();
        return;
      }
      if (tick->tag < 0) {
        // Query service delay elapsed: release the executor slot and
        // deliver the precomputed result.
        auto pending = pending_queries_.find(tick->tag);
        MVC_CHECK(pending != pending_queries_.end());
        PendingQuery done = std::move(pending->second);
        pending_queries_.erase(pending);
        MVC_CHECK(inflight_queries_ > 0);
        --inflight_queries_;
        Send(done.requester, std::move(done.response));
        return;
      }
      auto it = processing_.find(tick->tag);
      MVC_CHECK(it != processing_.end());
      InFlight in_flight = std::move(it->second);
      processing_.erase(it);
      if (options_.honor_dependencies &&
          !DependenciesMet(in_flight.submitter, in_flight.txn)) {
        held_.push_back(std::move(in_flight));
      } else {
        Admit(std::move(in_flight));
        RetryHeld();
      }
      return;
    }
    case Message::Kind::kReadViews: {
      // Served inline by the single warehouse actor, so the snapshot is
      // atomic with respect to view-maintenance transactions.
      ServeRead(from, *static_cast<ReadViewsMsg*>(msg.get()));
      return;
    }
    case Message::Kind::kQueryView: {
      // Admission + execution are inline (atomic vs commits); only the
      // modeled service delay is asynchronous.
      ServeQuery(from, *static_cast<QueryViewMsg*>(msg.get()));
      return;
    }
    case Message::Kind::kCompactionRequest: {
      // Served inline by the single warehouse actor, like reads: each
      // apply is atomic with respect to commits by construction.
      ServeCompaction(from, static_cast<CompactionRequestMsg*>(msg.get()));
      return;
    }
    case Message::Kind::kCommitResyncRequest: {
      // A recovering merge process lost the acks delivered while it was
      // down; hand it the full committed set for its channel.
      auto* req = static_cast<CommitResyncRequestMsg*>(msg.get());
      auto resp = std::make_unique<CommitResyncResponseMsg>();
      resp->epoch = req->epoch;
      auto it = committed_.find(from);
      if (it != committed_.end()) {
        resp->committed.assign(it->second.begin(), it->second.end());
      }
      Send(from, std::move(resp));
      return;
    }
    default:
      MVC_LOG_ERROR() << "warehouse: unexpected message " << msg->Summary();
  }
}

}  // namespace mvc
