// Aggregate view manager (Section 1.2's "aggregate views need different
// maintenance algorithms").
//
// Maintains GROUP BY COUNT/SUM over an SPJ core: batch deltas of the
// core are folded into per-group accumulators, and the action list
// carries the old-row/new-row pair for each affected group. Batches
// like a strongly consistent manager (it is one — each AL moves the
// view between source-consistent states, possibly skipping some), so
// the merge process pairs it with PA.

#pragma once

#include <optional>

#include "query/aggregate.h"
#include "viewmgr/view_manager.h"

namespace mvc {

struct AggregateViewManagerOptions {
  ViewManagerOptions base;
  /// Never cover more than this many updates with one AL.
  size_t max_batch = SIZE_MAX;
};

class AggregateViewManager : public ViewManagerBase {
 public:
  /// `view` is the SPJ core; `spec` the grouping/aggregates on top of
  /// it. The warehouse view uses spec.OutputSchema(core output).
  AggregateViewManager(std::string name, const BoundView* view,
                       AggregateSpec spec,
                       AggregateViewManagerOptions options = {})
      : ViewManagerBase(std::move(name), view, options.base),
        spec_(std::move(spec)),
        agg_options_(options) {}

  ConsistencyLevel level() const override { return ConsistencyLevel::kStrong; }

  const AggregateSpec& spec() const { return spec_; }

  void OnStart() override;

 protected:
  void OnUpdateQueued() override { MaybeStartWork(); }
  void StartWork() override;
  void OnFaultReset() override { batch_.clear(); }
  void OnRecoveredHook() override {
    // The group accumulators are derived state; rebuild them from the
    // restored (and silently advanced) replica, exactly as OnStart did.
    OnStart();
  }

 private:
  AggregateSpec spec_;
  AggregateViewManagerOptions agg_options_;
  std::optional<AggregateState> state_;
  std::vector<PendingUpdate> batch_;
};

}  // namespace mvc
