// View managers: one concurrent process per materialized view (Figure 1).
//
// A view manager receives the relevant updates for its view from the
// integrator (in global order over a FIFO channel), computes action
// lists that bring the view to a state consistent with the sources, and
// forwards them to the merge process. Variants differ in the
// single-view consistency level they provide (Section 2.2 / 6.3):
//
//   CompleteViewManager   — one AL per update; complete.
//   StrongViewManager     — batches intertwined updates into one AL
//                           (Strobe-style); strongly consistent. Also
//                           covers complete-N via fixed batch bounds.
//   PeriodicViewManager   — recomputes the view every T; strongly
//                           consistent (each refresh jumps states).
//   ConvergentViewManager — splits a batch's actions across several ALs;
//                           only the last one restores consistency.
//
// Single-view delta computation uses a *filtered local replica* of the
// view's base relations, maintained from the very update stream the
// integrator forwards: because the integrator's relevance filter prunes
// exactly the tuples that fail the view's single-relation selection
// conjuncts, the replica filtered by the same predicate stays exact, and
// deltas evaluated against it are the textbook telescoping sum. The
// WHIPS prototype instead queried sources and compensated (Strobe); the
// substitution preserves the property the merge algorithms depend on —
// which updates each AL covers — while staying exact under bag
// semantics. An optional query round per AL models Strobe's source
// round-trips for latency/load experiments.

#pragma once

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "fault/checkpoint_store.h"
#include "net/protocol.h"
#include "net/runtime.h"
#include "query/view_def.h"
#include "storage/catalog.h"
#include "storage/id_registry.h"

namespace mvc {

namespace obs {
class MetricsRegistry;
class Tracer;
class Counter;
class Histogram;
}  // namespace obs

/// Single-view consistency level a manager guarantees (Section 2.2).
enum class ConsistencyLevel : uint8_t {
  kConvergent = 0,
  kStrong = 1,
  kComplete = 2,
};

const char* ConsistencyLevelToString(ConsistencyLevel level);

struct ViewManagerOptions {
  /// Simulated cost of computing the delta for one update.
  TimeMicros delta_cost = 0;
  /// Fixed simulated cost per emitted action list, independent of how
  /// many updates it covers — source query rounds, message assembly,
  /// transaction setup. This is what a strongly consistent manager
  /// amortizes by batching intertwined updates (Section 5).
  TimeMicros per_al_cost = 0;
  /// Model Strobe-style source round trips: before emitting an AL, query
  /// every base relation's source and wait for all answers. Contents are
  /// served by the replica; the round exists to charge realistic latency
  /// and load.
  bool issue_query_round = false;
  /// Build ActionList::covered (the explicit per-AL update-id list).
  /// Piggybacked REL delivery, the consistency oracle, and crash
  /// recovery need it; plain release runs can skip it so ALs carry only
  /// the [first_update, update] label range.
  bool collect_covered = true;
};

/// Shared machinery: replica maintenance, batch delta computation, AL
/// emission, optional query rounds, REL piggyback forwarding.
class ViewManagerBase : public Process {
 public:
  ViewManagerBase(std::string name, const BoundView* view,
                  ViewManagerOptions options);

  /// The single-view consistency level, which the merge process uses to
  /// pick its algorithm (Section 1.3).
  virtual ConsistencyLevel level() const = 0;

  const BoundView& view() const { return *view_; }

  ViewId view_id() const { return view_id_; }

  /// --- Wiring (before the runtime starts) ---

  /// Interned identity of this manager's view; must be set before the
  /// runtime starts (message payloads carry the id, not the name).
  void SetViewId(ViewId id) { view_id_ = id; }

  /// Creates the filtered replica for one base relation, optionally
  /// seeded with the relation's initial contents.
  Status RegisterBaseRelation(const std::string& relation,
                              const Schema& schema,
                              const Table* initial = nullptr);

  void SetMerge(ProcessId merge) { merge_ = merge; }

  /// Source process owning `relation`, with the relation's interned id
  /// (needed only for query rounds).
  void SetSourceForRelation(const std::string& relation, RelationId id,
                            ProcessId source) {
    sources_[relation] = SourceRoute{id, source};
  }

  /// Turns on crash recovery. Writes the initial checkpoint (the seeded
  /// replica, covering no updates), so must be called after every
  /// RegisterBaseRelation. After each `checkpoint_every` emitted action
  /// lists a fresh checkpoint replaces it; every emitted AL is also
  /// appended to the store's durable outbox. On recovery the manager
  /// restores the checkpoint and asks `integrator` to replay the tail
  /// of its update stream.
  void EnableFaultTolerance(CheckpointStore* store, int32_t checkpoint_every,
                            ProcessId integrator);

  /// Wires the observability hub (before the runtime starts): AL
  /// emission records a kAlProduced span per covered update plus the
  /// vm.* instruments, all labelled with this process's name. Either
  /// pointer may be null.
  void EnableObservability(obs::MetricsRegistry* metrics,
                           obs::Tracer* tracer);

  /// --- Introspection ---

  int64_t action_lists_sent() const { return action_lists_sent_; }
  int64_t updates_received() const { return updates_received_; }
  /// Strobe-style source query rounds actually issued (0 unless
  /// options.issue_query_round; the self-maintaining path never issues
  /// any — bench_shared_plans asserts it through this counter).
  int64_t query_rounds_issued() const { return query_rounds_issued_; }
  bool recovering() const { return recovering_; }
  int64_t checkpoints_written() const { return checkpoints_written_; }
  int64_t updates_replayed() const { return updates_replayed_; }
  int64_t silently_advanced() const { return silently_advanced_; }
  int64_t dropped_during_recovery() const { return dropped_during_recovery_; }

  void OnMessage(ProcessId from, MessagePtr msg) override;

 protected:
  /// Subclass hook: a relevant update arrived (already recorded in
  /// `pending_`). Typically calls MaybeStartWork().
  virtual void OnUpdateQueued() = 0;

  /// Subclass hook: decide what to do when idle (pending_ non-empty).
  virtual void StartWork() = 0;

  /// Subclass hook for timers with a non-zero tag (tag 0 is reserved for
  /// the base class's busy-window tick).
  virtual void OnTick(int64_t tag) { (void)tag; }

  /// Subclass hook: a crash wiped the base class's volatile state;
  /// discard the subclass's (partial batches, timer flags).
  virtual void OnFaultReset() {}

  /// Subclass hook: recovery finished (checkpoint restored, replayed
  /// updates queued). Rebuild derived state / re-arm timers here.
  virtual void OnRecoveredHook() {}

  /// One queued update with its global number.
  struct PendingUpdate {
    UpdateId id;
    SourceTransaction txn;
  };

  /// Computes the combined view delta for `batch` (in order), advancing
  /// the replica past each update. The telescoping evaluation makes the
  /// result exactly V(after last) - V(before first).
  Result<TableDelta> ComputeBatchDelta(const std::vector<PendingUpdate>& batch);

  /// Sends an action list covering `batch` (labelled with the last
  /// update id), carrying any pending piggybacked REL sets, after the
  /// simulated `delay`.
  void EmitActionList(const std::vector<PendingUpdate>& batch,
                      TableDelta delta, TimeMicros delay);

  /// Sends a raw action list (periodic / convergent managers build their
  /// own).
  void EmitRaw(ActionList al, TimeMicros delay);

  /// Starts a query round if configured, invoking `done` when all
  /// answers are in (immediately when query rounds are disabled).
  void StartQueryRound(std::function<void()> done);

  /// Calls StartWork() if not busy and work is pending.
  void MaybeStartWork();

  /// Marks the manager busy until `delay` from now; the Tick delivery
  /// clears the flag and re-invokes MaybeStartWork().
  void BusyFor(TimeMicros delay);

  /// Manual busy control for subclasses whose work spans a query round.
  void SetBusy(bool busy) { busy_ = busy; }

  bool busy() const { return busy_; }

  /// Evaluates the full view contents from the replica (periodic
  /// refresh managers).
  Result<Table> EvaluateFullView() const;

  /// The filtered base-relation replica (aggregate managers evaluate
  /// their initial state from it).
  const Catalog& replica() const { return replica_; }

  /// Applies every view-relevant update of `txn` to the replica without
  /// emitting anything — recovery uses this for replayed updates already
  /// covered by action lists in the durable outbox.
  Status AdvanceReplica(const SourceTransaction& txn);

  void OnCrashed() override;
  void OnRecovered() override;

  const BoundView* view_;
  ViewManagerOptions options_;
  ViewId view_id_ = kInvalidView;
  std::deque<PendingUpdate> pending_;

 private:
  struct SourceRoute {
    RelationId relation;
    ProcessId source;
  };

  Status ApplyToReplica(const Update& u);

  Catalog replica_;
  ProcessId merge_ = kInvalidProcess;
  std::map<std::string, SourceRoute> sources_;
  std::vector<RelSetMsg> pending_rels_;
  bool busy_ = false;
  int64_t action_lists_sent_ = 0;
  int64_t updates_received_ = 0;
  int64_t query_rounds_issued_ = 0;
  // --- Observability (all null when disabled) ---
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* m_updates_ = nullptr;
  obs::Counter* m_als_sent_ = nullptr;
  obs::Histogram* m_batch_updates_ = nullptr;
  // Query round state.
  int64_t next_request_ = 0;
  int64_t outstanding_answers_ = 0;
  std::function<void()> round_done_;
  // Fault tolerance (null when disabled).
  CheckpointStore* checkpoints_ = nullptr;
  int32_t checkpoint_every_ = 4;
  ProcessId integrator_ = kInvalidProcess;
  /// j of the last checkpoint-eligible state: all updates <= j are
  /// reflected in emitted action lists.
  UpdateId covered_through_ = kInvalidUpdate;
  int32_t als_since_checkpoint_ = 0;
  /// Recovery state: waiting for the integrator's replay response;
  /// ordinary updates are dropped (the response supersedes them).
  bool recovering_ = false;
  int64_t epoch_ = 0;
  /// Label of the last AL in the durable outbox at recovery time:
  /// replayed updates <= this are advanced silently, > this re-enter
  /// pending_ and get fresh action lists.
  UpdateId resume_label_ = kInvalidUpdate;
  int64_t checkpoints_written_ = 0;
  int64_t updates_replayed_ = 0;
  int64_t silently_advanced_ = 0;
  int64_t dropped_during_recovery_ = 0;
};

}  // namespace mvc
