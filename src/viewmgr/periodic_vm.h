// Periodic-refresh view manager (Section 6.3): instead of incremental
// maintenance, it re-evaluates the whole view every `period` and emits a
// replace-the-view action list covering all updates since the previous
// refresh. To the merge process it looks like an ordinary strongly
// consistent manager whose batches are time-driven.

#pragma once

#include "viewmgr/view_manager.h"

namespace mvc {

struct PeriodicViewManagerOptions {
  ViewManagerOptions base;
  /// Refresh period.
  TimeMicros period = 100000;  // 100ms
  /// Stop scheduling refreshes after this many idle periods in a row
  /// (lets finite simulations quiesce). 0 = refresh forever.
  int max_idle_periods = 3;
};

class PeriodicViewManager : public ViewManagerBase {
 public:
  PeriodicViewManager(std::string name, const BoundView* view,
                      PeriodicViewManagerOptions options = {})
      : ViewManagerBase(std::move(name), view, options.base),
        periodic_options_(options) {}

  ConsistencyLevel level() const override { return ConsistencyLevel::kStrong; }

  int64_t refreshes() const { return refreshes_; }

  void OnStart() override;

 protected:
  void OnUpdateQueued() override;
  void StartWork() override {}
  void OnFaultReset() override {
    timer_armed_ = false;
    idle_periods_ = 0;
  }
  void OnRecoveredHook() override {
    // Restart the refresh clock; pre-crash ticks that still arrive are
    // absorbed by the timer_armed_ handshake in OnTick.
    idle_periods_ = 0;
    if (!timer_armed_) ScheduleRefresh();
  }

 private:
  void OnTick(int64_t tag) override;
  void Refresh();
  void ScheduleRefresh();

  PeriodicViewManagerOptions periodic_options_;
  int64_t refreshes_ = 0;
  int idle_periods_ = 0;
  bool timer_armed_ = false;
  static constexpr int64_t kRefreshTag = 2;
};

}  // namespace mvc
