#include "viewmgr/periodic_vm.h"

namespace mvc {

void PeriodicViewManager::OnStart() { ScheduleRefresh(); }

void PeriodicViewManager::ScheduleRefresh() {
  timer_armed_ = true;
  auto tick = std::make_unique<TickMsg>();
  tick->tag = kRefreshTag;
  ScheduleSelf(std::move(tick), periodic_options_.period);
}

void PeriodicViewManager::OnUpdateQueued() {
  // Work is time-driven; just make sure the timer is running (it may
  // have been parked after a run of idle periods).
  if (!timer_armed_) {
    idle_periods_ = 0;
    ScheduleRefresh();
  }
}

void PeriodicViewManager::OnTick(int64_t tag) {
  if (tag != kRefreshTag) return;
  timer_armed_ = false;
  if (pending_.empty()) {
    ++idle_periods_;
    if (periodic_options_.max_idle_periods == 0 ||
        idle_periods_ < periodic_options_.max_idle_periods) {
      ScheduleRefresh();
    }
    return;
  }
  idle_periods_ = 0;
  Refresh();
  ScheduleRefresh();
}

void PeriodicViewManager::Refresh() {
  std::vector<PendingUpdate> batch(pending_.begin(), pending_.end());
  pending_.clear();

  // Advance the replica past the batch (the incremental delta itself is
  // discarded — this manager re-evaluates from scratch).
  auto incremental = ComputeBatchDelta(batch);
  MVC_CHECK(incremental.ok()) << incremental.status().ToString();

  auto full = EvaluateFullView();
  MVC_CHECK(full.ok()) << full.status().ToString();

  ActionList al;
  al.view = view_id();
  al.first_update = batch.front().id;
  al.update = batch.back().id;
  if (options_.collect_covered) {
    for (const PendingUpdate& pu : batch) al.covered.push_back(pu.id);
  }
  al.replace_all = true;
  al.delta.target = view_->name();
  full->ForEachRow([&](const Tuple& t, int64_t c) { al.delta.Add(t, c); });
  al.delta.Normalize();
  ++refreshes_;

  const TimeMicros cost =
      options_.per_al_cost +
      options_.delta_cost * static_cast<TimeMicros>(batch.size());
  EmitRaw(std::move(al), cost);
}

}  // namespace mvc
