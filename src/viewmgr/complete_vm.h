// Complete view manager (Section 2.2 / 3.3): processes one update at a
// time and emits exactly one action list per relevant update, in update
// order — including empty ones. The warehouse view walks through every
// source state, which is what lets the merge process run SPA and
// guarantee MVC completeness.

#pragma once

#include "viewmgr/view_manager.h"

namespace mvc {

class CompleteViewManager : public ViewManagerBase {
 public:
  CompleteViewManager(std::string name, const BoundView* view,
                      ViewManagerOptions options = {})
      : ViewManagerBase(std::move(name), view, options) {}

  ConsistencyLevel level() const override {
    return ConsistencyLevel::kComplete;
  }

 protected:
  void OnUpdateQueued() override { MaybeStartWork(); }
  void StartWork() override;
  void OnFaultReset() override { batch_.clear(); }

 private:
  std::vector<PendingUpdate> batch_;
};

}  // namespace mvc
