#include "viewmgr/view_manager.h"

#include "common/string_util.h"
#include "query/evaluator.h"
#include "query/relevance.h"

namespace mvc {

const char* ConsistencyLevelToString(ConsistencyLevel level) {
  switch (level) {
    case ConsistencyLevel::kConvergent:
      return "convergent";
    case ConsistencyLevel::kStrong:
      return "strong";
    case ConsistencyLevel::kComplete:
      return "complete";
  }
  return "?";
}

ViewManagerBase::ViewManagerBase(std::string name, const BoundView* view,
                                 ViewManagerOptions options)
    : Process(std::move(name)), view_(view), options_(options) {
  MVC_CHECK(view_ != nullptr);
}

Status ViewManagerBase::RegisterBaseRelation(const std::string& relation,
                                             const Schema& schema,
                                             const Table* initial) {
  if (!view_->RelationIndex(relation).has_value()) {
    return Status::InvalidArgument(StrCat("relation '", relation,
                                          "' is not used by view '",
                                          view_->name(), "'"));
  }
  MVC_RETURN_IF_ERROR(replica_.CreateTable(relation, schema));
  if (initial != nullptr) {
    MVC_ASSIGN_OR_RETURN(Table * replica, replica_.GetTable(relation));
    Status st;
    initial->Scan([&](const Tuple& t, int64_t c) {
      if (!st.ok()) return;
      // Filtered replica: only tuples that can affect the view.
      if (TupleMayAffectView(*view_, relation, t)) st = replica->Insert(t, c);
    });
    MVC_RETURN_IF_ERROR(st);
  }
  return Status::OK();
}

Status ViewManagerBase::ApplyToReplica(const Update& u) {
  MVC_ASSIGN_OR_RETURN(Table * table, replica_.GetTable(u.relation));
  const bool old_in = u.op != UpdateOp::kInsert &&
                      TupleMayAffectView(*view_, u.relation, u.tuple);
  const bool new_in =
      (u.op == UpdateOp::kInsert &&
       TupleMayAffectView(*view_, u.relation, u.tuple)) ||
      (u.op == UpdateOp::kModify &&
       TupleMayAffectView(*view_, u.relation, u.new_tuple));
  switch (u.op) {
    case UpdateOp::kInsert:
      if (new_in) return table->Insert(u.tuple);
      return Status::OK();
    case UpdateOp::kDelete:
      if (old_in) return table->Delete(u.tuple);
      return Status::OK();
    case UpdateOp::kModify:
      if (old_in) MVC_RETURN_IF_ERROR(table->Delete(u.tuple));
      if (new_in) MVC_RETURN_IF_ERROR(table->Insert(u.new_tuple));
      return Status::OK();
  }
  return Status::Internal("unknown update op");
}

Result<TableDelta> ViewManagerBase::ComputeBatchDelta(
    const std::vector<PendingUpdate>& batch) {
  TableDelta acc;
  acc.target = view_->name();
  TableProviderFn provider = CatalogProvider(&replica_);
  for (const PendingUpdate& pu : batch) {
    for (const Update& u : pu.txn.updates) {
      if (!view_->RelationIndex(u.relation).has_value()) continue;
      TableDelta base = ViewEvaluator::UpdateToBaseDelta(u);
      MVC_ASSIGN_OR_RETURN(
          TableDelta delta,
          ViewEvaluator::EvaluateDelta(*view_, u.relation, base, provider));
      for (DeltaRow& row : delta.rows) acc.rows.push_back(std::move(row));
      MVC_RETURN_IF_ERROR(ApplyToReplica(u));
    }
  }
  acc.Normalize();
  return acc;
}

void ViewManagerBase::EmitActionList(const std::vector<PendingUpdate>& batch,
                                     TableDelta delta, TimeMicros delay) {
  MVC_CHECK(!batch.empty());
  ActionList al;
  al.view = view_->name();
  al.first_update = batch.front().id;
  al.update = batch.back().id;
  for (const PendingUpdate& pu : batch) al.covered.push_back(pu.id);
  al.delta = std::move(delta);
  EmitRaw(std::move(al), delay);
}

void ViewManagerBase::EmitRaw(ActionList al, TimeMicros delay) {
  auto msg = std::make_unique<ActionListMsg>();
  msg->al = std::move(al);
  msg->piggybacked_rels = std::move(pending_rels_);
  pending_rels_.clear();
  ++action_lists_sent_;
  SendAfter(merge_, std::move(msg), delay);
}

void ViewManagerBase::StartQueryRound(std::function<void()> done) {
  if (!options_.issue_query_round || sources_.empty()) {
    done();
    return;
  }
  MVC_CHECK(round_done_ == nullptr);
  round_done_ = std::move(done);
  outstanding_answers_ = 0;
  for (const auto& [relation, source] : sources_) {
    auto req = std::make_unique<QueryRequestMsg>();
    req->request_id = ++next_request_;
    req->relation = relation;
    req->as_of_state = -1;  // current state; answer content is discarded
    ++outstanding_answers_;
    Send(source, std::move(req));
  }
}

Result<Table> ViewManagerBase::EvaluateFullView() const {
  return ViewEvaluator::Evaluate(*view_, CatalogProvider(&replica_));
}

void ViewManagerBase::MaybeStartWork() {
  if (busy_ || pending_.empty()) return;
  StartWork();
}

void ViewManagerBase::BusyFor(TimeMicros delay) {
  busy_ = true;
  ScheduleSelf(std::make_unique<TickMsg>(), delay);
}

void ViewManagerBase::OnMessage(ProcessId from, MessagePtr msg) {
  (void)from;
  switch (msg->kind) {
    case Message::Kind::kUpdate: {
      auto* update = static_cast<UpdateMsg*>(msg.get());
      ++updates_received_;
      if (update->carries_rel) {
        RelSetMsg rel;
        rel.update_id = update->update_id;
        rel.views = update->rel_views;
        pending_rels_.push_back(std::move(rel));
      }
      pending_.push_back(PendingUpdate{update->update_id,
                                       std::move(update->txn)});
      OnUpdateQueued();
      return;
    }
    case Message::Kind::kTick: {
      auto* tick = static_cast<TickMsg*>(msg.get());
      if (tick->tag == 0) {
        busy_ = false;
        MaybeStartWork();
      } else {
        OnTick(tick->tag);
      }
      return;
    }
    case Message::Kind::kQueryResponse: {
      if (--outstanding_answers_ == 0 && round_done_) {
        auto done = std::move(round_done_);
        round_done_ = nullptr;
        done();
      }
      return;
    }
    default:
      MVC_LOG_ERROR() << "view manager " << name() << ": unexpected message "
                      << msg->Summary();
  }
}

}  // namespace mvc
