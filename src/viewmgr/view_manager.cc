#include "viewmgr/view_manager.h"

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/evaluator.h"
#include "query/relevance.h"

namespace mvc {

const char* ConsistencyLevelToString(ConsistencyLevel level) {
  switch (level) {
    case ConsistencyLevel::kConvergent:
      return "convergent";
    case ConsistencyLevel::kStrong:
      return "strong";
    case ConsistencyLevel::kComplete:
      return "complete";
  }
  return "?";
}

ViewManagerBase::ViewManagerBase(std::string name, const BoundView* view,
                                 ViewManagerOptions options)
    : Process(std::move(name)), view_(view), options_(options) {
  MVC_CHECK(view_ != nullptr);
}

Status ViewManagerBase::RegisterBaseRelation(const std::string& relation,
                                             const Schema& schema,
                                             const Table* initial) {
  if (!view_->RelationIndex(relation).has_value()) {
    return Status::InvalidArgument(StrCat("relation '", relation,
                                          "' is not used by view '",
                                          view_->name(), "'"));
  }
  MVC_RETURN_IF_ERROR(replica_.CreateTable(relation, schema));
  if (initial != nullptr) {
    MVC_ASSIGN_OR_RETURN(Table * replica, replica_.GetTable(relation));
    Status st;
    initial->ForEachRow([&](const Tuple& t, int64_t c) {
      if (!st.ok()) return;
      // Filtered replica: only tuples that can affect the view.
      if (TupleMayAffectView(*view_, relation, t)) st = replica->Insert(t, c);
    });
    MVC_RETURN_IF_ERROR(st);
  }
  return Status::OK();
}

Status ViewManagerBase::ApplyToReplica(const Update& u) {
  MVC_ASSIGN_OR_RETURN(Table * table, replica_.GetTable(u.relation));
  const bool old_in = u.op != UpdateOp::kInsert &&
                      TupleMayAffectView(*view_, u.relation, u.tuple);
  const bool new_in =
      (u.op == UpdateOp::kInsert &&
       TupleMayAffectView(*view_, u.relation, u.tuple)) ||
      (u.op == UpdateOp::kModify &&
       TupleMayAffectView(*view_, u.relation, u.new_tuple));
  switch (u.op) {
    case UpdateOp::kInsert:
      if (new_in) return table->Insert(u.tuple);
      return Status::OK();
    case UpdateOp::kDelete:
      if (old_in) return table->Delete(u.tuple);
      return Status::OK();
    case UpdateOp::kModify:
      if (old_in) MVC_RETURN_IF_ERROR(table->Delete(u.tuple));
      if (new_in) MVC_RETURN_IF_ERROR(table->Insert(u.new_tuple));
      return Status::OK();
  }
  return Status::Internal("unknown update op");
}

Result<TableDelta> ViewManagerBase::ComputeBatchDelta(
    const std::vector<PendingUpdate>& batch) {
  TableDelta acc;
  acc.target = view_->name();
  TableProviderFn provider = CatalogProvider(&replica_);
  for (const PendingUpdate& pu : batch) {
    for (const Update& u : pu.txn.updates) {
      if (!view_->RelationIndex(u.relation).has_value()) continue;
      TableDelta base = ViewEvaluator::UpdateToBaseDelta(u);
      MVC_ASSIGN_OR_RETURN(
          TableDelta delta,
          ViewEvaluator::EvaluateDelta(*view_, u.relation, base, provider));
      for (DeltaRow& row : delta.rows) acc.rows.push_back(std::move(row));
      MVC_RETURN_IF_ERROR(ApplyToReplica(u));
    }
  }
  acc.Normalize();
  return acc;
}

void ViewManagerBase::EmitActionList(const std::vector<PendingUpdate>& batch,
                                     TableDelta delta, TimeMicros delay) {
  MVC_CHECK(!batch.empty());
  ActionList al;
  al.view = view_id_;
  al.first_update = batch.front().id;
  al.update = batch.back().id;
  if (options_.collect_covered) {
    for (const PendingUpdate& pu : batch) al.covered.push_back(pu.id);
  }
  al.delta = std::move(delta);
  EmitRaw(std::move(al), delay);
}

void ViewManagerBase::EnableFaultTolerance(CheckpointStore* store,
                                           int32_t checkpoint_every,
                                           ProcessId integrator) {
  MVC_CHECK(store != nullptr);
  MVC_CHECK(checkpoint_every > 0);
  checkpoints_ = store;
  checkpoint_every_ = checkpoint_every;
  integrator_ = integrator;
  // Initial recovery point: the seeded replica, covering no updates.
  checkpoints_->Save(view_->name(), replica_, kInvalidUpdate);
}

void ViewManagerBase::EnableObservability(obs::MetricsRegistry* metrics,
                                          obs::Tracer* tracer) {
  tracer_ = tracer;
  if (metrics == nullptr) return;
  const std::string l = StrCat("{process=\"", name(), "\"}");
  m_updates_ = metrics->RegisterCounter(StrCat("vm.updates_received", l));
  m_als_sent_ = metrics->RegisterCounter(StrCat("vm.action_lists_sent", l));
  m_batch_updates_ =
      metrics->RegisterHistogram(StrCat("vm.al_batch_updates", l), "updates");
}

void ViewManagerBase::EmitRaw(ActionList al, TimeMicros delay) {
  MVC_CHECK(al.view == view_id_ && view_id_ != kInvalidView)
      << "view manager " << name() << " emitting AL without a wired ViewId";
  if (checkpoints_ != nullptr) {
    // Durable outbox first, then (periodically) a checkpoint. All of
    // this happens inside one message handler, so a crash can never
    // separate the replica advance from the AL emission: either the
    // whole handler ran (AL in the outbox, replica advanced) or none
    // of it did.
    checkpoints_->AppendAl(view_->name(), al);
    if (al.update > covered_through_) covered_through_ = al.update;
    if (++als_since_checkpoint_ >= checkpoint_every_) {
      checkpoints_->Save(view_->name(), replica_, covered_through_);
      als_since_checkpoint_ = 0;
      ++checkpoints_written_;
    }
  }
  if (m_als_sent_ != nullptr) {
    m_als_sent_->Add();
    const int64_t covered_count =
        al.covered.empty() ? al.update - al.first_update + 1
                           : static_cast<int64_t>(al.covered.size());
    m_batch_updates_->Record(covered_count);
  }
  if (tracer_ != nullptr) {
    // One kAlProduced span per update the AL reflects; the span's aux is
    // the AL's label so the staleness derivation can pair each update
    // with the transaction that later applies this label.
    if (al.covered.empty()) {
      for (UpdateId u = al.first_update; u <= al.update; ++u) {
        tracer_->Record(obs::Span{obs::SpanKind::kAlProduced, u, al.view, -1,
                                  al.update, Now(), name()});
      }
    } else {
      for (UpdateId u : al.covered) {
        tracer_->Record(obs::Span{obs::SpanKind::kAlProduced, u, al.view, -1,
                                  al.update, Now(), name()});
      }
    }
  }
  auto msg = std::make_unique<ActionListMsg>();
  msg->al = std::move(al);
  msg->piggybacked_rels = std::move(pending_rels_);
  pending_rels_.clear();
  ++action_lists_sent_;
  SendAfter(merge_, std::move(msg), delay);
}

void ViewManagerBase::StartQueryRound(std::function<void()> done) {
  if (!options_.issue_query_round || sources_.empty()) {
    done();
    return;
  }
  MVC_CHECK(round_done_ == nullptr);
  round_done_ = std::move(done);
  ++query_rounds_issued_;
  outstanding_answers_ = 0;
  for (const auto& [relation, route] : sources_) {
    auto req = std::make_unique<QueryRequestMsg>();
    req->request_id = ++next_request_;
    req->relation = route.relation;
    req->as_of_state = -1;  // current state; answer content is discarded
    ++outstanding_answers_;
    Send(route.source, std::move(req));
  }
}

Result<Table> ViewManagerBase::EvaluateFullView() const {
  return ViewEvaluator::Evaluate(*view_, CatalogProvider(&replica_));
}

void ViewManagerBase::MaybeStartWork() {
  if (busy_ || pending_.empty()) return;
  StartWork();
}

void ViewManagerBase::BusyFor(TimeMicros delay) {
  busy_ = true;
  ScheduleSelf(std::make_unique<TickMsg>(), delay);
}

Status ViewManagerBase::AdvanceReplica(const SourceTransaction& txn) {
  for (const Update& u : txn.updates) {
    if (!view_->RelationIndex(u.relation).has_value()) continue;
    MVC_RETURN_IF_ERROR(ApplyToReplica(u));
  }
  return Status::OK();
}

void ViewManagerBase::OnCrashed() {
  // Everything in RAM is gone. The checkpoint store and AL outbox are
  // durable by construction; nothing else survives.
  pending_.clear();
  pending_rels_.clear();
  busy_ = false;
  round_done_ = nullptr;
  outstanding_answers_ = 0;
  recovering_ = false;
  OnFaultReset();
}

void ViewManagerBase::OnRecovered() {
  MVC_CHECK(checkpoints_ != nullptr);  // faults only target FT managers
  std::optional<VmCheckpoint> cp = checkpoints_->Load(view_->name());
  MVC_CHECK(cp.has_value());  // initial checkpoint written at wiring
  replica_ = std::move(cp->replica);
  covered_through_ = cp->covered_through;
  als_since_checkpoint_ = 0;
  // Everything up to the outbox's last label was already emitted; the
  // checkpoint may be older. Updates in (covered_through_, resume_label_]
  // must advance the replica but not produce new action lists.
  resume_label_ = checkpoints_->LastAlLabel(view_->name());
  if (resume_label_ < covered_through_) resume_label_ = covered_through_;
  recovering_ = true;
  ++epoch_;
  auto req = std::make_unique<ReplayRequestMsg>();
  req->view = view_id_;
  req->after = covered_through_;
  req->epoch = epoch_;
  Send(integrator_, std::move(req));
}

void ViewManagerBase::OnMessage(ProcessId from, MessagePtr msg) {
  switch (msg->kind) {
    case Message::Kind::kUpdate: {
      if (recovering_) {
        // The integrator numbered this update before generating our
        // replay response (FIFO), so the response includes it; handling
        // it here too would double-apply.
        ++dropped_during_recovery_;
        return;
      }
      auto* update = static_cast<UpdateMsg*>(msg.get());
      ++updates_received_;
      if (m_updates_ != nullptr) m_updates_->Add();
      if (update->carries_rel) {
        RelSetMsg rel;
        rel.update_id = update->update_id;
        rel.views = update->rel_views;
        pending_rels_.push_back(std::move(rel));
      }
      pending_.push_back(PendingUpdate{update->update_id,
                                       std::move(update->txn)});
      OnUpdateQueued();
      return;
    }
    case Message::Kind::kTick: {
      auto* tick = static_cast<TickMsg*>(msg.get());
      if (tick->tag == 0) {
        busy_ = false;
        MaybeStartWork();
      } else {
        OnTick(tick->tag);
      }
      return;
    }
    case Message::Kind::kQueryResponse: {
      // A crash may have reset the round; late answers from the old
      // round must not underflow the counter.
      if (outstanding_answers_ == 0) return;
      if (--outstanding_answers_ == 0 && round_done_) {
        auto done = std::move(round_done_);
        round_done_ = nullptr;
        done();
      }
      return;
    }
    case Message::Kind::kReplayResponse: {
      auto* resp = static_cast<ReplayResponseMsg*>(msg.get());
      // Stale epochs belong to an earlier, interrupted recovery whose
      // state this incarnation no longer holds.
      if (!recovering_ || resp->epoch != epoch_) return;
      for (ReplayedUpdate& ru : resp->updates) {
        if (ru.id <= resume_label_) {
          // Already covered by an action list in the durable outbox:
          // advance the replica silently, emit nothing.
          Status st = AdvanceReplica(ru.txn);
          MVC_CHECK(st.ok());
          ++silently_advanced_;
        } else {
          pending_.push_back(PendingUpdate{ru.id, std::move(ru.txn)});
          ++updates_replayed_;
        }
      }
      recovering_ = false;
      OnRecoveredHook();
      if (!pending_.empty()) OnUpdateQueued();
      return;
    }
    case Message::Kind::kAlResyncRequest: {
      // A recovering merge process asking for our outbox tail. Served
      // even while we are ourselves recovering — the outbox is durable
      // and complete.
      auto* req = static_cast<AlResyncRequestMsg*>(msg.get());
      auto resp = std::make_unique<AlResyncResponseMsg>();
      resp->view = view_id_;
      resp->epoch = req->epoch;
      if (checkpoints_ != nullptr) {
        resp->action_lists = checkpoints_->AlsAfter(view_->name(), req->after);
      }
      Send(from, std::move(resp));
      return;
    }
    default:
      MVC_LOG_ERROR() << "view manager " << name() << ": unexpected message "
                      << msg->Summary();
  }
}

}  // namespace mvc
