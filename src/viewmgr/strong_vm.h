// Strongly consistent view manager (Section 3.3): when it becomes idle
// it takes the whole backlog of relevant updates — the updates that
// became intertwined while it was busy — and emits a single action list
// covering all of them, labelled with the last. Under light load every
// AL covers one update; under heavy load or slow delta computation the
// batches grow, which is exactly the behaviour that forces the merge
// process to run PA instead of SPA.
//
// Fixed batch bounds turn this into the complete-N manager of Section
// 6.3: with min_batch == max_batch == N, the view advances consistently
// after every N updates (a flush timer bounds the wait for a partial
// final batch).

#pragma once

#include "viewmgr/view_manager.h"

namespace mvc {

struct StrongViewManagerOptions {
  ViewManagerOptions base;
  /// Do not start work until this many updates are queued (complete-N).
  size_t min_batch = 1;
  /// Never cover more than this many updates with one AL.
  size_t max_batch = SIZE_MAX;
  /// When min_batch > 1: emit a partial batch anyway if the oldest
  /// pending update has waited this long (0 disables flushing).
  TimeMicros flush_timeout = 0;
};

class StrongViewManager : public ViewManagerBase {
 public:
  StrongViewManager(std::string name, const BoundView* view,
                    StrongViewManagerOptions options = {})
      : ViewManagerBase(std::move(name), view, options.base),
        strong_options_(options) {}

  ConsistencyLevel level() const override { return ConsistencyLevel::kStrong; }

  /// Largest batch emitted so far (experiment P5 statistic).
  size_t max_batch_seen() const { return max_batch_seen_; }

 protected:
  void OnUpdateQueued() override;
  void StartWork() override;
  void OnTick(int64_t tag) override;
  void OnFaultReset() override {
    batch_.clear();
    flush_scheduled_ = false;
  }

 private:
  void StartBatch(bool force);

  StrongViewManagerOptions strong_options_;
  std::vector<PendingUpdate> batch_;
  size_t max_batch_seen_ = 0;
  bool flush_scheduled_ = false;
  static constexpr int64_t kFlushTag = 1;
};

}  // namespace mvc
