#include "viewmgr/aggregate_vm.h"

#include <algorithm>

namespace mvc {

void AggregateViewManager::OnStart() {
  auto state =
      AggregateState::Build(*view_, spec_, CatalogProvider(&replica()));
  MVC_CHECK(state.ok()) << state.status().ToString();
  state_ = std::move(state).value();
}

void AggregateViewManager::StartWork() {
  const size_t take = std::min(pending_.size(), agg_options_.max_batch);
  batch_.clear();
  for (size_t i = 0; i < take; ++i) {
    batch_.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  SetBusy(true);
  StartQueryRound([this] {
    // Delta of the SPJ core across the batch, folded into the group
    // accumulators.
    auto core_delta = ComputeBatchDelta(batch_);
    MVC_CHECK(core_delta.ok()) << core_delta.status().ToString();
    auto agg_delta = state_->Fold(*core_delta, view_->name());
    MVC_CHECK(agg_delta.ok()) << agg_delta.status().ToString();
    const TimeMicros cost =
        options_.per_al_cost +
        options_.delta_cost * static_cast<TimeMicros>(batch_.size());
    EmitActionList(batch_, std::move(agg_delta).value(), cost);
    BusyFor(cost);
  });
}

}  // namespace mvc
