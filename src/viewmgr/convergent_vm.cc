#include "viewmgr/convergent_vm.h"

#include <algorithm>

namespace mvc {

void ConvergentViewManager::StartWork() {
  batch_.assign(pending_.begin(), pending_.end());
  pending_.clear();
  SetBusy(true);
  StartQueryRound([this] {
    auto delta = ComputeBatchDelta(batch_);
    MVC_CHECK(delta.ok()) << delta.status().ToString();
    const TimeMicros cost =
        options_.per_al_cost +
        options_.delta_cost * static_cast<TimeMicros>(batch_.size());

    // Split the normalized delta into up to max_split action lists.
    // Every part is individually applicable (net-negative rows delete
    // tuples present in the previous view image), but only applying all
    // of them yields a consistent state.
    std::vector<DeltaRow>& rows = delta->rows;
    const int parts = static_cast<int>(
        std::min<int64_t>(convergent_options_.max_split,
                          std::max<int64_t>(1, rng_.UniformInt(
                                                   1, convergent_options_
                                                          .max_split))));
    const size_t n = rows.size();
    size_t begin = 0;
    for (int p = 0; p < parts; ++p) {
      size_t end = (p == parts - 1)
                       ? n
                       : begin + (n - begin) / static_cast<size_t>(parts - p);
      ActionList al;
      al.view = view_id();
      al.first_update = batch_.front().id;
      al.update = batch_.back().id;
      for (const PendingUpdate& pu : batch_) al.covered.push_back(pu.id);
      al.delta.target = view_->name();
      for (size_t i = begin; i < end; ++i) {
        al.delta.rows.push_back(rows[i]);
      }
      // Empty middle parts are legal but pointless; always send the last
      // part so the batch is completed even when the delta is empty.
      if (!al.delta.rows.empty() || p == parts - 1) {
        EmitRaw(std::move(al), cost);
      }
      begin = end;
    }
    BusyFor(cost);
  });
}

}  // namespace mvc
