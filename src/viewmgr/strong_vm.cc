#include "viewmgr/strong_vm.h"

#include <algorithm>

namespace mvc {

void StrongViewManager::OnUpdateQueued() {
  if (!busy() && pending_.size() < strong_options_.min_batch &&
      strong_options_.flush_timeout > 0 && !flush_scheduled_) {
    flush_scheduled_ = true;
    auto tick = std::make_unique<TickMsg>();
    tick->tag = kFlushTag;
    ScheduleSelf(std::move(tick), strong_options_.flush_timeout);
  }
  MaybeStartWork();
}

void StrongViewManager::StartWork() { StartBatch(/*force=*/false); }

void StrongViewManager::OnTick(int64_t tag) {
  if (tag != kFlushTag) return;
  flush_scheduled_ = false;
  if (!busy() && !pending_.empty()) StartBatch(/*force=*/true);
}

void StrongViewManager::StartBatch(bool force) {
  if (!force && pending_.size() < strong_options_.min_batch) return;
  const size_t take = std::min(pending_.size(), strong_options_.max_batch);
  MVC_CHECK(take > 0);
  batch_.clear();
  for (size_t i = 0; i < take; ++i) {
    batch_.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  max_batch_seen_ = std::max(max_batch_seen_, batch_.size());
  SetBusy(true);
  StartQueryRound([this] {
    auto delta = ComputeBatchDelta(batch_);
    MVC_CHECK(delta.ok()) << delta.status().ToString();
    const TimeMicros cost =
        options_.per_al_cost +
        options_.delta_cost * static_cast<TimeMicros>(batch_.size());
    EmitActionList(batch_, std::move(delta).value(), cost);
    BusyFor(cost);
  });
}

}  // namespace mvc
