// Convergent view manager (Section 6.3): guarantees only the eventual
// correctness of its view. It computes exact batch deltas but may split
// one batch's actions across several action lists; applying a prefix of
// the split leaves the view in a state matching no source state, and
// only the final part restores consistency. The merge process pairs it
// with the pass-through algorithm, which forwards every AL immediately —
// the warehouse views then converge without intermediate guarantees.

#pragma once

#include "common/rng.h"
#include "viewmgr/view_manager.h"

namespace mvc {

struct ConvergentViewManagerOptions {
  ViewManagerOptions base;
  /// Maximum number of action lists one batch may be split into.
  int max_split = 3;
  /// Seed for the split-point draws.
  uint64_t seed = 7;
};

class ConvergentViewManager : public ViewManagerBase {
 public:
  ConvergentViewManager(std::string name, const BoundView* view,
                        ConvergentViewManagerOptions options = {})
      : ViewManagerBase(std::move(name), view, options.base),
        convergent_options_(options),
        rng_(options.seed) {}

  ConsistencyLevel level() const override {
    return ConsistencyLevel::kConvergent;
  }

 protected:
  void OnUpdateQueued() override { MaybeStartWork(); }
  void StartWork() override;

 private:
  ConvergentViewManagerOptions convergent_options_;
  Rng rng_;
  std::vector<PendingUpdate> batch_;
};

}  // namespace mvc
