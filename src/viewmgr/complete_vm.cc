#include "viewmgr/complete_vm.h"

namespace mvc {

void CompleteViewManager::StartWork() {
  batch_.assign(1, pending_.front());
  pending_.pop_front();
  SetBusy(true);
  StartQueryRound([this] {
    auto delta = ComputeBatchDelta(batch_);
    MVC_CHECK(delta.ok()) << delta.status().ToString();
    const TimeMicros cost = options_.per_al_cost + options_.delta_cost;
    EmitActionList(batch_, std::move(delta).value(), cost);
    BusyFor(cost);
  });
}

}  // namespace mvc
