#include "query/scan.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "storage/tuple.h"

namespace mvc {

namespace {

/// One pushed-down `column op constant` conjunct, evaluated column-wise
/// against the chunk's value vectors before any row-wise work.
struct ColumnFilter {
  size_t offset = 0;
  CompareOp op = CompareOp::kEq;
  Value constant;
};

/// `const op col` reads as `col mirror(op) const`.
CompareOp MirrorOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    case CompareOp::kEq:
    case CompareOp::kNe:
      return op;
  }
  return op;
}

/// A matching row during execution; tuples are copied out only when a
/// row actually matches.
struct Candidate {
  Tuple tuple;
  int64_t count = 0;
};

/// Query plan bound against one schema: range bounds and simple
/// conjuncts become column filters, everything else the bound residual.
struct PreparedScan {
  std::vector<ColumnFilter> filters;
  BoundPredicate residual;
  bool residual_trivial = true;
  /// kRange/kTopK order column.
  size_t order_offset = 0;
};

Result<PreparedScan> Prepare(const Schema& schema, const ScanQuery& query) {
  PreparedScan plan;
  if (query.kind == ScanKind::kPoint) {
    MVC_RETURN_IF_ERROR(schema.ValidateTuple(query.point));
    return plan;
  }
  // Unknown columns are a malformed query, not a missing entity, so the
  // NotFound coming out of Schema::ColumnIndex is remapped here.
  const auto resolve = [&schema](const std::string& name) -> Result<size_t> {
    Result<size_t> offset = schema.ColumnIndex(name);
    if (!offset.ok()) {
      return Status::InvalidArgument(
          StrCat("scan references unknown column \"", name, "\""));
    }
    return offset;
  };
  if (query.kind == ScanKind::kRange || query.kind == ScanKind::kTopK) {
    MVC_ASSIGN_OR_RETURN(plan.order_offset, resolve(query.column));
  }
  if (query.kind == ScanKind::kTopK && query.limit == 0) {
    return Status::InvalidArgument("top-k scan requires limit > 0");
  }
  if (query.kind == ScanKind::kRange) {
    if (query.lo.has_value()) {
      plan.filters.push_back(
          ColumnFilter{plan.order_offset, CompareOp::kGe, *query.lo});
    }
    if (query.hi.has_value()) {
      plan.filters.push_back(
          ColumnFilter{plan.order_offset, CompareOp::kLe, *query.hi});
    }
  }
  // Split the predicate: col-vs-const comparisons run column-wise, the
  // rest re-joins into the residual tree.
  const auto resolve_ref = [&resolve](const ColumnRef& ref) -> Result<size_t> {
    return resolve(ref.column);
  };
  std::vector<Predicate> residual_conjuncts;
  for (const Predicate* conjunct : query.predicate.Conjuncts()) {
    if (conjunct->kind() == Predicate::Kind::kComparison) {
      const Predicate::Operand& lhs = conjunct->lhs();
      const Predicate::Operand& rhs = conjunct->rhs();
      if (lhs.is_column != rhs.is_column) {
        const Predicate::Operand& col = lhs.is_column ? lhs : rhs;
        const Predicate::Operand& cst = lhs.is_column ? rhs : lhs;
        MVC_ASSIGN_OR_RETURN(size_t offset, resolve_ref(col.column));
        const CompareOp op =
            lhs.is_column ? conjunct->op() : MirrorOp(conjunct->op());
        plan.filters.push_back(ColumnFilter{offset, op, cst.constant});
        continue;
      }
    }
    residual_conjuncts.push_back(*conjunct);
  }
  if (!residual_conjuncts.empty()) {
    const Predicate residual =
        residual_conjuncts.size() == 1
            ? residual_conjuncts.front()
            : Predicate::And(std::move(residual_conjuncts));
    MVC_ASSIGN_OR_RETURN(plan.residual, BoundPredicate::Bind(residual,
                                                             resolve_ref));
    plan.residual_trivial = false;
  }
  return plan;
}

/// Orders, truncates, and totals the matching rows — shared verbatim by
/// the columnar executor and the Table oracle so they cannot diverge.
ScanResult Finalize(const ScanQuery& query, const PreparedScan& plan,
                    std::vector<Candidate> matches, int64_t rows_scanned) {
  ScanResult result;
  result.rows_scanned = rows_scanned;
  for (const Candidate& c : matches) result.matched_count += c.count;
  if (query.kind == ScanKind::kCount) return result;

  const size_t order = plan.order_offset;
  if (query.kind == ScanKind::kPredicate) {
    std::sort(matches.begin(), matches.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.tuple < b.tuple;
              });
  } else if (query.kind == ScanKind::kRange) {
    std::sort(matches.begin(), matches.end(),
              [order](const Candidate& a, const Candidate& b) {
                if (a.tuple[order] < b.tuple[order]) return true;
                if (b.tuple[order] < a.tuple[order]) return false;
                return a.tuple < b.tuple;
              });
  } else if (query.kind == ScanKind::kTopK) {
    const bool desc = query.descending;
    const auto better = [order, desc](const Candidate& a, const Candidate& b) {
      if (a.tuple[order] < b.tuple[order]) return !desc;
      if (b.tuple[order] < a.tuple[order]) return desc;
      return a.tuple < b.tuple;
    };
    if (query.limit < matches.size()) {
      std::partial_sort(matches.begin(), matches.begin() + query.limit,
                        matches.end(), better);
      matches.resize(query.limit);
    } else {
      std::sort(matches.begin(), matches.end(), better);
    }
  }
  if (query.limit > 0 && matches.size() > query.limit) {
    matches.resize(query.limit);
  }
  result.rows.reserve(matches.size());
  for (Candidate& c : matches) {
    result.rows.push_back(Row{std::move(c.tuple), c.count});
  }
  return result;
}

}  // namespace

const char* ScanKindToString(ScanKind kind) {
  switch (kind) {
    case ScanKind::kPoint:
      return "point";
    case ScanKind::kRange:
      return "range";
    case ScanKind::kPredicate:
      return "predicate";
    case ScanKind::kCount:
      return "count";
    case ScanKind::kTopK:
      return "topk";
  }
  return "?";
}

ScanQuery ScanQuery::Point(Tuple t) {
  ScanQuery q;
  q.kind = ScanKind::kPoint;
  q.point = std::move(t);
  return q;
}

ScanQuery ScanQuery::Range(std::string column, std::optional<Value> lo,
                           std::optional<Value> hi, size_t limit) {
  ScanQuery q;
  q.kind = ScanKind::kRange;
  q.column = std::move(column);
  q.lo = std::move(lo);
  q.hi = std::move(hi);
  q.limit = limit;
  return q;
}

ScanQuery ScanQuery::Filter(Predicate pred, size_t limit) {
  ScanQuery q;
  q.kind = ScanKind::kPredicate;
  q.predicate = std::move(pred);
  q.limit = limit;
  return q;
}

ScanQuery ScanQuery::CountRows(Predicate pred) {
  ScanQuery q;
  q.kind = ScanKind::kCount;
  q.predicate = std::move(pred);
  return q;
}

ScanQuery ScanQuery::TopK(std::string column, size_t k, bool descending) {
  ScanQuery q;
  q.kind = ScanKind::kTopK;
  q.column = std::move(column);
  q.limit = k;
  q.descending = descending;
  return q;
}

std::string ScanQuery::Summary() const {
  switch (kind) {
    case ScanKind::kPoint:
      return StrCat("point ", TupleToString(point));
    case ScanKind::kRange:
      return StrCat("range ", column, " [",
                    lo.has_value() ? lo->ToString() : "-inf", ", ",
                    hi.has_value() ? hi->ToString() : "+inf", "]");
    case ScanKind::kPredicate:
      return StrCat("filter ", predicate.ToString());
    case ScanKind::kCount:
      return StrCat("count ", predicate.ToString());
    case ScanKind::kTopK:
      return StrCat("top", limit, " by ", column,
                    descending ? " desc" : " asc");
  }
  return "?";
}

Result<ScanResult> ExecuteScan(const TableVersion& version,
                               const ScanQuery& query) {
  MVC_ASSIGN_OR_RETURN(PreparedScan plan, Prepare(version.schema, query));
  if (query.kind == ScanKind::kPoint) {
    ScanResult result;
    result.rows_scanned = 1;
    result.matched_count = version.CountOf(query.point);
    if (result.matched_count > 0) {
      result.rows.push_back(Row{query.point, result.matched_count});
    }
    return result;
  }

  std::vector<Candidate> matches;
  std::vector<uint32_t> selection;
  int64_t rows_scanned = 0;
  if (version.chunks != nullptr) {
    for (const ChunkPtr& chunk : *version.chunks) {
      if (chunk == nullptr || chunk->rows.empty()) continue;
      MVC_CHECK(chunk->columnar != nullptr)
          << "sealed chunk of '" << version.name
          << "' is missing its columnar block";
      const ColumnBlock& block = *chunk->columnar;
      const size_t n = block.rows();
      rows_scanned += static_cast<int64_t>(n);

      // Column-wise phase: each pushed-down filter narrows the selection
      // vector by streaming one value vector.
      selection.clear();
      if (plan.filters.empty()) {
        selection.resize(n);
        for (size_t r = 0; r < n; ++r) selection[r] = static_cast<uint32_t>(r);
      } else {
        const ColumnFilter& first = plan.filters.front();
        const std::vector<Value>& col = block.columns[first.offset];
        for (size_t r = 0; r < n; ++r) {
          if (CompareValues(first.op, col[r], first.constant)) {
            selection.push_back(static_cast<uint32_t>(r));
          }
        }
        for (size_t f = 1; f < plan.filters.size(); ++f) {
          const ColumnFilter& filter = plan.filters[f];
          const std::vector<Value>& fcol = block.columns[filter.offset];
          size_t kept = 0;
          for (uint32_t r : selection) {
            if (CompareValues(filter.op, fcol[r], filter.constant)) {
              selection[kept++] = r;
            }
          }
          selection.resize(kept);
        }
      }

      // Row-wise phase: residual predicate through the column accessor,
      // then copy out the surviving rows.
      for (uint32_t r : selection) {
        if (!plan.residual_trivial) {
          const auto at = [&block, r](size_t offset) -> const Value& {
            return block.columns[offset][r];
          };
          if (!plan.residual.EvaluateAt(at)) continue;
        }
        matches.push_back(Candidate{block.RowTuple(r), block.counts[r]});
      }
    }
  }
  return Finalize(query, plan, std::move(matches), rows_scanned);
}

Result<ScanResult> ExecuteScan(const SnapshotHandle& snapshot,
                               const std::string& view,
                               const ScanQuery& query) {
  if (!snapshot.valid()) {
    return Status::FailedPrecondition("scan through an empty snapshot handle");
  }
  const TableVersion* version = snapshot.version().Find(view);
  if (version == nullptr) {
    return Status::NotFound(
        StrCat("view '", view, "' not present in snapshot at commit ",
               snapshot.commit_id()));
  }
  return ExecuteScan(*version, query);
}

Result<ScanResult> ExecuteScanOnTable(const Table& table,
                                      const ScanQuery& query) {
  MVC_ASSIGN_OR_RETURN(PreparedScan plan, Prepare(table.schema(), query));
  if (query.kind == ScanKind::kPoint) {
    ScanResult result;
    result.rows_scanned = 1;
    result.matched_count = table.CountOf(query.point);
    if (result.matched_count > 0) {
      result.rows.push_back(Row{query.point, result.matched_count});
    }
    return result;
  }
  std::vector<Candidate> matches;
  table.ForEachRow([&](const Tuple& tuple, int64_t count) {
    for (const ColumnFilter& filter : plan.filters) {
      if (!CompareValues(filter.op, tuple[filter.offset], filter.constant)) {
        return;
      }
    }
    if (!plan.residual_trivial && !plan.residual.Evaluate(tuple)) return;
    matches.push_back(Candidate{tuple, count});
  });
  return Finalize(query, plan, std::move(matches),
                  static_cast<int64_t>(table.NumDistinct()));
}

}  // namespace mvc
