// Select-project-join view definitions and their bound (analyzed) form.
//
// A ViewDefinition names the base relations joined (left-to-right), a
// predicate combining join and selection conditions, and a projection
// list. Binding against the base-relation schemas resolves column
// references to offsets in the concatenated join tuple and classifies
// each top-level conjunct by the relations it touches, which drives both
// the join planner (hash keys) and the integrator's relevance test.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "query/expr.h"
#include "storage/schema.h"

namespace mvc {

/// Unanalyzed view definition.
struct ViewDefinition {
  std::string name;
  /// Base relations joined, in join order. Duplicates are rejected at
  /// bind time (no self joins; the paper's views have none).
  std::vector<std::string> relations;
  /// Join + selection predicate (TRUE for a plain copy view).
  Predicate predicate = Predicate::True();
  /// Output columns. Empty means all columns of all relations in order.
  std::vector<ColumnRef> projection;

  std::string ToString() const;
};

/// A view definition bound against its base-relation schemas.
class BoundView {
 public:
  /// Analyzes `def` against `schemas` (relation name -> schema). Fails if
  /// a relation or column cannot be resolved, a reference is ambiguous,
  /// or a relation appears twice.
  static Result<BoundView> Bind(const ViewDefinition& def,
                                const std::map<std::string, Schema>& schemas);

  const ViewDefinition& def() const { return def_; }
  const std::string& name() const { return def_.name; }

  size_t num_relations() const { return def_.relations.size(); }
  const std::string& relation(size_t i) const { return def_.relations[i]; }
  const Schema& relation_schema(size_t i) const { return base_schemas_[i]; }

  /// Index of `relation` within the join order, if it participates.
  std::optional<size_t> RelationIndex(const std::string& relation) const;

  /// Start offset of relation `i`'s columns in the concatenated tuple.
  size_t relation_offset(size_t i) const { return rel_offsets_[i]; }

  /// Total width of the concatenated join tuple.
  size_t total_width() const { return total_width_; }

  /// Schema of the view's output (projected) tuples.
  const Schema& output_schema() const { return output_schema_; }

  /// Global offsets of projected columns in the concatenated tuple.
  const std::vector<size_t>& projection_offsets() const {
    return projection_offsets_;
  }

  /// Projects a full-width joined tuple to an output tuple.
  Tuple Project(const Tuple& joined) const;

  /// One top-level conjunct of the predicate, bound, with the set of
  /// relation indexes it references.
  struct Conjunct {
    BoundPredicate bound;
    /// The unbound form (kept for relevance testing / printing).
    Predicate unbound;
    /// Sorted relation indexes referenced; empty for constant conjuncts.
    std::vector<size_t> relations;
    /// Largest referenced relation index (0 when `relations` empty); the
    /// conjunct becomes applicable once the join prefix includes it.
    size_t max_relation = 0;
  };
  const std::vector<Conjunct>& conjuncts() const { return conjuncts_; }

 private:
  ViewDefinition def_;
  std::vector<Schema> base_schemas_;
  std::vector<size_t> rel_offsets_;
  size_t total_width_ = 0;
  Schema output_schema_;
  std::vector<size_t> projection_offsets_;
  std::vector<Conjunct> conjuncts_;
};

}  // namespace mvc
