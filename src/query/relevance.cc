#include "query/relevance.h"

namespace mvc {

bool TupleMayAffectView(const BoundView& view, const std::string& relation,
                        const Tuple& t) {
  auto rel_idx = view.RelationIndex(relation);
  if (!rel_idx.has_value()) return false;

  // Build a full-width row with the candidate tuple in its slot; other
  // positions are never read by the conjuncts we evaluate.
  Tuple row(view.total_width());
  const size_t off = view.relation_offset(*rel_idx);
  for (size_t i = 0; i < t.size(); ++i) row[off + i] = t[i];

  for (const BoundView::Conjunct& conj : view.conjuncts()) {
    const bool single_relation =
        conj.relations.size() == 1 && conj.relations[0] == *rel_idx;
    const bool constant = conj.relations.empty();
    if (!single_relation && !constant) continue;
    if (!conj.bound.Evaluate(row)) return false;
  }
  return true;
}

bool UpdateIsRelevant(const BoundView& view, const Update& update) {
  if (TupleMayAffectView(view, update.relation, update.tuple)) return true;
  if (update.op == UpdateOp::kModify) {
    return TupleMayAffectView(view, update.relation, update.new_tuple);
  }
  return false;
}

}  // namespace mvc
