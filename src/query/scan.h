// Snapshot scan executor: point/range/predicate/count/top-k queries
// evaluated directly against the columnar chunks of a pinned
// TableVersion, without ever materializing a Table.
//
// This is the production read tier. ReadViewsMsg readers flatten whole
// views at the boundary (SnapshotHandle::MaterializeTable); QueryViewMsg
// readers instead ship a ScanQuery to the warehouse, which executes it
// in place on the pinned version — O(matching rows) transferred instead
// of O(table). Execution is vectorized over ColumnBlocks: pushed-down
// column-vs-constant conjuncts filter whole column vectors into a
// selection vector before the residual predicate tree runs row-wise via
// BoundPredicate::EvaluateAt.
//
// Every query shape also has a Table-based oracle (ExecuteScanOnTable)
// with identical semantics, so randomized property tests can cross-check
// the columnar path row for row.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "query/expr.h"
#include "storage/table.h"
#include "storage/versioned_store.h"
#include "storage/versioned_table.h"

namespace mvc {

enum class ScanKind : uint8_t {
  /// Multiplicity lookup of one exact tuple. O(1) hash probe.
  kPoint,
  /// Rows with lo <= row[column] <= hi (either bound optional), plus an
  /// optional residual predicate. Sorted by (column value, tuple).
  kRange,
  /// Rows satisfying `predicate`, sorted lexicographically by tuple.
  kPredicate,
  /// Total multiplicity of rows satisfying `predicate`; returns no rows.
  kCount,
  /// The `limit` rows with the largest (descending=true) or smallest
  /// column values among rows satisfying `predicate`.
  kTopK,
};

const char* ScanKindToString(ScanKind kind);

/// One read-tier query against a single view. Carried inside
/// QueryViewMsg; executed by the warehouse against a pinned snapshot.
struct ScanQuery {
  ScanKind kind = ScanKind::kCount;
  /// kPoint: the tuple to look up (must match the view schema).
  Tuple point;
  /// kRange/kTopK: name of the order/bound column in the view schema.
  std::string column;
  /// kRange: inclusive bounds; an unset bound is open on that side.
  std::optional<Value> lo;
  std::optional<Value> hi;
  /// Filter for kRange/kPredicate/kCount/kTopK (default: match all).
  Predicate predicate = Predicate::True();
  /// kTopK: k (required > 0). kRange/kPredicate: result-row cap after
  /// ordering, 0 = unlimited. matched_count is always pre-limit.
  size_t limit = 0;
  /// kTopK: largest values first when true.
  bool descending = true;

  /// Builders for the common shapes.
  static ScanQuery Point(Tuple t);
  static ScanQuery Range(std::string column, std::optional<Value> lo,
                         std::optional<Value> hi, size_t limit = 0);
  static ScanQuery Filter(Predicate pred, size_t limit = 0);
  static ScanQuery CountRows(Predicate pred = Predicate::True());
  static ScanQuery TopK(std::string column, size_t k, bool descending = true);

  /// Short human-readable form for message summaries.
  std::string Summary() const;
};

/// Outcome of one executed ScanQuery. Row order is deterministic (see
/// ScanKind) so results compare byte-for-byte across runtimes.
struct ScanResult {
  /// Matching rows after ordering and `limit` (empty for kCount).
  std::vector<Row> rows;
  /// Total multiplicity of every matching row, before `limit`.
  int64_t matched_count = 0;
  /// Distinct rows the executor examined (1 for point probes, the
  /// version's distinct count for full scans); feeds read.rows_scanned.
  int64_t rows_scanned = 0;
};

/// Executes `query` against one sealed table version, in place on its
/// columnar chunks. InvalidArgument on malformed queries (unknown
/// column, bad arity, k = 0).
Result<ScanResult> ExecuteScan(const TableVersion& version,
                               const ScanQuery& query);

/// Executes against the named view inside a pinned snapshot. NotFound
/// when the snapshot has no such view.
Result<ScanResult> ExecuteScan(const SnapshotHandle& snapshot,
                               const std::string& view,
                               const ScanQuery& query);

/// Reference implementation over a flat Table — identical semantics to
/// the columnar path, used as the property-test oracle and by legacy
/// callers that already hold a materialized table.
Result<ScanResult> ExecuteScanOnTable(const Table& table,
                                      const ScanQuery& query);

}  // namespace mvc
