// Aggregate views: GROUP BY + COUNT/SUM over an SPJ core.
//
// Section 1.2 motivates the one-manager-per-view architecture with
// exactly this case: "some views, e.g., aggregate views need to use
// different maintenance algorithms than other views". An aggregate view
// is defined as an AggregateSpec layered on a BoundView; maintenance
// folds the SPJ core's incremental delta into per-group accumulators and
// emits the old-row/new-row changes for each affected group.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "query/evaluator.h"
#include "query/view_def.h"

namespace mvc {

enum class AggregateFn : uint8_t { kCount = 0, kSum = 1, kMin = 2, kMax = 3 };

const char* AggregateFnToString(AggregateFn fn);

/// One output aggregate over the SPJ output: COUNT(*) (input_column
/// ignored), or SUM/MIN/MAX over an INT64 column. COUNT and SUM are
/// self-maintainable under counted deletes; MIN and MAX are not — the
/// state keeps a per-group value multiset so a deleted extremum can be
/// replaced exactly (the classic reason aggregate views need their own
/// maintenance machinery).
struct AggregateColumn {
  AggregateFn fn = AggregateFn::kCount;
  std::string input_column;
  std::string output_name;
};

/// GROUP BY `group_by` (names in the SPJ core's output schema) computing
/// `aggregates`. Groups with no contributing rows are absent from the
/// view.
struct AggregateSpec {
  std::vector<std::string> group_by;
  std::vector<AggregateColumn> aggregates;

  /// Output schema: group columns (types from the SPJ output) followed
  /// by one INT64 column per aggregate.
  Result<Schema> OutputSchema(const Schema& spj_output) const;

  std::string ToString() const;
};

/// Fully evaluates the aggregate view at the provider's state.
Result<Table> EvaluateAggregate(const BoundView& view,
                                const AggregateSpec& spec,
                                const TableProviderFn& provider,
                                const std::string& result_name);

/// Incrementally maintained per-group accumulators. COUNT and SUM are
/// self-maintainable under counted inserts and deletes: a group's row
/// disappears exactly when its contributing-row count reaches zero.
class AggregateState {
 public:
  /// Builds the state (and implicitly the initial view contents) from
  /// the SPJ core evaluated at the provider's state.
  static Result<AggregateState> Build(const BoundView& view,
                                      const AggregateSpec& spec,
                                      const TableProviderFn& provider);

  /// Folds a delta of the SPJ core's *output* rows into the state and
  /// returns the corresponding aggregate-view delta: for each affected
  /// group, minus the old aggregate row (if the group existed) and plus
  /// the new one (if it still has rows). The returned delta is
  /// normalized.
  Result<TableDelta> Fold(const TableDelta& spj_delta,
                          const std::string& target);

  /// Current materialization of the aggregate view.
  Table Materialize(const std::string& name) const;

  const Schema& output_schema() const { return output_schema_; }

 private:
  struct Group {
    int64_t row_count = 0;        // total contributing rows
    std::vector<int64_t> accums;  // one per aggregate (COUNT/SUM)
    /// For MIN/MAX aggregates: value -> multiplicity (empty maps for
    /// COUNT/SUM positions).
    std::vector<std::map<int64_t, int64_t>> value_bags;
  };

  AggregateState(AggregateSpec spec, Schema output_schema,
                 std::vector<size_t> group_offsets,
                 std::vector<std::optional<size_t>> input_offsets)
      : spec_(std::move(spec)),
        output_schema_(std::move(output_schema)),
        group_offsets_(std::move(group_offsets)),
        input_offsets_(std::move(input_offsets)) {}

  Tuple GroupKey(const Tuple& spj_row) const;
  Tuple GroupRow(const Tuple& key, const Group& group) const;
  Status Accumulate(const Tuple& spj_row, int64_t count, Group* group) const;

  AggregateSpec spec_;
  Schema output_schema_;
  /// Offsets of the group-by columns within the SPJ output tuple.
  std::vector<size_t> group_offsets_;
  /// Offset of each aggregate's input column (nullopt for COUNT).
  std::vector<std::optional<size_t>> input_offsets_;
  std::map<Tuple, Group> groups_;
};

}  // namespace mvc
