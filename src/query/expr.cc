#include "query/expr.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace mvc {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool CompareValues(CompareOp op, const Value& lhs, const Value& rhs) {
  // Numeric comparisons mix INT64 and DOUBLE naturally.
  if (lhs.IsNumeric() && rhs.IsNumeric() && lhs.type() != rhs.type()) {
    double l = lhs.AsNumeric();
    double r = rhs.AsNumeric();
    switch (op) {
      case CompareOp::kEq:
        return l == r;
      case CompareOp::kNe:
        return l != r;
      case CompareOp::kLt:
        return l < r;
      case CompareOp::kLe:
        return l <= r;
      case CompareOp::kGt:
        return l > r;
      case CompareOp::kGe:
        return l >= r;
    }
  }
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

Predicate Predicate::True() { return Predicate(); }

Predicate Predicate::Compare(CompareOp op, Operand lhs, Operand rhs) {
  Predicate p;
  p.kind_ = Kind::kComparison;
  p.op_ = op;
  p.lhs_ = std::move(lhs);
  p.rhs_ = std::move(rhs);
  return p;
}

Predicate Predicate::And(std::vector<Predicate> children) {
  if (children.empty()) return True();
  if (children.size() == 1) return std::move(children[0]);
  Predicate p;
  p.kind_ = Kind::kAnd;
  p.children_ = std::move(children);
  return p;
}

Predicate Predicate::Or(std::vector<Predicate> children) {
  MVC_CHECK(!children.empty());
  if (children.size() == 1) return std::move(children[0]);
  Predicate p;
  p.kind_ = Kind::kOr;
  p.children_ = std::move(children);
  return p;
}

Predicate Predicate::Not(Predicate child) {
  Predicate p;
  p.kind_ = Kind::kNot;
  p.children_.push_back(std::move(child));
  return p;
}

std::vector<const Predicate*> Predicate::Conjuncts() const {
  std::vector<const Predicate*> out;
  if (kind_ == Kind::kTrue) return out;
  if (kind_ != Kind::kAnd) {
    out.push_back(this);
    return out;
  }
  for (const Predicate& child : children_) {
    auto sub = child.Conjuncts();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

void Predicate::CollectColumns(std::vector<ColumnRef>* out) const {
  switch (kind_) {
    case Kind::kTrue:
      return;
    case Kind::kComparison:
      if (lhs_.is_column) out->push_back(lhs_.column);
      if (rhs_.is_column) out->push_back(rhs_.column);
      return;
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot:
      for (const Predicate& child : children_) child.CollectColumns(out);
      return;
  }
}

Predicate Predicate::RewriteColumns(
    const std::function<ColumnRef(const ColumnRef&)>& fn) const {
  switch (kind_) {
    case Kind::kTrue:
      return True();
    case Kind::kComparison: {
      auto rewrite_operand = [&](const Operand& o) {
        return o.is_column ? Operand::Col(fn(o.column))
                           : Operand::Const(o.constant);
      };
      return Compare(op_, rewrite_operand(lhs_), rewrite_operand(rhs_));
    }
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<Predicate> rewritten;
      rewritten.reserve(children_.size());
      for (const Predicate& child : children_) {
        rewritten.push_back(child.RewriteColumns(fn));
      }
      // Rebuild through the raw node rather than the And()/Or()
      // builders: the builders collapse singleton lists, which would
      // change the tree shape the caller is mirroring.
      Predicate p;
      p.kind_ = kind_;
      p.children_ = std::move(rewritten);
      return p;
    }
    case Kind::kNot:
      return Not(children_.front().RewriteColumns(fn));
  }
  return True();
}

std::string Predicate::ToString() const {
  switch (kind_) {
    case Kind::kTrue:
      return "TRUE";
    case Kind::kComparison:
      return StrCat(lhs_.ToString(), " ", CompareOpToString(op_), " ",
                    rhs_.ToString());
    case Kind::kAnd: {
      std::vector<std::string> parts;
      for (const Predicate& c : children_) parts.push_back(c.ToString());
      return StrCat("(", JoinToString(parts, " AND "), ")");
    }
    case Kind::kOr: {
      std::vector<std::string> parts;
      for (const Predicate& c : children_) parts.push_back(c.ToString());
      return StrCat("(", JoinToString(parts, " OR "), ")");
    }
    case Kind::kNot:
      return StrCat("NOT ", children_[0].ToString());
  }
  return "?";
}

Result<BoundPredicate> BoundPredicate::Bind(
    const Predicate& pred,
    const std::function<Result<size_t>(const ColumnRef&)>& resolver) {
  BoundPredicate bp;
  bp.kind_ = pred.kind();
  bp.op_ = pred.op();
  if (pred.kind() == Predicate::Kind::kComparison) {
    auto bind_operand = [&](const Predicate::Operand& o,
                            BoundOperand* out) -> Status {
      out->is_column = o.is_column;
      if (o.is_column) {
        MVC_ASSIGN_OR_RETURN(out->offset, resolver(o.column));
      } else {
        out->constant = o.constant;
      }
      return Status::OK();
    };
    MVC_RETURN_IF_ERROR(bind_operand(pred.lhs(), &bp.lhs_));
    MVC_RETURN_IF_ERROR(bind_operand(pred.rhs(), &bp.rhs_));
    for (const BoundOperand* o : {&bp.lhs_, &bp.rhs_}) {
      if (o->is_column) {
        bp.max_offset_ = std::max(bp.max_offset_, o->offset);
        ++bp.offsets_used_;
      }
    }
  } else {
    for (const Predicate& child : pred.children()) {
      MVC_ASSIGN_OR_RETURN(BoundPredicate bc, Bind(child, resolver));
      bp.max_offset_ = std::max(bp.max_offset_, bc.max_offset_);
      bp.offsets_used_ += bc.offsets_used_;
      bp.children_.push_back(std::move(bc));
    }
  }
  return bp;
}

bool BoundPredicate::Evaluate(const Tuple& row) const {
  return EvaluateAt([&row](size_t offset) -> const Value& {
    return row[offset];
  });
}

bool BoundPredicate::AsEquiJoin(size_t* lo, size_t* hi) const {
  if (kind_ != Predicate::Kind::kComparison || op_ != CompareOp::kEq) {
    return false;
  }
  if (!lhs_.is_column || !rhs_.is_column) return false;
  *lo = std::min(lhs_.offset, rhs_.offset);
  *hi = std::max(lhs_.offset, rhs_.offset);
  return *lo != *hi;
}

}  // namespace mvc
