// View evaluation: full materialization and incremental delta
// propagation for bound SPJ views.
//
// Joins are planned left-to-right in definition order; every step uses a
// hash join on the equi-join conjuncts that become applicable at that
// step, falling back to a nested-loop cross product filtered by the
// residual conjuncts. Multiplicities multiply through joins and sum under
// projection (counting algorithm), so bag semantics and incremental
// deletes are exact.

#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "query/view_def.h"
#include "storage/catalog.h"
#include "storage/delta.h"
#include "storage/table.h"
#include "storage/update.h"

namespace mvc {

/// Supplies base-relation contents at the state the caller wants the view
/// evaluated against (current source state, or a historical state from a
/// versioned log). The shared_ptr lets providers hand out snapshots
/// without copying when the table is long-lived.
using TableProviderFn =
    std::function<Result<std::shared_ptr<const Table>>(const std::string&)>;

/// Provider serving tables straight out of `catalog` (non-owning; the
/// catalog must outlive the provider).
TableProviderFn CatalogProvider(const Catalog* catalog);

class ViewEvaluator {
 public:
  /// Fully evaluates `view` against the provider's state. The result
  /// table is named after the view and uses its output schema.
  static Result<Table> Evaluate(const BoundView& view,
                                const TableProviderFn& provider);

  /// Incremental propagation: the signed view delta induced by
  /// `base_delta` on `relation`, with all *other* base relations read
  /// from `provider`. Returns an empty delta if the relation does not
  /// participate in the view. The result is normalized (sorted, zero
  /// rows dropped).
  ///
  /// Correctness requires the caller to choose the provider state
  /// according to its maintenance algorithm: a complete view manager
  /// reads the other relations as of the update being processed; a
  /// Strobe-style manager reads live state and compensates by batching
  /// intertwined updates.
  static Result<TableDelta> EvaluateDelta(const BoundView& view,
                                          const std::string& relation,
                                          const TableDelta& base_delta,
                                          const TableProviderFn& provider);

  /// Converts a single source update into the equivalent signed delta on
  /// its base relation (modify = delete old + insert new).
  static TableDelta UpdateToBaseDelta(const Update& update);
};

}  // namespace mvc
