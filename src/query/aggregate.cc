#include "query/aggregate.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace mvc {

const char* AggregateFnToString(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kCount:
      return "COUNT";
    case AggregateFn::kSum:
      return "SUM";
    case AggregateFn::kMin:
      return "MIN";
    case AggregateFn::kMax:
      return "MAX";
  }
  return "?";
}

Result<Schema> AggregateSpec::OutputSchema(const Schema& spj_output) const {
  std::vector<Column> columns;
  for (const std::string& name : group_by) {
    MVC_ASSIGN_OR_RETURN(size_t idx, spj_output.ColumnIndex(name));
    columns.push_back(spj_output.column(idx));
  }
  for (const AggregateColumn& agg : aggregates) {
    if (agg.fn != AggregateFn::kCount) {
      MVC_ASSIGN_OR_RETURN(size_t idx,
                           spj_output.ColumnIndex(agg.input_column));
      if (spj_output.column(idx).type != ValueType::kInt64) {
        return Status::InvalidArgument(
            StrCat(AggregateFnToString(agg.fn), " input '",
                   agg.input_column, "' must be INT64"));
      }
    }
    columns.push_back(Column{agg.output_name, ValueType::kInt64});
  }
  if (columns.empty()) {
    return Status::InvalidArgument("aggregate spec produces no columns");
  }
  return Schema(std::move(columns));
}

std::string AggregateSpec::ToString() const {
  std::vector<std::string> parts;
  for (const AggregateColumn& agg : aggregates) {
    parts.push_back(StrCat(AggregateFnToString(agg.fn), "(",
                           agg.fn == AggregateFn::kCount ? "*"
                                                         : agg.input_column,
                           ") AS ", agg.output_name));
  }
  return StrCat("GROUP BY [", JoinToString(group_by, ", "), "] -> ",
                JoinToString(parts, ", "));
}

Result<AggregateState> AggregateState::Build(const BoundView& view,
                                             const AggregateSpec& spec,
                                             const TableProviderFn& provider) {
  const Schema& spj_schema = view.output_schema();
  MVC_ASSIGN_OR_RETURN(Schema output, spec.OutputSchema(spj_schema));
  std::vector<size_t> group_offsets;
  for (const std::string& name : spec.group_by) {
    MVC_ASSIGN_OR_RETURN(size_t idx, spj_schema.ColumnIndex(name));
    group_offsets.push_back(idx);
  }
  std::vector<std::optional<size_t>> input_offsets;
  for (const AggregateColumn& agg : spec.aggregates) {
    if (agg.fn == AggregateFn::kCount) {
      input_offsets.push_back(std::nullopt);
    } else {
      MVC_ASSIGN_OR_RETURN(size_t idx,
                           spj_schema.ColumnIndex(agg.input_column));
      input_offsets.push_back(idx);
    }
  }
  AggregateState state(spec, std::move(output), std::move(group_offsets),
                       std::move(input_offsets));

  MVC_ASSIGN_OR_RETURN(Table core, ViewEvaluator::Evaluate(view, provider));
  Status st;
  core.ForEachRow([&](const Tuple& row, int64_t count) {
    if (!st.ok()) return;
    Group& group = state.groups_[state.GroupKey(row)];
    st = state.Accumulate(row, count, &group);
  });
  MVC_RETURN_IF_ERROR(st);
  return state;
}

Tuple AggregateState::GroupKey(const Tuple& spj_row) const {
  Tuple key;
  key.reserve(group_offsets_.size());
  for (size_t off : group_offsets_) key.push_back(spj_row[off]);
  return key;
}

Tuple AggregateState::GroupRow(const Tuple& key, const Group& group) const {
  Tuple row = key;
  row.reserve(key.size() + spec_.aggregates.size());
  for (size_t i = 0; i < spec_.aggregates.size(); ++i) {
    switch (spec_.aggregates[i].fn) {
      case AggregateFn::kCount:
      case AggregateFn::kSum:
        row.emplace_back(group.accums[i]);
        break;
      case AggregateFn::kMin:
        MVC_CHECK(!group.value_bags[i].empty());
        row.emplace_back(group.value_bags[i].begin()->first);
        break;
      case AggregateFn::kMax:
        MVC_CHECK(!group.value_bags[i].empty());
        row.emplace_back(group.value_bags[i].rbegin()->first);
        break;
    }
  }
  return row;
}

Status AggregateState::Accumulate(const Tuple& spj_row, int64_t count,
                                  Group* group) const {
  if (group->accums.empty()) {
    group->accums.assign(spec_.aggregates.size(), 0);
    group->value_bags.assign(spec_.aggregates.size(), {});
  }
  group->row_count += count;
  if (group->row_count < 0) {
    return Status::Internal(
        StrCat("aggregate group ", TupleToString(GroupKey(spj_row)),
               " has negative row count (bad delta)"));
  }
  for (size_t i = 0; i < spec_.aggregates.size(); ++i) {
    if (spec_.aggregates[i].fn == AggregateFn::kCount) {
      group->accums[i] += count;
      continue;
    }
    const Value& v = spj_row[*input_offsets_[i]];
    if (v.type() != ValueType::kInt64) {
      return Status::InvalidArgument(
          StrCat(AggregateFnToString(spec_.aggregates[i].fn),
                 " over non-INT64 value ", v.ToString()));
    }
    switch (spec_.aggregates[i].fn) {
      case AggregateFn::kSum:
        group->accums[i] += count * v.AsInt64();
        break;
      case AggregateFn::kMin:
      case AggregateFn::kMax: {
        auto& bag = group->value_bags[i];
        int64_t& multiplicity = bag[v.AsInt64()];
        multiplicity += count;
        if (multiplicity < 0) {
          return Status::Internal(
              StrCat("MIN/MAX bag for value ", v.AsInt64(),
                     " went negative (bad delta)"));
        }
        if (multiplicity == 0) bag.erase(v.AsInt64());
        break;
      }
      case AggregateFn::kCount:
        break;
    }
  }
  return Status::OK();
}

Result<TableDelta> AggregateState::Fold(const TableDelta& spj_delta,
                                        const std::string& target) {
  TableDelta out;
  out.target = target;
  // Collect affected groups first so each group contributes exactly one
  // old-row/new-row pair even when several delta rows hit it.
  std::map<Tuple, std::vector<const DeltaRow*>> by_group;
  for (const DeltaRow& row : spj_delta.rows) {
    by_group[GroupKey(row.tuple)].push_back(&row);
  }
  for (const auto& [key, rows] : by_group) {
    auto it = groups_.find(key);
    const bool existed = it != groups_.end() && it->second.row_count > 0;
    if (existed) out.Add(GroupRow(key, it->second), -1);
    Group& group = groups_[key];
    for (const DeltaRow* row : rows) {
      MVC_RETURN_IF_ERROR(Accumulate(row->tuple, row->count, &group));
    }
    if (group.row_count > 0) {
      out.Add(GroupRow(key, group), 1);
    } else {
      groups_.erase(key);
    }
  }
  out.Normalize();
  return out;
}

Table AggregateState::Materialize(const std::string& name) const {
  Table out(name, output_schema_);
  for (const auto& [key, group] : groups_) {
    MVC_CHECK(out.Insert(GroupRow(key, group)).ok());
  }
  return out;
}

Result<Table> EvaluateAggregate(const BoundView& view,
                                const AggregateSpec& spec,
                                const TableProviderFn& provider,
                                const std::string& result_name) {
  MVC_ASSIGN_OR_RETURN(AggregateState state,
                       AggregateState::Build(view, spec, provider));
  return state.Materialize(result_name);
}

}  // namespace mvc
