// Predicate expressions over (joined) tuples.
//
// View definitions use a predicate tree of comparisons combined with
// AND/OR/NOT. Before evaluation a predicate is *bound*: column references
// are resolved to offsets within the concatenated join tuple, which also
// lets the planner classify conjuncts (join vs. selection) by the set of
// relations they touch.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace mvc {

/// Reference to `relation.column`. `relation` may be empty, in which case
/// binding resolves the column name against all relations and requires it
/// to be unambiguous.
struct ColumnRef {
  std::string relation;
  std::string column;

  std::string ToString() const {
    return relation.empty() ? column : relation + "." + column;
  }
  bool operator==(const ColumnRef& other) const {
    return relation == other.relation && column == other.column;
  }
};

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpToString(CompareOp op);

/// Applies `op` to two values using the Value total order.
bool CompareValues(CompareOp op, const Value& lhs, const Value& rhs);

/// Unbound predicate tree.
class Predicate {
 public:
  enum class Kind : uint8_t { kTrue, kComparison, kAnd, kOr, kNot };

  /// One side of a comparison: a column reference or a constant.
  struct Operand {
    bool is_column = false;
    ColumnRef column;
    Value constant;

    static Operand Col(ColumnRef ref) {
      Operand o;
      o.is_column = true;
      o.column = std::move(ref);
      return o;
    }
    static Operand Const(Value v) {
      Operand o;
      o.constant = std::move(v);
      return o;
    }
    std::string ToString() const {
      return is_column ? column.ToString() : constant.ToString();
    }
  };

  /// Builders.
  static Predicate True();
  static Predicate Compare(CompareOp op, Operand lhs, Operand rhs);
  static Predicate ColEqCol(ColumnRef lhs, ColumnRef rhs) {
    return Compare(CompareOp::kEq, Operand::Col(std::move(lhs)),
                   Operand::Col(std::move(rhs)));
  }
  static Predicate ColEqConst(ColumnRef lhs, Value rhs) {
    return Compare(CompareOp::kEq, Operand::Col(std::move(lhs)),
                   Operand::Const(std::move(rhs)));
  }
  static Predicate ColCmpConst(CompareOp op, ColumnRef lhs, Value rhs) {
    return Compare(op, Operand::Col(std::move(lhs)),
                   Operand::Const(std::move(rhs)));
  }
  static Predicate And(std::vector<Predicate> children);
  static Predicate Or(std::vector<Predicate> children);
  static Predicate Not(Predicate child);

  Kind kind() const { return kind_; }
  CompareOp op() const { return op_; }
  const Operand& lhs() const { return lhs_; }
  const Operand& rhs() const { return rhs_; }
  const std::vector<Predicate>& children() const { return children_; }

  /// True if the tree is the constant-true predicate (no conjuncts).
  bool IsTrivial() const { return kind_ == Kind::kTrue; }

  /// Flattens nested ANDs into a conjunct list. A non-AND root yields a
  /// single conjunct; kTrue yields none.
  std::vector<const Predicate*> Conjuncts() const;

  /// All column references in the tree.
  void CollectColumns(std::vector<ColumnRef>* out) const;

  std::string ToString() const;

  /// Rebuilds the tree with every ColumnRef replaced by `fn(ref)`.
  /// Structure, operators, and constants are preserved. The shared
  /// delta planner uses this to rebind view conjuncts against synthetic
  /// plan-node schemas.
  Predicate RewriteColumns(
      const std::function<ColumnRef(const ColumnRef&)>& fn) const;

 private:
  Kind kind_ = Kind::kTrue;
  CompareOp op_ = CompareOp::kEq;
  Operand lhs_;
  Operand rhs_;
  std::vector<Predicate> children_;
};

/// Predicate with column references resolved to offsets in a concatenated
/// join tuple. Evaluation is offset-based and allocation free.
class BoundPredicate {
 public:
  /// Binds `pred` by resolving every ColumnRef through `resolver`, which
  /// returns the global offset for a reference or an error.
  static Result<BoundPredicate> Bind(
      const Predicate& pred,
      const std::function<Result<size_t>(const ColumnRef&)>& resolver);

  /// Evaluates against a tuple wide enough to cover every bound offset.
  bool Evaluate(const Tuple& row) const;

  /// Evaluates against any row representation through an accessor
  /// `const Value&(size_t offset)`. This is how the columnar scan
  /// executor evaluates residual predicates without reassembling tuples:
  /// the accessor indexes straight into per-column value vectors.
  template <typename RowAccessor>
  bool EvaluateAt(const RowAccessor& at) const {
    switch (kind_) {
      case Predicate::Kind::kTrue:
        return true;
      case Predicate::Kind::kComparison:
        return CompareValues(op_, lhs_.is_column ? at(lhs_.offset)
                                                 : lhs_.constant,
                             rhs_.is_column ? at(rhs_.offset) : rhs_.constant);
      case Predicate::Kind::kAnd:
        for (const BoundPredicate& child : children_) {
          if (!child.EvaluateAt(at)) return false;
        }
        return true;
      case Predicate::Kind::kOr:
        for (const BoundPredicate& child : children_) {
          if (child.EvaluateAt(at)) return true;
        }
        return false;
      case Predicate::Kind::kNot:
        return !children_.front().EvaluateAt(at);
    }
    return false;
  }

  /// Largest column offset referenced (0 if none).
  size_t MaxOffset() const { return max_offset_; }

  /// True if no column references appear.
  bool IsConstant() const { return offsets_used_ == 0; }

  /// If this bound predicate is a single `col == col` comparison, returns
  /// the two offsets (lo, hi by offset order).
  bool AsEquiJoin(size_t* lo, size_t* hi) const;

 private:
  struct BoundOperand {
    bool is_column = false;
    size_t offset = 0;
    Value constant;
  };
  Predicate::Kind kind_ = Predicate::Kind::kTrue;
  CompareOp op_ = CompareOp::kEq;
  BoundOperand lhs_;
  BoundOperand rhs_;
  std::vector<BoundPredicate> children_;
  size_t max_offset_ = 0;
  size_t offsets_used_ = 0;
};

}  // namespace mvc
