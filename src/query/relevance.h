// Irrelevant-update detection (Blakeley, Coburn, Larson style).
//
// The integrator must compute REL_i, the set of views a source update can
// affect. The coarse test is base-relation membership; the finer test
// evaluates the selection conjuncts that mention only the updated
// relation against the updated tuple — if any such conjunct rejects the
// tuple, the update cannot change the view and the view is pruned from
// REL_i, saving a view-manager round trip and an empty action list.

#pragma once

#include "query/view_def.h"
#include "storage/update.h"

namespace mvc {

/// True if a tuple change in `relation` with value `t` could contribute
/// to `view`: the relation participates and every single-relation
/// conjunct over it accepts `t`. Conservative (never prunes a relevant
/// update).
bool TupleMayAffectView(const BoundView& view, const std::string& relation,
                        const Tuple& t);

/// Relevance of a whole update; a MODIFY is relevant if either the old or
/// the new tuple may affect the view.
bool UpdateIsRelevant(const BoundView& view, const Update& update);

}  // namespace mvc
