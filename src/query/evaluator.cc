#include "query/evaluator.h"

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "storage/update.h"

namespace mvc {

namespace {

/// Intermediate join row: a prefix of the concatenated tuple plus its
/// multiplicity (signed during delta propagation).
struct JoinRow {
  Tuple tuple;
  int64_t count;
};

/// Source of rows for one relation in the join: either a table or a
/// signed delta.
struct RelationRows {
  const Table* table = nullptr;
  const TableDelta* delta = nullptr;

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (table != nullptr) {
      table->ForEachRow([&](const Tuple& t, int64_t c) { fn(t, c); });
    } else {
      for (const DeltaRow& row : delta->rows) fn(row.tuple, row.count);
    }
  }
};

/// Composite hash key over a subset of tuple positions.
struct KeyHash {
  size_t operator()(const Tuple& key) const { return TupleHash{}(key); }
};

/// Evaluates the join pipeline shared by full evaluation and delta
/// propagation. `sources[i]` feeds relation i. Calls `emit` with each
/// fully joined row and its multiplicity.
Status RunJoin(const BoundView& view, const std::vector<RelationRows>& sources,
               const std::function<void(const Tuple&, int64_t)>& emit) {
  const size_t n = view.num_relations();

  // Conjuncts grouped by the step at which they become applicable.
  std::vector<std::vector<const BoundView::Conjunct*>> at_step(n);
  for (const BoundView::Conjunct& c : view.conjuncts()) {
    at_step[c.max_relation].push_back(&c);
  }

  // Seed with relation 0, applying step-0 conjuncts.
  std::vector<JoinRow> rows;
  sources[0].ForEach([&](const Tuple& t, int64_t c) {
    for (const BoundView::Conjunct* conj : at_step[0]) {
      if (!conj->bound.Evaluate(t)) return;
    }
    rows.push_back(JoinRow{t, c});
  });

  for (size_t k = 1; k < n && !rows.empty(); ++k) {
    const size_t rel_off = view.relation_offset(k);
    const size_t rel_width = view.relation_schema(k).num_columns();

    // Split applicable conjuncts into hash-join keys (prefix offset,
    // relation-k local offset) and residual filters.
    std::vector<std::pair<size_t, size_t>> keys;
    std::vector<const BoundView::Conjunct*> residual;
    for (const BoundView::Conjunct* conj : at_step[k]) {
      size_t lo = 0;
      size_t hi = 0;
      if (conj->bound.AsEquiJoin(&lo, &hi) && lo < rel_off && hi >= rel_off &&
          hi < rel_off + rel_width) {
        keys.emplace_back(lo, hi - rel_off);
      } else {
        residual.push_back(conj);
      }
    }

    std::vector<JoinRow> next;
    if (!keys.empty()) {
      // Build hash table over relation k keyed by its join columns.
      std::unordered_multimap<Tuple, JoinRow, KeyHash> build;
      sources[k].ForEach([&](const Tuple& t, int64_t c) {
        Tuple key;
        key.reserve(keys.size());
        for (const auto& [_, local] : keys) key.push_back(t[local]);
        build.emplace(std::move(key), JoinRow{t, c});
      });
      for (const JoinRow& left : rows) {
        Tuple key;
        key.reserve(keys.size());
        for (const auto& [prefix_off, _] : keys) {
          key.push_back(left.tuple[prefix_off]);
        }
        auto [begin, end] = build.equal_range(key);
        for (auto it = begin; it != end; ++it) {
          Tuple combined = left.tuple;
          combined.insert(combined.end(), it->second.tuple.begin(),
                          it->second.tuple.end());
          bool pass = true;
          for (const BoundView::Conjunct* conj : residual) {
            if (!conj->bound.Evaluate(combined)) {
              pass = false;
              break;
            }
          }
          if (pass) {
            next.push_back(JoinRow{std::move(combined),
                                   left.count * it->second.count});
          }
        }
      }
    } else {
      // Nested-loop cross product with residual filters.
      std::vector<JoinRow> right_rows;
      sources[k].ForEach([&](const Tuple& t, int64_t c) {
        right_rows.push_back(JoinRow{t, c});
      });
      for (const JoinRow& left : rows) {
        for (const JoinRow& right : right_rows) {
          Tuple combined = left.tuple;
          combined.insert(combined.end(), right.tuple.begin(),
                          right.tuple.end());
          bool pass = true;
          for (const BoundView::Conjunct* conj : residual) {
            if (!conj->bound.Evaluate(combined)) {
              pass = false;
              break;
            }
          }
          if (pass) {
            next.push_back(
                JoinRow{std::move(combined), left.count * right.count});
          }
        }
      }
    }
    rows = std::move(next);
  }

  for (const JoinRow& row : rows) emit(row.tuple, row.count);
  return Status::OK();
}

}  // namespace

TableProviderFn CatalogProvider(const Catalog* catalog) {
  return [catalog](const std::string& name)
             -> Result<std::shared_ptr<const Table>> {
    MVC_ASSIGN_OR_RETURN(const Table* table, catalog->GetTable(name));
    // Non-owning: the catalog outlives the evaluation.
    return std::shared_ptr<const Table>(table, [](const Table*) {});
  };
}

Result<Table> ViewEvaluator::Evaluate(const BoundView& view,
                                      const TableProviderFn& provider) {
  std::vector<std::shared_ptr<const Table>> pins(view.num_relations());
  std::vector<RelationRows> sources(view.num_relations());
  for (size_t i = 0; i < view.num_relations(); ++i) {
    MVC_ASSIGN_OR_RETURN(pins[i], provider(view.relation(i)));
    sources[i].table = pins[i].get();
  }
  Table result(view.name(), view.output_schema());
  Status emit_status;
  MVC_RETURN_IF_ERROR(
      RunJoin(view, sources, [&](const Tuple& joined, int64_t count) {
        if (!emit_status.ok()) return;
        MVC_DCHECK(count > 0);
        emit_status = result.Insert(view.Project(joined), count);
      }));
  MVC_RETURN_IF_ERROR(emit_status);
  return result;
}

Result<TableDelta> ViewEvaluator::EvaluateDelta(
    const BoundView& view, const std::string& relation,
    const TableDelta& base_delta, const TableProviderFn& provider) {
  TableDelta out;
  out.target = view.name();
  auto rel_idx = view.RelationIndex(relation);
  if (!rel_idx.has_value() || base_delta.empty()) return out;

  std::vector<std::shared_ptr<const Table>> pins(view.num_relations());
  std::vector<RelationRows> sources(view.num_relations());
  for (size_t i = 0; i < view.num_relations(); ++i) {
    if (i == *rel_idx) {
      sources[i].delta = &base_delta;
    } else {
      MVC_ASSIGN_OR_RETURN(pins[i], provider(view.relation(i)));
      sources[i].table = pins[i].get();
    }
  }
  MVC_RETURN_IF_ERROR(
      RunJoin(view, sources, [&](const Tuple& joined, int64_t count) {
        out.Add(view.Project(joined), count);
      }));
  out.Normalize();
  return out;
}

TableDelta ViewEvaluator::UpdateToBaseDelta(const Update& update) {
  TableDelta delta;
  delta.target = update.relation;
  switch (update.op) {
    case UpdateOp::kInsert:
      delta.Add(update.tuple, 1);
      break;
    case UpdateOp::kDelete:
      delta.Add(update.tuple, -1);
      break;
    case UpdateOp::kModify:
      delta.Add(update.tuple, -1);
      delta.Add(update.new_tuple, 1);
      break;
  }
  return delta;
}

}  // namespace mvc
