#include "query/view_def.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/string_util.h"

namespace mvc {

std::string ViewDefinition::ToString() const {
  std::ostringstream os;
  os << name << " = ";
  os << JoinToString(relations, " JOIN ");
  if (!predicate.IsTrivial()) os << " WHERE " << predicate.ToString();
  if (!projection.empty()) {
    std::vector<std::string> cols;
    for (const ColumnRef& c : projection) cols.push_back(c.ToString());
    os << " PROJECT [" << JoinToString(cols, ", ") << "]";
  }
  return os.str();
}

Result<BoundView> BoundView::Bind(
    const ViewDefinition& def, const std::map<std::string, Schema>& schemas) {
  BoundView bv;
  bv.def_ = def;
  if (def.relations.empty()) {
    return Status::InvalidArgument(
        StrCat("view '", def.name, "' joins no relations"));
  }
  std::set<std::string> seen;
  for (const std::string& rel : def.relations) {
    if (!seen.insert(rel).second) {
      return Status::InvalidArgument(
          StrCat("view '", def.name, "': relation '", rel,
                 "' appears more than once (self joins unsupported)"));
    }
    auto it = schemas.find(rel);
    if (it == schemas.end()) {
      return Status::NotFound(
          StrCat("view '", def.name, "': unknown relation '", rel, "'"));
    }
    bv.rel_offsets_.push_back(bv.total_width_);
    bv.base_schemas_.push_back(it->second);
    bv.total_width_ += it->second.num_columns();
  }

  // Resolver: ColumnRef -> global offset in the concatenated tuple.
  auto resolve = [&bv](const ColumnRef& ref) -> Result<size_t> {
    if (!ref.relation.empty()) {
      auto rel_idx = bv.RelationIndex(ref.relation);
      if (!rel_idx.has_value()) {
        return Status::NotFound(StrCat("view '", bv.def_.name,
                                       "': relation '", ref.relation,
                                       "' not part of the view"));
      }
      MVC_ASSIGN_OR_RETURN(
          size_t col, bv.base_schemas_[*rel_idx].ColumnIndex(ref.column));
      return bv.rel_offsets_[*rel_idx] + col;
    }
    // Unqualified: must resolve to exactly one relation.
    std::optional<size_t> found;
    for (size_t i = 0; i < bv.base_schemas_.size(); ++i) {
      auto col = bv.base_schemas_[i].FindColumn(ref.column);
      if (col.has_value()) {
        if (found.has_value()) {
          return Status::InvalidArgument(
              StrCat("view '", bv.def_.name, "': column '", ref.column,
                     "' is ambiguous"));
        }
        found = bv.rel_offsets_[i] + *col;
      }
    }
    if (!found.has_value()) {
      return Status::NotFound(StrCat("view '", bv.def_.name, "': column '",
                                     ref.column, "' not found"));
    }
    return *found;
  };

  // Maps a global offset back to its relation index.
  auto relation_of_offset = [&bv](size_t offset) {
    size_t rel = 0;
    for (size_t i = 0; i < bv.rel_offsets_.size(); ++i) {
      if (offset >= bv.rel_offsets_[i]) rel = i;
    }
    return rel;
  };

  // Bind and classify each top-level conjunct.
  for (const Predicate* conj : def.predicate.Conjuncts()) {
    Conjunct c;
    c.unbound = *conj;
    MVC_ASSIGN_OR_RETURN(c.bound, BoundPredicate::Bind(*conj, resolve));
    std::vector<ColumnRef> cols;
    conj->CollectColumns(&cols);
    std::set<size_t> rels;
    for (const ColumnRef& ref : cols) {
      MVC_ASSIGN_OR_RETURN(size_t off, resolve(ref));
      rels.insert(relation_of_offset(off));
    }
    c.relations.assign(rels.begin(), rels.end());
    c.max_relation = c.relations.empty() ? 0 : c.relations.back();
    bv.conjuncts_.push_back(std::move(c));
  }

  // Output schema from the projection (or all columns if empty).
  std::vector<Column> out_cols;
  if (def.projection.empty()) {
    for (size_t i = 0; i < bv.base_schemas_.size(); ++i) {
      for (size_t j = 0; j < bv.base_schemas_[i].num_columns(); ++j) {
        bv.projection_offsets_.push_back(bv.rel_offsets_[i] + j);
        out_cols.push_back(bv.base_schemas_[i].column(j));
      }
    }
  } else {
    for (const ColumnRef& ref : def.projection) {
      MVC_ASSIGN_OR_RETURN(size_t off, resolve(ref));
      bv.projection_offsets_.push_back(off);
      size_t rel = relation_of_offset(off);
      size_t local = off - bv.rel_offsets_[rel];
      out_cols.push_back(bv.base_schemas_[rel].column(local));
    }
  }
  // Disambiguate duplicate output column names by qualifying them.
  for (size_t i = 0; i < out_cols.size(); ++i) {
    for (size_t j = i + 1; j < out_cols.size(); ++j) {
      if (out_cols[i].name == out_cols[j].name) {
        size_t rel_j = relation_of_offset(bv.projection_offsets_[j]);
        out_cols[j].name =
            StrCat(def.relations[rel_j], ".", out_cols[j].name);
      }
    }
  }
  bv.output_schema_ = Schema(std::move(out_cols));
  return bv;
}

std::optional<size_t> BoundView::RelationIndex(
    const std::string& relation) const {
  for (size_t i = 0; i < def_.relations.size(); ++i) {
    if (def_.relations[i] == relation) return i;
  }
  return std::nullopt;
}

Tuple BoundView::Project(const Tuple& joined) const {
  Tuple out;
  out.reserve(projection_offsets_.size());
  for (size_t off : projection_offsets_) out.push_back(joined[off]);
  return out;
}

}  // namespace mvc
