#include "source/source_process.h"

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mvc {

void SourceProcess::EnableObservability(obs::MetricsRegistry* metrics,
                                        obs::Tracer* tracer) {
  tracer_ = tracer;
  if (metrics == nullptr) return;
  m_posted_ = metrics->RegisterCounter(
      StrCat("source.txns_posted{process=\"", name(), "\"}"));
}

Status SourceProcess::LoadInitial(const std::string& relation,
                                  const Tuple& t) {
  if (!log_.empty()) {
    return Status::FailedPrecondition(
        "LoadInitial must precede all transactions");
  }
  MVC_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(relation));
  return table->Insert(t);
}

Status SourceProcess::ApplyUpdate(const Update& u) {
  if (u.source != name()) {
    return Status::InvalidArgument(StrCat("update for source '", u.source,
                                          "' sent to source '", name(), "'"));
  }
  MVC_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(u.relation));
  switch (u.op) {
    case UpdateOp::kInsert:
      return table->Insert(u.tuple);
    case UpdateOp::kDelete:
      return table->Delete(u.tuple);
    case UpdateOp::kModify:
      return table->Modify(u.tuple, u.new_tuple);
  }
  return Status::Internal("unknown update op");
}

Status SourceProcess::ExecuteTransaction(const std::vector<Update>& updates,
                                         int64_t global_txn_id,
                                         int32_t global_participants) {
  if (updates.empty()) {
    return Status::InvalidArgument("transaction has no updates");
  }
  // Apply all updates; failure of any aborts (earlier updates in the
  // same transaction are rolled back to preserve atomicity).
  std::vector<Update> applied;
  for (const Update& u : updates) {
    Status st = ApplyUpdate(u);
    if (!st.ok()) {
      for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
        Update undo = *it;
        switch (it->op) {
          case UpdateOp::kInsert:
            undo.op = UpdateOp::kDelete;
            break;
          case UpdateOp::kDelete:
            undo.op = UpdateOp::kInsert;
            break;
          case UpdateOp::kModify:
            std::swap(undo.tuple, undo.new_tuple);
            break;
        }
        MVC_CHECK(ApplyUpdate(undo).ok());
      }
      return st;
    }
    applied.push_back(u);
  }

  SourceTransaction txn;
  txn.local_seq = state() + 1;
  txn.updates = updates;
  txn.global_txn_id = global_txn_id;
  txn.global_participants = global_participants;
  log_.push_back(txn);

  if (m_posted_ != nullptr) m_posted_->Add();
  if (tracer_ != nullptr) {
    // Updates are numbered only at the integrator; a source post is
    // identified by its source-local sequence number in aux.
    tracer_->Record(obs::Span{obs::SpanKind::kSourcePost, kInvalidUpdate,
                              kInvalidView, -1, txn.local_seq, Now(),
                              name()});
  }

  if (integrator_ != kInvalidProcess) {
    auto msg = std::make_unique<SourceTxnMsg>();
    msg->txn = txn;
    SendAfter(integrator_, std::move(msg), options_.report_delay);
  }
  return Status::OK();
}

Result<Table> SourceProcess::TableAtState(const std::string& relation,
                                          int64_t state) const {
  if (state < 0 || state > this->state()) {
    return Status::OutOfRange(StrCat("source '", name(), "' has no state ",
                                     state, " (current ", this->state(),
                                     ")"));
  }
  MVC_ASSIGN_OR_RETURN(const Table* current, catalog_.GetTable(relation));
  Table snapshot = current->Clone();
  // Undo transactions state+1 .. current, newest first.
  for (int64_t i = this->state() - 1; i >= state; --i) {
    const SourceTransaction& txn = log_[static_cast<size_t>(i)];
    for (auto it = txn.updates.rbegin(); it != txn.updates.rend(); ++it) {
      if (it->relation != relation) continue;
      switch (it->op) {
        case UpdateOp::kInsert:
          MVC_RETURN_IF_ERROR(snapshot.Delete(it->tuple));
          break;
        case UpdateOp::kDelete:
          MVC_RETURN_IF_ERROR(snapshot.Insert(it->tuple));
          break;
        case UpdateOp::kModify:
          MVC_RETURN_IF_ERROR(snapshot.Modify(it->new_tuple, it->tuple));
          break;
      }
    }
  }
  return snapshot;
}

void SourceProcess::OnMessage(ProcessId from, MessagePtr msg) {
  switch (msg->kind) {
    case Message::Kind::kInjectTxn: {
      auto* inject = static_cast<InjectTxnMsg*>(msg.get());
      Status st = ExecuteTransaction(inject->updates, inject->global_txn_id,
                                     inject->global_participants);
      if (!st.ok()) {
        MVC_LOG_ERROR() << "source " << name()
                        << ": transaction failed: " << st;
      }
      return;
    }
    case Message::Kind::kQueryRequest: {
      auto* req = static_cast<QueryRequestMsg*>(msg.get());
      auto resp = std::make_unique<QueryResponseMsg>();
      resp->request_id = req->request_id;
      resp->relation = req->relation;
      MVC_CHECK(registry_ != nullptr) << "source registry not wired";
      const std::string& relation = registry_->RelationName(req->relation);
      if (req->as_of_state >= 0) {
        auto table = TableAtState(relation, req->as_of_state);
        MVC_CHECK(table.ok()) << table.status().ToString();
        resp->snapshot = std::move(table).value();
        resp->state = req->as_of_state;
      } else {
        auto table = catalog_.GetTable(relation);
        MVC_CHECK(table.ok()) << table.status().ToString();
        resp->snapshot = (*table)->Clone();
        resp->state = state();
      }
      SendAfter(from, std::move(resp), options_.query_delay);
      return;
    }
    default:
      MVC_LOG_ERROR() << "source " << name() << ": unexpected message "
                      << msg->Summary();
  }
}

}  // namespace mvc
