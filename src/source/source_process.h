// An autonomous data source.
//
// Each source owns a set of base relations and executes transactions
// serializably (the actor model gives serial execution, the strongest
// serializable schedule). Committed transactions are appended to a
// versioned log and reported to the integrator in commit order — the
// paper's source-consistency assumption (Section 2.1).
//
// Sources answer two kinds of relation queries from view managers:
//  * current-state queries (Strobe-style strongly consistent managers) —
//    the answer is tagged with the source-local state number it reflects;
//  * as-of-state queries (complete managers) — answered from the
//    versioned log by undoing recent transactions, modelling a
//    multiversion source.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/protocol.h"
#include "net/runtime.h"
#include "storage/catalog.h"
#include "storage/id_registry.h"
#include "storage/update.h"

namespace mvc {

namespace obs {
class MetricsRegistry;
class Tracer;
class Counter;
}  // namespace obs

/// Tunables for one source.
struct SourceOptions {
  /// Simulated processing time before a query answer is sent.
  TimeMicros query_delay = 0;
  /// Simulated processing time before an update report is sent.
  TimeMicros report_delay = 0;
};

class SourceProcess : public Process {
 public:
  SourceProcess(std::string name, SourceOptions options = {})
      : Process(std::move(name)), options_(options) {}

  /// --- Setup API (before the runtime starts) ---

  Status CreateTable(const std::string& relation, const Schema& schema) {
    return catalog_.CreateTable(relation, schema);
  }

  /// Loads an initial tuple into the state-0 contents of a relation.
  Status LoadInitial(const std::string& relation, const Tuple& t);

  /// Wires the integrator destination. Must be set before Run.
  void SetIntegrator(ProcessId integrator) { integrator_ = integrator; }

  /// Resolves RelationIds in query requests back to catalog names; must
  /// be set before the runtime starts and outlive the process.
  void SetRegistry(const IdRegistry* registry) { registry_ = registry; }

  /// Wires the observability hub (before the runtime starts): every
  /// committed transaction records a kSourcePost span (aux = local
  /// sequence number) and bumps source.txns_posted. Either pointer may
  /// be null.
  void EnableObservability(obs::MetricsRegistry* metrics,
                           obs::Tracer* tracer);

  /// --- Direct API (used by drivers co-located with the runtime) ---

  /// Executes a transaction immediately (must be called from within the
  /// source's own message handler or before the runtime starts delivery;
  /// drivers normally send InjectTxnMsg instead).
  Status ExecuteTransaction(const std::vector<Update>& updates,
                            int64_t global_txn_id = 0,
                            int32_t global_participants = 0);

  /// --- Introspection ---

  /// Source-local state number (number of committed transactions).
  int64_t state() const { return static_cast<int64_t>(log_.size()); }

  const Catalog& catalog() const { return catalog_; }

  /// Relation contents as of local state `state` (0 = initial). Serves
  /// historical reads by undoing the suffix of the log.
  Result<Table> TableAtState(const std::string& relation,
                             int64_t state) const;

  /// The committed-transaction log (for tests).
  const std::vector<SourceTransaction>& log() const { return log_; }

  /// --- Actor interface ---
  void OnMessage(ProcessId from, MessagePtr msg) override;

 private:
  Status ApplyUpdate(const Update& u);

  SourceOptions options_;
  const IdRegistry* registry_ = nullptr;
  Catalog catalog_;
  std::vector<SourceTransaction> log_;
  ProcessId integrator_ = kInvalidProcess;
  // --- Observability (null when disabled) ---
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* m_posted_ = nullptr;
};

}  // namespace mvc
