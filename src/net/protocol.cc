#include "net/protocol.h"

#include <sstream>

#include "common/string_util.h"
#include "net/runtime.h"

namespace mvc {

const char* MessageKindToString(Message::Kind kind) {
  switch (kind) {
    case Message::Kind::kSourceTxn:
      return "SourceTxn";
    case Message::Kind::kUpdate:
      return "Update";
    case Message::Kind::kRelSet:
      return "RelSet";
    case Message::Kind::kActionList:
      return "ActionList";
    case Message::Kind::kWarehouseTxn:
      return "WarehouseTxn";
    case Message::Kind::kTxnCommitted:
      return "TxnCommitted";
    case Message::Kind::kQueryRequest:
      return "QueryRequest";
    case Message::Kind::kQueryResponse:
      return "QueryResponse";
    case Message::Kind::kTick:
      return "Tick";
    case Message::Kind::kInjectTxn:
      return "InjectTxn";
    case Message::Kind::kReadViews:
      return "ReadViews";
    case Message::Kind::kViewsSnapshot:
      return "ViewsSnapshot";
    case Message::Kind::kCrash:
      return "Crash";
    case Message::Kind::kRecover:
      return "Recover";
    case Message::Kind::kReplayRequest:
      return "ReplayRequest";
    case Message::Kind::kReplayResponse:
      return "ReplayResponse";
    case Message::Kind::kRelResyncRequest:
      return "RelResyncRequest";
    case Message::Kind::kRelResyncResponse:
      return "RelResyncResponse";
    case Message::Kind::kAlResyncRequest:
      return "AlResyncRequest";
    case Message::Kind::kAlResyncResponse:
      return "AlResyncResponse";
    case Message::Kind::kCommitResyncRequest:
      return "CommitResyncRequest";
    case Message::Kind::kCommitResyncResponse:
      return "CommitResyncResponse";
    case Message::Kind::kCompactionStats:
      return "CompactionStats";
    case Message::Kind::kCompactionRequest:
      return "CompactionRequest";
    case Message::Kind::kCompactionResponse:
      return "CompactionResponse";
    case Message::Kind::kQueryView:
      return "QueryView";
    case Message::Kind::kQueryResult:
      return "QueryResult";
  }
  return "?";
}

std::string MessageStats::ToString() const {
  std::ostringstream os;
  os << "messages=" << total_messages;
  for (const auto& [kind, count] : by_kind) {
    os << " " << kind << "=" << count;
  }
  return os.str();
}

std::string ActionList::ToString(const IdRegistry* names) const {
  std::ostringstream os;
  os << "AL(";
  if (names != nullptr) {
    os << names->ViewName(view);
  } else {
    os << "V#" << view;
  }
  os << ", U" << update;
  if (first_update != update) os << " covering U" << first_update << "..";
  os << ", " << delta.rows.size() << " actions)";
  return os.str();
}

std::string WarehouseTransaction::ToString(const IdRegistry* names) const {
  std::ostringstream os;
  os << "WT" << txn_id << "(rows=[" << JoinToString(rows, ",") << "], views=[";
  if (names != nullptr) {
    for (size_t i = 0; i < views.size(); ++i) {
      if (i > 0) os << ",";
      os << names->ViewName(views[i]);
    }
  } else {
    os << JoinToString(views, ",");
  }
  os << "], " << actions.size() << " ALs";
  if (!depends_on.empty()) os << ", deps=[" << JoinToString(depends_on, ",") << "]";
  os << ")";
  return os.str();
}

std::string SourceTxnMsg::Summary() const { return txn.ToString(); }

std::string UpdateMsg::Summary() const {
  if (shard != 0) {
    return StrCat("U", update_id, "@s", shard, " ", txn.ToString());
  }
  return StrCat("U", update_id, " ", txn.ToString());
}

std::string RelSetMsg::Summary() const {
  if (shard != 0) {
    return StrCat("REL", update_id, "@s", shard, "={",
                  JoinToString(views, ","), "}");
  }
  return StrCat("REL", update_id, "={", JoinToString(views, ","), "}");
}

std::string ActionListMsg::Summary() const { return al.ToString(); }

std::string WarehouseTxnMsg::Summary() const { return txn.ToString(); }

std::string TxnCommittedMsg::Summary() const {
  return StrCat("committed WT", txn_id);
}

std::string QueryRequestMsg::Summary() const {
  return StrCat("query R#", relation,
                as_of_state >= 0 ? StrCat(" @state ", as_of_state) : "");
}

std::string QueryResponseMsg::Summary() const {
  return StrCat("answer R#", relation, " @state ", state, " (",
                snapshot.NumRows(), " rows)");
}

std::string TickMsg::Summary() const { return StrCat("tick ", tag); }

std::string ReadViewsMsg::Summary() const {
  return StrCat("read views [", JoinToString(views, ","), "]");
}

std::vector<Table> ViewsSnapshotMsg::TakeTables() {
  if (!handle.valid()) return std::move(snapshots);
  std::vector<Table> tables;
  tables.reserve(view_names.size());
  for (const std::string& name : view_names) {
    Result<Table> table = handle.MaterializeTable(name);
    MVC_CHECK(table.ok()) << table.status().ToString();
    tables.push_back(*std::move(table));
  }
  return tables;
}

std::string ViewsSnapshotMsg::Summary() const {
  if (!ok()) return StrCat("snapshot error: ", error);
  return StrCat("snapshot of ",
                handle.valid() ? view_names.size() : snapshots.size(),
                " views @commit ", as_of_commit);
}

std::string QueryViewMsg::Summary() const {
  return StrCat("query V#", view, ": ", query.Summary(),
                as_of_commit >= 0 ? StrCat(" @commit ", as_of_commit) : "");
}

std::string QueryResultMsg::Summary() const {
  if (shed) return StrCat("query shed (req ", request_id, ")");
  if (!error.empty()) return StrCat("query error: ", error);
  return StrCat("query result: ", rows.size(), " rows (matched ",
                matched_count, ") @commit ", as_of_commit);
}

std::string InjectTxnMsg::Summary() const {
  return StrCat("inject ", updates.size(), " updates");
}

std::string CrashMsg::Summary() const { return "crash"; }

std::string RecoverMsg::Summary() const { return "recover"; }

std::string ReplayRequestMsg::Summary() const {
  return StrCat("replay V#", view, " after U", after, " (epoch ", epoch, ")");
}

std::string ReplayResponseMsg::Summary() const {
  return StrCat("replay of ", updates.size(), " updates (epoch ", epoch,
                ")");
}

std::string RelResyncRequestMsg::Summary() const {
  return StrCat("rel resync after U", after, " (epoch ", epoch, ")");
}

std::string RelResyncResponseMsg::Summary() const {
  return StrCat("rel resync of ", rels.size(), " entries (epoch ", epoch,
                ")");
}

std::string AlResyncRequestMsg::Summary() const {
  return StrCat("AL resync V#", view, " after U", after, " (epoch ", epoch,
                ")");
}

std::string AlResyncResponseMsg::Summary() const {
  return StrCat("AL resync V#", view, ": ", action_lists.size(),
                " lists (epoch ", epoch, ")");
}

std::string CommitResyncRequestMsg::Summary() const {
  return StrCat("commit resync (epoch ", epoch, ")");
}

std::string CommitResyncResponseMsg::Summary() const {
  return StrCat("commit resync of ", committed.size(), " txns (epoch ",
                epoch, ")");
}

}  // namespace mvc
