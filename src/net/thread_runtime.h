// Real-thread runtime: one OS thread per process, mailbox delivery.
//
// Used by the concurrency benchmarks and a stress test to show the
// algorithms behave identically under genuine parallelism. Message
// latency and send delays are honoured on the wall clock by a dispatcher
// thread; per-channel FIFO is enforced the same way as in the simulator.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "net/runtime.h"
#include "net/sim_runtime.h"  // LatencyModel

namespace mvc {

/// Multi-threaded runtime. Run() starts one thread per registered
/// process, delivers messages until the system is quiescent (no message
/// in flight, no pending timer), then joins all threads.
class ThreadRuntime : public Runtime {
 public:
  explicit ThreadRuntime(uint64_t seed,
                         LatencyModel default_latency = LatencyModel::Zero());
  ~ThreadRuntime() override;

  void Send(ProcessId from, ProcessId to, MessagePtr msg,
            TimeMicros send_delay) override;

  /// Wall-clock microseconds since Run() started.
  TimeMicros Now() const override;

  void Run() override;

 private:
  struct Pending {
    TimeMicros deadline;
    uint64_t seq;
    ProcessId from;
    ProcessId to;
    Message* msg;
    bool operator>(const Pending& other) const {
      if (deadline != other.deadline) return deadline > other.deadline;
      return seq > other.seq;
    }
  };

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::pair<ProcessId, Message*>> queue;
  };

  static uint64_t ChannelKey(ProcessId from, ProcessId to) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
           static_cast<uint32_t>(to);
  }

  void DispatcherLoop();
  void WorkerLoop(ProcessId id);
  void OnHandled();

  TimeMicros DrawLatency(ProcessId from, ProcessId to);

  std::mutex dispatch_mu_;
  std::condition_variable dispatch_cv_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>
      delay_heap_;
  std::unordered_map<uint64_t, TimeMicros> channel_last_;
  uint64_t next_seq_ = 0;

  std::mutex rng_mu_;
  Rng rng_;
  LatencyModel default_latency_;

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::thread> workers_;
  std::thread dispatcher_;

  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  int64_t in_flight_ = 0;
  std::atomic<bool> stopping_{false};

  std::chrono::steady_clock::time_point start_;
  bool running_ = false;
};

}  // namespace mvc
