// Concrete message types exchanged between the warehouse system's
// processes, plus the ActionList and WarehouseTransaction payloads the
// merge algorithms coordinate.
//
// Naming follows the paper: update U_i is the i-th source transaction as
// numbered by the integrator; REL_i is the set of views U_i affects;
// AL^x_j is view manager x's action list whose application brings view
// V_x to the state consistent with the sources after U_j.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/message.h"
#include "query/scan.h"
#include "storage/delta.h"
#include "storage/id_registry.h"
#include "storage/table.h"
#include "storage/update.h"
#include "storage/versioned_store.h"

namespace mvc {

/// Identifies a global source transaction/update number assigned by the
/// integrator (1-based; matches the paper's U_1, U_2, ...).
using UpdateId = int64_t;
constexpr UpdateId kInvalidUpdate = 0;

/// The operations a view manager wants applied to its view, labelled with
/// the last update the list covers. A complete view manager emits one AL
/// per relevant update (first_update == update). A strongly consistent
/// manager may batch intertwined updates i_k..i_{k+n} into a single AL
/// labelled with the last one (Section 3.3).
struct ActionList {
  /// View this AL applies to (interned at wiring time).
  ViewId view = kInvalidView;
  /// j: applying the AL brings the view to the state after U_j.
  UpdateId update = kInvalidUpdate;
  /// Earliest update covered by this AL (== update for complete VMs).
  UpdateId first_update = kInvalidUpdate;
  /// All covered update ids, ascending. Collected only when the view
  /// manager runs with collect_covered (piggyback REL delivery, the
  /// consistency oracle, and crash recovery need it); release-mode ALs
  /// omit it and consumers fall back to the [first_update, update]
  /// label range.
  std::vector<UpdateId> covered;
  /// The actual view changes; may be empty (an empty AL is still sent,
  /// Section 3.3).
  TableDelta delta;
  /// Periodic-refresh managers (Section 6.3): when true the warehouse
  /// deletes the entire old view contents and installs `delta`'s
  /// (all-positive) rows as the new contents.
  bool replace_all = false;

  /// Renders "V#<id>"; pass `names` to render the interned view name.
  std::string ToString(const IdRegistry* names = nullptr) const;
};

/// A warehouse view-maintenance transaction assembled by a merge process:
/// all action lists that must commit atomically.
struct WarehouseTransaction {
  /// Merge-process-local id, increasing in submission order.
  int64_t txn_id = 0;
  /// The VUT rows (update ids) whose WT sets are folded in, ascending.
  std::vector<UpdateId> rows;
  /// Action lists, ordered so that dependent rows' ALs appear in row
  /// order (Section 4.3 batching requirement).
  std::vector<ActionList> actions;
  /// VS(WT): the set of views this transaction updates, sorted by id.
  std::vector<ViewId> views;
  /// txn_ids (same merge process) this transaction depends on: earlier
  /// transactions updating an overlapping view set that have not yet
  /// been observed committed at submission time.
  std::vector<int64_t> depends_on;
  /// The source state (max update id) the warehouse reflects after this
  /// transaction commits — used by the oracle and freshness metrics.
  UpdateId source_state = kInvalidUpdate;

  /// With `names`, view ids render as view names (trace output);
  /// without, they render as raw ids.
  std::string ToString(const IdRegistry* names = nullptr) const;
};

// ---------------------------------------------------------------------------
// Messages.

/// Source -> integrator: a committed source transaction, in commit order.
struct SourceTxnMsg : Message {
  SourceTxnMsg() : Message(Kind::kSourceTxn) {}
  SourceTransaction txn;
  std::string Summary() const override;
};

/// Integrator -> view manager: U_i (already globally numbered).
struct UpdateMsg : Message {
  UpdateMsg() : Message(Kind::kUpdate) {}
  UpdateId update_id = kInvalidUpdate;
  /// Integrator shard that numbered U_i (0 when unsharded).
  int32_t shard = 0;
  SourceTransaction txn;
  /// Alternate REL delivery scheme (Section 3.2): when set, this view
  /// manager is responsible for forwarding REL_i to the merge process
  /// with its next action list.
  bool carries_rel = false;
  /// REL_i, only meaningful when carries_rel.
  std::vector<ViewId> rel_views;
  std::string Summary() const override;
};

/// Integrator -> merge process: REL_i.
struct RelSetMsg : Message {
  RelSetMsg() : Message(Kind::kRelSet) {}
  UpdateId update_id = kInvalidUpdate;
  /// Integrator shard that numbered U_i (0 when unsharded).
  int32_t shard = 0;
  /// Views affected by U_i, sorted by id.
  std::vector<ViewId> views;
  std::string Summary() const override;
};

/// View manager -> merge process: AL^x_j.
struct ActionListMsg : Message {
  ActionListMsg() : Message(Kind::kActionList) {}
  ActionList al;
  /// When the alternate REL delivery scheme is enabled (Section 3.2),
  /// the integrator piggybacks REL_i on the view managers and the VM
  /// forwards it here instead of the integrator messaging the merge
  /// process directly.
  std::vector<RelSetMsg> piggybacked_rels;
  std::string Summary() const override;
};

/// Merge process -> warehouse.
struct WarehouseTxnMsg : Message {
  WarehouseTxnMsg() : Message(Kind::kWarehouseTxn) {}
  WarehouseTransaction txn;
  std::string Summary() const override;
};

/// Warehouse -> merge process: commit acknowledgement, in commit order.
struct TxnCommittedMsg : Message {
  TxnCommittedMsg() : Message(Kind::kTxnCommitted) {}
  int64_t txn_id = 0;
  std::string Summary() const override;
};

/// View manager -> source: read a base relation. If `as_of_state` is
/// >= 0, the source answers from its versioned log at that local state
/// (complete view managers); otherwise it answers at its current state
/// (Strobe-style managers).
struct QueryRequestMsg : Message {
  QueryRequestMsg() : Message(Kind::kQueryRequest) {}
  int64_t request_id = 0;
  RelationId relation = kInvalidRelation;
  int64_t as_of_state = -1;
  std::string Summary() const override;
};

/// Source -> view manager: relation snapshot plus the source-local state
/// number it reflects.
struct QueryResponseMsg : Message {
  QueryResponseMsg() : Message(Kind::kQueryResponse) {}
  int64_t request_id = 0;
  RelationId relation = kInvalidRelation;
  Table snapshot;
  int64_t state = 0;
  std::string Summary() const override;
};

/// Self-scheduled timer with an opaque tag.
struct TickMsg : Message {
  TickMsg() : Message(Kind::kTick) {}
  int64_t tag = 0;
  std::string Summary() const override;
};

/// A warehouse reader (e.g. a customer-inquiry application) asking for
/// the current contents of several views in one atomic read — the
/// Section 1.1 access pattern MVC exists to protect.
struct ReadViewsMsg : Message {
  ReadViewsMsg() : Message(Kind::kReadViews) {}
  int64_t request_id = 0;
  /// Views to read; empty means all views.
  std::vector<ViewId> views;
  /// Time-travel read: serve the snapshot as of this commit count
  /// instead of the current state (-1 = current). Requires the
  /// warehouse to retain versions (WarehouseOptions::max_retained_versions
  /// or the deprecated history_depth); a read outside the retained
  /// window gets a clean error response (or, on the legacy clone path,
  /// crashes as the pre-MVCC implementation did).
  int64_t as_of_commit = -1;
  std::string Summary() const override;
};

/// Warehouse -> reader: a mutually consistent snapshot of the requested
/// views (all taken at one warehouse state).
///
/// In-process the snapshot travels as an O(1) SnapshotHandle into the
/// warehouse's MVCC store plus the resolved names of the requested views;
/// flat Tables are produced only at the reader/serialization boundary
/// (TakeTables). The legacy clone read path — and any serializer that
/// already flattened — fills `snapshots` directly instead.
struct ViewsSnapshotMsg : Message {
  ViewsSnapshotMsg() : Message(Kind::kViewsSnapshot) {}
  int64_t request_id = 0;
  /// Number of warehouse transactions committed before this snapshot.
  int64_t as_of_commit = 0;
  /// Shared reference to the immutable store version (MVCC path); holding
  /// this message pins the version against garbage collection.
  SnapshotHandle handle;
  /// Resolved names of the requested views, in request order (MVCC path).
  std::vector<std::string> view_names;
  /// Pre-materialized tables (legacy clone path only).
  std::vector<Table> snapshots;
  /// Non-empty when the read failed cleanly — e.g. a time-travel read of
  /// a garbage-collected version. No snapshot fields are populated then.
  std::string error;

  bool ok() const { return error.empty(); }
  /// Materializes the requested views as flat Tables, consuming the
  /// message's payload: the reader/serialization boundary.
  std::vector<Table> TakeTables();
  std::string Summary() const override;
};

/// Reader -> warehouse: execute one ScanQuery against a single view, in
/// place on the pinned snapshot — the production read tier. Unlike
/// ReadViewsMsg (which ships a whole-snapshot handle for boundary
/// flattening), the warehouse evaluates the query against the columnar
/// chunks and returns only the matching rows.
struct QueryViewMsg : Message {
  QueryViewMsg() : Message(Kind::kQueryView) {}
  int64_t request_id = 0;
  ViewId view = kInvalidView;
  /// Time-travel query: evaluate at this commit (-1 = current). Same
  /// retention rules as ReadViewsMsg.
  int64_t as_of_commit = -1;
  ScanQuery query;
  std::string Summary() const override;
};

/// Warehouse -> reader: the rows matching one QueryViewMsg, or a clean
/// error, or an explicit shed notice when admission control rejected the
/// query at the door (the reader should back off and retry; nothing was
/// executed).
struct QueryResultMsg : Message {
  QueryResultMsg() : Message(Kind::kQueryResult) {}
  int64_t request_id = 0;
  /// Commit the query actually executed at (-1 on error/shed).
  int64_t as_of_commit = -1;
  /// Matching rows in the executor's deterministic order.
  std::vector<Row> rows;
  /// Total multiplicity of matches before any limit.
  int64_t matched_count = 0;
  /// Distinct rows the executor examined.
  int64_t rows_scanned = 0;
  /// True when the warehouse was over its in-flight query budget and
  /// rejected the query without executing it.
  bool shed = false;
  /// Non-empty on clean failure (unknown view, GC'd commit, bad query).
  std::string error;

  bool ok() const { return error.empty() && !shed; }
  std::string Summary() const override;
};

/// Workload driver -> source: execute this transaction now.
struct InjectTxnMsg : Message {
  InjectTxnMsg() : Message(Kind::kInjectTxn) {}
  std::vector<Update> updates;
  /// Section 6.2: set on each per-source part of a global transaction.
  int64_t global_txn_id = 0;
  int32_t global_participants = 0;
  std::string Summary() const override;
};

// ---------------------------------------------------------------------------
// Fault injection & crash recovery (src/fault/).
//
// Crashes and restarts are delivered as messages so both runtimes gain
// fault semantics through the same channel machinery (Process::Deliver
// intercepts them before OnMessage). Recovery protocols piggyback on the
// per-channel FIFO guarantee: a resync response covers everything its
// sender emitted before generating it, so the recovering process drops
// ordinary traffic of that kind until the response arrives and can then
// resume without gaps or duplicates. Every request carries the
// requester's recovery epoch; responses echo it so answers to an
// interrupted recovery attempt are discarded.

/// Fault injector -> any process: lose all volatile state and drop every
/// message delivered until the matching RecoverMsg.
struct CrashMsg : Message {
  CrashMsg() : Message(Kind::kCrash) {}
  std::string Summary() const override;
};

/// Fault injector -> any process: restart from durable state.
struct RecoverMsg : Message {
  RecoverMsg() : Message(Kind::kRecover) {}
  std::string Summary() const override;
};

/// Recovering view manager -> integrator: resend every retained update
/// relevant to `view` with id > after (the restored checkpoint's
/// last covered update).
struct ReplayRequestMsg : Message {
  ReplayRequestMsg() : Message(Kind::kReplayRequest) {}
  ViewId view = kInvalidView;
  UpdateId after = kInvalidUpdate;
  int64_t epoch = 0;
  std::string Summary() const override;
};

/// One replayed numbered update.
struct ReplayedUpdate {
  UpdateId id = kInvalidUpdate;
  SourceTransaction txn;
};

/// Integrator -> view manager: the requested tail of the update stream.
struct ReplayResponseMsg : Message {
  ReplayResponseMsg() : Message(Kind::kReplayResponse) {}
  int64_t epoch = 0;
  std::vector<ReplayedUpdate> updates;
  std::string Summary() const override;
};

/// Recovering merge -> integrator: resend every REL_i this merge would
/// have been sent with i > after.
struct RelResyncRequestMsg : Message {
  RelResyncRequestMsg() : Message(Kind::kRelResyncRequest) {}
  UpdateId after = kInvalidUpdate;
  int64_t epoch = 0;
  std::string Summary() const override;
};

/// One resynced REL entry (views restricted to the requesting merge).
struct RelEntry {
  UpdateId update_id = kInvalidUpdate;
  std::vector<ViewId> views;
};

/// Integrator -> merge.
struct RelResyncResponseMsg : Message {
  RelResyncResponseMsg() : Message(Kind::kRelResyncResponse) {}
  int64_t epoch = 0;
  std::vector<RelEntry> rels;
  std::string Summary() const override;
};

/// Recovering merge -> view manager: resend every action list of `view`
/// with label > after, served from the manager's durable outbox.
struct AlResyncRequestMsg : Message {
  AlResyncRequestMsg() : Message(Kind::kAlResyncRequest) {}
  ViewId view = kInvalidView;
  UpdateId after = kInvalidUpdate;
  int64_t epoch = 0;
  std::string Summary() const override;
};

/// View manager -> merge.
struct AlResyncResponseMsg : Message {
  AlResyncResponseMsg() : Message(Kind::kAlResyncResponse) {}
  ViewId view = kInvalidView;
  int64_t epoch = 0;
  std::vector<ActionList> action_lists;
  std::string Summary() const override;
};

/// Recovering merge -> warehouse: which of my transactions have
/// committed? (Acks delivered while the merge was down were lost.)
struct CommitResyncRequestMsg : Message {
  CommitResyncRequestMsg() : Message(Kind::kCommitResyncRequest) {}
  int64_t epoch = 0;
  std::string Summary() const override;
};

/// Warehouse -> merge: every txn_id the sender has committed, sorted.
struct CommitResyncResponseMsg : Message {
  CommitResyncResponseMsg() : Message(Kind::kCommitResyncResponse) {}
  int64_t epoch = 0;
  std::vector<int64_t> committed;
  std::string Summary() const override;
};

}  // namespace mvc
