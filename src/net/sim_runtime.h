// Deterministic discrete-event simulation runtime.
//
// Virtual clock, seeded random per-message latencies, strict per-channel
// FIFO. Two runs with the same seed and the same process behaviour
// produce byte-identical histories, which is what lets the tests pin
// down every interleaving the paper's examples depend on (action lists
// arriving before REL sets, rows applied out of order, intertwined
// updates).

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>

#include "common/rng.h"
#include "net/runtime.h"

namespace mvc {

/// Latency distribution for a channel: fixed + uniform jitter.
struct LatencyModel {
  TimeMicros fixed = 1000;   // 1ms base network latency
  TimeMicros jitter = 0;     // uniform extra in [0, jitter]

  static LatencyModel Zero() { return LatencyModel{0, 0}; }
  static LatencyModel Fixed(TimeMicros micros) {
    return LatencyModel{micros, 0};
  }
  static LatencyModel Uniform(TimeMicros fixed, TimeMicros jitter) {
    return LatencyModel{fixed, jitter};
  }
};

/// Single-threaded event-driven runtime with virtual time.
class SimRuntime : public Runtime {
 public:
  explicit SimRuntime(uint64_t seed,
                      LatencyModel default_latency = LatencyModel::Zero())
      : rng_(seed), default_latency_(default_latency) {}

  /// Overrides the latency model for one directed channel.
  void SetChannelLatency(ProcessId from, ProcessId to, LatencyModel model) {
    channel_latency_[ChannelKey(from, to)] = model;
  }

  void Send(ProcessId from, ProcessId to, MessagePtr msg,
            TimeMicros send_delay) override;

  TimeMicros Now() const override { return now_; }

  /// Runs until no events remain.
  void Run() override;

  /// Runs until no events remain or the clock would pass `deadline`.
  void RunUntil(TimeMicros deadline);

  /// Number of events delivered so far.
  int64_t events_delivered() const { return events_delivered_; }

  /// Installs a delivery trace: called once per delivered message with a
  /// line like "t=1234 src0 -> integrator SourceTxn Txn(seq=1, ...)".
  /// Pass nullptr to disable. Intended for debugging and the examples.
  void SetTraceSink(std::function<void(const std::string&)> sink) {
    trace_ = std::move(sink);
  }

 private:
  struct Event {
    TimeMicros time;
    uint64_t seq;  // tie-break: deterministic FIFO among equal times
    ProcessId from;
    ProcessId to;
    Message* msg;  // owned; released on delivery
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  static uint64_t ChannelKey(ProcessId from, ProcessId to) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
           static_cast<uint32_t>(to);
  }

  TimeMicros DrawLatency(ProcessId from, ProcessId to);

  Rng rng_;
  LatencyModel default_latency_;
  std::unordered_map<uint64_t, LatencyModel> channel_latency_;
  std::unordered_map<uint64_t, TimeMicros> channel_last_delivery_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  TimeMicros now_ = 0;
  uint64_t next_seq_ = 0;
  int64_t events_delivered_ = 0;
  bool started_ = false;
  std::function<void(const std::string&)> trace_;
};

}  // namespace mvc
