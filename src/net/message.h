// Base message type for inter-process communication.

#pragma once

#include <memory>
#include <string>

namespace mvc {

/// Base class of every message exchanged between processes. Concrete
/// messages live in net/protocol.h; components downcast via the `kind`
/// tag (cheaper and more explicit than RTTI in the hot dispatch path).
struct Message {
  enum class Kind : uint8_t {
    kSourceTxn = 0,      // source -> integrator
    kUpdate = 1,         // integrator -> view manager
    kRelSet = 2,         // integrator -> merge
    kActionList = 3,     // view manager -> merge
    kWarehouseTxn = 4,   // merge -> warehouse
    kTxnCommitted = 5,   // warehouse -> merge
    kQueryRequest = 6,   // view manager -> source
    kQueryResponse = 7,  // source -> view manager
    kTick = 8,           // self-scheduled timer
    kInjectTxn = 9,      // workload driver -> source
    kReadViews = 10,     // reader -> warehouse
    kViewsSnapshot = 11, // warehouse -> reader
    // --- Fault injection & crash recovery (src/fault/) ---
    kCrash = 12,               // fault injector -> any process
    kRecover = 13,             // fault injector -> any process
    kReplayRequest = 14,       // recovering view manager -> integrator
    kReplayResponse = 15,      // integrator -> view manager
    kRelResyncRequest = 16,    // recovering merge -> integrator
    kRelResyncResponse = 17,   // integrator -> merge
    kAlResyncRequest = 18,     // recovering merge -> view manager
    kAlResyncResponse = 19,    // view manager -> merge
    kCommitResyncRequest = 20, // recovering merge -> warehouse
    kCommitResyncResponse = 21, // warehouse -> merge
    // --- Background compaction (src/compact/) ---
    kCompactionStats = 22,    // warehouse -> compactor
    kCompactionRequest = 23,  // compactor -> warehouse
    kCompactionResponse = 24, // warehouse -> compactor
    // --- Snapshot-serving read tier (src/query/scan.h) ---
    kQueryView = 25,          // reader -> warehouse
    kQueryResult = 26         // warehouse -> reader
  };

  explicit Message(Kind k) : kind(k) {}
  virtual ~Message() = default;

  Kind kind;

  /// Short description for traces.
  virtual std::string Summary() const { return "Message"; }
};

using MessagePtr = std::unique_ptr<Message>;

const char* MessageKindToString(Message::Kind kind);

}  // namespace mvc
