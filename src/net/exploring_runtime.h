// Exploration runtime: scheduling decisions as explicit choice points.
//
// Where SimRuntime resolves delivery order with seeded latencies, the
// ExploringRuntime abstracts time away entirely and exposes the real
// nondeterminism of the asynchronous model: at every step, any non-empty
// channel may deliver its head message next. A pluggable scheduler picks
// the choice, which is what lets tools/mvc_explore enumerate delivery
// interleavings systematically (DFS with a delay bound plus sleep-set
// pruning) instead of sampling whatever schedules a latency seed happens
// to produce.
//
// Semantics preserved from the other runtimes:
//   * per-(sender, receiver) channels are FIFO — delivery order equals
//     send order on every channel (the paper's ordered-channel model);
//   * self messages are timers, ordered on the self channel by requested
//     deadline (logical clock: one tick per delivery), not send order;
//   * Run() ends at quiescence: every channel empty.
// Send delays and latencies otherwise collapse to zero: any cross-channel
// interleaving the scheduler picks corresponds to SOME assignment of
// finite latencies, so every explored schedule is a feasible execution of
// the asynchronous system.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/runtime.h"

namespace mvc {

/// One enabled scheduling choice: deliver the head message of the
/// (from, to) channel. `msg_seq` is the message's global send sequence
/// number — stable across re-executions of the same choice prefix, which
/// is what the explorer's sleep sets key on.
struct ChoicePoint {
  ProcessId from = kInvalidProcess;
  ProcessId to = kInvalidProcess;
  uint64_t msg_seq = 0;
  Message::Kind kind = Message::Kind::kTick;
};

class ExploringRuntime : public Runtime {
 public:
  /// Returned by a scheduler to end the run before quiescence.
  static constexpr int64_t kStopRun = -1;

  /// Given the enabled choices (sorted by (from, to); never empty),
  /// returns the index of the choice to deliver next, or kStopRun.
  using SchedulerFn = std::function<int64_t(const std::vector<ChoicePoint>&)>;

  /// Called after every delivery with the delivered choice and the step
  /// number (1-based). Return false to end the run.
  using StepObserverFn = std::function<bool(const ChoicePoint&, int64_t)>;

  ExploringRuntime() = default;
  ~ExploringRuntime() override;

  /// Defaults to always choosing index 0 (the lowest (from, to) channel).
  void SetScheduler(SchedulerFn scheduler) {
    scheduler_ = std::move(scheduler);
  }
  void SetStepObserver(StepObserverFn observer) {
    observer_ = std::move(observer);
  }

  /// Delivery trace: one line per delivered message, same shape as
  /// SimRuntime's ("step=3 vm-V1 -> merge-0 ActionList ...").
  void SetTraceSink(std::function<void(const std::string&)> sink) {
    trace_ = std::move(sink);
  }

  void Send(ProcessId from, ProcessId to, MessagePtr msg,
            TimeMicros send_delay) override;

  /// Logical clock: number of deliveries so far. Processes that stamp
  /// times (the recorder, freshness stats) get step counts.
  TimeMicros Now() const override { return steps_; }

  void Run() override;

  int64_t steps() const { return steps_; }

  /// "vm-V1 -> merge-0 ActionList" — names resolved via the registry of
  /// processes; used for counterexample files and traces.
  std::string RenderChoice(const ChoicePoint& choice) const;

 private:
  struct Queued {
    uint64_t seq;          // global send order
    TimeMicros deadline;   // self channel only: send step + delay
    Message* msg;          // owned; released on delivery
  };

  static uint64_t ChannelKey(ProcessId from, ProcessId to) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
           static_cast<uint32_t>(to);
  }

  /// Channels in key order so the enabled list is deterministic.
  std::map<uint64_t, std::deque<Queued>> channels_;
  SchedulerFn scheduler_;
  StepObserverFn observer_;
  std::function<void(const std::string&)> trace_;
  uint64_t next_seq_ = 0;
  int64_t steps_ = 0;
  bool started_ = false;
};

}  // namespace mvc
