// Actor-style process runtime abstraction.
//
// Every component of the warehouse system (source, integrator, view
// manager, merge process, warehouse) is a Process: single-threaded state
// plus an OnMessage handler. Processes communicate only by message
// passing over per-(sender, receiver) FIFO channels — exactly the
// assumption the paper's algorithms rely on ("messages from the same
// process must arrive in the order sent", Section 4).
//
// Two runtimes implement the interface:
//  * SimRuntime  — deterministic discrete-event simulator (virtual time,
//    seeded random latencies). Default for tests and scenario benches.
//  * ThreadRuntime — one OS thread per process with mailbox queues; used
//    to demonstrate the algorithms under real concurrency.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/logging.h"
#include "net/message.h"

namespace mvc {

/// Identifies a registered process within its runtime.
using ProcessId = int32_t;
constexpr ProcessId kInvalidProcess = -1;

/// Simulated/wall time in microseconds.
using TimeMicros = int64_t;

class Runtime;

/// A single-threaded actor. Subclasses implement OnMessage; all sends go
/// through the owning runtime. A process's handler is never invoked
/// concurrently with itself.
class Process {
 public:
  explicit Process(std::string name) : name_(std::move(name)) {}
  virtual ~Process() = default;

  const std::string& name() const { return name_; }
  ProcessId id() const { return id_; }
  Runtime* runtime() const { return runtime_; }

  /// Called once by the runtime before any message delivery.
  virtual void OnStart() {}

  /// Handles one delivered message. `from` is the sending process.
  virtual void OnMessage(ProcessId from, MessagePtr msg) = 0;

  /// Fault-aware delivery wrapper the runtimes call instead of
  /// OnMessage. Crash/recover control messages toggle the down flag and
  /// invoke the OnCrashed/OnRecovered hooks; while down, every other
  /// message is dropped (a crashed process neither receives nor acts).
  /// Crashes therefore happen only at message boundaries — a handler
  /// runs to completion or not at all, which models a process whose
  /// steps are individually atomic.
  void Deliver(ProcessId from, MessagePtr msg) {
    switch (msg->kind) {
      case Message::Kind::kCrash:
        if (!down_) {
          down_ = true;
          ++crash_count_;
          OnCrashed();
        }
        return;
      case Message::Kind::kRecover:
        if (down_) {
          down_ = false;
          ++recover_count_;
          OnRecovered();
        }
        return;
      default:
        break;
    }
    if (down_) {
      ++dropped_while_down_;
      return;
    }
    OnMessage(from, std::move(msg));
  }

  bool down() const { return down_; }
  int64_t crash_count() const { return crash_count_; }
  int64_t recover_count() const { return recover_count_; }
  int64_t dropped_while_down() const { return dropped_while_down_; }

 protected:
  /// Crash hook: discard all volatile state. Durable stores (checkpoint
  /// store, merge log, outboxes) survive by construction.
  virtual void OnCrashed() {}

  /// Restart hook: restore durable state and start any resync protocol.
  virtual void OnRecovered() {}

  /// Sends `msg` to `to` over this process's FIFO channel to it.
  void Send(ProcessId to, MessagePtr msg);

  /// Sends `msg` to `to` with an extra `delay` before it enters the
  /// channel — models local processing time (e.g. delta computation)
  /// preceding the send. FIFO order on the channel is preserved relative
  /// to the effective send times.
  void SendAfter(ProcessId to, MessagePtr msg, TimeMicros delay);

  /// Schedules a message to self after `delay` (timers).
  void ScheduleSelf(MessagePtr msg, TimeMicros delay);

  /// Current runtime clock.
  TimeMicros Now() const;

 private:
  friend class Runtime;
  std::string name_;
  ProcessId id_ = kInvalidProcess;
  Runtime* runtime_ = nullptr;
  bool down_ = false;
  int64_t crash_count_ = 0;
  int64_t recover_count_ = 0;
  int64_t dropped_while_down_ = 0;
};

/// Per-edge and aggregate message counters.
struct MessageStats {
  int64_t total_messages = 0;
  std::map<std::string, int64_t> by_kind;

  std::string ToString() const;
};

/// Runtime interface. Processes are registered (non-owning) before Run.
class Runtime {
 public:
  virtual ~Runtime() = default;

  /// Registers a process and assigns its id. Must happen before Run.
  ProcessId Register(Process* p) {
    MVC_CHECK(p != nullptr);
    MVC_CHECK(p->runtime_ == nullptr);
    p->runtime_ = this;
    p->id_ = static_cast<ProcessId>(processes_.size());
    processes_.push_back(p);
    return p->id_;
  }

  Process* process(ProcessId id) const {
    MVC_CHECK(id >= 0 && static_cast<size_t>(id) < processes_.size());
    return processes_[id];
  }
  size_t num_processes() const { return processes_.size(); }

  /// Enqueues `msg` from `from` to `to`, entering the channel after
  /// `send_delay` of local processing time.
  virtual void Send(ProcessId from, ProcessId to, MessagePtr msg,
                    TimeMicros send_delay) = 0;

  /// Current clock (virtual for the simulator, wall for threads).
  virtual TimeMicros Now() const = 0;

  /// Runs until quiescence: all channels empty and no timers pending.
  virtual void Run() = 0;

  const MessageStats& stats() const { return stats_; }

 protected:
  void CountMessage(const Message& msg) {
    ++stats_.total_messages;
    ++stats_.by_kind[MessageKindToString(msg.kind)];
  }
  std::vector<Process*> processes_;
  MessageStats stats_;
};

inline void Process::Send(ProcessId to, MessagePtr msg) {
  runtime_->Send(id_, to, std::move(msg), 0);
}

inline void Process::SendAfter(ProcessId to, MessagePtr msg,
                               TimeMicros delay) {
  runtime_->Send(id_, to, std::move(msg), delay);
}

inline void Process::ScheduleSelf(MessagePtr msg, TimeMicros delay) {
  runtime_->Send(id_, id_, std::move(msg), delay);
}

inline TimeMicros Process::Now() const { return runtime_->Now(); }

}  // namespace mvc
