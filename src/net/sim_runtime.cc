#include "net/sim_runtime.h"

#include "common/string_util.h"

namespace mvc {

TimeMicros SimRuntime::DrawLatency(ProcessId from, ProcessId to) {
  if (from == to) return 0;  // self messages: timers, no network hop
  LatencyModel model = default_latency_;
  auto it = channel_latency_.find(ChannelKey(from, to));
  if (it != channel_latency_.end()) model = it->second;
  TimeMicros latency = model.fixed;
  if (model.jitter > 0) latency += rng_.UniformInt(0, model.jitter);
  return latency;
}

void SimRuntime::Send(ProcessId from, ProcessId to, MessagePtr msg,
                      TimeMicros send_delay) {
  MVC_CHECK(to >= 0 && static_cast<size_t>(to) < processes_.size());
  CountMessage(*msg);
  TimeMicros tentative = now_ + send_delay + DrawLatency(from, to);
  TimeMicros delivery = tentative;
  if (from != to) {
    // Per-channel FIFO: delivery order equals send order on every
    // channel, regardless of drawn latencies (the paper's
    // ordered-channel model). Self messages are local timers, not
    // network traffic: a short timer armed after a long one must still
    // fire first.
    TimeMicros& last = channel_last_delivery_[ChannelKey(from, to)];
    delivery = std::max(tentative, last + 1);
    last = delivery;
  }
  events_.push(Event{delivery, next_seq_++, from, to, msg.release()});
}

void SimRuntime::Run() { RunUntil(std::numeric_limits<TimeMicros>::max()); }

void SimRuntime::RunUntil(TimeMicros deadline) {
  if (!started_) {
    started_ = true;
    for (Process* p : processes_) p->OnStart();
  }
  while (!events_.empty()) {
    Event ev = events_.top();
    if (ev.time > deadline) break;
    events_.pop();
    now_ = ev.time;
    MessagePtr msg(ev.msg);
    ++events_delivered_;
    if (trace_) {
      trace_(StrCat("t=", now_, " ",
                    ev.from >= 0 ? processes_[ev.from]->name() : "?",
                    " -> ", processes_[ev.to]->name(), " ",
                    MessageKindToString(msg->kind), " ", msg->Summary()));
    }
    processes_[ev.to]->Deliver(ev.from, std::move(msg));
  }
  if (events_.empty() && now_ < deadline &&
      deadline != std::numeric_limits<TimeMicros>::max()) {
    now_ = deadline;
  }
}

}  // namespace mvc
