#include "net/thread_runtime.h"

#include <chrono>

namespace mvc {

ThreadRuntime::ThreadRuntime(uint64_t seed, LatencyModel default_latency)
    : rng_(seed), default_latency_(default_latency) {
  start_ = std::chrono::steady_clock::now();
}

ThreadRuntime::~ThreadRuntime() {
  // Run() joins everything; nothing should be live here.
  MVC_CHECK(!running_);
}

TimeMicros ThreadRuntime::Now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

TimeMicros ThreadRuntime::DrawLatency(ProcessId from, ProcessId to) {
  if (from == to) return 0;
  std::lock_guard<std::mutex> lock(rng_mu_);
  TimeMicros latency = default_latency_.fixed;
  if (default_latency_.jitter > 0) {
    latency += rng_.UniformInt(0, default_latency_.jitter);
  }
  return latency;
}

void ThreadRuntime::Send(ProcessId from, ProcessId to, MessagePtr msg,
                         TimeMicros send_delay) {
  MVC_CHECK(to >= 0 && static_cast<size_t>(to) < processes_.size());
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    ++in_flight_;
  }
  TimeMicros deadline = Now() + send_delay + DrawLatency(from, to);
  {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    CountMessage(*msg);
    if (from != to) {
      // FIFO per network channel; self messages are timers (see
      // SimRuntime::Send).
      TimeMicros& last = channel_last_[ChannelKey(from, to)];
      deadline = std::max(deadline, last + 1);
      last = deadline;
    }
    delay_heap_.push(Pending{deadline, next_seq_++, from, to, msg.release()});
  }
  dispatch_cv_.notify_one();
}

void ThreadRuntime::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(dispatch_mu_);
  for (;;) {
    if (stopping_) break;
    if (delay_heap_.empty()) {
      dispatch_cv_.wait(lock);
      continue;
    }
    TimeMicros next = delay_heap_.top().deadline;
    TimeMicros now = Now();
    if (next > now) {
      dispatch_cv_.wait_for(lock, std::chrono::microseconds(next - now));
      continue;
    }
    Pending p = delay_heap_.top();
    delay_heap_.pop();
    lock.unlock();
    Mailbox& box = *mailboxes_[p.to];
    {
      std::lock_guard<std::mutex> box_lock(box.mu);
      box.queue.emplace_back(p.from, p.msg);
    }
    box.cv.notify_one();
    lock.lock();
  }
}

void ThreadRuntime::WorkerLoop(ProcessId id) {
  Mailbox& box = *mailboxes_[id];
  for (;;) {
    std::pair<ProcessId, Message*> item;
    {
      std::unique_lock<std::mutex> lock(box.mu);
      box.cv.wait(lock, [&] { return stopping_ || !box.queue.empty(); });
      if (box.queue.empty()) return;  // stopping and drained
      item = box.queue.front();
      box.queue.pop_front();
    }
    processes_[id]->Deliver(item.first, MessagePtr(item.second));
    OnHandled();
  }
}

void ThreadRuntime::OnHandled() {
  std::lock_guard<std::mutex> lock(idle_mu_);
  --in_flight_;
  if (in_flight_ == 0) idle_cv_.notify_all();
}

void ThreadRuntime::Run() {
  running_ = true;
  mailboxes_.clear();
  for (size_t i = 0; i < processes_.size(); ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  for (Process* p : processes_) p->OnStart();

  dispatcher_ = std::thread([this] { DispatcherLoop(); });
  for (size_t i = 0; i < processes_.size(); ++i) {
    workers_.emplace_back(
        [this, i] { WorkerLoop(static_cast<ProcessId>(i)); });
  }

  // Quiescence: every sent message has been fully handled.
  {
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock, [&] { return in_flight_ == 0; });
  }

  // Tear down.
  {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    stopping_ = true;
  }
  dispatch_cv_.notify_all();
  for (auto& box : mailboxes_) {
    // Notify under the mailbox lock: a worker that evaluated its wait
    // predicate before stopping_ was set but has not blocked yet still
    // holds box.mu, so an unlocked notify here could land in that window
    // and be lost, leaving the worker asleep forever.
    std::lock_guard<std::mutex> box_lock(box->mu);
    box->cv.notify_all();
  }
  dispatcher_.join();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  running_ = false;
}

}  // namespace mvc
