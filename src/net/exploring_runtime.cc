#include "net/exploring_runtime.h"

#include <algorithm>

#include "common/string_util.h"

namespace mvc {

ExploringRuntime::~ExploringRuntime() {
  for (auto& [key, queue] : channels_) {
    for (Queued& q : queue) delete q.msg;
  }
}

void ExploringRuntime::Send(ProcessId from, ProcessId to, MessagePtr msg,
                            TimeMicros send_delay) {
  MVC_CHECK(to >= 0 && static_cast<size_t>(to) < processes_.size());
  CountMessage(*msg);
  std::deque<Queued>& queue = channels_[ChannelKey(from, to)];
  Queued item{next_seq_++, 0, msg.release()};
  if (from != to) {
    // Network channel: FIFO in send order; the delay collapses to a
    // scheduling choice, so it contributes nothing here.
    queue.push_back(item);
    return;
  }
  // Self channel: timers fire in deadline order (a short timer armed
  // after a long one still fires first), deadlines measured on the
  // logical step clock. Ties break by send order.
  item.deadline = steps_ + send_delay;
  auto pos = std::upper_bound(
      queue.begin(), queue.end(), item, [](const Queued& a, const Queued& b) {
        return a.deadline != b.deadline ? a.deadline < b.deadline
                                        : a.seq < b.seq;
      });
  queue.insert(pos, item);
}

void ExploringRuntime::Run() {
  if (!started_) {
    started_ = true;
    for (Process* p : processes_) p->OnStart();
  }
  std::vector<ChoicePoint> enabled;
  std::vector<uint64_t> keys;
  for (;;) {
    enabled.clear();
    keys.clear();
    for (const auto& [key, queue] : channels_) {
      if (queue.empty()) continue;
      const Queued& head = queue.front();
      enabled.push_back(ChoicePoint{static_cast<ProcessId>(key >> 32),
                                    static_cast<ProcessId>(key & 0xffffffffu),
                                    head.seq, head.msg->kind});
      keys.push_back(key);
    }
    if (enabled.empty()) return;  // quiescent
    int64_t index = 0;
    if (scheduler_) {
      index = scheduler_(enabled);
      if (index < 0 || static_cast<size_t>(index) >= enabled.size()) return;
    }
    const ChoicePoint choice = enabled[static_cast<size_t>(index)];
    std::deque<Queued>& queue = channels_[keys[static_cast<size_t>(index)]];
    MessagePtr msg(queue.front().msg);
    queue.pop_front();
    ++steps_;
    if (trace_) {
      trace_(StrCat("step=", steps_, " ", RenderChoice(choice), " ",
                    msg->Summary()));
    }
    processes_[choice.to]->Deliver(choice.from, std::move(msg));
    if (observer_ && !observer_(choice, steps_)) return;
  }
}

std::string ExploringRuntime::RenderChoice(const ChoicePoint& choice) const {
  return StrCat(choice.from >= 0 ? processes_[choice.from]->name() : "?",
                " -> ", processes_[choice.to]->name(), " ",
                MessageKindToString(choice.kind));
}

}  // namespace mvc
