#include "parser/scenario_parser.h"

#include <fstream>
#include <set>
#include <sstream>

#include "common/string_util.h"
#include "parser/lexer.h"

namespace mvc {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SystemConfig> Parse() {
    while (!At(TokenKind::kEnd)) {
      MVC_ASSIGN_OR_RETURN(std::string keyword, ExpectIdentifier());
      if (keyword == "source") {
        MVC_RETURN_IF_ERROR(ParseSource());
      } else if (keyword == "init") {
        MVC_RETURN_IF_ERROR(ParseInit());
      } else if (keyword == "view") {
        MVC_RETURN_IF_ERROR(ParseView());
      } else if (keyword == "aggregate") {
        MVC_RETURN_IF_ERROR(ParseAggregate());
      } else if (keyword == "manager") {
        MVC_RETURN_IF_ERROR(ParseManager());
      } else if (keyword == "txn") {
        MVC_RETURN_IF_ERROR(ParseTxn());
      } else if (keyword == "fault") {
        MVC_RETURN_IF_ERROR(ParseFault());
      } else {
        return Error(StrCat("unknown statement '", keyword, "'"));
      }
    }
    return std::move(config_);
  }

 private:
  // --- Token helpers ---
  const Token& Peek() const { return tokens_[pos_]; }
  bool At(TokenKind kind) const { return Peek().kind == kind; }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrCat("line ", Peek().line, ": ", message));
  }

  Status Expect(TokenKind kind) {
    if (!At(kind)) {
      return Error(StrCat("expected ", TokenKindToString(kind), ", found ",
                          Peek().ToString()));
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier() {
    if (!At(TokenKind::kIdentifier)) {
      return Error(StrCat("expected identifier, found ", Peek().ToString()));
    }
    return Advance().text;
  }

  Result<int64_t> ExpectInteger() {
    if (!At(TokenKind::kInteger)) {
      return Error(StrCat("expected integer, found ", Peek().ToString()));
    }
    return Advance().integer;
  }

  Status ExpectKeyword(const std::string& word) {
    MVC_ASSIGN_OR_RETURN(std::string got, ExpectIdentifier());
    if (got != word) {
      return Error(StrCat("expected '", word, "', found '", got, "'"));
    }
    return Status::OK();
  }

  bool ConsumeKeyword(const std::string& word) {
    if (At(TokenKind::kIdentifier) && Peek().text == word) {
      Advance();
      return true;
    }
    return false;
  }

  // --- Statements ---

  Status ParseSource() {
    MVC_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    if (config_.sources.count(name) > 0) {
      return Error(StrCat("source '", name, "' already declared"));
    }
    config_.sources[name];  // declare even if empty
    MVC_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    while (!At(TokenKind::kRBrace)) {
      MVC_RETURN_IF_ERROR(ExpectKeyword("relation"));
      MVC_ASSIGN_OR_RETURN(std::string rel, ExpectIdentifier());
      if (config_.schemas.count(rel) > 0) {
        return Error(StrCat("relation '", rel, "' already declared"));
      }
      MVC_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      std::vector<std::string> columns;
      for (;;) {
        MVC_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        columns.push_back(std::move(col));
        if (At(TokenKind::kComma)) {
          Advance();
          continue;
        }
        break;
      }
      MVC_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      MVC_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
      config_.sources[name].push_back(rel);
      config_.schemas[rel] = Schema::AllInt64(columns);
    }
    return Expect(TokenKind::kRBrace);
  }

  Result<Tuple> ParseTuple() {
    MVC_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    Tuple t;
    for (;;) {
      MVC_ASSIGN_OR_RETURN(int64_t v, ExpectInteger());
      t.emplace_back(v);
      if (At(TokenKind::kComma)) {
        Advance();
        continue;
      }
      break;
    }
    MVC_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return t;
  }

  Status ParseInit() {
    MVC_ASSIGN_OR_RETURN(std::string rel, ExpectIdentifier());
    if (config_.schemas.count(rel) == 0) {
      return Error(StrCat("init of undeclared relation '", rel, "'"));
    }
    for (;;) {
      MVC_ASSIGN_OR_RETURN(Tuple t, ParseTuple());
      MVC_RETURN_IF_ERROR(
          config_.schemas[rel].ValidateTuple(t).ok()
              ? Status::OK()
              : Error(StrCat("tuple arity mismatch for '", rel, "'")));
      config_.initial_data[rel].push_back(std::move(t));
      if (At(TokenKind::kComma)) {
        Advance();
        continue;
      }
      break;
    }
    return Expect(TokenKind::kSemicolon);
  }

  Result<ColumnRef> ParseColumnRef() {
    MVC_ASSIGN_OR_RETURN(std::string first, ExpectIdentifier());
    if (At(TokenKind::kDot)) {
      Advance();
      MVC_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      return ColumnRef{first, col};
    }
    return ColumnRef{"", first};
  }

  Status ParseView() {
    MVC_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    for (const ViewDefinition& def : config_.views) {
      if (def.name == name) {
        return Error(StrCat("view '", name, "' already declared"));
      }
    }
    MVC_RETURN_IF_ERROR(Expect(TokenKind::kEquals));
    MVC_RETURN_IF_ERROR(ExpectKeyword("select"));

    ViewDefinition def;
    def.name = std::move(name);
    if (At(TokenKind::kStar)) {
      Advance();  // empty projection = all columns
    } else {
      for (;;) {
        MVC_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
        def.projection.push_back(std::move(ref));
        if (At(TokenKind::kComma)) {
          Advance();
          continue;
        }
        break;
      }
    }
    MVC_RETURN_IF_ERROR(ExpectKeyword("from"));
    for (;;) {
      MVC_ASSIGN_OR_RETURN(std::string rel, ExpectIdentifier());
      if (config_.schemas.count(rel) == 0) {
        return Error(StrCat("view over undeclared relation '", rel, "'"));
      }
      def.relations.push_back(std::move(rel));
      if (At(TokenKind::kComma)) {
        Advance();
        continue;
      }
      break;
    }

    std::vector<Predicate> conjuncts;
    if (ConsumeKeyword("where")) {
      for (;;) {
        MVC_ASSIGN_OR_RETURN(Predicate conjunct, ParseComparison());
        conjuncts.push_back(std::move(conjunct));
        if (ConsumeKeyword("and")) continue;
        break;
      }
    }
    def.predicate = Predicate::And(std::move(conjuncts));
    MVC_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    config_.views.push_back(std::move(def));
    return Status::OK();
  }

  Result<Predicate> ParseComparison() {
    MVC_ASSIGN_OR_RETURN(ColumnRef lhs, ParseColumnRef());
    CompareOp op;
    if (At(TokenKind::kEquals)) {
      Advance();
      op = CompareOp::kEq;
    } else if (At(TokenKind::kCompare)) {
      const std::string& spelled = Advance().text;
      if (spelled == "<") {
        op = CompareOp::kLt;
      } else if (spelled == "<=") {
        op = CompareOp::kLe;
      } else if (spelled == ">") {
        op = CompareOp::kGt;
      } else if (spelled == ">=") {
        op = CompareOp::kGe;
      } else {
        op = CompareOp::kNe;
      }
    } else {
      return Error(StrCat("expected comparison operator, found ",
                          Peek().ToString()));
    }
    if (At(TokenKind::kInteger)) {
      int64_t v = Advance().integer;
      return Predicate::ColCmpConst(op, std::move(lhs), Value(v));
    }
    MVC_ASSIGN_OR_RETURN(ColumnRef rhs, ParseColumnRef());
    return Predicate::Compare(op, Predicate::Operand::Col(std::move(lhs)),
                              Predicate::Operand::Col(std::move(rhs)));
  }

  Status ParseAggregate() {
    MVC_ASSIGN_OR_RETURN(std::string view, ExpectIdentifier());
    bool known = false;
    for (const ViewDefinition& def : config_.views) {
      known = known || def.name == view;
    }
    if (!known) {
      return Error(StrCat("aggregate over undeclared view '", view, "'"));
    }
    MVC_RETURN_IF_ERROR(ExpectKeyword("group"));
    MVC_RETURN_IF_ERROR(ExpectKeyword("by"));
    AggregateSpec spec;
    for (;;) {
      MVC_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      spec.group_by.push_back(std::move(col));
      if (At(TokenKind::kComma)) {
        // Could be the next group column or the first aggregate; peek.
        const Token& next = tokens_[pos_ + 1];
        if (next.kind == TokenKind::kIdentifier &&
            (next.text == "count" || next.text == "sum" ||
             next.text == "min" || next.text == "max")) {
          Advance();
          break;
        }
        Advance();
        continue;
      }
      break;
    }
    for (;;) {
      MVC_ASSIGN_OR_RETURN(std::string fn_name, ExpectIdentifier());
      AggregateColumn agg;
      if (fn_name == "count") {
        agg.fn = AggregateFn::kCount;
      } else if (fn_name == "sum") {
        agg.fn = AggregateFn::kSum;
      } else if (fn_name == "min") {
        agg.fn = AggregateFn::kMin;
      } else if (fn_name == "max") {
        agg.fn = AggregateFn::kMax;
      } else {
        return Error(StrCat("unknown aggregate '", fn_name, "'"));
      }
      if (agg.fn != AggregateFn::kCount) {
        MVC_ASSIGN_OR_RETURN(agg.input_column, ExpectIdentifier());
      }
      MVC_RETURN_IF_ERROR(ExpectKeyword("as"));
      MVC_ASSIGN_OR_RETURN(agg.output_name, ExpectIdentifier());
      spec.aggregates.push_back(std::move(agg));
      if (At(TokenKind::kComma)) {
        Advance();
        continue;
      }
      break;
    }
    MVC_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    config_.aggregates[view] = std::move(spec);
    return Status::OK();
  }

  Status ParseManager() {
    MVC_ASSIGN_OR_RETURN(std::string view, ExpectIdentifier());
    MVC_ASSIGN_OR_RETURN(std::string kind, ExpectIdentifier());
    if (kind == "complete") {
      config_.manager_kinds[view] = ManagerKind::kComplete;
    } else if (kind == "strong") {
      config_.manager_kinds[view] = ManagerKind::kStrong;
    } else if (kind == "periodic") {
      config_.manager_kinds[view] = ManagerKind::kPeriodic;
    } else if (kind == "convergent") {
      config_.manager_kinds[view] = ManagerKind::kConvergent;
    } else if (kind == "complete-n") {
      config_.manager_kinds[view] = ManagerKind::kCompleteN;
    } else {
      return Error(StrCat("unknown manager kind '", kind, "'"));
    }
    return Expect(TokenKind::kSemicolon);
  }

  Status ParseTxn() {
    MVC_RETURN_IF_ERROR(Expect(TokenKind::kAt));
    MVC_ASSIGN_OR_RETURN(int64_t at, ExpectInteger());
    MVC_ASSIGN_OR_RETURN(std::string source, ExpectIdentifier());
    if (config_.sources.count(source) == 0) {
      return Error(StrCat("txn at undeclared source '", source, "'"));
    }
    Injection inj;
    inj.at = at;
    inj.source = source;
    MVC_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    while (!At(TokenKind::kRBrace)) {
      MVC_ASSIGN_OR_RETURN(std::string op, ExpectIdentifier());
      MVC_ASSIGN_OR_RETURN(std::string rel, ExpectIdentifier());
      if (config_.schemas.count(rel) == 0) {
        return Error(StrCat("update of undeclared relation '", rel, "'"));
      }
      MVC_ASSIGN_OR_RETURN(Tuple t, ParseTuple());
      if (op == "insert") {
        inj.updates.push_back(Update::Insert(source, rel, std::move(t)));
      } else if (op == "delete") {
        inj.updates.push_back(Update::Delete(source, rel, std::move(t)));
      } else if (op == "modify") {
        MVC_RETURN_IF_ERROR(Expect(TokenKind::kArrow));
        MVC_ASSIGN_OR_RETURN(Tuple after, ParseTuple());
        inj.updates.push_back(
            Update::Modify(source, rel, std::move(t), std::move(after)));
      } else {
        return Error(StrCat("unknown update op '", op, "'"));
      }
      MVC_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    }
    MVC_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    if (inj.updates.empty()) {
      return Error("transaction has no updates");
    }
    config_.workload.push_back(std::move(inj));
    return Status::OK();
  }

  /// fault <process> @ <time> [down <micros>] ;
  /// Targets are runtime process names (vm-<view>, merge-<g>), validated
  /// against the wired system at Build time, not here.
  Status ParseFault() {
    FaultEvent ev;
    MVC_ASSIGN_OR_RETURN(ev.target, ExpectIdentifier());
    MVC_RETURN_IF_ERROR(Expect(TokenKind::kAt));
    MVC_ASSIGN_OR_RETURN(ev.at, ExpectInteger());
    if (ConsumeKeyword("down")) {
      MVC_ASSIGN_OR_RETURN(ev.down_for, ExpectInteger());
    }
    if (ev.at < 0 || ev.down_for <= 0) {
      return Error("fault crash time must be >= 0 and down time > 0");
    }
    config_.fault.plan.events.push_back(std::move(ev));
    return Expect(TokenKind::kSemicolon);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  SystemConfig config_;
};

}  // namespace

Result<SystemConfig> ParseScenario(const std::string& text) {
  MVC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

Result<SystemConfig> ParseScenarioFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrCat("cannot open scenario file '", path, "'"));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseScenario(buffer.str());
}

}  // namespace mvc
