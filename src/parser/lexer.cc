#include "parser/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace mvc {

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kInteger:
      return "integer";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kAt:
      return "'@'";
    case TokenKind::kEquals:
      return "'='";
    case TokenKind::kArrow:
      return "'->'";
    case TokenKind::kCompare:
      return "comparison";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

std::string Token::ToString() const {
  switch (kind) {
    case TokenKind::kIdentifier:
      return StrCat("identifier '", text, "'");
    case TokenKind::kInteger:
      return StrCat("integer ", integer);
    case TokenKind::kCompare:
      return StrCat("'", text, "'");
    default:
      return TokenKindToString(kind);
  }
}

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  auto push = [&](TokenKind kind, std::string text = "", int64_t value = 0) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.integer = value;
    t.line = line;
    tokens.push_back(std::move(t));
  };

  while (i < input.size()) {
    char c = input[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < input.size() && input[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[i])) ||
              input[i] == '_' || input[i] == '-')) {
        ++i;
      }
      push(TokenKind::kIdentifier, input.substr(start, i - start));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < input.size() &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      while (i < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[i]))) {
        ++i;
      }
      push(TokenKind::kInteger, "",
           std::stoll(input.substr(start, i - start)));
      continue;
    }
    switch (c) {
      case '(':
        push(TokenKind::kLParen);
        ++i;
        break;
      case ')':
        push(TokenKind::kRParen);
        ++i;
        break;
      case '{':
        push(TokenKind::kLBrace);
        ++i;
        break;
      case '}':
        push(TokenKind::kRBrace);
        ++i;
        break;
      case ',':
        push(TokenKind::kComma);
        ++i;
        break;
      case ';':
        push(TokenKind::kSemicolon);
        ++i;
        break;
      case '.':
        push(TokenKind::kDot);
        ++i;
        break;
      case '*':
        push(TokenKind::kStar);
        ++i;
        break;
      case '@':
        push(TokenKind::kAt);
        ++i;
        break;
      case '=':
        push(TokenKind::kEquals, "=");
        ++i;
        break;
      case '-':
        if (i + 1 < input.size() && input[i + 1] == '>') {
          push(TokenKind::kArrow);
          i += 2;
        } else {
          return Status::InvalidArgument(
              StrCat("line ", line, ": stray '-'"));
        }
        break;
      case '<':
      case '>':
      case '!': {
        std::string op(1, c);
        ++i;
        if (i < input.size() && input[i] == '=') {
          op += '=';
          ++i;
        } else if (c == '!') {
          return Status::InvalidArgument(
              StrCat("line ", line, ": expected '!=' after '!'"));
        }
        push(TokenKind::kCompare, op);
        break;
      }
      default:
        return Status::InvalidArgument(
            StrCat("line ", line, ": unexpected character '", c, "'"));
    }
  }
  push(TokenKind::kEnd);
  return tokens;
}

}  // namespace mvc
