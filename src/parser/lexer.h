// Tokenizer for the scenario-definition language (see
// scenario_parser.h for the grammar).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace mvc {

enum class TokenKind : uint8_t {
  kIdentifier,  // source names, relation names, keywords
  kInteger,     // 64-bit signed literal
  kLParen,      // (
  kRParen,      // )
  kLBrace,      // {
  kRBrace,      // }
  kComma,       // ,
  kSemicolon,   // ;
  kDot,         // .
  kStar,        // *
  kAt,          // @
  kEquals,      // =
  kArrow,       // ->
  kCompare,     // < <= > >= != (and = doubles as comparison in WHERE)
  kEnd,         // end of input
};

const char* TokenKindToString(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  /// Identifier text, or the comparison operator spelling.
  std::string text;
  int64_t integer = 0;
  int line = 0;

  std::string ToString() const;
};

/// Tokenizes `input`. Identifiers are [A-Za-z_][A-Za-z0-9_-]* (dashes
/// allowed so "orders-db" works); integers may be negative; `#` starts
/// a comment to end of line.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace mvc
