// The scenario-definition language: a small declarative format that
// compiles into a SystemConfig, so complete warehouse scenarios can be
// written as text files and run with `mvc_sim --scenario file.mvc`.
//
// Grammar (statements end with ';' except block forms):
//
//   source <name> { relation <rel>(<col>, ...); ... }
//   init <rel> (v, ...), (v, ...), ... ;
//   view <name> = select <cols|*> from <rel>, ...
//                 [where <col-or-rel.col> <op> <col-or-int> [and ...]] ;
//   aggregate <view> group by <col>, ...
//             <count|sum|min|max> [<col>] as <name> [, ...] ;
//   manager <view> <complete|strong|periodic|convergent|complete-n> ;
//   txn @<micros> <source> { insert <rel> (v, ...);
//                            delete <rel> (v, ...);
//                            modify <rel> (v, ...) -> (v, ...); }
//
// All columns are INT64 (matching the paper's examples). `#` comments.
// Ordering constraints: relations must be declared before use; `init`
// rows load state ss_0; transactions execute at their @time.

#pragma once

#include <string>

#include "common/result.h"
#include "system/config.h"

namespace mvc {

/// Parses a scenario document into a SystemConfig. Maintenance and
/// runtime knobs not expressible in the language (latencies, costs,
/// policies) are left at their defaults for the caller to override.
Result<SystemConfig> ParseScenario(const std::string& text);

/// Reads `path` and parses it.
Result<SystemConfig> ParseScenarioFile(const std::string& path);

}  // namespace mvc
