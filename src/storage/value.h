// Typed scalar values for tuples.
//
// The data model is deliberately small (NULL, INT64, DOUBLE, STRING): the
// paper's algorithms are data-model independent (Section 3.1), and its
// examples are relational with scalar attributes.

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

#include "common/hash_util.h"
#include "common/result.h"

namespace mvc {

/// Type tag of a Value.
enum class ValueType : uint8_t { kNull = 0, kInt64 = 1, kDouble = 2, kString = 3 };

/// Returns "NULL" / "INT64" / "DOUBLE" / "STRING".
const char* ValueTypeToString(ValueType type);

/// A scalar attribute value: one of NULL, INT64, DOUBLE, STRING.
///
/// Values are totally ordered (NULL < INT64 < DOUBLE < STRING across
/// types; natural order within a type) so tuples can key ordered and
/// hashed containers deterministically.
class Value {
 public:
  /// Constructs a NULL value.
  Value() : rep_(std::monostate{}) {}
  Value(int64_t v) : rep_(v) {}                 // NOLINT(runtime/explicit)
  Value(int v) : rep_(static_cast<int64_t>(v)) {}  // NOLINT
  Value(double v) : rep_(v) {}                  // NOLINT
  Value(std::string v) : rep_(std::move(v)) {}  // NOLINT
  Value(const char* v) : rep_(std::string(v)) {}  // NOLINT

  ValueType type() const {
    return static_cast<ValueType>(rep_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  /// Accessors; must match type().
  int64_t AsInt64() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// Numeric view: INT64 widened to double; only valid for numeric types.
  double AsNumeric() const {
    if (type() == ValueType::kInt64) return static_cast<double>(AsInt64());
    return AsDouble();
  }
  bool IsNumeric() const {
    return type() == ValueType::kInt64 || type() == ValueType::kDouble;
  }

  bool operator==(const Value& other) const { return rep_ == other.rep_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return rep_ < other.rep_; }
  bool operator<=(const Value& other) const { return rep_ <= other.rep_; }
  bool operator>(const Value& other) const { return other < *this; }
  bool operator>=(const Value& other) const { return other <= *this; }

  size_t Hash() const {
    size_t seed = static_cast<size_t>(rep_.index());
    switch (type()) {
      case ValueType::kNull:
        break;
      case ValueType::kInt64:
        HashCombineValue(&seed, AsInt64());
        break;
      case ValueType::kDouble:
        HashCombineValue(&seed, AsDouble());
        break;
      case ValueType::kString:
        HashCombineValue(&seed, AsString());
        break;
    }
    return seed;
  }

  /// Human-readable rendering ("NULL", "42", "3.5", "'abc'").
  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace mvc
