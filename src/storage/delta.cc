#include "storage/delta.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/string_util.h"

namespace mvc {

void TableDelta::Normalize() {
  std::unordered_map<Tuple, int64_t, TupleHash> sums;
  for (const DeltaRow& row : rows) sums[row.tuple] += row.count;
  rows.clear();
  for (auto& [tuple, count] : sums) {
    if (count != 0) rows.push_back(DeltaRow{tuple, count});
  }
  std::sort(rows.begin(), rows.end(),
            [](const DeltaRow& a, const DeltaRow& b) {
              return a.tuple < b.tuple;
            });
}

Status TableDelta::ApplyTo(Table* table) const {
  // Validate first so a failing delta leaves the table unchanged.
  std::unordered_map<Tuple, int64_t, TupleHash> net;
  for (const DeltaRow& row : rows) net[row.tuple] += row.count;
  for (const auto& [tuple, count] : net) {
    if (count < 0 && table->CountOf(tuple) < -count) {
      return Status::FailedPrecondition(
          StrCat("delta on '", table->name(), "' deletes ", -count,
                 " copies of ", TupleToString(tuple), " but only ",
                 table->CountOf(tuple), " present"));
    }
  }
  for (const auto& [tuple, count] : net) {
    if (count > 0) {
      MVC_RETURN_IF_ERROR(table->Insert(tuple, count));
    } else if (count < 0) {
      MVC_RETURN_IF_ERROR(table->Delete(tuple, -count));
    }
  }
  return Status::OK();
}

std::string TableDelta::ToString() const {
  std::ostringstream os;
  os << "Delta(" << target << "): {";
  bool first = true;
  for (const DeltaRow& row : rows) {
    if (!first) os << ", ";
    os << (row.count > 0 ? "+" : "") << row.count << TupleToString(row.tuple);
    first = false;
  }
  os << "}";
  return os.str();
}

}  // namespace mvc
