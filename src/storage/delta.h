// Deltas: signed multisets of tuples describing a change to one relation
// or materialized view.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"
#include "storage/tuple.h"

namespace mvc {

/// One signed row of a delta: positive count inserts copies, negative
/// count deletes copies.
struct DeltaRow {
  Tuple tuple;
  int64_t count = 0;

  bool operator==(const DeltaRow& other) const {
    return count == other.count && tuple == other.tuple;
  }
};

/// A change to one named relation/view, as a signed multiset.
struct TableDelta {
  std::string target;
  std::vector<DeltaRow> rows;

  bool empty() const { return rows.empty(); }

  void Add(Tuple t, int64_t count) {
    if (count != 0) rows.push_back(DeltaRow{std::move(t), count});
  }

  /// Collapses duplicate tuples by summing counts and dropping zeros;
  /// result rows are sorted for determinism.
  void Normalize();

  /// Applies this delta to `table` atomically-in-effect: all deletions
  /// are validated before any mutation so a bad delta leaves the table
  /// untouched. Deletions beyond the stored multiplicity fail with
  /// FailedPrecondition.
  Status ApplyTo(Table* table) const;

  std::string ToString() const;
};

}  // namespace mvc
