#include "storage/id_registry.h"

namespace mvc {

ViewId IdRegistry::InternView(const std::string& name) {
  auto [it, inserted] =
      view_ids_.emplace(name, static_cast<ViewId>(view_names_.size()));
  if (inserted) view_names_.push_back(name);
  return it->second;
}

RelationId IdRegistry::InternRelation(const std::string& name) {
  auto [it, inserted] = relation_ids_.emplace(
      name, static_cast<RelationId>(relation_names_.size()));
  if (inserted) relation_names_.push_back(name);
  return it->second;
}

std::vector<ViewId> IdRegistry::InternViews(
    const std::vector<std::string>& names) {
  std::vector<ViewId> out;
  out.reserve(names.size());
  for (const std::string& name : names) out.push_back(InternView(name));
  return out;
}

std::optional<ViewId> IdRegistry::FindView(const std::string& name) const {
  auto it = view_ids_.find(name);
  if (it == view_ids_.end()) return std::nullopt;
  return it->second;
}

std::optional<RelationId> IdRegistry::FindRelation(
    const std::string& name) const {
  auto it = relation_ids_.find(name);
  if (it == relation_ids_.end()) return std::nullopt;
  return it->second;
}

}  // namespace mvc
