// Versioned bag-semantics relation storage (MVCC).
//
// A VersionedTable stores the same (tuple -> multiplicity) bag as Table,
// but hash-partitioned into immutable, refcounted Chunks. Mutations are
// copy-on-write against the last *sealed* version: the first write to a
// chunk since the last Seal() clones that chunk, every other chunk stays
// shared. Sealing publishes the working state as an immutable
// TableVersion in O(chunk count) pointer copies, so a commit costs
// O(delta * chunk_rows), not O(table), and every published version
// remains readable for free while someone holds it.
//
// This is the storage substrate for the warehouse's snapshot-isolated
// read path (warehouse.h): readers receive shared references to sealed
// versions instead of deep clones, and garbage collection is the plain
// shared_ptr refcount — a version's chunks die when the last snapshot
// referencing them is released.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/logging.h"
#include "common/result.h"
#include "storage/delta.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/tuple.h"

namespace mvc {

/// Columnar projection of a frozen chunk: one value vector per schema
/// column plus a parallel multiplicity vector. Built exactly once when a
/// chunk is published (Seal or compaction squash) and shared by pointer
/// across chunk clones; the mutable build side keeps only the hash map.
/// Scans iterate these vectors column-wise instead of walking hash nodes.
struct ColumnBlock {
  /// columns[c][r] is column c of logical row r.
  std::vector<std::vector<Value>> columns;
  /// counts[r] is the bag multiplicity of row r (always > 0).
  std::vector<int64_t> counts;

  size_t rows() const { return counts.size(); }

  /// Reassembles row `r` as a Tuple (boundary/oracle paths only; the
  /// scan executor reads columns in place).
  Tuple RowTuple(size_t r) const;
};

/// One immutable hash partition of a versioned table. Published chunks
/// are never mutated; the working table clones a chunk before its first
/// write after a Seal().
struct Chunk {
  std::unordered_map<Tuple, int64_t, TupleHash> rows;
  /// Total multiplicity over `rows`.
  int64_t total_count = 0;
  /// Rough heap footprint, maintained incrementally; feeds the
  /// warehouse.snapshot_bytes_shared metric.
  size_t approx_bytes = 0;
  /// Columnar layout, present on every chunk reachable from a sealed
  /// TableVersion (null while the chunk is the mutable working copy).
  /// Shared by pointer on copy-on-write clones and reset before the
  /// first mutation, so it can never go stale.
  std::shared_ptr<const ColumnBlock> columnar;
};

/// Builds the columnar projection for a chunk about to be published.
std::shared_ptr<const ColumnBlock> BuildColumnBlock(const Chunk& chunk,
                                                    size_t num_columns);

using ChunkPtr = std::shared_ptr<const Chunk>;
using ChunkVec = std::vector<ChunkPtr>;

/// An immutable published version of one table: shared chunk vector plus
/// cached aggregates. Copying a TableVersion is O(1) in table size.
struct TableVersion {
  std::string name;
  Schema schema;
  std::shared_ptr<const ChunkVec> chunks;
  size_t distinct = 0;
  int64_t total_count = 0;
  size_t approx_bytes = 0;

  /// Multiplicity of `t` in this version (0 if absent). O(1).
  int64_t CountOf(const Tuple& t) const;

  /// Flattens this version into a plain Table — the only O(table)
  /// operation; callers do this at the reader/serialization boundary.
  Table Materialize() const;
};

/// Copy-on-write chunked bag. Mutators mirror Table's semantics exactly
/// (same validation, same error classes) so the two implementations can
/// be cross-checked row for row.
class VersionedTable {
 public:
  /// Initial number of hash partitions; kept small so even tiny tables
  /// share most chunks across versions.
  static constexpr size_t kMinChunks = 8;

  /// `target_chunk_rows` bounds the average distinct tuples per chunk;
  /// the partition count doubles (rehashing once) when it is exceeded,
  /// keeping per-write copy cost O(target_chunk_rows).
  VersionedTable(std::string name, Schema schema,
                 size_t target_chunk_rows = 64);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// --- Mutators (working state; copy-on-write vs the last seal) ---

  /// Adds `count` copies of `t` (count > 0). Validates against the schema.
  Status Insert(const Tuple& t, int64_t count = 1);

  /// Removes `count` copies of `t` (count > 0); FailedPrecondition if
  /// fewer copies exist.
  Status Delete(const Tuple& t, int64_t count = 1);

  /// Applies `delta` atomically-in-effect: deletions are validated
  /// before any mutation, exactly like TableDelta::ApplyTo.
  Status ApplyDelta(const TableDelta& delta);

  /// Drops all rows (replace_all action lists). Every chunk is replaced.
  void Clear();

  /// --- Working-state reads ---

  int64_t CountOf(const Tuple& t) const;
  size_t NumDistinct() const { return distinct_; }
  int64_t NumRows() const { return total_count_; }
  bool empty() const { return distinct_ == 0; }
  size_t num_chunks() const { return chunks_.size(); }
  size_t approx_bytes() const { return approx_bytes_; }

  /// Chunks cloned by copy-on-write since construction (monotonic;
  /// structural-sharing tests and metrics read this).
  int64_t chunks_copied() const { return chunks_copied_; }

  /// Flat copy of the working state.
  Table Materialize() const;

  /// Adds the working chunks to a store-level dedup set and returns the
  /// bytes of chunks not seen before (VersionedStore::ResidentChunkBytes).
  size_t ResidentChunkBytes(std::unordered_set<const Chunk*>* seen) const;

  /// --- Versioning ---

  /// Publishes the working state as an immutable version. Untouched
  /// chunks are shared with the previous seal; subsequent mutations
  /// copy-on-write again. O(chunk count).
  TableVersion Seal();

 private:
  size_t ChunkIndex(const Tuple& t) const {
    return TupleHash{}(t) & (chunks_.size() - 1);
  }

  /// Clones chunk `idx` if it is still shared with a sealed version.
  Chunk* MutableChunk(size_t idx);

  /// Doubles the partition count once the average chunk exceeds the
  /// target; all chunks become owned (a subsequent Seal shares nothing
  /// with its predecessor — growth is rare and amortized).
  void MaybeGrow();

  std::string name_;
  Schema schema_;
  size_t target_chunk_rows_;
  ChunkVec chunks_;
  /// owned_[i]: chunks_[i] was (re)created since the last Seal and may
  /// be mutated in place.
  std::vector<bool> owned_;
  size_t distinct_ = 0;
  int64_t total_count_ = 0;
  size_t approx_bytes_ = 0;
  int64_t chunks_copied_ = 0;
};

/// Rough per-tuple heap cost used for the shared-bytes accounting.
size_t ApproxTupleBytes(const Tuple& t);

}  // namespace mvc
