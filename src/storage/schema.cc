#include "storage/schema.h"

#include <sstream>

#include "common/string_util.h"

namespace mvc {

Schema Schema::AllInt64(const std::vector<std::string>& names) {
  std::vector<Column> cols;
  cols.reserve(names.size());
  for (const auto& n : names) cols.push_back(Column{n, ValueType::kInt64});
  return Schema(std::move(cols));
}

std::optional<size_t> Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  auto idx = FindColumn(name);
  if (!idx.has_value()) {
    return Status::NotFound(
        StrCat("no column named '", name, "' in schema ", ToString()));
  }
  return *idx;
}

Status Schema::ValidateTuple(const Tuple& t) const {
  if (t.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrCat("tuple arity ", t.size(), " does not match schema arity ",
               columns_.size()));
  }
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].is_null()) continue;
    if (t[i].type() != columns_[i].type) {
      return Status::InvalidArgument(
          StrCat("column '", columns_[i].name, "' expects ",
                 ValueTypeToString(columns_[i].type), " but tuple has ",
                 ValueTypeToString(t[i].type())));
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  bool first = true;
  for (const Column& c : columns_) {
    if (!first) os << ", ";
    os << c.name << " " << ValueTypeToString(c.type);
    first = false;
  }
  os << ")";
  return os.str();
}

}  // namespace mvc
